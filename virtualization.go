package vmtherm

import (
	"vmtherm/internal/vmm"
)

// Virtualization-layer re-exports: the VMM substrate is part of the public
// surface because thermal-aware schedulers and the examples build on it.
type (
	// VM is a virtual machine instance with lifecycle and tasks.
	VM = vmm.VM
	// VMConfig is a VM's requested shape.
	VMConfig = vmm.VMConfig
	// VMState is the lifecycle state (pending/running/migrating/stopped).
	VMState = vmm.VMState
	// Task is one deployed workload inside a VM.
	Task = vmm.Task
	// TaskClass labels a task's dominant resource profile.
	TaskClass = vmm.TaskClass
	// Host is a physical server with capacity accounting.
	Host = vmm.Host
	// HostConfig is a host's capacity.
	HostConfig = vmm.HostConfig
	// MigrationSpec parameterizes live pre-copy migration.
	MigrationSpec = vmm.MigrationSpec
	// MigrationPlan is a computed pre-copy schedule.
	MigrationPlan = vmm.MigrationPlan
)

// VM lifecycle states.
const (
	VMPending   = vmm.VMPending
	VMRunning   = vmm.VMRunning
	VMMigrating = vmm.VMMigrating
	VMStopped   = vmm.VMStopped
)

// Task classes.
const (
	CPUBound = vmm.CPUBound
	MemBound = vmm.MemBound
	IOBound  = vmm.IOBound
	Bursty   = vmm.Bursty
)

// NewVM creates a VM in the pending state.
func NewVM(id string, config VMConfig) (*VM, error) { return vmm.NewVM(id, config) }

// NewHost creates an empty host.
func NewHost(id string, config HostConfig) (*Host, error) { return vmm.NewHost(id, config) }

// DefaultHostConfig is the reference 16-core, 64 GB host.
func DefaultHostConfig() HostConfig { return vmm.DefaultHostConfig() }

// DefaultMigrationSpec models a 10 GbE migration network.
func DefaultMigrationSpec() MigrationSpec { return vmm.DefaultMigrationSpec() }

// PlanMigration computes the pre-copy schedule for a memory footprint.
func PlanMigration(memGB float64, spec MigrationSpec) (MigrationPlan, error) {
	return vmm.PlanMigration(memGB, spec)
}
