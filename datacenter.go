package vmtherm

import (
	"vmtherm/internal/cluster"
)

// Datacenter-layer re-exports: racks, CRAC cooling, hotspot detection, and
// the placement policies that turn temperature prediction into thermal
// management (the paper's motivating use case).
type (
	// Datacenter is a set of racks under one CRAC.
	Datacenter = cluster.Datacenter
	// Rack is an ordered set of hosts with inlet offsets.
	Rack = cluster.Rack
	// CRAC models the room cooling unit.
	CRAC = cluster.CRAC
	// Hotspot is one server exceeding the thermal threshold.
	Hotspot = cluster.Hotspot
	// Placer chooses a host for a new VM.
	Placer = cluster.Placer
	// FirstFit is the thermally-blind placement baseline.
	FirstFit = cluster.FirstFit
	// CoolestInlet places on the coolest air, blind to the VM itself.
	CoolestInlet = cluster.CoolestInlet
	// PredictedTemp places on the lowest predicted post-placement
	// temperature.
	PredictedTemp = cluster.PredictedTemp
	// TempPredictor adapts a stable model for placement decisions.
	TempPredictor = cluster.TempPredictor
)

// DefaultCRAC is a typical raised-floor configuration.
func DefaultCRAC() CRAC { return cluster.DefaultCRAC() }

// NewRack creates a rack of hosts with per-slot inlet offsets.
func NewRack(id string, hosts []*Host, offsets []float64) (*Rack, error) {
	return cluster.NewRack(id, hosts, offsets)
}

// NewDatacenter assembles racks under a CRAC.
func NewDatacenter(crac CRAC, racks []*Rack) (*Datacenter, error) {
	return cluster.NewDatacenter(crac, racks)
}

// DetectHotspots flags hosts above thresholdC, hottest first.
func DetectHotspots(temps map[string]float64, thresholdC float64) []Hotspot {
	return cluster.DetectHotspots(temps, thresholdC)
}

// HostStateCase reconstructs a Case describing a host's current deployment
// plus an optional candidate VM, for prediction-driven placement.
func HostStateCase(h *Host, fanCount int, ambientC float64, candidate *VMSpec) (Case, error) {
	return cluster.HostStateCase(h, fanCount, ambientC, candidate)
}

// PlacementPredictor adapts a trained StablePredictor into the TempPredictor
// shape placement policies consume. horizonS is the averaging horizon for
// dynamic profiles (use the experiment duration, e.g. 1800).
func PlacementPredictor(model *StablePredictor, horizonS float64) TempPredictor {
	return func(c Case) (float64, error) {
		return model.PredictCase(c, horizonS)
	}
}
