package vmtherm_test

// Benchmark harness: one benchmark per paper artifact. Each bench executes
// the full experiment that regenerates the corresponding figure and reports
// the headline accuracy metric alongside timing, so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation end to end. cmd/vmtherm-bench renders the same
// experiments as human-readable tables.
//
// Paper targets (ICDCS 2016, Wu et al.):
//   - Fig 1(a): stable prediction, 20 randomized 2–12 VM cases, MSE ≤ 1.10
//   - Fig 1(b): dynamic prediction case study, calibration lowers MSE
//   - Fig 1(c): MSE over Δ_gap × Δ_update with 4 fans, range ≈ 0.70–1.50

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"vmtherm"
	"vmtherm/internal/dataset"
	"vmtherm/internal/engine"
	"vmtherm/internal/experiments"
	"vmtherm/internal/predictclient"
	"vmtherm/internal/predictserver"
	"vmtherm/internal/svm"
	"vmtherm/internal/telemetry"
	"vmtherm/internal/testbed"
	"vmtherm/internal/thermal"
	"vmtherm/internal/workload"
)

// benchSeed keeps benchmark runs reproducible.
const benchSeed = 2016

// reportPredsPerSec reports prediction throughput for a benchmark whose
// every iteration evaluates perOp predictions.
func reportPredsPerSec(b *testing.B, perOp int) {
	if d := b.Elapsed().Seconds(); d > 0 {
		b.ReportMetric(float64(perOp*b.N)/d, "preds/s")
	}
}

// BenchmarkFig1aStablePrediction regenerates Fig. 1(a): train on 160
// simulated experiments, evaluate stable-temperature prediction on 20
// randomized held-out cases with 2–12 VMs. Reports the test MSE
// (paper: within 1.10).
func BenchmarkFig1aStablePrediction(b *testing.B) {
	cfg := experiments.DefaultFig1aConfig(benchSeed)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1a(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MSE, "MSE")
	}
}

// BenchmarkFig1bDynamicCalibration regenerates Fig. 1(b): one dynamic
// 8-VM case study, dynamic prediction with and without calibration.
// Reports both MSEs (paper: calibrated is lower; ≈1.60 in most scenarios).
func BenchmarkFig1bDynamicCalibration(b *testing.B) {
	cfg := experiments.DefaultFig1bConfig(benchSeed)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1b(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithMSE, "MSE-calibrated")
		b.ReportMetric(res.WithoutMSE, "MSE-uncalibrated")
	}
}

// BenchmarkFig1cGapUpdateSweep regenerates Fig. 1(c): the Δ_gap × Δ_update
// MSE matrix with 4 server fans. Reports the matrix extremes
// (paper: 0.70–1.50 across the sweep).
func BenchmarkFig1cGapUpdateSweep(b *testing.B) {
	cfg := experiments.DefaultFig1cConfig(benchSeed)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1c(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := res.MSE[0][0], res.MSE[0][0]
		for _, row := range res.MSE {
			for _, v := range row {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		b.ReportMetric(lo, "MSE-min")
		b.ReportMetric(hi, "MSE-max")
	}
}

// BenchmarkAblationLambda sweeps the calibration learning rate λ (Abl. A).
func BenchmarkAblationLambda(b *testing.B) {
	cfg := experiments.DefaultFig1bConfig(benchSeed)
	cfg.TrainCases = 48
	lambdas := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationLambda(context.Background(), cfg, lambdas, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MSEs[0], "MSE-lambda0")
		b.ReportMetric(res.MSEs[4], "MSE-lambda0.8")
	}
}

// BenchmarkAblationCurveDelta sweeps the Eq. (3) curvature δ (Abl. B).
func BenchmarkAblationCurveDelta(b *testing.B) {
	cfg := experiments.DefaultFig1bConfig(benchSeed)
	cfg.TrainCases = 48
	deltas := []float64{5, 15, 30, 60, 120}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationCurveDelta(context.Background(), cfg, deltas, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MSEs[2], "MSE-delta30")
	}
}

// BenchmarkAblationBaselines compares the SVM against the task-profile, RC,
// linear and mean baselines on one split (Abl. C).
func BenchmarkAblationBaselines(b *testing.B) {
	cfg := experiments.DefaultFig1aConfig(benchSeed)
	cfg.TrainCases = 96
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationBaselines(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.MSE, "MSE-"+row.Name)
		}
	}
}

// BenchmarkAblationFans measures prediction error per fan count (Abl. D).
func BenchmarkAblationFans(b *testing.B) {
	cfg := experiments.DefaultFig1aConfig(benchSeed)
	cfg.TrainCases = 96
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationFans(context.Background(), cfg, []int{1, 2, 4, 6, 8}, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MSEs[2], "MSE-4fans")
	}
}

// --- Micro-benchmarks for the substrates ---

// BenchmarkThermalAdvance measures one simulated second of the server
// thermal model, the inner loop of every experiment.
func BenchmarkThermalAdvance(b *testing.B) {
	srv, err := thermal.NewServer(thermal.DefaultServerParams())
	if err != nil {
		b.Fatal(err)
	}
	srv.SetLoad(0.7, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Advance(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRigRun measures one full 1800 s simulated experiment.
func BenchmarkRigRun(b *testing.B) {
	opts := workload.DefaultGenOptions()
	c, err := workload.GenerateCase(opts, benchSeed, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig, err := testbed.New(c, testbed.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rig.Run(testbed.DefaultRunConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetBuild measures parallel dataset generation for 32 cases.
func BenchmarkDatasetBuild(b *testing.B) {
	cases, err := workload.GenerateCases(workload.DefaultGenOptions(), benchSeed, "ds", 32)
	if err != nil {
		b.Fatal(err)
	}
	opts := dataset.DefaultBuildOptions(benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Build(context.Background(), cases, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMTrain measures ε-SVR training on a 160×16 dataset.
func BenchmarkSVMTrain(b *testing.B) {
	cases, err := workload.GenerateCases(workload.DefaultGenOptions(), benchSeed, "svm", 160)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	x, y := dataset.FeaturesAndTargets(recs)
	scaler, err := svm.NewScaler(-1, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := scaler.Fit(x); err != nil {
		b.Fatal(err)
	}
	xs, err := scaler.TransformAll(x)
	if err != nil {
		b.Fatal(err)
	}
	params := svm.TrainParams{Kernel: svm.Kernel{Type: svm.RBF, Gamma: 0.1}, C: 16, Epsilon: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Train(xs, y, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMPredict measures single-record prediction latency, the
// operation a deployed predictd serves per request.
func BenchmarkSVMPredict(b *testing.B) {
	ctx := context.Background()
	cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), benchSeed, "pl", 48)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	model, err := vmtherm.TrainStable(ctx, recs, vmtherm.FastStableConfig())
	if err != nil {
		b.Fatal(err)
	}
	features := recs[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.PredictFeatures(features); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStableBatch compares fleet-scale batch prediction against the
// naive loop of single Predict calls it replaces. The "looped-single" and
// "batch-64" sub-benchmarks evaluate the same 64 rows; the batch path goes
// through StablePredictor.PredictBatch (shared scaled-feature buffers,
// flattened support vectors, blocked distance pass, table-driven exp) and
// must sustain >= 2x the preds/s of the loop.
func BenchmarkStableBatch(b *testing.B) {
	ctx := context.Background()
	cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), benchSeed, "bb", 64)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	model, err := vmtherm.TrainStable(ctx, recs, vmtherm.FastStableConfig())
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	rows := make([][]float64, batch)
	for i := range rows {
		rows[i] = recs[i%len(recs)].Features
	}

	b.Run("looped-single", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, row := range rows {
				if _, err := model.PredictFeatures(row); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportPredsPerSec(b, batch)
	})
	b.Run("batch-64", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := model.PredictBatch(rows); err != nil {
				b.Fatal(err)
			}
		}
		reportPredsPerSec(b, batch)
	})
}

// BenchmarkServerBatchThroughput measures end-to-end served predictions per
// second through POST /v1/stable/batch — JSON decode, worker-pool dispatch,
// SVM batch kernel, JSON encode — the number a capacity plan for a
// thermal-aware scheduler actually needs.
func BenchmarkServerBatchThroughput(b *testing.B) {
	ctx := context.Background()
	cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), benchSeed, "sb", 64)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	model, err := vmtherm.TrainStable(ctx, recs, vmtherm.FastStableConfig())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := predictserver.New(model)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := predictclient.New(ts.URL)
	if err != nil {
		b.Fatal(err)
	}

	const batch = 64
	rows := make([][]float64, batch)
	for i := range rows {
		rows[i] = recs[i%len(recs)].Features
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.PredictStableBatch(ctx, rows); err != nil {
			b.Fatal(err)
		}
	}
	reportPredsPerSec(b, batch)
}

// benchFleetController assembles the 256-host benchmark fleet: a trained
// fast model, 8 racks, half the machines populated so the anchor pass has
// real work.
func benchFleetController(b *testing.B) (*vmtherm.FleetController, vmtherm.FleetConfig) {
	b.Helper()
	ctx := context.Background()
	cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), benchSeed, "fr", 32)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	model, err := vmtherm.TrainStable(ctx, recs, vmtherm.FastStableConfig())
	if err != nil {
		b.Fatal(err)
	}

	const hosts = 256
	cfg := vmtherm.DefaultFleetConfig()
	cfg.Racks = 8
	cfg.HostsPerRack = hosts / cfg.Racks
	cfg.Seed = benchSeed
	ctl, err := vmtherm.NewFleet(cfg, vmtherm.FleetStablePredictor(model, 1800))
	if err != nil {
		b.Fatal(err)
	}
	// Populate half the fleet so the batch anchor pass has real work.
	opts := vmtherm.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = hosts, hosts
	opts.Host.Cores = 1 << 20
	opts.Host.MemoryGB = 1 << 24
	pool, err := vmtherm.GenerateCase(opts, benchSeed, "fleet-bench")
	if err != nil {
		b.Fatal(err)
	}
	for i, spec := range pool.VMs[:hosts/2] {
		if err := ctl.PlaceAt(ctl.Hosts()[i*2], spec); err != nil {
			b.Fatal(err)
		}
	}
	return ctl, cfg
}

// BenchmarkFleetRound measures one control round of the fleet thermal
// control plane at 256 hosts: Δ_update seconds of simulated physics and
// telemetry, bounded-pipeline drain, per-host session calibration, the
// anchor-cache pass (warm rounds serve ψ_stable anchors from the quantized
// cache; misses fan through the SVM batch kernel), hotspot detection over
// predicted temperatures, and reconciliation — the recurring cost a
// deployment pays per calibration interval. Faster-than-real-time operation
// means ns/op must stay far below Δ_update (15 s).
func BenchmarkFleetRound(b *testing.B) {
	ctl, cfg := benchFleetController(b)
	const hosts = 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
	if d := b.Elapsed().Seconds(); d > 0 {
		b.ReportMetric(float64(hosts*b.N)/d, "hosts/s")
		b.ReportMetric(cfg.UpdateEveryS*float64(b.N)/d, "x-realtime")
	}
}

// benchFleetSim assembles a hosts-sized simulated fleet on the synthetic
// predictor (SVM training at this scale is setup noise, and the point of
// the benchmark is the physics substrate): 32 racks, half the machines
// populated with dynamically profiled VMs so every tick drives real task
// load, plus one warm-up round so the anchor cache and sessions are hot.
func benchFleetSim(b *testing.B, hosts, physWorkers int) *vmtherm.FleetController {
	b.Helper()
	cfg := vmtherm.DefaultFleetConfig()
	cfg.Racks = 32
	cfg.HostsPerRack = hosts / cfg.Racks
	cfg.Seed = benchSeed
	cfg.PhysWorkers = physWorkers
	ctl, err := vmtherm.NewFleet(cfg, vmtherm.FleetSyntheticPredictor(75))
	if err != nil {
		b.Fatal(err)
	}
	opts := vmtherm.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = hosts/2, hosts/2
	opts.Host.Cores = 1 << 20
	opts.Host.MemoryGB = 1 << 24
	opts.Dynamic = true
	pool, err := vmtherm.GenerateCase(opts, benchSeed, "fleet-bench-scale")
	if err != nil {
		b.Fatal(err)
	}
	ids := ctl.Hosts()
	for i, spec := range pool.VMs {
		if err := ctl.PlaceAt(ids[i*2], spec); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := ctl.RunRound(); err != nil {
		b.Fatal(err)
	}
	return ctl
}

// BenchmarkFleetRound4k measures one warm control round at 4096 simulated
// hosts, where the thermal/VM physics tick dominates the round. "serial"
// pins PhysWorkers=1; "sharded" uses the default worker pool (min(cores,
// 8)) that advances racks independently. Results are bit-identical across
// the two (pinned by TestParallelPhysicsValueIdentical); on a multi-core
// runner the sharded hosts/s must scale with cores. On a single-core
// machine the two sub-benchmarks coincide.
func BenchmarkFleetRound4k(b *testing.B) {
	const hosts = 4096
	for _, sub := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"sharded", 0}, // 0 = default min(GOMAXPROCS, 8)
	} {
		b.Run(sub.name, func(b *testing.B) {
			ctl := benchFleetSim(b, hosts, sub.workers)
			cfg := ctl.Config()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctl.RunRound(); err != nil {
					b.Fatal(err)
				}
			}
			if d := b.Elapsed().Seconds(); d > 0 {
				b.ReportMetric(float64(hosts*b.N)/d, "hosts/s")
				b.ReportMetric(cfg.UpdateEveryS*float64(b.N)/d, "x-realtime")
			}
		})
	}
}

// BenchmarkSnapshotRead measures the published-snapshot read path at 1024
// hosts. "view" is the scoped copy-on-read borrow (ViewSnapshot) the HTTP
// handlers use — it must be allocation-free, since it hands out the
// epoch-versioned generation instead of cloning three O(hosts) maps the
// way the pre-PR5 Hotspots() did. "borrow" is the unscoped Hotspots()
// borrow (also allocation-free; the cost moved to the writer, which
// retires the escaped generation).
func BenchmarkSnapshotRead(b *testing.B) {
	const hosts = 1024
	cfg := vmtherm.DefaultFleetConfig()
	cfg.MaxHosts = hosts
	readings := make([]vmtherm.FleetReading, hosts)
	for i := range readings {
		readings[i] = vmtherm.FleetReading{
			HostID:  fmt.Sprintf("s%02d-h%03d", i/64, i%64),
			AtS:     float64(i) * 15.0 / hosts,
			TempC:   30 + float64(i%40),
			Util:    float64(i%101) / 100,
			MemFrac: float64(i%53) / 52,
		}
	}
	src, err := vmtherm.NewTraceSource(readings, vmtherm.TraceOptions{Loop: true})
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := vmtherm.NewFleetWithSource(cfg, src, vmtherm.FleetSyntheticPredictor(75))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := ctl.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("view", func(b *testing.B) {
		var n int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.ViewSnapshot(func(s *vmtherm.FleetSnapshot) { n = len(s.Predicted) })
		}
		if n != hosts {
			b.Fatalf("view saw %d predictions, want %d", n, hosts)
		}
		if d := b.Elapsed().Seconds(); d > 0 {
			b.ReportMetric(float64(b.N)/d, "reads/s")
		}
	})
	b.Run("borrow", func(b *testing.B) {
		var snap vmtherm.FleetSnapshot
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap = ctl.Hotspots()
		}
		if len(snap.Predicted) != hosts {
			b.Fatalf("borrow saw %d predictions, want %d", len(snap.Predicted), hosts)
		}
		if d := b.Elapsed().Seconds(); d > 0 {
			b.ReportMetric(float64(b.N)/d, "reads/s")
		}
	})
}

// benchPlaceFleet assembles the 16,384-host placement benchmark fleet on
// the synthetic predictor, with hosts fat enough that capacity never binds —
// the benchmark must measure the placement plane (ranking, shortlist,
// batched prediction), not capacity exhaustion. One warm round publishes the
// snapshot the plan ranks against.
func benchPlaceFleet(b *testing.B) *vmtherm.FleetController {
	b.Helper()
	cfg := vmtherm.DefaultFleetConfig()
	cfg.Racks = 64
	cfg.HostsPerRack = 256
	cfg.Seed = benchSeed
	cfg.HostShape.Cores = 1 << 20
	cfg.HostShape.MemoryGB = 1 << 24
	ctl, err := vmtherm.NewFleet(cfg, vmtherm.FleetSyntheticPredictor(75))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ctl.RunRound(); err != nil {
		b.Fatal(err)
	}
	return ctl
}

// BenchmarkPlaceBatch measures the batch placement plane at 16,384 hosts.
// The batch-N sub-benchmarks place N uniquely-named VMs per PlaceBatch call;
// looped-placenow-1024 places the same 1024 VMs through sequential PlaceNow
// calls — the pre-batch API shape, where every request pays its own
// candidate shortlist (up to 256 post-placement case builds + predictions)
// instead of splitting one shared budget across the queue. The contract is
// batch-1024 sustaining >= 5x the vms/s of the loop.
func BenchmarkPlaceBatch(b *testing.B) {
	ctl := benchPlaceFleet(b)
	var seq int64
	specs := func(n int) []vmtherm.VMSpec {
		out := make([]vmtherm.VMSpec, n)
		for i := range out {
			seq++
			out[i] = vmtherm.FleetHeavyVMSpec(fmt.Sprintf("bench-%09d", seq), 1, 2)
		}
		return out
	}
	check := func(b *testing.B, dec vmtherm.FleetPlacementDecision) {
		if dec.Status != vmtherm.FleetPlaced {
			b.Fatalf("placement %s (%s): %s", dec.Status, dec.Code, dec.Reason)
		}
	}
	for _, size := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				decs, err := ctl.PlaceBatch(specs(size))
				if err != nil {
					b.Fatal(err)
				}
				for _, dec := range decs {
					check(b, dec)
				}
			}
			if d := b.Elapsed().Seconds(); d > 0 {
				b.ReportMetric(float64(size*b.N)/d, "vms/s")
			}
		})
	}
	b.Run("looped-placenow-1024", func(b *testing.B) {
		const n = 1024
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, spec := range specs(n) {
				dec, err := ctl.PlaceNow(spec)
				if err != nil {
					b.Fatal(err)
				}
				check(b, dec)
			}
		}
		if d := b.Elapsed().Seconds(); d > 0 {
			b.ReportMetric(float64(n*b.N)/d, "vms/s")
		}
	})
}

// BenchmarkFleetRoundCold measures the same control round with the anchor
// cache invalidated before every round — the mass re-anchor worst case
// (first sight of a fleet, model hot-swap, migration wave) where every
// occupied host's ψ_stable must go through the batch predictor. This is the
// path the worker-sharded miss fan-out exists for.
func BenchmarkFleetRoundCold(b *testing.B) {
	ctl, cfg := benchFleetController(b)
	const hosts = 256
	if _, err := ctl.RunRound(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.InvalidateAnchorCache()
		if _, err := ctl.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
	if d := b.Elapsed().Seconds(); d > 0 {
		b.ReportMetric(float64(hosts*b.N)/d, "hosts/s")
		b.ReportMetric(cfg.UpdateEveryS*float64(b.N)/d, "x-realtime")
	}
}

// BenchmarkAnchorCache measures the warm anchor path at 1024 hosts: a
// source-driven controller replaying one sample per host per round, every
// host hitting the quantized anchor cache — key derivation, lookup, and
// anchor-map fill, with zero batch-predictor work (hit-% must stay 100).
// The warm anchors() pass is allocation-free (pinned by the fleet unit
// tests), and since the epoch-versioned snapshot landed the whole warm
// round is too (TestWarmRoundZeroAlloc) — the residual B/op here is the
// first rounds' generation warm-up amortized over the run.
func BenchmarkAnchorCache(b *testing.B) {
	const hosts = 1024
	cfg := vmtherm.DefaultFleetConfig()
	cfg.MaxHosts = hosts
	readings := make([]vmtherm.FleetReading, hosts)
	for i := range readings {
		readings[i] = vmtherm.FleetReading{
			HostID: fmt.Sprintf("a%02d-h%03d", i/64, i%64),
			// Spread over one Δ_update so a looped replay emits one sample
			// per host per 15 s round.
			AtS:     float64(i) * 15.0 / hosts,
			TempC:   30 + float64(i%40),
			Util:    float64(i%101) / 100,
			MemFrac: float64(i%53) / 52,
		}
	}
	src, err := vmtherm.NewTraceSource(readings, vmtherm.TraceOptions{Loop: true})
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := vmtherm.NewFleetWithSource(cfg, src, vmtherm.FleetSyntheticPredictor(75))
	if err != nil {
		b.Fatal(err)
	}
	// One round discovers the population and fills the cache.
	if _, err := ctl.RunRound(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var hits, misses int
	for i := 0; i < b.N; i++ {
		rep, err := ctl.RunRound()
		if err != nil {
			b.Fatal(err)
		}
		hits += rep.AnchorHits
		misses += rep.AnchorMisses
	}
	if d := b.Elapsed().Seconds(); d > 0 {
		b.ReportMetric(float64(hosts*b.N)/d, "hosts/s")
	}
	if total := hits + misses; total > 0 {
		b.ReportMetric(100*float64(hits)/float64(total), "hit-%")
	}
}

// BenchmarkEngineRound measures one steady-state control round of the
// unified session engine at 1024 hosts: staleness accounting, calibration,
// re-anchor checks and Δ_gap-ahead prediction per host — the hot path under
// both the fleet control plane and the prediction service. The engine's
// contract is zero allocations per round (the B/op column must stay 0).
func BenchmarkEngineRound(b *testing.B) {
	eng, err := engine.New(engine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const hosts = 1024
	order := make([]string, hosts)
	latest := make(map[string]telemetry.Reading, hosts)
	anchors := make(map[string]float64, hosts)
	for i := range order {
		id := fmt.Sprintf("r%02d-h%03d", i/64, i%64)
		order[i] = id
		latest[id] = telemetry.Reading{HostID: id, AtS: 0, TempC: 25 + float64(i%30)}
		anchors[id] = 40 + float64(i%40)
	}
	// Build every session before timing: steady state, not cold start.
	dst, _ := eng.Round(nil, 0, order, latest, anchors)
	now := 0.0

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 15
		for _, id := range order {
			r := latest[id]
			r.AtS = now
			r.TempC = 25 + float64((i+int(r.TempC))%30)
			latest[id] = r
		}
		dst, _ = eng.Round(dst[:0], now, order, latest, anchors)
		if len(dst) != hosts {
			b.Fatalf("round produced %d predictions, want %d", len(dst), hosts)
		}
	}
	if d := b.Elapsed().Seconds(); d > 0 {
		b.ReportMetric(float64(hosts*b.N)/d, "hosts/s")
	}
}

// BenchmarkMigrationStudy measures dynamic prediction through a live VM
// migration — the "dynamic scenario" the paper's introduction motivates.
func BenchmarkMigrationStudy(b *testing.B) {
	cfg := experiments.DefaultFig1bConfig(benchSeed)
	cfg.TrainCases = 48
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMigrationStudy(context.Background(), cfg, 900)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithMSE, "MSE-calibrated")
		b.ReportMetric(res.WithoutMSE, "MSE-uncalibrated")
	}
}

// BenchmarkAblationSensorNoise sweeps sensor noise σ (Abl. E): how much of
// the prediction error floor is the sensor path.
func BenchmarkAblationSensorNoise(b *testing.B) {
	cfg := experiments.DefaultFig1aConfig(benchSeed)
	cfg.TrainCases = 96
	cfg.TestCases = 12
	sigmas := []float64{0, 0.2, 0.4, 0.8, 1.6}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSensorNoise(context.Background(), cfg, sigmas)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MSEs[0], "MSE-sigma0")
		b.ReportMetric(res.MSEs[2], "MSE-sigma0.4")
		b.ReportMetric(res.MSEs[4], "MSE-sigma1.6")
	}
}

// BenchmarkStreamObserve measures the engine's event-driven hot path at
// 1024 warm sessions, batch 1024 readings per op: "observe" is the
// per-arrival ObserveBatch apply (inline calibration when Δ_update has
// elapsed), "predict-fresh" the synchronous observe+predict behind
// `predict: true` ingest, "predict-one" the lock-striped Δ_gap-ahead read.
// The warm paths are allocation-free (pinned by
// TestStreamObserveZeroAllocWarm) — the B/op column must stay 0.
func BenchmarkStreamObserve(b *testing.B) {
	const hosts = 1024
	build := func(b *testing.B) (*engine.Engine, []telemetry.Reading) {
		b.Helper()
		eng, err := engine.New(engine.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		readings := make([]telemetry.Reading, hosts)
		for i := range readings {
			id := fmt.Sprintf("r%02d-h%03d", i/64, i%64)
			if err := eng.Create(id, engine.SessionParams{
				Phi0: 25 + float64(i%30), StableC: 40 + float64(i%40),
			}); err != nil {
				b.Fatal(err)
			}
			readings[i] = telemetry.Reading{
				HostID: id, AtS: 0,
				TempC: 25 + float64(i%30), Util: float64(i%101) / 100, MemFrac: 0.4,
			}
		}
		return eng, readings
	}
	advance := func(readings []telemetry.Reading, now float64) {
		for i := range readings {
			readings[i].AtS = now
			readings[i].TempC = 25 + float64((int(now)+i)%30)
		}
	}

	b.Run("observe", func(b *testing.B) {
		eng, readings := build(b)
		now := 0.0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += 5 // sampling interval: calibration fires every 3rd pass
			advance(readings, now)
			if st := eng.ObserveBatch(readings, nil); st.Applied != hosts {
				b.Fatalf("stream stats %+v, want %d applied", st, hosts)
			}
		}
		if d := b.Elapsed().Seconds(); d > 0 {
			b.ReportMetric(float64(hosts*b.N)/d, "readings/s")
		}
	})
	b.Run("predict-fresh", func(b *testing.B) {
		eng, readings := build(b)
		now := 0.0
		var st engine.StreamStats
		var p engine.Prediction
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += 5
			advance(readings, now)
			for j := range readings {
				if !eng.PredictFresh(readings[j], nil, &st, &p) {
					b.Fatalf("host %s deferred", readings[j].HostID)
				}
			}
		}
		if d := b.Elapsed().Seconds(); d > 0 {
			b.ReportMetric(float64(hosts*b.N)/d, "preds/s")
		}
	})
	b.Run("predict-one", func(b *testing.B) {
		eng, readings := build(b)
		eng.ObserveBatch(readings, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range readings {
				if _, err := eng.PredictOne(readings[j].HostID, 5); err != nil {
					b.Fatal(err)
				}
			}
		}
		if d := b.Elapsed().Seconds(); d > 0 {
			b.ReportMetric(float64(hosts*b.N)/d, "preds/s")
		}
	})
}

// BenchmarkIngestPush measures the fleet telemetry push path at 1024 hosts,
// batch 256 readings per op — the cost behind one /v1/fleet/ingest request
// minus HTTP. "buffered" pushes into the bounded pipeline only (the
// round-based path, with the drain map pre-sized from the host count);
// "streamed" additionally applies every reading on arrival (observe →
// calibrate → live hotspot index); "predict" also returns the synchronous
// Δ_gap-ahead prediction per reading. Untimed control rounds drain the
// pipeline before it fills, so drops never contaminate the measurement.
func BenchmarkIngestPush(b *testing.B) {
	const hosts = 1024
	const batch = 256
	for _, sub := range []struct {
		name               string
		streaming, predict bool
	}{
		{"buffered", false, false},
		{"streamed", true, false},
		{"predict", true, true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			cfg := vmtherm.DefaultFleetConfig()
			cfg.MaxHosts = hosts
			cfg.IngestBuffer = 1 << 16
			cfg.StreamingIngest = sub.streaming
			base := make([]vmtherm.FleetReading, hosts)
			for i := range base {
				base[i] = vmtherm.FleetReading{
					HostID:  fmt.Sprintf("a%02d-h%03d", i/64, i%64),
					AtS:     float64(i) * 15.0 / hosts,
					TempC:   30 + float64(i%40),
					Util:    float64(i%101) / 100,
					MemFrac: float64(i%53) / 52,
				}
			}
			src, err := vmtherm.NewTraceSource(base, vmtherm.TraceOptions{Loop: true})
			if err != nil {
				b.Fatal(err)
			}
			ctl, err := vmtherm.NewFleetWithSource(cfg, src, vmtherm.FleetSyntheticPredictor(75))
			if err != nil {
				b.Fatal(err)
			}
			// Two rounds: discover the population, then warm every session.
			for r := 0; r < 2; r++ {
				if _, err := ctl.RunRound(); err != nil {
					b.Fatal(err)
				}
			}
			readings := make([]vmtherm.FleetReading, batch)
			results := make([]vmtherm.FleetIngestResult, batch)
			seq, buffered := 0, 0
			wantOutcome := vmtherm.FleetIngestBuffered
			if sub.streaming {
				wantOutcome = vmtherm.FleetIngestStreamed
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buffered+batch > cfg.IngestBuffer/2 {
					b.StopTimer()
					if _, err := ctl.RunRound(); err != nil {
						b.Fatal(err)
					}
					buffered = 0
					b.StartTimer()
				}
				for j := range readings {
					r := base[seq%hosts]
					r.AtS = 30 + float64(seq)*15.0/hosts
					readings[j] = r
					seq++
				}
				if n := ctl.IngestBatch(readings, sub.predict, results); n != batch {
					b.Fatalf("accepted %d/%d readings", n, batch)
				}
				buffered += batch
				if results[0].Outcome != wantOutcome {
					b.Fatalf("outcome %v, want %v", results[0].Outcome, wantOutcome)
				}
			}
			if d := b.Elapsed().Seconds(); d > 0 {
				b.ReportMetric(float64(batch*b.N)/d, "readings/s")
			}
		})
	}
}
