package vmtherm

import (
	"io"

	"vmtherm/internal/anchorcache"
	"vmtherm/internal/checkpoint"
	"vmtherm/internal/dataset"
	"vmtherm/internal/fleet"
	"vmtherm/internal/telemetry"
)

// Fleet-layer re-exports: the thermal control plane that closes the paper's
// proactive-management loop — streaming telemetry into per-host dynamic
// sessions, batch ψ_stable anchoring, a Δ_gap-ahead hotspot map, and
// thermal-aware placement/migration at datacenter scale.
type (
	// FleetConfig parameterizes the control plane.
	FleetConfig = fleet.Config
	// FleetController runs the closed loop.
	FleetController = fleet.Controller
	// FleetReading is one telemetry observation of one host.
	FleetReading = fleet.Reading
	// FleetSnapshot is the published per-round hotspot view.
	FleetSnapshot = fleet.Snapshot
	// FleetHotspot is one predicted-over-threshold host.
	FleetHotspot = fleet.Hotspot
	// FleetRoundReport carries one control round's metrics.
	FleetRoundReport = fleet.RoundReport
	// FleetPlacementDecision records one VM request's typed outcome.
	FleetPlacementDecision = fleet.PlacementDecision
	// FleetPlaceStatus classifies a placement decision (placed / queued /
	// rejected).
	FleetPlaceStatus = fleet.PlaceStatus
	// FleetRejectCode is the typed reason a placement was refused.
	FleetRejectCode = fleet.RejectCode
	// FleetAdmissionPolicy bounds what the placement plane will accept
	// (headroom budget, queue depth, per-round cap).
	FleetAdmissionPolicy = fleet.AdmissionPolicy
	// BatchCasePredictor predicts ψ_stable for many cases at once.
	BatchCasePredictor = fleet.BatchCasePredictor
	// FleetIngestResult is the per-reading outcome of a streaming push
	// (Controller.IngestBatch): buffered, streamed, deferred, or dropped,
	// plus the synchronous prediction when one was requested.
	FleetIngestResult = fleet.IngestResult
	// FleetIngestOutcome classifies one pushed reading's fate.
	FleetIngestOutcome = fleet.IngestOutcome
)

// Placement decision statuses and rejection codes.
const (
	FleetPlaced   = fleet.Placed
	FleetQueued   = fleet.Queued
	FleetRejected = fleet.Rejected

	FleetRejectInfeasible  = fleet.RejectInfeasible
	FleetRejectNoCapacity  = fleet.RejectNoCapacity
	FleetRejectNoHeadroom  = fleet.RejectNoHeadroom
	FleetRejectQueueFull   = fleet.RejectQueueFull
	FleetRejectNoSubstrate = fleet.RejectNoSubstrate
	FleetRejectDuplicateID = fleet.RejectDuplicateID

	FleetIngestBuffered = fleet.IngestBuffered
	FleetIngestStreamed = fleet.IngestStreamed
	FleetIngestDeferred = fleet.IngestDeferred
	FleetIngestDropped  = fleet.IngestDropped
)

// DefaultFleetConfig is a 4-rack × 16-host fleet with the paper's dynamic
// parameters.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// NewFleet builds a control plane over a freshly assembled simulated fleet.
func NewFleet(cfg FleetConfig, predict BatchCasePredictor) (*FleetController, error) {
	return fleet.New(cfg, predict)
}

// FleetStablePredictor adapts a trained stable model into the batch shape
// the controller fans prediction rounds through.
func FleetStablePredictor(model *StablePredictor, horizonS float64) BatchCasePredictor {
	return fleet.StableBatchPredictor(model, horizonS)
}

// FleetSyntheticPredictor is the no-SVM physics stand-in (ambient +
// risePerUtilC × utilization) for demos and smoke runs.
func FleetSyntheticPredictor(risePerUtilC float64) BatchCasePredictor {
	return fleet.SyntheticStablePredictor(risePerUtilC)
}

// FleetHeavyVMSpec builds a VM pinning vcpus of constant full CPU load —
// the adversarial tenant used to provoke hotspots.
func FleetHeavyVMSpec(id string, vcpus int, memGB float64) VMSpec {
	return fleet.HeavyVMSpec(id, vcpus, memGB)
}

// AnchorCacheStats are the quantized ψ_stable anchor cache's cumulative
// counters (hits, misses, evictions, invalidations).
type AnchorCacheStats = anchorcache.Stats

// Checkpoint re-exports: the crash-safe snapshot/restore layer
// (internal/checkpoint) behind fleetd/predictd's -checkpoint-file. A
// controller's full serving state — engine sessions with their γ
// calibration and staleness clocks, the round counter, pending placements,
// the hotspot index, the anchor cache — round-trips through a versioned,
// CRC-protected, atomically written two-generation file set.
type (
	// CheckpointState is one captured controller state
	// (FleetController.Checkpoint / Restore).
	CheckpointState = checkpoint.State
	// CheckpointManager owns the two-generation store plus the counters
	// served by GET /v1/fleet/checkpoint.
	CheckpointManager = checkpoint.Manager
	// CheckpointStatus is the checkpoint subsystem's observable state.
	CheckpointStatus = checkpoint.Status
)

// NewCheckpointManager roots a checkpoint manager at the -checkpoint-file
// base path (generations at <path>.1 / <path>.2).
func NewCheckpointManager(path string, intervalS float64) *CheckpointManager {
	return checkpoint.NewManager(path, intervalS)
}

// Telemetry-source re-exports: the pluggable data path that lets the same
// closed loop run against synthetic fleets, recorded experiments, or live
// Prometheus exporters.
type (
	// TelemetrySource streams host readings into the control plane.
	TelemetrySource = telemetry.Source
	// TelemetryRecorder retains every reading it is offered — the tee that
	// captures a live run as a replayable trace (fleetd -record).
	TelemetryRecorder = telemetry.Recorder
	// TraceSource replays a recorded trace deterministically.
	TraceSource = telemetry.TraceSource
	// TraceOptions tune trace replay (speed, looping).
	TraceOptions = telemetry.TraceOptions
	// ScrapeSource ingests any Prometheus-exposition endpoint.
	ScrapeSource = telemetry.ScrapeSource
	// ScrapeConfig parameterizes a scraper (metric/label names, URL).
	ScrapeConfig = telemetry.ScrapeConfig
)

// SortReadings orders readings by time then host id — the canonical trace
// order recordings are written in.
func SortReadings(rs []FleetReading) { telemetry.SortReadings(rs) }

// NewFleetWithSource builds a control plane over an external telemetry
// source (trace replay, live scraping) instead of a simulated fleet.
func NewFleetWithSource(cfg FleetConfig, src TelemetrySource, predict BatchCasePredictor) (*FleetController, error) {
	return fleet.NewWithSource(cfg, src, predict)
}

// NewTraceSource builds a deterministic replay source over readings.
func NewTraceSource(readings []FleetReading, opts TraceOptions) (*TraceSource, error) {
	return telemetry.NewTraceSource(readings, opts)
}

// NewScrapeSource builds a Prometheus-exposition scraper; zero-valued
// metric/label names target vmtherm's own /metrics export.
func NewScrapeSource(cfg ScrapeConfig) (*ScrapeSource, error) {
	return telemetry.NewScrapeSource(cfg)
}

// ReadTrace parses a telemetry trace CSV written by WriteTrace.
func ReadTrace(r io.Reader) ([]FleetReading, error) { return dataset.ReadTrace(r) }

// WriteTrace serializes readings as a replayable trace CSV.
func WriteTrace(w io.Writer, readings []FleetReading) error { return dataset.WriteTrace(w, readings) }
