package vmtherm

import (
	"vmtherm/internal/fleet"
)

// Fleet-layer re-exports: the thermal control plane that closes the paper's
// proactive-management loop — streaming telemetry into per-host dynamic
// sessions, batch ψ_stable anchoring, a Δ_gap-ahead hotspot map, and
// thermal-aware placement/migration at datacenter scale.
type (
	// FleetConfig parameterizes the control plane.
	FleetConfig = fleet.Config
	// FleetController runs the closed loop.
	FleetController = fleet.Controller
	// FleetReading is one telemetry observation of one host.
	FleetReading = fleet.Reading
	// FleetSnapshot is the published per-round hotspot view.
	FleetSnapshot = fleet.Snapshot
	// FleetHotspot is one predicted-over-threshold host.
	FleetHotspot = fleet.Hotspot
	// FleetRoundReport carries one control round's metrics.
	FleetRoundReport = fleet.RoundReport
	// FleetPlacementDecision records one VM request's outcome.
	FleetPlacementDecision = fleet.PlacementDecision
	// BatchCasePredictor predicts ψ_stable for many cases at once.
	BatchCasePredictor = fleet.BatchCasePredictor
)

// DefaultFleetConfig is a 4-rack × 16-host fleet with the paper's dynamic
// parameters.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// NewFleet builds a control plane over a freshly assembled simulated fleet.
func NewFleet(cfg FleetConfig, predict BatchCasePredictor) (*FleetController, error) {
	return fleet.New(cfg, predict)
}

// FleetStablePredictor adapts a trained stable model into the batch shape
// the controller fans prediction rounds through.
func FleetStablePredictor(model *StablePredictor, horizonS float64) BatchCasePredictor {
	return fleet.StableBatchPredictor(model, horizonS)
}

// FleetSyntheticPredictor is the no-SVM physics stand-in (ambient +
// risePerUtilC × utilization) for demos and smoke runs.
func FleetSyntheticPredictor(risePerUtilC float64) BatchCasePredictor {
	return fleet.SyntheticStablePredictor(risePerUtilC)
}

// FleetHeavyVMSpec builds a VM pinning vcpus of constant full CPU load —
// the adversarial tenant used to provoke hotspots.
func FleetHeavyVMSpec(id string, vcpus int, memGB float64) VMSpec {
	return fleet.HeavyVMSpec(id, vcpus, memGB)
}
