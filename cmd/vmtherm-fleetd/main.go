// vmtherm-fleetd runs the fleet thermal control plane end to end: a
// simulated datacenter of racks × hosts streams telemetry through the
// bounded ingest pipeline into per-host dynamic prediction sessions, every
// round batch-predicts ψ_stable anchors through the SVM batch kernel, rolls
// Δ_gap-ahead temperatures into a hotspot map, reconciles migration
// proposals, and places incoming VM requests thermally — printing one
// summary line per round.
//
// The loop runs simulated time faster than real time; the final summary
// reports the speedup so a capacity plan can check that a real deployment
// at the same calibration interval would keep up.
//
// Usage:
//
//	vmtherm-fleetd -racks 8 -hosts 32 -rounds 40          # train a fast model, run
//	vmtherm-fleetd -model model.svm -rounds 40            # use a pretrained model
//	vmtherm-fleetd -synthetic -rounds 40                  # no SVM, physics stand-in
//	vmtherm-fleetd -addr :8080 -rounds 0                  # serve /v1/fleet/* forever
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmtherm"
	"vmtherm/internal/predictserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmtherm-fleetd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		racks      = flag.Int("racks", 8, "number of racks")
		hosts      = flag.Int("hosts", 32, "hosts per rack")
		rounds     = flag.Int("rounds", 40, "control rounds to run (0 = until interrupted)")
		seed       = flag.Int64("seed", 2016, "simulation seed")
		threshold  = flag.Float64("threshold", 65, "hotspot threshold, °C")
		update     = flag.Float64("update", 15, "Δ_update calibration interval, s")
		gap        = flag.Float64("gap", 60, "Δ_gap prediction horizon, s")
		arrivals   = flag.Int("arrivals", 2, "VM requests submitted per round")
		migrations = flag.Int("migrations", 1, "max migrations applied per round")
		hotseed    = flag.Int("hotseed", 0, "force-place this many heavy VMs on r0-h0 to provoke a hotspot")
		trainCases = flag.Int("train-cases", 24, "simulated experiments to train the fast model on")
		modelPath  = flag.String("model", "", "load a pretrained stable model instead of training")
		synthetic  = flag.Bool("synthetic", false, "skip the SVM; use a physics stand-in predictor")
		addr       = flag.String("addr", "", "optional listen address for /v1/fleet endpoints")
		pace       = flag.Bool("pace", false, "pace rounds to wall-clock Δ_update (default when serving forever)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var model *vmtherm.StablePredictor
	var predict vmtherm.BatchCasePredictor
	switch {
	case *synthetic:
		predict = vmtherm.FleetSyntheticPredictor(75)
		log.Print("using synthetic physics predictor (no SVM)")
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		model, err = vmtherm.LoadStable(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("loading model: %w", err)
		}
		log.Printf("loaded stable model from %s", *modelPath)
	default:
		log.Printf("training fast stable model on %d simulated experiments...", *trainCases)
		cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), *seed, "fleet-train", *trainCases)
		if err != nil {
			return err
		}
		recs, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(*seed))
		if err != nil {
			return err
		}
		model, err = vmtherm.TrainStable(ctx, recs, vmtherm.FastStableConfig())
		if err != nil {
			return err
		}
	}
	if predict == nil {
		predict = vmtherm.FleetStablePredictor(model, 1800)
	}

	cfg := vmtherm.DefaultFleetConfig()
	cfg.Racks = *racks
	cfg.HostsPerRack = *hosts
	cfg.ThresholdC = *threshold
	cfg.UpdateEveryS = *update
	cfg.GapS = *gap
	cfg.MaxMigrationsPerRound = *migrations
	cfg.Seed = *seed
	ctl, err := vmtherm.NewFleet(cfg, predict)
	if err != nil {
		return err
	}
	n := *racks * *hosts
	log.Printf("fleet: %d racks × %d hosts = %d servers, Δ_update %.0fs, Δ_gap %.0fs, threshold %.1f°C",
		*racks, *hosts, n, cfg.UpdateEveryS, cfg.GapS, cfg.ThresholdC)

	// An optional adversarial seed: pile heavy VMs onto one machine so the
	// proactive loop (flag from prediction → propose → migrate) is visible.
	for v := 0; v < *hotseed; v++ {
		spec := vmtherm.FleetHeavyVMSpec(fmt.Sprintf("hotseed-%02d", v), 4, 8)
		if err := ctl.PlaceAt("r0-h0", spec); err != nil {
			return fmt.Errorf("hotseed: %w", err)
		}
	}

	// Seed the fleet with an initial tenant population (~40% of capacity)
	// placed thermally, then feed fresh arrivals every round.
	arrivalStream, err := arrivalSpecs(*seed, n*2)
	if err != nil {
		return err
	}
	next := 0
	for i := 0; i < n/2 && next < len(arrivalStream); i++ {
		ctl.Submit(arrivalStream[next])
		next++
	}

	if *addr != "" {
		if model == nil {
			return fmt.Errorf("-addr requires a stable model (drop -synthetic)")
		}
		srv, err := predictserver.New(model, predictserver.WithFleet(ctl))
		if err != nil {
			return err
		}
		defer srv.Close()
		httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("http: %v", err)
			}
		}()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutCtx)
		}()
		log.Printf("serving fleet API on %s", *addr)
	}

	// Serving forever at simulation speed would just spin the CPU; pace the
	// loop to real time unless told otherwise.
	paced := *pace || (*rounds == 0 && *addr != "")
	if paced {
		log.Printf("pacing rounds to wall-clock Δ_update (%.0fs)", cfg.UpdateEveryS)
	}
	start := time.Now()
	var simSeconds float64
	var totalHotspots, totalMoves, totalPlaced int
loop:
	for round := 1; *rounds == 0 || round <= *rounds; round++ {
		select {
		case <-ctx.Done():
			log.Print("interrupted")
			break loop
		default:
		}
		for a := 0; a < *arrivals && next < len(arrivalStream); a++ {
			ctl.Submit(arrivalStream[next])
			next++
		}
		rep, err := ctl.RunRound()
		if err != nil {
			return err
		}
		simSeconds += cfg.UpdateEveryS
		totalHotspots += rep.Hotspots
		totalMoves += rep.AppliedMoves
		totalPlaced += rep.Placements
		speedup := cfg.UpdateEveryS / rep.Latency.Seconds()
		fmt.Printf("round %3d t=%5.0fs | sessions %3d/%3d | telemetry %4d (drops %d) | stale %2d | hotspots %2d (max %.1f°C) | placed %d rejected %d | moves %d/%d | %6.1fms (ctl %.1fms) | %6.0f× realtime\n",
			rep.Round, rep.SimTimeS, rep.SessionsLive, rep.Hosts,
			rep.TelemetryDrained, rep.DroppedTotal, rep.StaleHosts,
			rep.Hotspots, rep.MaxPredictedC, rep.Placements, rep.Rejections,
			rep.AppliedMoves, rep.ProposedMoves,
			float64(rep.Latency.Microseconds())/1000,
			float64(rep.ControlLatency.Microseconds())/1000, speedup)
		if paced {
			wait := time.Duration(cfg.UpdateEveryS*float64(time.Second)) - rep.Latency
			if wait > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(wait):
				}
			}
		}
	}
	wall := time.Since(start)
	log.Printf("simulated %.0fs of fleet time in %v (%.0f× real time): %d hotspot-rounds, %d migrations, %d placements",
		simSeconds, wall.Round(time.Millisecond), simSeconds/wall.Seconds(),
		totalHotspots, totalMoves, totalPlaced)
	if wall.Seconds() < simSeconds {
		log.Printf("OK: a %.0fs calibration interval is sustainable in real time at this fleet size", cfg.UpdateEveryS)
	} else {
		log.Printf("WARNING: control loop slower than real time at this fleet size")
	}
	return nil
}

// arrivalSpecs generates a deterministic stream of VM requests, using one
// oversized generated case as a convenient spec factory.
func arrivalSpecs(seed int64, count int) ([]vmtherm.VMSpec, error) {
	opts := vmtherm.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = count, count
	opts.Host.Cores = 1 << 20
	opts.Host.MemoryGB = 1 << 24
	opts.Dynamic = true
	c, err := vmtherm.GenerateCase(opts, seed, "fleet-arrivals")
	if err != nil {
		return nil, err
	}
	return c.VMs, nil
}
