// vmtherm-fleetd runs the fleet thermal control plane end to end against a
// pluggable telemetry source: per-host readings stream through the bounded
// ingest pipeline into the unified session engine, every round
// batch-predicts ψ_stable anchors through the SVM batch kernel, rolls
// Δ_gap-ahead temperatures into a hotspot map, reconciles migration
// proposals, and places incoming VM requests thermally — printing one
// summary line per round.
//
// Sources (-source):
//
//	sim     a simulated datacenter of racks × hosts (default); the loop runs
//	        simulated time faster than real time and the final summary
//	        reports the speedup
//	trace   deterministic replay of a recorded trace CSV (-trace), at
//	        optional real-time pacing (-speed); recorded experiments become
//	        first-class workloads
//	scrape  live ingestion from any Prometheus-exposition endpoint
//	        (-scrape-url), e.g. a Kepler node exporter or another vmtherm's
//	        /metrics; rounds pace to wall-clock Δ_update
//
// Usage:
//
//	vmtherm-fleetd -racks 8 -hosts 32 -rounds 40          # train a fast model, run
//	vmtherm-fleetd -model model.svm -rounds 40            # use a pretrained model
//	vmtherm-fleetd -synthetic -rounds 40                  # no SVM, physics stand-in
//	vmtherm-fleetd -addr :8080 -rounds 0                  # serve /v1/fleet/* forever
//	vmtherm-fleetd -record run.csv -rounds 40             # capture the run as a trace
//	vmtherm-fleetd -source trace -trace run.csv -synthetic
//	vmtherm-fleetd -source scrape -scrape-url http://kepler:9102/metrics -synthetic
//	vmtherm-fleetd -anchor-cache=false                    # A/B the anchor cache off
//	vmtherm-fleetd -source trace -trace run.csv -synthetic -checkpoint-file /var/lib/vmtherm/ckpt
//	                                                      # crash-safe: restart resumes warm
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vmtherm"
	"vmtherm/internal/predictserver"
	"vmtherm/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmtherm-fleetd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		source      = flag.String("source", "sim", "telemetry source: sim | trace | scrape")
		racks       = flag.Int("racks", 8, "number of racks (sim source)")
		hosts       = flag.Int("hosts", 32, "hosts per rack (sim source)")
		rounds      = flag.Int("rounds", 40, "control rounds to run (0 = until interrupted or trace end)")
		seed        = flag.Int64("seed", 2016, "simulation seed")
		threshold   = flag.Float64("threshold", 65, "hotspot threshold, °C")
		update      = flag.Float64("update", 15, "Δ_update calibration interval, s")
		gap         = flag.Float64("gap", 60, "Δ_gap prediction horizon, s")
		arrivals    = flag.Int("arrivals", 2, "VM requests submitted per round (sim source)")
		migrations  = flag.Int("migrations", 1, "max migrations applied per round")
		hotseed     = flag.Int("hotseed", 0, "force-place this many heavy VMs on r0-h0 to provoke a hotspot (sim source)")
		trainCases  = flag.Int("train-cases", 24, "simulated experiments to train the fast model on")
		modelPath   = flag.String("model", "", "load a pretrained stable model instead of training")
		synthetic   = flag.Bool("synthetic", false, "skip the SVM; use a physics stand-in predictor")
		addr        = flag.String("addr", "", "optional listen address for /v1/fleet endpoints and /metrics")
		pace        = flag.Bool("pace", false, "pace rounds to wall-clock Δ_update (default when serving forever or scraping)")
		tracePath   = flag.String("trace", "", "trace CSV to replay (trace source)")
		speed       = flag.Float64("speed", 0, "trace replay pacing multiplier (0 = as fast as possible)")
		loop        = flag.Bool("loop", false, "loop the trace when it runs out")
		scrapeURL   = flag.String("scrape-url", "", "Prometheus exposition endpoint (scrape source)")
		scrapeTemp  = flag.String("scrape-temp", "", "temperature metric name (default vmtherm_host_temp_celsius)")
		scrapeUtil  = flag.String("scrape-util", "", "utilization metric name (default vmtherm_host_util_ratio)")
		scrapeMem   = flag.String("scrape-mem", "", "memory metric name (default vmtherm_host_mem_ratio)")
		scrapeHost  = flag.String("scrape-host-label", "", "host label name (default host)")
		ambient     = flag.Float64("ambient", 22, "δ_env assumed for ψ_stable anchors (trace/scrape sources)")
		anchorCache = flag.Bool("anchor-cache", true, "memoize ψ_stable anchors per quantized (util, mem, ambient) bucket")
		anchorQuant = flag.Float64("anchor-quant", 0, "anchor cache utilization bucket width (0 = default 0.01; mem buckets are 2×; bounded by ReanchorEpsC so cache error cannot trigger re-anchors)")
		anchorFile  = flag.String("anchor-cache-file", "", "persist the anchor cache here on exit and warm from it on start (pair the file with the model that produced it)")
		physWorkers = flag.Int("phys-workers", 0, "worker pool sharding the simulated physics tick per rack (0 = min(GOMAXPROCS, 8), 1 = serial; results are bit-identical either way)")
		record      = flag.String("record", "", "tee the live telemetry stream to a trace CSV replayable with -source trace")
		streaming   = flag.Bool("streaming", false, "event-driven ingest: apply pushed readings on arrival (per-arrival calibration, live hotspot index, predict: true on /v1/fleet/ingest); rounds keep running and reconcile")
		scenarioArg = flag.String("scenario", "", "run a scripted thermal emergency: a built-in name (see docs/SCENARIOS.md) or a JSON spec file; sim source only, exits non-zero when the run fails its grade")
		scenarioOut = flag.String("scenario-out", "", "write the graded scenario report as JSON here (requires -scenario)")
		ckptFile    = flag.String("checkpoint-file", "", "crash-safe checkpoint base path (generations at <path>.1/<path>.2): serving state is restored from the newest valid generation on start, checkpointed periodically and on shutdown (trace/scrape sources)")
		ckptEvery   = flag.Float64("checkpoint-every", 30, "seconds between periodic checkpoints (0 = final shutdown checkpoint only; requires -checkpoint-file)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var model *vmtherm.StablePredictor
	var predict vmtherm.BatchCasePredictor
	switch {
	case *synthetic:
		predict = vmtherm.FleetSyntheticPredictor(75)
		log.Print("using synthetic physics predictor (no SVM)")
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		model, err = vmtherm.LoadStable(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("loading model: %w", err)
		}
		log.Printf("loaded stable model from %s", *modelPath)
	default:
		log.Printf("training fast stable model on %d simulated experiments...", *trainCases)
		cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), *seed, "fleet-train", *trainCases)
		if err != nil {
			return err
		}
		recs, err := vmtherm.BuildDataset(ctx, cases, vmtherm.DefaultBuildOptions(*seed))
		if err != nil {
			return err
		}
		model, err = vmtherm.TrainStable(ctx, recs, vmtherm.FastStableConfig())
		if err != nil {
			return err
		}
	}
	if predict == nil {
		predict = vmtherm.FleetStablePredictor(model, 1800)
	}

	cfg := vmtherm.DefaultFleetConfig()
	cfg.Racks = *racks
	cfg.HostsPerRack = *hosts
	cfg.ThresholdC = *threshold
	cfg.UpdateEveryS = *update
	cfg.GapS = *gap
	cfg.MaxMigrationsPerRound = *migrations
	cfg.SourceAmbientC = *ambient
	cfg.AnchorCacheDisabled = !*anchorCache
	if *anchorQuant > 0 {
		cfg.AnchorQuantUtil = *anchorQuant
		cfg.AnchorQuantMem = 2 * *anchorQuant
	}
	cfg.PhysWorkers = *physWorkers
	cfg.StreamingIngest = *streaming
	cfg.Seed = *seed

	var ctl *vmtherm.FleetController
	var trace *vmtherm.TraceSource
	switch *source {
	case "sim":
		c, err := vmtherm.NewFleet(cfg, predict)
		if err != nil {
			return err
		}
		ctl = c
		n := *racks * *hosts
		log.Printf("fleet: %d racks × %d hosts = %d servers, Δ_update %.0fs, Δ_gap %.0fs, threshold %.1f°C",
			*racks, *hosts, n, cfg.UpdateEveryS, cfg.GapS, cfg.ThresholdC)
	case "trace":
		if *tracePath == "" {
			return errors.New("-source trace requires -trace <csv>")
		}
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		readings, err := vmtherm.ReadTrace(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("reading trace: %w", err)
		}
		src, err := vmtherm.NewTraceSource(readings, vmtherm.TraceOptions{Speed: *speed, Loop: *loop})
		if err != nil {
			return err
		}
		trace = src
		ctl, err = vmtherm.NewFleetWithSource(cfg, src, predict)
		if err != nil {
			return err
		}
		log.Printf("replaying %d readings from %s (speed %.0gx, loop %v), Δ_update %.0fs, Δ_gap %.0fs",
			len(readings), *tracePath, *speed, *loop, cfg.UpdateEveryS, cfg.GapS)
	case "scrape":
		if *scrapeURL == "" {
			return errors.New("-source scrape requires -scrape-url <endpoint>")
		}
		src, err := vmtherm.NewScrapeSource(vmtherm.ScrapeConfig{
			URL:        *scrapeURL,
			TempMetric: *scrapeTemp,
			UtilMetric: *scrapeUtil,
			MemMetric:  *scrapeMem,
			HostLabel:  *scrapeHost,
		})
		if err != nil {
			return err
		}
		ctl, err = vmtherm.NewFleetWithSource(cfg, src, predict)
		if err != nil {
			return err
		}
		log.Printf("scraping %s every Δ_update %.0fs, Δ_gap %.0fs", *scrapeURL, cfg.UpdateEveryS, cfg.GapS)
	default:
		return fmt.Errorf("unknown -source %q (want sim, trace or scrape)", *source)
	}

	// -anchor-cache-file: warm the ψ_stable anchor cache from a previous
	// run's save, so a restarted fleet skips the cold mass-re-anchor rounds
	// entirely. A missing file is fine (first run); it is written on exit.
	if *anchorFile != "" && !*anchorCache {
		log.Printf("-anchor-cache-file ignored: anchor cache disabled (-anchor-cache=false)")
		*anchorFile = ""
	}
	if *anchorFile != "" {
		n, err := loadAnchorCache(ctl, *anchorFile)
		switch {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("anchor cache file %s absent; will be written on exit", *anchorFile)
		case err != nil:
			return fmt.Errorf("loading anchor cache: %w", err)
		default:
			log.Printf("warmed anchor cache with %d entries from %s", n, *anchorFile)
		}
	}

	// -checkpoint-file: restore the full serving state (engine sessions with
	// their γ calibration, round counter, pending placements, hotspot index,
	// anchor cache) from the newest valid generation, so a restarted control
	// plane continues exactly where the previous process stopped. Restored
	// after the anchor-cache warm so the checkpoint's (newer) cache wins.
	var ckpt *vmtherm.CheckpointManager
	if *ckptFile != "" {
		if *source == "sim" {
			return errors.New("-checkpoint-file requires -source trace or scrape (a simulated substrate is not captured)")
		}
		ckpt = vmtherm.NewCheckpointManager(*ckptFile, *ckptEvery)
		st, err := ckpt.Restore()
		switch {
		case err != nil:
			// Corrupt-only generations: visible (and counted) but not fatal —
			// a daemon that refuses to start over a bad checkpoint trades one
			// outage for another.
			log.Printf("checkpoint restore failed: %v; starting cold", err)
		case st == nil:
			log.Printf("no checkpoint at %s.{1,2}; cold start", *ckptFile)
		default:
			if err := ctl.Restore(st); err != nil {
				return fmt.Errorf("restoring checkpoint: %w", err)
			}
			log.Printf("restored %d sessions at round %d from checkpoint %s",
				ctl.RestoredSessions(), st.Round, *ckptFile)
		}
	}

	// ready feeds /readyz: false until the first round completes (cold or
	// restored, the serving state is only trustworthy once a round has run),
	// false again the moment the loop exits and the HTTP drain begins.
	var ready atomic.Bool

	// -record: tee every reading the source emits into a recorder, and write
	// the capture as a replayable trace CSV when the loop ends — closing the
	// capture→replay loop (-source trace) for operators.
	var recorder *vmtherm.TelemetryRecorder
	var recMu sync.Mutex
	if *record != "" {
		recorder = &vmtherm.TelemetryRecorder{}
		// The tee sees both the round loop's source emissions and concurrent
		// HTTP ingest pushes (-addr); Recorder itself is not synchronized.
		// The capture is in-memory until exit, so it is bounded: past the
		// cap the recording stops (what was captured still gets written)
		// rather than growing a daemon's RAM without limit.
		const maxRecorded = 2 << 20
		warned := false
		ctl.TeeTelemetry(func(r vmtherm.FleetReading) bool {
			recMu.Lock()
			defer recMu.Unlock()
			if len(recorder.Readings) >= maxRecorded {
				if !warned {
					warned = true
					log.Printf("recording capped at %d readings; later telemetry is not captured", maxRecorded)
				}
				return true
			}
			return recorder.Emit(r)
		})
		log.Printf("recording telemetry to %s (cap %d readings)", *record, maxRecorded)
	}
	finish := func(runErr error) error {
		// The final checkpoint is the shutdown contract: the in-flight round
		// has finished (runLoop returned) and HTTP has drained, so this write
		// captures everything the next process needs to continue warm.
		if ckpt != nil {
			if st, err := ctl.Checkpoint(); err != nil {
				ckpt.NoteFailure(err)
				log.Printf("final checkpoint: %v", err)
				if runErr == nil {
					runErr = err
				}
			} else if err := ckpt.Save(st); err != nil {
				log.Printf("final checkpoint: %v", err)
				if runErr == nil {
					runErr = err
				}
			} else {
				log.Printf("final checkpoint written to %s (round %d, %d sessions)",
					*ckptFile, st.Round, len(st.Engine.Sessions))
			}
		}
		if *anchorFile != "" {
			if err := saveAnchorCache(ctl, *anchorFile); err != nil {
				log.Printf("saving anchor cache: %v", err)
				if runErr == nil {
					runErr = err
				}
			} else {
				log.Printf("saved anchor cache to %s (warm-start with -anchor-cache-file %s)",
					*anchorFile, *anchorFile)
			}
		}
		if recorder == nil {
			return runErr
		}
		// Detach the tee, then save under the same mutex the tee appends
		// with: an ingest push that outlived the HTTP shutdown timeout must
		// not race the sort/write.
		ctl.TeeTelemetry(nil)
		recMu.Lock()
		defer recMu.Unlock()
		if err := saveRecording(*record, recorder); err != nil {
			log.Printf("recording: %v", err)
			if runErr == nil {
				runErr = err
			}
		} else {
			log.Printf("recorded %d readings to %s (replay with -source trace -trace %s)",
				len(recorder.Readings), *record, *record)
		}
		return runErr
	}

	if *scenarioArg != "" {
		// A scripted thermal emergency: the scenario engine seeds its own
		// baseline load and owns the timeline, so the usual arrival stream
		// and hotseed are skipped — determinism is the whole point.
		if *source != "sim" {
			return fmt.Errorf("-scenario requires -source sim (got %q)", *source)
		}
		spec, err := scenario.Load(*scenarioArg)
		if err != nil {
			return err
		}
		runner, err := scenario.New(spec, ctl)
		if err != nil {
			return err
		}
		// The spec owns the round budget: a truncated timeline would grade a
		// half-run emergency, so -rounds is ignored in scenario mode.
		log.Printf("scenario %s: %s (%d rounds, onset round %d)",
			spec.Name, spec.Description, spec.Rounds, spec.Onset())
		return finish(runLoop(ctx, ctl, loopOptions{
			rounds:      spec.Rounds,
			pace:        *pace,
			updateS:     cfg.UpdateEveryS,
			addr:        *addr,
			model:       model,
			scenario:    runner,
			scenarioOut: *scenarioOut,
			ready:       &ready,
		}))
	}
	if *scenarioOut != "" {
		return errors.New("-scenario-out requires -scenario")
	}

	if *source == "sim" {
		// An optional adversarial seed: pile heavy VMs onto one machine so
		// the proactive loop (flag from prediction → propose → migrate) is
		// visible.
		for v := 0; v < *hotseed; v++ {
			spec := vmtherm.FleetHeavyVMSpec(fmt.Sprintf("hotseed-%02d", v), 4, 8)
			if err := ctl.PlaceAt("r0-h0", spec); err != nil {
				return fmt.Errorf("hotseed: %w", err)
			}
		}
		// Seed the fleet with an initial tenant population (~40% of
		// capacity) placed thermally, then feed fresh arrivals every round.
		n := *racks * *hosts
		arrivalStream, err := arrivalSpecs(*seed, n*2)
		if err != nil {
			return err
		}
		next := 0
		for i := 0; i < n/2 && next < len(arrivalStream); i++ {
			if !ctl.Submit(arrivalStream[next]) {
				log.Printf("admission queue refused seed VM %d/%d; stopping seeding", i, n/2)
				break
			}
			next++
		}
		return finish(runLoop(ctx, ctl, loopOptions{
			rounds:   *rounds,
			pace:     *pace || (*rounds == 0 && *addr != ""),
			updateS:  cfg.UpdateEveryS,
			addr:     *addr,
			model:    model,
			arrivals: func(round int) { submitArrivals(ctl, arrivalStream, &next, *arrivals) },
			ready:    &ready,
		}))
	}
	paceInterval := 0.0
	if *source == "scrape" || *pace {
		paceInterval = cfg.UpdateEveryS
	}
	if trace != nil && trace.Speed() > 0 {
		paceInterval = cfg.UpdateEveryS / trace.Speed()
	}
	return finish(runLoop(ctx, ctl, loopOptions{
		rounds:     *rounds,
		pace:       paceInterval > 0,
		updateS:    cfg.UpdateEveryS,
		paceS:      paceInterval,
		addr:       *addr,
		model:      model,
		traceDone:  func() bool { return trace != nil && trace.Done() },
		ready:      &ready,
		ckpt:       ckpt,
		ckptEveryS: *ckptEvery,
	}))
}

// loadAnchorCache warms the controller's anchor cache from a file written
// by saveAnchorCache.
func loadAnchorCache(ctl *vmtherm.FleetController, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	n, err := ctl.LoadAnchorCache(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return n, err
}

// saveAnchorCache persists the controller's anchor cache for the next run,
// writing to a temp file first so an interrupted save never truncates a
// good cache.
func saveAnchorCache(ctl *vmtherm.FleetController, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = ctl.SaveAnchorCache(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// saveRecording writes a telemetry capture as a replayable trace CSV in
// canonical (time, host) order.
func saveRecording(path string, rec *vmtherm.TelemetryRecorder) error {
	vmtherm.SortReadings(rec.Readings)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = vmtherm.WriteTrace(f, rec.Readings)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// loopOptions parameterize the round loop shared by every source.
type loopOptions struct {
	rounds  int
	pace    bool
	updateS float64
	// paceS is the wall-clock interval when pacing (0 = updateS).
	paceS float64
	addr  string
	model *vmtherm.StablePredictor
	// arrivals, when set, submits the round's VM requests (sim source).
	arrivals func(round int)
	// traceDone, when set, reports replay exhaustion (trace source).
	traceDone func() bool
	// scenario, when set, owns the round loop: each round applies the due
	// faults before running, and the run ends with a graded report
	// (written to scenarioOut when set; a failed grade fails the process).
	scenario    *scenario.Runner
	scenarioOut string
	// ready gates /readyz: stored true after the first completed round,
	// false when the loop exits — before the HTTP drain, so load balancers
	// stop routing to a daemon that is about to stop serving.
	ready *atomic.Bool
	// ckpt, when set, checkpoints serving state every ckptEveryS seconds
	// (0 = shutdown-only) and feeds GET /v1/fleet/checkpoint.
	ckpt       *vmtherm.CheckpointManager
	ckptEveryS float64
}

// submitArrivals feeds the round's VM requests, stopping early when the
// admission queue refuses one (the refused VM retries next round).
func submitArrivals(ctl *vmtherm.FleetController, stream []vmtherm.VMSpec, next *int, n int) {
	for a := 0; a < n && *next < len(stream); a++ {
		if !ctl.Submit(stream[*next]) {
			return
		}
		*next++
	}
}

// runLoop serves the fleet API (optionally) and executes control rounds
// until the round budget, the trace, or the context runs out.
func runLoop(ctx context.Context, ctl *vmtherm.FleetController, opts loopOptions) error {
	if opts.addr != "" {
		if opts.model == nil {
			return fmt.Errorf("-addr requires a stable model (drop -synthetic)")
		}
		sopts := []predictserver.Option{predictserver.WithFleet(ctl)}
		if opts.scenario != nil {
			sopts = append(sopts, predictserver.WithScenario(opts.scenario.Status))
		}
		if opts.ready != nil {
			sopts = append(sopts, predictserver.WithReadiness(opts.ready.Load))
		}
		if opts.ckpt != nil {
			sopts = append(sopts, predictserver.WithCheckpoint(opts.ckpt.Status))
		}
		srv, err := predictserver.New(opts.model, sopts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		httpSrv := &http.Server{Addr: opts.addr, Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("http: %v", err)
			}
		}()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutCtx)
		}()
		log.Printf("serving fleet API and /metrics on %s", opts.addr)
	}

	paceS := opts.paceS
	if paceS == 0 {
		paceS = opts.updateS
	}
	if opts.pace {
		log.Printf("pacing rounds to wall-clock %.3gs", paceS)
	}
	start := time.Now()
	lastCkpt := time.Now()
	var runErr error
	var simSeconds float64
	var totalHotspots, totalMoves, totalPlaced int
loop:
	for round := 1; opts.rounds == 0 || round <= opts.rounds; round++ {
		select {
		case <-ctx.Done():
			log.Print("interrupted")
			break loop
		default:
		}
		if opts.traceDone != nil && opts.traceDone() {
			log.Print("trace exhausted")
			break loop
		}
		if opts.arrivals != nil {
			opts.arrivals(round)
		}
		runRound := ctl.RunRound
		if opts.scenario != nil {
			runRound = opts.scenario.Step
		}
		rep, err := runRound()
		if err != nil {
			// Break instead of returning so the exit path below still runs:
			// readiness flips off, the scenario report (if any) is written,
			// and the caller's finish() gets its final checkpoint and flushes.
			runErr = err
			break loop
		}
		if opts.ready != nil {
			opts.ready.Store(true)
		}
		simSeconds += opts.updateS
		totalHotspots += rep.Hotspots
		totalMoves += rep.AppliedMoves
		totalPlaced += rep.Placements
		speedup := opts.updateS / rep.Latency.Seconds()
		line := fmt.Sprintf("round %3d t=%5.0fs | sessions %3d/%3d | telemetry %4d (drops %d, superseded %d) | stale %2d | anchors %3dh/%dm fan %d | hotspots %2d (max %.1f°C) | placed %d queued %d rejected %d | moves %d/%d | %6.1fms (ctl %.1fms) | %6.0f× realtime",
			rep.Round, rep.SimTimeS, rep.SessionsLive, rep.Hosts,
			rep.TelemetryDrained, rep.DroppedTotal, rep.SupersededTotal, rep.StaleHosts,
			rep.AnchorHits, rep.AnchorMisses, rep.AnchorFanout,
			rep.Hotspots, rep.MaxPredictedC, rep.Placements, rep.Queued, rep.Rejections,
			rep.AppliedMoves, rep.ProposedMoves,
			float64(rep.Latency.Microseconds())/1000,
			float64(rep.ControlLatency.Microseconds())/1000, speedup)
		if ctl.StreamingEnabled() {
			line += fmt.Sprintf(" | stream %d (+%d inline, %d deferred) drift %d",
				rep.StreamApplied, rep.StreamCreated, rep.StreamDeferred, rep.StreamHotDrift)
		}
		if opts.scenario != nil {
			st := opts.scenario.Status()
			line += fmt.Sprintf(" | scn %s %d/%d faults %d", st.Name, st.Round, st.TotalRounds, st.FaultsActive)
			if st.Contained {
				line += " contained"
			}
		}
		if rep.SourceError != "" {
			line += " | SOURCE ERROR: " + rep.SourceError
		}
		if n := len(rep.RecentErrors); n > 0 {
			line += fmt.Sprintf(" | errs %d (last: %s)", n, rep.RecentErrors[n-1])
		}
		fmt.Println(line)
		if opts.ckpt != nil && opts.ckptEveryS > 0 && time.Since(lastCkpt).Seconds() >= opts.ckptEveryS {
			if st, err := ctl.Checkpoint(); err != nil {
				opts.ckpt.NoteFailure(err)
				log.Printf("checkpoint: %v", err)
			} else if err := opts.ckpt.Save(st); err != nil {
				log.Printf("checkpoint: %v", err)
			} else {
				lastCkpt = time.Now()
			}
		}
		if opts.pace {
			wait := time.Duration(paceS*float64(time.Second)) - rep.Latency
			if wait > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(wait):
				}
			}
		}
	}
	if opts.ready != nil {
		// Not ready before the deferred HTTP drain: in-flight requests finish,
		// new ones see 503 from the balancer's health checks.
		opts.ready.Store(false)
	}
	wall := time.Since(start)
	log.Printf("processed %.0fs of fleet time in %v (%.0f× real time): %d hotspot-rounds, %d migrations, %d placements",
		simSeconds, wall.Round(time.Millisecond), simSeconds/wall.Seconds(),
		totalHotspots, totalMoves, totalPlaced)
	if wall.Seconds() < simSeconds {
		log.Printf("OK: a %.0fs calibration interval is sustainable in real time at this fleet size", opts.updateS)
	} else if !opts.pace {
		log.Printf("WARNING: control loop slower than real time at this fleet size")
	}
	if opts.scenario != nil {
		// The report is written even when a round errored out above: a
		// half-run emergency's partial grade is still evidence, and losing
		// it on the failure path is exactly when operators need it most.
		grade := opts.scenario.Report()
		if opts.scenarioOut != "" {
			if err := os.WriteFile(opts.scenarioOut, grade.JSON(), 0o644); err != nil {
				log.Printf("writing scenario report: %v", err)
				if runErr == nil {
					runErr = fmt.Errorf("writing scenario report: %w", err)
				}
			} else {
				log.Printf("scenario report written to %s", opts.scenarioOut)
			}
		}
		log.Printf("scenario %s: flagged r%d, crossed r%d (lead %d), contained %v in %d rounds, %d/%d migrations, %d rejected readings, fp rate %.2f",
			grade.Name, grade.FirstFlagRound, grade.MeasuredCrossRound, grade.PredictedLeadRounds,
			grade.Contained, grade.ContainmentRounds, grade.MigrationsApplied, grade.MigrationBudget,
			grade.ReadingsRejected, grade.FalsePositiveRate)
		if runErr != nil {
			return runErr
		}
		if !grade.Passed {
			return fmt.Errorf("scenario %s FAILED its grade: %v", grade.Name, grade.Failures)
		}
		log.Printf("scenario %s PASSED", grade.Name)
	}
	return runErr
}

// arrivalSpecs generates a deterministic stream of VM requests, using one
// oversized generated case as a convenient spec factory.
func arrivalSpecs(seed int64, count int) ([]vmtherm.VMSpec, error) {
	opts := vmtherm.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = count, count
	opts.Host.Cores = 1 << 20
	opts.Host.MemoryGB = 1 << 24
	opts.Dynamic = true
	c, err := vmtherm.GenerateCase(opts, seed, "fleet-arrivals")
	if err != nil {
		return nil, err
	}
	return c.VMs, nil
}
