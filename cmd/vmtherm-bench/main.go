// vmtherm-bench regenerates the paper's figures and the repository's
// ablations as human-readable tables (the same experiments the root
// benchmarks time).
//
// Usage:
//
//	vmtherm-bench -fig all
//	vmtherm-bench -fig 1c -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"vmtherm/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmtherm-bench: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		fig  = flag.String("fig", "all", "which artifact: 1a, 1b, 1c, ablations, all")
		seed = flag.Int64("seed", 2016, "deterministic seed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *fig {
	case "1a":
		return fig1a(ctx, *seed)
	case "1b":
		return fig1b(ctx, *seed)
	case "1c":
		return fig1c(ctx, *seed)
	case "ablations":
		return ablations(ctx, *seed)
	case "all":
		for _, f := range []func(context.Context, int64) error{fig1a, fig1b, fig1c, ablations} {
			if err := f(ctx, *seed); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown -fig %q (want 1a, 1b, 1c, ablations, all)", *fig)
	}
}

func fig1a(ctx context.Context, seed int64) error {
	res, err := experiments.RunFig1a(ctx, experiments.DefaultFig1aConfig(seed))
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func fig1b(ctx context.Context, seed int64) error {
	res, err := experiments.RunFig1b(ctx, experiments.DefaultFig1bConfig(seed))
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func fig1c(ctx context.Context, seed int64) error {
	res, err := experiments.RunFig1c(ctx, experiments.DefaultFig1cConfig(seed))
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func ablations(ctx context.Context, seed int64) error {
	bCfg := experiments.DefaultFig1bConfig(seed)
	bCfg.TrainCases = 48
	lam, err := experiments.RunAblationLambda(ctx, bCfg, []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}, 6)
	if err != nil {
		return err
	}
	fmt.Print(lam.Render())
	fmt.Println()

	delta, err := experiments.RunAblationCurveDelta(ctx, bCfg, []float64{5, 15, 30, 60, 120}, 6)
	if err != nil {
		return err
	}
	fmt.Print(delta.Render())
	fmt.Println()

	aCfg := experiments.DefaultFig1aConfig(seed)
	aCfg.TrainCases = 96
	base, err := experiments.RunAblationBaselines(ctx, aCfg)
	if err != nil {
		return err
	}
	fmt.Print(base.Render())
	fmt.Println()

	fans, err := experiments.RunAblationFans(ctx, aCfg, []int{1, 2, 4, 6, 8}, 6)
	if err != nil {
		return err
	}
	fmt.Print(fans.Render())
	fmt.Println()

	mig, err := experiments.RunMigrationStudy(ctx, bCfg, 900)
	if err != nil {
		return err
	}
	fmt.Print(mig.Render())
	return nil
}
