// vmtherm-train generates a training corpus of simulated experiments, runs
// the easygrid-equivalent (C, γ, ε) search with k-fold cross-validation, and
// saves the trained stable-temperature model.
//
// Usage:
//
//	vmtherm-train -cases 160 -seed 1 -out model.svm -data dataset.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"vmtherm"
	"vmtherm/internal/dataset"
	"vmtherm/internal/mathx"
	"vmtherm/internal/mlgrid"
	"vmtherm/internal/svm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmtherm-train: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		cases    = flag.Int("cases", 160, "number of simulated training experiments")
		testFrac = flag.Float64("test-frac", 0.15, "held-out fraction for the final report")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		out      = flag.String("out", "model.svm", "model output path")
		data     = flag.String("data", "", "optional dataset CSV output path")
		libsvm   = flag.String("libsvm", "", "optional LIBSVM-format dataset output path")
		fast     = flag.Bool("fast", false, "use the reduced grid (quick runs)")
		refine   = flag.Bool("refine", false, "two-stage coarse→fine grid search (easy.py style)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("generating %d randomized cases (seed %d)", *cases, *seed)
	cs, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), *seed, "train", *cases)
	if err != nil {
		return err
	}
	log.Printf("simulating %d experiments (1800 s each, t_break 600 s)", len(cs))
	records, err := vmtherm.BuildDataset(ctx, cs, vmtherm.DefaultBuildOptions(*seed))
	if err != nil {
		return err
	}

	if *data != "" {
		if err := writeFile(*data, func(w io.Writer) error {
			return dataset.WriteCSV(w, records)
		}); err != nil {
			return err
		}
		log.Printf("dataset CSV written to %s", *data)
	}
	if *libsvm != "" {
		if err := writeFile(*libsvm, func(w io.Writer) error {
			return dataset.WriteLIBSVM(w, records)
		}); err != nil {
			return err
		}
		log.Printf("LIBSVM dataset written to %s", *libsvm)
	}

	train, test, err := vmtherm.SplitDataset(records, *testFrac, *seed)
	if err != nil {
		return err
	}
	cfg := vmtherm.DefaultStableConfig()
	if *fast {
		cfg = vmtherm.FastStableConfig()
	}
	if *refine {
		// Two-stage search: replace the grid with a refined one before the
		// final training pass.
		x, y := dataset.FeaturesAndTargets(train)
		scaler, err := svm.NewScaler(cfg.ScaleLower, cfg.ScaleUpper)
		if err != nil {
			return err
		}
		if err := scaler.Fit(x); err != nil {
			return err
		}
		xs, err := scaler.TransformAll(x)
		if err != nil {
			return err
		}
		best, err := mlgrid.SearchRefined(ctx, xs, y, cfg.Grid)
		if err != nil {
			return err
		}
		log.Printf("refined winner: C=%g gamma=%g eps=%g (cv MSE %.3f)",
			best.Point.C, best.Point.Gamma, best.Point.Epsilon, best.MSE)
		cfg.Grid.Cs = []float64{best.Point.C}
		cfg.Grid.Gammas = []float64{best.Point.Gamma}
		cfg.Grid.Epsilons = []float64{best.Point.Epsilon}
	}
	nPoints := len(cfg.Grid.Cs) * len(cfg.Grid.Gammas) * len(cfg.Grid.Epsilons)
	log.Printf("grid search: %d points × %d-fold CV on %d records", nPoints, cfg.Grid.Folds, len(train))
	model, err := vmtherm.TrainStable(ctx, train, cfg)
	if err != nil {
		return err
	}
	log.Printf("best point: C=%g gamma=%g eps=%g (cv MSE %.3f, %d SVs)",
		model.Best().C, model.Best().Gamma, model.Best().Epsilon, model.CVMSE(), model.NumSV())

	if len(test) > 0 {
		var ps, as []float64
		for _, r := range test {
			p, err := model.PredictFeatures(r.Features)
			if err != nil {
				return err
			}
			ps = append(ps, p)
			as = append(as, r.StableTemp)
		}
		mse, err := mathx.MSE(ps, as)
		if err != nil {
			return err
		}
		log.Printf("held-out MSE on %d records: %.3f (paper band: ≤1.10)", len(test), mse)
	}

	if err := writeFile(*out, model.Save); err != nil {
		return err
	}
	log.Printf("model written to %s", *out)
	return nil
}

// writeFile creates path, runs write, and closes with error propagation.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing %s: %w", path, cerr)
		}
	}()
	return write(f)
}
