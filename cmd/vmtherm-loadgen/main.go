// vmtherm-loadgen drives a running vmtherm-predictd with open-loop batch
// traffic and reports sustained throughput and tail latency — the serving
// metrics that matter when a thermal-aware scheduler consumes predictions
// for hundreds of hosts per round.
//
// Like the vHive profiling loader, requests are issued in an open loop: a
// dispatcher schedules request start times at the target rate regardless of
// how fast responses come back, so server slowdowns surface as queueing
// delay in the measured latencies instead of silently throttling the load.
// A warm-up phase precedes the measured window.
//
// Modes:
//
//	stable   POST /v1/stable/batch with -batch feature rows per request
//	dynamic  POST /v1/session/batch/predict over -batch pre-opened sessions
//	place    placement storm: POST /v1/fleet/place/batch with -batch
//	         unique VM requests per call (-batch 1 uses /v1/fleet/place);
//	         requires predictd running with an attached fleet (-fleet)
//	slo      SLO-driven capacity profile (internal/sloharness): step load
//	         up per endpoint through warm-up/measure/cool-down phases
//	         until the declared tail-latency SLO breaks, and report the
//	         max sustainable RPS. -inprocess profiles a self-contained
//	         server (trained fast model + simulated fleet) — what CI runs;
//	         otherwise -addr is profiled. Writes capacity.json (-out) and
//	         a CAPACITY.md report (-report).
//
// Usage:
//
//	vmtherm-train -fast -out model.svm
//	vmtherm-predictd -model model.svm -addr :8080 &
//	vmtherm-loadgen -addr http://127.0.0.1:8080 -mode stable -batch 64 -rps 200 -duration 10s
//	vmtherm-loadgen -mode slo -inprocess -endpoints stable,place -batch 16 -out capacity.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vmtherm"
	"vmtherm/internal/predictclient"
	"vmtherm/internal/predictserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmtherm-loadgen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "predictd base URL")
		mode     = flag.String("mode", "stable", "workload: stable | dynamic | place | slo")
		batch    = flag.Int("batch", 64, "predictions per request")
		rps      = flag.Float64("rps", 200, "target requests per second (open loop)")
		duration = flag.Duration("duration", 10*time.Second, "measured window")
		warmup   = flag.Duration("warmup", 2*time.Second, "warm-up before measuring")
		senders  = flag.Int("senders", 32, "concurrent sender goroutines")
		seed     = flag.Int64("seed", 1, "feature-generation seed")
	)
	slo := registerSLOFlags()
	flag.Parse()
	if *batch <= 0 || *rps <= 0 || *senders <= 0 {
		return fmt.Errorf("batch, rps and senders must be positive")
	}
	if *mode == "slo" {
		return runSLO(slo, *addr, *batch, *senders, *seed)
	}

	client, err := predictclient.New(*addr,
		predictclient.WithHTTPClient(&http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        *senders * 2,
				MaxIdleConnsPerHost: *senders * 2,
			},
		}))
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := client.Healthy(ctx); err != nil {
		return fmt.Errorf("server not healthy: %w", err)
	}

	var fire func() error
	switch *mode {
	case "stable":
		rows, err := syntheticRows(*seed, *batch)
		if err != nil {
			return err
		}
		fire = func() error {
			_, err := client.PredictStableBatch(ctx, rows)
			return err
		}
	case "dynamic":
		items, cleanup, err := openSessions(ctx, client, *batch)
		if err != nil {
			return err
		}
		defer cleanup()
		var tick atomic.Int64
		fire = func() error {
			t := float64(tick.Add(1))
			reqItems := make([]predictserver.PredictBatchItem, len(items))
			for i, id := range items {
				reqItems[i] = predictserver.PredictBatchItem{ID: id, T: t}
			}
			res, err := client.PredictBatch(ctx, reqItems)
			if err != nil {
				return err
			}
			for _, r := range res {
				if r.Error != "" {
					return fmt.Errorf("item error: %s", r.Error)
				}
			}
			return nil
		}
	case "place":
		// Salt the VM ids per run so back-to-back storms against one fleet
		// don't collide as duplicate-id.
		storm := &placeStorm{
			client: client, ctx: ctx, batch: *batch,
			prefix: fmt.Sprintf("storm-%x", time.Now().UnixNano()&0xffffff),
		}
		fire = storm.fire
		defer storm.summarize(os.Stdout)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	fmt.Printf("mode=%s batch=%d target=%.0f req/s (%.0f preds/s) warmup=%s window=%s\n",
		*mode, *batch, *rps, *rps*float64(*batch), *warmup, *duration)

	res := drive(fire, *rps, *warmup, *duration, *senders)
	res.print(os.Stdout, *batch)
	if res.errors > 0 {
		return fmt.Errorf("%d request errors", res.errors)
	}
	return nil
}

// placeStorm generates a placement storm of uniquely-named small VMs and
// tallies the typed decisions. Admission outcomes (rejected, queued) are
// expected under storm load and counted as results, not request errors —
// but a rejection arriving without a RejectCode is a protocol bug and fails
// the run.
type placeStorm struct {
	client *predictclient.Client
	ctx    context.Context
	batch  int
	prefix string

	seq            atomic.Int64
	placed, queued atomic.Int64
	missingCode    atomic.Int64
	rejMu          sync.Mutex
	rejected       int64
	rejByCode      map[string]int64
}

func (p *placeStorm) nextReq() predictserver.FleetPlaceRequest {
	return predictserver.FleetPlaceRequest{
		ID: fmt.Sprintf("%s-%08d", p.prefix, p.seq.Add(1)), VCPUs: 1, MemoryGB: 2,
		Tasks: []predictserver.FleetTaskSpec{{CPUFraction: 0.5, MemGB: 0.5}},
	}
}

func (p *placeStorm) countRejection(code string) {
	if code == "" {
		p.missingCode.Add(1)
	}
	p.rejMu.Lock()
	p.rejected++
	if p.rejByCode == nil {
		p.rejByCode = make(map[string]int64)
	}
	p.rejByCode[code]++
	p.rejMu.Unlock()
}

func (p *placeStorm) fire() error {
	if p.batch == 1 {
		dec, err := p.client.FleetPlace(p.ctx, p.nextReq())
		if err != nil {
			var placeErr *predictclient.PlaceError
			if errors.As(err, &placeErr) {
				p.countRejection(placeErr.Code.String())
				return nil
			}
			return err
		}
		switch dec.Status {
		case "placed":
			p.placed.Add(1)
		case "queued":
			p.queued.Add(1)
		default:
			p.countRejection(dec.RejectCode)
		}
		return nil
	}
	vms := make([]predictserver.FleetPlaceRequest, p.batch)
	for i := range vms {
		vms[i] = p.nextReq()
	}
	resp, err := p.client.FleetPlaceBatch(p.ctx, vms)
	if err != nil {
		return err
	}
	for _, r := range resp.Results {
		switch r.Status {
		case "placed":
			p.placed.Add(1)
		case "queued":
			p.queued.Add(1)
		default:
			p.countRejection(r.RejectCode)
		}
	}
	return nil
}

func (p *placeStorm) summarize(w *os.File) {
	p.rejMu.Lock()
	defer p.rejMu.Unlock()
	fmt.Fprintf(w, "placements: placed=%d queued=%d rejected=%d\n",
		p.placed.Load(), p.queued.Load(), p.rejected)
	codes := make([]string, 0, len(p.rejByCode))
	for c := range p.rejByCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "  reject_code %-12s %d\n", c, p.rejByCode[c])
	}
	if n := p.missingCode.Load(); n > 0 {
		log.Fatalf("%d rejections arrived without a reject code (stringly-typed rejection)", n)
	}
}

// syntheticRows builds batch-many plausible Eq. (2) feature rows by encoding
// generated workload cases through the real dataset pipeline.
func syntheticRows(seed int64, batch int) ([][]float64, error) {
	cases, err := vmtherm.GenerateCases(vmtherm.DefaultGenOptions(), seed, "lg", batch)
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, len(cases))
	for i, c := range cases {
		row, err := vmtherm.EncodeCase(c, 1800)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

// openSessions creates n dynamic sessions and returns their ids plus a
// cleanup closing them.
func openSessions(ctx context.Context, c *predictclient.Client, n int) ([]string, func(), error) {
	r := rand.New(rand.NewSource(42))
	ids := make([]string, n)
	sessions := make([]*predictclient.Session, n)
	for i := 0; i < n; i++ {
		stable := 50 + r.Float64()*30
		sess, err := c.OpenSession(ctx, predictserver.SessionRequest{
			Phi0:        20 + r.Float64()*5,
			StableTempC: &stable,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("opening session %d: %w", i, err)
		}
		ids[i] = sess.ID()
		sessions[i] = sess
	}
	cleanup := func() {
		for _, s := range sessions {
			_ = s.Close(context.Background())
		}
	}
	return ids, cleanup, nil
}

// result aggregates the measured window.
type result struct {
	issued  int
	errors  int
	elapsed time.Duration
	lats    []time.Duration
}

// drive issues fire() calls open-loop at rate rps using a fixed sender pool.
// Latency is measured from each request's scheduled start, so dispatch
// queueing (the server falling behind the offered load) counts against it.
func drive(fire func() error, rps float64, warmup, window time.Duration, senders int) *result {
	type job struct {
		scheduled time.Time
		measured  bool
	}
	interval := time.Duration(float64(time.Second) / rps)
	jobs := make(chan job, senders*4)

	var (
		mu  sync.Mutex
		res = &result{}
	)
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				err := fire()
				lat := time.Since(j.scheduled)
				if !j.measured {
					continue
				}
				mu.Lock()
				if err != nil {
					res.errors++
				} else {
					res.lats = append(res.lats, lat)
				}
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	measureFrom := start.Add(warmup)
	end := measureFrom.Add(window)
	// Schedule against absolute ideal start times rather than a ticker: a
	// ticker coalesces missed ticks, silently offering less than the target
	// rate, and stamps jobs with delivery time instead of the time they
	// should have started. With absolute times a stalled dispatcher catches
	// up by issuing every overdue job immediately, and latency is always
	// measured from the ideal schedule, so falling behind shows up as
	// queueing delay — the defining property of an open loop.
	for i := 0; ; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if scheduled.After(end) {
			break
		}
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		measured := scheduled.After(measureFrom)
		select {
		case jobs <- job{scheduled: scheduled, measured: measured}:
		default:
			// Sender pool and queue saturated: the server is more than
			// senders*4 requests behind the open-loop schedule. Count the
			// drop as an error rather than blocking the dispatcher.
			if measured {
				mu.Lock()
				res.errors++
				mu.Unlock()
			}
		}
		if measured {
			res.issued++
		}
	}
	close(jobs)
	wg.Wait()
	res.elapsed = window
	return res
}

func (r *result) print(w *os.File, batch int) {
	secs := r.elapsed.Seconds()
	achieved := float64(len(r.lats)) / secs
	fmt.Fprintf(w, "issued %d requests, %d ok, %d errors in %.1fs\n",
		r.issued, len(r.lats), r.errors, secs)
	fmt.Fprintf(w, "throughput: %.1f req/s = %.0f predictions/s\n",
		achieved, achieved*float64(batch))
	if len(r.lats) == 0 {
		return
	}
	sort.Slice(r.lats, func(i, j int) bool { return r.lats[i] < r.lats[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(r.lats)-1))
		return r.lats[idx]
	}
	fmt.Fprintf(w, "latency: p50=%s p90=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond),
		pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond),
		r.lats[len(r.lats)-1].Round(time.Microsecond))
}
