package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"vmtherm/internal/fleet"
	"vmtherm/internal/predictclient"
	"vmtherm/internal/predictserver"
	"vmtherm/internal/scenario"
	"vmtherm/internal/sloharness"
)

// sloFlags is the `-mode slo` flag group: the SLO-driven capacity profiler
// that steps load up per endpoint until the declared tail-latency SLO
// breaks, and reports the max sustainable RPS (vHive-style
// warm-up/measure/cool-down steps + bisection refinement).
type sloFlags struct {
	inprocess *bool
	endpoints *string
	quantile  *float64
	limit     *time.Duration
	startRPS  *float64
	maxRPS    *float64
	growth    *float64
	refine    *int
	warmup    *time.Duration
	measure   *time.Duration
	cooldown  *time.Duration
	batches   *string
	outJSON   *string
	outMD     *string
	baseline  *string

	// In-process stack knobs (the capacity matrix dimensions).
	racks       *int
	hosts       *int
	budget      *float64
	roundCap    *int
	workers     *int
	physWorkers *int
	ingestHosts *int
	streaming   *bool
	arrivals    *string

	// Scenario-under-load: a scripted thermal emergency plays against the
	// in-process fleet while the profiler drives serving load.
	scenario    *string
	scenarioOut *string
}

func registerSLOFlags() *sloFlags {
	return &sloFlags{
		inprocess: flag.Bool("inprocess", false, "profile an in-process server (trained fast model + simulated fleet) instead of -addr — what CI runs"),
		endpoints: flag.String("endpoints", "stable,ingest,hotspots,place", "comma-separated serving endpoints to profile"),
		quantile:  flag.Float64("slo-quantile", 0.99, "tail-latency quantile the SLO constrains"),
		limit:     flag.Duration("slo-limit", 0, "tail-latency limit (0 = per-endpoint defaults: stable 5ms, ingest 10ms, hotspots 5ms, place 20ms)"),
		startRPS:  flag.Float64("slo-start", 32, "first load step, requests/s"),
		maxRPS:    flag.Float64("slo-max", 65536, "load-step ceiling, requests/s"),
		growth:    flag.Float64("slo-growth", 2, "multiplicative step factor while the SLO holds"),
		refine:    flag.Int("slo-refine", 3, "bisection steps tightening the knee bracket after the first violation"),
		warmup:    flag.Duration("slo-warmup", 500*time.Millisecond, "per-step unmeasured warm-up"),
		measure:   flag.Duration("slo-measure", 2*time.Second, "per-step measured window"),
		cooldown:  flag.Duration("slo-cooldown", 250*time.Millisecond, "per-step cool-down (stragglers drain under load)"),
		batches:   flag.String("slo-batches", "", "comma-separated request batch sizes to profile per endpoint (default: the -batch value)"),
		outJSON:   flag.String("out", "", "write the machine-readable capacity report (capacity.json / BENCH_SLO.json) here"),
		outMD:     flag.String("report", "", "write the human CAPACITY.md report here"),
		baseline:  flag.String("slo-baseline", "", "committed capacity report to compare against; profiles >15% under their baseline entry print a REGRESSION line (exit stays 0: shared runners are noisy)"),

		racks:       flag.Int("slo-racks", 4, "in-process fleet racks"),
		hosts:       flag.Int("slo-hosts", 16, "in-process fleet hosts per rack"),
		budget:      flag.Float64("admission-budget", 0, "in-process AdmissionPolicy.HeadroomBudgetC (0 = gate off)"),
		roundCap:    flag.Int("admission-cap", 0, "in-process AdmissionPolicy.MaxPlacementsPerRound (0 = unbounded)"),
		workers:     flag.Int("workers", 0, "in-process server batch worker pool (0 = GOMAXPROCS)"),
		physWorkers: flag.Int("phys-workers", 0, "in-process fleet physics workers (0 = default)"),
		ingestHosts: flag.Int("slo-ingest-hosts", 256, "distinct host ids the ingest profile cycles over when the fleet's own hosts are unknown (remote mode)"),
		streaming:   flag.Bool("streaming", false, "enable streaming ingest on the in-process stack (required for the freshness endpoint; control rounds keep ticking in the background during ingest/freshness profiles)"),
		arrivals:    flag.String("arrivals", "fixed", "dispatch schedule for every profiled step: fixed|poisson|uniform (poisson/uniform offer the same mean rate with realistic burstiness)"),

		scenario:    flag.String("scenario", "", "thermal-emergency scenario (builtin name or JSON file) to play against the in-process fleet while profiling — serving capacity under emergency (requires -inprocess)"),
		scenarioOut: flag.String("scenario-out", "", "write the scenario's graded report JSON here (requires -scenario)"),
	}
}

// defaultSLOLimits are the per-endpoint tail-latency defaults the ISSUE
// declares: 5 ms for the prediction hot path, 20 ms for batch placement
// (one ranking + shortlist + batched ψ_stable per request), 10 ms for
// ingest (bounded-buffer admission), 5 ms for the snapshot read.
var defaultSLOLimits = map[string]time.Duration{
	"stable":    5 * time.Millisecond,
	"ingest":    10 * time.Millisecond,
	"hotspots":  5 * time.Millisecond,
	"place":     20 * time.Millisecond,
	"freshness": 5 * time.Millisecond,
}

// runSLO profiles every requested endpoint × batch combination and writes
// the capacity report(s).
func runSLO(f *sloFlags, addr string, batch int, senders int, seed int64) error {
	ctx := context.Background()

	var (
		client *predictclient.Client
		stack  *predictserver.LocalStack
		host   string
		err    error
	)
	if *f.inprocess {
		admission := fleet.AdmissionPolicy{
			HeadroomBudgetC:       *f.budget,
			MaxPlacementsPerRound: *f.roundCap,
		}
		fmt.Printf("building in-process stack: %d×%d hosts, admission budget %.1f°C cap %d...\n",
			*f.racks, *f.hosts, admission.HeadroomBudgetC, admission.MaxPlacementsPerRound)
		stack, err = predictserver.NewLocalStack(ctx, predictserver.LocalStackConfig{
			Racks:        *f.racks,
			HostsPerRack: *f.hosts,
			Admission:    admission,
			PhysWorkers:  *f.physWorkers,
			Workers:      *f.workers,
			Streaming:    *f.streaming,
			Seed:         seed,
		})
		if err != nil {
			return err
		}
		defer stack.Close()
		client, err = predictclient.NewLocal(stack.Server.Handler())
		if err != nil {
			return err
		}
		host = fmt.Sprintf("in-process (%d racks × %d hosts)", *f.racks, *f.hosts)
	} else {
		client, err = predictclient.New(addr,
			predictclient.WithHTTPClient(&http.Client{
				Timeout: 30 * time.Second,
				Transport: &http.Transport{
					MaxIdleConns:        senders * 2,
					MaxIdleConnsPerHost: senders * 2,
				},
			}))
		if err != nil {
			return err
		}
		if err := client.Healthy(ctx); err != nil {
			return fmt.Errorf("server not healthy: %w", err)
		}
		host = addr
	}

	var emergency *scenario.Runner
	if *f.scenario != "" {
		if stack == nil {
			return fmt.Errorf("-scenario needs -inprocess: the emergency is injected into the simulated fleet")
		}
		spec, err := scenario.Load(*f.scenario)
		if err != nil {
			return err
		}
		emergency, err = scenario.New(spec, stack.Fleet)
		if err != nil {
			return err
		}
		fmt.Printf("scenario %s: %d-round emergency timeline plays under load\n", spec.Name, spec.Rounds)
	} else if *f.scenarioOut != "" {
		return fmt.Errorf("-scenario-out requires -scenario")
	}

	batches, err := parseBatches(*f.batches, batch)
	if err != nil {
		return err
	}
	endpoints := strings.Split(*f.endpoints, ",")
	report := sloharness.NewReport(host)

	for _, ep := range endpoints {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			continue
		}
		limit, ok := defaultSLOLimits[ep]
		if !ok {
			return fmt.Errorf("unknown endpoint %q (want stable|ingest|hotspots|place|freshness)", ep)
		}
		if ep == "freshness" && *f.inprocess && !*f.streaming {
			return fmt.Errorf("the freshness endpoint needs -streaming on the in-process stack")
		}
		if *f.limit > 0 {
			limit = *f.limit
		}
		epBatches := batches
		if ep == "hotspots" { // GET endpoint: no batch dimension
			epBatches = []int{1}
		}
		for _, b := range epBatches {
			target, items, err := buildTarget(client, stack, ep, b, seed, f)
			if err != nil {
				return err
			}
			cfg := sloharness.Config{
				SLO:      sloharness.SLO{Quantile: *f.quantile, Limit: limit},
				StartRPS: *f.startRPS, MaxRPS: *f.maxRPS, Growth: *f.growth, Refine: *f.refine,
				Warmup: *f.warmup, Measure: *f.measure, Cooldown: *f.cooldown,
				Senders:  senders,
				Arrivals: *f.arrivals, ArrivalSeed: seed,
			}
			fmt.Printf("profiling %s batch=%d under %s...\n", target.Name(), b, cfg.SLO.Label())
			// Streaming push profiles run with the control loop ticking in
			// the background — the production shape, where rounds keep
			// draining the bounded pipeline and reconciling the live
			// hotspot index underneath the event-driven path. Without the
			// drain the pipeline fills and back-pressure, not latency,
			// bounds the measurement. A scenario keeps the ticker on for
			// every profile: the emergency timeline must advance while the
			// measured load runs, or there is no "under load" in the grade.
			var stopDrain func() error
			if stack != nil && (emergency != nil || (*f.streaming && (ep == "ingest" || ep == "freshness"))) {
				stopDrain = drainRounds(stack, emergency, 25*time.Millisecond)
			}
			profile, err := sloharness.Run(ctx, cfg, target)
			if stopDrain != nil {
				if derr := stopDrain(); derr != nil && err == nil {
					err = derr
				}
			}
			if err != nil {
				return err
			}
			profile.Knobs = profileKnobs(f, ep, b)
			profile.ItemsPerRequest = items
			profile.MaxSustainableItemsPerSec = profile.MaxSustainableRPS * float64(items)
			report.Profiles = append(report.Profiles, profile)
			fmt.Printf("  max sustainable: %.0f req/s (%.0f items/s) across %d steps\n",
				profile.MaxSustainableRPS, profile.MaxSustainableItemsPerSec, len(profile.Steps))
			if stack != nil {
				// Drain queued placements and refresh the snapshot between
				// profiles so one endpoint's leftovers don't skew the next.
				if err := advanceRounds(stack, emergency, 2); err != nil {
					return err
				}
			}
		}
	}

	if emergency != nil {
		// Run out whatever the load phases didn't cover — a half-played
		// timeline would grade a half-run emergency.
		for !emergency.Done() {
			if _, err := emergency.Step(); err != nil {
				return err
			}
		}
		grade := emergency.Report()
		fmt.Printf("scenario %s under load: flagged r%d, crossed r%d (lead %d), contained %v in %d rounds, %d/%d migrations, fp rate %.2f\n",
			grade.Name, grade.FirstFlagRound, grade.MeasuredCrossRound, grade.PredictedLeadRounds,
			grade.Contained, grade.ContainmentRounds, grade.MigrationsApplied, grade.MigrationBudget,
			grade.FalsePositiveRate)
		if *f.scenarioOut != "" {
			if err := os.WriteFile(*f.scenarioOut, grade.JSON(), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *f.scenarioOut)
		}
		if !grade.Passed {
			return fmt.Errorf("scenario %s FAILED its grade under load: %v", grade.Name, grade.Failures)
		}
	}

	if *f.baseline != "" {
		if err := compareBaseline(*f.baseline, report); err != nil {
			return err
		}
	}
	if *f.outJSON != "" {
		if err := writeReportFile(*f.outJSON, report.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *f.outJSON)
	}
	if *f.outMD != "" {
		if err := writeReportFile(*f.outMD, report.WriteMarkdown); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *f.outMD)
	}
	fmt.Println()
	return report.WriteMarkdown(os.Stdout)
}

// buildTarget assembles the harness target for one endpoint × batch cell.
func buildTarget(client *predictclient.Client, stack *predictserver.LocalStack, ep string, batch int, seed int64, f *sloFlags) (sloharness.Target, int, error) {
	switch ep {
	case "stable":
		rows, err := syntheticRows(seed, batch)
		if err != nil {
			return nil, 0, err
		}
		return &sloharness.StableTarget{Client: client, Rows: rows}, batch, nil
	case "ingest":
		var hosts []string
		if stack != nil {
			hosts = stack.Fleet.Hosts()
		}
		if len(hosts) == 0 {
			hosts = make([]string, *f.ingestHosts)
			for i := range hosts {
				hosts[i] = fmt.Sprintf("slo-h-%04d", i)
			}
		}
		return &sloharness.IngestTarget{Client: client, Hosts: hosts, Batch: batch}, batch, nil
	case "freshness":
		var hosts []string
		if stack != nil {
			hosts = stack.Fleet.Hosts()
		}
		if len(hosts) == 0 {
			hosts = make([]string, *f.ingestHosts)
			for i := range hosts {
				hosts[i] = fmt.Sprintf("slo-h-%04d", i)
			}
		}
		return &sloharness.FreshnessTarget{Client: client, Hosts: hosts, Batch: batch}, batch, nil
	case "hotspots":
		return &sloharness.HotspotsTarget{Client: client}, 1, nil
	case "place":
		return &sloharness.PlaceTarget{
			Client: client, Batch: batch,
			Prefix: fmt.Sprintf("slo-%x", time.Now().UnixNano()&0xffffff),
		}, batch, nil
	default:
		return nil, 0, fmt.Errorf("unknown endpoint %q", ep)
	}
}

// profileKnobs records the configuration dimension of one profile — the
// key the regression gate matches baseline entries on.
func profileKnobs(f *sloFlags, ep string, batch int) map[string]string {
	knobs := map[string]string{"batch": strconv.Itoa(batch)}
	if !*f.inprocess {
		return knobs
	}
	knobs["racks"] = strconv.Itoa(*f.racks)
	knobs["hosts"] = strconv.Itoa(*f.hosts)
	if ep == "place" {
		knobs["admission_budget_c"] = strconv.FormatFloat(*f.budget, 'g', -1, 64)
		knobs["admission_round_cap"] = strconv.Itoa(*f.roundCap)
	}
	if *f.workers > 0 {
		knobs["workers"] = strconv.Itoa(*f.workers)
	}
	if *f.physWorkers > 0 {
		knobs["phys_workers"] = strconv.Itoa(*f.physWorkers)
	}
	if *f.streaming {
		knobs["streaming"] = "1"
	}
	if *f.arrivals != "" && *f.arrivals != sloharness.ArrivalsFixed {
		knobs["arrivals"] = *f.arrivals
	}
	if *f.scenario != "" {
		// A distinct baseline key: capacity measured while an emergency
		// plays is not comparable to clean-fleet capacity.
		knobs["scenario"] = *f.scenario
	}
	return knobs
}

// advanceRounds moves the control plane n rounds forward — through the
// scenario runner while its timeline has rounds left (so grading sees
// them), plain rounds after.
func advanceRounds(stack *predictserver.LocalStack, emergency *scenario.Runner, n int) error {
	for i := 0; i < n; i++ {
		if emergency != nil && !emergency.Done() {
			if _, err := emergency.Step(); err != nil {
				return err
			}
			continue
		}
		if err := stack.RunRounds(1); err != nil {
			return err
		}
	}
	return nil
}

// drainRounds runs control rounds on a background ticker until the
// returned stop function is called; stop reports the first round error.
func drainRounds(stack *predictserver.LocalStack, emergency *scenario.Runner, every time.Duration) (stop func() error) {
	done := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		defer close(errCh)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := advanceRounds(stack, emergency, 1); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	return func() error {
		close(done)
		return <-errCh
	}
}

func parseBatches(spec string, fallback int) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return []int{fallback}, nil
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -slo-batches entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// regressionTolerance is how far below its baseline entry a measured
// capacity may fall before the run prints a REGRESSION line. One refine-2
// bisection step resolves ~25% of the knee, so 15% flags anything beyond
// plain step-granularity noise.
const regressionTolerance = 0.15

// compareBaseline matches each fresh profile against the committed report
// by (endpoint, knobs) and prints REGRESSION lines for capacity drops
// beyond the tolerance. CI greps the output; the run itself stays
// successful because shared runners are too noisy for a hard gate.
func compareBaseline(path string, fresh *sloharness.Report) error {
	file, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	base, err := sloharness.ParseReport(file)
	file.Close()
	if err != nil {
		return err
	}
	for _, p := range fresh.Profiles {
		bp := base.Capacity(p.Endpoint, p.Knobs)
		switch {
		case bp == nil:
			fmt.Printf("baseline %s has no entry for %s %v — skipping comparison\n", path, p.Endpoint, p.Knobs)
		case bp.MaxSustainableRPS <= 0:
			// A zero baseline means the endpoint never sustained any load
			// when the baseline was committed; nothing to regress from.
		case p.MaxSustainableRPS < (1-regressionTolerance)*bp.MaxSustainableRPS:
			fmt.Printf("REGRESSION %s: measured %.0f req/s vs baseline %.0f req/s (-%.0f%%)\n",
				p.Endpoint, p.MaxSustainableRPS, bp.MaxSustainableRPS,
				100*(1-p.MaxSustainableRPS/bp.MaxSustainableRPS))
		default:
			fmt.Printf("capacity ok %s: measured %.0f req/s vs baseline %.0f req/s\n",
				p.Endpoint, p.MaxSustainableRPS, bp.MaxSustainableRPS)
		}
	}
	return nil
}

func writeReportFile(path string, write func(io.Writer) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
