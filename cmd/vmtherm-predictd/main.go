// vmtherm-predictd serves temperature predictions over HTTP, the deployment
// shape the paper describes: "the model received data collected online and
// output prediction values".
//
// Endpoints:
//
//	GET    /healthz                      liveness probe
//	POST   /v1/predict/stable            {"features": [16 floats]} → ψ_stable
//	POST   /v1/session                   create a dynamic-prediction session
//	POST   /v1/session/{id}/observe      feed φ(t); calibrates per Δ_update
//	GET    /v1/session/{id}/predict?t=   ψ(t + Δ_gap) with current γ
//	DELETE /v1/session/{id}              drop a session
//
// Usage:
//
//	vmtherm-train -fast -out model.svm
//	vmtherm-predictd -model model.svm -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmtherm"
	"vmtherm/internal/predictserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmtherm-predictd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "model.svm", "trained stable model path")
	)
	flag.Parse()

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := vmtherm.LoadStable(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("loading model: %w", err)
	}

	srv, err := predictserver.New(model)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (model %s)", *addr, *modelPath)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
