// vmtherm-predictd serves temperature predictions over HTTP, the deployment
// shape the paper describes: "the model received data collected online and
// output prediction values".
//
// Endpoints:
//
//	GET    /healthz                      liveness probe
//	GET    /readyz                       readiness: 503 until restored and the
//	                                     first round has run, and while draining
//	GET    /metrics                      Prometheus exposition (scrape-able)
//	POST   /v1/predict/stable            {"features": [16 floats]} → ψ_stable
//	POST   /v1/stable/batch              batch ψ_stable through the SVM kernel
//	POST   /v1/session                   create a dynamic-prediction session
//	POST   /v1/session/{id}/observe      feed φ(t); calibrates per Δ_update
//	GET    /v1/session/{id}/predict?t=   ψ(t + Δ_gap) with current γ
//	DELETE /v1/session/{id}              drop a session
//	POST   /v1/fleet/ingest              push telemetry (with -source)
//	GET    /v1/fleet/hotspots            Δ_gap-ahead hotspot map (with -source)
//	GET    /v1/fleet/checkpoint          checkpoint counters (with -checkpoint-file)
//
// With -source, the daemon additionally runs a fleet control loop in the
// background — simulated (sim), replaying a recorded trace (trace), or
// scraping a live Prometheus exporter such as Kepler (scrape) — and serves
// its hotspot map and per-host gauges from the same process.
//
// Usage:
//
//	vmtherm-train -fast -out model.svm
//	vmtherm-predictd -model model.svm -addr :8080
//	vmtherm-predictd -model model.svm -source scrape -scrape-url http://kepler:9102/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"vmtherm"
	"vmtherm/internal/predictserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmtherm-predictd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// saveAnchorCache persists the controller's anchor cache, writing to a temp
// file first so an interrupted save never truncates a good cache.
func saveAnchorCache(ctl *vmtherm.FleetController, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = ctl.SaveAnchorCache(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		modelPath   = flag.String("model", "model.svm", "trained stable model path")
		source      = flag.String("source", "", "optional fleet telemetry source: sim | trace | scrape")
		racks       = flag.Int("racks", 4, "number of racks (sim source)")
		hosts       = flag.Int("hosts", 16, "hosts per rack (sim source)")
		seed        = flag.Int64("seed", 2016, "simulation seed (sim source)")
		threshold   = flag.Float64("threshold", 65, "hotspot threshold, °C")
		update      = flag.Float64("update", 15, "Δ_update calibration interval, s")
		gap         = flag.Float64("gap", 60, "Δ_gap prediction horizon, s")
		tracePath   = flag.String("trace", "", "trace CSV to replay (trace source)")
		speed       = flag.Float64("speed", 1, "trace replay pacing multiplier")
		loop        = flag.Bool("loop", true, "loop the trace when it runs out")
		scrapeURL   = flag.String("scrape-url", "", "Prometheus exposition endpoint (scrape source)")
		scrapeTemp  = flag.String("scrape-temp", "", "temperature metric name (default vmtherm_host_temp_celsius)")
		scrapeUtil  = flag.String("scrape-util", "", "utilization metric name (default vmtherm_host_util_ratio)")
		scrapeMem   = flag.String("scrape-mem", "", "memory metric name (default vmtherm_host_mem_ratio)")
		scrapeHost  = flag.String("scrape-host-label", "", "host label name (default host)")
		ambient     = flag.Float64("ambient", 22, "δ_env assumed for ψ_stable anchors (trace/scrape sources)")
		anchorCache = flag.Bool("anchor-cache", true, "memoize ψ_stable anchors per quantized (util, mem, ambient) bucket")
		anchorQuant = flag.Float64("anchor-quant", 0, "anchor cache utilization bucket width (0 = default 0.01; mem buckets are 2×; bounded by ReanchorEpsC so cache error cannot trigger re-anchors)")
		anchorFile  = flag.String("anchor-cache-file", "", "persist the anchor cache here on exit and warm from it on start (pair the file with -model)")
		physWorkers = flag.Int("phys-workers", 0, "worker pool sharding the simulated physics tick per rack (0 = min(GOMAXPROCS, 8), 1 = serial; sim source)")
		streaming   = flag.Bool("streaming", false, "event-driven ingest: apply pushed readings on arrival (per-arrival calibration, live hotspot index, predict: true on /v1/fleet/ingest); rounds keep running and reconcile")
		ckptFile    = flag.String("checkpoint-file", "", "crash-safe checkpoint base path (generations at <path>.1/<path>.2): serving state is restored from the newest valid generation on start, checkpointed periodically and on shutdown (trace/scrape sources)")
		ckptEvery   = flag.Float64("checkpoint-every", 30, "seconds between periodic checkpoints (0 = final shutdown checkpoint only; requires -checkpoint-file)")
	)
	flag.Parse()

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := vmtherm.LoadStable(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("loading model: %w", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []predictserver.Option{}
	var ctl *vmtherm.FleetController
	var paceS float64
	if *source != "" {
		cfg := vmtherm.DefaultFleetConfig()
		cfg.Racks = *racks
		cfg.HostsPerRack = *hosts
		cfg.ThresholdC = *threshold
		cfg.UpdateEveryS = *update
		cfg.GapS = *gap
		cfg.SourceAmbientC = *ambient
		cfg.AnchorCacheDisabled = !*anchorCache
		if *anchorQuant > 0 {
			cfg.AnchorQuantUtil = *anchorQuant
			cfg.AnchorQuantMem = 2 * *anchorQuant
		}
		cfg.PhysWorkers = *physWorkers
		cfg.StreamingIngest = *streaming
		cfg.Seed = *seed
		predict := vmtherm.FleetStablePredictor(model, 1800)

		switch *source {
		case "sim":
			ctl, err = vmtherm.NewFleet(cfg, predict)
		case "trace":
			if *tracePath == "" {
				return errors.New("-source trace requires -trace <csv>")
			}
			var tf *os.File
			if tf, err = os.Open(*tracePath); err != nil {
				return err
			}
			var readings []vmtherm.FleetReading
			readings, err = vmtherm.ReadTrace(tf)
			if cerr := tf.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("reading trace: %w", err)
			}
			var src *vmtherm.TraceSource
			if src, err = vmtherm.NewTraceSource(readings, vmtherm.TraceOptions{Speed: *speed, Loop: *loop}); err != nil {
				return err
			}
			ctl, err = vmtherm.NewFleetWithSource(cfg, src, predict)
		case "scrape":
			if *scrapeURL == "" {
				return errors.New("-source scrape requires -scrape-url <endpoint>")
			}
			var src *vmtherm.ScrapeSource
			src, err = vmtherm.NewScrapeSource(vmtherm.ScrapeConfig{
				URL:        *scrapeURL,
				TempMetric: *scrapeTemp,
				UtilMetric: *scrapeUtil,
				MemMetric:  *scrapeMem,
				HostLabel:  *scrapeHost,
			})
			if err != nil {
				return err
			}
			ctl, err = vmtherm.NewFleetWithSource(cfg, src, predict)
		default:
			return fmt.Errorf("unknown -source %q (want sim, trace or scrape)", *source)
		}
		if err != nil {
			return err
		}
		// Pace from the controller's *resolved* config: a zero -update flag
		// is defaulted inside the controller, and a zero ticker interval
		// would panic the round loop.
		paceS = ctl.Config().UpdateEveryS
		if *source == "trace" && *speed > 0 {
			paceS /= *speed
		}
		opts = append(opts, predictserver.WithFleet(ctl))
		log.Printf("fleet control loop attached (source %s, Δ_update %.0fs paced to %.3gs)",
			*source, ctl.Config().UpdateEveryS, paceS)

		// -anchor-cache-file: warm the anchor cache from a previous run and
		// persist it again on shutdown, so a restarted daemon skips the cold
		// mass-re-anchor rounds against an unchanged population.
		if *anchorFile != "" && !*anchorCache {
			log.Printf("-anchor-cache-file ignored: anchor cache disabled (-anchor-cache=false)")
			*anchorFile = ""
		}
		if *anchorFile != "" {
			if f, ferr := os.Open(*anchorFile); ferr == nil {
				n, lerr := ctl.LoadAnchorCache(f)
				_ = f.Close()
				if lerr != nil {
					return fmt.Errorf("loading anchor cache: %w", lerr)
				}
				log.Printf("warmed anchor cache with %d entries from %s", n, *anchorFile)
			} else if !errors.Is(ferr, os.ErrNotExist) {
				return ferr
			} else {
				log.Printf("anchor cache file %s absent; will be written on exit", *anchorFile)
			}
			defer func() {
				if err := saveAnchorCache(ctl, *anchorFile); err != nil {
					log.Printf("saving anchor cache: %v", err)
				} else {
					log.Printf("saved anchor cache to %s", *anchorFile)
				}
			}()
		}
	}

	// -checkpoint-file: restore the full serving state from the newest valid
	// generation before the round loop starts, so a restarted daemon resumes
	// exactly where the previous process stopped. Restored after the
	// anchor-cache warm so the checkpoint's (newer) cache wins.
	var ckpt *vmtherm.CheckpointManager
	if *ckptFile != "" {
		if ctl == nil || *source == "sim" {
			return errors.New("-checkpoint-file requires -source trace or scrape (a simulated substrate is not captured)")
		}
		ckpt = vmtherm.NewCheckpointManager(*ckptFile, *ckptEvery)
		st, rerr := ckpt.Restore()
		switch {
		case rerr != nil:
			log.Printf("checkpoint restore failed: %v; starting cold", rerr)
		case st == nil:
			log.Printf("no checkpoint at %s.{1,2}; cold start", *ckptFile)
		default:
			if err := ctl.Restore(st); err != nil {
				return fmt.Errorf("restoring checkpoint: %w", err)
			}
			log.Printf("restored %d sessions at round %d from checkpoint %s",
				ctl.RestoredSessions(), st.Round, *ckptFile)
		}
		opts = append(opts, predictserver.WithCheckpoint(ckpt.Status))
	}

	// ready feeds /readyz: with a fleet attached, false until the first round
	// completes (restore alone is not proof the loop is serving), and false
	// again during the shutdown drain. Without a fleet the model itself is
	// the serving state, ready as soon as the listener is up.
	var ready atomic.Bool
	opts = append(opts, predictserver.WithReadiness(ready.Load))
	if ctl == nil {
		ready.Store(true)
	}

	srv, err := predictserver.New(model, opts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// The background control loop: one round per paced interval, errors
	// logged (live sources degrade; they must not kill the API server).
	if ctl != nil {
		go func() {
			ticker := time.NewTicker(time.Duration(paceS * float64(time.Second)))
			defer ticker.Stop()
			lastCkpt := time.Now()
			for {
				rep, err := ctl.RunRound()
				if err != nil {
					log.Printf("fleet round: %v", err)
				} else {
					ready.Store(true)
					if rep.SourceError != "" {
						log.Printf("fleet round %d: source error: %s", rep.Round, rep.SourceError)
					}
					if ckpt != nil && *ckptEvery > 0 && time.Since(lastCkpt).Seconds() >= *ckptEvery {
						if st, cerr := ctl.Checkpoint(); cerr != nil {
							ckpt.NoteFailure(cerr)
							log.Printf("checkpoint: %v", cerr)
						} else if cerr := ckpt.Save(st); cerr != nil {
							log.Printf("checkpoint: %v", cerr)
						} else {
							lastCkpt = time.Now()
						}
					}
				}
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (model %s)", *addr, *modelPath)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Print("shutting down")
		// Flip /readyz to 503 first so balancers stop routing, then drain
		// in-flight requests, then cut the final checkpoint: it lands after
		// the last ingest push that could still have mutated serving state.
		ready.Store(false)
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if ckpt != nil {
			if st, err := ctl.Checkpoint(); err != nil {
				ckpt.NoteFailure(err)
				return fmt.Errorf("final checkpoint: %w", err)
			} else if err := ckpt.Save(st); err != nil {
				return fmt.Errorf("final checkpoint: %w", err)
			}
			log.Printf("final checkpoint written to %s", *ckptFile)
		}
		return nil
	}
}
