// vmtherm-sim runs one simulated thermal experiment and emits the
// temperature/utilization trace as CSV.
//
// Usage:
//
//	vmtherm-sim -vms 8 -fans 4 -ambient 22 -duration 1800 -seed 1 > trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"vmtherm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmtherm-sim: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		vms      = flag.Int("vms", 6, "number of VMs on the host (2-12 in the paper)")
		fans     = flag.Int("fans", 4, "healthy fan count")
		ambient  = flag.Float64("ambient", 22, "rack inlet temperature, °C")
		duration = flag.Float64("duration", 1800, "experiment length, seconds")
		sample   = flag.Float64("sample", 5, "sensor sampling interval, seconds")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		dynamic  = flag.Bool("dynamic", false, "use time-varying task load profiles")
		out      = flag.String("out", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	opts := vmtherm.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = *vms, *vms
	opts.FanChoices = []int{*fans}
	opts.AmbientMinC, opts.AmbientMaxC = *ambient, *ambient
	opts.Dynamic = *dynamic

	c, err := vmtherm.GenerateCase(opts, *seed, "sim")
	if err != nil {
		return err
	}
	rig, err := vmtherm.NewRig(c, vmtherm.RigOptions{Seed: *seed})
	if err != nil {
		return err
	}
	runCfg := vmtherm.DefaultRunConfig()
	runCfg.DurationS = *duration
	runCfg.SampleS = *sample
	res, err := rig.Run(runCfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				log.Printf("closing %s: %v", *out, cerr)
			}
		}()
		w = f
	}

	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_s", "sensor_temp_c", "true_temp_c", "utilization", "mem_active"}); err != nil {
		return err
	}
	truePts := res.TrueTemps.Points()
	utilPts := res.Utilization.Points()
	memPts := res.MemActive.Points()
	for i, p := range res.SensorTemps.Points() {
		row := []string{
			strconv.FormatFloat(p.T, 'f', 1, 64),
			strconv.FormatFloat(p.V, 'f', 3, 64),
			strconv.FormatFloat(truePts[i].V, 'f', 3, 64),
			strconv.FormatFloat(utilPts[i].V, 'f', 4, 64),
			strconv.FormatFloat(memPts[i].V, 'f', 4, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}

	stable, err := res.StableTemp(vmtherm.TBreakSeconds)
	if err != nil {
		return err
	}
	log.Printf("case %s: %d VMs, %d fans, ambient %.1f°C", c.Name, len(c.VMs), c.FanCount, c.AmbientC)
	log.Printf("psi_stable (Eq. 1, t_break=%.0fs) = %.2f°C", vmtherm.TBreakSeconds, stable)
	fmt.Fprintln(os.Stderr)
	return nil
}
