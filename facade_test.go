package vmtherm_test

import (
	"testing"

	"vmtherm"
)

// TestVirtualizationFacade exercises the VM/host/migration re-exports the
// placement examples build on.
func TestVirtualizationFacade(t *testing.T) {
	host, err := vmtherm.NewHost("h1", vmtherm.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	vm, err := vmtherm.NewVM("v1", vmtherm.VMConfig{VCPUs: 2, MemoryGB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.AddTask(vmtherm.Task{ID: "t", Class: vmtherm.CPUBound, CPUFraction: 0.7, MemGB: 1}); err != nil {
		t.Fatal(err)
	}
	if err := host.Place(vm); err != nil {
		t.Fatal(err)
	}
	if vm.State() != vmtherm.VMPending {
		t.Errorf("state = %v, want pending", vm.State())
	}
	if err := vm.Start(0); err != nil {
		t.Fatal(err)
	}
	if vm.State() != vmtherm.VMRunning {
		t.Errorf("state = %v, want running", vm.State())
	}
	if host.Utilization() <= 0 {
		t.Error("running VM should produce utilization")
	}

	plan, err := vmtherm.PlanMigration(vm.Config().MemoryGB, vmtherm.DefaultMigrationSpec())
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalSeconds() <= 0 || plan.Rounds < 1 {
		t.Errorf("plan = %+v", plan)
	}
}

// TestDatacenterFacade exercises racks, inlet temps, hotspots, and the
// placement policies through the root package.
func TestDatacenterFacade(t *testing.T) {
	var hosts []*vmtherm.Host
	offsets := []float64{0, 1.5}
	for i := 0; i < 2; i++ {
		h, err := vmtherm.NewHost([]string{"a", "b"}[i], vmtherm.DefaultHostConfig())
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	rack, err := vmtherm.NewRack("r1", hosts, offsets)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := vmtherm.NewDatacenter(vmtherm.DefaultCRAC(), []*vmtherm.Rack{rack})
	if err != nil {
		t.Fatal(err)
	}

	spec := vmtherm.VMSpec{
		ID:     "cand",
		Config: vmtherm.VMConfig{VCPUs: 2, MemoryGB: 4},
		Tasks: []vmtherm.TaskSpec{
			{Task: vmtherm.Task{ID: "c-t", Class: vmtherm.MemBound, CPUFraction: 0.4, MemGB: 2}},
		},
	}
	chosen, err := (vmtherm.FirstFit{}).Choose(dc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.ID() != "a" {
		t.Errorf("first fit chose %s", chosen.ID())
	}
	cool, err := (vmtherm.CoolestInlet{}).Choose(dc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cool.ID() != "a" { // lowest inlet offset
		t.Errorf("coolest inlet chose %s", cool.ID())
	}

	hs := vmtherm.DetectHotspots(map[string]float64{"a": 90, "b": 60}, 80)
	if len(hs) != 1 || hs[0].HostID != "a" {
		t.Errorf("hotspots = %+v", hs)
	}

	// PredictedTemp through the facade adapter with a fake model-like fn.
	pt := vmtherm.PredictedTemp{
		FanCount: 4,
		Predict:  func(vmtherm.Case) (float64, error) { return 50, nil },
	}
	if _, err := pt.Choose(dc, spec); err != nil {
		t.Fatal(err)
	}
}
