package telemetry

import (
	"fmt"
	"math"
	"sort"
)

// Reading is one telemetry observation of one host — the unified record that
// flows from every Source into the session engine, whether it was produced
// by the fleet simulator, replayed from a recorded trace, or scraped off a
// Prometheus exporter. It merges what fleet monitoring agents report
// (temperature + load) into the shape the paper's pipeline consumes: "the
// model received data collected online and output prediction values".
type Reading struct {
	// HostID names the observed host.
	HostID string
	// AtS is the observation time in source seconds (simulation time for the
	// simulator, trace time for replay, seconds since the scraper's epoch for
	// live exporters).
	AtS float64
	// TempC is the sensed CPU temperature.
	TempC float64
	// Util is host CPU utilization in [0, 1].
	Util float64
	// MemFrac is host memory activity in [0, 1].
	MemFrac float64
}

// Source is a pluggable stream of host telemetry, driven in control rounds.
// One interface covers three very different producers:
//
//   - the fleet simulator (synthetic physics, simulation clock),
//   - deterministic trace replay (recorded experiments, trace clock),
//   - live Prometheus-exposition scraping (real exporters, wall clock).
//
// The controller advances the source by Δ_update each round and treats
// whatever the source emitted as that round's telemetry; staleness, drops
// and degradation are handled downstream, identically for every source.
//
// Implementations need not be safe for concurrent use; the controller
// serializes Advance with its round lock.
type Source interface {
	// Name identifies the source kind ("sim", "trace", "scrape").
	Name() string
	// NowS reports the source clock after the last Advance, in seconds.
	NowS() float64
	// Advance moves the source forward by dtS seconds of source time,
	// calling emit for every reading produced in that window. emit reports
	// false when the reading was dropped (e.g. a full ingest buffer); the
	// source must keep going — drop accounting is the consumer's job.
	// Real-time sources (scrape) follow their own clock and may ignore dtS.
	Advance(dtS float64, emit func(Reading) bool) error
}

// Recorder is a Source sink that retains every reading it is offered, in
// order — the tee used to capture a simulator or scrape run as a replayable
// trace.
type Recorder struct {
	Readings []Reading
}

// Emit appends a reading; it always accepts. Pass method value
// (*Recorder).Emit wherever an emit func is expected.
func (r *Recorder) Emit(reading Reading) bool {
	r.Readings = append(r.Readings, reading)
	return true
}

// SortReadings orders readings by time, then host id — the canonical trace
// order (stable across map-iteration nondeterminism in producers).
func SortReadings(rs []Reading) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].AtS != rs[j].AtS {
			return rs[i].AtS < rs[j].AtS
		}
		return rs[i].HostID < rs[j].HostID
	})
}

// ValidateReading rejects readings that cannot be ingested.
func ValidateReading(r Reading) error {
	if r.HostID == "" {
		return fmt.Errorf("telemetry: reading missing host id")
	}
	return nil
}

// Plausibility bounds for sensed CPU temperatures: anything outside is a
// sensor fault (stuck register, wild bias, dead exporter), not physics,
// and must never reach a session's calibrator.
const (
	MinPlausibleTempC = -40
	MaxPlausibleTempC = 150
)

// RejectReason classifies an implausible temperature reading. RejectNone
// (the zero value) means the reading is usable; the other reasons are the
// fixed label set behind vmtherm_ingest_rejected_total{reason}.
type RejectReason uint8

const (
	RejectNone RejectReason = iota
	RejectNaN
	RejectInf
	RejectTooCold
	RejectTooHot
	// NumRejectReasons sizes per-reason counter arrays.
	NumRejectReasons
)

// String returns the metric-label spelling of the reason ("" for none).
func (r RejectReason) String() string {
	switch r {
	case RejectNaN:
		return "nan"
	case RejectInf:
		return "inf"
	case RejectTooCold:
		return "too_cold"
	case RejectTooHot:
		return "too_hot"
	}
	return ""
}

// ClassifyTemp classifies a sensed temperature against the plausibility
// bounds. Branch-only: safe on allocation-free hot paths.
func ClassifyTemp(tempC float64) RejectReason {
	switch {
	case math.IsNaN(tempC):
		return RejectNaN
	case math.IsInf(tempC, 0):
		return RejectInf
	case tempC < MinPlausibleTempC:
		return RejectTooCold
	case tempC > MaxPlausibleTempC:
		return RejectTooHot
	}
	return RejectNone
}

// Clamp01 clamps a ratio into [0, 1]; NaN (e.g. from a degenerate exporter
// sample) maps to 0 rather than propagating through predictions.
func Clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
