package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// ScrapeSource ingests live telemetry from any Prometheus-exposition
// endpoint — a Kepler node exporter, a node_exporter with hwmon metrics, or
// vmtherm's own predictserver /metrics — turning each scrape into one round
// of Readings. Metric and label names are configurable so the same source
// adapts to different exporters; the defaults match vmtherm's /metrics
// export (which is what the round-trip tests scrape).
//
// The scrape clock is wall time relative to the source's construction: each
// Advance performs one HTTP GET and stamps the resulting readings at the
// scrape instant, so staleness semantics downstream work exactly as they do
// for simulated or replayed telemetry. A failed scrape is returned as an
// error and emits nothing — the control loop degrades the silent hosts to
// stale rather than aborting, which is the whole point of the staleness
// machinery.
type ScrapeSource struct {
	cfg   ScrapeConfig
	epoch time.Time
	nowS  float64
}

// ScrapeConfig parameterizes a scraper.
type ScrapeConfig struct {
	// URL is the exposition endpoint (e.g. "http://kepler:9102/metrics").
	URL string
	// TempMetric is the per-host temperature gauge (°C). Required; hosts
	// missing it emit no reading.
	TempMetric string
	// UtilMetric and MemMetric are optional per-host load gauges in [0, 1];
	// hosts missing them default to 0.
	UtilMetric, MemMetric string
	// HostLabel is the label naming the host on each sample.
	HostLabel string
	// Client is the HTTP client (default: 10 s timeout).
	Client *http.Client
	// Clock injects a time source for tests (default time.Now).
	Clock func() time.Time
}

// DefaultScrapeConfig targets vmtherm's own /metrics exposition.
func DefaultScrapeConfig(rawURL string) ScrapeConfig {
	return ScrapeConfig{
		URL:        rawURL,
		TempMetric: "vmtherm_host_temp_celsius",
		UtilMetric: "vmtherm_host_util_ratio",
		MemMetric:  "vmtherm_host_mem_ratio",
		HostLabel:  "host",
	}
}

// NewScrapeSource builds a scraper. Zero-valued metric/label names take the
// vmtherm defaults, so only URL is mandatory.
func NewScrapeSource(cfg ScrapeConfig) (*ScrapeSource, error) {
	d := DefaultScrapeConfig(cfg.URL)
	if cfg.TempMetric == "" {
		cfg.TempMetric = d.TempMetric
	}
	if cfg.UtilMetric == "" {
		cfg.UtilMetric = d.UtilMetric
	}
	if cfg.MemMetric == "" {
		cfg.MemMetric = d.MemMetric
	}
	if cfg.HostLabel == "" {
		cfg.HostLabel = d.HostLabel
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	u, err := url.Parse(cfg.URL)
	if err != nil {
		return nil, fmt.Errorf("telemetry: bad scrape url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("telemetry: unsupported scrape scheme %q", u.Scheme)
	}
	return &ScrapeSource{cfg: cfg, epoch: cfg.Clock()}, nil
}

// Name identifies the source kind.
func (s *ScrapeSource) Name() string { return "scrape" }

// NowS reports seconds since the scraper's epoch, as of the last Advance.
func (s *ScrapeSource) NowS() float64 { return s.nowS }

// Advance performs one scrape and emits a reading per host that exposes the
// temperature metric. The scraper follows wall time, so dtS is ignored
// (pacing belongs to the driver); the source clock still advances even when
// the scrape fails, so staleness keeps accruing for silent hosts.
func (s *ScrapeSource) Advance(_ float64, emit func(Reading) bool) error {
	now := s.cfg.Clock()
	atS := now.Sub(s.epoch).Seconds()
	s.nowS = atS

	resp, err := s.cfg.Client.Get(s.cfg.URL)
	if err != nil {
		return fmt.Errorf("telemetry: scrape %s: %w", s.cfg.URL, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("telemetry: scrape %s: %s", s.cfg.URL, resp.Status)
	}
	points, err := ParseExposition(resp.Body)
	if err != nil {
		return err
	}

	// Fold the three metric families into per-host readings. Map iteration
	// order does not matter: the consumer keys by host id.
	type hostState struct {
		reading Reading
		hasTemp bool
	}
	hosts := make(map[string]*hostState)
	state := func(id string) *hostState {
		st, ok := hosts[id]
		if !ok {
			st = &hostState{reading: Reading{HostID: id, AtS: atS}}
			hosts[id] = st
		}
		return st
	}
	for _, p := range points {
		id := p.Label(s.cfg.HostLabel)
		if id == "" {
			continue
		}
		switch p.Name {
		case s.cfg.TempMetric:
			st := state(id)
			st.reading.TempC = p.Value
			st.hasTemp = true
		case s.cfg.UtilMetric:
			state(id).reading.Util = Clamp01(p.Value)
		case s.cfg.MemMetric:
			state(id).reading.MemFrac = Clamp01(p.Value)
		}
	}
	for _, st := range hosts {
		if !st.hasTemp {
			continue // load without temperature cannot anchor a session
		}
		emit(st.reading)
	}
	return nil
}
