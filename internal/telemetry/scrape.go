package telemetry

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"
)

// ScrapeSource ingests live telemetry from any Prometheus-exposition
// endpoint — a Kepler node exporter, a node_exporter with hwmon metrics, or
// vmtherm's own predictserver /metrics — turning each scrape into one round
// of Readings. Metric and label names are configurable so the same source
// adapts to different exporters; the defaults match vmtherm's /metrics
// export (which is what the round-trip tests scrape).
//
// The scrape clock is wall time relative to the source's construction: each
// Advance performs one HTTP GET and stamps the resulting readings at the
// scrape instant, so staleness semantics downstream work exactly as they do
// for simulated or replayed telemetry. A failed scrape is returned as an
// error and emits nothing — the control loop degrades the silent hosts to
// stale rather than aborting, which is the whole point of the staleness
// machinery.
type ScrapeSource struct {
	cfg   ScrapeConfig
	epoch time.Time
	nowS  float64
	stats scrapeCounters
}

// ScrapeStats is one endpoint's cumulative scrape accounting: how often it
// was reached, how often attempts failed, how many re-attempts (and
// backoff sleeps) the retry policy spent, and how many Advances in a row
// have ended in failure — the per-endpoint health signal a federated
// scraper will shed load on.
type ScrapeStats struct {
	// Scrapes counts successful scrapes (Advances that emitted readings).
	Scrapes int64
	// Errors counts failed attempts, including retried ones.
	Errors int64
	// Retries counts re-attempts after a failed attempt.
	Retries int64
	// Backoffs counts the backoff sleeps taken between attempts.
	Backoffs int64
	// ConsecutiveErrors counts Advances that have failed in a row (every
	// attempt exhausted); reset to zero by the next successful scrape.
	ConsecutiveErrors int64
}

// scrapeCounters is the atomic backing store for ScrapeStats, readable
// concurrently with an in-flight Advance (stats lines, /metrics).
type scrapeCounters struct {
	scrapes, errors, retries, backoffs, consecutive atomic.Int64
}

// ScrapeConfig parameterizes a scraper.
type ScrapeConfig struct {
	// URL is the exposition endpoint (e.g. "http://kepler:9102/metrics").
	URL string
	// TempMetric is the per-host temperature gauge (°C). Required; hosts
	// missing it emit no reading.
	TempMetric string
	// UtilMetric and MemMetric are optional per-host load gauges in [0, 1];
	// hosts missing them default to 0.
	UtilMetric, MemMetric string
	// HostLabel is the label naming the host on each sample.
	HostLabel string
	// Client is the HTTP client (default: 10 s timeout).
	Client *http.Client
	// Clock injects a time source for tests (default time.Now).
	Clock func() time.Time
	// MaxRetries is how many times a failed scrape attempt is retried
	// within one Advance (default 2; negative disables retries). Between
	// attempts the source sleeps a capped exponential backoff with jitter,
	// so a flapping exporter sees spaced re-attempts instead of a burst.
	MaxRetries int
	// BackoffBase and BackoffMax bound the retry backoff: the k-th retry
	// sleeps min(BackoffBase·2^k, BackoffMax) ± 25% jitter (defaults
	// 100 ms and 5 s).
	BackoffBase, BackoffMax time.Duration
	// Sleep injects the backoff sleep for tests (default time.Sleep).
	Sleep func(time.Duration)
}

// DefaultScrapeConfig targets vmtherm's own /metrics exposition.
func DefaultScrapeConfig(rawURL string) ScrapeConfig {
	return ScrapeConfig{
		URL:        rawURL,
		TempMetric: "vmtherm_host_temp_celsius",
		UtilMetric: "vmtherm_host_util_ratio",
		MemMetric:  "vmtherm_host_mem_ratio",
		HostLabel:  "host",
	}
}

// NewScrapeSource builds a scraper. Zero-valued metric/label names take the
// vmtherm defaults, so only URL is mandatory.
func NewScrapeSource(cfg ScrapeConfig) (*ScrapeSource, error) {
	d := DefaultScrapeConfig(cfg.URL)
	if cfg.TempMetric == "" {
		cfg.TempMetric = d.TempMetric
	}
	if cfg.UtilMetric == "" {
		cfg.UtilMetric = d.UtilMetric
	}
	if cfg.MemMetric == "" {
		cfg.MemMetric = d.MemMetric
	}
	if cfg.HostLabel == "" {
		cfg.HostLabel = d.HostLabel
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	u, err := url.Parse(cfg.URL)
	if err != nil {
		return nil, fmt.Errorf("telemetry: bad scrape url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("telemetry: unsupported scrape scheme %q", u.Scheme)
	}
	return &ScrapeSource{cfg: cfg, epoch: cfg.Clock()}, nil
}

// Name identifies the source kind.
func (s *ScrapeSource) Name() string { return "scrape" }

// NowS reports seconds since the scraper's epoch, as of the last Advance.
func (s *ScrapeSource) NowS() float64 { return s.nowS }

// Stats returns the endpoint's cumulative scrape accounting. Safe to call
// concurrently with an in-flight Advance.
func (s *ScrapeSource) Stats() ScrapeStats {
	return ScrapeStats{
		Scrapes:           s.stats.scrapes.Load(),
		Errors:            s.stats.errors.Load(),
		Retries:           s.stats.retries.Load(),
		Backoffs:          s.stats.backoffs.Load(),
		ConsecutiveErrors: s.stats.consecutive.Load(),
	}
}

// backoffFor computes the k-th retry's sleep: capped exponential with
// ±25% jitter, so a fleet of scrapers re-attempting a shared exporter
// does not re-synchronize into bursts.
func (s *ScrapeSource) backoffFor(k int) time.Duration {
	d := s.cfg.BackoffBase << k
	if d <= 0 || d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	jitter := 0.75 + 0.5*rand.Float64()
	return time.Duration(float64(d) * jitter)
}

// scrapeOnce performs one HTTP attempt and parses the exposition.
func (s *ScrapeSource) scrapeOnce() ([]MetricPoint, error) {
	resp, err := s.cfg.Client.Get(s.cfg.URL)
	if err != nil {
		return nil, fmt.Errorf("telemetry: scrape %s: %w", s.cfg.URL, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("telemetry: scrape %s: %s", s.cfg.URL, resp.Status)
	}
	return ParseExposition(resp.Body)
}

// Advance performs one scrape — retrying transient failures with a capped,
// jittered exponential backoff — and emits a reading per host that exposes
// the temperature metric. The scraper follows wall time, so dtS is ignored
// (pacing belongs to the driver); the source clock still advances even when
// the scrape fails, so staleness keeps accruing for silent hosts. Every
// attempt and backoff lands in Stats; an Advance whose attempts all fail
// bumps ConsecutiveErrors and returns the last error.
func (s *ScrapeSource) Advance(_ float64, emit func(Reading) bool) error {
	now := s.cfg.Clock()
	atS := now.Sub(s.epoch).Seconds()
	s.nowS = atS

	var points []MetricPoint
	var err error
	for attempt := 0; ; attempt++ {
		points, err = s.scrapeOnce()
		if err == nil {
			break
		}
		s.stats.errors.Add(1)
		if attempt >= s.cfg.MaxRetries {
			s.stats.consecutive.Add(1)
			return err
		}
		s.stats.retries.Add(1)
		s.stats.backoffs.Add(1)
		s.cfg.Sleep(s.backoffFor(attempt))
	}
	s.stats.scrapes.Add(1)
	s.stats.consecutive.Store(0)

	// Fold the three metric families into per-host readings. Map iteration
	// order does not matter: the consumer keys by host id.
	type hostState struct {
		reading Reading
		hasTemp bool
	}
	hosts := make(map[string]*hostState)
	state := func(id string) *hostState {
		st, ok := hosts[id]
		if !ok {
			st = &hostState{reading: Reading{HostID: id, AtS: atS}}
			hosts[id] = st
		}
		return st
	}
	for _, p := range points {
		id := p.Label(s.cfg.HostLabel)
		if id == "" {
			continue
		}
		switch p.Name {
		case s.cfg.TempMetric:
			st := state(id)
			st.reading.TempC = p.Value
			st.hasTemp = true
		case s.cfg.UtilMetric:
			state(id).reading.Util = Clamp01(p.Value)
		case s.cfg.MemMetric:
			state(id).reading.MemFrac = Clamp01(p.Value)
		}
	}
	for _, st := range hosts {
		if !st.hasTemp {
			continue // load without temperature cannot anchor a session
		}
		emit(st.reading)
	}
	return nil
}
