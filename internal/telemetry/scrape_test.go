package telemetry

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestParseExposition(t *testing.T) {
	const text = `# HELP vmtherm_host_temp_celsius Newest sensed CPU temperature per host.
# TYPE vmtherm_host_temp_celsius gauge
vmtherm_host_temp_celsius{host="r0-h0"} 55.25
vmtherm_host_temp_celsius{host="r0-h1"} 48 1712000000000

vmtherm_sessions 42
weird_metric{a="x,y",b="q\"uote\\n"} 1e3
`
	points, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("parsed %d points, want 4", len(points))
	}
	if points[0].Name != "vmtherm_host_temp_celsius" || points[0].Label("host") != "r0-h0" || points[0].Value != 55.25 {
		t.Fatalf("point 0 = %+v", points[0])
	}
	if points[1].TimestampMS != 1712000000000 {
		t.Fatalf("point 1 timestamp = %d", points[1].TimestampMS)
	}
	if points[2].Name != "vmtherm_sessions" || points[2].Value != 42 || len(points[2].Labels) != 0 {
		t.Fatalf("bare point = %+v", points[2])
	}
	if got := points[3].Label("a"); got != "x,y" {
		t.Fatalf("comma-in-value label = %q", got)
	}
	if got := points[3].Label("b"); got != "q\"uote\\n" {
		t.Fatalf("escaped label = %q", got)
	}
	if points[3].Value != 1000 {
		t.Fatalf("scientific value = %v", points[3].Value)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"metric_without_value",
		`m{unterminated="v" 1`,
		`m{k=unquoted} 1`,
		"m not_a_number",
		"m 1 2 3",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed line %q accepted", bad)
		}
	}
}

// TestScrapeSourceEndToEnd scrapes a fake exporter and checks the folded
// per-host readings, including Kepler-style custom metric names.
func TestScrapeSourceEndToEnd(t *testing.T) {
	const exposition = `# TYPE kepler_node_cpu_temp_celsius gauge
kepler_node_cpu_temp_celsius{node="n0"} 61.5
kepler_node_cpu_temp_celsius{node="n1"} 44
kepler_node_cpu_usage_ratio{node="n0"} 0.9
kepler_node_cpu_usage_ratio{node="n1"} 1.7
kepler_node_mem_usage_ratio{node="n0"} 0.25
kepler_node_cpu_usage_ratio{node="orphan-no-temp"} 0.5
unrelated_metric 7
`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(exposition))
	}))
	defer ts.Close()

	now := time.Unix(1000, 0)
	src, err := NewScrapeSource(ScrapeConfig{
		URL:        ts.URL,
		TempMetric: "kepler_node_cpu_temp_celsius",
		UtilMetric: "kepler_node_cpu_usage_ratio",
		MemMetric:  "kepler_node_mem_usage_ratio",
		HostLabel:  "node",
		Clock:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "scrape" {
		t.Fatalf("name = %q", src.Name())
	}

	now = now.Add(30 * time.Second)
	var got []Reading
	if err := src.Advance(15, func(r Reading) bool { got = append(got, r); return true }); err != nil {
		t.Fatal(err)
	}
	if src.NowS() != 30 {
		t.Fatalf("scrape clock = %v, want 30", src.NowS())
	}
	sort.Slice(got, func(i, j int) bool { return got[i].HostID < got[j].HostID })
	if len(got) != 2 {
		t.Fatalf("scraped %d readings, want 2 (orphan without temp excluded): %+v", len(got), got)
	}
	n0, n1 := got[0], got[1]
	if n0.HostID != "n0" || n0.TempC != 61.5 || n0.Util != 0.9 || n0.MemFrac != 0.25 || n0.AtS != 30 {
		t.Fatalf("n0 = %+v", n0)
	}
	if n1.HostID != "n1" || n1.TempC != 44 || n1.Util != 1 { // 1.7 clamped
		t.Fatalf("n1 = %+v", n1)
	}
}

// TestScrapeSourceFailureAdvancesClock: a dead exporter is an error, emits
// nothing, and still moves the clock so staleness accrues downstream.
func TestScrapeSourceFailureAdvancesClock(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	now := time.Unix(0, 0)
	src, err := NewScrapeSource(ScrapeConfig{URL: ts.URL, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(45 * time.Second)
	emitted := 0
	if err := src.Advance(15, func(Reading) bool { emitted++; return true }); err == nil {
		t.Fatal("500 scrape did not error")
	}
	if emitted != 0 {
		t.Fatalf("failed scrape emitted %d readings", emitted)
	}
	if src.NowS() != 45 {
		t.Fatalf("clock after failed scrape = %v, want 45", src.NowS())
	}
}

// TestScrapeSourceRetriesFlakyExporter: an exporter that fails twice then
// recovers is absorbed by the retry policy — one Advance, readings
// delivered, retries and backoffs accounted, no consecutive-error streak.
func TestScrapeSourceRetriesFlakyExporter(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		if calls <= 2 {
			http.Error(w, "flap", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("vmtherm_host_temp_celsius{host=\"h0\"} 50\n"))
	}))
	defer ts.Close()

	var slept []time.Duration
	src, err := NewScrapeSource(ScrapeConfig{
		URL:         ts.URL,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	if err := src.Advance(15, func(Reading) bool { emitted++; return true }); err != nil {
		t.Fatalf("flaky exporter not absorbed: %v", err)
	}
	if emitted != 1 {
		t.Fatalf("emitted %d readings, want 1", emitted)
	}
	st := src.Stats()
	if st.Scrapes != 1 || st.Errors != 2 || st.Retries != 2 || st.Backoffs != 2 || st.ConsecutiveErrors != 0 {
		t.Fatalf("stats after flaky recovery = %+v", st)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Backoff must grow exponentially from the base and stay within the
	// jitter envelope ([0.75, 1.25]× the nominal) and under the cap.
	for i, d := range slept {
		nominal := time.Millisecond << i
		if d < time.Duration(0.75*float64(nominal)) || d > time.Duration(1.25*float64(nominal)) {
			t.Fatalf("backoff %d = %v, outside jitter envelope of %v", i, d, nominal)
		}
	}

	// Kill the exporter: every attempt fails, the error surfaces, and the
	// consecutive-error streak accrues per Advance.
	ts.Close()
	for i := 0; i < 2; i++ {
		if err := src.Advance(15, func(Reading) bool { return true }); err == nil {
			t.Fatal("dead exporter did not error")
		}
	}
	st = src.Stats()
	if st.ConsecutiveErrors != 2 {
		t.Fatalf("consecutive errors = %d, want 2", st.ConsecutiveErrors)
	}
	if st.Errors != 2+2*4 {
		t.Fatalf("errors = %d, want %d (2 flaps + 2 dead Advances × 4 attempts)", st.Errors, 2+2*4)
	}
}

func TestScrapeSourceValidation(t *testing.T) {
	if _, err := NewScrapeSource(ScrapeConfig{URL: "ftp://nope"}); err == nil {
		t.Error("ftp scheme accepted")
	}
	if _, err := NewScrapeSource(ScrapeConfig{URL: "://bad"}); err == nil {
		t.Error("unparsable url accepted")
	}
}
