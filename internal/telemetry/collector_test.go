package telemetry

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock yields deterministic, strictly increasing timestamps.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(time.Second)
	return f.now
}

func newTestCollector(t *testing.T) *Collector {
	t.Helper()
	fc := &fakeClock{now: time.Unix(1000, 0)}
	c, err := NewCollector(time.Millisecond, WithClock(fc.Now), WithRetention(5))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(0); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := NewCollector(time.Second, WithRetention(0)); err == nil {
		t.Error("zero retention should fail")
	}
}

func TestRegisterValidation(t *testing.T) {
	c := newTestCollector(t)
	read := func() (float64, error) { return 1, nil }
	if err := c.Register("", read); err == nil {
		t.Error("empty name should fail")
	}
	if err := c.Register("x", nil); err == nil {
		t.Error("nil read should fail")
	}
	if err := c.Register("x", read); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("x", read); err == nil {
		t.Error("duplicate should fail")
	}
}

func TestCollectOnceAndAccessors(t *testing.T) {
	c := newTestCollector(t)
	v := 10.0
	if err := c.Register("temp", func() (float64, error) { v++; return v, nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("util", func() (float64, error) { return 0.5, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Latest("temp"); err == nil {
		t.Error("latest before any collect should fail")
	}
	c.CollectOnce()
	c.CollectOnce()
	s, err := c.Latest("temp")
	if err != nil {
		t.Fatal(err)
	}
	if s.Value != 12 {
		t.Errorf("latest = %v, want 12", s.Value)
	}
	h, err := c.History("temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0].Value != 11 {
		t.Errorf("history = %+v", h)
	}
	if _, err := c.Latest("nope"); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := c.History("nope"); err == nil {
		t.Error("unknown source history should fail")
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap["util"].Value != 0.5 {
		t.Errorf("snapshot = %+v", snap)
	}
	if got := c.Sources(); len(got) != 2 || got[0] != "temp" || got[1] != "util" {
		t.Errorf("sources = %v", got)
	}
}

func TestRetentionBound(t *testing.T) {
	c := newTestCollector(t) // retention 5
	n := 0.0
	if err := c.Register("x", func() (float64, error) { n++; return n, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		c.CollectOnce()
	}
	h, err := c.History("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 5 {
		t.Fatalf("history len = %d, want 5", len(h))
	}
	if h[0].Value != 8 || h[4].Value != 12 {
		t.Errorf("retained window wrong: %v..%v", h[0].Value, h[4].Value)
	}
}

func TestErrorsCountedAndSkipped(t *testing.T) {
	c := newTestCollector(t)
	calls := 0
	if err := c.Register("flaky", func() (float64, error) {
		calls++
		if calls%2 == 0 {
			return 0, errors.New("transient")
		}
		return float64(calls), nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.CollectOnce()
	}
	st := c.Stats()
	if st.Polls != 4 || st.Errors != 2 {
		t.Errorf("stats = %+v", st)
	}
	h, _ := c.History("flaky")
	if len(h) != 2 {
		t.Errorf("failed polls must not record samples: %d", len(h))
	}
}

func TestStartStopLifecycle(t *testing.T) {
	c, err := NewCollector(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err == nil {
		t.Error("start with no sources should fail")
	}
	if err := c.Register("x", func() (float64, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err == nil {
		t.Error("double start should fail")
	}
	if err := c.Register("y", func() (float64, error) { return 2, nil }); err == nil {
		t.Error("register while running should fail")
	}
	// Wait for at least one sample.
	deadline := time.After(2 * time.Second)
	for {
		if _, err := c.Latest("x"); err == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no sample within deadline")
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop()
	c.Stop() // idempotent
	after := c.Stats().Polls
	time.Sleep(5 * time.Millisecond)
	if c.Stats().Polls != after {
		t.Error("polls continued after Stop")
	}
	// Restart works.
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Stop()
}

func TestContextCancelStopsLoop(t *testing.T) {
	c, err := NewCollector(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register("x", func() (float64, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	time.Sleep(10 * time.Millisecond)
	before := c.Stats().Polls
	time.Sleep(10 * time.Millisecond)
	if c.Stats().Polls != before {
		t.Error("polling continued after context cancel")
	}
	c.Stop() // cleanup must be safe after ctx-cancel
}

func TestConcurrentReadersSafe(t *testing.T) {
	c := newTestCollector(t)
	if err := c.Register("x", func() (float64, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.CollectOnce()
				_, _ = c.Latest("x")
				_, _ = c.History("x")
				c.Snapshot()
				c.Stats()
			}
		}()
	}
	wg.Wait()
}

func TestSeriesBridge(t *testing.T) {
	epoch := time.Unix(1000, 0)
	c := newTestCollector(t) // fake clock starts at epoch+1s, +1s per call
	v := 50.0
	if err := c.Register("temp", func() (float64, error) { v += 0.5; return v, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.CollectOnce()
	}
	s, err := c.Series("temp", epoch)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("series len = %d", s.Len())
	}
	first, _ := s.First()
	if first.T != 1 || first.V != 50.5 {
		t.Errorf("first = %+v", first)
	}
	last, _ := s.Last()
	if last.T != 4 || last.V != 52 {
		t.Errorf("last = %+v", last)
	}
	if _, err := c.Series("ghost", epoch); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestSeriesBridgeEmptyHistory(t *testing.T) {
	c := newTestCollector(t)
	if err := c.Register("x", func() (float64, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Series("x", time.Unix(0, 0)); err == nil {
		t.Error("no samples should fail")
	}
}

// TestPollTimeoutUnblocksCollection: a ReadFunc that blocks must not stall
// the collection pass past the per-poll timeout — its sample is abandoned,
// counted in Stats.Timeouts, and the remaining sources still collect.
func TestPollTimeoutUnblocksCollection(t *testing.T) {
	fc := &fakeClock{now: time.Unix(1000, 0)}
	c, err := NewCollector(time.Millisecond,
		WithClock(fc.Now), WithPollTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	if err := c.Register("wedged", func() (float64, error) {
		<-release // a stuck exporter: blocks until the test ends
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("healthy", func() (float64, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	defer close(release)

	done := make(chan struct{})
	go func() {
		c.CollectOnce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("CollectOnce never returned: poll timeout did not fire")
	}

	st := c.Stats()
	if st.Polls != 2 {
		t.Fatalf("polls = %d, want 2", st.Polls)
	}
	if st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
	if st.Errors != 1 {
		t.Fatalf("errors = %d, want 1 (timeout counts as error)", st.Errors)
	}
	if _, err := c.Latest("wedged"); err == nil {
		t.Fatal("wedged source has a sample")
	}
	s, err := c.Latest("healthy")
	if err != nil {
		t.Fatal(err)
	}
	if s.Value != 7 {
		t.Fatalf("healthy sample = %v", s.Value)
	}
}

// TestPollTimeoutValidation: a negative timeout is rejected.
func TestPollTimeoutValidation(t *testing.T) {
	if _, err := NewCollector(time.Second, WithPollTimeout(-time.Second)); err == nil {
		t.Fatal("negative poll timeout accepted")
	}
}
