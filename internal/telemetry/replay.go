package telemetry

import (
	"errors"
	"fmt"
)

// TraceSource replays a recorded telemetry trace deterministically: each
// Advance(dt) emits exactly the readings whose (normalized) timestamps fall
// inside the next dt seconds of trace time, so the same trace always yields
// the same round-by-round telemetry regardless of wall-clock speed — the
// property the golden determinism tests pin. The ThermoSim-style payoff is
// that a recorded experiment (or a production incident capture) becomes a
// first-class workload for the same closed loop that runs the simulator.
type TraceSource struct {
	readings []Reading
	baseS    float64 // first reading's timestamp; trace time is re-zeroed to it
	periodS  float64 // one full trace cycle when looping
	speed    float64
	loop     bool

	idx    int
	cycleS float64 // accumulated loop offset
	nowS   float64
}

// TraceOptions tune replay.
type TraceOptions struct {
	// Speed is the recommended real-time pacing multiplier for drivers that
	// pace rounds (1 = real time, 10 = 10× faster, 0 = unpaced). It does not
	// affect Advance, which is pure trace time.
	Speed float64
	// Loop restarts the trace when it runs out, shifting timestamps by one
	// trace period per cycle — a finite capture becomes an endless workload.
	Loop bool
}

// NewTraceSource builds a replay source over readings, which must be
// non-empty and time-ordered (SortReadings gives the canonical order).
// Timestamps are re-zeroed to the first reading so traces recorded mid-run
// replay from t=0.
func NewTraceSource(readings []Reading, opts TraceOptions) (*TraceSource, error) {
	if len(readings) == 0 {
		return nil, errors.New("telemetry: empty trace")
	}
	if opts.Speed < 0 {
		return nil, fmt.Errorf("telemetry: negative replay speed %v", opts.Speed)
	}
	for i, r := range readings {
		if err := ValidateReading(r); err != nil {
			return nil, fmt.Errorf("telemetry: trace reading %d: %w", i, err)
		}
		if i > 0 && r.AtS < readings[i-1].AtS {
			return nil, fmt.Errorf("telemetry: trace not time-ordered at reading %d (%v after %v)",
				i, r.AtS, readings[i-1].AtS)
		}
	}
	base := readings[0].AtS
	span := readings[len(readings)-1].AtS - base
	// One cycle is the recorded span plus one mean sampling interval (over
	// distinct sample times — many hosts share each tick), so looped
	// replays do not emit the last and first samples at the same instant.
	ticks := 1
	for i := 1; i < len(readings); i++ {
		if readings[i].AtS != readings[i-1].AtS {
			ticks++
		}
	}
	period := span
	if ticks > 1 {
		period += span / float64(ticks-1)
	}
	if period <= 0 {
		period = 1
	}
	return &TraceSource{
		readings: readings,
		baseS:    base,
		periodS:  period,
		speed:    opts.Speed,
		loop:     opts.Loop,
	}, nil
}

// Name identifies the source kind.
func (s *TraceSource) Name() string { return "trace" }

// NowS reports the trace clock.
func (s *TraceSource) NowS() float64 { return s.nowS }

// Speed reports the recommended pacing multiplier (0 = unpaced).
func (s *TraceSource) Speed() float64 { return s.speed }

// Done reports whether a non-looping trace has been fully replayed.
func (s *TraceSource) Done() bool { return !s.loop && s.idx >= len(s.readings) }

// Advance emits every reading in the next dtS seconds of trace time.
// Advancing past the end of a non-looping trace emits nothing and is not an
// error (check Done); with Loop, the trace restarts with shifted timestamps.
func (s *TraceSource) Advance(dtS float64, emit func(Reading) bool) error {
	if dtS <= 0 {
		return fmt.Errorf("telemetry: trace advance %v must be > 0", dtS)
	}
	end := s.nowS + dtS
	for {
		if s.idx >= len(s.readings) {
			if !s.loop {
				break
			}
			s.idx = 0
			s.cycleS += s.periodS
		}
		r := s.readings[s.idx]
		at := r.AtS - s.baseS + s.cycleS
		if at > end {
			break
		}
		s.idx++
		r.AtS = at
		emit(r) // a dropped reading is the consumer's accounting, not ours
	}
	s.nowS = end
	return nil
}
