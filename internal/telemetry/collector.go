// Package telemetry implements the monitoring pipeline that feeds the
// predictor in deployment: named metric sources polled on an interval,
// samples fanned into bounded per-source histories, with a consistent
// snapshot view. The paper's pipeline "received data collected online and
// output prediction values"; this package is that data path for the
// vmtherm-predictd service.
package telemetry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"vmtherm/internal/timeseries"
)

// ReadFunc reads one metric value; it may fail transiently.
type ReadFunc func() (float64, error)

// Sample is one collected observation.
type Sample struct {
	Source string
	At     time.Time
	Value  float64
}

// Stats counts collector activity.
type Stats struct {
	Polls  int64
	Errors int64
	// Timeouts counts polls abandoned because a ReadFunc blocked past the
	// per-poll timeout; each also counts as an Error.
	Timeouts int64
}

// Collector polls registered sources on a fixed interval. Register sources
// before Start; samples are retained per source in a bounded ring.
type Collector struct {
	interval    time.Duration
	retention   int
	pollTimeout time.Duration
	clock       func() time.Time

	mu      sync.RWMutex
	sources map[string]ReadFunc
	history map[string][]Sample
	stats   Stats

	running bool
	cancel  context.CancelFunc
	done    chan struct{}
}

// Option customizes a Collector.
type Option func(*Collector)

// WithClock injects a time source (tests use a fake clock).
func WithClock(clock func() time.Time) Option {
	return func(c *Collector) { c.clock = clock }
}

// WithRetention bounds per-source history length (default 720 samples).
func WithRetention(n int) Option {
	return func(c *Collector) { c.retention = n }
}

// WithPollTimeout bounds each source poll: a ReadFunc that blocks past d no
// longer stalls the whole collection pass (and the polling interval behind
// it) — its sample is abandoned and counted in Stats.Timeouts. The read
// still runs to completion in its own goroutine; its eventual result is
// discarded, so a permanently wedged ReadFunc leaks exactly one goroutine
// per timed-out poll. 0 (the default) disables the bound.
func WithPollTimeout(d time.Duration) Option {
	return func(c *Collector) { c.pollTimeout = d }
}

// NewCollector creates a collector polling every interval.
func NewCollector(interval time.Duration, opts ...Option) (*Collector, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: interval must be > 0, got %v", interval)
	}
	c := &Collector{
		interval:  interval,
		retention: 720,
		clock:     time.Now,
		sources:   make(map[string]ReadFunc),
		history:   make(map[string][]Sample),
	}
	for _, o := range opts {
		o(c)
	}
	if c.retention < 1 {
		return nil, fmt.Errorf("telemetry: retention must be >= 1, got %d", c.retention)
	}
	if c.pollTimeout < 0 {
		return nil, fmt.Errorf("telemetry: poll timeout must be >= 0, got %v", c.pollTimeout)
	}
	return c, nil
}

// Register adds a named source. Registration after Start is rejected to keep
// the polling set stable.
func (c *Collector) Register(name string, read ReadFunc) error {
	if name == "" {
		return errors.New("telemetry: empty source name")
	}
	if read == nil {
		return errors.New("telemetry: nil read func")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return errors.New("telemetry: cannot register while running")
	}
	if _, ok := c.sources[name]; ok {
		return fmt.Errorf("telemetry: duplicate source %q", name)
	}
	c.sources[name] = read
	return nil
}

// Sources returns registered source names, sorted.
func (c *Collector) Sources() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sources))
	for name := range c.sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CollectOnce polls every source a single time, synchronously. It is the
// unit the polling loop repeats, and is exported for deterministic tests
// and for pull-based integrations.
func (c *Collector) CollectOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	// Deterministic order keeps samples reproducible under a fake clock.
	names := make([]string, 0, len(c.sources))
	for name := range c.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.stats.Polls++
		v, err := c.poll(c.sources[name])
		if err != nil {
			c.stats.Errors++
			if errors.Is(err, errPollTimeout) {
				c.stats.Timeouts++
			}
			continue
		}
		h := append(c.history[name], Sample{Source: name, At: now, Value: v})
		if len(h) > c.retention {
			h = h[len(h)-c.retention:]
		}
		c.history[name] = h
	}
}

// errPollTimeout marks a poll abandoned at the per-poll deadline.
var errPollTimeout = errors.New("telemetry: poll timed out")

// poll runs one ReadFunc, bounded by the per-poll timeout when one is set.
// On timeout the read keeps running in its own goroutine and its eventual
// result is discarded (the result channel is buffered so it never blocks).
func (c *Collector) poll(read ReadFunc) (float64, error) {
	if c.pollTimeout <= 0 {
		return read()
	}
	type result struct {
		v   float64
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := read()
		ch <- result{v, err}
	}()
	timer := time.NewTimer(c.pollTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.v, res.err
	case <-timer.C:
		return 0, errPollTimeout
	}
}

// Start launches the polling loop. It returns immediately; the loop stops
// when ctx is cancelled or Stop is called. Starting twice is an error.
func (c *Collector) Start(ctx context.Context) error {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return errors.New("telemetry: already running")
	}
	if len(c.sources) == 0 {
		c.mu.Unlock()
		return errors.New("telemetry: no sources registered")
	}
	ctx, cancel := context.WithCancel(ctx)
	c.running = true
	c.cancel = cancel
	c.done = make(chan struct{})
	c.mu.Unlock()

	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				c.CollectOnce()
			}
		}
	}()
	return nil
}

// Stop halts the polling loop and waits for it to exit. Safe to call when
// not running.
func (c *Collector) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	cancel := c.cancel
	done := c.done
	c.running = false
	c.cancel = nil
	c.mu.Unlock()

	cancel()
	<-done
}

// Latest returns the most recent sample for a source.
func (c *Collector) Latest(name string) (Sample, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := c.history[name]
	if len(h) == 0 {
		if _, ok := c.sources[name]; !ok {
			return Sample{}, fmt.Errorf("telemetry: unknown source %q", name)
		}
		return Sample{}, fmt.Errorf("telemetry: no samples yet for %q", name)
	}
	return h[len(h)-1], nil
}

// History returns a copy of the retained samples for a source.
func (c *Collector) History(name string) ([]Sample, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.sources[name]; !ok {
		return nil, fmt.Errorf("telemetry: unknown source %q", name)
	}
	h := c.history[name]
	out := make([]Sample, len(h))
	copy(out, h)
	return out, nil
}

// Snapshot returns the latest sample of every source that has one.
func (c *Collector) Snapshot() map[string]Sample {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]Sample, len(c.history))
	for name, h := range c.history {
		if len(h) > 0 {
			out[name] = h[len(h)-1]
		}
	}
	return out
}

// Stats returns cumulative poll/error counters.
func (c *Collector) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// Series converts a source's history into a timeseries.Series with
// timestamps as seconds since epoch — the bridge from live collection to
// the replay/evaluation tooling (core.Replay, core.ProfileTrace).
// Samples at or before an earlier sample's timestamp are dropped (clock
// adjustments must not corrupt the series).
func (c *Collector) Series(name string, epoch time.Time) (*timeseries.Series, error) {
	history, err := c.History(name)
	if err != nil {
		return nil, err
	}
	s := timeseries.New()
	for _, sample := range history {
		t := sample.At.Sub(epoch).Seconds()
		if err := s.Append(t, sample.Value); err != nil {
			continue // out-of-order after a clock step: skip
		}
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("telemetry: no usable samples for %q", name)
	}
	return s, nil
}
