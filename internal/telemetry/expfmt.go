package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// A minimal Prometheus text-exposition-format parser — enough to ingest
// Kepler-style node/VM exporters and vmtherm's own /metrics endpoint
// without pulling in a client library. It understands `# HELP`/`# TYPE`
// comments (skipped), bare samples (`name value [timestamp]`), and labeled
// samples (`name{k="v",...} value [timestamp]`) with the standard \\ \" \n
// escapes in label values.

// MetricPoint is one parsed sample line.
type MetricPoint struct {
	Name   string
	Labels map[string]string
	Value  float64
	// TimestampMS is the optional sample timestamp (0 when absent).
	TimestampMS int64
}

// Label returns a label value ("" when absent).
func (p MetricPoint) Label(key string) string { return p.Labels[key] }

// ParseExposition parses Prometheus text exposition format into points.
// Comment and blank lines are skipped; a malformed sample line is an error
// (a half-parsed scrape must not silently feed the control loop).
func ParseExposition(r io.Reader) ([]MetricPoint, error) {
	var points []MetricPoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %d: %w", line, err)
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading exposition: %w", err)
	}
	return points, nil
}

// parseSample parses one `name[{labels}] value [timestamp]` line.
func parseSample(text string) (MetricPoint, error) {
	var p MetricPoint
	rest := text
	if brace := strings.IndexByte(rest, '{'); brace >= 0 {
		p.Name = strings.TrimSpace(rest[:brace])
		labels, tail, err := parseLabels(rest[brace+1:])
		if err != nil {
			return p, err
		}
		p.Labels = labels
		rest = tail
	} else if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		p.Name = rest[:sp]
		rest = rest[sp:]
	} else {
		return p, fmt.Errorf("sample %q has no value", text)
	}
	if p.Name == "" {
		return p, fmt.Errorf("sample %q missing metric name", text)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return p, fmt.Errorf("sample %q has %d value fields, want 1 or 2", text, len(fields))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return p, fmt.Errorf("sample %q value: %w", text, err)
	}
	p.Value = v
	if len(fields) == 2 {
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return p, fmt.Errorf("sample %q timestamp: %w", text, err)
		}
		p.TimestampMS = ts
	}
	return p, nil
}

// parseLabels consumes `k="v",...}` (the text after the opening brace) and
// returns the label map plus the unconsumed tail.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " \t,")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label %q missing '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = strings.TrimLeft(s[eq+1:], " \t")
		if key == "" || len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %q must be key=\"value\"", key)
		}
		val, tail, err := parseQuoted(s)
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", key, err)
		}
		labels[key] = val
		s = tail
	}
}

// parseQuoted consumes a double-quoted string with \\ \" \n escapes,
// returning the unescaped value and the unconsumed tail.
func parseQuoted(s string) (string, string, error) {
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return sb.String(), s[i+1:], nil
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
