package telemetry

import (
	"testing"
)

func testTrace() []Reading {
	var rs []Reading
	for i := 0; i < 12; i++ {
		at := 100 + float64(i)*5 // recorded mid-run: starts at t=100, every 5 s
		rs = append(rs,
			Reading{HostID: "h0", AtS: at, TempC: 40 + float64(i), Util: 0.5},
			Reading{HostID: "h1", AtS: at, TempC: 35, Util: 0.2},
		)
	}
	return rs
}

func TestTraceSourceValidation(t *testing.T) {
	if _, err := NewTraceSource(nil, TraceOptions{}); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTraceSource([]Reading{{HostID: "a", AtS: 5}, {HostID: "a", AtS: 1}}, TraceOptions{}); err == nil {
		t.Error("unordered trace accepted")
	}
	if _, err := NewTraceSource([]Reading{{AtS: 1}}, TraceOptions{}); err == nil {
		t.Error("reading without host id accepted")
	}
	if _, err := NewTraceSource(testTrace(), TraceOptions{Speed: -1}); err == nil {
		t.Error("negative speed accepted")
	}
}

// TestTraceSourceWindows: each Advance emits exactly the readings in its
// window, with timestamps re-zeroed to the first reading.
func TestTraceSourceWindows(t *testing.T) {
	src, err := NewTraceSource(testTrace(), TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "trace" {
		t.Fatalf("name = %q", src.Name())
	}
	var got []Reading
	emit := func(r Reading) bool { got = append(got, r); return true }

	// Window (0, 15]: re-zeroed sample times 0, 5, 10, 15 → 4 ticks × 2 hosts.
	if err := src.Advance(15, emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("first window emitted %d readings, want 8", len(got))
	}
	if got[0].AtS != 0 || got[0].TempC != 40 {
		t.Fatalf("first reading not re-zeroed: %+v", got[0])
	}
	if src.NowS() != 15 {
		t.Fatalf("clock = %v, want 15", src.NowS())
	}

	// Next window (15, 30]: times 20, 25, 30 → 6 readings.
	got = got[:0]
	if err := src.Advance(15, emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("second window emitted %d readings, want 6", len(got))
	}
	for _, r := range got {
		if r.AtS <= 15 || r.AtS > 30 {
			t.Fatalf("reading outside window: %+v", r)
		}
	}

	// Drain the rest; the source must then be Done and keep emitting nothing.
	got = got[:0]
	if err := src.Advance(1000, emit); err != nil {
		t.Fatal(err)
	}
	if !src.Done() {
		t.Fatal("exhausted trace not Done")
	}
	got = got[:0]
	if err := src.Advance(15, emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("exhausted trace emitted %d readings", len(got))
	}
}

// TestTraceSourceDeterminism: two sources over the same trace emit
// identical streams regardless of how Advance is sliced.
func TestTraceSourceDeterminism(t *testing.T) {
	run := func(steps []float64) []Reading {
		src, err := NewTraceSource(testTrace(), TraceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var got []Reading
		for _, dt := range steps {
			if err := src.Advance(dt, func(r Reading) bool { got = append(got, r); return true }); err != nil {
				t.Fatal(err)
			}
		}
		return got
	}
	a := run([]float64{15, 15, 15, 15})
	b := run([]float64{5, 10, 15, 7, 8, 15})
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestTraceSourceLoop: a looping source restarts with shifted timestamps
// and is never Done.
func TestTraceSourceLoop(t *testing.T) {
	src, err := NewTraceSource(testTrace(), TraceOptions{Loop: true, Speed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if src.Speed() != 10 {
		t.Fatalf("speed = %v", src.Speed())
	}
	var got []Reading
	// The trace spans 55 s (+5 s period tail = 60): two full cycles.
	if err := src.Advance(120, func(r Reading) bool { got = append(got, r); return true }); err != nil {
		t.Fatal(err)
	}
	if src.Done() {
		t.Fatal("looping source reported Done")
	}
	if len(got) != 2*24+2 { // cycle at t=60..115 plus the third cycle's t=120 tick
		t.Fatalf("looped stream has %d readings", len(got))
	}
	last := got[len(got)-1]
	if last.AtS != 120 {
		t.Fatalf("last looped reading at %v, want 120", last.AtS)
	}
	for i := 1; i < len(got); i++ {
		if got[i].AtS < got[i-1].AtS {
			t.Fatalf("looped stream went backwards at %d: %v after %v", i, got[i].AtS, got[i-1].AtS)
		}
	}
}
