// Package baseline implements the comparison predictors the paper positions
// itself against:
//
//   - Task-temperature profiles (reference [4]): a per-task-class lookup
//     table, which by construction cannot represent heterogeneous multi-VM
//     mixes.
//   - The analytic RC model (reference [5]): steady-state physics fit on
//     aggregate utilization, fan count, and ambient only — blind to per-VM
//     structure.
//   - Ordinary least squares on the full Eq. (2) feature vector, isolating
//     the value of the SVM's nonlinearity.
//   - Naive dynamic predictors (last-value, linear extrapolation) as
//     comparison points for the calibrated-curve method.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"vmtherm/internal/dataset"
	"vmtherm/internal/mathx"
	"vmtherm/internal/vmm"
)

// StablePredictor is the common interface for ψ_stable baselines.
type StablePredictor interface {
	// Name identifies the baseline in reports.
	Name() string
	// Fit trains on Eq. (2) records.
	Fit(records []dataset.Record) error
	// Predict estimates ψ_stable from a raw feature vector.
	Predict(features []float64) (float64, error)
}

// featureIndex returns the index of a named feature in the canonical order.
func featureIndex(name string) int {
	for i, n := range dataset.FeatureNames() {
		if n == name {
			return i
		}
	}
	panic(fmt.Sprintf("baseline: unknown feature %q", name))
}

// Indices resolved once; the dataset package owns the canonical order.
var (
	idxFans      = featureIndex("fan_count")
	idxAmbient   = featureIndex("ambient_c")
	idxCapacity  = featureIndex("cpu_capacity_ghz")
	idxTaskCount = featureIndex("task_count")
	idxFracCPU   = featureIndex("frac_cpu_bound")
	idxFracMem   = featureIndex("frac_mem_bound")
	idxFracIO    = featureIndex("frac_io_bound")
	idxFracBurst = featureIndex("frac_bursty")
)

// Mean predicts the global training mean — the sanity floor every useful
// model must beat.
type Mean struct {
	mean   float64
	fitted bool
}

// Name implements StablePredictor.
func (m *Mean) Name() string { return "mean" }

// Fit implements StablePredictor.
func (m *Mean) Fit(records []dataset.Record) error {
	if len(records) == 0 {
		return errors.New("baseline: no records")
	}
	var w mathx.Welford
	for _, r := range records {
		w.Add(r.StableTemp)
	}
	m.mean = w.Mean()
	m.fitted = true
	return nil
}

// Predict implements StablePredictor.
func (m *Mean) Predict([]float64) (float64, error) {
	if !m.fitted {
		return 0, errors.New("baseline: mean not fitted")
	}
	return m.mean, nil
}

// TaskProfile reimplements the task-temperature-profile approach of the
// paper's reference [4]: temperature is tabulated per task type. Multi-
// tenant records are reduced to their *dominant* task class, which is
// exactly the information loss the paper criticizes.
type TaskProfile struct {
	classMean map[vmm.TaskClass]float64
	global    float64
	fitted    bool
}

// Name implements StablePredictor.
func (tp *TaskProfile) Name() string { return "task-profile" }

// dominantClass picks the class with the largest mix fraction.
func dominantClass(features []float64) vmm.TaskClass {
	fracs := map[vmm.TaskClass]float64{
		vmm.CPUBound: features[idxFracCPU],
		vmm.MemBound: features[idxFracMem],
		vmm.IOBound:  features[idxFracIO],
		vmm.Bursty:   features[idxFracBurst],
	}
	best := vmm.CPUBound
	bestV := math.Inf(-1)
	for _, c := range vmm.TaskClasses() { // deterministic order
		if fracs[c] > bestV {
			best, bestV = c, fracs[c]
		}
	}
	return best
}

// Fit implements StablePredictor.
func (tp *TaskProfile) Fit(records []dataset.Record) error {
	if len(records) == 0 {
		return errors.New("baseline: no records")
	}
	sums := map[vmm.TaskClass]*mathx.Welford{}
	var global mathx.Welford
	for _, r := range records {
		c := dominantClass(r.Features)
		if sums[c] == nil {
			sums[c] = &mathx.Welford{}
		}
		sums[c].Add(r.StableTemp)
		global.Add(r.StableTemp)
	}
	tp.classMean = make(map[vmm.TaskClass]float64, len(sums))
	for c, w := range sums {
		tp.classMean[c] = w.Mean()
	}
	tp.global = global.Mean()
	tp.fitted = true
	return nil
}

// Predict implements StablePredictor.
func (tp *TaskProfile) Predict(features []float64) (float64, error) {
	if !tp.fitted {
		return 0, errors.New("baseline: task profile not fitted")
	}
	if len(features) != dataset.NumFeatures() {
		return 0, fmt.Errorf("baseline: %d features, want %d", len(features), dataset.NumFeatures())
	}
	if v, ok := tp.classMean[dominantClass(features)]; ok {
		return v, nil
	}
	return tp.global, nil
}

// RC reimplements the resistor–capacitor steady-state predictor of the
// paper's reference [5]: ψ = δ_env + P·R with R set by fan count. Faithful
// to the approach it models, P assumes *homogeneous tasks*: every deployed
// task contributes one nominal power quantum, so the power estimate is
// affine in task count. The model never sees measured per-task intensities
// or memory activity — that multi-tenant telemetry is precisely what the
// paper says traditional RC models lack, and withholding it is what makes
// this a baseline rather than a competitor.
type RC struct {
	fit    mathx.MultiLinearFit
	fitted bool
}

// Name implements StablePredictor.
func (rc *RC) Name() string { return "rc-model" }

// rcTerms maps a feature vector to the physics regressors:
// [n_tasks/capacity, 1/√(fans+1), n_tasks/capacity/√(fans+1)].
func rcTerms(features []float64) []float64 {
	n := features[idxTaskCount]
	if capacity := features[idxCapacity]; capacity > 0 {
		// Normalize by capacity so hosts of different sizes share
		// coefficients (cores ∝ capacity for a fixed clock).
		n = n / capacity
	}
	invSqrtFan := 1 / math.Sqrt(features[idxFans]+1)
	return []float64{n, invSqrtFan, n * invSqrtFan}
}

// Fit implements StablePredictor. It regresses (ψ − δ_env) on the physics
// terms; ambient enters with unit coefficient as the RC model dictates.
func (rc *RC) Fit(records []dataset.Record) error {
	if len(records) == 0 {
		return errors.New("baseline: no records")
	}
	x := make([][]float64, len(records))
	y := make([]float64, len(records))
	for i, r := range records {
		x[i] = rcTerms(r.Features)
		y[i] = r.StableTemp - r.Features[idxAmbient]
	}
	fit, err := mathx.FitMultiLinear(x, y)
	if err != nil {
		return fmt.Errorf("baseline: rc fit: %w", err)
	}
	rc.fit = fit
	rc.fitted = true
	return nil
}

// Predict implements StablePredictor.
func (rc *RC) Predict(features []float64) (float64, error) {
	if !rc.fitted {
		return 0, errors.New("baseline: rc not fitted")
	}
	if len(features) != dataset.NumFeatures() {
		return 0, fmt.Errorf("baseline: %d features, want %d", len(features), dataset.NumFeatures())
	}
	return features[idxAmbient] + rc.fit.At(rcTerms(features)), nil
}

// Linear is ordinary least squares on the full Eq. (2) feature vector.
type Linear struct {
	fit    mathx.MultiLinearFit
	fitted bool
}

// Name implements StablePredictor.
func (l *Linear) Name() string { return "linear" }

// Fit implements StablePredictor. Ridge regularization (tiny λ) handles the
// exact collinearities in the Eq. (2) encoding: constant host columns when
// all experiments share a host shape, and class fractions summing to one.
func (l *Linear) Fit(records []dataset.Record) error {
	if len(records) == 0 {
		return errors.New("baseline: no records")
	}
	x, y := dataset.FeaturesAndTargets(records)
	fit, err := mathx.FitRidge(x, y, 1e-6)
	if err != nil {
		return fmt.Errorf("baseline: linear fit: %w", err)
	}
	l.fit = fit
	l.fitted = true
	return nil
}

// Predict implements StablePredictor.
func (l *Linear) Predict(features []float64) (float64, error) {
	if !l.fitted {
		return 0, errors.New("baseline: linear not fitted")
	}
	if len(features) != dataset.NumFeatures() {
		return 0, fmt.Errorf("baseline: %d features, want %d", len(features), dataset.NumFeatures())
	}
	return l.fit.At(features), nil
}

// All returns one instance of every stable baseline.
func All() []StablePredictor {
	return []StablePredictor{&Mean{}, &TaskProfile{}, &RC{}, &Linear{}}
}

// Evaluate fits a baseline on train and returns its MSE on test.
func Evaluate(b StablePredictor, train, test []dataset.Record) (float64, error) {
	if err := b.Fit(train); err != nil {
		return 0, err
	}
	preds := make([]float64, len(test))
	actuals := make([]float64, len(test))
	for i, r := range test {
		p, err := b.Predict(r.Features)
		if err != nil {
			return 0, err
		}
		preds[i] = p
		actuals[i] = r.StableTemp
	}
	return mathx.MSE(preds, actuals)
}
