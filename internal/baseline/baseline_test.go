package baseline

import (
	"context"
	"math"
	"testing"

	"vmtherm/internal/dataset"
	"vmtherm/internal/timeseries"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

func buildRecords(t *testing.T, n int, seed int64) []dataset.Record {
	t.Helper()
	cases, err := workload.GenerateCases(workload.DefaultGenOptions(), seed, "bl", n)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAllBaselinesFitAndPredict(t *testing.T) {
	recs := buildRecords(t, 40, 1)
	train, test, err := dataset.Split(recs, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range All() {
		t.Run(b.Name(), func(t *testing.T) {
			mse, err := Evaluate(b, train, test)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(mse) || mse < 0 {
				t.Errorf("MSE = %v", mse)
			}
			// Sanity: predictions are temperatures, not garbage.
			p, err := b.Predict(test[0].Features)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 || p > 150 {
				t.Errorf("prediction %v outside plausible range", p)
			}
		})
	}
}

func TestUnfittedPredictFails(t *testing.T) {
	features := make([]float64, dataset.NumFeatures())
	for _, b := range All() {
		if _, err := b.Predict(features); err == nil {
			t.Errorf("%s: predict before fit should fail", b.Name())
		}
	}
}

func TestFitEmptyFails(t *testing.T) {
	for _, b := range All() {
		if err := b.Fit(nil); err == nil {
			t.Errorf("%s: fit on empty should fail", b.Name())
		}
	}
}

func TestWrongDimensionPredictFails(t *testing.T) {
	recs := buildRecords(t, 20, 2)
	for _, b := range All() {
		if err := b.Fit(recs); err != nil {
			t.Fatal(err)
		}
		if b.Name() == "mean" {
			continue // mean ignores features by design
		}
		if _, err := b.Predict([]float64{1, 2, 3}); err == nil {
			t.Errorf("%s: wrong-dim predict should fail", b.Name())
		}
	}
}

func TestInformedBaselinesBeatMean(t *testing.T) {
	recs := buildRecords(t, 80, 3)
	train, test, err := dataset.Split(recs, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	meanMSE, err := Evaluate(&Mean{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	rcMSE, err := Evaluate(&RC{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	linMSE, err := Evaluate(&Linear{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if rcMSE >= meanMSE {
		t.Errorf("rc (%v) should beat mean (%v)", rcMSE, meanMSE)
	}
	if linMSE >= meanMSE {
		t.Errorf("linear (%v) should beat mean (%v)", linMSE, meanMSE)
	}
}

func TestDominantClass(t *testing.T) {
	f := make([]float64, dataset.NumFeatures())
	f[idxFracCPU] = 0.2
	f[idxFracMem] = 0.5
	f[idxFracIO] = 0.2
	f[idxFracBurst] = 0.1
	if got := dominantClass(f); got != vmm.MemBound {
		t.Errorf("dominant = %v, want mem-bound", got)
	}
}

func TestTaskProfileUsesDominantClassMeans(t *testing.T) {
	// Build synthetic records: cpu-dominant cases at 80°, io-dominant at 40°.
	mk := func(domIdx int, temp float64) dataset.Record {
		f := make([]float64, dataset.NumFeatures())
		f[domIdx] = 1
		return dataset.Record{Features: f, StableTemp: temp}
	}
	recs := []dataset.Record{
		mk(idxFracCPU, 80), mk(idxFracCPU, 82),
		mk(idxFracIO, 40), mk(idxFracIO, 42),
	}
	tp := &TaskProfile{}
	if err := tp.Fit(recs); err != nil {
		t.Fatal(err)
	}
	hot, err := tp.Predict(recs[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	if hot != 81 {
		t.Errorf("cpu-dominant prediction = %v, want 81", hot)
	}
	cold, err := tp.Predict(recs[2].Features)
	if err != nil {
		t.Fatal(err)
	}
	if cold != 41 {
		t.Errorf("io-dominant prediction = %v, want 41", cold)
	}
}

func TestDynamicMethodString(t *testing.T) {
	if LastValue.String() != "last-value" ||
		LinearExtrapolation.String() != "linear-extrapolation" {
		t.Error("method names wrong")
	}
	if DynamicMethod(9).String() != "DynamicMethod(9)" {
		t.Error("unknown method string wrong")
	}
}

func warmupTrace(t *testing.T) *timeseries.Series {
	t.Helper()
	s := timeseries.New()
	for tt := 0.0; tt <= 1200; tt += 5 {
		s.MustAppend(tt, 70-(70-22)*math.Exp(-tt/150))
	}
	return s
}

func TestReplayDynamicLastValueLagsDuringWarmup(t *testing.T) {
	trace := warmupTrace(t)
	mse, mae, err := ReplayDynamic(trace, LastValue, 60)
	if err != nil {
		t.Fatal(err)
	}
	// During warm-up last-value systematically lags; errors must be
	// clearly nonzero.
	if mse <= 0.5 {
		t.Errorf("last-value MSE = %v, expected visible lag error", mse)
	}
	if mae <= 0 || mae*mae > mse+1e-9 {
		t.Errorf("MAE %v inconsistent with MSE %v", mae, mse)
	}
}

func TestReplayDynamicExtrapolationBeatsLastValueOnTrend(t *testing.T) {
	trace := warmupTrace(t)
	lvMSE, _, err := ReplayDynamic(trace, LastValue, 60)
	if err != nil {
		t.Fatal(err)
	}
	leMSE, _, err := ReplayDynamic(trace, LinearExtrapolation, 60)
	if err != nil {
		t.Fatal(err)
	}
	if leMSE >= lvMSE {
		t.Errorf("extrapolation (%v) should beat last-value (%v) on a smooth trend", leMSE, lvMSE)
	}
}

func TestReplayDynamicErrors(t *testing.T) {
	if _, _, err := ReplayDynamic(nil, LastValue, 60); err == nil {
		t.Error("nil trace should fail")
	}
	if _, _, err := ReplayDynamic(timeseries.New(), LastValue, 60); err == nil {
		t.Error("empty trace should fail")
	}
	trace := warmupTrace(t)
	if _, _, err := ReplayDynamic(trace, LastValue, 0); err == nil {
		t.Error("zero gap should fail")
	}
	if _, _, err := ReplayDynamic(trace, DynamicMethod(42), 60); err == nil {
		t.Error("unknown method should fail")
	}
	short := timeseries.New()
	short.MustAppend(0, 20)
	if _, _, err := ReplayDynamic(short, LastValue, 60); err == nil {
		t.Error("short trace should fail")
	}
}
