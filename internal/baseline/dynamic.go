package baseline

import (
	"errors"
	"fmt"

	"vmtherm/internal/mathx"
	"vmtherm/internal/timeseries"
)

// DynamicMethod names a naive short-horizon temperature predictor.
type DynamicMethod int

// Naive dynamic prediction methods.
const (
	// LastValue predicts φ(t+Δ) = φ(t).
	LastValue DynamicMethod = iota + 1
	// LinearExtrapolation projects the slope of the last two observations.
	LinearExtrapolation
)

// String implements fmt.Stringer.
func (m DynamicMethod) String() string {
	switch m {
	case LastValue:
		return "last-value"
	case LinearExtrapolation:
		return "linear-extrapolation"
	default:
		return fmt.Sprintf("DynamicMethod(%d)", int(m))
	}
}

// ReplayDynamic replays a naive method over a trace exactly as core.Replay
// replays the calibrated curve: at each sample, predict gapS ahead and score
// against the (interpolated) future measurement.
func ReplayDynamic(trace *timeseries.Series, method DynamicMethod, gapS float64) (mse, mae float64, err error) {
	if trace == nil || trace.Len() == 0 {
		return 0, 0, errors.New("baseline: empty trace")
	}
	if gapS <= 0 {
		return 0, 0, fmt.Errorf("baseline: gap must be > 0, got %v", gapS)
	}
	last, err := trace.Last()
	if err != nil {
		return 0, 0, err
	}
	var preds, acts []float64
	for i := 0; i < trace.Len(); i++ {
		p := trace.At(i)
		target := p.T + gapS
		if target > last.T {
			continue
		}
		var predicted float64
		switch method {
		case LastValue:
			predicted = p.V
		case LinearExtrapolation:
			if i == 0 {
				predicted = p.V
			} else {
				prev := trace.At(i - 1)
				dt := p.T - prev.T
				slope := (p.V - prev.V) / dt
				predicted = p.V + slope*gapS
			}
		default:
			return 0, 0, fmt.Errorf("baseline: unknown method %d", int(method))
		}
		actual, err := trace.ValueAt(target)
		if err != nil {
			return 0, 0, err
		}
		preds = append(preds, predicted)
		acts = append(acts, actual)
	}
	if len(preds) == 0 {
		return 0, 0, fmt.Errorf("baseline: trace too short for gap %v", gapS)
	}
	if mse, err = mathx.MSE(preds, acts); err != nil {
		return 0, 0, err
	}
	if mae, err = mathx.MAE(preds, acts); err != nil {
		return 0, 0, err
	}
	return mse, mae, nil
}
