package thermal

import (
	"fmt"
	"math"
)

// FanState describes a single fan's operating condition.
type FanState int

// Fan states. A degraded fan spins at reduced speed; a failed fan provides
// no airflow at all. Failure injection drives the fault-tolerance tests and
// the what-if example.
const (
	FanOK FanState = iota + 1
	FanDegraded
	FanFailed
)

// String implements fmt.Stringer.
func (s FanState) String() string {
	switch s {
	case FanOK:
		return "ok"
	case FanDegraded:
		return "degraded"
	case FanFailed:
		return "failed"
	default:
		return fmt.Sprintf("FanState(%d)", int(s))
	}
}

// Fan is a single cooling fan.
type Fan struct {
	state FanState
	// speed is the commanded speed fraction (0..1).
	speed float64
}

// FanBank is the server's set of case fans. Its aggregate airflow modulates
// the case→ambient conductance of the thermal network; the paper's θ_fan
// feature is derived from it.
type FanBank struct {
	fans []Fan
	// baseG is the case→ambient conductance with zero airflow (natural
	// convection), W/K.
	baseG float64
	// perFanG is the added conductance of one healthy fan at full speed.
	perFanG float64
}

// NewFanBank creates count fans, all healthy at full speed.
func NewFanBank(count int, baseG, perFanG float64) (*FanBank, error) {
	if count < 0 {
		return nil, fmt.Errorf("thermal: negative fan count %d", count)
	}
	if baseG <= 0 || perFanG < 0 {
		return nil, fmt.Errorf("thermal: invalid conductances base %v perFan %v", baseG, perFanG)
	}
	fans := make([]Fan, count)
	for i := range fans {
		fans[i] = Fan{state: FanOK, speed: 1}
	}
	return &FanBank{fans: fans, baseG: baseG, perFanG: perFanG}, nil
}

// Count returns the number of installed fans.
func (b *FanBank) Count() int { return len(b.fans) }

// State returns fan i's state.
func (b *FanBank) State(i int) (FanState, error) {
	if i < 0 || i >= len(b.fans) {
		return 0, fmt.Errorf("thermal: no fan %d", i)
	}
	return b.fans[i].state, nil
}

// SetSpeed commands fan i to a speed fraction in [0, 1].
func (b *FanBank) SetSpeed(i int, speed float64) error {
	if i < 0 || i >= len(b.fans) {
		return fmt.Errorf("thermal: no fan %d", i)
	}
	if speed < 0 || speed > 1 {
		return fmt.Errorf("thermal: speed %v outside [0,1]", speed)
	}
	b.fans[i].speed = speed
	return nil
}

// Fail marks fan i failed (zero airflow).
func (b *FanBank) Fail(i int) error { return b.setState(i, FanFailed) }

// Degrade marks fan i degraded (half airflow).
func (b *FanBank) Degrade(i int) error { return b.setState(i, FanDegraded) }

// Repair restores fan i to healthy.
func (b *FanBank) Repair(i int) error { return b.setState(i, FanOK) }

func (b *FanBank) setState(i int, s FanState) error {
	if i < 0 || i >= len(b.fans) {
		return fmt.Errorf("thermal: no fan %d", i)
	}
	b.fans[i].state = s
	return nil
}

// Airflow returns the aggregate effective airflow in "fan units": a healthy
// full-speed fan contributes 1.0, a degraded fan half its commanded speed, a
// failed fan nothing. This is the paper's θ_fan feature.
func (b *FanBank) Airflow() float64 {
	var a float64
	for _, f := range b.fans {
		switch f.state {
		case FanOK:
			a += f.speed
		case FanDegraded:
			a += 0.5 * f.speed
		case FanFailed:
			// no contribution
		}
	}
	return a
}

// Conductance returns the case→ambient thermal conductance (W/K) produced
// by the current airflow. Airflow has diminishing returns (~square root),
// matching fan-law heat transfer behaviour.
func (b *FanBank) Conductance() float64 {
	return b.baseG + b.perFanG*math.Sqrt(b.Airflow())
}

// Healthy returns the number of fans in the OK state.
func (b *FanBank) Healthy() int {
	n := 0
	for _, f := range b.fans {
		if f.state == FanOK {
			n++
		}
	}
	return n
}
