package thermal

import (
	"fmt"
	"math"
)

// PowerModel converts server activity into heat (W). It captures the three
// effects the paper's feature vector must explain: CPU utilization (the
// dominant term), memory activity, and temperature-dependent static leakage.
type PowerModel struct {
	// IdleW is power drawn at zero utilization.
	IdleW float64
	// MaxW is power drawn at full utilization (before leakage).
	MaxW float64
	// MemMaxW is the additional power at 100% memory activity.
	MemMaxW float64
	// LeakWPerK adds LeakWPerK watts per kelvin of die temperature above
	// LeakRefC, modelling static leakage growth. May be zero.
	LeakWPerK float64
	// LeakRefC is the reference die temperature for the leakage term.
	LeakRefC float64
	// UtilExponent shapes the utilization→power curve; 1 is linear. Real
	// servers are mildly super-linear towards full load (≈1.1–1.4).
	UtilExponent float64
}

// DefaultPowerModel returns parameters typical of a dual-socket 2U server.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		IdleW:        55,
		MaxW:         165,
		MemMaxW:      18,
		LeakWPerK:    0.12,
		LeakRefC:     45,
		UtilExponent: 1.25,
	}
}

// Validate reports whether the model parameters are physically sensible.
func (p PowerModel) Validate() error {
	if p.IdleW < 0 || p.MaxW <= 0 || p.MaxW < p.IdleW {
		return fmt.Errorf("thermal: power bounds invalid (idle %v, max %v)", p.IdleW, p.MaxW)
	}
	if p.MemMaxW < 0 {
		return fmt.Errorf("thermal: negative memory power %v", p.MemMaxW)
	}
	if p.LeakWPerK < 0 {
		return fmt.Errorf("thermal: negative leakage slope %v", p.LeakWPerK)
	}
	if p.UtilExponent <= 0 {
		return fmt.Errorf("thermal: utilization exponent must be > 0, got %v", p.UtilExponent)
	}
	return nil
}

// Power returns the heat output for the given CPU utilization (0..1), memory
// activity fraction (0..1) and current die temperature. Inputs outside [0,1]
// are clamped.
func (p PowerModel) Power(util, memFrac, dieTempC float64) float64 {
	util = clamp01(util)
	memFrac = clamp01(memFrac)
	w := p.IdleW + (p.MaxW-p.IdleW)*math.Pow(util, p.UtilExponent) + p.MemMaxW*memFrac
	if p.LeakWPerK > 0 && dieTempC > p.LeakRefC {
		w += p.LeakWPerK * (dieTempC - p.LeakRefC)
	}
	return w
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
