package thermal

import (
	"math"
	"testing"
)

// buildTwoNode returns a die–case–ambient chain used by several tests.
func buildTwoNode(t *testing.T) (*Network, int, int, int) {
	t.Helper()
	n := NewNetwork()
	die, err := n.AddNode("die", 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	caseN, err := n.AddNode("case", 1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	amb, err := n.AddBoundary("ambient", 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect(die, caseN, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect(caseN, amb, 4); err != nil {
		t.Fatal(err)
	}
	return n, die, caseN, amb
}

func TestAddNodeValidation(t *testing.T) {
	n := NewNetwork()
	if _, err := n.AddNode("x", 0, 20); err == nil {
		t.Error("zero capacitance should fail")
	}
	if _, err := n.AddNode("x", -5, 20); err == nil {
		t.Error("negative capacitance should fail")
	}
	if _, err := n.AddNode("x", 10, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode("x", 10, 20); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := n.AddBoundary("x", 20); err == nil {
		t.Error("duplicate name across kinds should fail")
	}
}

func TestConnectValidation(t *testing.T) {
	n := NewNetwork()
	a, _ := n.AddNode("a", 10, 20)
	b, _ := n.AddNode("b", 10, 20)
	if _, err := n.Connect(a, 99, 1); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := n.Connect(a, a, 1); err == nil {
		t.Error("self edge should fail")
	}
	if _, err := n.Connect(a, b, 0); err == nil {
		t.Error("zero conductance should fail")
	}
	if _, err := n.Connect(a, b, 2); err != nil {
		t.Fatal(err)
	}
}

func TestNodeID(t *testing.T) {
	n := NewNetwork()
	want, _ := n.AddNode("die", 10, 20)
	got, err := n.NodeID("die")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("NodeID = %d, want %d", got, want)
	}
	if _, err := n.NodeID("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestStepValidation(t *testing.T) {
	n, die, _, amb := buildTwoNode(t)
	if err := n.Step(0, nil); err == nil {
		t.Error("zero dt should fail")
	}
	if err := n.Step(1, map[int]float64{99: 5}); err == nil {
		t.Error("unknown injection node should fail")
	}
	if err := n.Step(1, map[int]float64{amb: 5}); err == nil {
		t.Error("boundary injection should fail")
	}
	if err := n.Step(1, map[int]float64{die: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestNoHeatStaysAtEquilibrium(t *testing.T) {
	n, die, caseN, _ := buildTwoNode(t)
	if err := n.Step(1000, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Temp(die)-20) > 1e-9 || math.Abs(n.Temp(caseN)-20) > 1e-9 {
		t.Errorf("unheated network moved: die %v case %v", n.Temp(die), n.Temp(caseN))
	}
}

func TestTransientConvergesToAnalyticSteadyState(t *testing.T) {
	n, die, caseN, _ := buildTwoNode(t)
	const heat = 80.0
	// Analytic: T_die = amb + P*(1/Gca + 1/Gdc) = 20 + 80*(1/4 + 1/5) = 56.
	// T_case = amb + P/Gca = 40.
	for i := 0; i < 5000; i++ {
		if err := n.Step(1, map[int]float64{die: heat}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := n.Temp(die), 56.0; math.Abs(got-want) > 0.01 {
		t.Errorf("die steady = %v, want %v", got, want)
	}
	if got, want := n.Temp(caseN), 40.0; math.Abs(got-want) > 0.01 {
		t.Errorf("case steady = %v, want %v", got, want)
	}
}

func TestSteadyStateSolverMatchesAnalytic(t *testing.T) {
	n, die, caseN, _ := buildTwoNode(t)
	temps, err := n.SteadyState(map[int]float64{die: 80})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(temps[die]-56) > 1e-6 {
		t.Errorf("solver die = %v, want 56", temps[die])
	}
	if math.Abs(temps[caseN]-40) > 1e-6 {
		t.Errorf("solver case = %v, want 40", temps[caseN])
	}
	// Solving must not mutate live temperatures.
	if n.Temp(die) != 20 {
		t.Error("SteadyState mutated network state")
	}
}

func TestSteadyStateNoBoundaryPath(t *testing.T) {
	n := NewNetwork()
	a, _ := n.AddNode("a", 10, 20)
	b, _ := n.AddNode("b", 10, 20)
	if _, err := n.Connect(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SteadyState(map[int]float64{a: 10}); err == nil {
		t.Error("floating network should fail steady-state solve")
	}
}

func TestMonotoneHeatingTransient(t *testing.T) {
	n, die, _, _ := buildTwoNode(t)
	prev := n.Temp(die)
	for i := 0; i < 600; i++ {
		if err := n.Step(1, map[int]float64{die: 100}); err != nil {
			t.Fatal(err)
		}
		cur := n.Temp(die)
		if cur < prev-1e-9 {
			t.Fatalf("heating transient not monotone at step %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestBoundaryTempShiftsEquilibrium(t *testing.T) {
	n, die, _, amb := buildTwoNode(t)
	if err := n.SetBoundaryTemp(amb, 30); err != nil {
		t.Fatal(err)
	}
	temps, err := n.SteadyState(map[int]float64{die: 80})
	if err != nil {
		t.Fatal(err)
	}
	// Same 36K rise over the new 30C ambient.
	if math.Abs(temps[die]-66) > 1e-6 {
		t.Errorf("die steady with warm ambient = %v, want 66", temps[die])
	}
	if err := n.SetBoundaryTemp(die, 10); err == nil {
		t.Error("SetBoundaryTemp on internal node should fail")
	}
}

func TestSetConductanceAffectsSteadyState(t *testing.T) {
	n := NewNetwork()
	die, _ := n.AddNode("die", 100, 20)
	amb, _ := n.AddBoundary("amb", 20)
	e, err := n.Connect(die, amb, 2)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := n.SteadyState(map[int]float64{die: 40}) // 20 + 40/2 = 40
	if math.Abs(t1[die]-40) > 1e-6 {
		t.Fatalf("initial steady = %v", t1[die])
	}
	if err := n.SetConductance(e, 4); err != nil {
		t.Fatal(err)
	}
	t2, _ := n.SteadyState(map[int]float64{die: 40}) // 20 + 10 = 30
	if math.Abs(t2[die]-30) > 1e-6 {
		t.Errorf("steady after fan boost = %v, want 30", t2[die])
	}
	if err := n.SetConductance(99, 1); err == nil {
		t.Error("unknown edge should fail")
	}
	if err := n.SetConductance(e, -1); err == nil {
		t.Error("negative conductance should fail")
	}
}

func TestEnergyConservationAtSteadyState(t *testing.T) {
	// At equilibrium, injected power equals power crossing into the boundary.
	n, die, caseN, amb := buildTwoNode(t)
	temps, err := n.SteadyState(map[int]float64{die: 123})
	if err != nil {
		t.Fatal(err)
	}
	flowOut := 4 * (temps[caseN] - temps[amb])
	if math.Abs(flowOut-123) > 1e-6 {
		t.Errorf("boundary outflow = %v W, want 123 W", flowOut)
	}
	flowDieCase := 5 * (temps[die] - temps[caseN])
	if math.Abs(flowDieCase-123) > 1e-6 {
		t.Errorf("die→case flow = %v W, want 123 W", flowDieCase)
	}
}

func TestLargeStepMatchesSmallSteps(t *testing.T) {
	// Sub-stepping must make one big Step equivalent to many small ones.
	big, die1, _, _ := buildTwoNode(t)
	small, die2, _, _ := buildTwoNode(t)
	inj1 := map[int]float64{die1: 90}
	inj2 := map[int]float64{die2: 90}
	if err := big.Step(300, inj1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := small.Step(1, inj2); err != nil {
			t.Fatal(err)
		}
	}
	if diff := math.Abs(big.Temp(die1) - small.Temp(die2)); diff > 0.25 {
		t.Errorf("big-step vs small-step divergence %v °C", diff)
	}
}
