package thermal

import (
	"fmt"
)

// ServerParams configures a server's thermal assembly: a two-node RC network
// (CPU die + case/heatsink) cooled by a fan bank into ambient air.
type ServerParams struct {
	// Power is the heat generation model.
	Power PowerModel
	// DieCapacitance is the CPU die + spreader heat capacity, J/K.
	DieCapacitance float64
	// CaseCapacitance is the heatsink/chassis heat capacity, J/K. It sets
	// the slow time constant that makes temperature take ~10 minutes to
	// stabilize (the paper's t_break = 600 s).
	CaseCapacitance float64
	// DieToCaseG is the die→heatsink conductance, W/K.
	DieToCaseG float64
	// Fans configures the fan bank.
	FanCount int
	// BaseCaseG is case→ambient conductance with no airflow, W/K.
	BaseCaseG float64
	// PerFanG is the conductance added per healthy full-speed fan, W/K.
	PerFanG float64
	// AmbientC is the initial ambient (rack inlet) temperature, °C.
	AmbientC float64
	// ThrottleTempC, if > 0, engages thermal throttling: above this die
	// temperature, utilization is progressively capped to protect silicon.
	ThrottleTempC float64
}

// DefaultServerParams returns the reference server used across experiments:
// a 4-fan 2U machine whose CPU settles within ≈600 s, matching the paper's
// empirical break-in time.
func DefaultServerParams() ServerParams {
	return ServerParams{
		Power:           DefaultPowerModel(),
		DieCapacitance:  140,
		CaseCapacitance: 400,
		DieToCaseG:      5.5,
		FanCount:        4,
		BaseCaseG:       0.9,
		PerFanG:         1.8,
		AmbientC:        22,
		ThrottleTempC:   96,
	}
}

// Validate checks parameter sanity.
func (p ServerParams) Validate() error {
	if err := p.Power.Validate(); err != nil {
		return err
	}
	if p.DieCapacitance <= 0 || p.CaseCapacitance <= 0 {
		return fmt.Errorf("thermal: capacitances must be > 0 (die %v, case %v)",
			p.DieCapacitance, p.CaseCapacitance)
	}
	if p.DieToCaseG <= 0 {
		return fmt.Errorf("thermal: die-to-case conductance must be > 0, got %v", p.DieToCaseG)
	}
	if p.FanCount < 0 {
		return fmt.Errorf("thermal: negative fan count %d", p.FanCount)
	}
	if p.BaseCaseG <= 0 || p.PerFanG < 0 {
		return fmt.Errorf("thermal: invalid case conductances base %v perFan %v",
			p.BaseCaseG, p.PerFanG)
	}
	return nil
}

// Server is the thermal state of one physical machine. Drive it by setting
// Load and calling Advance; read the die temperature with DieTemp or through
// a Sensor.
type Server struct {
	params   ServerParams
	net      *Network
	die      int
	caseN    int
	ambient  int
	caseEdge int // edge whose conductance tracks the fan bank
	fans     *FanBank

	util      float64 // commanded CPU utilization 0..1
	memFrac   float64 // memory activity 0..1
	throttled bool
}

// NewServer builds a server thermal assembly from params. All nodes start
// at ambient temperature (a cold machine).
func NewServer(params ServerParams) (*Server, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	net := NewNetwork()
	die, err := net.AddNode("die", params.DieCapacitance, params.AmbientC)
	if err != nil {
		return nil, err
	}
	caseN, err := net.AddNode("case", params.CaseCapacitance, params.AmbientC)
	if err != nil {
		return nil, err
	}
	amb, err := net.AddBoundary("ambient", params.AmbientC)
	if err != nil {
		return nil, err
	}
	if _, err := net.Connect(die, caseN, params.DieToCaseG); err != nil {
		return nil, err
	}
	fans, err := NewFanBank(params.FanCount, params.BaseCaseG, params.PerFanG)
	if err != nil {
		return nil, err
	}
	caseEdge, err := net.Connect(caseN, amb, fans.Conductance())
	if err != nil {
		return nil, err
	}
	return &Server{
		params:   params,
		net:      net,
		die:      die,
		caseN:    caseN,
		ambient:  amb,
		caseEdge: caseEdge,
		fans:     fans,
	}, nil
}

// SetLoad sets the commanded CPU utilization and memory activity fractions.
// Values are clamped to [0, 1].
func (s *Server) SetLoad(util, memFrac float64) {
	s.util = clamp01(util)
	s.memFrac = clamp01(memFrac)
}

// Load returns the commanded utilization and memory activity.
func (s *Server) Load() (util, memFrac float64) { return s.util, s.memFrac }

// SetAmbient changes the rack inlet air temperature (°C).
func (s *Server) SetAmbient(tempC float64) {
	// ambient is always a valid boundary node by construction.
	_ = s.net.SetBoundaryTemp(s.ambient, tempC)
}

// Ambient returns the current inlet air temperature.
func (s *Server) Ambient() float64 { return s.net.Temp(s.ambient) }

// Fans exposes the fan bank for speed control and failure injection.
func (s *Server) Fans() *FanBank { return s.fans }

// Throttled reports whether thermal throttling engaged during the last
// Advance call.
func (s *Server) Throttled() bool { return s.throttled }

// EffectiveUtil returns the utilization after any thermal throttling.
func (s *Server) EffectiveUtil() float64 {
	u := s.util
	if s.params.ThrottleTempC > 0 {
		die := s.net.Temp(s.die)
		if over := die - s.params.ThrottleTempC; over > 0 {
			// Each degree over the limit sheds 10% of the commanded load.
			limit := clamp01(1 - 0.1*over)
			if limit < u {
				u = limit
			}
		}
	}
	return u
}

// Advance integrates the thermal state forward by dt seconds under the
// current load, fan and ambient conditions.
func (s *Server) Advance(dt float64) error {
	if err := s.net.SetConductance(s.caseEdge, s.fans.Conductance()); err != nil {
		return err
	}
	u := s.EffectiveUtil()
	s.throttled = u < s.util
	heat := s.params.Power.Power(u, s.memFrac, s.net.Temp(s.die))
	return s.net.StepOne(dt, s.die, heat)
}

// DieTemp returns the true (noise-free) CPU die temperature, °C.
func (s *Server) DieTemp() float64 { return s.net.Temp(s.die) }

// CaseTemp returns the true heatsink/case temperature, °C.
func (s *Server) CaseTemp() float64 { return s.net.Temp(s.caseN) }

// SteadyStateDieTemp solves the asymptotic die temperature for a constant
// utilization/memory load under current fan and ambient conditions. Leakage
// feedback is resolved by fixed-point iteration.
func (s *Server) SteadyStateDieTemp(util, memFrac float64) (float64, error) {
	if err := s.net.SetConductance(s.caseEdge, s.fans.Conductance()); err != nil {
		return 0, err
	}
	die := s.net.Temp(s.die)
	for i := 0; i < 200; i++ {
		heat := s.params.Power.Power(util, memFrac, die)
		temps, err := s.net.SteadyState(map[int]float64{s.die: heat})
		if err != nil {
			return 0, err
		}
		next := temps[s.die]
		if diff := next - die; diff < 1e-9 && diff > -1e-9 {
			return next, nil
		}
		die = next
	}
	return die, nil
}

// Params returns a copy of the construction parameters.
func (s *Server) Params() ServerParams { return s.params }
