package thermal

import (
	"fmt"
	"math"

	"vmtherm/internal/mathx"
)

// SensorParams configures a temperature sensor's error model.
type SensorParams struct {
	// NoiseStdC is the Gaussian read-noise standard deviation, °C. On-die
	// digital thermal sensors are typically within ±1 °C.
	NoiseStdC float64
	// QuantizationC rounds readings to this granularity (0 disables), e.g.
	// 0.5 for a half-degree DTS.
	QuantizationC float64
	// BiasC is a constant calibration offset.
	BiasC float64
	// FailProb is the chance any single read returns ErrSensorRead,
	// modelling flaky management-controller queries. 0 disables.
	FailProb float64
}

// DefaultSensorParams matches a commodity on-die digital thermal sensor.
func DefaultSensorParams() SensorParams {
	return SensorParams{NoiseStdC: 0.4, QuantizationC: 0.25}
}

// Validate checks the error-model parameters.
func (p SensorParams) Validate() error {
	if p.NoiseStdC < 0 {
		return fmt.Errorf("thermal: negative sensor noise %v", p.NoiseStdC)
	}
	if p.QuantizationC < 0 {
		return fmt.Errorf("thermal: negative quantization %v", p.QuantizationC)
	}
	if p.FailProb < 0 || p.FailProb >= 1 {
		return fmt.Errorf("thermal: fail probability %v outside [0,1)", p.FailProb)
	}
	return nil
}

// ErrSensorRead indicates a transient sensor read failure.
var ErrSensorRead = fmt.Errorf("thermal: sensor read failed")

// Sensor observes a temperature source through an error model. It is the
// only view of the simulator the predictors get.
type Sensor struct {
	params SensorParams
	source func() float64
	rng    *mathx.RNG
	reads  int
	fails  int
}

// NewSensor wraps source with the given error model. rng must not be shared
// with other components that need independent streams.
func NewSensor(params SensorParams, source func() float64, rng *mathx.RNG) (*Sensor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if source == nil {
		return nil, fmt.Errorf("thermal: nil sensor source")
	}
	if rng == nil {
		return nil, fmt.Errorf("thermal: nil sensor rng")
	}
	return &Sensor{params: params, source: source, rng: rng}, nil
}

// Read returns one observation. It may fail transiently per FailProb.
func (s *Sensor) Read() (float64, error) {
	s.reads++
	if s.params.FailProb > 0 && s.rng.Bool(s.params.FailProb) {
		s.fails++
		return 0, ErrSensorRead
	}
	v := s.source() + s.params.BiasC
	if s.params.NoiseStdC > 0 {
		v += s.rng.Normal(0, s.params.NoiseStdC)
	}
	if q := s.params.QuantizationC; q > 0 {
		v = math.Round(v/q) * q
	}
	return v, nil
}

// ReadRetry reads with up to attempts retries on transient failure.
func (s *Sensor) ReadRetry(attempts int) (float64, error) {
	var lastErr error
	for i := 0; i < attempts; i++ {
		v, err := s.Read()
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	return 0, fmt.Errorf("thermal: %d read attempts exhausted: %w", attempts, lastErr)
}

// Stats returns total reads and transient failures, for telemetry tests.
func (s *Sensor) Stats() (reads, fails int) { return s.reads, s.fails }
