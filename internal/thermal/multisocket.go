package thermal

import (
	"fmt"
)

// MultiSocketParams configures a server with several CPU packages sharing
// one chassis and fan bank — the dual-socket machines the paper's testbed
// class uses. Each socket gets its own die node and power model; all dies
// couple through the shared case node, so a hot neighbour measurably warms
// an idle socket (a cross-coupling single-CPU models cannot express).
type MultiSocketParams struct {
	// Base carries chassis, fan, and per-socket die parameters. Its power
	// model applies to every socket.
	Base ServerParams
	// Sockets is the CPU package count (>= 1).
	Sockets int
}

// DefaultMultiSocketParams returns a dual-socket variant of the reference
// server.
func DefaultMultiSocketParams() MultiSocketParams {
	p := DefaultServerParams()
	// Two packages share the chassis: each die keeps its own capacitance;
	// the case and fans are shared as-is.
	return MultiSocketParams{Base: p, Sockets: 2}
}

// Validate checks the configuration.
func (p MultiSocketParams) Validate() error {
	if err := p.Base.Validate(); err != nil {
		return err
	}
	if p.Sockets < 1 {
		return fmt.Errorf("thermal: sockets must be >= 1, got %d", p.Sockets)
	}
	return nil
}

// MultiSocketServer is the thermal state of a multi-package machine.
type MultiSocketServer struct {
	params   MultiSocketParams
	net      *Network
	dies     []int
	caseN    int
	ambient  int
	caseEdge int
	fans     *FanBank

	utils   []float64
	memFrac float64
}

// NewMultiSocketServer builds the assembly with all nodes at ambient.
func NewMultiSocketServer(params MultiSocketParams) (*MultiSocketServer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	base := params.Base
	net := NewNetwork()
	caseN, err := net.AddNode("case", base.CaseCapacitance, base.AmbientC)
	if err != nil {
		return nil, err
	}
	amb, err := net.AddBoundary("ambient", base.AmbientC)
	if err != nil {
		return nil, err
	}
	dies := make([]int, params.Sockets)
	for i := range dies {
		die, err := net.AddNode(fmt.Sprintf("die%d", i), base.DieCapacitance, base.AmbientC)
		if err != nil {
			return nil, err
		}
		if _, err := net.Connect(die, caseN, base.DieToCaseG); err != nil {
			return nil, err
		}
		dies[i] = die
	}
	fans, err := NewFanBank(base.FanCount, base.BaseCaseG, base.PerFanG)
	if err != nil {
		return nil, err
	}
	caseEdge, err := net.Connect(caseN, amb, fans.Conductance())
	if err != nil {
		return nil, err
	}
	return &MultiSocketServer{
		params:   params,
		net:      net,
		dies:     dies,
		caseN:    caseN,
		ambient:  amb,
		caseEdge: caseEdge,
		fans:     fans,
		utils:    make([]float64, params.Sockets),
	}, nil
}

// Sockets returns the package count.
func (s *MultiSocketServer) Sockets() int { return len(s.dies) }

// SetSocketLoad sets one socket's utilization (clamped to [0,1]).
func (s *MultiSocketServer) SetSocketLoad(socket int, util float64) error {
	if socket < 0 || socket >= len(s.dies) {
		return fmt.Errorf("thermal: no socket %d", socket)
	}
	s.utils[socket] = clamp01(util)
	return nil
}

// SetMemActivity sets the shared memory activity fraction.
func (s *MultiSocketServer) SetMemActivity(frac float64) { s.memFrac = clamp01(frac) }

// Fans exposes the shared fan bank.
func (s *MultiSocketServer) Fans() *FanBank { return s.fans }

// SetAmbient changes the inlet temperature.
func (s *MultiSocketServer) SetAmbient(tempC float64) {
	_ = s.net.SetBoundaryTemp(s.ambient, tempC)
}

// Advance integrates the assembly by dt seconds. Memory power is split
// evenly across sockets (shared DIMM channels).
func (s *MultiSocketServer) Advance(dt float64) error {
	if err := s.net.SetConductance(s.caseEdge, s.fans.Conductance()); err != nil {
		return err
	}
	inj := make(map[int]float64, len(s.dies))
	memShare := s.memFrac / float64(len(s.dies))
	for i, die := range s.dies {
		inj[die] = s.params.Base.Power.Power(s.utils[i], memShare, s.net.Temp(die))
	}
	return s.net.Step(dt, inj)
}

// DieTemp returns socket i's die temperature.
func (s *MultiSocketServer) DieTemp(socket int) (float64, error) {
	if socket < 0 || socket >= len(s.dies) {
		return 0, fmt.Errorf("thermal: no socket %d", socket)
	}
	return s.net.Temp(s.dies[socket]), nil
}

// MaxDieTemp returns the hottest socket's temperature — what a server-level
// sensor reports on multi-package machines.
func (s *MultiSocketServer) MaxDieTemp() float64 {
	hottest := s.net.Temp(s.dies[0])
	for _, die := range s.dies[1:] {
		if t := s.net.Temp(die); t > hottest {
			hottest = t
		}
	}
	return hottest
}

// CaseTemp returns the shared chassis temperature.
func (s *MultiSocketServer) CaseTemp() float64 { return s.net.Temp(s.caseN) }
