package thermal

import (
	"math"
	"testing"
)

func TestNewFanBankValidation(t *testing.T) {
	if _, err := NewFanBank(-1, 1, 1); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := NewFanBank(4, 0, 1); err == nil {
		t.Error("zero base conductance should fail")
	}
	if _, err := NewFanBank(4, 1, -1); err == nil {
		t.Error("negative per-fan conductance should fail")
	}
	b, err := NewFanBank(4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count() != 4 || b.Healthy() != 4 {
		t.Errorf("Count=%d Healthy=%d, want 4/4", b.Count(), b.Healthy())
	}
}

func TestAirflowFullSpeedHealthy(t *testing.T) {
	b, _ := NewFanBank(4, 1, 2)
	if got := b.Airflow(); got != 4 {
		t.Errorf("Airflow = %v, want 4", got)
	}
}

func TestAirflowStates(t *testing.T) {
	b, _ := NewFanBank(4, 1, 2)
	if err := b.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Degrade(1); err != nil {
		t.Fatal(err)
	}
	// 0 (failed) + 0.5 (degraded) + 1 + 1 = 2.5
	if got := b.Airflow(); got != 2.5 {
		t.Errorf("Airflow = %v, want 2.5", got)
	}
	if b.Healthy() != 2 {
		t.Errorf("Healthy = %d, want 2", b.Healthy())
	}
	if err := b.Repair(0); err != nil {
		t.Fatal(err)
	}
	if got := b.Airflow(); got != 3.5 {
		t.Errorf("Airflow after repair = %v, want 3.5", got)
	}
	st, err := b.State(1)
	if err != nil {
		t.Fatal(err)
	}
	if st != FanDegraded {
		t.Errorf("State(1) = %v, want degraded", st)
	}
}

func TestSetSpeed(t *testing.T) {
	b, _ := NewFanBank(2, 1, 2)
	if err := b.SetSpeed(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := b.Airflow(); got != 1.5 {
		t.Errorf("Airflow = %v, want 1.5", got)
	}
	if err := b.SetSpeed(0, 1.5); err == nil {
		t.Error("speed > 1 should fail")
	}
	if err := b.SetSpeed(0, -0.1); err == nil {
		t.Error("speed < 0 should fail")
	}
	if err := b.SetSpeed(9, 1); err == nil {
		t.Error("unknown fan should fail")
	}
}

func TestOutOfRangeFanOps(t *testing.T) {
	b, _ := NewFanBank(1, 1, 2)
	if err := b.Fail(5); err == nil {
		t.Error("Fail out of range should error")
	}
	if err := b.Degrade(-1); err == nil {
		t.Error("Degrade out of range should error")
	}
	if err := b.Repair(2); err == nil {
		t.Error("Repair out of range should error")
	}
	if _, err := b.State(7); err == nil {
		t.Error("State out of range should error")
	}
}

func TestConductanceDiminishingReturns(t *testing.T) {
	b4, _ := NewFanBank(4, 1, 2)
	b8, _ := NewFanBank(8, 1, 2)
	g4 := b4.Conductance() // 1 + 2*2 = 5
	g8 := b8.Conductance() // 1 + 2*2.828 = 6.657
	if math.Abs(g4-5) > 1e-9 {
		t.Errorf("G(4 fans) = %v, want 5", g4)
	}
	if g8-g4 >= g4-1 {
		t.Error("doubling fans should add less than the first four did")
	}
}

func TestConductanceZeroFans(t *testing.T) {
	b, _ := NewFanBank(0, 0.9, 2)
	if got := b.Conductance(); got != 0.9 {
		t.Errorf("natural convection only = %v, want 0.9", got)
	}
}

func TestFanStateString(t *testing.T) {
	tests := []struct {
		s    FanState
		want string
	}{
		{FanOK, "ok"},
		{FanDegraded, "degraded"},
		{FanFailed, "failed"},
		{FanState(42), "FanState(42)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}
