package thermal

import (
	"errors"
	"math"
	"testing"

	"vmtherm/internal/mathx"
)

func TestSensorParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		params SensorParams
		ok     bool
	}{
		{"default", DefaultSensorParams(), true},
		{"noise-free", SensorParams{}, true},
		{"negative noise", SensorParams{NoiseStdC: -1}, false},
		{"negative quant", SensorParams{QuantizationC: -0.5}, false},
		{"fail prob 1", SensorParams{FailProb: 1}, false},
		{"fail prob negative", SensorParams{FailProb: -0.1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.params.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestNewSensorRejectsNilArgs(t *testing.T) {
	rng := mathx.NewRNG(1)
	if _, err := NewSensor(DefaultSensorParams(), nil, rng); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewSensor(DefaultSensorParams(), func() float64 { return 0 }, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewSensor(SensorParams{NoiseStdC: -1}, func() float64 { return 0 }, rng); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestNoiseFreeSensorIsExact(t *testing.T) {
	s, err := NewSensor(SensorParams{}, func() float64 { return 55.25 }, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != 55.25 {
		t.Errorf("Read = %v, want 55.25", v)
	}
}

func TestBiasApplied(t *testing.T) {
	s, err := NewSensor(SensorParams{BiasC: 2}, func() float64 { return 50 }, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read()
	if v != 52 {
		t.Errorf("biased read = %v, want 52", v)
	}
}

func TestQuantization(t *testing.T) {
	s, err := NewSensor(SensorParams{QuantizationC: 0.5}, func() float64 { return 41.3 }, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read()
	if v != 41.5 {
		t.Errorf("quantized read = %v, want 41.5", v)
	}
}

func TestNoiseStatistics(t *testing.T) {
	s, err := NewSensor(SensorParams{NoiseStdC: 0.8}, func() float64 { return 60 }, mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	var w mathx.Welford
	for i := 0; i < 20000; i++ {
		v, err := s.Read()
		if err != nil {
			t.Fatal(err)
		}
		w.Add(v)
	}
	if math.Abs(w.Mean()-60) > 0.05 {
		t.Errorf("noisy mean = %v, want ~60", w.Mean())
	}
	if math.Abs(w.StdDev()-0.8) > 0.05 {
		t.Errorf("noisy std = %v, want ~0.8", w.StdDev())
	}
}

func TestTransientFailures(t *testing.T) {
	s, err := NewSensor(SensorParams{FailProb: 0.3}, func() float64 { return 60 }, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for i := 0; i < 10000; i++ {
		if _, err := s.Read(); err != nil {
			if !errors.Is(err, ErrSensorRead) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	frac := float64(fails) / 10000
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("failure rate = %v, want ~0.3", frac)
	}
	reads, failCount := s.Stats()
	if reads != 10000 || failCount != fails {
		t.Errorf("Stats = (%d, %d), want (10000, %d)", reads, failCount, fails)
	}
}

func TestReadRetrySucceedsEventually(t *testing.T) {
	s, err := NewSensor(SensorParams{FailProb: 0.5}, func() float64 { return 42 }, mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 200; i++ {
		if v, err := s.ReadRetry(10); err == nil && v == 42 {
			ok++
		}
	}
	if ok < 195 {
		t.Errorf("ReadRetry succeeded only %d/200 times with 10 attempts", ok)
	}
}

func TestReadRetryExhaustion(t *testing.T) {
	// FailProb must be < 1, so use 0.99 and few attempts; exhaustion is
	// overwhelmingly likely across repeats, and we assert error wrapping.
	s, err := NewSensor(SensorParams{FailProb: 0.99}, func() float64 { return 42 }, mathx.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	sawExhaustion := false
	for i := 0; i < 50 && !sawExhaustion; i++ {
		if _, err := s.ReadRetry(2); err != nil {
			if !errors.Is(err, ErrSensorRead) {
				t.Fatalf("exhaustion error should wrap ErrSensorRead, got %v", err)
			}
			sawExhaustion = true
		}
	}
	if !sawExhaustion {
		t.Error("never saw retry exhaustion at 99% failure rate")
	}
}

func TestSensorOnServer(t *testing.T) {
	srv := newTestServer(t)
	srv.SetLoad(0.5, 0.2)
	sensor, err := NewSensor(DefaultSensorParams(), srv.DieTemp, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		if err := srv.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	v, err := sensor.Read()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-srv.DieTemp()) > 2 {
		t.Errorf("sensor read %v far from die %v", v, srv.DieTemp())
	}
}
