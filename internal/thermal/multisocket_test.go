package thermal

import (
	"math"
	"testing"
)

func newDualSocket(t *testing.T) *MultiSocketServer {
	t.Helper()
	s, err := NewMultiSocketServer(DefaultMultiSocketParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMultiSocketParamsValidate(t *testing.T) {
	p := DefaultMultiSocketParams()
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	p.Sockets = 0
	if err := p.Validate(); err == nil {
		t.Error("zero sockets should fail")
	}
	p = DefaultMultiSocketParams()
	p.Base.DieCapacitance = 0
	if err := p.Validate(); err == nil {
		t.Error("bad base params should fail")
	}
}

func TestMultiSocketSetLoadValidation(t *testing.T) {
	s := newDualSocket(t)
	if s.Sockets() != 2 {
		t.Fatalf("sockets = %d", s.Sockets())
	}
	if err := s.SetSocketLoad(-1, 0.5); err == nil {
		t.Error("negative socket should fail")
	}
	if err := s.SetSocketLoad(2, 0.5); err == nil {
		t.Error("socket out of range should fail")
	}
	if err := s.SetSocketLoad(0, 0.5); err != nil {
		t.Error(err)
	}
	if _, err := s.DieTemp(5); err == nil {
		t.Error("DieTemp out of range should fail")
	}
}

func TestAsymmetricLoadAsymmetricTemps(t *testing.T) {
	s := newDualSocket(t)
	if err := s.SetSocketLoad(0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSocketLoad(1, 0.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1800; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	hot, err := s.DieTemp(0)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := s.DieTemp(1)
	if err != nil {
		t.Fatal(err)
	}
	if hot <= idle+10 {
		t.Errorf("loaded socket (%v) should run much hotter than idle (%v)", hot, idle)
	}
	if got := s.MaxDieTemp(); got != hot {
		t.Errorf("MaxDieTemp = %v, want hottest socket %v", got, hot)
	}
}

func TestCrossSocketCoupling(t *testing.T) {
	// An idle socket must warm when its neighbour works: the cross-coupling
	// through the shared case that per-CPU models miss.
	alone := newDualSocket(t)
	if err := alone.SetSocketLoad(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := alone.SetSocketLoad(1, 0); err != nil {
		t.Fatal(err)
	}
	coupled := newDualSocket(t)
	if err := coupled.SetSocketLoad(0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := coupled.SetSocketLoad(1, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1800; i++ {
		if err := alone.Advance(1); err != nil {
			t.Fatal(err)
		}
		if err := coupled.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	idleAlone, err := alone.DieTemp(1)
	if err != nil {
		t.Fatal(err)
	}
	idleCoupled, err := coupled.DieTemp(1)
	if err != nil {
		t.Fatal(err)
	}
	if idleCoupled <= idleAlone+2 {
		t.Errorf("neighbour load should warm the idle socket: %v vs %v", idleCoupled, idleAlone)
	}
	// And the shared case runs warmer too.
	if coupled.CaseTemp() <= alone.CaseTemp() {
		t.Error("case should warm with socket load")
	}
}

func TestBalancedLoadSymmetricTemps(t *testing.T) {
	s := newDualSocket(t)
	if err := s.SetSocketLoad(0, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSocketLoad(1, 0.6); err != nil {
		t.Fatal(err)
	}
	s.SetMemActivity(0.4)
	for i := 0; i < 1800; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	t0, _ := s.DieTemp(0)
	t1, _ := s.DieTemp(1)
	if math.Abs(t0-t1) > 1e-6 {
		t.Errorf("symmetric load, asymmetric temps: %v vs %v", t0, t1)
	}
}

func TestMultiSocketFanAndAmbientControls(t *testing.T) {
	s := newDualSocket(t)
	for i := 0; i < 2; i++ {
		if err := s.SetSocketLoad(i, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1200; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	before := s.MaxDieTemp()
	// Fail half the fans and warm the inlet: both must raise die temps.
	if err := s.Fans().Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Fans().Fail(1); err != nil {
		t.Fatal(err)
	}
	s.SetAmbient(30)
	for i := 0; i < 1200; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	if s.MaxDieTemp() <= before+5 {
		t.Errorf("fan failure + warm inlet should heat dies: %v -> %v", before, s.MaxDieTemp())
	}
}

func TestSingleSocketMatchesOriginalServerShape(t *testing.T) {
	// A 1-socket MultiSocketServer should behave like Server (same physics,
	// modulo throttling which MultiSocketServer doesn't model).
	p := DefaultServerParams()
	p.ThrottleTempC = 0
	single, err := NewMultiSocketServer(MultiSocketParams{Base: p, Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.SetSocketLoad(0, 0.7); err != nil {
		t.Fatal(err)
	}
	single.SetMemActivity(0.3)
	ref.SetLoad(0.7, 0.3)
	for i := 0; i < 1800; i++ {
		if err := single.Advance(1); err != nil {
			t.Fatal(err)
		}
		if err := ref.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := single.DieTemp(0)
	if math.Abs(got-ref.DieTemp()) > 0.5 {
		t.Errorf("1-socket multi (%v) diverges from Server (%v)", got, ref.DieTemp())
	}
}
