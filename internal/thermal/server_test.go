package thermal

import (
	"math"
	"testing"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(DefaultServerParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*ServerParams)
	}{
		{"bad power", func(p *ServerParams) { p.Power.MaxW = -1 }},
		{"zero die C", func(p *ServerParams) { p.DieCapacitance = 0 }},
		{"zero case C", func(p *ServerParams) { p.CaseCapacitance = 0 }},
		{"zero dieToCase", func(p *ServerParams) { p.DieToCaseG = 0 }},
		{"negative fans", func(p *ServerParams) { p.FanCount = -2 }},
		{"zero baseG", func(p *ServerParams) { p.BaseCaseG = 0 }},
		{"negative perFanG", func(p *ServerParams) { p.PerFanG = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultServerParams()
			tt.mutate(&p)
			if _, err := NewServer(p); err == nil {
				t.Error("NewServer accepted invalid params")
			}
		})
	}
}

func TestColdServerStartsAtAmbient(t *testing.T) {
	s := newTestServer(t)
	if s.DieTemp() != s.Params().AmbientC || s.CaseTemp() != s.Params().AmbientC {
		t.Errorf("cold server die %v case %v, want ambient %v",
			s.DieTemp(), s.CaseTemp(), s.Params().AmbientC)
	}
}

func TestIdleServerSettlesWarm(t *testing.T) {
	s := newTestServer(t)
	s.SetLoad(0, 0)
	for i := 0; i < 1800; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	// Idle ≈55 W through ≈0.4 K/W → high 30s to high 40s °C.
	if s.DieTemp() < 35 || s.DieTemp() > 55 {
		t.Errorf("idle die temp = %v °C, want 35–55", s.DieTemp())
	}
	if s.DieTemp() <= s.CaseTemp() {
		t.Error("die must run hotter than case under load")
	}
}

func TestFullLoadHotButBelowThrottleWith4Fans(t *testing.T) {
	s := newTestServer(t)
	s.SetLoad(1, 0.5)
	for i := 0; i < 2400; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	if s.DieTemp() < 75 || s.DieTemp() > 96 {
		t.Errorf("full-load die temp = %v °C, want 75–96 with 4 fans", s.DieTemp())
	}
	if s.Throttled() {
		t.Error("4-fan full load should not throttle")
	}
}

func TestSettlesWithinBreakTime(t *testing.T) {
	// The paper's t_break = 600 s: by then temperature must be within a
	// degree of its final value.
	s := newTestServer(t)
	s.SetLoad(0.7, 0.3)
	for i := 0; i < 600; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	at600 := s.DieTemp()
	for i := 0; i < 2400; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	final := s.DieTemp()
	if math.Abs(final-at600) > 1.0 {
		t.Errorf("temp at 600 s (%v) differs from final (%v) by > 1 °C", at600, final)
	}
}

func TestMoreFansRunCooler(t *testing.T) {
	temps := map[int]float64{}
	for _, fans := range []int{2, 4, 8} {
		p := DefaultServerParams()
		p.FanCount = fans
		s, err := NewServer(p)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLoad(0.8, 0.4)
		st, err := s.SteadyStateDieTemp(0.8, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		temps[fans] = st
	}
	if !(temps[2] > temps[4] && temps[4] > temps[8]) {
		t.Errorf("steady temps not decreasing in fan count: %v", temps)
	}
}

func TestHotterAmbientRaisesTemp(t *testing.T) {
	s := newTestServer(t)
	cool, err := s.SteadyStateDieTemp(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAmbient(32)
	warm, err := s.SteadyStateDieTemp(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// 10 °C ambient rise lifts the die by ~10 °C (slightly more with leakage).
	if diff := warm - cool; diff < 9 || diff > 13 {
		t.Errorf("ambient +10 °C moved die by %v °C, want ≈10", diff)
	}
	if s.Ambient() != 32 {
		t.Errorf("Ambient() = %v, want 32", s.Ambient())
	}
}

func TestFanFailureHeatsServer(t *testing.T) {
	s := newTestServer(t)
	before, err := s.SteadyStateDieTemp(0.8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fans().Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Fans().Fail(1); err != nil {
		t.Fatal(err)
	}
	after, err := s.SteadyStateDieTemp(0.8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before+2 {
		t.Errorf("losing 2 of 4 fans should heat the die: %v -> %v", before, after)
	}
}

func TestTransientApproachesSteadyState(t *testing.T) {
	s := newTestServer(t)
	want, err := s.SteadyStateDieTemp(0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLoad(0.6, 0.2)
	for i := 0; i < 3600; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	if diff := math.Abs(s.DieTemp() - want); diff > 0.2 {
		t.Errorf("transient (%v) vs steady-state solver (%v): diff %v", s.DieTemp(), want, diff)
	}
}

func TestThrottleEngagesWithMinimalCooling(t *testing.T) {
	// With a single fan, an unthrottled full load would settle near 128 °C;
	// the throttle must cap utilization and hold the die near the limit.
	p := DefaultServerParams()
	p.FanCount = 1
	s, err := NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLoad(1, 1)
	throttled := false
	for i := 0; i < 3600; i++ {
		if err := s.Advance(1); err != nil {
			t.Fatal(err)
		}
		throttled = throttled || s.Throttled()
	}
	if !throttled {
		t.Error("single-fan full-load server never throttled")
	}
	// Throttling must hold the die near the limit rather than diverging.
	if s.DieTemp() > p.ThrottleTempC+12 {
		t.Errorf("die ran away to %v °C despite throttle at %v", s.DieTemp(), p.ThrottleTempC)
	}
	if s.EffectiveUtil() >= 1 {
		t.Error("effective utilization should be capped while throttling")
	}
}

func TestLoadClamping(t *testing.T) {
	s := newTestServer(t)
	s.SetLoad(1.7, -0.4)
	u, m := s.Load()
	if u != 1 || m != 0 {
		t.Errorf("Load() = (%v, %v), want clamped (1, 0)", u, m)
	}
}

func TestHigherLoadHigherSteadyTemp(t *testing.T) {
	s := newTestServer(t)
	prev := -1000.0
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1} {
		st, err := s.SteadyStateDieTemp(u, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st <= prev {
			t.Errorf("steady temp not increasing at u=%v: %v <= %v", u, st, prev)
		}
		prev = st
	}
}
