// Package thermal simulates server thermals with lumped resistor–capacitor
// (RC) networks. It stands in for the physical testbed of Wu et al. (ICDCS
// 2016): a CPU die heated by a utilization-driven power model, cooled through
// a heatsink/case node by a bank of fans into rack ambient air, observed by a
// noisy quantized temperature sensor.
//
// The RC abstraction is the same one the thermal-management literature uses
// as ground truth (the paper's references [4] and [5] are both built on it),
// so the phenomena the predictors must learn — first-order saturation
// transients, steady states shaped by load, fan count and ambient — are
// faithfully present. Predictors only ever see sensor readings, never the
// network state, so the learning problem matches the paper's.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Network is a lumped-parameter thermal circuit. Internal nodes have heat
// capacitance and evolve over time; boundary nodes hold a fixed temperature
// (e.g. ambient air). Edges are thermal conductances in W/K.
//
// Integration uses explicit Euler with automatic sub-stepping chosen from
// the fastest node time constant, which keeps the scheme stable for any
// parameterization the repository constructs.
type Network struct {
	names       map[string]int
	capacitance []float64 // J/K; 0 marks a boundary node
	temp        []float64 // °C
	boundary    []bool
	edges       []edge
	// flux is the per-step heat-flow scratch, reused across Step calls so
	// integrating a fleet of networks every tick allocates nothing.
	flux []float64
	// stableStep caches maxStableStep; topology and conductance changes
	// invalidate it (0 = dirty). Every simulated second recomputing it from
	// scratch used to rival the integration itself.
	stableStep float64
}

type edge struct {
	a, b int
	g    float64 // W/K
}

// NewNetwork returns an empty thermal network.
func NewNetwork() *Network {
	return &Network{names: make(map[string]int)}
}

// AddNode adds an internal node with the given heat capacitance (J/K) and
// initial temperature (°C). It returns the node id.
func (n *Network) AddNode(name string, capacitance, initialTemp float64) (int, error) {
	if capacitance <= 0 {
		return 0, fmt.Errorf("thermal: node %q capacitance must be > 0, got %v", name, capacitance)
	}
	return n.add(name, capacitance, initialTemp, false)
}

// AddBoundary adds a fixed-temperature boundary node (infinite capacitance).
func (n *Network) AddBoundary(name string, temp float64) (int, error) {
	return n.add(name, 0, temp, true)
}

func (n *Network) add(name string, c, t float64, boundary bool) (int, error) {
	if _, ok := n.names[name]; ok {
		return 0, fmt.Errorf("thermal: duplicate node %q", name)
	}
	id := len(n.temp)
	n.names[name] = id
	n.capacitance = append(n.capacitance, c)
	n.temp = append(n.temp, t)
	n.boundary = append(n.boundary, boundary)
	n.flux = append(n.flux, 0)
	n.stableStep = 0
	return id, nil
}

// Connect links two nodes with a thermal conductance g (W/K) and returns the
// edge index, which can be used with SetConductance to model fan speed
// changes.
func (n *Network) Connect(a, b int, g float64) (int, error) {
	if a < 0 || a >= len(n.temp) || b < 0 || b >= len(n.temp) {
		return 0, errors.New("thermal: connect with unknown node id")
	}
	if a == b {
		return 0, errors.New("thermal: self edge")
	}
	if g <= 0 {
		return 0, fmt.Errorf("thermal: conductance must be > 0, got %v", g)
	}
	n.edges = append(n.edges, edge{a: a, b: b, g: g})
	n.stableStep = 0
	return len(n.edges) - 1, nil
}

// SetConductance updates edge e's conductance, e.g. when fans spin up/down.
func (n *Network) SetConductance(e int, g float64) error {
	if e < 0 || e >= len(n.edges) {
		return errors.New("thermal: unknown edge")
	}
	if g <= 0 {
		return fmt.Errorf("thermal: conductance must be > 0, got %v", g)
	}
	if n.edges[e].g == g {
		return nil // unchanged: keep the cached stable step
	}
	n.edges[e].g = g
	n.stableStep = 0
	return nil
}

// SetBoundaryTemp changes a boundary node's fixed temperature (e.g. the rack
// inlet air warming up).
func (n *Network) SetBoundaryTemp(id int, temp float64) error {
	if id < 0 || id >= len(n.temp) || !n.boundary[id] {
		return errors.New("thermal: not a boundary node")
	}
	n.temp[id] = temp
	return nil
}

// Temp returns the current temperature of a node.
func (n *Network) Temp(id int) float64 { return n.temp[id] }

// NodeID looks a node up by name.
func (n *Network) NodeID(name string) (int, error) {
	id, ok := n.names[name]
	if !ok {
		return 0, fmt.Errorf("thermal: no node %q", name)
	}
	return id, nil
}

// Step advances the network by dt seconds with the given heat injections
// (W per internal node id). Sub-steps are chosen so that no node integrates
// with a step above a quarter of its local time constant.
func (n *Network) Step(dt float64, injections map[int]float64) error {
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive dt %v", dt)
	}
	for id := range injections {
		if id < 0 || id >= len(n.temp) {
			return fmt.Errorf("thermal: injection into unknown node %d", id)
		}
		if n.boundary[id] {
			return fmt.Errorf("thermal: injection into boundary node %d", id)
		}
	}
	n.integrate(dt, 0, 0, injections)
	return nil
}

// StepOne advances the network by dt seconds with a single heat injection —
// the common server shape (all heat enters at the die) — without the map
// traffic of Step. It allocates nothing.
func (n *Network) StepOne(dt float64, node int, watts float64) error {
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive dt %v", dt)
	}
	if node < 0 || node >= len(n.temp) {
		return fmt.Errorf("thermal: injection into unknown node %d", node)
	}
	if n.boundary[node] {
		return fmt.Errorf("thermal: injection into boundary node %d", node)
	}
	n.integrate(dt, node, watts, nil)
	return nil
}

// integrate runs the explicit-Euler sub-step loop. External heat comes from
// injections when non-nil, otherwise from the single (node, watts) pair —
// keeping the one-injection fast path free of closures and map traffic.
func (n *Network) integrate(dt float64, node int, watts float64, injections map[int]float64) {
	sub := n.maxStableStep()
	steps := int(math.Ceil(dt / sub))
	if steps < 1 {
		steps = 1
	}
	h := dt / float64(steps)
	flux := n.flux
	for s := 0; s < steps; s++ {
		for i := range flux {
			flux[i] = 0
		}
		for _, e := range n.edges {
			q := e.g * (n.temp[e.a] - n.temp[e.b]) // W from a to b
			flux[e.a] -= q
			flux[e.b] += q
		}
		if injections != nil {
			for id, w := range injections {
				flux[id] += w
			}
		} else {
			flux[node] += watts
		}
		for i := range n.temp {
			if n.boundary[i] {
				continue
			}
			n.temp[i] += h * flux[i] / n.capacitance[i]
		}
	}
}

// maxStableStep returns a conservative explicit-Euler step: a quarter of the
// smallest C/Gtotal among internal nodes. The value is cached; node and
// conductance changes invalidate it.
func (n *Network) maxStableStep() float64 {
	if n.stableStep > 0 {
		return n.stableStep
	}
	gTotal := n.flux // borrow the scratch; Step zeroes it before use anyway
	for i := range gTotal {
		gTotal[i] = 0
	}
	for _, e := range n.edges {
		gTotal[e.a] += e.g
		gTotal[e.b] += e.g
	}
	minTau := math.Inf(1)
	for i, c := range n.capacitance {
		if n.boundary[i] || gTotal[i] == 0 {
			continue
		}
		tau := c / gTotal[i]
		if tau < minTau {
			minTau = tau
		}
	}
	if math.IsInf(minTau, 1) {
		n.stableStep = 1 // isolated nodes: any step is fine
	} else {
		n.stableStep = math.Max(minTau/4, 1e-3)
	}
	return n.stableStep
}

// SteadyState solves the network's equilibrium temperatures for constant
// heat injections by Gauss–Seidel iteration. Used by analytic baselines and
// by tests validating the integrator.
func (n *Network) SteadyState(injections map[int]float64) ([]float64, error) {
	t := make([]float64, len(n.temp))
	copy(t, n.temp)
	adj := make([][]edge, len(n.temp))
	for _, e := range n.edges {
		adj[e.a] = append(adj[e.a], e)
		adj[e.b] = append(adj[e.b], edge{a: e.b, b: e.a, g: e.g})
	}
	for iter := 0; iter < 100000; iter++ {
		var maxDelta float64
		for i := range t {
			if n.boundary[i] {
				continue
			}
			var gSum, rhs float64
			for _, e := range adj[i] {
				gSum += e.g
				rhs += e.g * t[e.b]
			}
			if gSum == 0 {
				return nil, fmt.Errorf("thermal: node %d has no path to a boundary", i)
			}
			rhs += injections[i]
			next := rhs / gSum
			if d := math.Abs(next - t[i]); d > maxDelta {
				maxDelta = d
			}
			t[i] = next
		}
		if maxDelta < 1e-10 {
			return t, nil
		}
	}
	return nil, errors.New("thermal: steady state did not converge")
}
