package thermal

import (
	"math"
	"testing"
)

func TestPowerModelValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*PowerModel)
		wantErr bool
	}{
		{"default ok", func(*PowerModel) {}, false},
		{"negative idle", func(p *PowerModel) { p.IdleW = -1 }, true},
		{"max below idle", func(p *PowerModel) { p.MaxW = p.IdleW - 1 }, true},
		{"zero max", func(p *PowerModel) { p.MaxW = 0 }, true},
		{"negative mem", func(p *PowerModel) { p.MemMaxW = -1 }, true},
		{"negative leak", func(p *PowerModel) { p.LeakWPerK = -0.1 }, true},
		{"zero exponent", func(p *PowerModel) { p.UtilExponent = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultPowerModel()
			tt.mutate(&p)
			err := p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPowerEndpoints(t *testing.T) {
	p := DefaultPowerModel()
	p.LeakWPerK = 0
	if got := p.Power(0, 0, 30); got != p.IdleW {
		t.Errorf("idle power = %v, want %v", got, p.IdleW)
	}
	if got := p.Power(1, 0, 30); math.Abs(got-p.MaxW) > 1e-9 {
		t.Errorf("full power = %v, want %v", got, p.MaxW)
	}
	if got := p.Power(1, 1, 30); math.Abs(got-(p.MaxW+p.MemMaxW)) > 1e-9 {
		t.Errorf("full+mem power = %v, want %v", got, p.MaxW+p.MemMaxW)
	}
}

func TestPowerMonotoneInUtil(t *testing.T) {
	p := DefaultPowerModel()
	prev := p.Power(0, 0, 40)
	for u := 0.05; u <= 1.0; u += 0.05 {
		cur := p.Power(u, 0, 40)
		if cur < prev {
			t.Fatalf("power not monotone at u=%v: %v < %v", u, cur, prev)
		}
		prev = cur
	}
}

func TestPowerClampsInputs(t *testing.T) {
	p := DefaultPowerModel()
	if p.Power(-1, 0, 40) != p.Power(0, 0, 40) {
		t.Error("util below 0 not clamped")
	}
	if p.Power(2, 0.5, 40) != p.Power(1, 0.5, 40) {
		t.Error("util above 1 not clamped")
	}
	if p.Power(0.5, -3, 40) != p.Power(0.5, 0, 40) {
		t.Error("mem below 0 not clamped")
	}
}

func TestLeakageAddsAboveReference(t *testing.T) {
	p := DefaultPowerModel()
	below := p.Power(0.5, 0, p.LeakRefC-10)
	at := p.Power(0.5, 0, p.LeakRefC)
	above := p.Power(0.5, 0, p.LeakRefC+10)
	if below != at {
		t.Error("leakage applied below reference temperature")
	}
	if want := at + 10*p.LeakWPerK; math.Abs(above-want) > 1e-9 {
		t.Errorf("leakage at +10K = %v, want %v", above, want)
	}
}

func TestSuperlinearUtilCurve(t *testing.T) {
	p := DefaultPowerModel() // exponent 1.25 > 1
	mid := p.Power(0.5, 0, 30) - p.IdleW
	full := p.Power(1, 0, 30) - p.IdleW
	if mid >= full/2 {
		t.Errorf("superlinear curve expected: mid %v vs full/2 %v", mid, full/2)
	}
}
