package mathx

import (
	"math"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	// y = 3 + 2x, exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(fit.Intercept, 3, 1e-9) || !AlmostEqual(fit.Slope, 2, 1e-9) {
		t.Errorf("fit = %+v, want intercept 3 slope 2", fit)
	}
	if !AlmostEqual(fit.At(10), 23, 1e-9) {
		t.Errorf("At(10) = %v, want 23", fit.At(10))
	}
}

func TestFitLinearNoisy(t *testing.T) {
	g := NewRNG(1)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := g.Uniform(0, 10)
		xs = append(xs, x)
		ys = append(ys, 5-1.5*x+g.Normal(0, 0.1))
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-5) > 0.1 || math.Abs(fit.Slope+1.5) > 0.05 {
		t.Errorf("noisy fit = %+v, want ~(5, -1.5)", fit)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for constant x")
	}
}

func TestFitMultiLinearExact(t *testing.T) {
	// y = 1 + 2a - 3b
	features := [][]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}, {4, 1},
	}
	ys := make([]float64, len(features))
	for i, f := range features {
		ys[i] = 1 + 2*f[0] - 3*f[1]
	}
	fit, err := FitMultiLinear(features, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -3}
	for i, c := range want {
		if !AlmostEqual(fit.Coef[i], c, 1e-8) {
			t.Errorf("Coef[%d] = %v, want %v", i, fit.Coef[i], c)
		}
	}
	if got := fit.At([]float64{5, 5}); !AlmostEqual(got, 1+10-15, 1e-8) {
		t.Errorf("At = %v", got)
	}
}

func TestFitMultiLinearErrors(t *testing.T) {
	if _, err := FitMultiLinear(nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := FitMultiLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := FitMultiLinear([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged rows")
	}
	if _, err := FitMultiLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
	// Collinear features -> singular normal equations.
	if _, err := FitMultiLinear([][]float64{{1, 2}, {2, 4}, {3, 6}}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for singular system")
	}
}

func TestSolveGaussianKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := solveGaussian(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !AlmostEqual(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestFitRidgeHandlesCollinearity(t *testing.T) {
	// Feature 2 = 2 × feature 1: singular for OLS, fine for ridge.
	features := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	ys := []float64{3, 6, 9, 12} // y = 3*x1
	if _, err := FitMultiLinear(features, ys); err == nil {
		t.Fatal("OLS should reject collinear features")
	}
	fit, err := FitRidge(features, ys, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range features {
		if got, want := fit.At(x), 3*x[0]; math.Abs(got-want) > 1e-3 {
			t.Errorf("ridge At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestFitRidgeMatchesOLSWhenWellPosed(t *testing.T) {
	features := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}}
	ys := make([]float64, len(features))
	for i, f := range features {
		ys[i] = 2 + f[0] - 0.5*f[1]
	}
	ols, err := FitMultiLinear(append([][]float64{}, features...), append([]float64{}, ys...))
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := FitRidge(features, ys, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ols.Coef {
		if math.Abs(ols.Coef[i]-ridge.Coef[i]) > 1e-5 {
			t.Errorf("coef %d: ols %v vs ridge %v", i, ols.Coef[i], ridge.Coef[i])
		}
	}
}

func TestFitRidgeValidation(t *testing.T) {
	if _, err := FitRidge(nil, nil, 1e-6); err == nil {
		t.Error("empty should fail")
	}
	if _, err := FitRidge([][]float64{{1}}, []float64{1, 2}, 1e-6); err == nil {
		t.Error("mismatch should fail")
	}
	if _, err := FitRidge([][]float64{{1}}, []float64{1}, 0); err == nil {
		t.Error("zero lambda should fail")
	}
	if _, err := FitRidge([][]float64{{1, 2}, {1}}, []float64{1, 2}, 1e-6); err == nil {
		t.Error("ragged rows should fail")
	}
}
