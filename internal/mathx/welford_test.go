package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	w.AddAll(xs)
	if got, want := w.Mean(), MustMean(xs); !AlmostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := w.Variance(), Variance(xs); !AlmostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 {
		t.Errorf("Mean = %v", w.Mean())
	}
	if w.Variance() != 0 {
		t.Errorf("Variance of 1 sample = %v, want 0", w.Variance())
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var full, left, right Welford
	full.AddAll(xs)
	left.AddAll(xs[:3])
	right.AddAll(xs[3:])
	left.Merge(right)
	if !AlmostEqual(left.Mean(), full.Mean(), 1e-12) {
		t.Errorf("merged mean = %v, want %v", left.Mean(), full.Mean())
	}
	if !AlmostEqual(left.Variance(), full.Variance(), 1e-12) {
		t.Errorf("merged variance = %v, want %v", left.Variance(), full.Variance())
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	a.AddAll([]float64{1, 2, 3})
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b != a {
		t.Error("merge into empty should copy")
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.AddAll([]float64{5, 6})
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Error("Reset did not clear state")
	}
}

// Property: streaming result equals batch result for random inputs.
func TestWelfordStreamingEqualsBatchProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e8 {
				clean = append(clean, v)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		w.AddAll(clean)
		scale := math.Max(1, math.Abs(Variance(clean)))
		return math.Abs(w.Variance()-Variance(clean))/scale < 1e-8 &&
			math.Abs(w.Mean()-MustMean(clean)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
