package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Float64(), b.Float64(); got != want {
			t.Fatalf("sequence diverged at step %d: %v != %v", i, got, want)
		}
	}
}

func TestNewRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitStableIndependentOfConsumption(t *testing.T) {
	// A stable split must not depend on how much of any parent stream was used.
	a := SplitStable(7, "sensor")
	parent := NewRNG(7)
	parent.Float64()
	parent.Float64()
	b := SplitStable(7, "sensor")
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("SplitStable stream depends on external state")
		}
	}
}

func TestSplitStableLabelsDiffer(t *testing.T) {
	a := SplitStable(7, "alpha")
	b := SplitStable(7, "beta")
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different labels produced identical streams")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := NewRNG(9).Split("x")
	b := NewRNG(9).Split("x")
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split not deterministic for equal parent state")
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(-2, 5)
		if x < -2 || x >= 5 {
			t.Fatalf("Uniform(-2,5) out of range: %v", x)
		}
	}
}

func TestIntBetweenInclusive(t *testing.T) {
	g := NewRNG(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := g.IntBetween(2, 12)
		if v < 2 || v > 12 {
			t.Fatalf("IntBetween(2,12) out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 12; v++ {
		if !seen[v] {
			t.Errorf("IntBetween never produced %d in 1000 draws", v)
		}
	}
}

func TestIntBetweenPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	NewRNG(1).IntBetween(5, 4)
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(5)
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(g.Normal(10, 2))
	}
	if math.Abs(w.Mean()-10) > 0.1 {
		t.Errorf("Normal mean = %v, want ~10", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 0.1 {
		t.Errorf("Normal std = %v, want ~2", w.StdDev())
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	g := NewRNG(6)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.Choice([]float64{1, 2, 7})]++
	}
	total := float64(30000)
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Choice freq[%d] = %v, want ~%v", i, got, want)
		}
	}
}

func TestChoiceZeroWeightNeverChosen(t *testing.T) {
	g := NewRNG(8)
	for i := 0; i < 1000; i++ {
		if g.Choice([]float64{0, 1, 0}) != 1 {
			t.Fatal("Choice selected a zero-weight index")
		}
	}
}

func TestChoicePanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"all zero": {0, 0},
		"negative": {1, -1},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewRNG(1).Choice(weights)
		})
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		p := NewRNG(seed).Perm(17)
		seen := make([]bool, 17)
		for _, v := range p {
			if v < 0 || v >= 17 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(11)
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(g.Exp(3))
	}
	if math.Abs(w.Mean()-3) > 0.1 {
		t.Errorf("Exp mean = %v, want ~3", w.Mean())
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(12)
	n := 0
	for i := 0; i < 20000; i++ {
		if g.Bool(0.25) {
			n++
		}
	}
	got := float64(n) / 20000
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("Bool(0.25) frequency = %v", got)
	}
}
