package mathx

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("mathx: empty input")

// ErrLengthMismatch is returned when paired inputs differ in length.
var ErrLengthMismatch = errors.New("mathx: length mismatch")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or an error if xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// MustMean is Mean for callers that have already validated non-emptiness.
// It panics on empty input.
func MustMean(xs []float64) float64 {
	m, err := Mean(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 for slices of length < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := MustMean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MSE returns the mean squared error between predicted and actual values.
func MSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range pred {
		d := pred[i] - actual[i]
		ss += d * d
	}
	return ss / float64(len(pred)), nil
}

// RMSE returns the root mean squared error between predicted and actual.
func RMSE(pred, actual []float64) (float64, error) {
	mse, err := MSE(pred, actual)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(mse), nil
}

// MAE returns the mean absolute error between predicted and actual.
func MAE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - actual[i])
	}
	return s / float64(len(pred)), nil
}

// R2 returns the coefficient of determination of pred against actual.
// A perfect predictor scores 1; predicting the mean scores 0. If actual has
// zero variance, R2 returns an error because the score is undefined.
func R2(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	m := MustMean(actual)
	var ssRes, ssTot float64
	for i := range actual {
		r := actual[i] - pred[i]
		d := actual[i] - m
		ssRes += r * r
		ssTot += d * d
	}
	if ssTot == 0 {
		return 0, errors.New("mathx: R2 undefined for constant actuals")
	}
	return 1 - ssRes/ssTot, nil
}

// MinMax returns the minimum and maximum of xs, or an error if xs is empty.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("mathx: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// AlmostEqual reports whether a and b differ by at most tol.
func AlmostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
