package mathx

import "math"

// Welford accumulates mean and variance in a single numerically-stable pass.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the running statistics.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddAll incorporates every value of xs.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 before any samples.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}

// Reset clears the accumulator back to its zero state.
func (w *Welford) Reset() { *w = Welford{} }
