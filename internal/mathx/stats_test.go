package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negative", []float64{-1, 1}, 0},
		{"fractional", []float64{1, 2, 2}, 5.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if !AlmostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMustMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustMean(nil)
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic dataset is 32/7.
	if got, want := Variance(xs), 32.0/7; !AlmostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Error("Variance of <2 samples should be 0")
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := (0.0 + 1 + 4) / 3; !AlmostEqual(got, want, 1e-12) {
		t.Errorf("MSE = %v, want %v", got, want)
	}
}

func TestMSEErrors(t *testing.T) {
	if _, err := MSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := MSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestRMSEIsSqrtMSE(t *testing.T) {
	pred := []float64{1, 2, 3, 4}
	act := []float64{2, 2, 5, 3}
	mse, _ := MSE(pred, act)
	rmse, _ := RMSE(pred, act)
	if !AlmostEqual(rmse*rmse, mse, 1e-12) {
		t.Errorf("RMSE² = %v, MSE = %v", rmse*rmse, mse)
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, -2}, []float64{-1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.0; got != want {
		t.Errorf("MAE = %v, want %v", got, want)
	}
}

func TestR2Perfect(t *testing.T) {
	ys := []float64{1, 2, 3, 4}
	r2, err := R2(ys, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(r2, 1, 1e-12) {
		t.Errorf("R2 of perfect prediction = %v", r2)
	}
}

func TestR2MeanPredictorIsZero(t *testing.T) {
	actual := []float64{2, 4, 6, 8}
	pred := []float64{5, 5, 5, 5}
	r2, err := R2(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(r2, 0, 1e-12) {
		t.Errorf("R2 of mean predictor = %v, want 0", r2)
	}
}

func TestR2ConstantActualUndefined(t *testing.T) {
	if _, err := R2([]float64{1, 2}, []float64{3, 3}); err == nil {
		t.Error("expected error for constant actuals")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !AlmostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileOutOfRange(t *testing.T) {
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("expected error for p > 100")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("expected error for p < 0")
	}
}

func TestMedianOddEven(t *testing.T) {
	m, _ := Median([]float64{5, 1, 3})
	if m != 3 {
		t.Errorf("odd median = %v", m)
	}
	m, _ = Median([]float64{4, 1, 3, 2})
	if m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

// Property: MSE is non-negative and zero iff pred == actual.
func TestMSENonNegativeProperty(t *testing.T) {
	f := func(pairs []float64) bool {
		if len(pairs) < 2 {
			return true
		}
		n := len(pairs) / 2
		pred, actual := pairs[:n], pairs[n:2*n]
		for _, v := range append(pred, actual...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		mse, err := MSE(pred, actual)
		if err != nil {
			return false
		}
		return mse >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant.
func TestVarianceTranslationInvariant(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		if len(xs) < 2 || math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.Abs(shift) > 1e6 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + shift
		}
		a, b := Variance(xs), Variance(shifted)
		scale := math.Max(1, math.Abs(a))
		return math.Abs(a-b)/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
