// Package mathx provides deterministic randomness plumbing and the summary
// statistics used throughout vmtherm: error metrics (MSE, MAE, RMSE, R²),
// online moments, percentiles, and small least-squares fits.
//
// Every stochastic component in the repository draws from an explicit *RNG
// seeded by the caller; there is no package-level random state. This keeps
// experiments reproducible bit-for-bit, which the test suite asserts.
package mathx

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a seeded random source with convenience helpers for the
// distributions used by the simulator and workload generators.
//
// RNG is not safe for concurrent use; derive independent children with
// Split for use across goroutines.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child RNG from the parent seed and a label.
// Children with distinct labels produce uncorrelated streams, and the same
// (seed, label) pair always produces the same stream. The parent's own
// sequence is not consumed.
func (g *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	// Mix the label hash with a value drawn from a throwaway source seeded by
	// the parent state; using Int63 on the parent would consume its sequence.
	return NewRNG(int64(h.Sum64()) ^ g.r.Int63())
}

// SplitStable derives a child RNG from only the label, independent of how
// much of the parent stream has been consumed. Use it when child creation
// order must not affect determinism.
func SplitStable(seed int64, label string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return NewRNG(seed ^ int64(h.Sum64()))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// IntBetween returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (g *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("mathx: IntBetween bounds inverted")
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponentially distributed sample with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Choice returns a uniformly chosen index weighted by weights. Weights must
// be non-negative and not all zero.
func (g *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("mathx: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("mathx: all weights zero")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
