package mathx

import "errors"

// LinearFit holds an ordinary-least-squares fit y = Intercept + Slope*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
}

// FitLinear performs ordinary least squares on the paired samples (xs, ys).
// It requires at least two distinct x values.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("mathx: need at least 2 points for linear fit")
	}
	mx := MustMean(xs)
	my := MustMean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("mathx: degenerate x values for linear fit")
	}
	slope := sxy / sxx
	return LinearFit{Intercept: my - slope*mx, Slope: slope}, nil
}

// At evaluates the fit at x.
func (f LinearFit) At(x float64) float64 { return f.Intercept + f.Slope*x }

// MultiLinearFit holds a multivariate least-squares fit
// y = Coef[0] + Coef[1]*x1 + ... + Coef[d]*xd.
type MultiLinearFit struct {
	Coef []float64
}

// FitMultiLinear solves the normal equations (XᵀX)β = Xᵀy with an intercept
// column, using Gaussian elimination with partial pivoting. It is used by the
// regression baselines; dimensionality is small (≤ ~16) so the O(d³) solve is
// negligible.
func FitMultiLinear(features [][]float64, ys []float64) (MultiLinearFit, error) {
	n := len(features)
	if n == 0 {
		return MultiLinearFit{}, ErrEmpty
	}
	if n != len(ys) {
		return MultiLinearFit{}, ErrLengthMismatch
	}
	d := len(features[0]) + 1 // +1 intercept
	for _, row := range features {
		if len(row)+1 != d {
			return MultiLinearFit{}, errors.New("mathx: ragged feature rows")
		}
	}
	if n < d {
		return MultiLinearFit{}, errors.New("mathx: underdetermined system")
	}

	// Build XᵀX (d×d) and Xᵀy (d).
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		row[0] = 1
		copy(row[1:], features[i])
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * ys[i]
		}
	}

	coef, err := solveGaussian(xtx, xty)
	if err != nil {
		return MultiLinearFit{}, err
	}
	return MultiLinearFit{Coef: coef}, nil
}

// At evaluates the multivariate fit on a feature vector.
func (f MultiLinearFit) At(x []float64) float64 {
	y := f.Coef[0]
	for i, v := range x {
		if i+1 < len(f.Coef) {
			y += f.Coef[i+1] * v
		}
	}
	return y
}

// FitRidge solves the Tikhonov-regularized normal equations
// (XᵀX + λI)β = Xᵀy with an unpenalized intercept. Regularization makes the
// solve well-posed under exact collinearity (e.g. one-hot fractions that sum
// to 1, or constant columns), which plain least squares rejects as singular.
func FitRidge(features [][]float64, ys []float64, lambda float64) (MultiLinearFit, error) {
	n := len(features)
	if n == 0 {
		return MultiLinearFit{}, ErrEmpty
	}
	if n != len(ys) {
		return MultiLinearFit{}, ErrLengthMismatch
	}
	if lambda <= 0 {
		return MultiLinearFit{}, errors.New("mathx: ridge lambda must be > 0")
	}
	d := len(features[0]) + 1
	for _, row := range features {
		if len(row)+1 != d {
			return MultiLinearFit{}, errors.New("mathx: ragged feature rows")
		}
	}

	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		row[0] = 1
		copy(row[1:], features[i])
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * ys[i]
		}
	}
	// Penalize every coefficient except the intercept.
	for a := 1; a < d; a++ {
		xtx[a][a] += lambda
	}
	coef, err := solveGaussian(xtx, xty)
	if err != nil {
		return MultiLinearFit{}, err
	}
	return MultiLinearFit{Coef: coef}, nil
}

// solveGaussian solves A·x = b in place with partial pivoting.
func solveGaussian(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-12 {
			return nil, errors.New("mathx: singular system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
