package predictclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"vmtherm/internal/fleet"
	"vmtherm/internal/predictserver"
)

// fleetTestServer stands up a predict service with an attached control
// plane whose single overloaded host is already flagged.
func fleetTestServer(t *testing.T) *Client {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Racks = 1
	cfg.HostsPerRack = 4
	cfg.ThresholdC = 70
	cfg.MaxMigrationsPerRound = 0
	cfg.Seed = 29
	ctl, err := fleet.New(cfg, fleet.SyntheticStablePredictor(75))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if err := ctl.PlaceAt("r0-h0", fleet.HeavyVMSpec(fmt.Sprintf("hot-%02d", v), 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 40 && len(ctl.Hotspots().Hotspots) == 0; round++ {
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if len(ctl.Hotspots().Hotspots) == 0 {
		t.Fatal("fleet never produced a hotspot")
	}

	client, _ := testServerWithFleet(t, ctl)
	return client
}

func testServerWithFleet(t *testing.T, ctl *fleet.Controller) (*Client, *predictserver.Server) {
	t.Helper()
	// Reuse the shared trained model from testServer's once-guard by
	// building it the same way.
	_, _ = testServer(t)
	srv, err := predictserver.New(model, predictserver.WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return client, srv
}

func TestFleetHotspotsRoundTrip(t *testing.T) {
	client := fleetTestServer(t)
	snap, err := client.FleetHotspots(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round == 0 || len(snap.Hotspots) == 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
	if snap.Hotspots[0].HostID != "r0-h0" {
		t.Fatalf("hottest host %q, want r0-h0", snap.Hotspots[0].HostID)
	}
	if snap.GapS <= 0 || snap.ThresholdC <= 0 {
		t.Fatalf("snapshot missing parameters: %+v", snap)
	}
}

func TestFleetPlaceRoundTrip(t *testing.T) {
	client := fleetTestServer(t)
	dec, err := client.FleetPlace(context.Background(), predictserver.FleetPlaceRequest{
		ID: "tenant-9", VCPUs: 2, MemoryGB: 4,
		Tasks: []predictserver.FleetTaskSpec{{CPUFraction: 0.7, MemGB: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != "placed" || dec.HostID == "" || dec.HostID == "r0-h0" {
		t.Fatalf("placed on %q (status %q)", dec.HostID, dec.Status)
	}

	// A shape that can never fit → typed PlaceError (422, infeasible) that
	// still unwraps to the plain APIError.
	_, err = client.FleetPlace(context.Background(), predictserver.FleetPlaceRequest{
		ID: "huge", VCPUs: 4096, MemoryGB: 4096,
	})
	var placeErr *PlaceError
	if !errors.As(err, &placeErr) || placeErr.Code != fleet.RejectInfeasible {
		t.Fatalf("impossible placement: got %v, want PlaceError{infeasible}", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("PlaceError does not unwrap to a 422 APIError: %v", err)
	}
	// A duplicate id → 409 duplicate-id.
	_, err = client.FleetPlace(context.Background(), predictserver.FleetPlaceRequest{
		ID: "tenant-9", VCPUs: 2, MemoryGB: 4,
	})
	if !errors.As(err, &placeErr) || placeErr.Code != fleet.RejectDuplicateID ||
		placeErr.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate placement: got %v, want PlaceError{duplicate-id, 409}", err)
	}
}

// TestFleetPlaceBatchRoundTrip drives the batch endpoint end to end: a
// Count-expanded storm comes back as per-item typed decisions in request
// order, and every rejection carries a RejectCode.
func TestFleetPlaceBatchRoundTrip(t *testing.T) {
	client := fleetTestServer(t)
	resp, err := client.FleetPlaceBatch(context.Background(), []predictserver.FleetPlaceRequest{
		{ID: "batch-a", VCPUs: 1, MemoryGB: 2, Count: 3,
			Tasks: []predictserver.FleetTaskSpec{{CPUFraction: 0.4, MemGB: 0.5}}},
		{ID: "batch-huge", VCPUs: 4096, MemoryGB: 4096},
		{ID: "batch-b", VCPUs: 1, MemoryGB: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("got %d results, want 5 (count expansion)", len(resp.Results))
	}
	wantIDs := []string{"batch-a-000", "batch-a-001", "batch-a-002", "batch-huge", "batch-b"}
	for i, r := range resp.Results {
		if r.VMID != wantIDs[i] {
			t.Fatalf("result %d vm_id %q, want %q", i, r.VMID, wantIDs[i])
		}
		if r.Status == "rejected" && r.RejectCode == "" {
			t.Fatalf("stringly-typed rejection: %+v", r)
		}
	}
	if resp.Results[3].Status != "rejected" || resp.Results[3].RejectCode != "infeasible" {
		t.Fatalf("huge replica decision = %+v", resp.Results[3])
	}
	if resp.Placed != 4 || resp.Rejected != 1 || resp.Queued != 0 {
		t.Fatalf("totals placed/queued/rejected = %d/%d/%d, want 4/0/1",
			resp.Placed, resp.Queued, resp.Rejected)
	}
}

func TestFleetEndpointsWithoutFleet(t *testing.T) {
	client, _ := testServer(t)
	_, err := client.FleetHotspots(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hotspots without fleet: got %v, want 503 APIError", err)
	}
}

// TestFleetIngestAndMetrics: the agent-facing push path plus the typed
// metrics view — readings pushed through the client surface in the served
// exposition.
func TestFleetIngestAndMetrics(t *testing.T) {
	client := fleetTestServer(t)
	ctx := context.Background()

	resp, err := client.FleetIngest(ctx, []predictserver.FleetReading{
		{HostID: "r0-h0", AtS: 1, TempC: 44, Util: 0.5},
		{HostID: "r0-h3", AtS: 1, TempC: 39},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Dropped != 0 {
		t.Fatalf("ingest response = %+v", resp)
	}

	points, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, p := range points {
		if len(p.Labels) == 0 {
			byName[p.Name] = p.Value
		}
		if p.Name == "vmtherm_items_total" && p.Label("kind") == "ingest" {
			byName["ingest_items"] = p.Value
		}
	}
	if byName["ingest_items"] != 2 {
		t.Fatalf("ingest items = %v, want 2", byName["ingest_items"])
	}
	if _, ok := byName["vmtherm_ingest_received_total"]; !ok {
		t.Fatal("fleet-attached server missing ingest counters")
	}
	if _, ok := byName["vmtherm_fleet_round"]; !ok {
		t.Fatal("metrics missing fleet round gauge")
	}
}

// TestFleetIngestPredictRoundTrip: the synchronous-predictive push — one
// round-trip carries the reading in and the fresh prediction back, and the
// 409 against a round-based server is a typed APIError.
func TestFleetIngestPredictRoundTrip(t *testing.T) {
	cfg := fleet.DefaultConfig()
	cfg.Racks = 1
	cfg.HostsPerRack = 4
	cfg.ThresholdC = 70
	cfg.MaxMigrationsPerRound = 0
	cfg.StreamingIngest = true
	cfg.Seed = 29
	ctl, err := fleet.New(cfg, fleet.SyntheticStablePredictor(75))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	client, _ := testServerWithFleet(t, ctl)
	ctx := context.Background()

	// Past the calibration schedule so the arrival calibrates first.
	at := ctl.Hotspots().SimTimeS + cfg.UpdateEveryS + 1
	resp, err := client.FleetIngestPredict(ctx, []predictserver.FleetReading{
		{HostID: "r0-h1", AtS: at, TempC: 55, Util: 0.6, MemFrac: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Streamed != 1 {
		t.Fatalf("predictive ingest accounting = %+v", resp)
	}
	if len(resp.Predictions) != 1 {
		t.Fatalf("got %d predictions, want 1", len(resp.Predictions))
	}
	p := resp.Predictions[0]
	if p.HostID != "r0-h1" || p.Outcome != "streamed" || p.PredictedTempC <= 0 {
		t.Fatalf("prediction = %+v", p)
	}

	// Against a round-based server the same call is a 409.
	plain := fleetTestServer(t)
	_, err = plain.FleetIngestPredict(ctx, []predictserver.FleetReading{
		{HostID: "r0-h0", AtS: 1, TempC: 40},
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("predict without streaming: got %v, want 409 APIError", err)
	}
}
