package predictclient

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// NewLocal creates a client whose requests are served by handler directly,
// in process, with no sockets — the transport the SLO capacity harness and
// CI use so profiling measures the serving path, not loopback networking
// flake. All Client methods work unchanged.
func NewLocal(handler http.Handler, opts ...Option) (*Client, error) {
	if handler == nil {
		return nil, fmt.Errorf("predictclient: nil handler")
	}
	local := &http.Client{Transport: localTransport{h: handler}}
	return New("http://in-process", append([]Option{WithHTTPClient(local)}, opts...)...)
}

// WithTimingHook observes every request the client issues: method, URL
// path, wall-clock duration, and the transport error (nil on any HTTP
// response, including non-2xx). The hook wraps the transport, so it sees
// exactly what left the client — the per-endpoint timing tap the capacity
// harness and dashboards build on. It must be safe for concurrent calls.
func WithTimingHook(hook func(method, path string, d time.Duration, err error)) Option {
	return func(c *Client) {
		if hook == nil {
			return
		}
		base := c.http.Transport
		if base == nil {
			base = http.DefaultTransport
		}
		// Copy the http.Client so a shared/injected client is not mutated.
		hooked := *c.http
		hooked.Transport = timingTransport{base: base, hook: hook}
		c.http = &hooked
	}
}

// timingTransport times each round trip and forwards to the hook.
type timingTransport struct {
	base http.RoundTripper
	hook func(method, path string, d time.Duration, err error)
}

// RoundTrip implements http.RoundTripper.
func (t timingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	start := time.Now()
	resp, err := t.base.RoundTrip(req)
	t.hook(req.Method, req.URL.Path, time.Since(start), err)
	return resp, err
}

// localTransport serves round trips by calling the handler synchronously.
type localTransport struct {
	h http.Handler
}

// RoundTrip implements http.RoundTripper.
func (t localTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &responseRecorder{header: make(http.Header), status: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		StatusCode:    rec.status,
		Status:        fmt.Sprintf("%d %s", rec.status, http.StatusText(rec.status)),
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// responseRecorder is a minimal in-memory http.ResponseWriter (the stdlib
// recorder lives in net/http/httptest, which does not belong in production
// imports).
type responseRecorder struct {
	header      http.Header
	body        bytes.Buffer
	status      int
	wroteHeader bool
}

// Header implements http.ResponseWriter.
func (r *responseRecorder) Header() http.Header { return r.header }

// WriteHeader implements http.ResponseWriter.
func (r *responseRecorder) WriteHeader(status int) {
	if r.wroteHeader {
		return
	}
	r.status = status
	r.wroteHeader = true
}

// Write implements http.ResponseWriter.
func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	return r.body.Write(p)
}
