package predictclient

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/predictserver"
	"vmtherm/internal/workload"
)

var (
	modelOnce sync.Once
	model     *core.StablePredictor
	modelRec  dataset.Record
	modelErr  error
)

func testServer(t *testing.T) (*Client, dataset.Record) {
	t.Helper()
	modelOnce.Do(func() {
		cases, err := workload.GenerateCases(workload.DefaultGenOptions(), 19, "pc", 30)
		if err != nil {
			modelErr = err
			return
		}
		recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(19))
		if err != nil {
			modelErr = err
			return
		}
		model, modelErr = core.TrainStable(context.Background(), recs, core.FastStableConfig())
		if modelErr == nil {
			modelRec = recs[0]
		}
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	srv, err := predictserver.New(model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return client, modelRec
}

func TestNewValidation(t *testing.T) {
	if _, err := New("://bad"); err == nil {
		t.Error("bad url should fail")
	}
	if _, err := New("ftp://host"); err == nil {
		t.Error("non-http scheme should fail")
	}
	if _, err := New("http://localhost:1"); err != nil {
		t.Error(err)
	}
}

func TestHealthy(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPredictStableRoundTrip(t *testing.T) {
	c, rec := testServer(t)
	got, err := c.PredictStable(context.Background(), rec.Features)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.PredictFeatures(rec.Features)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("client %v vs direct %v", got, want)
	}
}

func TestPredictStableAPIError(t *testing.T) {
	c, _ := testServer(t)
	_, err := c.PredictStable(context.Background(), []float64{1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.StatusCode != 422 {
		t.Errorf("status = %d", apiErr.StatusCode)
	}
	if apiErr.Error() == "" {
		t.Error("empty error text")
	}
}

func TestSessionFlowAgainstLocalPredictor(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	stable := 70.0
	sess, err := c.OpenSession(ctx, predictserver.SessionRequest{
		Phi0:        22,
		StableTempC: &stable,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.StableTempC != 70 || sess.ID() == "" {
		t.Fatalf("session = %+v", sess)
	}

	// Mirror the remote session locally and verify agreement step by step.
	curve, err := core.NewCurve(22, 70, 600, core.DefaultCurveDelta)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.NewDynamicPredictor(curve, core.DefaultDynamicConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct{ t, temp float64 }{
		{0, 22}, {15, 30}, {30, 36.5}, {45, 40},
	} {
		gamma, err := sess.Observe(ctx, step.t, step.temp)
		if err != nil {
			t.Fatal(err)
		}
		local.Observe(step.t, step.temp)
		if math.Abs(gamma-local.Gamma()) > 1e-9 {
			t.Fatalf("gamma diverged at t=%v: remote %v local %v", step.t, gamma, local.Gamma())
		}
		remote, err := sess.Predict(ctx, step.t)
		if err != nil {
			t.Fatal(err)
		}
		if want := local.Predict(step.t); math.Abs(remote-want) > 1e-9 {
			t.Fatalf("prediction diverged at t=%v: remote %v local %v", step.t, remote, want)
		}
	}

	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Predict(ctx, 60); err == nil {
		t.Error("predict on closed session should fail")
	}
}

func TestPredictStableBatchRoundTrip(t *testing.T) {
	c, rec := testServer(t)
	ctx := context.Background()
	rows := [][]float64{rec.Features, rec.Features, rec.Features}
	got, err := c.PredictStableBatch(ctx, rows)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.PredictFeatures(rec.Features)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Abs(v-want) > 1e-6 {
			t.Errorf("row %d: batch %v vs direct %v", i, v, want)
		}
	}
	// Bad rows surface as an APIError.
	_, err = c.PredictStableBatch(ctx, [][]float64{{1}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 {
		t.Errorf("bad batch err = %v, want 422 APIError", err)
	}
}

func TestSessionBatchRoundTrip(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	stable := 65.0
	var ids []string
	for i := 0; i < 3; i++ {
		sess, err := c.OpenSession(ctx, predictserver.SessionRequest{Phi0: 21, StableTempC: &stable})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sess.ID())
	}

	obs, err := c.ObserveBatch(ctx, []predictserver.ObserveBatchItem{
		{ID: ids[0], T: 0, TempC: 23},
		{ID: ids[1], T: 0, TempC: 25},
		{ID: "ghost", T: 0, TempC: 30},
		{ID: ids[2], T: 0, TempC: 27},
	})
	if err != nil {
		t.Fatal(err)
	}
	// γ after the first observation: λ·(φ − φ0) with φ0 = 21, λ = 0.8.
	for i, want := range []float64{0.8 * 2, 0.8 * 4, 0, 0.8 * 6} {
		if i == 2 {
			if obs[i].Error == "" {
				t.Error("ghost item succeeded")
			}
			continue
		}
		if obs[i].Error != "" || math.Abs(obs[i].Gamma-want) > 1e-9 {
			t.Errorf("item %d = %+v, want gamma %v", i, obs[i], want)
		}
	}

	preds, err := c.PredictBatch(ctx, []predictserver.PredictBatchItem{
		{ID: ids[0], T: 0},
		{ID: "ghost", T: 0},
		{ID: ids[1], T: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if preds[1].Error == "" {
		t.Error("ghost item succeeded")
	}
	for _, i := range []int{0, 2} {
		if preds[i].Error != "" {
			t.Errorf("item %d error: %s", i, preds[i].Error)
			continue
		}
		if preds[i].TempC <= 21 || preds[i].TempC > 70 {
			t.Errorf("item %d temp %v implausible", i, preds[i].TempC)
		}
	}
}

func TestSessionOpenValidationError(t *testing.T) {
	c, _ := testServer(t)
	_, err := c.OpenSession(context.Background(), predictserver.SessionRequest{Phi0: 20})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
}

func TestContextCancellation(t *testing.T) {
	c, rec := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.PredictStable(ctx, rec.Features); err == nil {
		t.Error("cancelled context should fail")
	}
}
