package predictclient

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/predictserver"
	"vmtherm/internal/workload"
)

var (
	modelOnce sync.Once
	model     *core.StablePredictor
	modelRec  dataset.Record
	modelErr  error
)

func testServer(t *testing.T) (*Client, dataset.Record) {
	t.Helper()
	modelOnce.Do(func() {
		cases, err := workload.GenerateCases(workload.DefaultGenOptions(), 19, "pc", 30)
		if err != nil {
			modelErr = err
			return
		}
		recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(19))
		if err != nil {
			modelErr = err
			return
		}
		model, modelErr = core.TrainStable(context.Background(), recs, core.FastStableConfig())
		if modelErr == nil {
			modelRec = recs[0]
		}
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	srv, err := predictserver.New(model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return client, modelRec
}

func TestNewValidation(t *testing.T) {
	if _, err := New("://bad"); err == nil {
		t.Error("bad url should fail")
	}
	if _, err := New("ftp://host"); err == nil {
		t.Error("non-http scheme should fail")
	}
	if _, err := New("http://localhost:1"); err != nil {
		t.Error(err)
	}
}

func TestHealthy(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPredictStableRoundTrip(t *testing.T) {
	c, rec := testServer(t)
	got, err := c.PredictStable(context.Background(), rec.Features)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.PredictFeatures(rec.Features)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("client %v vs direct %v", got, want)
	}
}

func TestPredictStableAPIError(t *testing.T) {
	c, _ := testServer(t)
	_, err := c.PredictStable(context.Background(), []float64{1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.StatusCode != 422 {
		t.Errorf("status = %d", apiErr.StatusCode)
	}
	if apiErr.Error() == "" {
		t.Error("empty error text")
	}
}

func TestSessionFlowAgainstLocalPredictor(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	stable := 70.0
	sess, err := c.OpenSession(ctx, predictserver.SessionRequest{
		Phi0:        22,
		StableTempC: &stable,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.StableTempC != 70 || sess.ID() == "" {
		t.Fatalf("session = %+v", sess)
	}

	// Mirror the remote session locally and verify agreement step by step.
	curve, err := core.NewCurve(22, 70, 600, core.DefaultCurveDelta)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.NewDynamicPredictor(curve, core.DefaultDynamicConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct{ t, temp float64 }{
		{0, 22}, {15, 30}, {30, 36.5}, {45, 40},
	} {
		gamma, err := sess.Observe(ctx, step.t, step.temp)
		if err != nil {
			t.Fatal(err)
		}
		local.Observe(step.t, step.temp)
		if math.Abs(gamma-local.Gamma()) > 1e-9 {
			t.Fatalf("gamma diverged at t=%v: remote %v local %v", step.t, gamma, local.Gamma())
		}
		remote, err := sess.Predict(ctx, step.t)
		if err != nil {
			t.Fatal(err)
		}
		if want := local.Predict(step.t); math.Abs(remote-want) > 1e-9 {
			t.Fatalf("prediction diverged at t=%v: remote %v local %v", step.t, remote, want)
		}
	}

	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Predict(ctx, 60); err == nil {
		t.Error("predict on closed session should fail")
	}
}

func TestSessionOpenValidationError(t *testing.T) {
	c, _ := testServer(t)
	_, err := c.OpenSession(context.Background(), predictserver.SessionRequest{Phi0: 20})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
}

func TestContextCancellation(t *testing.T) {
	c, rec := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.PredictStable(ctx, rec.Features); err == nil {
		t.Error("cancelled context should fail")
	}
}
