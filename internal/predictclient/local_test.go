package predictclient

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// localHandler is a stand-in service: /healthz answers ok, anything else 404.
func localHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	return mux
}

func TestNewLocalServesHandlerInProcess(t *testing.T) {
	c, err := NewLocal(localHandler())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatalf("in-process healthz: %v", err)
	}
	// A missing route must surface as a typed APIError, same as over a
	// socket.
	req, _ := http.NewRequest(http.MethodGet, c.base+"/no/such/route", nil)
	var out map[string]string
	err = c.do(req, &out)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("missing route returned %v, want *APIError 404", err)
	}
}

func TestNewLocalRejectsNilHandler(t *testing.T) {
	if _, err := NewLocal(nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestTimingHookObservesRequests(t *testing.T) {
	type obs struct {
		method, path string
		d            time.Duration
		err          error
	}
	var (
		mu   sync.Mutex
		seen []obs
	)
	c, err := NewLocal(localHandler(), WithTimingHook(func(method, path string, d time.Duration, err error) {
		mu.Lock()
		seen = append(seen, obs{method, path, d, err})
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(seen))
	}
	got := seen[0]
	if got.method != http.MethodGet || got.path != "/healthz" || got.err != nil {
		t.Fatalf("hook observed %+v, want GET /healthz with nil error", got)
	}
	if got.d < 0 {
		t.Fatalf("negative duration %v", got.d)
	}
}

func TestTimingHookDoesNotMutateInjectedClient(t *testing.T) {
	shared := &http.Client{Timeout: 3 * time.Second}
	_, err := New("http://127.0.0.1:1",
		WithHTTPClient(shared),
		WithTimingHook(func(string, string, time.Duration, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	if shared.Transport != nil {
		t.Fatal("WithTimingHook mutated the injected http.Client's transport")
	}
}
