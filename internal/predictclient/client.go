// Package predictclient is the typed Go client for the vmtherm-predictd
// HTTP service (internal/predictserver). A monitoring agent embeds it to
// push online measurements and pull Δ_gap-ahead temperature predictions.
package predictclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"vmtherm/internal/fleet"
	"vmtherm/internal/predictserver"
	"vmtherm/internal/telemetry"
)

// Client talks to one predictd instance.
type Client struct {
	base string
	http *http.Client
}

// Option customizes the client.
type Option func(*Client)

// WithHTTPClient injects a custom *http.Client (timeouts, transport).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New creates a client for the service at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("predictclient: bad base url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("predictclient: unsupported scheme %q", u.Scheme)
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 10 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("predictclient: %d: %s", e.StatusCode, e.Message)
}

// Healthy probes /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	var out map[string]string
	return c.do(req, &out)
}

// PredictStable asks for ψ_stable from a raw feature vector.
func (c *Client) PredictStable(ctx context.Context, features []float64) (float64, error) {
	var out predictserver.StableResponse
	err := c.postJSON(ctx, "/v1/predict/stable",
		predictserver.StableRequest{Features: features}, &out)
	if err != nil {
		return 0, err
	}
	return out.StableTempC, nil
}

// PredictStableBatch asks for ψ_stable for many feature rows in one
// request — the call a thermal-aware scheduler makes once per placement
// round instead of one HTTP round-trip per candidate host. Predictions come
// back in row order.
func (c *Client) PredictStableBatch(ctx context.Context, rows [][]float64) ([]float64, error) {
	var out predictserver.StableBatchResponse
	err := c.postJSON(ctx, "/v1/stable/batch",
		predictserver.StableBatchRequest{Rows: rows}, &out)
	if err != nil {
		return nil, err
	}
	if len(out.StableTempsC) != len(rows) {
		return nil, fmt.Errorf("predictclient: %d predictions for %d rows", len(out.StableTempsC), len(rows))
	}
	return out.StableTempsC, nil
}

// ObserveBatch feeds one measurement into each of many sessions in one
// request. Results are item-for-item in request order; items whose session
// is gone carry a non-empty Error instead of failing the whole round.
func (c *Client) ObserveBatch(ctx context.Context, items []predictserver.ObserveBatchItem) ([]predictserver.ObserveBatchResult, error) {
	var out predictserver.ObserveBatchResponse
	err := c.postJSON(ctx, "/v1/session/batch/observe",
		predictserver.ObserveBatchRequest{Items: items}, &out)
	if err != nil {
		return nil, err
	}
	if len(out.Results) != len(items) {
		return nil, fmt.Errorf("predictclient: %d results for %d items", len(out.Results), len(items))
	}
	return out.Results, nil
}

// PredictBatch queries many sessions in one request. Results are
// item-for-item in request order; items whose session is gone carry a
// non-empty Error instead of failing the whole round.
func (c *Client) PredictBatch(ctx context.Context, items []predictserver.PredictBatchItem) ([]predictserver.PredictBatchResult, error) {
	var out predictserver.PredictBatchResponse
	err := c.postJSON(ctx, "/v1/session/batch/predict",
		predictserver.PredictBatchRequest{Items: items}, &out)
	if err != nil {
		return nil, err
	}
	if len(out.Results) != len(items) {
		return nil, fmt.Errorf("predictclient: %d results for %d items", len(out.Results), len(items))
	}
	return out.Results, nil
}

// FleetHotspots fetches the control plane's latest published hotspot map —
// the Δ_gap-ahead view a thermal-aware scheduler polls each round.
func (c *Client) FleetHotspots(ctx context.Context) (*predictserver.FleetHotspotsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/fleet/hotspots", nil)
	if err != nil {
		return nil, err
	}
	var out predictserver.FleetHotspotsResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PlaceError is a typed placement rejection from the single-VM endpoint: it
// carries the fleet's RejectCode alongside the HTTP-level APIError it wraps,
// so callers can switch on Code instead of parsing flattened strings.
// errors.As finds both *PlaceError and (via Unwrap) *APIError.
type PlaceError struct {
	*APIError
	// Code is the typed rejection code (RejectNone if the server sent an
	// unknown string).
	Code fleet.RejectCode
	// Reason is the human-readable rejection reason.
	Reason string
}

// Error implements error.
func (e *PlaceError) Error() string {
	return fmt.Sprintf("predictclient: placement rejected (%s): %s", e.Code, e.Reason)
}

// Unwrap exposes the underlying HTTP error.
func (e *PlaceError) Unwrap() error { return e.APIError }

// FleetPlace asks the control plane to place one VM with the thermal-aware
// policy. A placed VM answers with status "placed", an admission-queued one
// with "queued" (HTTP 202); rejections come back as a *PlaceError carrying
// the typed RejectCode.
func (c *Client) FleetPlace(ctx context.Context, req predictserver.FleetPlaceRequest) (*predictserver.FleetPlaceResponse, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/fleet/place", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var body struct {
			Error      string `json:"error"`
			RejectCode string `json:"reject_code"`
		}
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != "" {
			msg = body.Error
		}
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: msg}
		if body.RejectCode != "" {
			return nil, &PlaceError{
				APIError: apiErr,
				Code:     fleet.ParseRejectCode(body.RejectCode),
				Reason:   msg,
			}
		}
		return nil, apiErr
	}
	var out predictserver.FleetPlaceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetPlaceBatch places a whole queue of VM requests in one
// admission-controlled call. The response carries one typed decision per
// requested VM in request order (Count-expanded replicas in suffix order);
// per-item rejections are data, not errors.
func (c *Client) FleetPlaceBatch(ctx context.Context, vms []predictserver.FleetPlaceRequest) (*predictserver.FleetPlaceBatchResponse, error) {
	var out predictserver.FleetPlaceBatchResponse
	err := c.postJSON(ctx, "/v1/fleet/place/batch",
		predictserver.FleetPlaceBatchRequest{VMs: vms}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetIngest pushes a batch of telemetry readings into the control plane's
// bounded ingest pipeline — the call a real monitoring agent makes each
// sampling interval. The response reports how many readings the buffer
// accepted versus dropped (back-pressure, not an error).
func (c *Client) FleetIngest(ctx context.Context, readings []predictserver.FleetReading) (*predictserver.FleetIngestResponse, error) {
	var out predictserver.FleetIngestResponse
	err := c.postJSON(ctx, "/v1/fleet/ingest",
		predictserver.FleetIngestRequest{Readings: readings}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetIngestPredict is the synchronous-predictive ingest call: the same
// push as FleetIngest, but the response carries one Δ_gap-ahead prediction
// per reading in request order — arrival and prediction collapse into one
// round-trip. Requires a streaming-ingest server (predict against a
// round-based server answers 409).
func (c *Client) FleetIngestPredict(ctx context.Context, readings []predictserver.FleetReading) (*predictserver.FleetIngestResponse, error) {
	var out predictserver.FleetIngestResponse
	err := c.postJSON(ctx, "/v1/fleet/ingest",
		predictserver.FleetIngestRequest{Readings: readings, Predict: true}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches and parses the service's Prometheus exposition endpoint —
// the typed view of GET /metrics for Go consumers (dashboards and tests);
// scrapers consume the endpoint directly via telemetry.ScrapeSource.
func (c *Client) Metrics(ctx context.Context) ([]telemetry.MetricPoint, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	return telemetry.ParseExposition(resp.Body)
}

// Session is a server-side dynamic prediction session.
type Session struct {
	c  *Client
	id string
	// StableTempC is the ψ_stable anchor the session was created with.
	StableTempC float64
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// OpenSession creates a dynamic session. Exactly one of stableTempC (non-nil)
// or features must be provided; cfg fields left zero take the paper defaults.
func (c *Client) OpenSession(ctx context.Context, req predictserver.SessionRequest) (*Session, error) {
	var out predictserver.SessionResponse
	if err := c.postJSON(ctx, "/v1/session", req, &out); err != nil {
		return nil, err
	}
	return &Session{c: c, id: out.ID, StableTempC: out.StableTempC}, nil
}

// Observe feeds a measurement φ(t); returns the current calibration γ.
func (s *Session) Observe(ctx context.Context, t, tempC float64) (float64, error) {
	var out predictserver.ObserveResponse
	err := s.c.postJSON(ctx, "/v1/session/"+s.id+"/observe",
		predictserver.ObserveRequest{T: t, TempC: tempC}, &out)
	if err != nil {
		return 0, err
	}
	return out.Gamma, nil
}

// Predict returns ψ(t + Δ_gap) as of time t.
func (s *Session) Predict(ctx context.Context, t float64) (float64, error) {
	u := fmt.Sprintf("%s/v1/session/%s/predict?t=%s",
		s.c.base, s.id, url.QueryEscape(strconv.FormatFloat(t, 'g', -1, 64)))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	var out predictserver.PredictResponse
	if err := s.c.do(req, &out); err != nil {
		return 0, err
	}
	return out.TempC, nil
}

// Close deletes the session server-side.
func (s *Session) Close(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		s.c.base+"/v1/session/"+s.id, nil)
	if err != nil {
		return err
	}
	var out map[string]string
	return s.c.do(req, &out)
}

func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
