// Batch placement and admission control: the scheduler-facing side of the
// control plane. The paper's end goal is placing VMs by *predicted* (not
// measured) temperature; this file turns that policy into a scheduler-grade
// API: PlaceBatch amortizes one coolest-first ranking, one candidate
// shortlist and batched post-placement ψ_stable prediction across a whole
// queue of requests, decrementing per-host thermal headroom as VMs land
// within the batch, and an explicit AdmissionPolicy (headroom budget, queue
// depth, per-round cap) yields typed Placed / Queued / Rejected decisions
// instead of error strings.
package fleet

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// PlaceStatus classifies one placement decision.
type PlaceStatus uint8

const (
	// PlaceInvalid is the zero value; no real decision carries it.
	PlaceInvalid PlaceStatus = iota
	// Placed means the VM was admitted and started on HostID.
	Placed
	// Queued means admission blocked the VM this round: it was parked on
	// the pending queue and the next round's drain retries it.
	Queued
	// Rejected means the VM was refused; Code and Reason say why.
	Rejected
)

// String returns the wire form ("placed", "queued", "rejected").
func (s PlaceStatus) String() string {
	switch s {
	case Placed:
		return "placed"
	case Queued:
		return "queued"
	case Rejected:
		return "rejected"
	}
	return "invalid"
}

// RejectCode is the typed reason a placement was refused. Every Rejected
// decision carries exactly one code; the HTTP layer maps codes to statuses
// (422 infeasible, 429 queue-full, 409 for the rest).
type RejectCode uint8

const (
	// RejectNone is the zero value carried by non-rejected decisions.
	RejectNone RejectCode = iota
	// RejectInfeasible: the VM shape can never fit the fleet's host shape,
	// regardless of current load.
	RejectInfeasible
	// RejectNoCapacity: no host currently has the capacity to admit the VM.
	RejectNoCapacity
	// RejectNoHeadroom: hosts with capacity exist, but every placement would
	// leave less predicted thermal headroom than the admission budget — and
	// queueing is disabled, so the request cannot be parked.
	RejectNoHeadroom
	// RejectQueueFull: the request had to be parked (headroom or per-round
	// cap) but the pending queue is at its depth bound or disabled.
	RejectQueueFull
	// RejectNoSubstrate: source-driven controller — telemetry can be
	// observed and predicted, but there is no fleet to place onto.
	RejectNoSubstrate
	// RejectDuplicateID: a VM with this id is already placed fleet-wide.
	RejectDuplicateID
)

// String returns the wire form served by the fleet API.
func (c RejectCode) String() string {
	switch c {
	case RejectInfeasible:
		return "infeasible"
	case RejectNoCapacity:
		return "no-capacity"
	case RejectNoHeadroom:
		return "no-headroom"
	case RejectQueueFull:
		return "queue-full"
	case RejectNoSubstrate:
		return "no-substrate"
	case RejectDuplicateID:
		return "duplicate-id"
	}
	return ""
}

// ParseRejectCode maps a wire string back to its code (RejectNone for empty
// or unknown strings).
func ParseRejectCode(s string) RejectCode {
	switch s {
	case "infeasible":
		return RejectInfeasible
	case "no-capacity":
		return RejectNoCapacity
	case "no-headroom":
		return RejectNoHeadroom
	case "queue-full":
		return RejectQueueFull
	case "no-substrate":
		return RejectNoSubstrate
	case "duplicate-id":
		return RejectDuplicateID
	}
	return RejectNone
}

// AdmissionPolicy bounds what the placement plane will accept. The zero
// value (via Config.withDefaults) preserves the legacy behaviour: no
// headroom gate, a 65536-deep queue, no per-round cap.
type AdmissionPolicy struct {
	// HeadroomBudgetC requires every placement to leave at least this much
	// predicted headroom below ThresholdC after the VM lands. 0 disables
	// the gate: the coolest admitting host wins even if the placement is
	// predicted to run hot.
	HeadroomBudgetC float64
	// MaxQueueDepth bounds the pending queue shared by Submit and Queued
	// decisions. 0 takes the default (65536); -1 disables queueing
	// entirely, so admission-blocked requests are rejected, never parked.
	MaxQueueDepth int
	// MaxPlacementsPerRound caps how many VMs may be placed between two
	// rounds (PlaceNow, PlaceBatch and the round drain combined); excess
	// requests queue for the next round. 0 means unbounded.
	MaxPlacementsPerRound int
}

// PlacementDecision records one VM request's typed outcome.
type PlacementDecision struct {
	VMID string
	// Status is Placed, Queued or Rejected.
	Status PlaceStatus
	// HostID and PredictedStableC are set when Status == Placed: where the
	// VM landed and its host's predicted post-placement ψ_stable.
	HostID           string
	PredictedStableC float64
	// Code and Reason are set when Status == Rejected.
	Code   RejectCode
	Reason string
}

// Per-call candidate budget: one placement call builds and predicts at most
// this many post-placement cases. A single VM spends the whole budget (the
// pre-batch shortlist bound); a batch splits it, floored at
// minPlacementWindow candidates per VM — that split is what makes a
// 1024-VM storm cost ~2 case builds + predictions per VM instead of 256.
const (
	maxPlacementCandidates = 256
	minPlacementWindow     = 2
)

// planEntry is one host of the round's placement plan.
type planEntry struct {
	id string
	sh *simHost
	// effTemp orders candidates coolest-first: the published Δ_gap-ahead
	// prediction, replaced by the predicted post-placement ψ_stable once a
	// placement lands on the host this round (+Inf = unpredicted).
	effTemp float64
	// hot marks predicted hotspots (avoided until no cool host admits).
	hot bool
	// claimed is the wave number that last reserved this host; one VM per
	// host per wave keeps every wave's predictions mutually consistent.
	claimed int
}

// placePlan is the per-round placement working set shared by every PlaceNow
// / PlaceBatch call between two rounds: the coolest-first host ranking with
// per-host effective temperatures and hotspot flags, kept current as
// placements land so sequential single-VM calls amortize exactly like one
// batch.
type placePlan struct {
	round int // controller round the plan was built for
	pop   int // population size at build (membership-change guard)
	// entries is sorted by (effTemp, id); dirty marks a pending re-sort
	// after placements moved effective temperatures.
	entries []planEntry
	dirty   bool
	// wave is the claim epoch (monotonic within the plan's round); placed
	// counts placements applied this round for the admission cap.
	wave   int
	placed int
}

// placePlanLocked returns the current round's plan, rebuilding it when the
// round advanced or the population changed. Callers hold c.mu and have
// checked c.sim != nil.
func (c *Controller) placePlanLocked() *placePlan {
	p := &c.plan
	if p.round == c.round && p.pop == len(c.order) {
		return p
	}
	var predicted map[string]float64
	hot := c.planHot
	clear(hot)
	if hot == nil {
		hot = make(map[string]bool)
		c.planHot = hot
	}
	// Writer-side borrow of the published snapshot: the caller holds c.mu,
	// which excludes generation recycling, and published generations are
	// immutable — no escape or copy needed.
	if snap := c.publishedSnapshot(); snap != nil {
		predicted = snap.Predicted
		for _, h := range snap.Hotspots {
			hot[h.HostID] = true
		}
	}
	p.entries = p.entries[:0]
	for _, id := range c.rankedByPredicted() {
		t, ok := predicted[id]
		if !ok {
			t = math.Inf(1)
		}
		p.entries = append(p.entries, planEntry{
			id:      id,
			sh:      c.sim.hosts[id],
			effTemp: t,
			hot:     hot[id],
		})
	}
	p.round, p.pop = c.round, len(c.order)
	p.dirty, p.wave, p.placed = false, 0, 0
	return p
}

// sortPlanEntries restores the coolest-first invariant (ties by id, +Inf —
// unpredicted hosts — last: never place blind when an observed host can
// admit).
func sortPlanEntries(entries []planEntry) {
	slices.SortFunc(entries, func(a, b planEntry) int {
		if a.effTemp != b.effTemp {
			if a.effTemp < b.effTemp {
				return -1
			}
			return 1
		}
		return strings.Compare(a.id, b.id)
	})
}

// shapeFeasible checks whether a VM shape could EVER fit the fleet's
// (homogeneous) host shape — the static half of admission, independent of
// current load.
func shapeFeasible(shape vmm.HostConfig, cfg vmm.VMConfig) bool {
	return float64(cfg.VCPUs) <= float64(shape.Cores)*shape.CPUOvercommit &&
		cfg.MemoryGB <= shape.MemoryGB
}

// PlaceBatch synchronously runs the thermal-aware placement policy for a
// whole queue of VM requests and applies the admitted decisions, returning
// one typed decision per spec in input order. It is the
// POST /v1/fleet/place/batch path and the round drain's engine.
//
// The batch shares one candidate budget (maxPlacementCandidates): requests
// are assigned in waves, each host serving at most one VM per wave, with
// one batched ψ_stable prediction per wave — so a storm of B requests costs
// O(budget) case builds + predictions total instead of B × budget, and
// every VM placed within the batch sees the headroom its predecessors
// consumed.
func (c *Controller) PlaceBatch(specs []workload.VMSpec) ([]PlacementDecision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placeBatchLocked(specs)
}

// waveVM is one staged request of the current wave: its spec index and its
// candidate window [lo, hi) into waveEntry/waveVals.
type waveVM struct {
	spec   int
	lo, hi int
}

func (c *Controller) placeBatchLocked(specs []workload.VMSpec) ([]PlacementDecision, error) {
	decs := make([]PlacementDecision, len(specs))
	if c.sim == nil {
		for i := range specs {
			decs[i] = PlacementDecision{
				VMID:   specs[i].ID,
				Status: Rejected,
				Code:   RejectNoSubstrate,
				Reason: ErrNoSubstrate.Error(),
			}
		}
		return decs, nil
	}
	if len(specs) == 0 {
		return decs, nil
	}
	pol := c.cfg.Admission
	plan := c.placePlanLocked()
	window := maxPlacementCandidates / len(specs)
	if window < minPlacementWindow {
		window = minPlacementWindow
	}

	pending := c.pendIdx[:0]
	for i := range specs {
		pending = append(pending, i)
	}
	next := c.pendNext[:0]

	for len(pending) > 0 {
		plan.wave++
		if plan.dirty {
			sortPlanEntries(plan.entries)
			plan.dirty = false
		}
		c.waveCases = c.waveCases[:0]
		c.waveEntry = c.waveEntry[:0]
		c.waveVMs = c.waveVMs[:0]
		next = next[:0]

		// Collection: walk the requests in input order, reserving each a
		// window of the coolest admitting unclaimed hosts and building their
		// post-placement cases. Requests that only found hosts claimed by an
		// earlier request this wave defer to the next wave, where they see
		// the applied placements.
		for _, si := range pending {
			spec := &specs[si]
			if !shapeFeasible(c.cfg.HostShape, spec.Config) {
				decs[si] = PlacementDecision{
					VMID: spec.ID, Status: Rejected, Code: RejectInfeasible,
					Reason: fmt.Sprintf("fleet: shape %dvCPU/%.0fGB can never fit host shape %dvCPU(×%.2g)/%.0fGB",
						spec.Config.VCPUs, spec.Config.MemoryGB,
						c.cfg.HostShape.Cores, c.cfg.HostShape.CPUOvercommit, c.cfg.HostShape.MemoryGB),
				}
				continue
			}
			if err := spec.Config.Validate(); err != nil {
				decs[si] = PlacementDecision{
					VMID: spec.ID, Status: Rejected, Code: RejectInfeasible, Reason: err.Error(),
				}
				continue
			}
			if cur, dup := c.sim.vmHost[spec.ID]; dup {
				decs[si] = PlacementDecision{
					VMID: spec.ID, Status: Rejected, Code: RejectDuplicateID,
					Reason: fmt.Sprintf("fleet: vm %q already placed on %q", spec.ID, cur),
				}
				continue
			}
			// Per-round cap: reserve a slot per staged request so the wave
			// never over-commits; excess requests park for the next round.
			if pol.MaxPlacementsPerRound > 0 && plan.placed+len(c.waveVMs) >= pol.MaxPlacementsPerRound {
				decs[si] = c.parkOrReject(spec, RejectQueueFull,
					fmt.Sprintf("fleet: per-round placement cap %d reached", pol.MaxPlacementsPerRound))
				continue
			}
			lo := len(c.waveEntry)
			sawClaimed := false
			for ei := range plan.entries {
				e := &plan.entries[ei]
				if !canAdmitVM(e.sh.host, spec.Config) {
					continue
				}
				if e.claimed == plan.wave {
					sawClaimed = true
					continue
				}
				e.claimed = plan.wave
				cse, err := c.sim.hostCaseAt(e.sh, spec)
				if err != nil {
					return nil, err
				}
				c.waveCases = append(c.waveCases, cse)
				c.waveEntry = append(c.waveEntry, ei)
				if len(c.waveEntry)-lo == window {
					break
				}
			}
			if len(c.waveEntry) == lo {
				if sawClaimed {
					next = append(next, si) // contended: retry against next wave's state
					continue
				}
				decs[si] = PlacementDecision{
					VMID: spec.ID, Status: Rejected, Code: RejectNoCapacity,
					Reason: ErrNoCapacity.Error(),
				}
				continue
			}
			c.waveVMs = append(c.waveVMs, waveVM{spec: si, lo: lo, hi: len(c.waveEntry)})
		}

		// One batched prediction over every window of the wave.
		if len(c.waveCases) > 0 {
			if cap(c.waveVals) < len(c.waveCases) {
				c.waveVals = make([]float64, len(c.waveCases))
			}
			c.waveVals = c.waveVals[:len(c.waveCases)]
			if err := c.predictMissBatch(c.waveCases, c.waveVals); err != nil {
				return nil, fmt.Errorf("fleet: placement predict: %w", err)
			}
		}

		// Assignment: windows are disjoint (claimed at collection), so each
		// VM's argmin stays valid as its predecessors land.
		gated := pol.HeadroomBudgetC > 0
		for _, wv := range c.waveVMs {
			spec := &specs[wv.spec]
			best, bestVal := -1, math.Inf(1)
			for j := wv.lo; j < wv.hi; j++ {
				e := &plan.entries[c.waveEntry[j]]
				if e.hot {
					continue // first pass avoids predicted hotspots entirely
				}
				if gated && c.cfg.ThresholdC-c.waveVals[j] < pol.HeadroomBudgetC {
					continue
				}
				if c.waveVals[j] < bestVal {
					best, bestVal = j, c.waveVals[j]
				}
			}
			if best < 0 && !gated {
				// Legacy fallback: with no headroom budget, a hot host beats
				// rejecting a VM the fleet has capacity for.
				for j := wv.lo; j < wv.hi; j++ {
					if c.waveVals[j] < bestVal {
						best, bestVal = j, c.waveVals[j]
					}
				}
			}
			if best < 0 {
				if gated {
					decs[wv.spec] = c.parkOrReject(spec, RejectNoHeadroom,
						fmt.Sprintf("fleet: no candidate leaves %.2g°C predicted headroom below %.4g°C",
							pol.HeadroomBudgetC, c.cfg.ThresholdC))
				} else {
					decs[wv.spec] = PlacementDecision{
						VMID: spec.ID, Status: Rejected, Code: RejectNoCapacity,
						Reason: "fleet: no usable prediction for any candidate",
					}
				}
				continue
			}
			e := &plan.entries[c.waveEntry[best]]
			if err := c.sim.place(e.id, *spec); err != nil {
				code := RejectInfeasible
				if _, dup := c.sim.vmHost[spec.ID]; dup {
					code = RejectDuplicateID // in-batch duplicate landed first
				}
				decs[wv.spec] = PlacementDecision{
					VMID: spec.ID, Status: Rejected, Code: code, Reason: err.Error(),
				}
				continue
			}
			// The deployment changed: the host's session re-anchors next
			// round, and the plan carries the post-placement temperature
			// forward so later VMs (and later calls this round) price the
			// consumed headroom.
			c.eng.Delete(e.id)
			e.effTemp = bestVal
			e.hot = bestVal > c.cfg.ThresholdC
			plan.dirty = true
			plan.placed++
			decs[wv.spec] = PlacementDecision{
				VMID: spec.ID, Status: Placed, HostID: e.id, PredictedStableC: bestVal,
			}
		}
		pending, next = next, pending
	}
	c.pendIdx, c.pendNext = pending[:0], next[:0]
	return decs, nil
}

// parkOrReject parks an admission-blocked request on the pending queue
// (Queued) or rejects it — with RejectQueueFull at the depth bound, or the
// caller's blocking code when queueing is disabled.
func (c *Controller) parkOrReject(spec *workload.VMSpec, code RejectCode, reason string) PlacementDecision {
	if c.cfg.Admission.MaxQueueDepth >= 0 {
		c.pendMu.Lock()
		room := len(c.pending) < c.cfg.Admission.MaxQueueDepth
		if room {
			c.pending = append(c.pending, *spec)
		}
		c.pendMu.Unlock()
		if room {
			return PlacementDecision{VMID: spec.ID, Status: Queued}
		}
		return PlacementDecision{
			VMID: spec.ID, Status: Rejected, Code: RejectQueueFull,
			Reason: fmt.Sprintf("fleet: pending queue at depth bound %d", c.cfg.Admission.MaxQueueDepth),
		}
	}
	return PlacementDecision{VMID: spec.ID, Status: Rejected, Code: code, Reason: reason}
}
