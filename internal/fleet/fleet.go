// Package fleet is the thermal control plane that closes the paper's
// proactive-management loop at datacenter scale: per-host telemetry streams
// through a bounded ingest pipeline into the unified session engine
// (internal/engine) — per-host dynamic prediction sessions calibrated every
// Δ_update as in Eqs. 3–8, with batch ψ_stable anchors fanned through the
// SVM batch kernel — and each round rolls the Δ_gap-ahead predicted
// temperatures into a rack/DC hotspot map (cluster.DetectHotspots), driving
// thermal-aware placement and migration proposals for incoming VM requests:
// acting on where temperature is *going* rather than where it is.
//
// Telemetry is pluggable (telemetry.Source): the same closed loop runs
// against the built-in fleet simulator, a deterministic trace replay of
// recorded experiments, or a live Prometheus-exposition scraper — swap the
// source, keep the engine.
//
// The controller degrades gracefully: hosts whose telemetry has gone stale
// have their prediction uncertainty widened and are excluded from the
// hotspot map instead of poisoning it (and are evicted entirely once dark
// beyond the eviction horizon), and every round reports latency, staleness
// and drop metrics so the degradation is observable.
package fleet

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmtherm/internal/anchorcache"
	"vmtherm/internal/cluster"
	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/engine"
	"vmtherm/internal/telemetry"
	"vmtherm/internal/thermal"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// BatchCasePredictor predicts ψ_stable for many workload cases in one call.
// The production implementation is StableBatchPredictor (feature encoding +
// StablePredictor.PredictBatchInto through the SVM batch kernel); tests
// inject synthetic physics instead. Implementations must be safe for
// concurrent calls: the controller shards cold-round anchor fan-outs across
// a worker pool.
type BatchCasePredictor func(cases []workload.Case) ([]float64, error)

// stableScratch is the per-call working memory StableBatchPredictor pools:
// one flat feature matrix, its row headers, and the model scratch.
type stableScratch struct {
	feat []float64
	rows [][]float64
	ps   core.PredictScratch
}

// StableBatchPredictor adapts a trained stable model into the batch shape
// the controller fans prediction rounds through. horizonS is the averaging
// horizon for dynamic profiles (use the experiment duration, e.g. 1800).
// Cases are encoded into a pooled flat feature matrix and evaluated through
// the zero-alloc batch spine, so concurrent shards share nothing but the
// (read-only) model.
func StableBatchPredictor(model *core.StablePredictor, horizonS float64) BatchCasePredictor {
	var pool sync.Pool
	nf := dataset.NumFeatures()
	return func(cases []workload.Case) ([]float64, error) {
		s, _ := pool.Get().(*stableScratch)
		if s == nil {
			s = new(stableScratch)
		}
		defer pool.Put(s)
		if cap(s.feat) < len(cases)*nf {
			s.feat = make([]float64, len(cases)*nf)
		}
		s.feat = s.feat[:len(cases)*nf]
		if cap(s.rows) < len(cases) {
			s.rows = make([][]float64, len(cases))
		}
		s.rows = s.rows[:len(cases)]
		for i, c := range cases {
			row := s.feat[i*nf : (i+1)*nf : (i+1)*nf]
			if err := dataset.EncodeInto(c, horizonS, row); err != nil {
				return nil, fmt.Errorf("fleet: encoding %s: %w", c.Name, err)
			}
			s.rows[i] = row
		}
		out := make([]float64, len(cases))
		if err := model.PredictBatchInto(s.rows, out, &s.ps); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// Config parameterizes the control plane. Zero values take defaults via
// (Config).withDefaults; see DefaultConfig for the reference shape.
type Config struct {
	// Racks × HostsPerRack is the fleet size (simulated fleets only).
	Racks, HostsPerRack int
	// FanCount is the fan configuration assumed for every host (θ_fan).
	FanCount int
	// HostShape is the per-host capacity.
	HostShape vmm.HostConfig
	// Server is the thermal model template (FanCount/AmbientC are set per
	// host from FanCount and the datacenter model).
	Server thermal.ServerParams
	// Sensor is the telemetry error model.
	Sensor thermal.SensorParams
	// CRAC is the room cooling configuration.
	CRAC cluster.CRAC
	// RackSpreadC is the total inlet temperature spread from the bottom to
	// the top slot of a rack (top-of-rack slots ingest warmer air). Each
	// slot's offset is RackSpreadC · slot/(HostsPerRack−1), so the spread is
	// physical regardless of rack depth.
	RackSpreadC float64
	// ThresholdC is the hotspot threshold applied to predicted temperatures.
	ThresholdC float64
	// TickS is the simulation step; SampleS the telemetry sampling interval.
	TickS, SampleS float64
	// UpdateEveryS is Δ_update, the calibration (and round) interval.
	UpdateEveryS float64
	// GapS is Δ_gap, the prediction horizon the hotspot map looks ahead.
	GapS float64
	// Lambda is the calibration learning rate λ.
	Lambda float64
	// TBreakS and CurveDeltaS shape the Eq. (3) pre-defined curve.
	TBreakS, CurveDeltaS float64
	// HorizonS is the feature-encoding horizon for ψ_stable anchors.
	HorizonS float64
	// StaleAfterS is how old telemetry may get before a host is degraded
	// (uncertainty widened, excluded from the hotspot map).
	StaleAfterS float64
	// EvictAfterS is how old telemetry may get before a host's session is
	// evicted entirely (default 20 × StaleAfterS).
	EvictAfterS float64
	// ReanchorEpsC re-anchors a session when its predicted ψ_stable moves by
	// more than this (deployment changed underneath it).
	ReanchorEpsC float64
	// UncertaintyBaseC and UncertaintyPerSC shape per-prediction uncertainty:
	// base + perS · staleness.
	UncertaintyBaseC, UncertaintyPerSC float64
	// IngestBuffer bounds the telemetry pipeline. 0 auto-sizes to at least
	// one full round of emissions — the simulated fleet's own sensor sweep
	// volume, or MaxHosts × samples-per-round for source-driven fleets
	// (minimum 4096 either way) — because a default smaller than the round
	// volume would silently starve the hosts beyond it of telemetry
	// forever.
	IngestBuffer int
	// MaxMigrationsPerRound bounds reconciliation work per round; 0 disables
	// migration (a bounded set of hottest-first proposals is still derived
	// each round for observability — see propose for the bound).
	MaxMigrationsPerRound int
	// Admission bounds what the placement plane accepts (headroom budget,
	// queue depth, per-round placement cap); see AdmissionPolicy. The zero
	// value preserves the legacy behaviour.
	Admission AdmissionPolicy
	// SourceAmbientC is δ_env assumed when synthesizing ψ_stable anchor
	// cases for source-driven fleets (trace replay, scraping), where no
	// datacenter model supplies per-slot inlet temperatures.
	SourceAmbientC float64
	// MaxHosts bounds the host population a source-driven controller will
	// track: hosts discovered beyond the bound are discarded (and counted)
	// so a misbehaving exporter cannot grow memory without limit. Simulated
	// fleets are bounded by their own shape.
	MaxHosts int
	// AnchorCacheDisabled turns off ψ_stable anchor memoization: every round
	// fans every tracked host through the batch predictor (the pre-cache
	// behaviour). Leave enabled except for A/B measurement.
	AnchorCacheDisabled bool
	// AnchorCacheEntries bounds the anchor cache (default 65536 entries).
	AnchorCacheEntries int
	// AnchorQuantUtil, AnchorQuantMem and AnchorQuantAmbientC are the anchor
	// cache's quantization bucket widths (defaults 0.01, 0.02, 0.25 °C).
	// Cached-vs-exact anchor divergence is bounded by the model's input
	// sensitivity times half a bucket; the defaults keep that bound under
	// ReanchorEpsC/2 so cache error can never trigger a spurious re-anchor.
	AnchorQuantUtil, AnchorQuantMem, AnchorQuantAmbientC float64
	// AnchorWorkers bounds the worker pool that shards cache-miss anchor
	// fan-outs (cold rounds, mass re-anchors) across cores (default
	// min(GOMAXPROCS, 8); 1 forces sequential fan-out).
	AnchorWorkers int
	// StreamingIngest applies pushed readings on arrival — observe,
	// calibrate, predict, and update an incremental hotspot index — instead
	// of parking them in the pipeline until the next round. The pipeline and
	// the batch round still run (and reconcile the index every round); see
	// stream.go. Off by default: round-driven deployments pay nothing.
	StreamingIngest bool
	// PhysWorkers bounds the worker pool the simulated-physics tick shards
	// racks across (default min(GOMAXPROCS, 8); 1 forces the serial tick).
	// Results are bit-identical for every worker count: racks advance
	// independently and each shard's reduction order is fixed. Simulated
	// fleets only.
	PhysWorkers int
	// Seed drives all stochastic components.
	Seed int64
}

// DefaultConfig is a 4-rack × 16-host fleet with the paper's dynamic
// parameters (λ=0.8, Δ_update=15 s, Δ_gap=60 s, t_break=600 s).
func DefaultConfig() Config {
	return Config{
		Racks:                 4,
		HostsPerRack:          16,
		FanCount:              4,
		HostShape:             vmm.DefaultHostConfig(),
		Server:                thermal.DefaultServerParams(),
		Sensor:                thermal.DefaultSensorParams(),
		CRAC:                  cluster.DefaultCRAC(),
		RackSpreadC:           4.5,
		ThresholdC:            65,
		TickS:                 1,
		SampleS:               5,
		UpdateEveryS:          15,
		GapS:                  60,
		Lambda:                core.DefaultLambda,
		TBreakS:               600,
		CurveDeltaS:           core.DefaultCurveDelta,
		HorizonS:              1800,
		StaleAfterS:           45,
		ReanchorEpsC:          1.0,
		UncertaintyBaseC:      0.5,
		UncertaintyPerSC:      0.05,
		IngestBuffer:          0, // auto-sized per fleet shape; see the field doc
		MaxMigrationsPerRound: 1,
		Admission:             AdmissionPolicy{MaxQueueDepth: defaultQueueDepth},
		SourceAmbientC:        22,
		MaxHosts:              4096,
		Seed:                  1,
	}
}

// withDefaults fills zero-valued fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HostShape == (vmm.HostConfig{}) {
		c.HostShape = d.HostShape
	}
	if c.Server == (thermal.ServerParams{}) {
		c.Server = d.Server
	}
	if c.Sensor == (thermal.SensorParams{}) {
		c.Sensor = d.Sensor
	}
	if c.CRAC == (cluster.CRAC{}) {
		c.CRAC = d.CRAC
	}
	if c.FanCount == 0 {
		c.FanCount = d.FanCount
	}
	if c.ThresholdC == 0 {
		c.ThresholdC = d.ThresholdC
	}
	if c.TickS == 0 {
		c.TickS = d.TickS
	}
	if c.SampleS == 0 {
		c.SampleS = d.SampleS
	}
	if c.UpdateEveryS == 0 {
		c.UpdateEveryS = d.UpdateEveryS
	}
	if c.GapS == 0 {
		c.GapS = d.GapS
	}
	if c.Lambda == 0 {
		c.Lambda = d.Lambda
	}
	if c.TBreakS == 0 {
		c.TBreakS = d.TBreakS
	}
	if c.CurveDeltaS == 0 {
		c.CurveDeltaS = d.CurveDeltaS
	}
	if c.HorizonS == 0 {
		c.HorizonS = d.HorizonS
	}
	if c.StaleAfterS == 0 {
		c.StaleAfterS = 3 * c.UpdateEveryS
	}
	if c.EvictAfterS == 0 {
		c.EvictAfterS = 20 * c.StaleAfterS
	}
	if c.ReanchorEpsC == 0 {
		c.ReanchorEpsC = d.ReanchorEpsC
	}
	if c.UncertaintyBaseC == 0 {
		c.UncertaintyBaseC = d.UncertaintyBaseC
	}
	if c.UncertaintyPerSC == 0 {
		c.UncertaintyPerSC = d.UncertaintyPerSC
	}
	if c.IngestBuffer == 0 {
		c.IngestBuffer = 4096
	}
	if c.RackSpreadC == 0 {
		c.RackSpreadC = d.RackSpreadC
	}
	if c.SourceAmbientC == 0 {
		c.SourceAmbientC = d.SourceAmbientC
	}
	if c.MaxHosts == 0 {
		c.MaxHosts = d.MaxHosts
	}
	if c.AnchorCacheEntries == 0 {
		c.AnchorCacheEntries = 65536
	}
	q := anchorcache.DefaultQuantizer()
	if c.AnchorQuantUtil == 0 {
		c.AnchorQuantUtil = q.UtilQuant
	}
	if c.AnchorQuantMem == 0 {
		c.AnchorQuantMem = q.MemQuant
	}
	if c.AnchorQuantAmbientC == 0 {
		c.AnchorQuantAmbientC = q.AmbientQuantC
	}
	if c.AnchorWorkers == 0 {
		c.AnchorWorkers = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.PhysWorkers == 0 {
		c.PhysWorkers = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.Admission.MaxQueueDepth == 0 {
		c.Admission.MaxQueueDepth = defaultQueueDepth
	}
	return c
}

// defaultQueueDepth is the default pending-queue bound: deep enough that a
// fleetd seeding pass (hosts/2 submissions at 16k hosts) never trips it.
const defaultQueueDepth = 65536

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Racks < 1 || c.HostsPerRack < 1 {
		return fmt.Errorf("fleet: fleet shape %d×%d invalid", c.Racks, c.HostsPerRack)
	}
	if err := c.HostShape.Validate(); err != nil {
		return err
	}
	if err := c.CRAC.Validate(); err != nil {
		return err
	}
	if c.TickS <= 0 || c.SampleS <= 0 || c.UpdateEveryS <= 0 || c.GapS <= 0 {
		return fmt.Errorf("fleet: intervals must be > 0 (tick %v, sample %v, update %v, gap %v)",
			c.TickS, c.SampleS, c.UpdateEveryS, c.GapS)
	}
	if c.StaleAfterS <= 0 {
		return fmt.Errorf("fleet: stale-after must be > 0, got %v", c.StaleAfterS)
	}
	if c.IngestBuffer < 1 {
		return fmt.Errorf("fleet: ingest buffer %d < 1", c.IngestBuffer)
	}
	if c.MaxMigrationsPerRound < 0 {
		return fmt.Errorf("fleet: negative migration bound %d", c.MaxMigrationsPerRound)
	}
	if c.Admission.HeadroomBudgetC < 0 || math.IsNaN(c.Admission.HeadroomBudgetC) {
		return fmt.Errorf("fleet: headroom budget %v invalid", c.Admission.HeadroomBudgetC)
	}
	if c.Admission.MaxQueueDepth < -1 {
		return fmt.Errorf("fleet: queue depth %d < -1", c.Admission.MaxQueueDepth)
	}
	if c.Admission.MaxPlacementsPerRound < 0 {
		return fmt.Errorf("fleet: negative placement cap %d", c.Admission.MaxPlacementsPerRound)
	}
	if c.MaxHosts < 1 {
		return fmt.Errorf("fleet: max hosts %d < 1", c.MaxHosts)
	}
	if c.AnchorCacheEntries < 2 {
		return fmt.Errorf("fleet: anchor cache entries %d < 2", c.AnchorCacheEntries)
	}
	if c.AnchorQuantUtil < 0 || c.AnchorQuantMem < 0 || c.AnchorQuantAmbientC < 0 {
		return fmt.Errorf("fleet: negative anchor quantization (%v, %v, %v)",
			c.AnchorQuantUtil, c.AnchorQuantMem, c.AnchorQuantAmbientC)
	}
	if !c.AnchorCacheDisabled {
		// The cache's correctness invariant is that quantization error can
		// never push a session across the re-anchor threshold on its own: a
		// cached value within ε of exact can differ from a stored one by at
		// most 2ε, so ε must stay ≤ ReanchorEpsC/2 on BOTH cache paths.
		// Source path: misses predict at the (util, mem) bucket center, so
		// ε = sensitivity × half a configured bucket (the bound the property
		// test pins across the grid). Sim path: misses predict the actual
		// deployment snapshot under quarter-width load buckets (full-bucket
		// first-member error = half the source ε) plus half an ambient
		// bucket. Reject loud rather than oscillate silently: widening
		// buckets requires widening ReanchorEpsC to match.
		srcEps := c.AnchorQuantUtil/2*anchorUtilSensC + c.AnchorQuantMem/2*anchorMemSensC
		simEps := srcEps/2 + c.AnchorQuantAmbientC/2*anchorAmbientSens
		eps := max(srcEps, simEps)
		if lim := c.ReanchorEpsC / 2; eps > lim+1e-9 {
			return fmt.Errorf("fleet: anchor quantization epsilon %.3f°C (source %.3f, sim %.3f) exceeds "+
				"ReanchorEpsC/2 = %.3f°C (buckets util %v, mem %v, ambient %v°C at nominal sensitivities "+
				"%v/%v °C per unit, %v °C/°C); narrow the buckets or raise ReanchorEpsC",
				eps, srcEps, simEps, lim, c.AnchorQuantUtil, c.AnchorQuantMem, c.AnchorQuantAmbientC,
				anchorUtilSensC, anchorMemSensC, anchorAmbientSens)
		}
	}
	if c.AnchorWorkers < 1 {
		return fmt.Errorf("fleet: anchor workers %d < 1", c.AnchorWorkers)
	}
	if c.PhysWorkers < 1 {
		return fmt.Errorf("fleet: phys workers %d < 1", c.PhysWorkers)
	}
	return nil
}

// Nominal worst-case ψ_stable sensitivities used to bound anchor-cache
// quantization error in Validate: a full CPU-load swing is worth ~75 °C of
// die temperature on the reference server (the synthetic predictor's
// constant and the simulated substrate's full-load rise), memory activity a
// few degrees, and ambient tracks roughly 1:1.
const (
	anchorUtilSensC   = 75.0
	anchorMemSensC    = 12.0
	anchorAmbientSens = 1.0
)

// engineConfig maps the fleet configuration onto the session engine's. The
// engine round inherits the physics worker bound: the same cores that shard
// the rack ticks shard the per-host session pass at >= 1024 hosts.
func (c Config) engineConfig() engine.Config {
	return engine.Config{
		Lambda:           c.Lambda,
		UpdateEveryS:     c.UpdateEveryS,
		GapS:             c.GapS,
		TBreakS:          c.TBreakS,
		CurveDeltaS:      c.CurveDeltaS,
		StaleAfterS:      c.StaleAfterS,
		EvictAfterS:      c.EvictAfterS,
		ReanchorEpsC:     c.ReanchorEpsC,
		UncertaintyBaseC: c.UncertaintyBaseC,
		UncertaintyPerSC: c.UncertaintyPerSC,
		RoundWorkers:     c.PhysWorkers,
	}
}

// Prediction is one host's Δ_gap-ahead temperature estimate, as produced by
// the session engine.
type Prediction = engine.Prediction

// Hotspot is one host whose *predicted* temperature exceeds the threshold.
type Hotspot struct {
	HostID         string  `json:"host_id"`
	PredictedTempC float64 `json:"predicted_temp_c"`
	MarginC        float64 `json:"margin_c"`
	UncertaintyC   float64 `json:"uncertainty_c"`
}

// Snapshot is the control plane's published view after a round: what the
// fleet API serves and what schedulers consume.
//
// Snapshots are published as immutable, epoch-versioned generations:
// Hotspots and ViewSnapshot hand out the generation's maps and slices
// WITHOUT copying, so every field — including map contents — is strictly
// read-only for consumers. Mutating a returned map is a data race.
type Snapshot struct {
	Round      int
	SimTimeS   float64
	GapS       float64
	ThresholdC float64
	// Hotspots is sorted by descending margin.
	Hotspots []Hotspot
	// Predicted maps host → Δ_gap-ahead temperature (stale hosts excluded).
	Predicted map[string]float64
	// Uncertainty maps host → prediction uncertainty (stale hosts excluded).
	Uncertainty map[string]float64
	// Latest maps host → newest telemetry reading behind the round.
	Latest map[string]Reading
	// StaleHosts lists hosts degraded for stale telemetry, sorted.
	StaleHosts []string
}

// MigrationProposal asks to move a VM off a predicted hotspot.
type MigrationProposal struct {
	VMID       string
	FromHostID string
	ToHostID   string
	// MarginC is the source hotspot's margin when proposed.
	MarginC float64
}

// RoundReport carries one control round's metrics.
type RoundReport struct {
	Round    int
	SimTimeS float64
	// Latency is the wall-clock cost of the round (source advance + control).
	Latency time.Duration
	// ControlLatency is the control-plane share (ingest drain → decisions),
	// excluding the source advance (simulated physics, replay, or scrape).
	ControlLatency time.Duration
	Hosts          int
	SessionsLive   int
	// TelemetryDrained counts readings consumed this round; DroppedTotal and
	// SupersededTotal are the cumulative ingest drop / supersede counters.
	TelemetryDrained int
	DroppedTotal     int64
	SupersededTotal  int64
	StaleHosts       int
	MaxStalenessS    float64
	// AnchorFailures counts observed hosts left without a session because
	// the model produced an unusable ψ_stable anchor (graceful blindness
	// must be visible, never silent).
	AnchorFailures int
	// AnchorHits and AnchorMisses count this round's anchor-cache outcomes;
	// AnchorFanout is the (key-deduplicated) miss batch actually fanned
	// through the batch predictor — the number that used to equal the whole
	// tracked population every round. With the cache disabled every anchored
	// host counts as a miss.
	AnchorHits, AnchorMisses, AnchorFanout int
	// AnchorEvictedTotal is the cumulative anchor-cache eviction counter.
	AnchorEvictedTotal int64
	// Reanchored and Evicted count engine session-lifecycle events.
	Reanchored int
	Evicted    int
	// DiscardedHosts counts hosts dropped at the MaxHosts population bound
	// (source-driven fleets only).
	DiscardedHosts int
	// SourceError records a non-fatal source failure this round (live
	// sources fail transiently; the loop degrades instead of aborting).
	SourceError string
	// RecentErrors is a bounded ring of recent source/ingest failures
	// ("round N: ..."), newest last: one round's SourceError vanishes with
	// the next report, so without the ring a blackout that ended three
	// rounds ago is undiagnosable from logs. Empty (and omitted from JSON,
	// keeping round-driven traces byte-stable) on fleets that never erred.
	RecentErrors  []string `json:",omitempty"`
	Hotspots      int
	MaxPredictedC float64
	// Placements, Queued and Rejections count the round drain's typed
	// placement decisions (Queued requests stay parked for the next round).
	Placements    int
	Queued        int
	Rejections    int
	ProposedMoves int
	AppliedMoves  int
	// StreamApplied, StreamCreated and StreamDeferred count what the
	// streaming ingest path did since the previous round boundary (readings
	// applied on arrival, sessions created inline from warm anchors,
	// readings deferred to this round); StreamHotDrift counts hotspot-index
	// entries this round's full recompute had to correct at reconciliation.
	// All zero — and omitted from JSON, so round-driven traces are
	// byte-stable — when streaming ingest is off.
	StreamApplied  int64 `json:",omitempty"`
	StreamCreated  int64 `json:",omitempty"`
	StreamDeferred int64 `json:",omitempty"`
	StreamHotDrift int   `json:",omitempty"`
}

// Controller runs the closed loop. Create with New (simulated fleet) or
// NewWithSource (trace replay, live scraping); Submit/Ingest/Hotspots are
// safe to call concurrently with RunRound.
type Controller struct {
	cfg     Config
	predict BatchCasePredictor

	mu  sync.Mutex // guards sim, src, eng rounds, latest, order, proposals
	sim *fleetSim  // nil for source-driven controllers
	src telemetry.Source
	eng *engine.Engine
	// latest holds the newest reading per host; order is the deterministic
	// host iteration order (rack/slot for simulated fleets, sorted discovery
	// order for source-driven ones). orderDirty marks membership changes
	// (new host discovered, session evicted, host discarded) so stable
	// rounds skip rebuilding and re-sorting order entirely.
	latest     map[string]Reading
	order      []string
	orderDirty bool
	pendingP   []MigrationProposal // proposals awaiting reconciliation

	// cache memoizes ψ_stable per quantized anchor key (nil when disabled);
	// lastFanout is the previous round's miss-batch size, readable without
	// the round lock for the /metrics exposition.
	cache      *anchorcache.Cache
	lastFanout atomic.Int64

	// Reusable round buffers: the engine round appends into predBuf, the
	// anchor pass stages cache misses into caseBuf (one entry per distinct
	// key), the host→case fan-in into anchorRefs, and the batch results land
	// in anchorVals before filling anchorBuf and the cache.
	predBuf    []engine.Prediction
	caseBuf    []workload.Case
	caseKeys   []anchorcache.Key
	anchorRefs []anchorRef
	anchorVals []float64
	missByKey  map[anchorcache.Key]int
	anchorBuf  map[string]float64
	// Simulated-fleet anchor scratch (indexed like sim.byPos/order): the
	// rack-sharded scan fills inlets and deployment-fingerprint keys, the
	// serial cache pass records misses, and the sharded case build fills
	// missCase before staging — so the per-round anchor work that walks VM
	// and task state scales with cores instead of serializing.
	simInlets []float64
	simKeys   []anchorcache.Key
	missIdx   []int
	missKey   []anchorcache.Key
	missAmb   []float64
	missCase  []workload.Case
	missErr   []error

	// rankedHosts caches the coolest-first placement ranking for the round
	// it was built in (rankedRound); placements within one round share it.
	rankedHosts []string
	rankedRound int

	// plan is the per-round placement working set (see placePlan); the
	// wave* slices and pend index scratch are PlaceBatch's reusable
	// buffers, and planHot the plan rebuild's hotspot-set scratch.
	plan      placePlan
	planHot   map[string]bool
	waveCases []workload.Case
	waveEntry []int
	waveVMs   []waveVM
	waveVals  []float64
	pendIdx   []int
	pendNext  []int
	// oneSpec is PlaceNow's single-element batch scratch (zeroed after use
	// so a parked spec is not retained twice).
	oneSpec [1]workload.VMSpec

	pendMu  sync.Mutex
	pending []workload.VMSpec

	ingest *ingestPipeline
	// emit is the sink every reading goes through — ingest.push, optionally
	// wrapped by a TeeTelemetry observer. It is an atomic pointer because
	// Ingest (the HTTP push path) runs concurrently with rounds and with
	// TeeTelemetry swaps.
	emit atomic.Pointer[func(Reading) bool]

	// snaps owns the epoch-versioned snapshot generations (publication via
	// atomic pointer swap; retired generations recycled in place).
	snaps snapStore

	// stream is the streaming-ingest machinery (nil unless
	// Config.StreamingIngest); hotUpdatedNano is the wall-clock instant the
	// served hotspot set last refreshed, for the staleness gauge.
	stream         *streamState
	hotUpdatedNano atomic.Int64

	// recentErrs is the bounded ring of recent source/ingest failures
	// surfaced in RoundReport.RecentErrors (guarded by mu; nil until the
	// first failure, so clean fleets never pay for it); lastRejected is the
	// previous round's rejection total, for the per-round delta note.
	recentErrs   []string
	lastRejected int64

	round int
}

// recentErrRing bounds the recent-error ring: enough to span a multi-round
// outage in the stats line without turning reports into logs.
const recentErrRing = 8

// noteError records one failure in the recent-error ring (caller holds mu).
func (c *Controller) noteError(msg string) {
	if len(c.recentErrs) >= recentErrRing {
		copy(c.recentErrs, c.recentErrs[1:])
		c.recentErrs = c.recentErrs[:recentErrRing-1]
	}
	c.recentErrs = append(c.recentErrs, msg)
}

// New builds a controller over a freshly assembled simulated fleet.
func New(cfg Config, predict BatchCasePredictor) (*Controller, error) {
	autoBuffer := cfg.IngestBuffer == 0
	cfg = cfg.withDefaults()
	if autoBuffer {
		// The simulator emits one reading per host per sample interval; a
		// default-sized buffer smaller than one round's emissions would
		// silently starve the hosts beyond it of telemetry forever. Size the
		// default to the fleet's own round volume (an explicit IngestBuffer
		// is honored as given).
		perRound := int(math.Ceil(cfg.UpdateEveryS/cfg.SampleS)) + 1
		if need := cfg.Racks * cfg.HostsPerRack * perRound; need > cfg.IngestBuffer {
			cfg.IngestBuffer = need
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs, err := newFleetSim(cfg)
	if err != nil {
		return nil, err
	}
	c, err := newController(cfg, &simSource{fs: fs}, predict, cfg.Racks*cfg.HostsPerRack)
	if err != nil {
		return nil, err
	}
	c.sim = fs
	c.order = fs.order
	return c, nil
}

// NewWithSource builds a controller over an external telemetry source
// (trace replay, Prometheus scraping): no simulated fleet exists, hosts are
// discovered from the readings (bounded by MaxHosts), ψ_stable anchors are
// synthesized from observed utilization through the same batch predictor,
// and placement/migration — which need a substrate to act on — report
// rejections instead of acting.
func NewWithSource(cfg Config, src telemetry.Source, predict BatchCasePredictor) (*Controller, error) {
	autoBuffer := cfg.IngestBuffer == 0
	cfg = cfg.withDefaults()
	if autoBuffer {
		// Source populations are discovered, so size the default for the
		// worst case the MaxHosts bound admits: a full population sampled
		// every SampleS must fit one round's readings, or the hosts beyond
		// the buffer would be starved into staleness every round.
		perRound := int(math.Ceil(cfg.UpdateEveryS/cfg.SampleS)) + 1
		if need := cfg.MaxHosts * perRound; need > cfg.IngestBuffer {
			cfg.IngestBuffer = need
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("fleet: nil telemetry source")
	}
	return newController(cfg, src, predict, cfg.MaxHosts)
}

// anchorRef binds one host to the miss-batch case its anchor comes from.
type anchorRef struct {
	id      string
	caseIdx int
}

// newController wires the shared state; callers attach sim/order as needed.
// hostHint is the expected steady-state host population (the fleet shape,
// or the MaxHosts bound for discovered populations): the per-round maps the
// ingest drain fills are pre-sized from it so a cold start does not rehash
// its way up to the full population on the first rounds.
func newController(cfg Config, src telemetry.Source, predict BatchCasePredictor, hostHint int) (*Controller, error) {
	if predict == nil {
		return nil, errors.New("fleet: nil predictor")
	}
	eng, err := engine.New(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	if hostHint < 0 {
		hostHint = 0
	}
	c := &Controller{
		cfg:       cfg,
		predict:   predict,
		src:       src,
		eng:       eng,
		latest:    make(map[string]Reading, hostHint),
		missByKey: make(map[anchorcache.Key]int),
		anchorBuf: make(map[string]float64, hostHint),
		ingest:    newIngestPipeline(cfg.IngestBuffer, hostHint),
	}
	if cfg.StreamingIngest {
		c.stream = newStreamState(c)
	}
	push := c.ingest.push
	c.emit.Store(&push)
	if !cfg.AnchorCacheDisabled {
		cache, err := anchorcache.New(anchorcache.Config{
			MaxEntries: cfg.AnchorCacheEntries,
			Quant: anchorcache.Quantizer{
				UtilQuant:     cfg.AnchorQuantUtil,
				MemQuant:      cfg.AnchorQuantMem,
				AmbientQuantC: cfg.AnchorQuantAmbientC,
			},
		})
		if err != nil {
			return nil, err
		}
		c.cache = cache
	}
	return c, nil
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// SourceName reports the telemetry source kind ("sim", "trace", "scrape").
func (c *Controller) SourceName() string { return c.src.Name() }

// Engine exposes the session engine (for observability surfaces).
func (c *Controller) Engine() *engine.Engine { return c.eng }

// Hosts returns every tracked host id in iteration order.
func (c *Controller) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Submit queues a VM request for thermal-aware placement next round. It
// reports false when the admission queue is at its depth bound (or queueing
// is disabled) and the request was refused.
func (c *Controller) Submit(spec workload.VMSpec) bool {
	depth := c.cfg.Admission.MaxQueueDepth
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	if depth < 0 || len(c.pending) >= depth {
		return false
	}
	c.pending = append(c.pending, spec)
	return true
}

// Ingest offers an externally produced telemetry reading to the pipeline
// (the path a real monitoring agent would use). It reports false when the
// bounded buffer is full and the reading was dropped. Pushed readings go
// through the same emit sink as source-driven ones, so a TeeTelemetry
// capture (fleetd -record) includes them.
func (c *Controller) Ingest(r Reading) bool { return (*c.emit.Load())(r) }

// IngestStats returns the cumulative ingest pipeline counters.
func (c *Controller) IngestStats() (received, dropped, superseded int64) {
	return c.ingest.stats()
}

// IngestRejected returns the cumulative per-reason counts of readings
// refused for implausible temperatures (indexed by telemetry.RejectReason)
// and their total. Safe to call concurrently with everything.
func (c *Controller) IngestRejected() (byReason [telemetry.NumRejectReasons]int64, total int64) {
	byReason = c.ingest.rejectedByReason()
	for _, v := range byReason {
		total += v
	}
	return byReason, total
}

// TeeTelemetry attaches an observer that sees every reading offered to the
// ingest pipeline — source emissions and HTTP pushes alike. It is the
// capture path behind `vmtherm-fleetd -record`, feeding a
// telemetry.Recorder whose output replays through `-source trace`. The tee
// sees readings before the bounded buffer, so a capture is complete even
// when the pipeline drops. Pass nil to detach. The swap itself is safe at
// any time; the tee must be safe for the caller's concurrency (a plain
// Recorder wants the tee attached before rounds start and detached after
// they stop).
func (c *Controller) TeeTelemetry(tee func(Reading) bool) {
	var emit func(Reading) bool
	if tee == nil {
		emit = c.ingest.push
	} else {
		emit = func(r Reading) bool {
			tee(r)
			return c.ingest.push(r)
		}
	}
	c.emit.Store(&emit)
}

// AnchorCacheStats reports the anchor cache's cumulative counters, the last
// round's miss-batch fan-out size, and whether the cache is enabled. Safe
// to call concurrently with RunRound (the /metrics exposition does).
func (c *Controller) AnchorCacheStats() (st anchorcache.Stats, lastFanout int, enabled bool) {
	if c.cache == nil {
		return anchorcache.Stats{}, int(c.lastFanout.Load()), false
	}
	return c.cache.Stats(), int(c.lastFanout.Load()), true
}

// InvalidateAnchorCache drops every memoized anchor and bumps the cache
// epoch. Call it whenever the prediction model or the feature configuration
// changes underneath the cached values (e.g. a model hot-swap): the next
// round re-predicts every anchor.
func (c *Controller) InvalidateAnchorCache() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cache != nil {
		c.cache.Invalidate()
	}
}

// ErrNoAnchorCache is returned by the cache persistence hooks when the
// anchor cache is disabled.
var ErrNoAnchorCache = errors.New("fleet: anchor cache disabled")

// SaveAnchorCache serializes the anchor cache (fleetd -anchor-cache-file):
// a restarted controller facing the same population warms instantly from
// the file instead of re-predicting every anchor. Safe to call between or
// concurrently with rounds. The file is only valid for the model that
// produced the cached anchors — pair it with the model artifact.
func (c *Controller) SaveAnchorCache(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cache == nil {
		return ErrNoAnchorCache
	}
	return c.cache.Save(w)
}

// LoadAnchorCache restores a cache serialized by SaveAnchorCache, returning
// the number of anchors restored. The saved quantizer must match the
// controller's configuration exactly.
func (c *Controller) LoadAnchorCache(r io.Reader) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cache == nil {
		return 0, ErrNoAnchorCache
	}
	return c.cache.Load(r)
}

// PlaceNow synchronously places one VM with the thermal-aware policy against
// the controller's current state and applies the decision. It is the
// POST /v1/fleet/place path — a thin adapter over the batch engine, so
// sequential single-VM calls within one round share the same placement plan
// (ranking, hotspot flags, consumed headroom) a batch would.
func (c *Controller) PlaceNow(spec workload.VMSpec) (PlacementDecision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.oneSpec[0] = spec
	decs, err := c.placeBatchLocked(c.oneSpec[:])
	c.oneSpec[0] = workload.VMSpec{}
	if err != nil {
		return PlacementDecision{}, err
	}
	return decs[0], nil
}

// PlaceAt force-places a VM on a named host, bypassing the thermal policy —
// the deterministic seeding path for tests and demos. Simulated fleets only.
func (c *Controller) PlaceAt(hostID string, spec workload.VMSpec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return ErrNoSubstrate
	}
	return c.sim.place(hostID, spec)
}

// Run executes n rounds and returns their reports.
func (c *Controller) Run(n int) ([]RoundReport, error) {
	out := make([]RoundReport, 0, n)
	for i := 0; i < n; i++ {
		rep, err := c.RunRound()
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// RunRound advances the telemetry source by Δ_update seconds and executes
// one control round: drain telemetry → batch ψ_stable anchors → engine
// round (calibrate / re-anchor / predict / degrade / evict) → hotspot map →
// reconcile migrations → place queued VMs → publish snapshot.
func (c *Controller) RunRound() (RoundReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	roundStart := time.Now()

	// 1. Telemetry: the source runs for one calibration interval, streaming
	// readings into the bounded pipeline as it goes. Simulator failures are
	// bugs and abort; live sources (scrape) fail transiently, so the loop
	// records the error and lets staleness degradation do its job.
	var sourceErr string
	if err := c.src.Advance(c.cfg.UpdateEveryS, *c.emit.Load()); err != nil {
		if c.sim != nil {
			return RoundReport{}, err
		}
		sourceErr = err.Error()
		c.noteError(fmt.Sprintf("round %d: source: %s", c.round+1, sourceErr))
	}
	now := c.src.NowS()
	ctrlStart := time.Now()

	// 2. Ingest: drain the pipeline, newest reading per host wins. Readings
	// for hosts a simulated fleet does not own are discarded, and discovered
	// populations are bounded by MaxHosts, so a misbehaving producer cannot
	// grow c.latest (or the published snapshot) without bound — the
	// pipeline's memory bound must hold end to end. Membership work (the
	// foreign-host sweep, the order rebuild + sort) runs only on rounds
	// where a previously unseen host actually appeared or one was dropped.
	drained, newHosts := c.ingest.drainInto(c.latest)
	if newHosts {
		c.orderDirty = true
	}
	if _, rej := c.IngestRejected(); rej > c.lastRejected {
		c.noteError(fmt.Sprintf("round %d: ingest: rejected %d implausible readings", c.round+1, rej-c.lastRejected))
		c.lastRejected = rej
	}
	var discarded int
	if c.sim != nil {
		if newHosts {
			for id := range c.latest {
				if _, ok := c.sim.hosts[id]; !ok {
					delete(c.latest, id)
				}
			}
		}
	} else {
		discarded = c.refreshDiscoveredHosts()
	}

	// 3. Anchors: resolve ψ_stable per tracked host — quantized-cache hits
	// directly, misses through one (deduplicated, worker-sharded) batch
	// prediction over current deployments (simulated fleets) or observed
	// utilization (source-driven fleets).
	anchors, anchorHits, anchorMisses, err := c.anchors()
	if err != nil {
		return RoundReport{}, err
	}
	fanout := len(c.caseBuf)
	c.lastFanout.Store(int64(fanout))

	// 4. Engine round: sessions calibrate, re-anchor, predict, degrade and
	// evict in one pass over the reusable prediction buffer.
	var st engine.RoundStats
	c.predBuf, st = c.eng.Round(c.predBuf[:0], now, c.order, c.latest, anchors)
	preds := c.predBuf
	if st.Evicted > 0 {
		// Evicted sessions left c.latest too: membership changed.
		c.orderDirty = true
	}

	// 5. Hotspot map from *predicted* temperatures, built into the next
	// snapshot generation: a recycled retired generation whose maps are
	// rewritten in place (only changed entries), so the warm round's
	// publication allocates nothing.
	gen := c.snaps.writable(len(c.order))
	snap := &gen.snap
	c.round++
	snap.Round = c.round
	snap.SimTimeS = now
	snap.GapS = c.cfg.GapS
	snap.ThresholdC = c.cfg.ThresholdC
	snap.StaleHosts = snap.StaleHosts[:0]
	snap.Hotspots = snap.Hotspots[:0]
	for i := range preds {
		p := &preds[i]
		if p.Stale {
			snap.StaleHosts = append(snap.StaleHosts, p.HostID)
			continue
		}
		if p.TempC > c.cfg.ThresholdC {
			snap.Hotspots = append(snap.Hotspots, Hotspot{
				HostID:         p.HostID,
				PredictedTempC: p.TempC,
				MarginC:        p.TempC - c.cfg.ThresholdC,
				UncertaintyC:   p.UncertaintyC,
			})
		}
	}
	slices.Sort(snap.StaleHosts)
	sortHotspots(snap.Hotspots)
	if c.cfg.PhysWorkers > 1 && len(c.order) >= simParallelMinHosts {
		// The three map rewrites touch disjoint maps and only read the
		// prediction buffer / latest readings; at fleet scale they overlap.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			rewriteFloats(snap.Predicted, preds, func(p *Prediction) float64 { return p.TempC })
		}()
		go func() {
			defer wg.Done()
			rewriteFloats(snap.Uncertainty, preds, func(p *Prediction) float64 { return p.UncertaintyC })
		}()
		rewriteLatest(snap.Latest, c.latest)
		wg.Wait()
	} else {
		rewriteFloats(snap.Predicted, preds, func(p *Prediction) float64 { return p.TempC })
		rewriteFloats(snap.Uncertainty, preds, func(p *Prediction) float64 { return p.UncertaintyC })
		rewriteLatest(snap.Latest, c.latest)
	}
	predicted, hotspots := snap.Predicted, snap.Hotspots

	// 5b. Streaming reconciliation: fold the authoritative recompute into
	// the incremental hotspot index, counting every entry the streaming
	// path had let drift. After this the index and the snapshot agree
	// bit-for-bit (until the next push moves the index ahead again).
	var sd streamDelta
	if c.stream != nil {
		sd = c.stream.roundDelta()
		sd.drift = c.stream.idx.reconcile(snap.Hotspots, c.stream.reconSeen)
	}

	// 6. Reconciliation: apply last round's still-valid proposals, bounded
	// per round, then derive fresh proposals from this round's map.
	// Source-driven fleets have no substrate to act on; both passes no-op.
	var applied int
	var proposals []MigrationProposal
	if c.sim != nil {
		applied = c.reconcile(predicted)
		proposals = c.propose(hotspots, predicted)
		c.pendingP = proposals
	}

	// 7. Publish the generation BEFORE placing queued VMs: placement avoids
	// predicted hotspots by consulting the published map, which must be this
	// round's, not last round's. From here on the generation is immutable.
	c.snaps.publish(gen)
	c.hotUpdatedNano.Store(time.Now().UnixNano())

	// 8. Placement of queued VM requests against the fresh hotspot map: one
	// batch call amortizes the ranking, shortlist and anchor-case prediction
	// across the whole drained queue. Requests the admission policy parks
	// (headroom, per-round cap) re-enter c.pending for the next round.
	c.pendMu.Lock()
	queue := c.pending
	c.pending = nil
	c.pendMu.Unlock()
	var placements, queued, rejections int
	if len(queue) > 0 {
		decs, err := c.placeBatchLocked(queue)
		if err != nil {
			return RoundReport{}, err
		}
		for i := range decs {
			switch decs[i].Status {
			case Placed:
				placements++
			case Queued:
				queued++
			default:
				rejections++
			}
		}
	}

	_, droppedTotal, supersededTotal := c.ingest.stats()
	var anchorEvicted int64
	if c.cache != nil {
		anchorEvicted = c.cache.Stats().Evicted
	}
	maxPred := math.Inf(-1)
	for _, v := range predicted {
		if v > maxPred {
			maxPred = v
		}
	}
	if math.IsInf(maxPred, -1) {
		maxPred = 0
	}
	return RoundReport{
		Round:              c.round,
		SimTimeS:           now,
		Latency:            time.Since(roundStart),
		ControlLatency:     time.Since(ctrlStart),
		Hosts:              len(c.order),
		SessionsLive:       st.Live,
		TelemetryDrained:   drained,
		DroppedTotal:       droppedTotal,
		SupersededTotal:    supersededTotal,
		StaleHosts:         len(snap.StaleHosts),
		MaxStalenessS:      st.MaxStalenessS,
		AnchorFailures:     st.AnchorFailures,
		AnchorHits:         anchorHits,
		AnchorMisses:       anchorMisses,
		AnchorFanout:       fanout,
		AnchorEvictedTotal: anchorEvicted,
		Reanchored:         st.Reanchored,
		Evicted:            st.Evicted,
		DiscardedHosts:     discarded,
		SourceError:        sourceErr,
		RecentErrors:       slices.Clone(c.recentErrs),
		Hotspots:           len(hotspots),
		MaxPredictedC:      maxPred,
		Placements:         placements,
		Queued:             queued,
		Rejections:         rejections,
		ProposedMoves:      len(proposals),
		AppliedMoves:       applied,
		StreamApplied:      sd.applied,
		StreamCreated:      sd.created,
		StreamDeferred:     sd.deferred,
		StreamHotDrift:     sd.drift,
	}, nil
}

// refreshDiscoveredHosts rebuilds the deterministic host order from the
// observed population, enforcing the MaxHosts bound: lexicographically
// excess hosts are forgotten (reading and session) and counted. On stable
// rounds — no new host drained, no session evicted, population size
// unchanged — the membership-dirty flag is clear and the O(n log n)
// rebuild + sort is skipped entirely.
func (c *Controller) refreshDiscoveredHosts() (discarded int) {
	if !c.orderDirty && len(c.latest) == len(c.order) {
		return 0
	}
	c.order = c.order[:0]
	for id := range c.latest {
		c.order = append(c.order, id)
	}
	slices.Sort(c.order)
	if len(c.order) > c.cfg.MaxHosts {
		for _, id := range c.order[c.cfg.MaxHosts:] {
			delete(c.latest, id)
			c.eng.Delete(id)
			discarded++
		}
		c.order = c.order[:c.cfg.MaxHosts]
	}
	c.orderDirty = false
	return discarded
}

// anchors batch-predicts ψ_stable for every tracked host into the reusable
// anchor map. With the cache enabled, only quantized-key misses are staged
// (deduplicated per key) and fanned through the batch predictor; a fully
// warm round touches the predictor not at all and allocates nothing. It
// returns the round's cache hit and miss counts (with the cache disabled,
// every anchored host counts as a miss).
func (c *Controller) anchors() (anchors map[string]float64, hits, misses int, err error) {
	clear(c.anchorBuf)
	c.caseBuf = c.caseBuf[:0]
	c.caseKeys = c.caseKeys[:0]
	c.anchorRefs = c.anchorRefs[:0]
	clear(c.missByKey)
	if c.sim != nil {
		if err := c.simAnchorCases(&hits); err != nil {
			return nil, 0, 0, err
		}
	} else {
		c.sourceAnchorCases(&hits)
	}
	misses = len(c.anchorRefs)
	if len(c.caseBuf) > 0 {
		if cap(c.anchorVals) < len(c.caseBuf) {
			c.anchorVals = make([]float64, len(c.caseBuf))
		}
		vals := c.anchorVals[:len(c.caseBuf)]
		if err := c.predictMissBatch(c.caseBuf, vals); err != nil {
			return nil, 0, 0, fmt.Errorf("fleet: stable anchors: %w", err)
		}
		if c.cache != nil {
			for i, k := range c.caseKeys {
				// Never memoize a degenerate prediction: a NaN anchor must
				// stay a per-round failure, not a cached one.
				if !math.IsNaN(vals[i]) {
					c.cache.Put(k, vals[i])
				}
			}
		}
		for _, ref := range c.anchorRefs {
			c.anchorBuf[ref.id] = vals[ref.caseIdx]
		}
	}
	return c.anchorBuf, hits, misses, nil
}

// stageMiss registers a host whose anchor must be predicted this round,
// staging its case into the miss batch. Key-based deduplication lives in
// sourceAnchorCases (the only path where two hosts can share a key —
// simulated fingerprints embed fleet-unique VM ids).
func (c *Controller) stageMiss(id string, key anchorcache.Key, cse workload.Case) {
	idx := len(c.caseBuf)
	c.caseBuf = append(c.caseBuf, cse)
	c.caseKeys = append(c.caseKeys, key)
	c.anchorRefs = append(c.anchorRefs, anchorRef{id: id, caseIdx: idx})
}

// predictMissBatch evaluates the staged miss cases into out, sharding the
// batch across the configured worker bound when it is large enough to
// amortize the goroutines — cold rounds (first sight of a fleet, mass
// re-anchor after migration waves) scale with cores instead of serializing
// behind one kernel pass.
func (c *Controller) predictMissBatch(cases []workload.Case, out []float64) error {
	// Below this batch size per worker the goroutine overhead outweighs the
	// kernel work.
	const minShard = 16
	workers := c.cfg.AnchorWorkers
	if maxW := (len(cases) + minShard - 1) / minShard; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		vals, err := c.predict(cases)
		if err != nil {
			return err
		}
		if len(vals) != len(cases) {
			return fmt.Errorf("fleet: %d anchors for %d cases", len(vals), len(cases))
		}
		copy(out, vals)
		return nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	chunk := (len(cases) + workers - 1) / workers
	for lo := 0; lo < len(cases); lo += chunk {
		hi := min(lo+chunk, len(cases))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			vals, err := c.predict(cases[lo:hi])
			if err == nil && len(vals) != hi-lo {
				err = fmt.Errorf("fleet: %d anchors for %d cases", len(vals), hi-lo)
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			copy(out[lo:hi], vals)
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}

// simAnchorCases resolves every occupied host's anchor — from the cache
// when its deployment fingerprint (VM set + lifecycle states + quantized
// util/mem/inlet) is already memoized, else by staging its current
// deployment as a miss case. Idle hosts anchor at their inlet temperature
// (an idle machine settles at ambient) without touching cache or model.
//
// The pass is phased so the per-host VM/task walks scale with cores at
// fleet size: a rack-sharded scan derives inlets and fingerprint keys, the
// serial cache pass consumes them (map access and hit accounting stay
// single-threaded), a sharded build constructs the miss deployment cases,
// and a final serial sweep stages them in host order. Values, staging
// order and cache state are identical to the former single loop.
func (c *Controller) simAnchorCases(hits *int) error {
	var q anchorcache.Quantizer
	if c.cache != nil {
		// The sim path predicts a miss at the host's actual deployment
		// snapshot (task fractions cannot be re-centered), so the cached
		// value can diverge from another bucket member by up to a FULL
		// bucket — unlike the source path, which predicts at the bucket
		// center and is off by at most half. Quartering the load bucket
		// widths caps the sim load error at half the source epsilon, which
		// leaves room for the half-ambient-bucket share so the composed sim
		// error stays within the ReanchorEpsC/2 bound Config.Validate
		// enforces.
		q = c.cache.Quant()
		q.UtilQuant /= 4
		q.MemQuant /= 4
	}
	if err := c.simAnchorScan(q); err != nil {
		return err
	}
	c.missIdx = c.missIdx[:0]
	c.missKey = c.missKey[:0]
	c.missAmb = c.missAmb[:0]
	for i, id := range c.order {
		sh := c.sim.byPos[i]
		inlet := c.simInlets[i]
		if sh.host.NumVMs() == 0 {
			c.anchorBuf[id] = inlet
			continue
		}
		if c.cache == nil {
			c.missIdx = append(c.missIdx, i)
			c.missKey = append(c.missKey, 0)
			c.missAmb = append(c.missAmb, inlet)
			continue
		}
		key := c.simKeys[i]
		if v, ok := c.cache.Get(key); ok {
			c.anchorBuf[id] = v
			*hits++
			continue
		}
		// Predict at the inlet bucket's center so the cached value serves
		// the whole bucket with at most half a bucket of ambient error.
		_, ambCenter := q.Ambient(inlet)
		c.missIdx = append(c.missIdx, i)
		c.missKey = append(c.missKey, key)
		c.missAmb = append(c.missAmb, ambCenter)
	}
	if err := c.buildMissCases(); err != nil {
		return err
	}
	for mi, i := range c.missIdx {
		c.stageMiss(c.order[i], c.missKey[mi], c.missCase[mi])
	}
	return nil
}

// simAnchorScan fills the per-host inlet and fingerprint scratch,
// rack-sharded at scale (pure computation over rack-local state; every
// worker writes disjoint indices).
func (c *Controller) simAnchorScan(q anchorcache.Quantizer) error {
	fs := c.sim
	n := len(c.order)
	if cap(c.simInlets) < n {
		c.simInlets = make([]float64, n)
		c.simKeys = make([]anchorcache.Key, n)
	}
	c.simInlets = c.simInlets[:n]
	c.simKeys = c.simKeys[:n]
	if c.cfg.PhysWorkers > 1 && n >= simParallelMinHosts {
		return fs.forEachRackShard(func(ri int) error { return c.scanRackAnchors(ri, q) })
	}
	for ri := range fs.racks {
		if err := c.scanRackAnchors(ri, q); err != nil {
			return err
		}
	}
	return nil
}

// scanRackAnchors is one rack's share of simAnchorScan.
func (c *Controller) scanRackAnchors(ri int, q anchorcache.Quantizer) error {
	fs := c.sim
	span := fs.rackSpan[ri]
	for i := span[0]; i < span[1]; i++ {
		sh := fs.byPos[i]
		inlet, err := fs.inletAt(sh)
		if err != nil {
			return err
		}
		c.simInlets[i] = inlet
		if c.cache != nil && sh.host.NumVMs() > 0 {
			c.simKeys[i] = simAnchorKey(sh, q, inlet)
		}
	}
	return nil
}

// simAnchorKey derives a host's deployment fingerprint: the cache key that
// changes exactly when something the feature encoder can see changes.
func simAnchorKey(sh *simHost, q anchorcache.Quantizer, inlet float64) anchorcache.Key {
	ambBucket, _ := q.Ambient(inlet)
	util, mem := sh.host.Loads()
	bu, bm := q.UtilMemBuckets(util, mem)
	h := anchorcache.NewHash()
	for vi := 0; vi < sh.host.NumVMs(); vi++ {
		vm := sh.host.VMAt(vi)
		// The fingerprint must cover everything the feature encoder can
		// see in the deployment snapshot: identity and lifecycle state,
		// plus the per-VM load *distribution* (raw task-fraction sum and
		// max, quantized) — dynamic profiles can redistribute load
		// between tasks without moving total host utilization, and
		// features like task_cpu_max follow the distribution.
		cpuSum, cpuMax := vm.TaskCPUStats()
		h = h.String(vm.ID()).Uint64(uint64(vm.State())).
			Uint64(q.UtilBucket(cpuSum)).Uint64(q.UtilBucket(cpuMax))
	}
	return h.Uint64(ambBucket).Uint64(bu).Uint64(bm).Key()
}

// buildMissCases constructs the recorded misses' deployment cases into
// missCase, sharded across the physics pool at scale: each build only reads
// host/VM state and writes its own slot. The ambient is the value the
// cache pass chose (bucket center with the cache on, the host's inlet
// otherwise) — the former per-miss InletTemp recomputation was an O(rack)
// utilization sweep per case, redundant with the per-tick inlet cache.
func (c *Controller) buildMissCases() error {
	n := len(c.missIdx)
	if n == 0 {
		return nil
	}
	if cap(c.missCase) < n {
		c.missCase = make([]workload.Case, n)
		c.missErr = make([]error, n)
	}
	c.missCase = c.missCase[:n]
	c.missErr = c.missErr[:n]
	build := func(lo, hi int) {
		for mi := lo; mi < hi; mi++ {
			sh := c.sim.byPos[c.missIdx[mi]]
			cse, err := cluster.HostStateCase(sh.host, c.cfg.FanCount, c.missAmb[mi], nil)
			c.missCase[mi], c.missErr[mi] = cse, err
		}
	}
	// Below this many cases per worker the goroutine overhead dominates.
	const minShard = 64
	workers := c.cfg.PhysWorkers
	if maxW := (n + minShard - 1) / minShard; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		build(0, n)
	} else {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += chunk {
			hi := min(lo+chunk, n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				build(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	for mi, err := range c.missErr {
		if err != nil {
			return fmt.Errorf("fleet: anchor case for %s: %w", c.order[c.missIdx[mi]], err)
		}
	}
	return nil
}

// sourceAnchorCases synthesizes an anchor case per observed host from its
// latest reading: the observed utilization and memory activity become an
// equivalent single-VM deployment on the configured host shape, so real
// (replayed or scraped) telemetry flows through the same trained model as
// simulated fleets — the deployment loop Ilager et al. run against
// monitored hosts. With the cache enabled, observations are quantized into
// (util, memFrac) buckets first: bucket hits skip the predictor entirely
// and bucket misses are predicted once at the bucket center.
func (c *Controller) sourceAnchorCases(hits *int) {
	var q anchorcache.Quantizer
	if c.cache != nil {
		q = c.cache.Quant()
	}
	for _, id := range c.order {
		r, ok := c.latest[id]
		if !ok {
			continue
		}
		util := telemetry.Clamp01(r.Util)
		mem := telemetry.Clamp01(r.MemFrac)
		if c.cache == nil {
			c.stageMiss(id, 0, utilizationCase(c.cfg, util, mem))
			continue
		}
		key, qUtil, qMem := q.UtilMem(util, mem)
		if v, ok := c.cache.Get(key); ok {
			c.anchorBuf[id] = v
			*hits++
			continue
		}
		if prev, ok := c.missByKey[key]; ok {
			// Another host already staged this bucket this round; share its
			// prediction without rebuilding the case.
			c.anchorRefs = append(c.anchorRefs, anchorRef{id: id, caseIdx: prev})
			continue
		}
		c.missByKey[key] = len(c.caseBuf)
		c.stageMiss(id, key, utilizationCase(c.cfg, qUtil, qMem))
	}
}

// utilizationCase encodes an observed (util, memFrac) load as a workload
// case on the configured host shape: one task per physical core, each at
// the observed utilization fraction, with memFrac of installed memory
// active. The deployment structure (VM count, vCPUs, task count) is fixed —
// only the continuous load values vary — so every encoded feature is
// continuous (Lipschitz) in the observation. That continuity is what lets
// the anchor cache bound cached-vs-exact divergence by the quantization
// bucket width: a structure that jumped at integer demand boundaries would
// put a bucket's center and its members on different sides of a step.
func utilizationCase(cfg Config, util, memFrac float64) workload.Case {
	util = telemetry.Clamp01(util)
	memFrac = telemetry.Clamp01(memFrac)
	cores := cfg.HostShape.Cores
	memGB := memFrac * cfg.HostShape.MemoryGB
	if memGB < 1 {
		memGB = 1
	}
	vm := workload.VMSpec{
		ID:     "observed",
		Config: vmm.VMConfig{VCPUs: cores, MemoryGB: memGB},
	}
	for i := 0; i < cores; i++ {
		vm.Tasks = append(vm.Tasks, workload.TaskSpec{Task: vmm.Task{
			ID:          "observed-t" + strconv.Itoa(i),
			Class:       vmm.CPUBound,
			CPUFraction: util,
			MemGB:       memGB / float64(cores) / 2,
		}})
	}
	return workload.Case{
		Name:     "observed",
		Host:     cfg.HostShape,
		FanCount: cfg.FanCount,
		AmbientC: cfg.SourceAmbientC,
		VMs:      []workload.VMSpec{vm},
	}
}

// reconcile applies pending migration proposals that are still valid — the
// source must still be predicted hot — bounded by MaxMigrationsPerRound.
func (c *Controller) reconcile(predicted map[string]float64) (applied int) {
	for _, p := range c.pendingP {
		if applied >= c.cfg.MaxMigrationsPerRound {
			break
		}
		if predicted[p.FromHostID] <= c.cfg.ThresholdC {
			continue // cooled off on its own; desired state already met
		}
		if err := c.sim.migrate(p.VMID, p.FromHostID, p.ToHostID); err != nil {
			continue // VM gone or target filled up: drop the proposal
		}
		// Force a re-anchor next round: both hosts' deployments changed.
		c.eng.Delete(p.FromHostID)
		c.eng.Delete(p.ToHostID)
		applied++
	}
	return applied
}

// propose derives migration proposals from the hotspot map: for each hotspot
// (hottest first), move its largest VM to the coolest non-hot host that can
// admit it. Proposals are bounded — 4× what reconcile can apply per round,
// or 64 hottest-first in observe-only mode (MaxMigrationsPerRound = 0) —
// because each proposal costs an O(hosts) target scan and the map is
// recomputed fresh every round anyway: at datacenter scale an unbounded
// pass over thousands of hotspots would be quadratic for proposals that
// could never be acted on.
func (c *Controller) propose(hotspots []Hotspot, predicted map[string]float64) []MigrationProposal {
	maxProposals := 4 * c.cfg.MaxMigrationsPerRound
	if c.cfg.MaxMigrationsPerRound == 0 {
		maxProposals = 64
	} else if maxProposals < 8 {
		maxProposals = 8
	}
	var out []MigrationProposal
	hot := make(map[string]bool, len(hotspots))
	for _, h := range hotspots {
		hot[h.HostID] = true
	}
	for _, h := range hotspots {
		if len(out) >= maxProposals {
			break
		}
		vm, err := c.sim.largestVM(h.HostID)
		if err != nil {
			continue // nothing running to move (e.g. hot purely from environment)
		}
		target := ""
		best := math.Inf(1)
		for _, id := range c.order {
			if id == h.HostID || hot[id] {
				continue
			}
			sh := c.sim.hosts[id]
			if !canAdmitVM(sh.host, vm.Config()) {
				continue
			}
			t, ok := predicted[id]
			if !ok {
				continue // stale or unobserved: never migrate blind
			}
			if t < best {
				best, target = t, id
			}
		}
		if target == "" {
			continue
		}
		out = append(out, MigrationProposal{
			VMID:       vm.ID(),
			FromHostID: h.HostID,
			ToHostID:   target,
			MarginC:    h.MarginC,
		})
	}
	return out
}

// rankedByPredicted returns every tracked host sorted coolest-first by the
// published Δ_gap-ahead prediction (unpredicted hosts — stale telemetry —
// last: never place blind when an observed host can admit; ties broken by
// id). The ranking is cached per round: predictions only move when a round
// publishes, so every placement within a round shares one O(n log n) sort.
func (c *Controller) rankedByPredicted() []string {
	if c.rankedRound == c.round && len(c.rankedHosts) == len(c.order) {
		return c.rankedHosts
	}
	var predictedNow map[string]float64
	if snap := c.publishedSnapshot(); snap != nil {
		predictedNow = snap.Predicted
	}
	c.rankedHosts = append(c.rankedHosts[:0], c.order...)
	rank := func(id string) float64 {
		if v, ok := predictedNow[id]; ok {
			return v
		}
		return math.Inf(1)
	}
	slices.SortFunc(c.rankedHosts, func(a, b string) int {
		ra, rb := rank(a), rank(b)
		if ra != rb {
			if ra < rb {
				return -1
			}
			return 1
		}
		return strings.Compare(a, b)
	})
	c.rankedRound = c.round
	return c.rankedHosts
}

// canAdmitVM checks capacity without mutating the host.
func canAdmitVM(h *vmm.Host, cfg vmm.VMConfig) bool {
	hc := h.Config()
	if h.PlacedVCPUs()+float64(cfg.VCPUs) > float64(hc.Cores)*hc.CPUOvercommit {
		return false
	}
	return h.PlacedMemGB()+cfg.MemoryGB <= hc.MemoryGB
}

// ErrNoCapacity is the RejectNoCapacity reason when no host can admit a VM.
var ErrNoCapacity = errors.New("fleet: no host with capacity")

// ErrNoSubstrate is returned for placement/migration operations on a
// source-driven controller: real telemetry can be observed and predicted,
// but there is no simulated fleet to mutate.
var ErrNoSubstrate = errors.New("fleet: source-driven controller has no placement substrate")

// SetTelemetryMuted simulates a monitoring-agent outage on one host: while
// muted the host keeps running (and heating) but emits no telemetry, so the
// control plane must degrade it to stale. Simulated fleets only.
func (c *Controller) SetTelemetryMuted(hostID string, muted bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return ErrNoSubstrate
	}
	sh, ok := c.sim.hosts[hostID]
	if !ok {
		return fmt.Errorf("fleet: unknown host %q", hostID)
	}
	sh.muted = muted
	return nil
}

// MeasuredDieTemp reads a host's true (noise-free) die temperature — for
// tests and evaluation only; the control loop itself only ever sees
// telemetry. Simulated fleets only.
func (c *Controller) MeasuredDieTemp(hostID string) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return 0, ErrNoSubstrate
	}
	sh, ok := c.sim.hosts[hostID]
	if !ok {
		return 0, fmt.Errorf("fleet: unknown host %q", hostID)
	}
	return sh.server.DieTemp(), nil
}
