package fleet

import (
	"slices"
	"strings"
	"sync/atomic"
)

// The snapshot publication path is epoch-versioned and copy-on-read: every
// round the controller fills one snapGen (a generation) and publishes it
// with an atomic pointer swap. Readers borrow the published generation
// without copying anything; the writer recycles a retired generation's maps
// and slices in place — rewriting only what changed — once no reader can
// still observe it. That turns the per-round snapshot clone (formerly the
// warm round's dominant garbage: three O(hosts) maps plus two slices) into
// zero allocations in steady state.
//
// Safety protocol (all sync/atomic, hence sequentially consistent):
//
//   - The writer mutates only generations obtained from writable(), which
//     never returns the published generation and skips any retired
//     generation with readers in flight (readers > 0) or one that was ever
//     handed out unscoped (escaped).
//   - A scoped reader (ViewSnapshot) loads the published pointer,
//     increments the generation's reader count, and re-validates that the
//     pointer is still published before touching the data; on failure it
//     decrements and retries. If the writer observed readers == 0 after
//     retiring a generation, any concurrent increment must re-validate
//     after that observation — and the swap that retired the generation
//     precedes the observation, so the re-validation sees a different
//     published pointer and the reader backs off without reading.
//   - An unscoped borrow (Hotspots) marks the generation escaped with the
//     same load → mark → re-validate dance. An escaped generation is
//     immutable forever: the writer drops it instead of recycling, paying
//     one fresh generation on the next round. Scoped reads are therefore
//     the hot-path API; unscoped borrows are safe at the cost the old
//     deep-clone used to pay on every single read.
type snapGen struct {
	snap Snapshot
	// readers counts in-flight scoped borrows (ViewSnapshot).
	readers atomic.Int64
	// escaped marks generations handed out unscoped (Hotspots): their maps
	// now live in caller hands indefinitely and must never be rewritten.
	escaped atomic.Bool
}

// snapStore owns the generation ring: the published generation (readable by
// anyone), plus retired spares the writer recycles. All fields except
// published are writer-owned (guarded by the controller's round lock).
type snapStore struct {
	published atomic.Pointer[snapGen]
	spare     []*snapGen
	// fresh counts generations allocated because no spare was recyclable
	// (first rounds, escaped borrows, or a reader pinning every spare) —
	// the observability hook for the zero-alloc steady-state contract.
	fresh atomic.Int64
}

// writable returns a generation the writer may mutate, recycling a retired
// spare when possible and allocating (counted) otherwise. Escaped spares
// are dropped on sight — they can never be recycled.
func (s *snapStore) writable(hosts int) *snapGen {
	for i := 0; i < len(s.spare); {
		g := s.spare[i]
		if g.escaped.Load() {
			s.spare[i] = s.spare[len(s.spare)-1]
			s.spare[len(s.spare)-1] = nil
			s.spare = s.spare[:len(s.spare)-1]
			continue
		}
		if g.readers.Load() == 0 {
			s.spare[i] = s.spare[len(s.spare)-1]
			s.spare[len(s.spare)-1] = nil
			s.spare = s.spare[:len(s.spare)-1]
			return g
		}
		i++
	}
	s.fresh.Add(1)
	return &snapGen{snap: Snapshot{
		Predicted:   make(map[string]float64, hosts),
		Uncertainty: make(map[string]float64, hosts),
		Latest:      make(map[string]Reading, hosts),
	}}
}

// publish swaps g in as the published generation and retires the previous
// one into the spare ring.
func (s *snapStore) publish(g *snapGen) {
	if old := s.published.Swap(g); old != nil {
		s.spare = append(s.spare, old)
	}
}

// Hotspots returns the latest published snapshot WITHOUT copying: the
// returned maps and slices are shared, immutable state — callers must treat
// every field as read-only. The borrow is permanent (the generation is
// retired from reuse), so per-round pollers that only need a bounded look
// should prefer ViewSnapshot, which recycles.
func (c *Controller) Hotspots() Snapshot {
	for {
		g := c.snaps.published.Load()
		if g == nil {
			return Snapshot{}
		}
		g.escaped.Store(true)
		if c.snaps.published.Load() == g {
			return g.snap
		}
	}
}

// ViewSnapshot runs read against the latest published snapshot without
// copying it. The *Snapshot (including its maps and slices) is valid only
// for the duration of the call and must be treated as read-only: retaining
// or mutating any part of it is a data race with later rounds. This is the
// zero-allocation read path the HTTP handlers use; for an unbounded borrow
// use Hotspots.
func (c *Controller) ViewSnapshot(read func(*Snapshot)) {
	g := c.snaps.acquire()
	if g == nil {
		read(&Snapshot{})
		return
	}
	// Deferred so a panicking callback (recovered by an HTTP server, say)
	// still releases the generation instead of pinning it forever.
	defer g.readers.Add(-1)
	read(&g.snap)
}

// acquire pins the published generation for a scoped read (readers
// incremented, pointer re-validated); the caller must decrement.
func (s *snapStore) acquire() *snapGen {
	for {
		g := s.published.Load()
		if g == nil {
			return nil
		}
		g.readers.Add(1)
		if s.published.Load() == g {
			return g
		}
		g.readers.Add(-1)
	}
}

// SnapshotGenerations reports how many snapshot generations were freshly
// allocated (rather than recycled) since the controller was built. A warm
// fleet whose readers all use ViewSnapshot plateaus at 2; every unscoped
// Hotspots borrow adds at most one per round.
func (c *Controller) SnapshotGenerations() int64 { return c.snaps.fresh.Load() }

// publishedSnapshot is the writer-side borrow: callers must hold c.mu, which
// excludes the only code (writable) that could recycle a retired generation
// — the published one is immutable to everybody.
func (c *Controller) publishedSnapshot() *Snapshot {
	if g := c.snaps.published.Load(); g != nil {
		return &g.snap
	}
	return nil
}

// sortHotspots orders the round's hotspots by descending margin, ties
// broken by host id — the published determinism contract (matching
// cluster.SortHotspots) — without allocating. Host ids are unique, so the
// comparator is a total order and any sort yields the same result.
func sortHotspots(out []Hotspot) {
	slices.SortFunc(out, func(a, b Hotspot) int {
		if a.MarginC != b.MarginC {
			if a.MarginC > b.MarginC {
				return -1
			}
			return 1
		}
		return strings.Compare(a.HostID, b.HostID)
	})
}

// rewriteFloats makes m hold exactly one val(p) entry per non-stale
// prediction, rewriting only entries whose value changed. Lingering keys
// (membership shrank or hosts went stale) force one clear-and-refill pass;
// map buckets survive clear, so neither path allocates once the map has
// capacity.
func rewriteFloats(m map[string]float64, preds []Prediction, val func(*Prediction) float64) {
	n := 0
	for i := range preds {
		p := &preds[i]
		if p.Stale {
			continue
		}
		n++
		v := val(p)
		if cur, ok := m[p.HostID]; !ok || cur != v {
			m[p.HostID] = v
		}
	}
	if len(m) == n {
		return
	}
	clear(m)
	for i := range preds {
		p := &preds[i]
		if !p.Stale {
			m[p.HostID] = val(p)
		}
	}
}

// rewriteLatest mirrors rewriteFloats for the latest-reading map.
func rewriteLatest(m map[string]Reading, latest map[string]Reading) {
	n := 0
	for id, r := range latest {
		n++
		if cur, ok := m[id]; !ok || cur != r {
			m[id] = r
		}
	}
	if len(m) == n {
		return
	}
	clear(m)
	for id, r := range latest {
		m[id] = r
	}
}
