package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// streamGridConfig is a source-driven config with streaming ingest on: the
// population is discovered purely from pushed readings.
func streamGridConfig() Config {
	cfg := DefaultConfig()
	cfg.StreamingIngest = true
	cfg.MaxMigrationsPerRound = 0
	cfg.Seed = 7
	return cfg
}

// TestStreamHotspotIndexMatchesRoundRecompute is the reconciliation
// property test: over randomized push interleavings — random hosts (known
// and never-seen), random utilizations, random batch sizes, predict flag
// on and off — the incrementally maintained hotspot index must be
// bit-identical to the batch round's full recompute at every round
// boundary.
func TestStreamHotspotIndexMatchesRoundRecompute(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := &gridSource{}
			c, err := NewWithSource(streamGridConfig(), src, syntheticStable)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			const hostPool = 96
			var totalDrift int64
			for round := 0; round < 15; round++ {
				n := rng.Intn(64)
				readings := make([]Reading, n)
				for i := range readings {
					util := rng.Float64()
					readings[i] = Reading{
						HostID:  fmt.Sprintf("h%03d", rng.Intn(hostPool)),
						AtS:     src.now + rng.Float64()*c.cfg.UpdateEveryS,
						TempC:   30 + 45*util,
						Util:    util,
						MemFrac: 0.5,
					}
				}
				results := make([]IngestResult, len(readings))
				c.IngestBatch(readings, rng.Intn(2) == 0, results)
				for i, res := range results {
					if res.Outcome == IngestDropped || res.Outcome == IngestBuffered {
						t.Fatalf("round %d reading %d: outcome %d on a streaming controller", round, i, res.Outcome)
					}
				}
				rep, err := c.RunRound()
				if err != nil {
					t.Fatal(err)
				}
				totalDrift += int64(rep.StreamHotDrift)

				live := c.StreamHotspotsInto(nil)
				c.ViewSnapshot(func(s *Snapshot) {
					if len(live) != len(s.Hotspots) {
						t.Fatalf("round %d: index has %d hotspots, recompute %d", round, len(live), len(s.Hotspots))
					}
					for i := range live {
						if live[i] != s.Hotspots[i] {
							t.Fatalf("round %d hotspot %d: index %+v != recompute %+v", round, i, live[i], s.Hotspots[i])
						}
					}
				})
			}
			applied, created, deferred, _ := c.StreamTotals()
			if applied == 0 || deferred == 0 {
				t.Fatalf("interleaving too tame: applied %d deferred %d", applied, deferred)
			}
			if totalDrift == 0 {
				t.Fatal("no drift ever reconciled; the property test exercised nothing")
			}
			t.Logf("seed %d: applied %d created %d deferred %d drift %d", seed, applied, created, deferred, totalDrift)
		})
	}
}

// TestStreamHotspotIndexMatchesRoundsSimFleet runs the same boundary
// equality on a simulated fleet (round-driven telemetry, interleaved
// pushes for the fleet's own hosts): the index must track the recompute
// even though sim fleets never create sessions inline.
func TestStreamHotspotIndexMatchesRoundsSimFleet(t *testing.T) {
	cfg := testConfig()
	cfg.StreamingIngest = true
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	seedHotHost(t, c)
	rng := rand.New(rand.NewSource(3))
	hosts := c.Hosts()
	for round := 0; round < 20; round++ {
		n := rng.Intn(8)
		readings := make([]Reading, n)
		for i := range readings {
			readings[i] = Reading{
				HostID: hosts[rng.Intn(len(hosts))],
				AtS:    c.src.NowS() + rng.Float64()*cfg.UpdateEveryS,
				TempC:  35 + rng.Float64()*40,
			}
		}
		results := make([]IngestResult, len(readings))
		c.IngestBatch(readings, false, results)
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
		live := c.StreamHotspotsInto(nil)
		c.ViewSnapshot(func(s *Snapshot) {
			if len(live) != len(s.Hotspots) {
				t.Fatalf("round %d: index %d != recompute %d hotspots", round, len(live), len(s.Hotspots))
			}
			for i := range live {
				if live[i] != s.Hotspots[i] {
					t.Fatalf("round %d hotspot %d: %+v != %+v", round, i, live[i], s.Hotspots[i])
				}
			}
		})
	}
	// A pushed reading for a host the sim does not own defers (no inline
	// create against a fingerprint-keyed cache), and the drain discards it.
	results := make([]IngestResult, 1)
	c.IngestBatch([]Reading{{HostID: "foreign", AtS: c.src.NowS(), TempC: 50}}, false, results)
	if results[0].Outcome != IngestDeferred {
		t.Fatalf("foreign host outcome = %d, want deferred", results[0].Outcome)
	}
}

// TestStreamingIngestFreshness: a pushed reading must be visible in the
// hotspot index (and in the synchronous prediction) immediately — no round
// in between.
func TestStreamingIngestFreshness(t *testing.T) {
	cfg := testConfig()
	cfg.StreamingIngest = true
	cfg.ThresholdC = 40
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunRound(); err != nil { // builds sessions
		t.Fatal(err)
	}
	host := c.Hosts()[0]
	// Timestamp the push one Δ_update past the round's last sample so the
	// per-arrival calibration actually fires (observes inside the schedule
	// are deliberate no-ops — that is the idempotency the two paths share).
	now := c.src.NowS() + cfg.UpdateEveryS

	// A scorching reading: the Δ_gap-ahead prediction must cross the (low)
	// threshold and appear in the index before any round runs.
	results := make([]IngestResult, 1)
	c.IngestBatch([]Reading{{HostID: host, AtS: now, TempC: 90}}, true, results)
	if results[0].Outcome != IngestStreamed {
		t.Fatalf("outcome = %d, want streamed", results[0].Outcome)
	}
	p := results[0].Pred
	if p.HostID != host || p.TempC <= cfg.ThresholdC {
		t.Fatalf("synchronous prediction %+v did not cross threshold %v", p, cfg.ThresholdC)
	}
	live := c.StreamHotspotsInto(nil)
	found := false
	for _, h := range live {
		if h.HostID == host {
			found = true
			if h.PredictedTempC != p.TempC {
				t.Fatalf("index temp %v != synchronous prediction %v", h.PredictedTempC, p.TempC)
			}
		}
	}
	if !found {
		t.Fatalf("pushed hotspot %s not in live index %+v", host, live)
	}
	if c.HotspotStalenessS() > 60 {
		t.Fatalf("hotspot staleness %v implausible", c.HotspotStalenessS())
	}
	if _, _, _, preds := c.StreamTotals(); preds != 1 {
		t.Fatalf("predictions total = %d, want 1", preds)
	}
}

// TestStreamingOffIsInert: without StreamingIngest the batch surfaces are
// untouched — IngestBatch only buffers, totals stay zero, the live index
// is empty, and RoundReport carries no stream fields (the golden-trace
// byte-stability this rides on is pinned by TestTraceReplayGolden).
func TestStreamingOffIsInert(t *testing.T) {
	c, err := New(testConfig(), syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if c.StreamingEnabled() {
		t.Fatal("streaming reported enabled")
	}
	results := make([]IngestResult, 2)
	host := c.Hosts()[0]
	acc := c.IngestBatch([]Reading{
		{HostID: host, AtS: 0, TempC: 50},
		{HostID: "nobody", AtS: 0, TempC: 50},
	}, true, results)
	if acc != 2 {
		t.Fatalf("accepted %d, want 2", acc)
	}
	for i, res := range results {
		if res.Outcome != IngestBuffered {
			t.Fatalf("reading %d outcome = %d, want buffered", i, res.Outcome)
		}
	}
	rep, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamApplied != 0 || rep.StreamDeferred != 0 || rep.StreamHotDrift != 0 {
		t.Fatalf("stream fields leaked into a non-streaming report: %+v", rep)
	}
	if a, cr, de, pr := c.StreamTotals(); a != 0 || cr != 0 || de != 0 || pr != 0 {
		t.Fatal("stream totals nonzero")
	}
	if got := c.StreamHotspotsInto(nil); len(got) != 0 {
		t.Fatalf("live index nonempty: %+v", got)
	}
}

// TestStreamingRoundReportCounters: per-round deltas land in the report —
// applied for owned hosts, deferred for foreign ones, and drift when the
// recompute corrects streamed entries.
func TestStreamingRoundReportCounters(t *testing.T) {
	cfg := testConfig()
	cfg.StreamingIngest = true
	cfg.ThresholdC = 40
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunRound(); err != nil {
		t.Fatal(err)
	}
	hosts := c.Hosts()
	// Past the last calibration (so the pushes calibrate) AND slightly ahead
	// of the next round's clock: the round re-evaluates the prediction at
	// its own (clamped) now, which differs from the push instant — exactly
	// the drift reconciliation must correct.
	at := c.src.NowS() + cfg.UpdateEveryS + 5
	readings := []Reading{
		{HostID: hosts[0], AtS: at, TempC: 95},
		{HostID: hosts[1], AtS: at, TempC: 96},
		{HostID: "foreign", AtS: at, TempC: 50},
	}
	results := make([]IngestResult, len(readings))
	c.IngestBatch(readings, false, results)
	rep, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamApplied != 2 || rep.StreamDeferred != 1 {
		t.Fatalf("report applied %d deferred %d, want 2/1", rep.StreamApplied, rep.StreamDeferred)
	}
	if rep.StreamHotDrift == 0 {
		t.Fatal("scorching pushes produced no reconciliation drift")
	}
	// Next round with no pushes: deltas reset.
	rep, err = c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamApplied != 0 || rep.StreamDeferred != 0 {
		t.Fatalf("deltas did not reset: %+v", rep)
	}
}

// TestStreamingConcurrentWithRounds hammers IngestBatch + StreamHotspotsInto
// concurrently with RunRound on a streaming sim fleet — the -race guard for
// the index/reconcile locking and the TryLock warm-anchor path.
func TestStreamingConcurrentWithRounds(t *testing.T) {
	cfg := testConfig()
	cfg.StreamingIngest = true
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunRound(); err != nil {
		t.Fatal(err)
	}
	hosts := c.Hosts()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			readings := make([]Reading, 4)
			results := make([]IngestResult, len(readings))
			var buf []Hotspot
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range readings {
					readings[j] = Reading{
						HostID: hosts[rng.Intn(len(hosts))],
						AtS:    float64(i),
						TempC:  35 + rng.Float64()*50,
					}
				}
				c.IngestBatch(readings, i%2 == 0, results)
				buf = c.StreamHotspotsInto(buf[:0])
				c.ViewSnapshot(func(*Snapshot) {})
			}
		}(w)
	}
	for round := 0; round < 15; round++ {
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
