package fleet

import (
	"fmt"
	"sync"
	"testing"

	"vmtherm/internal/workload"
)

// tinyConfig is a 1-rack/2-host fleet: small enough that a handful of
// heavy VMs exhausts its thermal headroom deterministically.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Racks = 1
	cfg.HostsPerRack = 2
	cfg.ThresholdC = 70
	cfg.MaxMigrationsPerRound = 0
	cfg.Seed = 11
	return cfg
}

// TestBatchHeadroomExhaustionDeterministic: with a headroom budget and
// queueing disabled, a batch of identical heavy VMs must split into a
// placed prefix and a RejectNoHeadroom tail — the batch prices the headroom
// each predecessor consumed — and the split must be identical run to run.
func TestBatchHeadroomExhaustionDeterministic(t *testing.T) {
	run := func() []PlacementDecision {
		cfg := tinyConfig()
		cfg.Admission = AdmissionPolicy{HeadroomBudgetC: 20, MaxQueueDepth: -1}
		c, err := New(cfg, syntheticStable)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]workload.VMSpec, 5)
		for i := range specs {
			specs[i] = HeavyVMSpec(fmt.Sprintf("vm-%d", i), 4, 8)
		}
		decs, err := c.PlaceBatch(specs)
		if err != nil {
			t.Fatal(err)
		}

		// Sequential single-VM calls share the batch's plan: the next
		// request must see the headroom the batch consumed, not a fresh
		// ranking that would re-admit it.
		one, err := c.PlaceNow(HeavyVMSpec("vm-after", 4, 8))
		if err != nil {
			t.Fatal(err)
		}
		if one.Status != Rejected || one.Code != RejectNoHeadroom {
			t.Fatalf("PlaceNow after exhausted batch = %+v, want no-headroom", one)
		}
		return decs
	}

	decs := run()
	placed := 0
	for placed < len(decs) && decs[placed].Status == Placed {
		if margin := 70 - decs[placed].PredictedStableC; margin < 20 {
			t.Fatalf("placed %s leaves %.2f°C headroom, budget is 20", decs[placed].VMID, margin)
		}
		placed++
	}
	if placed == 0 || placed == len(decs) {
		t.Fatalf("batch did not split into placed prefix + rejected tail: %+v", decs)
	}
	for _, d := range decs[placed:] {
		if d.Status != Rejected || d.Code != RejectNoHeadroom {
			t.Fatalf("tail decision %+v, want Rejected{no-headroom}", d)
		}
		if d.Reason == "" {
			t.Fatalf("rejection without reason: %+v", d)
		}
	}

	if again := run(); fmt.Sprint(again) != fmt.Sprint(decs) {
		t.Fatalf("two identical runs diverged:\n%v\n%v", decs, again)
	}
}

// TestBatchResultOrderAndTypedCodes: decisions come back in input order,
// one per spec, and every rejection carries the matching typed code —
// including an in-batch duplicate id, which only the earlier occurrence
// may win.
func TestBatchResultOrderAndTypedCodes(t *testing.T) {
	c, err := New(testConfig(), syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceAt("r0-h0", HeavyVMSpec("resident", 2, 4)); err != nil {
		t.Fatal(err)
	}
	decs, err := c.PlaceBatch([]workload.VMSpec{
		HeavyVMSpec("a", 2, 4),
		HeavyVMSpec("big", 4096, 4096),
		HeavyVMSpec("resident", 1, 2),
		HeavyVMSpec("b", 2, 4),
		HeavyVMSpec("a", 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"a", "big", "resident", "b", "a"}
	wantStatus := []PlaceStatus{Placed, Rejected, Rejected, Placed, Rejected}
	wantCode := []RejectCode{RejectNone, RejectInfeasible, RejectDuplicateID, RejectNone, RejectDuplicateID}
	if len(decs) != len(wantIDs) {
		t.Fatalf("got %d decisions, want %d", len(decs), len(wantIDs))
	}
	for i, d := range decs {
		if d.VMID != wantIDs[i] || d.Status != wantStatus[i] || d.Code != wantCode[i] {
			t.Fatalf("decision %d = %+v, want id=%s status=%s code=%s",
				i, d, wantIDs[i], wantStatus[i], wantCode[i])
		}
		if d.Status == Rejected && d.Reason == "" {
			t.Fatalf("decision %d rejected without reason: %+v", i, d)
		}
		if d.Status == Placed && d.HostID == "" {
			t.Fatalf("decision %d placed without host: %+v", i, d)
		}
	}
	if decs[0].HostID == decs[3].HostID {
		t.Fatalf("batch stacked both VMs on %q instead of spreading headroom", decs[0].HostID)
	}
}

// TestPerRoundCapQueuesOverflow: the per-round placement cap parks the
// overflow on the pending queue, and each subsequent round's drain places
// another cap's worth until the queue empties.
func TestPerRoundCapQueuesOverflow(t *testing.T) {
	cfg := testConfig()
	cfg.Admission = AdmissionPolicy{MaxPlacementsPerRound: 1}
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	decs, err := c.PlaceBatch([]workload.VMSpec{
		HeavyVMSpec("cap-0", 1, 2),
		HeavyVMSpec("cap-1", 1, 2),
		HeavyVMSpec("cap-2", 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if decs[0].Status != Placed {
		t.Fatalf("first request under cap = %+v", decs[0])
	}
	for _, d := range decs[1:] {
		if d.Status != Queued {
			t.Fatalf("over-cap request = %+v, want Queued", d)
		}
	}

	rep, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placements != 1 || rep.Queued != 1 || rep.Rejections != 0 {
		t.Fatalf("round 1 drain placed/queued/rejected = %d/%d/%d, want 1/1/0",
			rep.Placements, rep.Queued, rep.Rejections)
	}
	rep, err = c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placements != 1 || rep.Queued != 0 {
		t.Fatalf("round 2 drain placed/queued = %d/%d, want 1/0", rep.Placements, rep.Queued)
	}
}

// TestSubmitQueueDepthBound: Submit honors the admission queue depth, and a
// depth of -1 disables queueing outright.
func TestSubmitQueueDepthBound(t *testing.T) {
	cfg := testConfig()
	cfg.Admission = AdmissionPolicy{MaxQueueDepth: 2}
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !c.Submit(HeavyVMSpec(fmt.Sprintf("q-%d", i), 1, 2)) {
			t.Fatalf("submit %d refused under depth bound 2", i)
		}
	}
	if c.Submit(HeavyVMSpec("q-over", 1, 2)) {
		t.Fatal("submit beyond depth bound accepted")
	}
	// A queued request rejected at the bound must carry the typed code too.
	dec, err := c.PlaceNow(HeavyVMSpec("big-queue", 4096, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != Rejected || dec.Code != RejectInfeasible {
		t.Fatalf("infeasible via PlaceNow = %+v", dec)
	}

	cfg = testConfig()
	cfg.Admission = AdmissionPolicy{MaxQueueDepth: -1}
	c, err = New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if c.Submit(HeavyVMSpec("q", 1, 2)) {
		t.Fatal("submit accepted with queueing disabled")
	}
}

// TestConcurrentPlaceBatchDuringRounds hammers PlaceBatch from multiple
// goroutines while the control loop runs — the -race proof that the batch
// path, plan cache and pending queue share the controller lock correctly.
func TestConcurrentPlaceBatchDuringRounds(t *testing.T) {
	cfg := testConfig()
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				specs := []workload.VMSpec{
					HeavyVMSpec(fmt.Sprintf("c%d-%d-a", g, i), 1, 2),
					HeavyVMSpec(fmt.Sprintf("c%d-%d-b", g, i), 1, 2),
				}
				decs, err := c.PlaceBatch(specs)
				if err != nil {
					t.Errorf("PlaceBatch: %v", err)
					return
				}
				for _, d := range decs {
					if d.Status == PlaceInvalid {
						t.Errorf("invalid decision %+v", d)
						return
					}
				}
			}
		}(g)
	}
	for round := 0; round < 8; round++ {
		if _, err := c.RunRound(); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
