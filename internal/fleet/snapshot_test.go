package fleet

import (
	"fmt"
	"maps"
	"slices"
	"sync"
	"testing"
)

// snapController builds a source-driven controller tracking n hosts whose
// temperatures straddle the hotspot threshold, with one round already run
// (population discovered, anchors cached, snapshot published).
func snapController(t *testing.T, n int) (*Controller, *gridSource, []string) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxHosts = n
	cfg.ThresholdC = 70
	src := &gridSource{}
	ctl, err := NewWithSource(cfg, src, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("sn-%03d", i)
	}
	feed := func() {
		now := src.now
		for i, id := range ids {
			ctl.Ingest(Reading{
				HostID:  id,
				AtS:     now,
				TempC:   30 + float64(i%50),
				Util:    float64(i%101) / 100, // up to util 1.0 → predicted 22+75 > 70
				MemFrac: 0.25,
			})
		}
	}
	feed()
	if _, err := ctl.RunRound(); err != nil {
		t.Fatal(err)
	}
	feed()
	if _, err := ctl.RunRound(); err != nil {
		t.Fatal(err)
	}
	return ctl, src, ids
}

// feedRound pushes one fresh reading per host (keeping every session live)
// without allocating — the per-iteration telemetry for the zero-alloc round.
func feedRound(ctl *Controller, src *gridSource, ids []string) {
	now := src.now
	for i, id := range ids {
		ctl.Ingest(Reading{
			HostID:  id,
			AtS:     now,
			TempC:   30 + float64(i%50),
			Util:    float64(i%101) / 100,
			MemFrac: 0.25,
		})
	}
}

// TestWarmRoundZeroAlloc pins the tentpole contract: a warm control round —
// fresh telemetry ingested, engine round, cached anchors, hotspot map,
// snapshot publication through the recycled generation — allocates nothing,
// and the scoped snapshot read path allocates nothing either.
func TestWarmRoundZeroAlloc(t *testing.T) {
	ctl, src, ids := snapController(t, 64)
	allocs := testing.AllocsPerRun(100, func() {
		feedRound(ctl, src, ids)
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
		ctl.ViewSnapshot(func(s *Snapshot) {
			if len(s.Predicted) != 64 || len(s.Hotspots) == 0 {
				t.Fatalf("snapshot lost state: %d predicted, %d hotspots",
					len(s.Predicted), len(s.Hotspots))
			}
		})
	})
	if allocs != 0 {
		t.Fatalf("warm round + snapshot view allocates %.1f/op, want 0", allocs)
	}
	if fresh := ctl.SnapshotGenerations(); fresh > 2 {
		t.Fatalf("%d fresh snapshot generations for scoped-read-only rounds, want <= 2", fresh)
	}
}

// TestHotspotsReadZeroAlloc: the unscoped borrow itself is allocation-free
// (it hands out the published generation, it does not clone it).
func TestHotspotsReadZeroAlloc(t *testing.T) {
	ctl, _, _ := snapController(t, 32)
	var sink Snapshot
	allocs := testing.AllocsPerRun(100, func() {
		sink = ctl.Hotspots()
	})
	if allocs != 0 {
		t.Fatalf("Hotspots() allocates %.1f/op, want 0", allocs)
	}
	if len(sink.Predicted) != 32 {
		t.Fatalf("borrowed snapshot has %d predictions, want 32", len(sink.Predicted))
	}
}

// TestBorrowedSnapshotImmutable: a snapshot borrowed via Hotspots must never
// change, no matter how many rounds run afterwards — the escaped generation
// is retired, not recycled.
func TestBorrowedSnapshotImmutable(t *testing.T) {
	ctl, src, ids := snapController(t, 48)
	borrowed := ctl.Hotspots()
	round := borrowed.Round
	predicted := maps.Clone(borrowed.Predicted)
	uncertainty := maps.Clone(borrowed.Uncertainty)
	latest := maps.Clone(borrowed.Latest)
	hotspots := slices.Clone(borrowed.Hotspots)

	for i := 0; i < 6; i++ {
		feedRound(ctl, src, ids)
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if cur := ctl.Hotspots(); cur.Round == round {
		t.Fatal("rounds did not advance the published snapshot")
	}
	if borrowed.Round != round {
		t.Fatalf("borrowed snapshot round mutated: %d -> %d", round, borrowed.Round)
	}
	if !maps.Equal(borrowed.Predicted, predicted) {
		t.Fatal("borrowed Predicted map mutated by later rounds")
	}
	if !maps.Equal(borrowed.Uncertainty, uncertainty) {
		t.Fatal("borrowed Uncertainty map mutated by later rounds")
	}
	if !maps.Equal(borrowed.Latest, latest) {
		t.Fatal("borrowed Latest map mutated by later rounds")
	}
	if !slices.Equal(borrowed.Hotspots, hotspots) {
		t.Fatal("borrowed Hotspots slice mutated by later rounds")
	}
}

// TestSnapshotConcurrentReadersDuringRounds is the -race proof for the
// copy-on-read publication: scoped views, unscoped borrows and metrics-style
// full iterations run concurrently with control rounds, and every observed
// snapshot must be internally consistent (hotspots present in the predicted
// map, round numbers monotone per reader).
func TestSnapshotConcurrentReadersDuringRounds(t *testing.T) {
	ctl, src, ids := snapController(t, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastRound := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctl.ViewSnapshot(func(s *Snapshot) {
					if s.Round < lastRound {
						select {
						case fail <- fmt.Sprintf("round went backwards: %d -> %d", lastRound, s.Round):
						default:
						}
					}
					lastRound = s.Round
					for _, h := range s.Hotspots {
						if v, ok := s.Predicted[h.HostID]; !ok || v != h.PredictedTempC {
							select {
							case fail <- fmt.Sprintf("hotspot %s inconsistent with predicted map", h.HostID):
							default:
							}
						}
					}
					var total float64
					for _, r := range s.Latest {
						total += r.TempC
					}
					_ = total
				})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := ctl.Hotspots()
			for _, h := range snap.Hotspots {
				if v, ok := snap.Predicted[h.HostID]; !ok || v != h.PredictedTempC {
					select {
					case fail <- fmt.Sprintf("borrowed hotspot %s inconsistent", h.HostID):
					default:
					}
				}
			}
		}
	}()
	for round := 0; round < 12; round++ {
		feedRound(ctl, src, ids)
		if _, err := ctl.RunRound(); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestSnapshotMembershipShrink: predictions for hosts that go stale (or are
// evicted) must vanish from recycled generations, not linger from two rounds
// ago — the clear-and-refill fallback of the in-place rewrite.
func TestSnapshotMembershipShrink(t *testing.T) {
	ctl, src, ids := snapController(t, 16)
	// Starve the first 4 hosts: after StaleAfterS (3 rounds) they must be
	// degraded out of the predicted map in whatever generation is current.
	for i := 0; i < 6; i++ {
		now := src.now
		for j, id := range ids[4:] {
			ctl.Ingest(Reading{HostID: id, AtS: now, TempC: 35 + float64(j), Util: 0.4, MemFrac: 0.2})
		}
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	ctl.ViewSnapshot(func(s *Snapshot) {
		for _, id := range ids[:4] {
			if _, ok := s.Predicted[id]; ok {
				t.Fatalf("stale host %s still in recycled generation's predicted map", id)
			}
			if !slices.Contains(s.StaleHosts, id) {
				t.Fatalf("stale host %s not reported stale", id)
			}
		}
		if len(s.Predicted) != 12 {
			t.Fatalf("predicted map has %d entries, want 12", len(s.Predicted))
		}
	})
}
