package fleet

import (
	"math"
	"sync"
	"testing"

	"vmtherm/internal/telemetry"
)

// TestBlackoutRecoveryUnderConcurrentStreaming rides out a fleet-wide
// telemetry blackout while an event-driven pusher keeps hammering
// IngestBatch from another goroutine — the shape a real outage has, where
// the scrape plane goes dark but application-side pushers keep arriving.
// Under -race this pins: no data race between the dark rounds and the
// streaming path, staleness widens while dark, and every stale host is
// cleared within a bounded number of rounds after the sweep resumes.
func TestBlackoutRecoveryUnderConcurrentStreaming(t *testing.T) {
	cfg := testConfig()
	cfg.StreamingIngest = true
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	seedHotHost(t, c)
	warm, err := c.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// Freeze the pusher's clock at the last pre-blackout sweep: lastAtS is
	// monotonic in the engine, so these duplicates can neither rewind
	// staleness nor fake freshness — they only exercise the arrival path.
	atS := warm[len(warm)-1].SimTimeS

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		readings := make([]Reading, 4)
		results := make([]IngestResult, 4)
		// Body-first loop: at least one batch lands even if the main
		// goroutine races through its rounds before this one is scheduled.
		for i := 0; ; i++ {
			readings[0] = Reading{HostID: "r0-h0", AtS: atS, TempC: 40 + float64(i%7), Util: 0.6, MemFrac: 0.3}
			readings[1] = Reading{HostID: "r1-h3", AtS: atS, TempC: 38, Util: 0.4, MemFrac: 0.2}
			readings[2] = Reading{HostID: "r0-h1", AtS: atS, TempC: math.NaN()}
			readings[3] = Reading{HostID: "r1-h5", AtS: atS, TempC: 400}
			c.IngestBatch(readings, true, results)
			for j := 2; j < 4; j++ {
				if results[j].Outcome != IngestRejected {
					t.Errorf("poison reading %d outcome %v, want IngestRejected", j, results[j].Outcome)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	// Lights out. StaleAfterS is 3 rounds; 6 dark rounds put every host
	// well past it.
	if err := c.SetTelemetryDark(true); err != nil {
		t.Fatal(err)
	}
	var lastDark RoundReport
	for i := 0; i < 6; i++ {
		lastDark, err = c.RunRound()
		if err != nil {
			t.Fatal(err)
		}
	}
	if lastDark.StaleHosts == 0 {
		t.Fatal("blackout did not widen staleness")
	}
	if lastDark.MaxStalenessS <= cfg.StaleAfterS {
		t.Fatalf("max staleness %v not beyond stale-after %v", lastDark.MaxStalenessS, cfg.StaleAfterS)
	}

	// Sweep resumes; every stale host must clear within a few rounds (one
	// sweep refreshes all hosts, plus slack for the staleness horizon).
	if err := c.SetTelemetryDark(false); err != nil {
		t.Fatal(err)
	}
	cleared := 0
	for i := 1; i <= 6; i++ {
		rep, err := c.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if rep.StaleHosts == 0 {
			cleared = i
			break
		}
	}
	if cleared == 0 {
		t.Fatal("stale hosts not cleared within 6 rounds after the blackout ended")
	}
	t.Logf("dark staleness peaked at %d hosts (%.0f s); cleared %d rounds after resume",
		lastDark.StaleHosts, lastDark.MaxStalenessS, cleared)

	close(stop)
	wg.Wait()

	// The concurrent poison must have been counted, not crashed on.
	byReason, total := c.IngestRejected()
	if total == 0 {
		t.Fatal("concurrent poison readings were never rejected")
	}
	if byReason[telemetry.RejectNaN] == 0 || byReason[telemetry.RejectTooHot] == 0 {
		t.Fatalf("rejection reasons not tallied: %v", byReason)
	}
}

// TestIngestBatchRejectsImplausible pins the typed per-reading outcome and
// the per-reason counters for every implausibility class.
func TestIngestBatchRejectsImplausible(t *testing.T) {
	cfg := testConfig()
	cfg.StreamingIngest = true
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1); err != nil {
		t.Fatal(err)
	}
	readings := []Reading{
		{HostID: "r0-h0", AtS: 15, TempC: math.NaN()},
		{HostID: "r0-h1", AtS: 15, TempC: math.Inf(1)},
		{HostID: "r0-h2", AtS: 15, TempC: -200},
		{HostID: "r0-h3", AtS: 15, TempC: 400},
		{HostID: "r0-h4", AtS: 15, TempC: 42, Util: 0.3, MemFrac: 0.2},
	}
	results := make([]IngestResult, len(readings))
	accepted := c.IngestBatch(readings, false, results)
	if accepted != 1 {
		t.Fatalf("accepted %d, want 1 (only the plausible reading)", accepted)
	}
	for i := 0; i < 4; i++ {
		if results[i].Outcome != IngestRejected {
			t.Errorf("reading %d outcome %v, want IngestRejected", i, results[i].Outcome)
		}
	}
	if results[4].Outcome == IngestRejected {
		t.Error("plausible reading was rejected")
	}
	byReason, total := c.IngestRejected()
	if total != 4 {
		t.Fatalf("rejected total %d, want 4", total)
	}
	for _, want := range []telemetry.RejectReason{
		telemetry.RejectNaN, telemetry.RejectInf, telemetry.RejectTooCold, telemetry.RejectTooHot,
	} {
		if byReason[want] != 1 {
			t.Errorf("reason %s count %d, want 1", want, byReason[want])
		}
	}
}
