package fleet

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"vmtherm/internal/cluster"
	"vmtherm/internal/mathx"
	"vmtherm/internal/sim"
	"vmtherm/internal/telemetry"
	"vmtherm/internal/thermal"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// simSource adapts the simulated fleet to the telemetry.Source interface:
// advancing the source runs the physics for that window and the sensor
// sweep emits readings, so the controller consumes the simulator through
// exactly the same seam as trace replay and live scraping.
type simSource struct {
	fs *fleetSim
}

// Name identifies the source kind.
func (s *simSource) Name() string { return "sim" }

// NowS reports the simulation clock.
func (s *simSource) NowS() float64 { return s.fs.engine.Now() }

// Advance runs dtS seconds of simulated physics, emitting sensor samples.
func (s *simSource) Advance(dtS float64, emit func(telemetry.Reading) bool) error {
	return s.fs.advance(dtS, emit)
}

// drivenTask binds one task of a placed VM to the load profile that drives
// it — a flat, contiguous record the tick loop scans instead of walking
// nested vm→task profile maps.
type drivenTask struct {
	vm     *vmm.VM
	taskID string
	prof   workload.Profile
}

// SensorFaultMode enumerates the ways a simulated temperature sensor can
// lie: frozen at one value, silent, emitting NaN, or wildly biased. The
// zero value is a healthy sensor.
type SensorFaultMode uint8

const (
	// SensorHealthy is the zero value: readings pass through untouched.
	SensorHealthy SensorFaultMode = iota
	// SensorStuck freezes the sensor at the fault's ValueC.
	SensorStuck
	// SensorDropped silences the sensor (the host keeps heating).
	SensorDropped
	// SensorNaN makes the sensor emit NaN temperatures.
	SensorNaN
	// SensorBiased adds the fault's ValueC to every reading.
	SensorBiased
)

// SensorFault describes one host's injected sensor misbehavior.
type SensorFault struct {
	Mode SensorFaultMode
	// ValueC is the frozen reading (SensorStuck) or the additive bias
	// (SensorBiased); ignored for the other modes.
	ValueC float64
}

// simHost is one simulated machine of the fleet: capacity accounting
// (vmm.Host), heat (thermal.Server), a noisy sensor, and the load profiles
// driving its VMs' tasks over time.
type simHost struct {
	host    *vmm.Host
	server  *thermal.Server
	sensor  *thermal.Sensor
	pos     cluster.HostPosition
	rackIdx int // index into fleetSim.racks / rackInlets
	driven  []drivenTask
	// muted simulates a dead monitoring agent: the host keeps running and
	// heating, but emits no telemetry.
	muted bool
	// fault corrupts this host's emitted readings without touching its
	// physics: the sensor still reads (and draws noise) on schedule, the
	// transform applies at the emission point only.
	fault SensorFault
}

// cracDynamics is the inter-rack CRAC supply/return coupling loop, active
// only once a scenario touches the cooling plant (the nil state is the
// bit-identical constant-supply physics every non-scenario run keeps).
// Each step the room's return-air temperature is the current supply plus
// the exhaust rise at the fleet's mean utilization; the unit cools that
// return stream by at most capacityFrac·maxCoolDeltaC, never below its
// (possibly excursed) setpoint; and the supply relaxes toward that target
// with a first-order lag. At full capacity the cooling delta exceeds any
// reachable exhaust rise, so the steady state is exactly the setpoint; at
// zero capacity the supply chases the return air and the room runs away.
type cracDynamics struct {
	setpointC      float64 // configured supply setpoint
	setpointDeltaC float64 // scenario excursion added to the setpoint
	capacityFrac   float64 // 1 = full cooling, 0 = failed CRAC
	recircMult     float64 // multiplier on the configured recirculation
	supplyC        float64 // current supply-air temperature (the state)
	baseRecirc     float64 // configured RecircPerUtil
	tauS           float64 // supply-air first-order lag
	exhaustRiseC   float64 // return-air rise at 100% fleet utilization
	maxCoolDeltaC  float64 // return→supply cooling delta at full capacity
}

// cracTauS is the supply-air lag: a failed CRAC heats the room over
// minutes, not ticks, so the controller has a (bounded) window to act.
const cracTauS = 60

// cracExhaustRiseC and cracMaxCoolDeltaC shape the return loop: the
// exhaust rise at full fleet utilization stays below the full-capacity
// cooling delta, so a healthy CRAC always pins its setpoint.
const (
	cracExhaustRiseC  = 14
	cracMaxCoolDeltaC = 25
)

// fleetSim is the simulated datacenter the controller closes its loop
// against: racks of simHosts under one CRAC on a shared discrete-event
// engine. It is the stand-in for the physical fleet a production deployment
// would observe through its monitoring agents.
type fleetSim struct {
	cfg    Config
	engine *sim.Engine
	dc     *cluster.Datacenter
	hosts  map[string]*simHost
	order  []string   // host ids in rack/slot order (deterministic iteration)
	byPos  []*simHost // hosts in order, for map-free tick/sample sweeps
	racks  []*cluster.Rack
	// rackSpan[ri] is rack ri's contiguous [start, end) range in byPos/order:
	// the shard boundary of the parallel tick (every mutation a tick performs
	// is confined to one rack's span).
	rackSpan [][2]int
	// rackInlets caches each rack's per-slot inlet temperatures for the
	// current tick: rack mean utilization is O(hosts) to derive, so
	// recomputing it per host per tick would make ticks O(hosts²).
	rackInlets [][]float64
	// tickUtil/tickMem hold each host's load for the current tick (indexed
	// like byPos): one Loads sweep per host feeds both the rack inlet model
	// and the thermal integration instead of three separate VM-list walks.
	tickUtil, tickMem []float64
	// sample* are the sensor-sweep scratch for the rack-sharded read phase
	// (indexed like byPos); emission consumes them serially in host order.
	sampleVal, sampleUtil, sampleMem []float64
	sampleOK                         []bool
	// tickErrs collects per-rack tick failures from the sharded pass; the
	// first error in rack order is reported, keeping failures deterministic
	// regardless of worker interleaving.
	tickErrs []error
	// vmHost maps every placed VM id to its current host: vmm only enforces
	// per-host uniqueness, but migration addresses VMs by id fleet-wide, so
	// duplicates (e.g. a retried placement request) must be rejected here.
	vmHost map[string]string
	// crac is the supply/return coupling state; nil until a scenario first
	// touches the cooling plant, so unscripted runs never enter the
	// coupling step and stay bit-identical to the pre-scenario physics.
	crac *cracDynamics
	// dark is a fleet-wide telemetry blackout: every host keeps running and
	// heating, but the sensor sweep emits nothing (and, like muted hosts,
	// performs no reads or rng draws while dark).
	dark bool
}

// newFleetSim assembles Racks × HostsPerRack machines, all idle and at
// ambient temperature.
func newFleetSim(cfg Config) (*fleetSim, error) {
	fs := &fleetSim{
		cfg:    cfg,
		engine: sim.NewEngine(),
		hosts:  make(map[string]*simHost, cfg.Racks*cfg.HostsPerRack),
		vmHost: make(map[string]string),
	}
	var racks []*cluster.Rack
	for r := 0; r < cfg.Racks; r++ {
		hosts := make([]*vmm.Host, cfg.HostsPerRack)
		offsets := make([]float64, cfg.HostsPerRack)
		for s := 0; s < cfg.HostsPerRack; s++ {
			id := fmt.Sprintf("r%d-h%d", r, s)
			h, err := vmm.NewHost(id, cfg.HostShape)
			if err != nil {
				return nil, fmt.Errorf("fleet: host %s: %w", id, err)
			}
			hosts[s] = h
			if cfg.HostsPerRack > 1 {
				offsets[s] = cfg.RackSpreadC * float64(s) / float64(cfg.HostsPerRack-1)
			}
		}
		rack, err := cluster.NewRack(fmt.Sprintf("r%d", r), hosts, offsets)
		if err != nil {
			return nil, err
		}
		racks = append(racks, rack)
	}
	dc, err := cluster.NewDatacenter(cfg.CRAC, racks)
	if err != nil {
		return nil, err
	}
	fs.dc = dc
	fs.racks = racks
	fs.rackInlets = make([][]float64, len(racks))

	rackIdx := make(map[*cluster.Rack]int, len(racks))
	for i, r := range racks {
		rackIdx[r] = i
	}
	for _, pos := range dc.AllHosts() {
		h := pos.Rack.Hosts()[pos.Slot]
		inlet, err := dc.InletTemp(pos.Rack, pos.Slot)
		if err != nil {
			return nil, err
		}
		sp := cfg.Server
		sp.FanCount = cfg.FanCount
		sp.AmbientC = inlet
		srv, err := thermal.NewServer(sp)
		if err != nil {
			return nil, fmt.Errorf("fleet: thermal %s: %w", h.ID(), err)
		}
		sensor, err := thermal.NewSensor(cfg.Sensor, srv.DieTemp,
			mathx.SplitStable(cfg.Seed, "fleet-sensor:"+h.ID()))
		if err != nil {
			return nil, fmt.Errorf("fleet: sensor %s: %w", h.ID(), err)
		}
		sh := &simHost{
			host:    h,
			server:  srv,
			sensor:  sensor,
			pos:     pos,
			rackIdx: rackIdx[pos.Rack],
		}
		fs.hosts[h.ID()] = sh
		fs.order = append(fs.order, h.ID())
		fs.byPos = append(fs.byPos, sh)
	}
	fs.rackSpan = make([][2]int, len(racks))
	for i, sh := range fs.byPos {
		if i == 0 || sh.rackIdx != fs.byPos[i-1].rackIdx {
			fs.rackSpan[sh.rackIdx][0] = i
		}
		fs.rackSpan[sh.rackIdx][1] = i + 1
	}
	fs.tickUtil = make([]float64, len(fs.byPos))
	fs.tickMem = make([]float64, len(fs.byPos))
	fs.tickErrs = make([]error, len(racks))
	fs.sampleVal = make([]float64, len(fs.byPos))
	fs.sampleUtil = make([]float64, len(fs.byPos))
	fs.sampleMem = make([]float64, len(fs.byPos))
	fs.sampleOK = make([]bool, len(fs.byPos))
	return fs, nil
}

// place admits a VM onto a host, starts it, and registers its task
// profiles so the tick loop drives them.
func (fs *fleetSim) place(hostID string, spec workload.VMSpec) error {
	sh, ok := fs.hosts[hostID]
	if !ok {
		return fmt.Errorf("fleet: unknown host %q", hostID)
	}
	if cur, dup := fs.vmHost[spec.ID]; dup {
		return fmt.Errorf("fleet: vm %q already placed on %q", spec.ID, cur)
	}
	vm, err := vmm.NewVM(spec.ID, spec.Config)
	if err != nil {
		return err
	}
	for _, ts := range spec.Tasks {
		if err := vm.AddTask(ts.Task); err != nil {
			return err
		}
	}
	if err := sh.host.Place(vm); err != nil {
		return err
	}
	if err := vm.Start(fs.engine.Now()); err != nil {
		_ = sh.host.Remove(vm.ID())
		return err
	}
	for _, ts := range spec.Tasks {
		if ts.Profile != nil {
			sh.driven = append(sh.driven, drivenTask{vm: vm, taskID: ts.Task.ID, prof: ts.Profile})
		}
	}
	fs.vmHost[spec.ID] = hostID
	return nil
}

// migrate moves a VM between hosts instantaneously (the controller models
// migration cost in its proposal policy, not in the mechanics).
func (fs *fleetSim) migrate(vmID, fromID, toID string) error {
	src, ok := fs.hosts[fromID]
	if !ok {
		return fmt.Errorf("fleet: unknown source host %q", fromID)
	}
	dst, ok := fs.hosts[toID]
	if !ok {
		return fmt.Errorf("fleet: unknown target host %q", toID)
	}
	vm, err := src.host.VM(vmID)
	if err != nil {
		return err
	}
	if err := dst.host.Place(vm); err != nil {
		return err
	}
	if err := src.host.Remove(vmID); err != nil {
		_ = dst.host.Remove(vmID)
		return err
	}
	// Move the VM's driven-task records to the destination host.
	kept := src.driven[:0]
	for _, d := range src.driven {
		if d.vm.ID() == vmID {
			dst.driven = append(dst.driven, d)
		} else {
			kept = append(kept, d)
		}
	}
	src.driven = kept
	fs.vmHost[vmID] = toID
	return nil
}

// remove evicts a VM from the fleet entirely — the inverse of place, used
// by scenarios to end a scripted load surge. The VM's driven-task records
// are dropped so the tick loop stops driving it.
func (fs *fleetSim) remove(vmID string) error {
	hostID, ok := fs.vmHost[vmID]
	if !ok {
		return errNoSuchVM
	}
	sh := fs.hosts[hostID]
	if err := sh.host.Remove(vmID); err != nil {
		return err
	}
	kept := sh.driven[:0]
	for _, d := range sh.driven {
		if d.vm.ID() != vmID {
			kept = append(kept, d)
		}
	}
	for i := len(kept); i < len(sh.driven); i++ {
		sh.driven[i] = drivenTask{} // release the removed VM
	}
	sh.driven = kept
	delete(fs.vmHost, vmID)
	return nil
}

// tick drives one simulation step: task loads from profiles, rack inlet
// temperatures (recirculation couples hosts through rack utilization), and
// thermal integration. The work partitions cleanly by rack — a rack's
// inlets depend only on its own hosts' utilization, and each server's heat
// only on its own rack's inlet — so racks advance independently: serially
// when PhysWorkers is 1, sharded across a bounded worker pool otherwise.
// Both paths run the identical per-rack code in a fixed reduction order, so
// results are bit-identical regardless of worker count or interleaving.
func (fs *fleetSim) tick(dt float64) error {
	t := fs.engine.Now()
	if err := fs.forEachRackShard(func(ri int) error { return fs.tickRack(ri, t, dt) }); err != nil {
		return err
	}
	// Inter-rack coupling runs serially *between* rack advances: it reads
	// the load sweep every shard just published and writes the CRAC state
	// the next tick's shards will all read, so the shard pass itself never
	// crosses a rack boundary. A nil receiver — every run that never
	// scripted a CRAC fault — returns immediately, keeping the unscripted
	// tick byte-identical to the pre-coupling physics.
	fs.coupleCRAC(dt)
	return nil
}

// coupleCRAC advances the CRAC supply/return loop one step; see
// cracDynamics for the model. No-op until a scenario activates the plant.
func (fs *fleetSim) coupleCRAC(dt float64) {
	cd := fs.crac
	if cd == nil {
		return
	}
	var sum float64
	for _, u := range fs.tickUtil {
		sum += u
	}
	mean := sum / float64(len(fs.tickUtil))
	returnC := cd.supplyC + cd.exhaustRiseC*mean
	target := returnC - cd.capacityFrac*cd.maxCoolDeltaC
	if sp := cd.setpointC + cd.setpointDeltaC; target < sp {
		target = sp
	}
	cd.supplyC += (dt / cd.tauS) * (target - cd.supplyC)
	fs.dc.SetCRAC(cluster.CRAC{
		SupplyC:       cd.supplyC,
		RecircPerUtil: cd.baseRecirc * cd.recircMult,
	})
}

// cracState lazily activates the coupling loop, seeded from the configured
// (so far constant) CRAC: the first scenario touch is the moment the plant
// becomes dynamic.
func (fs *fleetSim) cracState() *cracDynamics {
	if fs.crac == nil {
		c := fs.dc.CRAC()
		fs.crac = &cracDynamics{
			setpointC:     c.SupplyC,
			capacityFrac:  1,
			recircMult:    1,
			supplyC:       c.SupplyC,
			baseRecirc:    c.RecircPerUtil,
			tauS:          cracTauS,
			exhaustRiseC:  cracExhaustRiseC,
			maxCoolDeltaC: cracMaxCoolDeltaC,
		}
	}
	return fs.crac
}

// forEachRackShard runs fn once per rack — serially with one physics
// worker, sharded across a bounded goroutine pool otherwise. Racks are
// assigned to workers in contiguous chunks and every error lands in its
// rack's tickErrs slot, so the first error in rack order is reported
// regardless of worker interleaving: the shard layer adds no
// nondeterminism of its own.
func (fs *fleetSim) forEachRackShard(fn func(ri int) error) error {
	nr := len(fs.racks)
	workers := fs.cfg.PhysWorkers
	if workers > nr {
		workers = nr
	}
	if workers <= 1 {
		for ri := 0; ri < nr; ri++ {
			if err := fn(ri); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range fs.tickErrs {
		fs.tickErrs[i] = nil
	}
	var wg sync.WaitGroup
	chunk := (nr + workers - 1) / workers
	for lo := 0; lo < nr; lo += chunk {
		hi := min(lo+chunk, nr)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for ri := lo; ri < hi; ri++ {
				if err := fn(ri); err != nil {
					fs.tickErrs[ri] = err
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, err := range fs.tickErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// tickRack advances one rack through a full simulation step. Loads first,
// then inlets, then thermal integration: recirculation sees this tick's
// utilization, exactly as the former whole-fleet phase ordering did —
// reordering per rack is value-identical because no phase reads another
// rack's state. Each host's (util, mem) is derived in ONE walk over its VM
// list and reused for both the rack-mean inlet model and SetLoad, replacing
// the three walks (MeanUtilization + Utilization + MemActiveFrac) the
// serial loop used to pay.
func (fs *fleetSim) tickRack(ri int, t, dt float64) error {
	span := fs.rackSpan[ri]
	for i := span[0]; i < span[1]; i++ {
		sh := fs.byPos[i]
		for j := range sh.driven {
			d := &sh.driven[j]
			if st := d.vm.State(); st != vmm.VMRunning && st != vmm.VMMigrating {
				continue
			}
			if err := d.vm.SetTaskCPU(d.taskID, d.prof.At(t)); err != nil {
				return err
			}
		}
	}
	var utilSum float64
	for i := span[0]; i < span[1]; i++ {
		u, m := fs.byPos[i].host.Loads()
		fs.tickUtil[i], fs.tickMem[i] = u, m
		utilSum += u
	}
	mean := utilSum / float64(span[1]-span[0])
	inlets, err := fs.dc.RackInletTempsAt(fs.racks[ri], mean, fs.rackInlets[ri][:0])
	if err != nil {
		return err
	}
	fs.rackInlets[ri] = inlets
	for i := span[0]; i < span[1]; i++ {
		sh := fs.byPos[i]
		sh.server.SetAmbient(inlets[sh.pos.Slot])
		sh.server.SetLoad(fs.tickUtil[i], fs.tickMem[i])
		if err := sh.server.Advance(dt); err != nil {
			return err
		}
	}
	return nil
}

// simParallelMinHosts gates the auxiliary rack-sharded sweeps (sensor
// sampling, anchor fingerprint scans): below this population the goroutine
// fan-out costs more than the sweep itself — and small warm fleets keep
// their zero-allocation anchor-pass contract. The tick itself is always
// sharded (its per-rack work is orders of magnitude heavier). Values are
// bit-identical on both sides of the gate.
const simParallelMinHosts = 1024

// sample reads every host's sensor once and emits the readings, exactly as
// a fleet of monitoring agents would. At scale the sensor reads and load
// sweeps run rack-sharded into per-host scratch (each host owns its sensor
// rng, so draws are independent); emission stays serial and in host order,
// so the reading stream — and therefore ingest accounting, tee captures and
// recorded traces — is byte-identical to the serial sweep.
func (fs *fleetSim) sample(emit func(telemetry.Reading) bool) {
	if fs.dark {
		// Fleet-wide telemetry blackout: the hosts run on and keep heating,
		// but the whole sweep — reads, rng draws, emission — goes dark,
		// exactly like muting every agent at once.
		return
	}
	t := fs.engine.Now()
	parallel := fs.cfg.PhysWorkers > 1 && len(fs.byPos) >= simParallelMinHosts
	if parallel {
		// Sensor and load sweeps cannot fail (read errors become skipped
		// samples), so the shard error path is unreachable here.
		_ = fs.forEachRackShard(func(ri int) error {
			span := fs.rackSpan[ri]
			for i := span[0]; i < span[1]; i++ {
				sh := fs.byPos[i]
				if sh.muted {
					continue // dead agent: no read, no rng draw
				}
				v, err := sh.sensor.Read()
				fs.sampleOK[i] = err == nil
				fs.sampleVal[i] = v
				fs.sampleUtil[i], fs.sampleMem[i] = sh.host.Loads()
			}
			return nil
		})
	}
	for i, sh := range fs.byPos {
		if sh.muted {
			continue // dead agent: host runs on, telemetry goes dark
		}
		var v, util, mem float64
		if parallel {
			if !fs.sampleOK[i] {
				continue // transient sensor failure: the sample is simply lost
			}
			v, util, mem = fs.sampleVal[i], fs.sampleUtil[i], fs.sampleMem[i]
		} else {
			var err error
			if v, err = sh.sensor.Read(); err != nil {
				continue // transient sensor failure: the sample is simply lost
			}
			util, mem = sh.host.Loads()
		}
		// Injected sensor faults corrupt the *emitted* value only: the read
		// (and its rng draw) already happened on the healthy schedule, so
		// clearing a fault restores the exact healthy reading stream.
		switch sh.fault.Mode {
		case SensorDropped:
			continue
		case SensorStuck:
			v = sh.fault.ValueC
		case SensorNaN:
			v = math.NaN()
		case SensorBiased:
			v += sh.fault.ValueC
		}
		emit(Reading{
			HostID:  fs.order[i],
			AtS:     t,
			TempC:   v,
			Util:    util,
			MemFrac: mem,
		})
	}
}

// advance runs the simulation forward by dur seconds, ticking thermals
// every cfg.TickS and sampling telemetry every cfg.SampleS. Events are
// scheduled explicitly (not via Every, whose immediate first fire would
// double-tick at round boundaries); ticks are scheduled before samples so a
// coincident sample observes the post-advance temperature.
func (fs *fleetSim) advance(dur float64, emit func(telemetry.Reading) bool) error {
	start := fs.engine.Now()
	horizon := start + dur
	var tickErr error
	for k := 1; ; k++ {
		at := start + float64(k)*fs.cfg.TickS
		if at > horizon+1e-9 {
			break
		}
		if err := fs.engine.Schedule(at, "fleet-tick", func(e *sim.Engine) {
			if tickErr == nil {
				if err := fs.tick(fs.cfg.TickS); err != nil {
					tickErr = err
					e.Stop()
				}
			}
		}); err != nil {
			return err
		}
	}
	for k := 1; ; k++ {
		at := start + float64(k)*fs.cfg.SampleS
		if at > horizon+1e-9 {
			break
		}
		if err := fs.engine.Schedule(at, "fleet-sample", func(*sim.Engine) {
			fs.sample(emit)
		}); err != nil {
			return err
		}
	}
	if _, err := fs.engine.RunUntil(horizon); err != nil {
		return err
	}
	if tickErr != nil {
		return fmt.Errorf("fleet: tick: %w", tickErr)
	}
	return nil
}

// hostCaseAt builds the workload.Case describing a host's current
// deployment (plus an optional candidate VM), priced from the per-tick rack
// inlet cache: placement waves build hundreds of candidate cases per call,
// and utilization cannot change between ticks, so the cached inlet is
// identical to a fresh InletTemp sweep. In-round placements do shift rack
// recirculation slightly until the next tick; that drift is below sensor
// noise and deliberately ignored.
func (fs *fleetSim) hostCaseAt(sh *simHost, candidate *workload.VMSpec) (workload.Case, error) {
	inlet, err := fs.inletAt(sh)
	if err != nil {
		return workload.Case{}, err
	}
	return cluster.HostStateCase(sh.host, fs.cfg.FanCount, inlet, candidate)
}

// inletAt returns a host's inlet temperature from the per-tick rack cache
// when populated — utilization cannot change between the last tick and the
// controller's anchor pass, so the cached value is identical to a fresh
// InletTemp and skips the O(rack) mean-utilization sweep per host. Before
// any tick has run it computes directly.
func (fs *fleetSim) inletAt(sh *simHost) (float64, error) {
	if inlets := fs.rackInlets[sh.rackIdx]; sh.pos.Slot < len(inlets) {
		return inlets[sh.pos.Slot], nil
	}
	return fs.dc.InletTemp(sh.pos.Rack, sh.pos.Slot)
}

// errNoSuchVM distinguishes a vanished migration source VM.
var errNoSuchVM = errors.New("fleet: vm not found")

// largestVM returns the running VM with the highest current CPU demand on a
// host, the natural candidate to move off a hotspot.
func (fs *fleetSim) largestVM(hostID string) (*vmm.VM, error) {
	sh, ok := fs.hosts[hostID]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown host %q", hostID)
	}
	var best *vmm.VM
	for _, vm := range sh.host.VMs() { // sorted by ID: deterministic ties
		if vm.State() != vmm.VMRunning {
			continue
		}
		if best == nil || vm.CPUDemandVCPUs() > best.CPUDemandVCPUs() {
			best = vm
		}
	}
	if best == nil {
		return nil, errNoSuchVM
	}
	return best, nil
}
