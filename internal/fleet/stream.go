package fleet

// Streaming ingest: the event-driven fast path through the controller.
// With Config.StreamingIngest set, a pushed reading is applied to its
// engine session the moment it arrives (engine.PredictFresh: observe,
// calibrate on the session's Δ_update schedule, predict Δ_gap ahead) and
// the resulting prediction updates a concurrent-read hotspot margin index
// — so /v1/fleet/hotspots and a synchronous-predictive ingest reflect the
// reading in microseconds instead of waiting out the batch round.
//
// The batch round stays authoritative: every pushed reading still flows
// through the bounded pipeline into the next round (which owns staleness
// degradation, re-anchoring and eviction), and at each round boundary the
// incremental index is reconciled against the round's full hotspot
// recompute — a diff that must converge to bit-identical contents, with
// every corrected entry counted as drift in the RoundReport.

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vmtherm/internal/engine"
	"vmtherm/internal/telemetry"
)

// IngestOutcome describes what happened to one reading pushed through
// IngestBatch.
type IngestOutcome uint8

const (
	// IngestBuffered: queued for the next batch round (streaming off).
	IngestBuffered IngestOutcome = iota
	// IngestStreamed: queued AND applied on arrival — the session observed
	// the reading and the hotspot index reflects its fresh prediction.
	IngestStreamed
	// IngestDeferred: queued, but the streaming path had no session for the
	// host and no warm anchor to create one; the next batch round will.
	IngestDeferred
	// IngestDropped: the bounded pipeline was full; the reading was lost
	// (and counted) without blocking the producer.
	IngestDropped
	// IngestRejected: the reading's temperature was implausible (NaN, ±Inf,
	// or outside the telemetry plausibility bounds) and was refused — and
	// counted per reason — before it could poison a session's calibration.
	IngestRejected
)

// IngestResult is the per-reading outcome of IngestBatch.
type IngestResult struct {
	Outcome IngestOutcome
	// Pred is the synchronous Δ_gap-ahead prediction for an IngestStreamed
	// reading when the caller asked for predictions.
	Pred Prediction
}

// streamState is the controller's streaming-ingest machinery, nil unless
// Config.StreamingIngest is set.
type streamState struct {
	// anchor is the inline warm-anchor lookup bound once at construction so
	// the per-reading hot path does not allocate a closure.
	anchor engine.AnchorLookup
	// Cumulative counters, readable without any lock (/metrics, stats lines).
	applied, created, deferred, predictions atomic.Int64
	// last* anchor the per-round deltas reported in RoundReport; owned by
	// RunRound under the controller's round lock.
	lastApplied, lastCreated, lastDeferred int64
	idx                                    hotIndex
	// reconSeen is reconcile's membership scratch, reused across rounds
	// (reconciliation is serialized by the round lock).
	reconSeen map[string]bool
}

// hotIndex is the incrementally maintained hotspot set: one entry per host
// whose freshest prediction exceeds the threshold, plus a lazily rebuilt
// sorted view (descending margin, ties by host id — the same order
// sortHotspots publishes). Reads are concurrent; mutations take the write
// lock.
type hotIndex struct {
	mu      sync.RWMutex
	entries map[string]Hotspot
	sorted  []Hotspot
	dirty   bool
}

// upsert folds one fresh prediction in: above-threshold hosts get their
// entry written (only when it changed), cooled or stale hosts are removed.
func (ix *hotIndex) upsert(p *Prediction, thresholdC float64) {
	hot := !p.Stale && p.TempC > thresholdC
	ix.mu.Lock()
	if hot {
		h := Hotspot{
			HostID:         p.HostID,
			PredictedTempC: p.TempC,
			MarginC:        p.TempC - thresholdC,
			UncertaintyC:   p.UncertaintyC,
		}
		if cur, ok := ix.entries[p.HostID]; !ok || cur != h {
			ix.entries[p.HostID] = h
			ix.dirty = true
		}
	} else if _, ok := ix.entries[p.HostID]; ok {
		delete(ix.entries, p.HostID)
		ix.dirty = true
	}
	ix.mu.Unlock()
}

// reconcile replaces the index contents with the batch round's full
// recompute, entry by entry, returning how many entries had to be
// corrected (added, removed, or value-fixed) — the drift the streaming
// path accumulated since the previous round boundary. After reconcile the
// index is bit-identical to batch.
func (ix *hotIndex) reconcile(batch []Hotspot, seen map[string]bool) (drift int) {
	clear(seen)
	ix.mu.Lock()
	for i := range batch {
		h := batch[i]
		seen[h.HostID] = true
		if cur, ok := ix.entries[h.HostID]; !ok || cur != h {
			ix.entries[h.HostID] = h
			drift++
		}
	}
	for id := range ix.entries {
		if !seen[id] {
			delete(ix.entries, id)
			drift++
		}
	}
	if drift > 0 {
		ix.dirty = true
	}
	ix.mu.Unlock()
	return drift
}

// snapshotInto appends the sorted hotspot set to dst. The sorted view is
// rebuilt only when the entries changed since the last read; clean reads
// share the read lock.
func (ix *hotIndex) snapshotInto(dst []Hotspot) []Hotspot {
	ix.mu.RLock()
	if !ix.dirty {
		dst = append(dst, ix.sorted...)
		ix.mu.RUnlock()
		return dst
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	if ix.dirty {
		ix.sorted = ix.sorted[:0]
		for _, h := range ix.entries {
			ix.sorted = append(ix.sorted, h)
		}
		sortHotspots(ix.sorted)
		ix.dirty = false
	}
	dst = append(dst, ix.sorted...)
	ix.mu.Unlock()
	return dst
}

// streamDelta is one round's worth of streaming activity.
type streamDelta struct {
	applied, created, deferred int64
	drift                      int
}

// roundDelta reports activity since the previous round boundary. Called
// under the round lock.
func (st *streamState) roundDelta() (d streamDelta) {
	a, cr, de := st.applied.Load(), st.created.Load(), st.deferred.Load()
	d.applied, d.created, d.deferred = a-st.lastApplied, cr-st.lastCreated, de-st.lastDeferred
	st.lastApplied, st.lastCreated, st.lastDeferred = a, cr, de
	return d
}

// newStreamState wires the streaming machinery for a controller.
func newStreamState(c *Controller) *streamState {
	st := &streamState{
		idx:       hotIndex{entries: make(map[string]Hotspot)},
		reconSeen: make(map[string]bool),
	}
	st.anchor = c.warmAnchor
	return st
}

// warmAnchor is the inline anchor lookup for hosts pushed before any round
// has seen them: a quantized (util, mem) probe of the anchor cache — the
// warm case that needs no model evaluation. It is strictly best-effort:
// simulated fleets defer (their cache keys are deployment fingerprints, a
// different namespace), a round in flight defers (the cache wants the
// round lock; TryLock never blocks the push path), and a population at the
// MaxHosts bound defers rather than grow the engine past it.
func (c *Controller) warmAnchor(r telemetry.Reading) (float64, bool) {
	if c.sim != nil || c.cache == nil {
		return 0, false
	}
	if c.cfg.MaxHosts > 0 && c.eng.Len() >= c.cfg.MaxHosts {
		return 0, false
	}
	key, _, _ := c.cache.Quant().UtilMem(telemetry.Clamp01(r.Util), telemetry.Clamp01(r.MemFrac))
	if !c.mu.TryLock() {
		return 0, false
	}
	v, ok := c.cache.Get(key)
	c.mu.Unlock()
	if !ok || math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// StreamingEnabled reports whether this controller applies pushed readings
// on arrival.
func (c *Controller) StreamingEnabled() bool { return c.stream != nil }

// StreamTotals returns the cumulative streaming-ingest counters (all zero
// when streaming is off). Safe to call concurrently with everything.
func (c *Controller) StreamTotals() (applied, created, deferred, predictions int64) {
	if c.stream == nil {
		return 0, 0, 0, 0
	}
	st := c.stream
	return st.applied.Load(), st.created.Load(), st.deferred.Load(), st.predictions.Load()
}

// HotspotStalenessS reports how many seconds ago the served hotspot set
// was last refreshed — a per-arrival index update in streaming mode, the
// round's publication otherwise. 0 until anything has been served.
func (c *Controller) HotspotStalenessS() float64 {
	v := c.hotUpdatedNano.Load()
	if v == 0 {
		return 0
	}
	s := float64(time.Now().UnixNano()-v) / 1e9
	if s < 0 {
		return 0
	}
	return s
}

// StreamHotspotsInto appends the live incremental hotspot set (sorted by
// descending margin, ties by host id) to dst and returns it. This is the
// freshest view the controller has — it reflects pushed readings
// immediately, ahead of the round that will confirm them. Returns dst
// unchanged when streaming is off.
func (c *Controller) StreamHotspotsInto(dst []Hotspot) []Hotspot {
	if c.stream == nil {
		return dst
	}
	return c.stream.idx.snapshotInto(dst)
}

// IngestBatch pushes a batch of readings through the ingest pipeline and,
// when streaming is enabled, applies each accepted reading on arrival:
// observe → calibrate → Δ_gap-ahead predict → hotspot-index update. The
// per-reading outcome (and, when wantPred, the fresh prediction) is
// written to results[i]; results must be at least len(readings) long.
// Returns how many readings the pipeline accepted. Safe for concurrent use
// with RunRound and itself.
//
// Every accepted reading still reaches the next batch round through the
// pipeline — streaming moves freshness, not authority. A dropped reading
// is NOT applied: backpressure must mean the same thing on both paths.
func (c *Controller) IngestBatch(readings []Reading, wantPred bool, results []IngestResult) (accepted int) {
	emit := *c.emit.Load()
	st := c.stream
	var es engine.StreamStats
	var touched bool
	for i := range readings {
		if reason := telemetry.ClassifyTemp(readings[i].TempC); reason != telemetry.RejectNone {
			// Classified here (not in push) so the caller gets the typed
			// outcome; counted directly so the reading is tallied once.
			c.ingest.countRejected(reason)
			results[i] = IngestResult{Outcome: IngestRejected}
			continue
		}
		if !emit(readings[i]) {
			results[i] = IngestResult{Outcome: IngestDropped}
			continue
		}
		accepted++
		if st == nil {
			results[i] = IngestResult{Outcome: IngestBuffered}
			continue
		}
		var p Prediction
		if !c.eng.PredictFresh(readings[i], st.anchor, &es, &p) {
			results[i] = IngestResult{Outcome: IngestDeferred}
			continue
		}
		st.idx.upsert(&p, c.cfg.ThresholdC)
		touched = true
		if wantPred {
			results[i] = IngestResult{Outcome: IngestStreamed, Pred: p}
			st.predictions.Add(1)
		} else {
			results[i] = IngestResult{Outcome: IngestStreamed}
		}
	}
	if st != nil {
		if es.Applied > 0 {
			st.applied.Add(int64(es.Applied))
		}
		if es.Created > 0 {
			st.created.Add(int64(es.Created))
		}
		if es.Deferred > 0 {
			st.deferred.Add(int64(es.Deferred))
		}
		if touched {
			c.hotUpdatedNano.Store(time.Now().UnixNano())
		}
	}
	return accepted
}
