package fleet

// Checkpoint/Restore: the controller's crash-safety surface. Checkpoint cuts
// the full serving state at a round boundary — every engine session's γ
// calibration and staleness clocks, the round counter, the pending placement
// queue, in-flight migration proposals, cumulative ingest counters, the
// streaming hotspot index, and the anchor cache with its generation split —
// into a checkpoint.State; Restore rebuilds all of it on a freshly
// constructed controller of the same configuration. A restored controller
// continues bit-identically to a never-restarted twin: same RoundReports,
// same recorded trace bytes (proved by TestCheckpointRestoreTwin).

import (
	"fmt"
	"slices"
	"time"

	"vmtherm/internal/checkpoint"
	"vmtherm/internal/telemetry"
)

// Checkpoint captures the controller's full serving state at a round
// boundary. Safe to call concurrently with Submit/Ingest (it takes the round
// lock); call it between rounds, not from inside one.
//
// Readings sitting in the bounded ingest pipeline but not yet drained by a
// round are NOT captured: a checkpoint is a round-boundary cut, and an
// undrained reading is indistinguishable from one that arrived during the
// outage — the staleness machinery handles both identically.
func (c *Controller) Checkpoint() (*checkpoint.State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim != nil {
		return nil, fmt.Errorf("fleet: checkpointing a simulated fleet is not supported (the substrate is not captured); run source-driven")
	}

	st := &checkpoint.State{
		SavedUnixNano: time.Now().UnixNano(),
		Round:         c.round,
		SourceName:    c.src.Name(),
		SourceNowS:    c.src.NowS(),
		Engine:        c.eng.Snapshot(),
		Order:         slices.Clone(c.order),
		OrderDirty:    c.orderDirty,
		RecentErrors:  slices.Clone(c.recentErrs),
		LastRejected:  c.lastRejected,
		LastFanout:    c.lastFanout.Load(),
	}

	st.Latest = make([]telemetry.Reading, 0, len(c.latest))
	for _, r := range c.latest {
		st.Latest = append(st.Latest, r)
	}
	slices.SortFunc(st.Latest, func(a, b telemetry.Reading) int {
		if a.HostID < b.HostID {
			return -1
		}
		if a.HostID > b.HostID {
			return 1
		}
		return 0
	})

	if len(c.pendingP) > 0 {
		st.Proposals = make([]checkpoint.Proposal, len(c.pendingP))
		for i, p := range c.pendingP {
			st.Proposals[i] = checkpoint.Proposal{
				VMID:       p.VMID,
				FromHostID: p.FromHostID,
				ToHostID:   p.ToHostID,
				MarginC:    p.MarginC,
			}
		}
	}

	c.pendMu.Lock()
	st.PendingVMs = slices.Clone(c.pending)
	c.pendMu.Unlock()

	st.Ingest.Received, st.Ingest.Dropped, st.Ingest.Superseded = c.ingest.stats()
	st.Ingest.Rejected = c.ingest.rejectedByReason()

	if s := c.stream; s != nil {
		ss := &checkpoint.StreamState{
			Applied:     s.applied.Load(),
			Created:     s.created.Load(),
			Deferred:    s.deferred.Load(),
			Predictions: s.predictions.Load(),
		}
		s.idx.mu.RLock()
		for _, h := range s.idx.entries {
			ss.Hotspots = append(ss.Hotspots, checkpoint.Hotspot{
				HostID:         h.HostID,
				PredictedTempC: h.PredictedTempC,
				MarginC:        h.MarginC,
				UncertaintyC:   h.UncertaintyC,
			})
		}
		s.idx.mu.RUnlock()
		slices.SortFunc(ss.Hotspots, func(a, b checkpoint.Hotspot) int {
			if a.HostID < b.HostID {
				return -1
			}
			if a.HostID > b.HostID {
				return 1
			}
			return 0
		})
		st.Stream = ss
	}

	if c.cache != nil {
		cur, prev := c.cache.DumpGenerations()
		st.AnchorCache = &checkpoint.CacheState{
			Cur:   cur,
			Prev:  prev,
			Stats: c.cache.Stats(),
			Epoch: c.cache.Epoch(),
		}
	}

	return st, nil
}

// Restore rebuilds the checkpointed serving state on this controller, which
// must be freshly constructed with the same configuration and source kind
// the checkpoint was taken under. The telemetry source's clock is
// fast-forwarded to the checkpoint's clock with readings discarded — the
// restored process resumes at the cut, and replayed arrivals before it would
// double-observe. On error the controller must be discarded (state may be
// partially applied).
func (c *Controller) Restore(st *checkpoint.State) error {
	if st == nil {
		return fmt.Errorf("fleet: restore: nil checkpoint state")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim != nil {
		return fmt.Errorf("fleet: restore into a simulated fleet is not supported")
	}
	if got := c.src.Name(); got != st.SourceName {
		return fmt.Errorf("fleet: restore: checkpoint was taken under source %q, controller runs %q", st.SourceName, got)
	}
	if st.Round < 0 {
		return fmt.Errorf("fleet: restore: negative round %d", st.Round)
	}
	if len(st.Engine.Sessions) > c.cfg.MaxHosts {
		return fmt.Errorf("fleet: restore: checkpoint has %d sessions, MaxHosts is %d", len(st.Engine.Sessions), c.cfg.MaxHosts)
	}

	if err := c.eng.Restore(st.Engine); err != nil {
		return fmt.Errorf("fleet: restore: %w", err)
	}

	clear(c.latest)
	for _, r := range st.Latest {
		c.latest[r.HostID] = r
	}
	c.order = append(c.order[:0], st.Order...)
	c.orderDirty = st.OrderDirty

	c.pendingP = c.pendingP[:0]
	for _, p := range st.Proposals {
		c.pendingP = append(c.pendingP, MigrationProposal{
			VMID:       p.VMID,
			FromHostID: p.FromHostID,
			ToHostID:   p.ToHostID,
			MarginC:    p.MarginC,
		})
	}

	c.pendMu.Lock()
	c.pending = append(c.pending[:0], st.PendingVMs...)
	c.pendMu.Unlock()

	c.ingest.received.Store(st.Ingest.Received)
	c.ingest.dropped.Store(st.Ingest.Dropped)
	c.ingest.superseded.Store(st.Ingest.Superseded)
	for i := range c.ingest.rejected {
		c.ingest.rejected[i].Store(st.Ingest.Rejected[i])
	}

	c.recentErrs = append(c.recentErrs[:0], st.RecentErrors...)
	if len(c.recentErrs) == 0 {
		c.recentErrs = nil
	}
	c.lastRejected = st.LastRejected
	c.lastFanout.Store(st.LastFanout)
	c.round = st.Round

	if ss := st.Stream; ss != nil {
		s := c.stream
		if s == nil {
			return fmt.Errorf("fleet: restore: checkpoint carries streaming state but streaming ingest is off")
		}
		s.applied.Store(ss.Applied)
		s.created.Store(ss.Created)
		s.deferred.Store(ss.Deferred)
		s.predictions.Store(ss.Predictions)
		// Per-round deltas restart from the restored totals, not from zero —
		// otherwise the first restored round would report the whole history.
		s.lastApplied, s.lastCreated, s.lastDeferred = ss.Applied, ss.Created, ss.Deferred
		s.idx.mu.Lock()
		clear(s.idx.entries)
		for _, h := range ss.Hotspots {
			s.idx.entries[h.HostID] = Hotspot{
				HostID:         h.HostID,
				PredictedTempC: h.PredictedTempC,
				MarginC:        h.MarginC,
				UncertaintyC:   h.UncertaintyC,
			}
		}
		s.idx.dirty = true
		s.idx.mu.Unlock()
	} else if c.stream != nil {
		// Checkpoint taken with streaming off, restored with it on: start the
		// streaming counters cold but leave the controller usable.
		c.stream.idx.mu.Lock()
		clear(c.stream.idx.entries)
		c.stream.idx.dirty = true
		c.stream.idx.mu.Unlock()
	}

	if cs := st.AnchorCache; cs != nil && c.cache != nil {
		if err := c.cache.RestoreGenerations(cs.Cur, cs.Prev); err != nil {
			return fmt.Errorf("fleet: restore: anchor cache: %w", err)
		}
		c.cache.RestoreStats(cs.Stats, cs.Epoch)
	}

	// Fast-forward the fresh source's clock to the checkpoint's, discarding
	// whatever it emits on the way: those readings were already observed (or
	// already superseded) before the cut. TraceSource emission depends only
	// on its clock, so one big Advance lands on exactly the same next-reading
	// boundary the original source had.
	if dt := st.SourceNowS - c.src.NowS(); dt > 0 {
		if err := c.src.Advance(dt, func(telemetry.Reading) bool { return true }); err != nil {
			return fmt.Errorf("fleet: restore: fast-forward source: %w", err)
		}
	}

	return nil
}

// RestoredSessions reports the live session count — the daemons log it after
// a restore so operators (and the CI kill-and-restart job) can verify warm
// state survived.
func (c *Controller) RestoredSessions() int { return c.eng.Len() }
