package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vmtherm/internal/checkpoint"
	"vmtherm/internal/dataset"
	"vmtherm/internal/telemetry"
)

// loadTwinTrace loads the committed replay trace shared with the golden test.
func loadTwinTrace(t *testing.T) []telemetry.Reading {
	t.Helper()
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	readings, err := dataset.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	return readings
}

// newTwinController builds a fresh source-driven controller over the trace
// with a recorder teed in, mirroring `vmtherm-fleetd -source trace -record`.
func newTwinController(t *testing.T, readings []telemetry.Reading) (*Controller, *telemetry.Recorder) {
	t.Helper()
	src, err := telemetry.NewTraceSource(readings, telemetry.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewWithSource(traceConfig(), src, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	rec := &telemetry.Recorder{}
	ctl.TeeTelemetry(rec.Emit)
	return ctl, rec
}

// zeroClocks strips the wall-clock fields; everything else must be
// bit-identical between the twins.
func zeroClocks(reports []RoundReport) []RoundReport {
	for i := range reports {
		reports[i].Latency = 0
		reports[i].ControlLatency = 0
	}
	return reports
}

func reportJSON(t *testing.T, reports []RoundReport) []byte {
	t.Helper()
	js, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return js
}

// traceBytes serializes recorded readings the way `-record` does.
func traceBytes(t *testing.T, readings []telemetry.Reading) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteTrace(&buf, readings); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointRestoreTwin is the crash-safety contract: a controller
// checkpointed at round k, torn down, and restored into a fresh process
// continues with RoundReports AND recorded trace bytes bit-identical to a
// twin that never restarted — the restart is invisible in every observable.
func TestCheckpointRestoreTwin(t *testing.T) {
	const rounds, cut = 12, 5
	readings := loadTwinTrace(t)

	// Twin A: never restarted.
	ctlA, recA := newTwinController(t, readings)
	reportsA, err := ctlA.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	zeroClocks(reportsA)

	// Twin B: run to the cut, checkpoint through the real file store, drop.
	mgr := checkpoint.NewManager(filepath.Join(t.TempDir(), "ckpt"), 0)
	ctlB, _ := newTwinController(t, readings)
	if _, err := ctlB.Run(cut); err != nil {
		t.Fatal(err)
	}
	stB, err := ctlB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	liveAtCut := ctlB.RestoredSessions()
	if liveAtCut == 0 {
		t.Fatal("no live sessions at the cut; the twin test would prove nothing")
	}
	if err := mgr.Save(stB); err != nil {
		t.Fatal(err)
	}
	ctlB = nil

	// "New process": fresh manager, fresh controller, fresh source.
	mgr2 := checkpoint.NewManager(mgr.Path(), 0)
	restored, err := mgr2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored == nil {
		t.Fatal("Restore returned cold start; checkpoint file missing")
	}
	ctlB2, recB2 := newTwinController(t, readings)
	if err := ctlB2.Restore(restored); err != nil {
		t.Fatal(err)
	}
	if got := ctlB2.RestoredSessions(); got != liveAtCut {
		t.Fatalf("restored %d sessions, want %d (cold sessions after restore)", got, liveAtCut)
	}

	reportsB2, err := ctlB2.Run(rounds - cut)
	if err != nil {
		t.Fatal(err)
	}
	zeroClocks(reportsB2)

	wantJS := reportJSON(t, reportsA[cut:])
	gotJS := reportJSON(t, reportsB2)
	if !bytes.Equal(gotJS, wantJS) {
		t.Fatalf("restored twin's reports diverged from the never-restarted twin\nwant:\n%s\ngot:\n%s", wantJS, gotJS)
	}

	// Trace bytes: the restored twin records only post-cut arrivals (its
	// restore fast-forward discards replayed history), so twin A's capture
	// filtered to after the checkpoint clock must match byte for byte.
	var wantPost []telemetry.Reading
	for _, r := range recA.Readings {
		if r.AtS > restored.SourceNowS {
			wantPost = append(wantPost, r)
		}
	}
	if len(recB2.Readings) == 0 || len(wantPost) == 0 {
		t.Fatal("post-cut capture is empty; the byte comparison would be vacuous")
	}
	if got, want := traceBytes(t, recB2.Readings), traceBytes(t, wantPost); !bytes.Equal(got, want) {
		t.Fatalf("restored twin's recorded trace bytes diverged (got %d bytes, want %d)", len(got), len(want))
	}

	// No session went cold across the restart: the continuation rounds must
	// not evict or re-create anything the cut had live.
	for _, r := range reportsB2 {
		if r.Evicted != 0 {
			t.Fatalf("restored twin evicted %d sessions in round %d: warm state was lost", r.Evicted, r.Round)
		}
		if r.SessionsLive < liveAtCut {
			t.Fatalf("round %d has %d live sessions, below the %d restored", r.Round, r.SessionsLive, liveAtCut)
		}
	}
}

// TestCheckpointRestoreAfterKillMidWrite covers the SIGKILL-mid-checkpoint
// crash: the newest generation is torn (simulating power loss during the
// write path before the atomic rename completed, or a corrupted disk
// block), and the restart must fall back to the previous good generation —
// with zero evicted sessions — and continue bit-identically to the twin
// from that earlier cut.
func TestCheckpointRestoreAfterKillMidWrite(t *testing.T) {
	const rounds, firstCut, secondCut = 12, 3, 5
	readings := loadTwinTrace(t)

	ctlA, _ := newTwinController(t, readings)
	reportsA, err := ctlA.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	zeroClocks(reportsA)

	base := filepath.Join(t.TempDir(), "ckpt")
	mgr := checkpoint.NewManager(base, 0)
	ctlB, _ := newTwinController(t, readings)
	if _, err := ctlB.Run(firstCut); err != nil {
		t.Fatal(err)
	}
	st1, err := ctlB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	liveAtFirstCut := ctlB.RestoredSessions()
	if err := mgr.Save(st1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctlB.Run(secondCut - firstCut); err != nil {
		t.Fatal(err)
	}
	st2, err := ctlB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Save(st2); err != nil {
		t.Fatal(err)
	}

	// The SIGKILL: tear the newest generation mid-frame.
	gens := checkpoint.NewStore(base).Generations()
	newest := gens[1] // second save landed in slot 2
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	mgr2 := checkpoint.NewManager(base, 0)
	restored, err := mgr2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored == nil {
		t.Fatal("restore fell through to cold start despite a good previous generation")
	}
	if restored.Round != firstCut {
		t.Fatalf("restored round %d, want the previous good generation's %d", restored.Round, firstCut)
	}

	ctlB2, _ := newTwinController(t, readings)
	if err := ctlB2.Restore(restored); err != nil {
		t.Fatal(err)
	}
	if got := ctlB2.RestoredSessions(); got != liveAtFirstCut {
		t.Fatalf("restored %d sessions, want %d — sessions went cold across the crash", got, liveAtFirstCut)
	}

	reportsB2, err := ctlB2.Run(rounds - firstCut)
	if err != nil {
		t.Fatal(err)
	}
	zeroClocks(reportsB2)
	for _, r := range reportsB2 {
		if r.Evicted != 0 {
			t.Fatalf("round %d evicted %d sessions after crash recovery", r.Round, r.Evicted)
		}
	}
	if got, want := reportJSON(t, reportsB2), reportJSON(t, reportsA[firstCut:]); !bytes.Equal(got, want) {
		t.Fatalf("crash-recovered twin diverged from the never-restarted twin\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestCheckpointRestoreStreamingState: the streaming-ingest machinery's
// durable state — cumulative counters, per-round delta anchors, the live
// hotspot index — must survive a restore, so a restarted streaming daemon
// serves the same hotspot set and continuous totals.
func TestCheckpointRestoreStreamingState(t *testing.T) {
	cfg := streamGridConfig()
	src := &gridSource{}
	ctl, err := NewWithSource(cfg, src, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		readings := make([]Reading, 24)
		for i := range readings {
			util := float64(i) / float64(len(readings)-1)
			readings[i] = Reading{
				HostID:  fmt.Sprintf("h%03d", i),
				AtS:     src.now + 0.5,
				TempC:   30 + 45*util,
				Util:    util,
				MemFrac: 0.5,
			}
		}
		results := make([]IngestResult, len(readings))
		ctl.IngestBatch(readings, true, results)
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
	}

	st, err := ctl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream == nil {
		t.Fatal("checkpoint of a streaming controller has no stream state")
	}
	wantA, wantC, wantD, wantP := ctl.StreamTotals()
	wantHot := ctl.StreamHotspotsInto(nil)
	if wantA == 0 || len(wantHot) == 0 {
		t.Fatalf("streaming run too tame (applied %d, hotspots %d)", wantA, len(wantHot))
	}

	ctl2, err := NewWithSource(cfg, &gridSource{}, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl2.Restore(st); err != nil {
		t.Fatal(err)
	}
	gotA, gotC, gotD, gotP := ctl2.StreamTotals()
	if gotA != wantA || gotC != wantC || gotD != wantD || gotP != wantP {
		t.Fatalf("restored stream totals (%d,%d,%d,%d) != checkpointed (%d,%d,%d,%d)",
			gotA, gotC, gotD, gotP, wantA, wantC, wantD, wantP)
	}
	gotHot := ctl2.StreamHotspotsInto(nil)
	if len(gotHot) != len(wantHot) {
		t.Fatalf("restored index has %d hotspots, want %d", len(gotHot), len(wantHot))
	}
	for i := range gotHot {
		if gotHot[i] != wantHot[i] {
			t.Fatalf("hotspot %d: restored %+v != checkpointed %+v", i, gotHot[i], wantHot[i])
		}
	}

	// The first restored round must report per-round deltas, not history:
	// with no pushes between restore and round, stream deltas are zero.
	rep, err := ctl2.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamApplied != 0 || rep.StreamCreated != 0 || rep.StreamDeferred != 0 {
		t.Fatalf("first restored round replayed streaming history: %+v", rep)
	}
}

// TestCheckpointGuards: the checkpoint/restore pair must refuse states it
// cannot faithfully rebuild.
func TestCheckpointGuards(t *testing.T) {
	readings := loadTwinTrace(t)
	ctl, _ := newTwinController(t, readings)
	if _, err := ctl.Run(2); err != nil {
		t.Fatal(err)
	}
	st, err := ctl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Simulated fleets are not checkpointable (the substrate isn't captured).
	cfg := traceConfig()
	cfg.Racks, cfg.HostsPerRack = 1, 2
	simCtl, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simCtl.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a simulated fleet did not error")
	}
	if err := simCtl.Restore(st); err == nil {
		t.Fatal("Restore into a simulated fleet did not error")
	}

	// Source-kind mismatch must be rejected.
	fresh, _ := newTwinController(t, readings)
	bad := *st
	bad.SourceName = "scrape"
	if err := fresh.Restore(&bad); err == nil {
		t.Fatal("Restore accepted a checkpoint from a different source kind")
	}

	// Nil state must be rejected.
	if err := fresh.Restore(nil); err == nil {
		t.Fatal("Restore accepted a nil state")
	}
}
