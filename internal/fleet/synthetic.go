package fleet

import (
	"fmt"

	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// SyntheticStablePredictor is a physics-flavored stand-in for the trained
// SVM: it maps a host case to ambient plus risePerUtilC × utilization. The
// absolute level is deliberately imperfect — the dynamic calibration γ is
// what reconciles it with the measured trajectory, exactly as with a real
// model. It backs `vmtherm-fleetd -synthetic`, the examples, and the test
// suites (75 °C/util roughly matches the simulated substrate's full-load
// rise).
func SyntheticStablePredictor(risePerUtilC float64) BatchCasePredictor {
	return func(cases []workload.Case) ([]float64, error) {
		out := make([]float64, len(cases))
		for i, c := range cases {
			var demand float64
			for _, vm := range c.VMs {
				var s float64
				for _, ts := range vm.Tasks {
					s += ts.Task.CPUFraction
				}
				if cap := float64(vm.Config.VCPUs); s > cap {
					s = cap
				}
				demand += s
			}
			util := demand / float64(c.Host.Cores)
			if util > 1 {
				util = 1
			}
			out[i] = c.AmbientC + risePerUtilC*util
		}
		return out, nil
	}
}

// HeavyVMSpec builds a VM spec that pins vcpus worth of constant full CPU
// load — the adversarial tenant used to provoke hotspots in tests, demos
// and `vmtherm-fleetd -hotseed`.
func HeavyVMSpec(id string, vcpus int, memGB float64) workload.VMSpec {
	spec := workload.VMSpec{
		ID:     id,
		Config: vmm.VMConfig{VCPUs: vcpus, MemoryGB: memGB},
	}
	for k := 0; k < vcpus; k++ {
		spec.Tasks = append(spec.Tasks, workload.TaskSpec{
			Task: vmm.Task{
				ID:          fmt.Sprintf("%s-t%d", id, k),
				Class:       vmm.CPUBound,
				CPUFraction: 1,
				MemGB:       0.5,
			},
			Profile: workload.Constant{Level: 1},
		})
	}
	return spec
}
