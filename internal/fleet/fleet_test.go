package fleet

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// syntheticStable maps a host case to ambient plus a utilization-
// proportional rise; the dynamic calibration γ reconciles its deliberate
// imperfection with the measured trajectory, exactly as with a real model.
var syntheticStable = SyntheticStablePredictor(75)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Racks = 2
	cfg.HostsPerRack = 8
	cfg.ThresholdC = 70
	cfg.MaxMigrationsPerRound = 0
	cfg.Seed = 7
	return cfg
}

// seedHotHost pins host r0-h0 at full utilization: 6 × 4-vCPU VMs of
// all-out CPU tasks (24 vCPUs on 16 cores ⇒ util 1.0).
func seedHotHost(t *testing.T, c *Controller) {
	t.Helper()
	for v := 0; v < 6; v++ {
		if err := c.PlaceAt("r0-h0", HeavyVMSpec(fmt.Sprintf("hot-%02d", v), 4, 8)); err != nil {
			t.Fatalf("seeding: %v", err)
		}
	}
}

// TestClosedLoopPredictsHotspotAheadOfMeasurement is the tentpole scenario:
// a 2-rack/8-host fleet with one overloaded machine. The control plane must
// flag the machine as a hotspot from its *predicted* Δ_gap-ahead
// temperature strictly before the measured die temperature crosses the
// threshold — the proactive window the paper's prediction exists to create.
func TestClosedLoopPredictsHotspotAheadOfMeasurement(t *testing.T) {
	cfg := testConfig()
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	seedHotHost(t, c)

	const hot = "r0-h0"
	flaggedRound := 0     // first round the hotspot map names the hot host
	measuredAtFlag := 0.0 // true die temp when first flagged
	crossedRound := 0     // first round the *measured* temp exceeds threshold
	for round := 1; round <= 80; round++ {
		rep, err := c.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		die, err := c.MeasuredDieTemp(hot)
		if err != nil {
			t.Fatal(err)
		}
		if crossedRound == 0 && die > cfg.ThresholdC {
			crossedRound = round
		}
		snap := c.Hotspots()
		if flaggedRound == 0 {
			for _, h := range snap.Hotspots {
				if h.HostID == hot {
					flaggedRound = round
					measuredAtFlag = die
					if h.MarginC <= 0 {
						t.Errorf("flagged hotspot has non-positive margin %v", h.MarginC)
					}
					if h.UncertaintyC <= 0 {
						t.Errorf("hotspot missing uncertainty")
					}
				}
			}
		}
		if rep.Hosts != 16 {
			t.Fatalf("round %d saw %d hosts, want 16", round, rep.Hosts)
		}
		if flaggedRound != 0 && crossedRound != 0 {
			break
		}
	}
	if flaggedRound == 0 {
		t.Fatal("hot host was never flagged from predicted temperature")
	}
	if crossedRound == 0 {
		t.Fatal("measured temperature never crossed the threshold (scenario broken)")
	}
	if flaggedRound >= crossedRound {
		t.Fatalf("hotspot flagged at round %d, not ahead of measured crossing at round %d",
			flaggedRound, crossedRound)
	}
	if measuredAtFlag > cfg.ThresholdC {
		t.Fatalf("at flag time measured temp %.2f already above threshold %.2f",
			measuredAtFlag, cfg.ThresholdC)
	}
	t.Logf("flagged at round %d (measured %.1f °C), measured crossed at round %d",
		flaggedRound, measuredAtFlag, crossedRound)

	// The cool hosts must never appear in the map.
	snap := c.Hotspots()
	for _, h := range snap.Hotspots {
		if h.HostID != "r0-h0" {
			t.Errorf("unexpected hotspot %q", h.HostID)
		}
	}
	// Thermal-aware placement must route a new VM away from the hotspot.
	dec, err := c.PlaceNow(HeavyVMSpec("newcomer", 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != Placed {
		t.Fatalf("placement %s (%s): %s", dec.Status, dec.Code, dec.Reason)
	}
	if dec.HostID == hot {
		t.Fatalf("thermal-aware placement chose the hotspot %q", dec.HostID)
	}
	// A retried request with the same VM id must be rejected, not doubled.
	dup, err := c.PlaceNow(HeavyVMSpec("newcomer", 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if dup.Status != Rejected || dup.Code != RejectDuplicateID {
		t.Fatalf("duplicate VM id accepted: %+v", dup)
	}
}

// TestReconciliationMigratesOffHotspot verifies the proposal→reconcile path:
// with migrations enabled, the controller proposes moving the hotspot's
// largest VM and applies the move on a subsequent round.
func TestReconciliationMigratesOffHotspot(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMigrationsPerRound = 1
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	seedHotHost(t, c)

	proposed, applied := 0, 0
	for round := 1; round <= 40 && applied == 0; round++ {
		rep, err := c.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		proposed += rep.ProposedMoves
		applied += rep.AppliedMoves
	}
	if proposed == 0 {
		t.Fatal("no migration was ever proposed for the hotspot")
	}
	if applied == 0 {
		t.Fatal("no proposed migration was ever reconciled")
	}
}

// TestDeterministicRounds: the same seed and scenario must reproduce the
// same snapshots — map-order nondeterminism anywhere in the loop would
// surface here.
func TestDeterministicRounds(t *testing.T) {
	run := func() Snapshot {
		c, err := New(testConfig(), syntheticStable)
		if err != nil {
			t.Fatal(err)
		}
		seedHotHost(t, c)
		if _, err := c.Run(12); err != nil {
			t.Fatal(err)
		}
		return c.Hotspots()
	}
	a, b := run(), run()
	if len(a.Hotspots) != len(b.Hotspots) {
		t.Fatalf("hotspot counts differ: %d vs %d", len(a.Hotspots), len(b.Hotspots))
	}
	for i := range a.Hotspots {
		if a.Hotspots[i] != b.Hotspots[i] {
			t.Fatalf("hotspot %d differs: %+v vs %+v", i, a.Hotspots[i], b.Hotspots[i])
		}
	}
	for id, v := range a.Predicted {
		if w, ok := b.Predicted[id]; !ok || math.Abs(v-w) > 1e-12 {
			t.Fatalf("prediction for %s differs: %v vs %v", id, v, w)
		}
	}
}

// TestStaleTelemetryDegradesGracefully: a host whose telemetry stops must be
// reported stale and excluded from the hotspot map instead of poisoning it.
func TestStaleTelemetryDegradesGracefully(t *testing.T) {
	cfg := testConfig()
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	seedHotHost(t, c)
	if _, err := c.Run(3); err != nil {
		t.Fatal(err)
	}
	// The hot host's monitoring agent dies; its machine keeps heating.
	if err := c.SetTelemetryMuted("r0-h0", true); err != nil {
		t.Fatal(err)
	}
	// StaleAfterS is 45 s = 3 rounds; run enough rounds to cross it.
	rounds, err := c.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	last := rounds[len(rounds)-1]
	if last.StaleHosts == 0 {
		t.Fatal("round report shows no stale hosts")
	}
	if last.MaxStalenessS <= cfg.StaleAfterS {
		t.Fatalf("max staleness %v not beyond stale-after %v", last.MaxStalenessS, cfg.StaleAfterS)
	}
	snap := c.Hotspots()
	foundStale := false
	for _, id := range snap.StaleHosts {
		if id == "r0-h0" {
			foundStale = true
		}
	}
	if !foundStale {
		t.Fatalf("hot host with frozen telemetry not reported stale (stale=%v)", snap.StaleHosts)
	}
	for _, h := range snap.Hotspots {
		if h.HostID == "r0-h0" {
			t.Fatal("stale host must be excluded from the hotspot map")
		}
	}
	if _, ok := snap.Predicted["r0-h0"]; ok {
		t.Fatal("stale host must not publish a prediction")
	}
}

// TestConcurrentIngestDuringRounds drives prediction rounds while external
// producers hammer the telemetry pipeline and readers poll the snapshot —
// the -race proof for the ingest path.
func TestConcurrentIngestDuringRounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Racks = 1
	cfg.HostsPerRack = 4
	cfg.ThresholdC = 70
	cfg.Seed = 3
	cfg.IngestBuffer = 64 // small enough that drops actually happen
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceAt("r0-h0", HeavyVMSpec("w", 4, 8)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Ingest(Reading{
					HostID: fmt.Sprintf("r0-h%d", i%4),
					AtS:    float64(i),
					TempC:  40 + float64(i%20),
					Util:   0.5,
				})
				_ = c.Hotspots()
				if i%17 == 0 {
					c.Submit(HeavyVMSpec(fmt.Sprintf("g%d-v%d", g, i), 1, 2))
				}
				i++
			}
		}(g)
	}
	for round := 0; round < 8; round++ {
		if _, err := c.RunRound(); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	rec, dropped, superseded := c.ingest.stats()
	if rec == 0 {
		t.Fatal("pipeline recorded no receipts")
	}
	// The simulator samples every host 3× per round (SampleS=5, Δ_update=15)
	// on top of the external producers, so most drained readings never
	// become a host's latest: the superseded counter must make that ingest
	// pressure visible instead of silently discarding it.
	if superseded == 0 {
		t.Fatal("no superseded readings counted despite producers outpacing the loop")
	}
	t.Logf("ingested %d readings, dropped %d, superseded %d", rec, dropped, superseded)
}
