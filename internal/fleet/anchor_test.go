package fleet

import (
	"bytes"
	"context"
	"fmt"
	"maps"
	"math"
	"testing"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/telemetry"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// gridSource is a no-op telemetry source for tests that inject readings
// directly into the controller.
type gridSource struct{ now float64 }

func (s *gridSource) Name() string { return "grid" }
func (s *gridSource) NowS() float64 {
	return s.now
}
func (s *gridSource) Advance(dtS float64, _ func(telemetry.Reading) bool) error {
	s.now += dtS
	return nil
}

// gridController builds a source-driven controller whose tracked population
// is one host per (util, memFrac) grid point.
func gridController(t *testing.T, cfg Config, predict BatchCasePredictor, utils, mems []float64) *Controller {
	t.Helper()
	cfg.MaxHosts = len(utils)*len(mems) + 1
	ctl, err := NewWithSource(cfg, &gridSource{}, predict)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range utils {
		for j, m := range mems {
			id := fmt.Sprintf("g%03d-%03d", i, j)
			ctl.latest[id] = Reading{HostID: id, AtS: 0, TempC: 30, Util: u, MemFrac: m}
			ctl.order = append(ctl.order, id)
		}
	}
	return ctl
}

func gridAxis(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n-1)
	}
	return out
}

// TestAnchorCacheWithinQuantEpsilon is the quantization-error property test:
// across the whole (util, memFrac) grid, the cache-enabled anchor (predicted
// once at the bucket center) must stay within the configured quantization
// epsilon of the exact per-host prediction — and that epsilon must stay
// below ReanchorEpsC/2, so cache error can never push a session across the
// re-anchor threshold on its own.
func TestAnchorCacheWithinQuantEpsilon(t *testing.T) {
	utils, mems := gridAxis(97), gridAxis(41)
	// utilSensC / memSensC are the model's worst-case output sensitivities
	// in °C per unit input; the configured quantization epsilon is the
	// sensitivity-weighted half-bucket bound they imply.
	check := func(t *testing.T, predict BatchCasePredictor, utilSensC, memSensC float64) {
		cfgExact := DefaultConfig()
		cfgExact.AnchorCacheDisabled = true
		exact := gridController(t, cfgExact, predict, utils, mems)
		cached := gridController(t, DefaultConfig(), predict, utils, mems)

		exactAnchors, _, _, err := exact.anchors()
		if err != nil {
			t.Fatal(err)
		}
		cachedAnchors, hits, misses, err := cached.anchors()
		if err != nil {
			t.Fatal(err)
		}
		if hits != 0 {
			t.Fatalf("cold grid round reported %d hits", hits)
		}
		if misses != len(exactAnchors) {
			t.Fatalf("cold grid: %d misses for %d hosts", misses, len(exactAnchors))
		}

		eps := cached.cfg.AnchorQuantUtil/2*utilSensC + cached.cfg.AnchorQuantMem/2*memSensC
		if lim := cached.cfg.ReanchorEpsC / 2; eps > lim {
			t.Fatalf("configured quantization epsilon %.3f exceeds ReanchorEpsC/2 = %.3f", eps, lim)
		}
		var maxDiff float64
		for id, want := range exactAnchors {
			got, ok := cachedAnchors[id]
			if !ok {
				t.Fatalf("cached round missing anchor for %s", id)
			}
			if d := math.Abs(got - want); d > maxDiff {
				maxDiff = d
			}
		}
		// Grid points landing exactly on bucket edges realize the half-bucket
		// worst case; allow rounding slack at the boundary itself.
		if maxDiff > eps*(1+1e-12) {
			t.Fatalf("cached-vs-exact divergence %.4f°C exceeds quantization epsilon %.4f°C", maxDiff, eps)
		}
		t.Logf("grid %d×%d: max divergence %.4f°C (epsilon %.4f°C), fanout %d of %d hosts",
			len(utils), len(mems), maxDiff, eps, len(cached.caseBuf), len(utils)*len(mems))

		// A second pass over identical telemetry must be all hits and
		// bit-identical to the first cached pass. anchors() returns the
		// controller's reusable map, so the first result must be copied
		// before the second call repopulates it in place.
		firstPass := maps.Clone(cachedAnchors)
		again, hits2, misses2, err := cached.anchors()
		if err != nil {
			t.Fatal(err)
		}
		if misses2 != 0 || hits2 != len(firstPass) {
			t.Fatalf("warm grid round: %d hits / %d misses", hits2, misses2)
		}
		for id, v := range firstPass {
			if again[id] != v {
				t.Fatalf("warm anchor for %s changed: %v -> %v", id, v, again[id])
			}
		}
	}

	t.Run("synthetic", func(t *testing.T) {
		// The synthetic predictor is ambient + 75·util: Lipschitz constant 75
		// in util, 0 in mem — the worst case the default buckets must absorb.
		check(t, syntheticStable, 75, 0)
	})
	t.Run("svm", func(t *testing.T) {
		if testing.Short() {
			t.Skip("short mode: skipping SVM training")
		}
		cases, err := workload.GenerateCases(workload.DefaultGenOptions(), 7, "aq", 24)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(7))
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.TrainStable(context.Background(), recs, core.FastStableConfig())
		if err != nil {
			t.Fatal(err)
		}
		// A full-load swing is ~75 °C of CPU heat but only a few degrees of
		// memory heat; hold the trained model to those sensitivities.
		check(t, StableBatchPredictor(model, 1800), 75, 12)
	})
}

// TestWarmAnchorsZeroAlloc pins the warm-round contract: once every tracked
// host's anchor is cached, the whole anchors() pass — key derivation, cache
// hits, anchor map fill — allocates nothing, for both the source-driven and
// the simulated path.
func TestWarmAnchorsZeroAlloc(t *testing.T) {
	t.Run("source", func(t *testing.T) {
		ctl := gridController(t, DefaultConfig(), syntheticStable, gridAxis(16), gridAxis(4))
		if _, _, _, err := ctl.anchors(); err != nil { // cold round fills the cache
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			_, _, misses, err := ctl.anchors()
			if err != nil {
				t.Fatal(err)
			}
			if misses != 0 {
				t.Fatalf("warm round had %d misses", misses)
			}
		})
		if allocs != 0 {
			t.Fatalf("warm source anchors() allocates %.1f/op, want 0", allocs)
		}
	})
	t.Run("sim", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Racks, cfg.HostsPerRack = 2, 8
		ctl, err := New(cfg, syntheticStable)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := ctl.PlaceAt(ctl.Hosts()[i*2], HeavyVMSpec(fmt.Sprintf("za-%d", i), 2, 4)); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, _, err := ctl.anchors(); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			_, _, misses, err := ctl.anchors()
			if err != nil {
				t.Fatal(err)
			}
			if misses != 0 {
				t.Fatalf("warm round had %d misses", misses)
			}
		})
		if allocs != 0 {
			t.Fatalf("warm sim anchors() allocates %.1f/op, want 0", allocs)
		}
	})
}

// TestInvalidateAnchorCacheForcesRepredict: after an epoch bump every anchor
// must go back through the predictor.
func TestInvalidateAnchorCacheForcesRepredict(t *testing.T) {
	ctl := gridController(t, DefaultConfig(), syntheticStable, gridAxis(8), gridAxis(2))
	if _, _, _, err := ctl.anchors(); err != nil {
		t.Fatal(err)
	}
	if _, hits, misses, _ := ctl.anchors(); misses != 0 || hits == 0 {
		t.Fatalf("warm round: %d hits / %d misses", hits, misses)
	}
	ctl.InvalidateAnchorCache()
	if _, hits, misses, _ := ctl.anchors(); hits != 0 || misses == 0 {
		t.Fatalf("post-invalidate round: %d hits / %d misses, want all misses", hits, misses)
	}
	if st, _, enabled := ctl.AnchorCacheStats(); !enabled || st.Invalidations != 1 {
		t.Fatalf("cache stats after invalidate: %+v enabled=%v", st, enabled)
	}
}

// TestAnchorCacheDedupesSharedBuckets: hosts whose observations fall in the
// same quantized bucket must share one staged case (and one prediction).
func TestAnchorCacheDedupesSharedBuckets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHosts = 64
	ctl, err := NewWithSource(cfg, &gridSource{}, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		id := fmt.Sprintf("dup-%02d", i)
		// All 32 hosts inside one (util, mem) bucket.
		ctl.latest[id] = Reading{HostID: id, AtS: 0, TempC: 30, Util: 0.5021, MemFrac: 0.25}
		ctl.order = append(ctl.order, id)
	}
	anchors, _, misses, err := ctl.anchors()
	if err != nil {
		t.Fatal(err)
	}
	if misses != 32 {
		t.Fatalf("misses = %d, want 32", misses)
	}
	if fan := len(ctl.caseBuf); fan != 1 {
		t.Fatalf("fanout = %d cases for one shared bucket, want 1", fan)
	}
	first := anchors["dup-00"]
	for id, v := range anchors {
		if v != first {
			t.Fatalf("host %s anchor %v differs from shared bucket value %v", id, v, first)
		}
	}
}

// TestSimFingerprintTracksLoadDistribution: redistributing load between a
// VM's tasks — same total host utilization, different task_cpu_max — must
// change the deployment fingerprint and miss the cache, not serve the
// anchor predicted for the old distribution.
func TestSimFingerprintTracksLoadDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Racks, cfg.HostsPerRack = 1, 2
	ctl, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.VMSpec{
		ID:     "dist",
		Config: vmm.VMConfig{VCPUs: 2, MemoryGB: 4},
		Tasks: []workload.TaskSpec{
			{Task: vmm.Task{ID: "t0", Class: vmm.CPUBound, CPUFraction: 0.5, MemGB: 1}},
			{Task: vmm.Task{ID: "t1", Class: vmm.CPUBound, CPUFraction: 0.5, MemGB: 1}},
		},
	}
	if err := ctl.PlaceAt("r0-h0", spec); err != nil {
		t.Fatal(err)
	}
	if _, _, misses, err := ctl.anchors(); err != nil || misses != 1 {
		t.Fatalf("cold anchors: misses=%d err=%v", misses, err)
	}
	if _, _, misses, _ := ctl.anchors(); misses != 0 {
		t.Fatalf("unchanged deployment missed the cache (%d misses)", misses)
	}
	// Shift load between tasks, keeping the total (and host utilization)
	// identical: 0.5+0.5 → 0.9+0.1.
	vm, err := ctl.sim.hosts["r0-h0"].host.VM("dist")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.SetTaskCPU("t0", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := vm.SetTaskCPU("t1", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, hits, misses, _ := ctl.anchors(); misses != 1 || hits != 0 {
		t.Fatalf("redistributed load: %d hits / %d misses, want a fresh miss", hits, misses)
	}
}

// TestRecordReplayRoundTrip closes the capture→replay loop in-process: a
// simulated run captured through TeeTelemetry (the fleetd -record path)
// must replay through a TraceSource-driven controller — trace CSV encode
// and decode included — with live sessions and zero substrate activity.
func TestRecordReplayRoundTrip(t *testing.T) {
	cfg := traceConfig()
	cfg.Racks, cfg.HostsPerRack = 2, 4
	ctl, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if err := ctl.PlaceAt("r0-h0", HeavyVMSpec(fmt.Sprintf("rr-%d", v), 2, 4)); err != nil {
			t.Fatal(err)
		}
	}
	var rec telemetry.Recorder
	ctl.TeeTelemetry(rec.Emit)
	const rounds = 8
	if _, err := ctl.Run(rounds); err != nil {
		t.Fatal(err)
	}
	ctl.TeeTelemetry(nil)
	if len(rec.Readings) == 0 {
		t.Fatal("tee captured nothing")
	}
	telemetry.SortReadings(rec.Readings)

	// Through the CSV codec, exactly as fleetd -record writes it.
	var buf bytes.Buffer
	if err := dataset.WriteTrace(&buf, rec.Readings); err != nil {
		t.Fatal(err)
	}
	readings, err := dataset.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != len(rec.Readings) {
		t.Fatalf("codec round-trip: %d of %d readings", len(readings), len(rec.Readings))
	}

	src, err := telemetry.NewTraceSource(readings, telemetry.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := NewWithSource(traceConfig(), src, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := replay.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	last := reports[len(reports)-1]
	if last.SessionsLive != 8 {
		t.Fatalf("replay ended with %d live sessions, want 8", last.SessionsLive)
	}
	for _, r := range reports {
		if r.Placements != 0 || r.AppliedMoves != 0 {
			t.Fatalf("replay performed substrate work: %+v", r)
		}
	}
}

// TestTeeSeesHTTPPushedReadings: a -record capture must include readings
// arriving through the HTTP push path (Controller.Ingest), not only source
// emissions — both funnel through the same emit sink.
func TestTeeSeesHTTPPushedReadings(t *testing.T) {
	ctl, err := NewWithSource(DefaultConfig(), &gridSource{}, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	var rec telemetry.Recorder
	ctl.TeeTelemetry(rec.Emit)
	if !ctl.Ingest(Reading{HostID: "push-1", AtS: 1, TempC: 30}) {
		t.Fatal("push rejected")
	}
	if len(rec.Readings) != 1 || rec.Readings[0].HostID != "push-1" {
		t.Fatalf("tee captured %+v, want the pushed reading", rec.Readings)
	}
	ctl.TeeTelemetry(nil)
	if !ctl.Ingest(Reading{HostID: "push-2", AtS: 2, TempC: 30}) {
		t.Fatal("push after detach rejected")
	}
	if len(rec.Readings) != 1 {
		t.Fatalf("detached tee still capturing (%d readings)", len(rec.Readings))
	}
}

// TestAnchorQuantValidation: bucket widths whose worst-case divergence
// exceeds the re-anchor threshold must be rejected at construction, not
// oscillate silently at runtime.
func TestAnchorQuantValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AnchorQuantUtil = 0.05
	if _, err := NewWithSource(cfg, &gridSource{}, syntheticStable); err == nil {
		t.Fatal("oversized anchor quantization accepted")
	}
	// The same widths are fine once ReanchorEpsC grows to absorb them.
	cfg.ReanchorEpsC = 4.5
	if _, err := NewWithSource(cfg, &gridSource{}, syntheticStable); err != nil {
		t.Fatalf("widened ReanchorEpsC still rejected: %v", err)
	}
	// Disabling the cache lifts the constraint entirely.
	cfg.ReanchorEpsC = 0
	cfg.AnchorCacheDisabled = true
	if _, err := NewWithSource(cfg, &gridSource{}, syntheticStable); err != nil {
		t.Fatalf("cache-disabled config rejected: %v", err)
	}
}

// TestAnchorCachePersistenceWarmsRestart closes the restart loop: a fleet
// saves its anchor cache, a fresh controller for the same population loads
// it, and the restarted fleet's first round is already all cache hits —
// zero batch-predictor fan-out instead of a cold mass re-anchor.
func TestAnchorCachePersistenceWarmsRestart(t *testing.T) {
	ctl := gridController(t, DefaultConfig(), syntheticStable, gridAxis(16), gridAxis(4))
	if _, _, misses, err := ctl.anchors(); err != nil || misses == 0 {
		t.Fatalf("cold run: misses=%d err=%v", misses, err)
	}
	var buf bytes.Buffer
	if err := ctl.SaveAnchorCache(&buf); err != nil {
		t.Fatal(err)
	}

	restarted := gridController(t, DefaultConfig(), syntheticStable, gridAxis(16), gridAxis(4))
	n, err := restarted.LoadAnchorCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no anchors restored")
	}
	anchors, hits, misses, err := restarted.anchors()
	if err != nil {
		t.Fatal(err)
	}
	if misses != 0 {
		t.Fatalf("restarted fleet's first round had %d misses, want 0 (hits %d)", misses, hits)
	}
	// Restored anchors must equal the original fleet's, not just hit.
	orig, _, _, err := ctl.anchors()
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range orig {
		if anchors[id] != v {
			t.Fatalf("restored anchor for %s = %v, original %v", id, anchors[id], v)
		}
	}

	// A restart configured with different bucket widths must refuse the file.
	mismatch := DefaultConfig()
	mismatch.AnchorQuantUtil = 0.005
	other := gridController(t, mismatch, syntheticStable, gridAxis(4), gridAxis(2))
	if _, err := other.LoadAnchorCache(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("quantizer-mismatched cache file accepted")
	}

	// With the cache disabled the hooks must fail loudly.
	disabled := DefaultConfig()
	disabled.AnchorCacheDisabled = true
	off := gridController(t, disabled, syntheticStable, gridAxis(4), gridAxis(2))
	if err := off.SaveAnchorCache(&bytes.Buffer{}); err != ErrNoAnchorCache {
		t.Fatalf("SaveAnchorCache on disabled cache: %v", err)
	}
	if _, err := off.LoadAnchorCache(bytes.NewReader(buf.Bytes())); err != ErrNoAnchorCache {
		t.Fatalf("LoadAnchorCache on disabled cache: %v", err)
	}
}

// TestStableMembershipSkipsOrderRebuild: rounds with unchanged membership
// must not disturb the discovered host order slice, and membership changes
// (new host, eviction) must rebuild it sorted.
func TestStableMembershipSkipsOrderRebuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHosts = 8
	ctl, err := NewWithSource(cfg, &gridSource{}, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(ids ...string) {
		for _, id := range ids {
			ctl.Ingest(Reading{HostID: id, AtS: ctl.src.NowS() + 1, TempC: 30, Util: 0.5})
		}
	}
	feed("h-b", "h-a")
	if _, err := ctl.RunRound(); err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"h-a", "h-b"}
	for i, id := range ctl.Hosts() {
		if id != wantOrder[i] {
			t.Fatalf("order = %v, want %v", ctl.Hosts(), wantOrder)
		}
	}
	if ctl.orderDirty {
		t.Fatal("orderDirty still set after rebuild")
	}

	// Stable round: same hosts, fresh readings — the rebuild must be skipped
	// (orderDirty stays false) and the order slice must stay identical.
	before := &ctl.order[0]
	feed("h-b", "h-a")
	if _, err := ctl.RunRound(); err != nil {
		t.Fatal(err)
	}
	if ctl.orderDirty {
		t.Fatal("stable round marked membership dirty")
	}
	if &ctl.order[0] != before {
		t.Fatal("stable round rebuilt the order slice")
	}

	// A new host must trigger a sorted rebuild.
	feed("h-b", "h-a", "h-0")
	if _, err := ctl.RunRound(); err != nil {
		t.Fatal(err)
	}
	got := ctl.Hosts()
	want := []string{"h-0", "h-a", "h-b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order after discovery = %v, want %v", got, want)
		}
	}
}
