package fleet

import "sync/atomic"

// Reading is one telemetry observation of one host, as emitted by a
// monitoring agent: the sensed CPU temperature plus the load the VMM
// reports.
type Reading struct {
	// HostID names the observed host.
	HostID string
	// AtS is the observation time in fleet (simulation) seconds.
	AtS float64
	// TempC is the sensed CPU temperature.
	TempC float64
	// Util is host CPU utilization in [0, 1].
	Util float64
	// MemFrac is host memory activity in [0, 1].
	MemFrac float64
}

// ingestPipeline is the bounded buffer between telemetry producers and the
// control loop. Producers push without blocking — when the buffer is full
// the reading is dropped and counted, never stalling an agent — and the
// controller drains everything buffered at the start of each round. The
// bound is what keeps a misbehaving producer from growing memory without
// limit; the drop counter is what makes that degradation visible.
type ingestPipeline struct {
	ch       chan Reading
	received atomic.Int64
	dropped  atomic.Int64
}

func newIngestPipeline(capacity int) *ingestPipeline {
	return &ingestPipeline{ch: make(chan Reading, capacity)}
}

// push offers a reading; it reports false (and counts a drop) when the
// buffer is full.
func (p *ingestPipeline) push(r Reading) bool {
	select {
	case p.ch <- r:
		p.received.Add(1)
		return true
	default:
		p.dropped.Add(1)
		return false
	}
}

// drainInto moves every buffered reading into latest, keeping only the
// newest reading per host, and returns how many readings were consumed.
func (p *ingestPipeline) drainInto(latest map[string]Reading) int {
	n := 0
	for {
		select {
		case r := <-p.ch:
			if cur, ok := latest[r.HostID]; !ok || r.AtS >= cur.AtS {
				latest[r.HostID] = r
			}
			n++
		default:
			return n
		}
	}
}

// stats returns cumulative received/dropped counts.
func (p *ingestPipeline) stats() (received, dropped int64) {
	return p.received.Load(), p.dropped.Load()
}
