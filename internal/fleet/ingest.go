package fleet

import (
	"sync/atomic"

	"vmtherm/internal/telemetry"
)

// Reading is one telemetry observation of one host, as emitted by a
// monitoring agent. It is the unified telemetry.Reading record — the same
// shape every Source (simulator, trace replay, Prometheus scrape) streams
// into the session engine.
type Reading = telemetry.Reading

// ingestPipeline is the bounded buffer between telemetry producers and the
// control loop. Producers push without blocking — when the buffer is full
// the reading is dropped and counted, never stalling an agent — and the
// controller drains everything buffered at the start of each round. The
// bound is what keeps a misbehaving producer from growing memory without
// limit; the drop and supersede counters are what make that degradation
// visible.
type ingestPipeline struct {
	ch         chan Reading
	received   atomic.Int64
	dropped    atomic.Int64
	superseded atomic.Int64
	// rejected counts readings refused at the door for implausible
	// temperatures (NaN/±Inf/outside the plausibility bounds), per reason:
	// one stuck sensor must never poison a session's calibration, and the
	// refusal must be visible (vmtherm_ingest_rejected_total). Index 0
	// (RejectNone) is unused.
	rejected [telemetry.NumRejectReasons]atomic.Int64
	// drainSeen marks hosts whose latest entry was written during the
	// current drain, so supersessions within one round are counted. Owned by
	// the draining goroutine (drains are serialized by the round lock) and
	// reused across rounds — clearing a map allocates nothing.
	drainSeen map[string]bool
}

// newIngestPipeline sizes the buffered channel to capacity and pre-sizes
// the drain's supersede-tracking map from the expected host population, so
// a cold start's first drains do not rehash the map up to fleet size.
func newIngestPipeline(capacity, hostHint int) *ingestPipeline {
	if hostHint < 0 {
		hostHint = 0
	}
	return &ingestPipeline{
		ch:        make(chan Reading, capacity),
		drainSeen: make(map[string]bool, hostHint),
	}
}

// push offers a reading; it reports false when the reading was refused —
// rejected for an implausible temperature (counted per reason) or dropped
// because the buffer is full (counted as a drop). Validation lives here,
// at the single choke point every producer path (simulator sweep, trace
// replay, scrape, HTTP push) flows through.
func (p *ingestPipeline) push(r Reading) bool {
	if reason := telemetry.ClassifyTemp(r.TempC); reason != telemetry.RejectNone {
		p.rejected[reason].Add(1)
		return false
	}
	select {
	case p.ch <- r:
		p.received.Add(1)
		return true
	default:
		p.dropped.Add(1)
		return false
	}
}

// countRejected records a rejection decided by a caller that classified
// the reading itself (the streaming batch path, which needs the typed
// outcome before push would see the reading).
func (p *ingestPipeline) countRejected(reason telemetry.RejectReason) {
	p.rejected[reason].Add(1)
}

// rejectedByReason returns the cumulative per-reason rejection counters.
func (p *ingestPipeline) rejectedByReason() (out [telemetry.NumRejectReasons]int64) {
	for i := range out {
		out[i] = p.rejected[i].Load()
	}
	return out
}

// drainInto moves every buffered reading into latest, keeping only the
// newest reading per host, and returns how many readings were consumed plus
// whether any reading introduced a previously untracked host (the
// membership-dirty signal that tells the controller its sorted host order
// must be rebuilt). Consumed readings that never become a host's latest —
// because a newer reading already drained, or an even newer one arrives
// later in the same drain — are counted as superseded: the ingest-pressure
// signal that says producers are sampling faster than the control loop
// consumes.
func (p *ingestPipeline) drainInto(latest map[string]Reading) (n int, newHosts bool) {
	clear(p.drainSeen)
	for {
		select {
		case r := <-p.ch:
			n++
			cur, known := latest[r.HostID]
			if known && r.AtS < cur.AtS {
				p.superseded.Add(1)
				continue
			}
			if !known {
				newHosts = true
			}
			if p.drainSeen[r.HostID] {
				// The entry written earlier this drain never left the round.
				p.superseded.Add(1)
			}
			p.drainSeen[r.HostID] = true
			latest[r.HostID] = r
		default:
			return n, newHosts
		}
	}
}

// stats returns cumulative received/dropped/superseded counts.
func (p *ingestPipeline) stats() (received, dropped, superseded int64) {
	return p.received.Load(), p.dropped.Load(), p.superseded.Load()
}
