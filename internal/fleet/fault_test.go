package fleet

import (
	"testing"

	"vmtherm/internal/telemetry"
)

// latestOf reads one host's newest accepted reading out of the snapshot.
func latestOf(c *Controller, host string) (r Reading, ok bool) {
	c.ViewSnapshot(func(s *Snapshot) {
		r, ok = s.Latest[host]
	})
	return r, ok
}

// TestSensorFaultModesCorruptOnlyEmission drives all four sensor fault
// modes on separate hosts and pins what the control plane sees: a stuck
// sensor freezes the value, dropped and NaN sensors starve the host's
// telemetry (NaN via plausibility rejection), and a biased sensor shifts
// it. Clearing the faults must restore the exact healthy reading stream —
// the reads and rng draws happen on the healthy schedule regardless, so a
// faulted-then-cleared fleet converges to byte-identical telemetry with a
// never-faulted twin.
func TestSensorFaultModesCorruptOnlyEmission(t *testing.T) {
	cfg := testConfig()
	healthy, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Controller{healthy, faulted} {
		if _, err := c.Run(2); err != nil {
			t.Fatal(err)
		}
	}
	preDrop, _ := latestOf(faulted, "r0-h2")
	preNaN, _ := latestOf(faulted, "r0-h3")

	faults := map[string]SensorFault{
		"r0-h1": {Mode: SensorStuck, ValueC: 45},
		"r0-h2": {Mode: SensorDropped},
		"r0-h3": {Mode: SensorNaN},
		"r0-h4": {Mode: SensorBiased, ValueC: 30},
	}
	for host, f := range faults {
		if err := faulted.SetSensorFault(host, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := faulted.SetSensorFault("no-such-host", SensorFault{}); err == nil {
		t.Error("faulting an unknown host must error")
	}
	for _, c := range []*Controller{healthy, faulted} {
		if _, err := c.Run(2); err != nil {
			t.Fatal(err)
		}
	}

	if r, _ := latestOf(faulted, "r0-h1"); r.TempC != 45 {
		t.Errorf("stuck sensor read %.2f, want the frozen 45", r.TempC)
	}
	if r, _ := latestOf(faulted, "r0-h2"); r.AtS != preDrop.AtS {
		t.Errorf("dropped sensor still advanced telemetry (AtS %v -> %v)", preDrop.AtS, r.AtS)
	}
	// NaN readings are refused at the ingest plausibility gate, so the
	// host starves exactly like a dropped sensor — and the refusals are
	// tallied by reason.
	if r, _ := latestOf(faulted, "r0-h3"); r.AtS != preNaN.AtS {
		t.Errorf("NaN sensor still advanced telemetry (AtS %v -> %v)", preNaN.AtS, r.AtS)
	}
	byReason, _ := faulted.IngestRejected()
	if byReason[telemetry.RejectNaN] == 0 {
		t.Error("NaN sensor readings were not rejected by reason")
	}
	rb, _ := latestOf(faulted, "r0-h4")
	rh, _ := latestOf(healthy, "r0-h4")
	if got := rb.TempC - rh.TempC; got < 29 || got > 31 {
		t.Errorf("biased sensor shifted by %.2f, want +30", got)
	}

	// Clear everything; both fleets must converge to identical telemetry.
	for host := range faults {
		if err := faulted.SetSensorFault(host, SensorFault{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []*Controller{healthy, faulted} {
		if _, err := c.Run(2); err != nil {
			t.Fatal(err)
		}
	}
	for host := range faults {
		a, okA := latestOf(healthy, host)
		b, okB := latestOf(faulted, host)
		if !okA || !okB {
			t.Fatalf("host %s missing from a snapshot (healthy %v, faulted %v)", host, okA, okB)
		}
		if a != b {
			t.Errorf("host %s did not restore the healthy stream: healthy %+v, cleared %+v", host, a, b)
		}
	}
}

// TestCRACCouplingLazyActivation pins the coupling loop's contract: the
// plant is inert until a scenario touches it (the no-scenario golden-trace
// guarantee), a setpoint excursion drags the supply up with the plant's
// lag, and restoring the setpoint brings it back.
func TestCRACCouplingLazyActivation(t *testing.T) {
	cfg := testConfig()
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.CRACStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active {
		t.Fatal("CRAC coupling active before any fault touched it")
	}
	setpoint := st.SetpointC
	if _, err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	if st, _ = c.CRACStatus(); st.Active {
		t.Fatal("plain rounds activated the CRAC coupling")
	}

	if err := c.SetCRACSetpointDelta(10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(20); err != nil {
		t.Fatal(err)
	}
	st, _ = c.CRACStatus()
	if !st.Active {
		t.Fatal("setpoint excursion did not activate the coupling loop")
	}
	if st.SupplyC < setpoint+5 {
		t.Fatalf("supply %.2f did not chase the excursed setpoint %.2f", st.SupplyC, setpoint+10)
	}

	if err := c.SetCRACSetpointDelta(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(40); err != nil {
		t.Fatal(err)
	}
	st, _ = c.CRACStatus()
	if st.SupplyC > setpoint+1.5 {
		t.Fatalf("supply %.2f did not relax back toward setpoint %.2f", st.SupplyC, setpoint)
	}
}

// TestCRACFailureRunaway pins the failed-unit dynamics: with zero cooling
// capacity the supply air chases the (hotter) return stream instead of the
// setpoint, so the room heats monotonically while load runs.
func TestCRACFailureRunaway(t *testing.T) {
	cfg := testConfig()
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	seedHotHost(t, c)
	if _, err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	if err := c.SetCRACCoolingCapacity(0); err != nil {
		t.Fatal(err)
	}
	before, _ := c.CRACStatus()
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	after, _ := c.CRACStatus()
	if !after.Active || after.CapacityFrac != 0 {
		t.Fatalf("CRAC status %+v, want active with zero capacity", after)
	}
	if after.SupplyC <= before.SupplyC+0.2 {
		t.Fatalf("failed CRAC supply %.2f -> %.2f, want a runaway climb", before.SupplyC, after.SupplyC)
	}
}

// TestRemoveVMFreesTheHost pins the surge-teardown hook: the VM's load
// disappears from its host, and removing an unknown VM errors.
func TestRemoveVMFreesTheHost(t *testing.T) {
	cfg := testConfig()
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceAt("r1-h2", HeavyVMSpec("surge-vm", 8, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	loaded, _ := latestOf(c, "r1-h2")
	if loaded.Util < 0.3 {
		t.Fatalf("placed VM did not load its host (util %.2f)", loaded.Util)
	}
	if err := c.RemoveVM("surge-vm"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	freed, _ := latestOf(c, "r1-h2")
	if freed.Util >= loaded.Util/2 {
		t.Fatalf("removed VM still loading the host (util %.2f -> %.2f)", loaded.Util, freed.Util)
	}
	if err := c.RemoveVM("surge-vm"); err == nil {
		t.Fatal("removing an already-removed VM must error")
	}
	if err := c.RemoveVM("never-existed"); err == nil {
		t.Fatal("removing an unknown VM must error")
	}
}
