package fleet

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vmtherm/internal/dataset"
	"vmtherm/internal/telemetry"
)

// Regenerate the committed trace + golden report sequence with:
//
//	go test ./internal/fleet -run TestTraceReplayGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "regenerate testdata trace and golden files")

const (
	traceFile  = "testdata/trace_pr3.csv"
	goldenFile = "testdata/golden_pr3.json"
	traceSeed  = 77
)

// traceConfig is the replay-side configuration: no simulator, anchors
// synthesized from observed utilization at δ_env=22 through the synthetic
// physics predictor.
func traceConfig() Config {
	cfg := DefaultConfig()
	cfg.ThresholdC = 70
	cfg.SourceAmbientC = 22
	cfg.Seed = traceSeed
	return cfg
}

// recordTrace captures a deterministic simulated run — 2 racks × 4 hosts,
// one overloaded machine — as a replayable trace: the same closed loop that
// consumed the simulator live will consume the recording.
func recordTrace(t *testing.T, rounds int) []telemetry.Reading {
	t.Helper()
	cfg := traceConfig()
	cfg.Racks = 2
	cfg.HostsPerRack = 4
	cfg = cfg.withDefaults()
	fs, err := newFleetSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		spec := HeavyVMSpec("hot-"+string(rune('0'+v)), 4, 8)
		if err := fs.place("r0-h0", spec); err != nil {
			t.Fatal(err)
		}
	}
	var rec telemetry.Recorder
	for r := 0; r < rounds; r++ {
		if err := fs.advance(cfg.UpdateEveryS, rec.Emit); err != nil {
			t.Fatal(err)
		}
	}
	telemetry.SortReadings(rec.Readings)
	return rec.Readings
}

// replayReports runs the source-driven controller over a trace and returns
// the report sequence with wall-clock fields zeroed (everything else must
// be bit-identical run to run).
func replayReports(t *testing.T, readings []telemetry.Reading, rounds int) []RoundReport {
	t.Helper()
	src, err := telemetry.NewTraceSource(readings, telemetry.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewWithSource(traceConfig(), src, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := ctl.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reports {
		reports[i].Latency = 0
		reports[i].ControlLatency = 0
	}
	return reports
}

// TestTraceReplayGolden is the determinism contract for the trace source:
// the same trace and seed must reproduce the exact committed RoundReport
// sequence — any nondeterminism in the replay path (map iteration, clock
// leakage, float instability) fails the diff.
func TestTraceReplayGolden(t *testing.T) {
	const rounds = 12

	if *updateGolden {
		readings := recordTrace(t, rounds)
		var buf bytes.Buffer
		if err := dataset.WriteTrace(&buf, readings); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(traceFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(traceFile, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		reports := replayReports(t, readings, rounds)
		js, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d readings) and %s", traceFile, len(readings), goldenFile)
	}

	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	readings, err := dataset.ReadTrace(f)
	_ = f.Close()
	if err != nil {
		t.Fatal(err)
	}

	got := replayReports(t, readings, rounds)
	js, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(js, '\n'), want) {
		t.Fatalf("replay diverged from golden (rerun with -update-golden if the change is intended)\ngot:\n%s", js)
	}

	// The replay must exercise the loop for real: sessions live, the
	// overloaded host flagged from predictions, and zero placement activity
	// (no substrate).
	last := got[len(got)-1]
	if last.SessionsLive != 8 {
		t.Fatalf("replay ended with %d live sessions, want 8", last.SessionsLive)
	}
	flagged := false
	for _, r := range got {
		if r.Hotspots > 0 {
			flagged = true
		}
		if r.Placements != 0 || r.AppliedMoves != 0 {
			t.Fatalf("source-driven replay performed placements/migrations: %+v", r)
		}
	}
	if !flagged {
		t.Fatal("replayed scenario never produced a hotspot")
	}

	// And a second replay of the same trace in-process must match, too.
	again := replayReports(t, readings, rounds)
	js2, err := json.MarshalIndent(again, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, js2) {
		t.Fatal("two in-process replays of the same trace diverged")
	}
}

// TestSourceDrivenControllerRejectsSubstrateOps: placement and simulator
// hooks must fail loudly, not silently no-op.
func TestSourceDrivenControllerRejectsSubstrateOps(t *testing.T) {
	src, err := telemetry.NewTraceSource(
		[]telemetry.Reading{{HostID: "h0", AtS: 0, TempC: 30}}, telemetry.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewWithSource(traceConfig(), src, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.PlaceAt("h0", HeavyVMSpec("vm", 1, 1)); err != ErrNoSubstrate {
		t.Fatalf("PlaceAt err = %v", err)
	}
	if err := ctl.SetTelemetryMuted("h0", true); err != ErrNoSubstrate {
		t.Fatalf("SetTelemetryMuted err = %v", err)
	}
	if _, err := ctl.MeasuredDieTemp("h0"); err != ErrNoSubstrate {
		t.Fatalf("MeasuredDieTemp err = %v", err)
	}
	dec, err := ctl.PlaceNow(HeavyVMSpec("vm", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != Rejected || dec.Code != RejectNoSubstrate {
		t.Fatalf("source-driven placement not rejected with no-substrate: %+v", dec)
	}
}
