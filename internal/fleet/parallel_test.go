package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"vmtherm/internal/dataset"
	"vmtherm/internal/telemetry"
	"vmtherm/internal/workload"
)

// physRun executes a simulated fleet under the given physics worker count —
// one overloaded machine, dynamic per-task profiles so every tick does real
// load work — and returns the wall-clock-scrubbed round reports, the full
// telemetry capture as trace-CSV bytes, and the final published snapshot.
func physRun(t *testing.T, workers, rounds int) ([]RoundReport, []byte, Snapshot) {
	t.Helper()
	cfg := testConfig()
	cfg.Racks, cfg.HostsPerRack = 3, 5
	cfg.PhysWorkers = workers
	c, err := New(cfg, syntheticStable)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy constant load on one host plus dynamic (sine/bursty via the
	// generator) tenants spread across racks: the tick loop must exercise
	// profile-driven SetTaskCPU on every shard.
	for v := 0; v < 4; v++ {
		if err := c.PlaceAt("r0-h0", HeavyVMSpec(fmt.Sprintf("phot-%d", v), 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	opts := workload.DefaultGenOptions()
	opts.VMCountMin, opts.VMCountMax = 8, 8
	opts.Dynamic = true
	pool, err := workload.GenerateCase(opts, 99, "phys-par")
	if err != nil {
		t.Fatal(err)
	}
	hosts := c.Hosts()
	for i, spec := range pool.VMs {
		if err := c.PlaceAt(hosts[(i*2+1)%len(hosts)], spec); err != nil {
			t.Fatal(err)
		}
	}
	var rec telemetry.Recorder
	c.TeeTelemetry(rec.Emit)
	reports, err := c.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	c.TeeTelemetry(nil)
	for i := range reports {
		reports[i].Latency = 0
		reports[i].ControlLatency = 0
	}
	telemetry.SortReadings(rec.Readings)
	var buf bytes.Buffer
	if err := dataset.WriteTrace(&buf, rec.Readings); err != nil {
		t.Fatal(err)
	}
	return reports, buf.Bytes(), c.Hotspots()
}

// TestParallelPhysicsValueIdentical is the tentpole determinism contract:
// rack-sharded physics must be bit-identical to the serial tick — same
// RoundReport sequence (JSON bytes), same recorded telemetry (trace CSV
// bytes), same published predictions — for any worker count, because racks
// advance independently in a fixed per-shard reduction order.
func TestParallelPhysicsValueIdentical(t *testing.T) {
	const rounds = 10
	serialReps, serialTrace, serialSnap := physRun(t, 1, rounds)
	for _, workers := range []int{2, 8} {
		reps, trace, snap := physRun(t, workers, rounds)
		sj, err := json.Marshal(serialReps)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(reps)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, pj) {
			t.Fatalf("PhysWorkers=%d round reports diverged from serial\nserial: %s\nparallel: %s",
				workers, sj, pj)
		}
		if !bytes.Equal(serialTrace, trace) {
			t.Fatalf("PhysWorkers=%d recorded telemetry diverged from serial", workers)
		}
		if len(snap.Predicted) != len(serialSnap.Predicted) {
			t.Fatalf("PhysWorkers=%d predicted %d hosts, serial %d",
				workers, len(snap.Predicted), len(serialSnap.Predicted))
		}
		for id, v := range serialSnap.Predicted {
			if w, ok := snap.Predicted[id]; !ok || w != v {
				t.Fatalf("PhysWorkers=%d prediction for %s = %v, serial %v", workers, id, w, v)
			}
		}
	}
	// The scenario must have real thermal structure, not an idle fleet.
	hot := 0
	for _, r := range serialReps {
		hot += r.Hotspots
	}
	if hot == 0 {
		t.Fatal("scenario produced no hotspots; determinism check is vacuous")
	}
}

// TestParallelPhysicsTickErrorDeterministic: a failing rack must surface the
// same error from the sharded tick as from the serial one (first error in
// rack order), not whichever worker lost the race.
func TestParallelPhysicsTickErrorDeterministic(t *testing.T) {
	build := func(workers int) *Controller {
		cfg := testConfig()
		cfg.Racks, cfg.HostsPerRack = 3, 2
		cfg.PhysWorkers = workers
		c, err := New(cfg, syntheticStable)
		if err != nil {
			t.Fatal(err)
		}
		// Profiles returning distinct out-of-range CPU fractions make
		// SetTaskCPU fail inside the tick on two racks at once, with
		// per-rack-distinguishable messages: the reported error proves which
		// rack won.
		for i, host := range []string{"r1-h0", "r2-h0"} {
			spec := HeavyVMSpec("bad-"+host, 1, 1)
			spec.Tasks[0].Profile = badProfile{level: float64(i + 2)}
			if err := c.PlaceAt(host, spec); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	_, serialErr := build(1).RunRound()
	if serialErr == nil {
		t.Fatal("serial tick did not surface the bad profile")
	}
	for _, workers := range []int{2, 8} {
		_, err := build(workers).RunRound()
		if err == nil {
			t.Fatalf("PhysWorkers=%d tick swallowed the error", workers)
		}
		if err.Error() != serialErr.Error() {
			t.Fatalf("PhysWorkers=%d error %q, serial %q", workers, err, serialErr)
		}
	}
}

// badProfile returns a CPU fraction outside [0,1], which SetTaskCPU rejects.
type badProfile struct{ level float64 }

func (p badProfile) At(float64) float64 { return p.level }
