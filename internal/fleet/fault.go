package fleet

import (
	"fmt"
	"math"
)

// This file is the controller's fault-injection surface: the hooks a
// thermal-emergency scenario (internal/scenario) scripts against a
// simulated fleet. Every hook follows the SetTelemetryMuted contract —
// it takes the round lock, requires a simulated substrate
// (ErrNoSubstrate otherwise), and mutates only simulator state, so the
// control plane under test never sees anything but its normal inputs:
// telemetry that lies, cooling that fails, load that surges.

// CRACStatus reports the cooling plant's state. Until a scenario touches
// the plant the coupling loop is inactive (Active false) and the supply
// is the configured constant.
type CRACStatus struct {
	// Active reports whether the supply/return coupling loop is running.
	Active bool `json:"active"`
	// SupplyC is the current supply-air temperature.
	SupplyC float64 `json:"supply_c"`
	// SetpointC is the configured setpoint; SetpointDeltaC the scripted
	// excursion currently added to it.
	SetpointC      float64 `json:"setpoint_c"`
	SetpointDeltaC float64 `json:"setpoint_delta_c"`
	// CapacityFrac is the remaining cooling capacity (1 healthy, 0 failed).
	CapacityFrac float64 `json:"capacity_frac"`
	// RecircMult scales the configured recirculation coefficient.
	RecircMult float64 `json:"recirc_mult"`
}

// SetCRACSetpointDelta shifts the CRAC supply setpoint by deltaC — a
// setpoint excursion. The first CRAC touch activates the supply/return
// coupling loop; the supply then relaxes toward the excursed setpoint
// with the plant's lag. Simulated fleets only.
func (c *Controller) SetCRACSetpointDelta(deltaC float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return ErrNoSubstrate
	}
	if math.IsNaN(deltaC) || math.IsInf(deltaC, 0) {
		return fmt.Errorf("fleet: setpoint delta %v invalid", deltaC)
	}
	c.sim.cracState().setpointDeltaC = deltaC
	return nil
}

// SetCRACCoolingCapacity sets the CRAC's remaining cooling capacity as a
// fraction of nominal: 1 is a healthy unit, 0 a failed one whose supply
// air chases the ever-hotter return stream. Values are clamped to [0, 1].
// Simulated fleets only.
func (c *Controller) SetCRACCoolingCapacity(frac float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return ErrNoSubstrate
	}
	if math.IsNaN(frac) {
		return fmt.Errorf("fleet: cooling capacity %v invalid", frac)
	}
	c.sim.cracState().capacityFrac = min(max(frac, 0), 1)
	return nil
}

// SetCRACRecircMultiplier scales the recirculation coefficient — a
// containment breach (failed blanking panels, an open hot-aisle door)
// that couples exhaust back into the inlets more strongly. Simulated
// fleets only.
func (c *Controller) SetCRACRecircMultiplier(mult float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return ErrNoSubstrate
	}
	if math.IsNaN(mult) || math.IsInf(mult, 0) || mult < 0 {
		return fmt.Errorf("fleet: recirculation multiplier %v invalid", mult)
	}
	c.sim.cracState().recircMult = mult
	return nil
}

// CRACStatus reports the cooling plant's current state. Simulated fleets
// only.
func (c *Controller) CRACStatus() (CRACStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return CRACStatus{}, ErrNoSubstrate
	}
	cd := c.sim.crac
	if cd == nil {
		cc := c.sim.dc.CRAC()
		return CRACStatus{SupplyC: cc.SupplyC, SetpointC: cc.SupplyC, CapacityFrac: 1, RecircMult: 1}, nil
	}
	return CRACStatus{
		Active:         true,
		SupplyC:        cd.supplyC,
		SetpointC:      cd.setpointC,
		SetpointDeltaC: cd.setpointDeltaC,
		CapacityFrac:   cd.capacityFrac,
		RecircMult:     cd.recircMult,
	}, nil
}

// SetSensorFault injects (or, with the zero fault, clears) a sensor fault
// on one host: the host keeps running and heating, its physics untouched,
// but its emitted readings are frozen, silenced, NaN, or biased. Simulated
// fleets only.
func (c *Controller) SetSensorFault(hostID string, f SensorFault) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return ErrNoSubstrate
	}
	sh, ok := c.sim.hosts[hostID]
	if !ok {
		return fmt.Errorf("fleet: unknown host %q", hostID)
	}
	sh.fault = f
	return nil
}

// SetTelemetryDark starts or ends a fleet-wide telemetry blackout: every
// host keeps running but the sensor sweep emits nothing, so the control
// plane must ride out the gap on staleness degradation alone. Simulated
// fleets only.
func (c *Controller) SetTelemetryDark(dark bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return ErrNoSubstrate
	}
	c.sim.dark = dark
	return nil
}

// RemoveVM evicts a VM from the simulated fleet — the inverse of PlaceAt,
// used by scenarios to end a scripted load surge. The host's session is
// deleted so the next round re-anchors it against the shrunken
// deployment. Simulated fleets only.
func (c *Controller) RemoveVM(vmID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return ErrNoSubstrate
	}
	hostID, ok := c.sim.vmHost[vmID]
	if !ok {
		return errNoSuchVM
	}
	if err := c.sim.remove(vmID); err != nil {
		return err
	}
	c.eng.Delete(hostID)
	return nil
}

// RackHostIDs lists one rack's host ids in slot order — the blast radius
// of rack-scoped faults (correlated surges, partition blackouts).
// Simulated fleets only.
func (c *Controller) RackHostIDs(rack int) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return nil, ErrNoSubstrate
	}
	if rack < 0 || rack >= len(c.sim.rackSpan) {
		return nil, fmt.Errorf("fleet: no rack %d", rack)
	}
	span := c.sim.rackSpan[rack]
	out := make([]string, 0, span[1]-span[0])
	for i := span[0]; i < span[1]; i++ {
		out = append(out, c.sim.order[i])
	}
	return out, nil
}

// MeasuredDieTemps reads every host's true (noise-free) die temperature
// into dst (allocated when nil) — the grading oracle for scenario runs;
// the control loop itself only ever sees telemetry. Simulated fleets only.
func (c *Controller) MeasuredDieTemps(dst map[string]float64) (map[string]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		return nil, ErrNoSubstrate
	}
	if dst == nil {
		dst = make(map[string]float64, len(c.sim.byPos))
	}
	for i, sh := range c.sim.byPos {
		dst[c.sim.order[i]] = sh.server.DieTemp()
	}
	return dst, nil
}
