package anchorcache

import (
	"bytes"
	"testing"
)

// FuzzLoad: the cache-file decoder must never panic and never insert
// entries from a file it rejected, no matter how the bytes are mangled
// (fuzzed headers, forged counts, truncations, flipped CRCs).
func FuzzLoad(f *testing.F) {
	// Seed with a valid v2 file, a valid empty file, and targeted mutants.
	src, err := New(Config{MaxEntries: 32})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		src.Put(NewHash().Uint64(uint64(i)).Key(), 20+float64(i))
	}
	var valid bytes.Buffer
	if err := src.Save(&valid); err != nil {
		f.Fatal(err)
	}
	empty, err := New(Config{MaxEntries: 32})
	if err != nil {
		f.Fatal(err)
	}
	var emptyFile bytes.Buffer
	if err := empty.Save(&emptyFile); err != nil {
		f.Fatal(err)
	}

	f.Add(valid.Bytes())
	f.Add(emptyFile.Bytes())
	f.Add([]byte{})
	f.Add([]byte("vmtacppc"))                                           // magic only
	f.Add(append([]byte("vmtacppc"), 1, 0, 0, 0))                       // v1 header, no body
	f.Add(append([]byte("vmtacppc"), 2, 0, 0, 0))                       // v2 header, no body
	f.Add(valid.Bytes()[:valid.Len()-4])                                // CRC trailer chopped
	f.Add(valid.Bytes()[:valid.Len()/2])                                // torn mid-file
	f.Add(append(bytes.Clone(valid.Bytes()), 0xde, 0xad))               // trailing garbage
	huge := bytes.Clone(valid.Bytes()[:44])                             // header + quantizer
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // forged count
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := New(Config{MaxEntries: 32})
		if err != nil {
			t.Fatal(err)
		}
		n, err := c.Load(bytes.NewReader(data))
		if err != nil && (n != 0 || c.Len() != 0) {
			t.Fatalf("rejected file still inserted entries (reported %d, cache holds %d)", n, c.Len())
		}
		if err == nil && n != c.Len() {
			t.Fatalf("loaded %d but cache holds %d", n, c.Len())
		}
	})
}
