// Package anchorcache memoizes ψ_stable anchor predictions behind the fleet
// control plane. Every control round re-anchors its per-host dynamic
// sessions against a batch ψ_stable prediction of the host's current
// deployment (Eqs. 1–2), but a host's anchor inputs barely move between
// rounds: observed (util, memFrac) drifts by fractions of a percent, and a
// simulated deployment changes only on placement or migration. Quantizing
// those inputs into buckets and memoizing the model's answer per bucket
// turns the per-round anchor fan-out — the dominant control-plane cost at
// fleet scale — into a handful of cache misses.
//
// The quantization step is the correctness contract: a cached anchor is the
// model's exact prediction for the bucket's center, so cached-vs-exact
// divergence is bounded by the model's sensitivity times half a bucket
// width. Bucket widths default well under the fleet's re-anchor threshold
// (ReanchorEpsC), so cache error can never trigger a spurious re-anchor.
//
// The cache is bounded (two-generation rotation, oldest generation dropped
// wholesale) and carries an epoch: Invalidate discards every entry when the
// model or its configuration changes underneath the keys.
package anchorcache

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Key identifies one quantized anchor input: a bucketed (util, memFrac,
// ambient) observation or a deployment fingerprint composed with Hash.
type Key uint64

// FNV-1a parameters, shared with the session engine's shard hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash is an incremental FNV-1a accumulator for composing cache keys from
// deployment state (VM ids, quantized buckets) without allocating.
type Hash uint64

// NewHash returns the FNV-1a offset basis.
func NewHash() Hash { return fnvOffset64 }

// String folds a string into the hash.
func (h Hash) String(s string) Hash {
	v := uint64(h)
	for i := 0; i < len(s); i++ {
		v ^= uint64(s[i])
		v *= fnvPrime64
	}
	// A separator byte keeps concatenated ids from colliding ("ab"+"c" vs
	// "a"+"bc").
	v ^= 0xff
	v *= fnvPrime64
	return Hash(v)
}

// Uint64 folds an integer (e.g. a bucket index) into the hash.
func (h Hash) Uint64(x uint64) Hash {
	v := uint64(h)
	for i := 0; i < 8; i++ {
		v ^= x & 0xff
		v *= fnvPrime64
		x >>= 8
	}
	return Hash(v)
}

// Key finalizes the accumulator.
func (h Hash) Key() Key { return Key(h) }

// Quantizer maps continuous anchor inputs onto bucket indices and bucket
// centers. The zero value takes defaults via withDefaults; Config embeds it.
type Quantizer struct {
	// UtilQuant is the CPU-utilization bucket width (default 0.01: 1% of
	// host capacity — ψ_stable moves tens of °C across the full range, so a
	// bucket bounds cache error well under typical ReanchorEpsC values).
	UtilQuant float64
	// MemQuant is the memory-activity bucket width (default 0.02; ψ_stable
	// is far less sensitive to memory than to CPU).
	MemQuant float64
	// AmbientQuantC is the ambient/inlet bucket width in °C (default 0.25;
	// ψ_stable tracks ambient roughly 1:1, so this bounds the ambient share
	// of cache error at ~0.125 °C).
	AmbientQuantC float64
}

// DefaultQuantizer returns the default bucket widths.
func DefaultQuantizer() Quantizer {
	return Quantizer{UtilQuant: 0.01, MemQuant: 0.02, AmbientQuantC: 0.25}
}

func (q Quantizer) withDefaults() Quantizer {
	d := DefaultQuantizer()
	if q.UtilQuant <= 0 {
		q.UtilQuant = d.UtilQuant
	}
	if q.MemQuant <= 0 {
		q.MemQuant = d.MemQuant
	}
	if q.AmbientQuantC <= 0 {
		q.AmbientQuantC = d.AmbientQuantC
	}
	return q
}

// bucket returns v's bucket index for width w.
func bucket(v, w float64) uint64 {
	return uint64(int64(math.Floor(v / w)))
}

// center returns the center value of v's bucket of width w.
func center(v, w float64) float64 {
	return (math.Floor(v/w) + 0.5) * w
}

// UtilMem quantizes an observed (util, memFrac) pair, returning the cache
// key and the bucket-center values the anchor case should be synthesized
// from — predicting at the center halves the worst-case divergence.
func (q Quantizer) UtilMem(util, memFrac float64) (key Key, qUtil, qMem float64) {
	bu, bm := q.UtilMemBuckets(util, memFrac)
	k := NewHash().Uint64(bu).Uint64(bm)
	return k.Key(), center(util, q.UtilQuant), center(memFrac, q.MemQuant)
}

// UtilMemBuckets returns the raw bucket indices of a (util, memFrac) pair,
// for folding into a larger fingerprint (e.g. a simulated deployment hash).
func (q Quantizer) UtilMemBuckets(util, memFrac float64) (u, m uint64) {
	return bucket(util, q.UtilQuant), bucket(memFrac, q.MemQuant)
}

// UtilBucket returns the bucket index of one utilization-scaled value (a
// task fraction, a per-VM vCPU demand) at the UtilQuant width — the
// fingerprint ingredient for load *distribution*, which moves features like
// task_cpu_max without necessarily moving total host utilization.
func (q Quantizer) UtilBucket(v float64) uint64 {
	return bucket(v, q.UtilQuant)
}

// Ambient quantizes an ambient/inlet temperature, returning its bucket index
// (to fold into a fingerprint) and the bucket center to predict at.
func (q Quantizer) Ambient(tempC float64) (idx uint64, centerC float64) {
	return bucket(tempC, q.AmbientQuantC), center(tempC, q.AmbientQuantC)
}

// Stats are the cache's cumulative counters. Safe to read concurrently with
// cache operations.
type Stats struct {
	Hits, Misses int64
	// Evicted counts entries dropped at the size bound (whole-generation
	// rotation) — the capacity-pressure signal for sizing MaxEntries.
	// Invalidations counts the epoch bumps that cleared everything; entries
	// cleared by Invalidate are not added to Evicted.
	Evicted       int64
	Invalidations int64
}

// Config parameterizes a Cache.
type Config struct {
	// MaxEntries bounds the total entry count across both generations
	// (default 65536). The cache never exceeds it; reaching it drops the
	// older half wholesale.
	MaxEntries int
	// Quant sets the bucket widths keys are derived with.
	Quant Quantizer
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxEntries < 2 {
		return fmt.Errorf("anchorcache: max entries %d < 2", c.MaxEntries)
	}
	return nil
}

// Cache is a bounded memo of quantized anchor key → ψ_stable. It keeps two
// generations: inserts go to the young one, and when the young generation
// fills half the budget the old one is dropped and the generations rotate —
// O(1) amortized eviction that retains the working set without per-entry
// bookkeeping (hits migrate entries back into the young generation).
//
// Get, Put and Invalidate require external synchronization (the fleet
// controller calls them under its round lock); Stats and Epoch may be read
// concurrently (the /metrics exposition does).
type Cache struct {
	quant Quantizer
	half  int // per-generation entry budget
	cur   map[Key]float64
	prev  map[Key]float64

	hits, misses, evicted, invalidations atomic.Int64
	epoch                                atomic.Int64
}

// New builds a cache. Zero-valued Config fields take defaults.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = 65536
	}
	cfg.Quant = cfg.Quant.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	half := cfg.MaxEntries / 2
	return &Cache{
		quant: cfg.Quant,
		half:  half,
		cur:   make(map[Key]float64, half),
		prev:  map[Key]float64{},
	}, nil
}

// Quant returns the quantizer keys are derived with.
func (c *Cache) Quant() Quantizer { return c.quant }

// Get looks a key up, counting a hit or a miss. Entries found in the old
// generation are promoted so rotation keeps the live working set.
func (c *Cache) Get(k Key) (float64, bool) {
	if v, ok := c.cur[k]; ok {
		c.hits.Add(1)
		return v, true
	}
	if v, ok := c.prev[k]; ok {
		c.promote(k, v)
		c.hits.Add(1)
		return v, true
	}
	c.misses.Add(1)
	return 0, false
}

// Put inserts or refreshes an entry, rotating generations at the bound.
func (c *Cache) Put(k Key, v float64) {
	c.promote(k, v)
}

// promote writes into the young generation, rotating when it is full. The
// old-generation copy of the key is removed so no key is ever resident in
// both generations — which keeps Len and the eviction counter exact (a
// rotation drops precisely len(prev) live entries).
func (c *Cache) promote(k Key, v float64) {
	if len(c.cur) >= c.half {
		if _, ok := c.cur[k]; !ok {
			drop := len(c.prev)
			if _, inPrev := c.prev[k]; inPrev {
				drop-- // k is about to be re-inserted, not dropped
			}
			c.evicted.Add(int64(drop))
			c.prev = c.cur
			c.cur = make(map[Key]float64, c.half)
		}
	}
	c.cur[k] = v
	delete(c.prev, k)
}

// Invalidate drops every entry and bumps the epoch — required whenever the
// model or the feature configuration behind the cached predictions changes.
// Cleared entries are accounted by the Invalidations counter, not Evicted:
// Evicted measures capacity pressure only, so an operator sizing MaxEntries
// from the eviction rate is not misled by epoch bumps.
func (c *Cache) Invalidate() {
	clear(c.cur)
	clear(c.prev)
	c.invalidations.Add(1)
	c.epoch.Add(1)
}

// Len reports the current entry count across both generations.
func (c *Cache) Len() int { return len(c.cur) + len(c.prev) }

// Epoch reports how many invalidations the cache has seen.
func (c *Cache) Epoch() int64 { return c.epoch.Load() }

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evicted:       c.evicted.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Entry is one key → ψ_stable pair, the unit of generation dump/restore.
type Entry struct {
	Key   Key
	Value float64
}

// DumpGenerations returns the young and old generations separately, each
// sorted by key. Restoring both sides (RestoreGenerations) reproduces the
// cache bit-for-bit — including future rotation and eviction timing, which
// a flat Save/Load round-trip (everything reloaded young) would not.
// Requires external synchronization, like Get/Put.
func (c *Cache) DumpGenerations() (cur, prev []Entry) {
	cur = make([]Entry, 0, len(c.cur))
	for k, v := range c.cur {
		cur = append(cur, Entry{Key: k, Value: v})
	}
	prev = make([]Entry, 0, len(c.prev))
	for k, v := range c.prev {
		prev = append(prev, Entry{Key: k, Value: v})
	}
	sortEntries(cur)
	sortEntries(prev)
	return cur, prev
}

// RestoreGenerations replaces the cache contents with the dumped
// generations, preserving the young/old split. Counter state is restored
// separately (RestoreStats). Requires external synchronization.
func (c *Cache) RestoreGenerations(cur, prev []Entry) error {
	if len(cur) > c.half || len(prev) > c.half {
		return fmt.Errorf("anchorcache: restore of %d+%d entries exceeds per-generation budget %d",
			len(cur), len(prev), c.half)
	}
	clear(c.cur)
	c.prev = make(map[Key]float64, c.half)
	for _, e := range cur {
		if math.IsNaN(e.Value) {
			continue
		}
		c.cur[e.Key] = e.Value
	}
	for _, e := range prev {
		if math.IsNaN(e.Value) {
			continue
		}
		if _, dup := c.cur[e.Key]; dup {
			continue // no key may be resident in both generations
		}
		c.prev[e.Key] = e.Value
	}
	return nil
}

// RestoreStats overwrites the cumulative counters and the epoch — the
// checkpoint path uses it so restored fleets report continuous totals
// (RoundReport's AnchorEvictedTotal, the /metrics counters) instead of
// restarting from zero.
func (c *Cache) RestoreStats(st Stats, epoch int64) {
	c.hits.Store(st.Hits)
	c.misses.Store(st.Misses)
	c.evicted.Store(st.Evicted)
	c.invalidations.Store(st.Invalidations)
	c.epoch.Store(epoch)
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
}
