package anchorcache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"slices"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src, err := New(Config{MaxEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	want := map[Key]float64{}
	for i := 0; i < 40; i++ {
		k := NewHash().Uint64(uint64(i)).Key()
		v := 20 + float64(i)*0.5
		src.Put(k, v)
		want[k] = v
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(Config{MaxEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	n, err := dst.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("loaded %d entries, want %d", n, len(want))
	}
	for k, v := range want {
		got, ok := dst.Get(k)
		if !ok || got != v {
			t.Fatalf("key %v = %v (hit=%v), want %v", k, got, ok, v)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	build := func() *Cache {
		c, err := New(Config{MaxEntries: 64})
		if err != nil {
			t.Fatal(err)
		}
		// Insert in two different orders; serialized bytes must not depend
		// on map iteration or insertion history.
		return c
	}
	a, b := build(), build()
	for i := 0; i < 20; i++ {
		a.Put(NewHash().Uint64(uint64(i)).Key(), float64(i))
	}
	for i := 19; i >= 0; i-- {
		b.Put(NewHash().Uint64(uint64(i)).Key(), float64(i))
	}
	var ab, bb bytes.Buffer
	if err := a.Save(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("identical cache contents serialized to different bytes")
	}
}

func TestSaveSpansBothGenerations(t *testing.T) {
	c, err := New(Config{MaxEntries: 8}) // half = 4: rotations happen
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.Put(NewHash().Uint64(uint64(i)).Key(), float64(i))
	}
	if c.Len() <= 4 {
		t.Fatalf("test premise broken: %d entries, want both generations occupied", c.Len())
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := New(Config{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	n, err := dst.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != c.Len() {
		t.Fatalf("round-trip carried %d of %d live entries", n, c.Len())
	}
}

func TestLoadRejectsQuantizerMismatch(t *testing.T) {
	src, err := New(Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	src.Put(NewHash().Uint64(1).Key(), 42)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := New(Config{MaxEntries: 16, Quant: Quantizer{UtilQuant: 0.005}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Load(&buf); !errors.Is(err, ErrPersistFormat) {
		t.Fatalf("quantizer mismatch accepted (err = %v)", err)
	}
	if dst.Len() != 0 {
		t.Fatalf("rejected load still inserted %d entries", dst.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	c, err := New(Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{
		nil,
		[]byte("not a cache file at all"),
		{'v', 'm', 't', 'a', 'c', 'p', 'p', 'c', 9, 0, 0, 0}, // bad version
	} {
		if _, err := c.Load(bytes.NewReader(payload)); !errors.Is(err, ErrPersistFormat) {
			t.Fatalf("payload %q accepted (err = %v)", payload, err)
		}
	}
}

func TestLoadTruncatedRejectedEntirely(t *testing.T) {
	src, err := New(Config{MaxEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		src.Put(NewHash().Uint64(uint64(i)).Key(), float64(i))
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A torn write can cut anywhere: mid-entry, mid-trailer, mid-header.
	for _, cutAt := range []int{buf.Len() - 12, buf.Len() - 2, 30, 9} {
		dst, err := New(Config{MaxEntries: 32})
		if err != nil {
			t.Fatal(err)
		}
		n, err := dst.Load(bytes.NewReader(buf.Bytes()[:cutAt]))
		if !errors.Is(err, ErrPersistFormat) {
			t.Fatalf("file truncated at %d accepted (err = %v)", cutAt, err)
		}
		if n != 0 || dst.Len() != 0 {
			t.Fatalf("truncation at %d still inserted entries (reported %d, cache holds %d)",
				cutAt, n, dst.Len())
		}
	}
}

// TestLoadRejectsBitFlips: every single-bit corruption of a saved file must
// fail the CRC check (or the structural checks it shadows) and insert
// nothing — the integrity contract behind warm restarts.
func TestLoadRejectsBitFlips(t *testing.T) {
	src, err := New(Config{MaxEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		src.Put(NewHash().Uint64(uint64(i)).Key(), 20+float64(i))
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for byteIdx := 0; byteIdx < len(orig); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), orig...)
			mut[byteIdx] ^= 1 << bit
			dst, err := New(Config{MaxEntries: 32})
			if err != nil {
				t.Fatal(err)
			}
			n, err := dst.Load(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", byteIdx, bit)
			}
			if n != 0 || dst.Len() != 0 {
				t.Fatalf("bit flip at byte %d bit %d inserted %d entries", byteIdx, bit, n)
			}
		}
	}
}

// TestLoadAcceptsLegacyV1: files written by the pre-CRC format (version 1,
// no trailer) must keep loading — a fleet upgrading in place keeps its warm
// anchors.
func TestLoadAcceptsLegacyV1(t *testing.T) {
	c, err := New(Config{MaxEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	q := c.Quant()
	var buf bytes.Buffer
	buf.Write(persistMagic[:])
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], persistVersionLegacy)
	buf.Write(scratch[:4])
	for _, f := range []float64{q.UtilQuant, q.MemQuant, q.AmbientQuantC} {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(f))
		buf.Write(scratch[:])
	}
	entries := map[Key]float64{
		NewHash().Uint64(1).Key(): 41.5,
		NewHash().Uint64(2).Key(): 55.25,
	}
	keys := make([]Key, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(keys)))
	buf.Write(scratch[:])
	for _, k := range keys {
		binary.LittleEndian.PutUint64(scratch[:], uint64(k))
		buf.Write(scratch[:])
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(entries[k]))
		buf.Write(scratch[:])
	}

	n, err := c.Load(&buf)
	if err != nil {
		t.Fatalf("legacy v1 file rejected: %v", err)
	}
	if n != len(entries) {
		t.Fatalf("loaded %d legacy entries, want %d", n, len(entries))
	}
	for k, v := range entries {
		got, ok := c.Get(k)
		if !ok || got != v {
			t.Fatalf("legacy key %v = %v (hit=%v), want %v", k, got, ok, v)
		}
	}
}

func TestLoadRespectsSizeBound(t *testing.T) {
	src, err := New(Config{MaxEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		src.Put(NewHash().Uint64(uint64(i)).Key(), float64(i))
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := New(Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() > 16 {
		t.Fatalf("loaded cache holds %d entries, bound is 16", dst.Len())
	}
}
