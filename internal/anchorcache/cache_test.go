package anchorcache

import (
	"testing"
)

func TestGetPutHitMiss(t *testing.T) {
	c, err := New(Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	k, _, _ := c.Quant().UtilMem(0.5, 0.25)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 42.5)
	v, ok := c.Get(k)
	if !ok || v != 42.5 {
		t.Fatalf("Get = %v, %v; want 42.5, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestQuantizationSharesBuckets(t *testing.T) {
	q := DefaultQuantizer()
	// Two observations inside the same 1% utilization bucket must map to
	// the same key and the same bucket center.
	k1, u1, m1 := q.UtilMem(0.501, 0.30)
	k2, u2, m2 := q.UtilMem(0.509, 0.30)
	if k1 != k2 || u1 != u2 || m1 != m2 {
		t.Fatalf("same-bucket observations diverged: %v/%v vs %v/%v", k1, u1, k2, u2)
	}
	// Across the bucket boundary they must not.
	k3, _, _ := q.UtilMem(0.511, 0.30)
	if k1 == k3 {
		t.Fatal("distinct buckets collided")
	}
	// And the center must be within half a bucket of any member.
	if d := u1 - 0.501; d > q.UtilQuant/2+1e-12 || d < -q.UtilQuant/2-1e-12 {
		t.Fatalf("bucket center %v more than half a bucket from member 0.501", u1)
	}
}

func TestNegativeAndZeroInputsQuantize(t *testing.T) {
	q := DefaultQuantizer()
	k0, u0, _ := q.UtilMem(0, 0)
	k1, _, _ := q.UtilMem(0.0001, 0)
	if k0 != k1 {
		t.Fatal("near-zero observations split buckets")
	}
	if u0 != q.UtilQuant/2 {
		t.Fatalf("zero-bucket center = %v, want %v", u0, q.UtilQuant/2)
	}
	// Ambient below zero still buckets consistently.
	b1, c1 := q.Ambient(-1.05)
	b2, c2 := q.Ambient(-1.05 - q.AmbientQuantC/4)
	if b1 != b2 || c1 != c2 {
		t.Fatalf("negative ambient bucketing inconsistent: %v/%v vs %v/%v", b1, c1, b2, c2)
	}
}

func TestBoundedEviction(t *testing.T) {
	const max = 16
	c, err := New(Config{MaxEntries: max})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10*max; i++ {
		c.Put(NewHash().Uint64(uint64(i)).Key(), float64(i))
		if c.Len() > max {
			t.Fatalf("cache grew to %d entries, bound %d", c.Len(), max)
		}
	}
	if st := c.Stats(); st.Evicted == 0 {
		t.Fatal("no evictions counted after overfilling")
	}
}

func TestHitPromotionSurvivesRotation(t *testing.T) {
	c, err := New(Config{MaxEntries: 8}) // generations of 4
	if err != nil {
		t.Fatal(err)
	}
	hot := NewHash().String("hot").Key()
	c.Put(hot, 1)
	// Fill and rotate several times, touching the hot key each round.
	for i := 0; i < 40; i++ {
		c.Put(NewHash().Uint64(uint64(i)).Key(), float64(i))
		if _, ok := c.Get(hot); !ok {
			t.Fatalf("hot key evicted after %d inserts despite constant hits", i+1)
		}
	}
}

func TestPromotionRemovesOldGenerationCopy(t *testing.T) {
	c, err := New(Config{MaxEntries: 8}) // generations of 4
	if err != nil {
		t.Fatal(err)
	}
	hot := NewHash().String("hot").Key()
	c.Put(hot, 1)
	// Force at least one rotation so the hot key lands in the old
	// generation, then hit it: promotion must move — not copy — it, so the
	// entry count stays exact and a later rotation cannot count a
	// still-resident key as evicted.
	for i := 0; i < 5; i++ {
		c.Put(NewHash().Uint64(uint64(i)).Key(), float64(i))
	}
	before := c.Len()
	if _, ok := c.Get(hot); !ok {
		t.Fatal("hot key evicted prematurely")
	}
	if c.Len() != before {
		t.Fatalf("promotion changed entry count %d -> %d (dual residency)", before, c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	k := NewHash().String("x").Key()
	c.Put(k, 7)
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("len %d after invalidate", c.Len())
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit after invalidate")
	}
	if c.Epoch() != 1 || c.Stats().Invalidations != 1 {
		t.Fatalf("epoch/invalidations = %d/%d, want 1/1", c.Epoch(), c.Stats().Invalidations)
	}
}

func TestHashSeparatorPreventsConcatCollisions(t *testing.T) {
	a := NewHash().String("ab").String("c").Key()
	b := NewHash().String("a").String("bc").Key()
	if a == b {
		t.Fatal("concatenation collision")
	}
}

func TestWarmHitPathDoesNotAllocate(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := c.Quant()
	key, _, _ := q.UtilMem(0.42, 0.17)
	c.Put(key, 55)
	allocs := testing.AllocsPerRun(1000, func() {
		k, _, _ := q.UtilMem(0.42, 0.17)
		if _, ok := c.Get(k); !ok {
			t.Fatal("miss on warm key")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm hit path allocates %.1f/op, want 0", allocs)
	}
}
