package anchorcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
)

// Serialized cache format (little-endian, versioned):
//
//	[8]byte  magic "vmtacppc" (vmtherm anchor-cache persisted predictions)
//	uint32   format version (1)
//	float64  UtilQuant    ┐ the quantizer the keys were derived with —
//	float64  MemQuant     │ a cache is only valid against the exact bucket
//	float64  AmbientQuantC┘ widths that produced its keys
//	uint64   entry count
//	entry count × (uint64 key, float64 ψ_stable)
//
// Keys are written in ascending order so identical cache contents always
// serialize to identical bytes. The file memoizes model *outputs*: it is
// only meaningful for the model that produced it — loading a cache saved
// against a different model silently serves that model's anchors, exactly
// like skipping Invalidate after a hot-swap. Pair the file with the model
// artifact it was warmed by.
const persistVersion = 1

var persistMagic = [8]byte{'v', 'm', 't', 'a', 'c', 'p', 'p', 'c'}

// ErrPersistFormat reports an unreadable or incompatible cache file.
var ErrPersistFormat = fmt.Errorf("anchorcache: bad cache file")

// Save serializes every live entry (both generations). Like Get/Put it
// requires external synchronization with cache mutations.
func (c *Cache) Save(w io.Writer) error {
	keys := make([]Key, 0, c.Len())
	for k := range c.cur {
		keys = append(keys, k)
	}
	for k := range c.prev {
		keys = append(keys, k)
	}
	slices.Sort(keys)

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], persistVersion)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	for _, q := range []float64{c.quant.UtilQuant, c.quant.MemQuant, c.quant.AmbientQuantC} {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(q))
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(keys)))
	if _, err := bw.Write(scratch[:]); err != nil {
		return err
	}
	for _, k := range keys {
		v, ok := c.cur[k]
		if !ok {
			v = c.prev[k]
		}
		binary.LittleEndian.PutUint64(scratch[:], uint64(k))
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load restores entries saved by Save into the cache, returning how many
// were inserted. The file's quantizer must match the cache's exactly: keys
// derived under different bucket widths address different buckets, so a
// mismatch is rejected rather than silently serving wrong anchors. Existing
// entries are kept (loaded entries overwrite on key collision) and the size
// bound is enforced as usual. Requires external synchronization, like Put.
func (c *Cache) Load(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	var header [8]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrPersistFormat, err)
	}
	if header != persistMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrPersistFormat, header[:])
	}
	if _, err := io.ReadFull(br, header[:4]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrPersistFormat, err)
	}
	if v := binary.LittleEndian.Uint32(header[:4]); v != persistVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrPersistFormat, v)
	}
	var quants [3]float64
	for i := range quants {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrPersistFormat, err)
		}
		quants[i] = math.Float64frombits(binary.LittleEndian.Uint64(header[:]))
	}
	saved := Quantizer{UtilQuant: quants[0], MemQuant: quants[1], AmbientQuantC: quants[2]}
	if saved != c.quant {
		return 0, fmt.Errorf("%w: quantizer %+v does not match cache %+v",
			ErrPersistFormat, saved, c.quant)
	}
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrPersistFormat, err)
	}
	count := binary.LittleEndian.Uint64(header[:])
	loaded := 0
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return loaded, fmt.Errorf("%w: truncated at entry %d: %v", ErrPersistFormat, i, err)
		}
		k := Key(binary.LittleEndian.Uint64(header[:]))
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return loaded, fmt.Errorf("%w: truncated at entry %d: %v", ErrPersistFormat, i, err)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(header[:]))
		if math.IsNaN(v) {
			continue // never admit a degenerate anchor, matching the put path
		}
		c.Put(k, v)
		loaded++
	}
	return loaded, nil
}
