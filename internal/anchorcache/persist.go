package anchorcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"slices"
)

// Serialized cache format (little-endian, versioned):
//
//	[8]byte  magic "vmtacppc" (vmtherm anchor-cache persisted predictions)
//	uint32   format version (2)
//	float64  UtilQuant    ┐ the quantizer the keys were derived with —
//	float64  MemQuant     │ a cache is only valid against the exact bucket
//	float64  AmbientQuantC┘ widths that produced its keys
//	uint64   entry count
//	entry count × (uint64 key, float64 ψ_stable)
//	uint32   CRC-32 (IEEE) over every preceding byte (version >= 2 only)
//
// Keys are written in ascending order so identical cache contents always
// serialize to identical bytes. Version 2 adds the CRC trailer so a torn
// write or a flipped bit is rejected instead of silently seeding the fleet
// with corrupt anchors; version 1 files (no trailer) still load. A
// malformed file of either version inserts nothing — rejection is total,
// never partial.
//
// The file memoizes model *outputs*: it is only meaningful for the model
// that produced it — loading a cache saved against a different model
// silently serves that model's anchors, exactly like skipping Invalidate
// after a hot-swap. Pair the file with the model artifact it was warmed by.
const (
	persistVersion       = 2
	persistVersionLegacy = 1 // pre-CRC format, still accepted by Load
)

var persistMagic = [8]byte{'v', 'm', 't', 'a', 'c', 'p', 'p', 'c'}

// ErrPersistFormat reports an unreadable or incompatible cache file.
var ErrPersistFormat = fmt.Errorf("anchorcache: bad cache file")

// Save serializes every live entry (both generations). Like Get/Put it
// requires external synchronization with cache mutations.
func (c *Cache) Save(w io.Writer) error {
	keys := make([]Key, 0, c.Len())
	for k := range c.cur {
		keys = append(keys, k)
	}
	for k := range c.prev {
		keys = append(keys, k)
	}
	slices.Sort(keys)

	bw := bufio.NewWriter(w)
	sum := crc32.NewIEEE()
	body := io.MultiWriter(bw, sum)
	if _, err := body.Write(persistMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], persistVersion)
	if _, err := body.Write(scratch[:4]); err != nil {
		return err
	}
	for _, q := range []float64{c.quant.UtilQuant, c.quant.MemQuant, c.quant.AmbientQuantC} {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(q))
		if _, err := body.Write(scratch[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(keys)))
	if _, err := body.Write(scratch[:]); err != nil {
		return err
	}
	for _, k := range keys {
		v, ok := c.cur[k]
		if !ok {
			v = c.prev[k]
		}
		binary.LittleEndian.PutUint64(scratch[:], uint64(k))
		if _, err := body.Write(scratch[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		if _, err := body.Write(scratch[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], sum.Sum32())
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// hashingReader tees every consumed byte into a CRC accumulator without
// hashing the reader's lookahead (a plain TeeReader under bufio would).
type hashingReader struct {
	br  *bufio.Reader
	sum hash.Hash32
}

func (h *hashingReader) full(buf []byte) error {
	if _, err := io.ReadFull(h.br, buf); err != nil {
		return err
	}
	_, _ = h.sum.Write(buf)
	return nil
}

// Load restores entries saved by Save into the cache, returning how many
// were inserted. The file's quantizer must match the cache's exactly: keys
// derived under different bucket widths address different buckets, so a
// mismatch is rejected rather than silently serving wrong anchors. A version
// 2 file whose CRC trailer does not match its bytes — a torn write, a
// flipped bit — is rejected the same way, before anything is inserted.
// Existing entries are kept (loaded entries overwrite on key collision) and
// the size bound is enforced as usual. Requires external synchronization,
// like Put.
func (c *Cache) Load(r io.Reader) (int, error) {
	hr := &hashingReader{br: bufio.NewReader(r), sum: crc32.NewIEEE()}
	var header [8]byte
	if err := hr.full(header[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrPersistFormat, err)
	}
	if header != persistMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrPersistFormat, header[:])
	}
	if err := hr.full(header[:4]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrPersistFormat, err)
	}
	version := binary.LittleEndian.Uint32(header[:4])
	if version != persistVersion && version != persistVersionLegacy {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrPersistFormat, version)
	}
	var quants [3]float64
	for i := range quants {
		if err := hr.full(header[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrPersistFormat, err)
		}
		quants[i] = math.Float64frombits(binary.LittleEndian.Uint64(header[:]))
	}
	saved := Quantizer{UtilQuant: quants[0], MemQuant: quants[1], AmbientQuantC: quants[2]}
	if saved != c.quant {
		return 0, fmt.Errorf("%w: quantizer %+v does not match cache %+v",
			ErrPersistFormat, saved, c.quant)
	}
	if err := hr.full(header[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrPersistFormat, err)
	}
	count := binary.LittleEndian.Uint64(header[:])
	// Bound the staging allocation by what the stream can actually hold
	// (16 bytes per entry), so a forged count cannot balloon memory.
	if count > uint64(math.MaxInt/16) {
		return 0, fmt.Errorf("%w: implausible entry count %d", ErrPersistFormat, count)
	}
	keys := make([]Key, 0, min(count, 1<<16))
	vals := make([]float64, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		if err := hr.full(header[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated at entry %d: %v", ErrPersistFormat, i, err)
		}
		k := Key(binary.LittleEndian.Uint64(header[:]))
		if err := hr.full(header[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated at entry %d: %v", ErrPersistFormat, i, err)
		}
		keys = append(keys, k)
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(header[:])))
	}
	if version >= persistVersion {
		want := hr.sum.Sum32()
		if _, err := io.ReadFull(hr.br, header[:4]); err != nil {
			return 0, fmt.Errorf("%w: missing CRC trailer: %v", ErrPersistFormat, err)
		}
		if got := binary.LittleEndian.Uint32(header[:4]); got != want {
			return 0, fmt.Errorf("%w: CRC mismatch (file %08x, computed %08x)", ErrPersistFormat, got, want)
		}
	}
	loaded := 0
	for i, k := range keys {
		if math.IsNaN(vals[i]) {
			continue // never admit a degenerate anchor, matching the put path
		}
		c.Put(k, vals[i])
		loaded++
	}
	return loaded, nil
}
