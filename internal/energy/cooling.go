// Package energy models datacenter cooling economics, the paper's stated
// motivation: "Temperature prediction can enhance datacenter thermal
// management towards minimizing cooling power draw." It provides the
// chilled-water COP curve standard in the thermal-management literature,
// cooling-power accounting, and a setpoint optimizer that converts
// temperature *predictions* into a safe CRAC supply-temperature raise —
// the proactive decision the paper argues prediction enables.
package energy

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// COP returns the cooling plant's coefficient of performance at a given
// supply air temperature, using the widely-cited HP Utility Datacenter
// model: COP(T) = 0.0068·T² + 0.0008·T + 0.458 (T in °C). Higher supply
// temperatures cool more efficiently — the entire reason raising the
// setpoint saves energy.
func COP(supplyC float64) float64 {
	return 0.0068*supplyC*supplyC + 0.0008*supplyC + 0.458
}

// CoolingPower returns the power (W) the plant draws to remove heatW watts
// of server heat at the given supply temperature.
func CoolingPower(heatW, supplyC float64) (float64, error) {
	if heatW < 0 {
		return 0, fmt.Errorf("energy: negative heat %v", heatW)
	}
	cop := COP(supplyC)
	if cop <= 0 {
		return 0, fmt.Errorf("energy: non-positive COP at supply %v", supplyC)
	}
	return heatW / cop, nil
}

// SetpointConfig bounds the CRAC optimizer.
type SetpointConfig struct {
	// MaxSafeTempC is the hottest allowed (predicted) CPU temperature.
	MaxSafeTempC float64
	// MinSupplyC / MaxSupplyC bound the plant's achievable setpoints.
	MinSupplyC, MaxSupplyC float64
	// SensitivityPerC is how much a server's stable temperature rises per
	// °C of supply increase. For the RC server model this is ≈ 1 (verified
	// by thermal tests); leakage pushes it slightly above.
	SensitivityPerC float64
}

// DefaultSetpointConfig uses a 85 °C thermal ceiling and ASHRAE-ish supply
// bounds.
func DefaultSetpointConfig() SetpointConfig {
	return SetpointConfig{
		MaxSafeTempC:    85,
		MinSupplyC:      14,
		MaxSupplyC:      27,
		SensitivityPerC: 1.05,
	}
}

// Validate checks the optimizer bounds.
func (c SetpointConfig) Validate() error {
	if c.MaxSupplyC <= c.MinSupplyC {
		return fmt.Errorf("energy: supply bounds [%v, %v] inverted", c.MinSupplyC, c.MaxSupplyC)
	}
	if c.SensitivityPerC <= 0 {
		return fmt.Errorf("energy: sensitivity must be > 0, got %v", c.SensitivityPerC)
	}
	if c.MaxSafeTempC <= 0 {
		return fmt.Errorf("energy: max safe temp %v invalid", c.MaxSafeTempC)
	}
	return nil
}

// OptimizeSetpoint returns the highest supply temperature that keeps every
// host's predicted temperature at or below the safety ceiling, given
// predictions made at a reference supply temperature. The margin of the
// hottest host limits the raise:
//
//	supply* = refSupply + (MaxSafeTempC − maxPredicted) / Sensitivity
//
// clamped to the plant bounds. An empty prediction map is an error: flying
// blind is exactly what the optimizer exists to prevent.
func OptimizeSetpoint(predictedAtRef map[string]float64, refSupplyC float64, cfg SetpointConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(predictedAtRef) == 0 {
		return 0, errors.New("energy: no predictions to optimize against")
	}
	hottest := math.Inf(-1)
	for _, t := range predictedAtRef {
		if t > hottest {
			hottest = t
		}
	}
	headroom := (cfg.MaxSafeTempC - hottest) / cfg.SensitivityPerC
	supply := refSupplyC + headroom
	if supply < cfg.MinSupplyC {
		supply = cfg.MinSupplyC
	}
	if supply > cfg.MaxSupplyC {
		supply = cfg.MaxSupplyC
	}
	return supply, nil
}

// Report compares cooling cost between two setpoints for a given heat load.
type Report struct {
	HeatW            float64
	BaselineSupplyC  float64
	OptimizedSupplyC float64
	BaselinePowerW   float64
	OptimizedPowerW  float64
}

// SavingsFrac is the fraction of cooling power saved by the optimization.
func (r Report) SavingsFrac() float64 {
	if r.BaselinePowerW == 0 {
		return 0
	}
	return 1 - r.OptimizedPowerW/r.BaselinePowerW
}

// Compare computes cooling power at a baseline and an optimized setpoint.
func Compare(heatW, baselineSupplyC, optimizedSupplyC float64) (Report, error) {
	basePower, err := CoolingPower(heatW, baselineSupplyC)
	if err != nil {
		return Report{}, err
	}
	optPower, err := CoolingPower(heatW, optimizedSupplyC)
	if err != nil {
		return Report{}, err
	}
	return Report{
		HeatW:            heatW,
		BaselineSupplyC:  baselineSupplyC,
		OptimizedSupplyC: optimizedSupplyC,
		BaselinePowerW:   basePower,
		OptimizedPowerW:  optPower,
	}, nil
}

// HostHeat estimates one server's heat output (W) from an affine power
// model: idle + span·utilization. It mirrors thermal.PowerModel's dominant
// terms without requiring a full thermal assembly.
func HostHeat(idleW, maxW, utilization float64) (float64, error) {
	if idleW < 0 || maxW < idleW {
		return 0, fmt.Errorf("energy: power bounds invalid (idle %v, max %v)", idleW, maxW)
	}
	u := math.Max(0, math.Min(1, utilization))
	return idleW + (maxW-idleW)*u, nil
}

// TotalHeat sums per-host heats, returning the total and a deterministic
// per-host breakdown (sorted by host id).
type HostHeatEntry struct {
	HostID string
	HeatW  float64
}

// SumHeat aggregates a per-host heat map.
func SumHeat(heats map[string]float64) (float64, []HostHeatEntry) {
	entries := make([]HostHeatEntry, 0, len(heats))
	var total float64
	for id, h := range heats {
		entries = append(entries, HostHeatEntry{HostID: id, HeatW: h})
		total += h
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].HostID < entries[j].HostID })
	return total, entries
}
