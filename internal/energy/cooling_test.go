package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCOPIncreasingInSupplyTemp(t *testing.T) {
	prev := COP(10)
	for s := 11.0; s <= 30; s++ {
		cur := COP(s)
		if cur <= prev {
			t.Fatalf("COP not increasing at %v: %v <= %v", s, cur, prev)
		}
		prev = cur
	}
}

func TestCOPKnownValues(t *testing.T) {
	// HP model at 15 °C: 0.0068·225 + 0.0008·15 + 0.458 = 2.0.
	if got := COP(15); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("COP(15) = %v, want 2.0", got)
	}
}

func TestCoolingPower(t *testing.T) {
	p, err := CoolingPower(2000, 15) // COP 2.0
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1000) > 1e-9 {
		t.Errorf("cooling power = %v, want 1000", p)
	}
	if _, err := CoolingPower(-1, 15); err == nil {
		t.Error("negative heat should fail")
	}
}

func TestCoolingPowerDecreasesWithWarmerSupply(t *testing.T) {
	cold, err := CoolingPower(10000, 15)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := CoolingPower(10000, 25)
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Errorf("warmer supply should cost less: %v vs %v", warm, cold)
	}
}

func TestSetpointConfigValidate(t *testing.T) {
	if err := DefaultSetpointConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultSetpointConfig()
	bad.MaxSupplyC = bad.MinSupplyC
	if err := bad.Validate(); err == nil {
		t.Error("inverted bounds should fail")
	}
	bad = DefaultSetpointConfig()
	bad.SensitivityPerC = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sensitivity should fail")
	}
	bad = DefaultSetpointConfig()
	bad.MaxSafeTempC = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ceiling should fail")
	}
}

func TestOptimizeSetpointHeadroom(t *testing.T) {
	cfg := DefaultSetpointConfig() // ceiling 85, sensitivity 1.05
	// Hottest host predicted 74.5 at supply 18: headroom = 10.5/1.05 = 10.
	preds := map[string]float64{"a": 60, "b": 74.5, "c": 70}
	got, err := OptimizeSetpoint(preds, 18, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 18 + 10 = 28 clamps to MaxSupplyC 27.
	if got != 27 {
		t.Errorf("setpoint = %v, want clamp at 27", got)
	}
	// Tighter ceiling stays below the clamp.
	cfg.MaxSafeTempC = 78
	got, err = OptimizeSetpoint(preds, 18, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 18 + (78-74.5)/1.05
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("setpoint = %v, want %v", got, want)
	}
}

func TestOptimizeSetpointClampsLow(t *testing.T) {
	cfg := DefaultSetpointConfig()
	// A host already over the ceiling forces the minimum supply.
	preds := map[string]float64{"hot": 95}
	got, err := OptimizeSetpoint(preds, 18, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg.MinSupplyC {
		t.Errorf("setpoint = %v, want clamp at %v", got, cfg.MinSupplyC)
	}
}

func TestOptimizeSetpointErrors(t *testing.T) {
	if _, err := OptimizeSetpoint(nil, 18, DefaultSetpointConfig()); err == nil {
		t.Error("empty predictions should fail")
	}
	bad := DefaultSetpointConfig()
	bad.SensitivityPerC = -1
	if _, err := OptimizeSetpoint(map[string]float64{"a": 50}, 18, bad); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestCompareAndSavings(t *testing.T) {
	rep, err := Compare(10000, 15, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OptimizedPowerW >= rep.BaselinePowerW {
		t.Error("optimization should reduce power")
	}
	if s := rep.SavingsFrac(); s <= 0 || s >= 1 {
		t.Errorf("savings = %v", s)
	}
	if _, err := Compare(-5, 15, 25); err == nil {
		t.Error("negative heat should fail")
	}
}

func TestSavingsFracZeroBaseline(t *testing.T) {
	if (Report{}).SavingsFrac() != 0 {
		t.Error("zero baseline should give zero savings")
	}
}

func TestHostHeat(t *testing.T) {
	h, err := HostHeat(55, 165, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h != 110 {
		t.Errorf("heat = %v, want 110", h)
	}
	// Clamping.
	lo, _ := HostHeat(55, 165, -1)
	hi, _ := HostHeat(55, 165, 2)
	if lo != 55 || hi != 165 {
		t.Errorf("clamped heats = %v, %v", lo, hi)
	}
	if _, err := HostHeat(-1, 100, 0.5); err == nil {
		t.Error("negative idle should fail")
	}
	if _, err := HostHeat(100, 50, 0.5); err == nil {
		t.Error("max below idle should fail")
	}
}

func TestSumHeatDeterministicOrder(t *testing.T) {
	total, entries := SumHeat(map[string]float64{"z": 10, "a": 20, "m": 5})
	if total != 35 {
		t.Errorf("total = %v", total)
	}
	if entries[0].HostID != "a" || entries[1].HostID != "m" || entries[2].HostID != "z" {
		t.Error("entries not sorted")
	}
}

// Property: cooling power is monotone decreasing in supply temperature for
// any non-negative heat within plant bounds.
func TestCoolingPowerMonotoneProperty(t *testing.T) {
	f := func(heat, s1, s2 float64) bool {
		heat = math.Abs(heat)
		if math.IsNaN(heat) || math.IsInf(heat, 0) || heat > 1e9 {
			return true
		}
		lo := 10 + math.Mod(math.Abs(s1), 10) // [10, 20)
		hi := lo + 0.1 + math.Mod(math.Abs(s2), 10)
		p1, err1 := CoolingPower(heat, lo)
		p2, err2 := CoolingPower(heat, hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return p2 <= p1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
