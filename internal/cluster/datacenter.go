// Package cluster models the datacenter context around a server: racks of
// hosts fed by CRAC-cooled air with per-slot inlet offsets and heat
// recirculation, hotspot detection over (predicted or measured) server
// temperatures, and placement policies — including the thermal-aware
// placement that motivates the paper's prediction ("temperature prediction
// is a fundamental technique to conduct thermal management proactively").
package cluster

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// CRAC models the room cooling unit: it supplies air at SupplyC, and each
// rack's inlet warms with rack utilization through recirculation.
type CRAC struct {
	// SupplyC is the supply-air setpoint, °C.
	SupplyC float64
	// RecircPerUtil is the inlet temperature rise at 100% rack utilization
	// caused by exhaust recirculation, °C.
	RecircPerUtil float64
}

// DefaultCRAC returns a typical raised-floor configuration.
func DefaultCRAC() CRAC {
	return CRAC{SupplyC: 18, RecircPerUtil: 6}
}

// Validate checks CRAC parameters.
func (c CRAC) Validate() error {
	if c.SupplyC < 5 || c.SupplyC > 35 {
		return fmt.Errorf("cluster: supply temperature %v implausible", c.SupplyC)
	}
	if c.RecircPerUtil < 0 {
		return fmt.Errorf("cluster: negative recirculation %v", c.RecircPerUtil)
	}
	return nil
}

// Rack is an ordered set of hosts with per-slot inlet offsets (top-of-rack
// slots ingest warmer air).
type Rack struct {
	id      string
	hosts   []*vmm.Host
	offsets []float64
}

// NewRack creates a rack; offsets[i] is added to slot i's inlet temperature.
func NewRack(id string, hosts []*vmm.Host, offsets []float64) (*Rack, error) {
	if id == "" {
		return nil, errors.New("cluster: rack missing id")
	}
	if len(hosts) == 0 {
		return nil, errors.New("cluster: rack has no hosts")
	}
	if len(offsets) != len(hosts) {
		return nil, fmt.Errorf("cluster: %d offsets for %d hosts", len(offsets), len(hosts))
	}
	for i, h := range hosts {
		if h == nil {
			return nil, fmt.Errorf("cluster: nil host in slot %d", i)
		}
	}
	r := &Rack{id: id}
	r.hosts = append(r.hosts, hosts...)
	r.offsets = append(r.offsets, offsets...)
	return r, nil
}

// ID returns the rack identifier.
func (r *Rack) ID() string { return r.id }

// Hosts returns the rack's hosts in slot order (shared slice header copy;
// hosts themselves are live objects).
func (r *Rack) Hosts() []*vmm.Host {
	out := make([]*vmm.Host, len(r.hosts))
	copy(out, r.hosts)
	return out
}

// MeanUtilization averages host utilization across the rack.
func (r *Rack) MeanUtilization() float64 {
	var sum float64
	for _, h := range r.hosts {
		sum += h.Utilization()
	}
	return sum / float64(len(r.hosts))
}

// Datacenter is a set of racks under one CRAC.
type Datacenter struct {
	crac  CRAC
	racks []*Rack
}

// NewDatacenter assembles racks under a CRAC.
func NewDatacenter(crac CRAC, racks []*Rack) (*Datacenter, error) {
	if err := crac.Validate(); err != nil {
		return nil, err
	}
	if len(racks) == 0 {
		return nil, errors.New("cluster: no racks")
	}
	seen := map[string]bool{}
	for _, r := range racks {
		if r == nil {
			return nil, errors.New("cluster: nil rack")
		}
		if seen[r.ID()] {
			return nil, fmt.Errorf("cluster: duplicate rack %q", r.ID())
		}
		seen[r.ID()] = true
	}
	dc := &Datacenter{crac: crac}
	dc.racks = append(dc.racks, racks...)
	return dc, nil
}

// Racks returns the racks.
func (dc *Datacenter) Racks() []*Rack {
	out := make([]*Rack, len(dc.racks))
	copy(out, dc.racks)
	return out
}

// CRAC returns the cooling configuration.
func (dc *Datacenter) CRAC() CRAC { return dc.crac }

// SetCRAC replaces the cooling state without re-validating it. Validate
// bounds the *configured* envelope; emergency dynamics (a failed CRAC whose
// supply air runs away past 35 °C, a setpoint excursion below 5 °C) live
// outside it by definition, and the coupling loop that drives those states
// owns their plausibility.
func (dc *Datacenter) SetCRAC(c CRAC) { dc.crac = c }

// InletTemp computes slot i of rack r's inlet air temperature: CRAC supply
// plus the slot's static offset plus recirculation proportional to rack
// utilization. This is each server's δ_env.
func (dc *Datacenter) InletTemp(r *Rack, slot int) (float64, error) {
	if r == nil || slot < 0 || slot >= len(r.hosts) {
		return 0, fmt.Errorf("cluster: invalid rack/slot")
	}
	return dc.crac.SupplyC + r.offsets[slot] + dc.crac.RecircPerUtil*r.MeanUtilization(), nil
}

// RackInletTemps computes every slot's inlet temperature for one rack in a
// single pass, appending to dst and returning it. The rack's mean
// utilization — O(hosts) to derive — is computed once instead of once per
// slot, so a per-tick sweep over a fleet costs O(hosts) instead of
// O(hosts²); values are identical to per-slot InletTemp calls.
func (dc *Datacenter) RackInletTemps(r *Rack, dst []float64) ([]float64, error) {
	if r == nil {
		return nil, errors.New("cluster: nil rack")
	}
	return dc.RackInletTempsAt(r, r.MeanUtilization(), dst)
}

// RackInletTempsAt is RackInletTemps with the rack's mean utilization
// supplied by the caller — the seam for tick loops that already derived
// every host's utilization this step (one load sweep feeds both the inlet
// model and the thermal integration) and for rack-sharded parallel ticks,
// where each shard owns its rack's sweep. Passing MeanUtilization's value
// yields exactly RackInletTemps.
func (dc *Datacenter) RackInletTempsAt(r *Rack, meanUtil float64, dst []float64) ([]float64, error) {
	if r == nil {
		return nil, errors.New("cluster: nil rack")
	}
	base := dc.crac.SupplyC + dc.crac.RecircPerUtil*meanUtil
	for _, off := range r.offsets {
		dst = append(dst, base+off)
	}
	return dst, nil
}

// HostPosition locates a host in the datacenter.
type HostPosition struct {
	Rack *Rack
	Slot int
}

// FindHost returns the position of a host by id.
func (dc *Datacenter) FindHost(hostID string) (HostPosition, error) {
	for _, r := range dc.racks {
		for i, h := range r.hosts {
			if h.ID() == hostID {
				return HostPosition{Rack: r, Slot: i}, nil
			}
		}
	}
	return HostPosition{}, fmt.Errorf("cluster: no host %q", hostID)
}

// AllHosts returns every host with its position, in rack/slot order.
func (dc *Datacenter) AllHosts() []HostPosition {
	var out []HostPosition
	for _, r := range dc.racks {
		for i := range r.hosts {
			out = append(out, HostPosition{Rack: r, Slot: i})
		}
	}
	return out
}

// Hotspot is one server exceeding the thermal threshold.
type Hotspot struct {
	HostID string
	TempC  float64
	Margin float64 // degrees above the threshold
}

// DetectHotspots flags hosts whose (measured or predicted) temperature
// exceeds thresholdC. The input map's iteration order is random; the output
// is deterministic for tests and API consumers: sorted by descending margin,
// ties broken by host id.
func DetectHotspots(temps map[string]float64, thresholdC float64) []Hotspot {
	var out []Hotspot
	for id, tc := range temps {
		if tc > thresholdC {
			out = append(out, Hotspot{HostID: id, TempC: tc, Margin: tc - thresholdC})
		}
	}
	SortHotspots(out)
	return out
}

// SortHotspots orders hotspots by descending margin, ties broken by host id
// — the deterministic contract DetectHotspots promises — without allocating.
// Exposed for callers that build their hotspot slice from an already
// deterministic source (e.g. the fleet round's prediction buffer) into
// reusable storage.
func SortHotspots(out []Hotspot) {
	slices.SortFunc(out, func(a, b Hotspot) int {
		if a.Margin != b.Margin {
			if a.Margin > b.Margin {
				return -1
			}
			return 1
		}
		return strings.Compare(a.HostID, b.HostID)
	})
}

// HostStateCase reconstructs a workload.Case describing a host's *current*
// deployment plus an optional candidate VM — the feature source for
// prediction-driven placement. Fan count and ambient come from the caller's
// knowledge of the machine and the datacenter model.
func HostStateCase(h *vmm.Host, fanCount int, ambientC float64, candidate *workload.VMSpec) (workload.Case, error) {
	if h == nil {
		return workload.Case{}, errors.New("cluster: nil host")
	}
	c := workload.Case{
		Name:     "state:" + h.ID(),
		Host:     h.Config(),
		FanCount: fanCount,
		AmbientC: ambientC,
	}
	for _, vm := range h.VMs() {
		if vm.State() != vmm.VMRunning && vm.State() != vmm.VMMigrating {
			continue
		}
		spec := workload.VMSpec{ID: vm.ID(), Config: vm.Config()}
		for _, task := range vm.Tasks() {
			spec.Tasks = append(spec.Tasks, workload.TaskSpec{Task: task})
		}
		c.VMs = append(c.VMs, spec)
	}
	if candidate != nil {
		c.VMs = append(c.VMs, *candidate)
	}
	if len(c.VMs) == 0 {
		return workload.Case{}, errors.New("cluster: host state has no running VMs")
	}
	return c, nil
}
