package cluster

import (
	"errors"
	"fmt"
	"math"

	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// Placer chooses a host for a new VM.
type Placer interface {
	// Name identifies the policy in reports.
	Name() string
	// Choose returns the selected host, or an error if no host can admit
	// the VM.
	Choose(dc *Datacenter, spec workload.VMSpec) (*vmm.Host, error)
}

// canAdmit checks capacity without mutating the host.
func canAdmit(h *vmm.Host, cfg vmm.VMConfig) bool {
	hc := h.Config()
	if h.PlacedVCPUs()+float64(cfg.VCPUs) > float64(hc.Cores)*hc.CPUOvercommit {
		return false
	}
	return h.PlacedMemGB()+cfg.MemoryGB <= hc.MemoryGB
}

// ErrNoCapacity is returned when no host can admit the VM.
var ErrNoCapacity = errors.New("cluster: no host with capacity")

// FirstFit places on the first host (rack/slot order) with capacity — the
// thermally-blind baseline.
type FirstFit struct{}

// Name implements Placer.
func (FirstFit) Name() string { return "first-fit" }

// Choose implements Placer.
func (FirstFit) Choose(dc *Datacenter, spec workload.VMSpec) (*vmm.Host, error) {
	for _, pos := range dc.AllHosts() {
		h := pos.Rack.hosts[pos.Slot]
		if canAdmit(h, spec.Config) {
			return h, nil
		}
	}
	return nil, ErrNoCapacity
}

// CoolestInlet places on the admitting host with the lowest inlet
// temperature — thermal-aware but blind to what the VM itself will do.
type CoolestInlet struct{}

// Name implements Placer.
func (CoolestInlet) Name() string { return "coolest-inlet" }

// Choose implements Placer.
func (CoolestInlet) Choose(dc *Datacenter, spec workload.VMSpec) (*vmm.Host, error) {
	var best *vmm.Host
	bestInlet := math.Inf(1)
	for _, pos := range dc.AllHosts() {
		h := pos.Rack.hosts[pos.Slot]
		if !canAdmit(h, spec.Config) {
			continue
		}
		inlet, err := dc.InletTemp(pos.Rack, pos.Slot)
		if err != nil {
			return nil, err
		}
		if inlet < bestInlet {
			best, bestInlet = h, inlet
		}
	}
	if best == nil {
		return nil, ErrNoCapacity
	}
	return best, nil
}

// TempPredictor estimates a host's stable CPU temperature from a workload
// case; core.StablePredictor satisfies it via an adapter closure.
type TempPredictor func(c workload.Case) (float64, error)

// PredictedTemp places on the host whose *predicted post-placement* stable
// temperature is lowest — the paper's proactive thermal management use case.
type PredictedTemp struct {
	// Predict estimates ψ_stable for a hypothetical deployment.
	Predict TempPredictor
	// FanCount is the fan configuration assumed for every host.
	FanCount int
}

// Name implements Placer.
func (PredictedTemp) Name() string { return "predicted-temp" }

// Choose implements Placer.
func (p PredictedTemp) Choose(dc *Datacenter, spec workload.VMSpec) (*vmm.Host, error) {
	if p.Predict == nil {
		return nil, errors.New("cluster: PredictedTemp needs a predictor")
	}
	var best *vmm.Host
	bestTemp := math.Inf(1)
	for _, pos := range dc.AllHosts() {
		h := pos.Rack.hosts[pos.Slot]
		if !canAdmit(h, spec.Config) {
			continue
		}
		inlet, err := dc.InletTemp(pos.Rack, pos.Slot)
		if err != nil {
			return nil, err
		}
		state, err := HostStateCase(h, p.FanCount, inlet, &spec)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %s state: %w", h.ID(), err)
		}
		predicted, err := p.Predict(state)
		if err != nil {
			return nil, fmt.Errorf("cluster: predicting for %s: %w", h.ID(), err)
		}
		if predicted < bestTemp {
			best, bestTemp = h, predicted
		}
	}
	if best == nil {
		return nil, ErrNoCapacity
	}
	return best, nil
}
