package cluster

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

func mustHost(t *testing.T, id string) *vmm.Host {
	t.Helper()
	h, err := vmm.NewHost(id, vmm.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustRack(t *testing.T, id string, n int) *Rack {
	t.Helper()
	hosts := make([]*vmm.Host, n)
	offsets := make([]float64, n)
	for i := range hosts {
		hosts[i] = mustHost(t, fmt.Sprintf("%s-h%d", id, i))
		offsets[i] = float64(i) // higher slots warmer
	}
	r, err := NewRack(id, hosts, offsets)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustDC(t *testing.T, racks ...*Rack) *Datacenter {
	t.Helper()
	dc, err := NewDatacenter(DefaultCRAC(), racks)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

// runVM places a started VM with one cpu-bound task on h.
func runVM(t *testing.T, h *vmm.Host, id string, cpuFrac float64) *vmm.VM {
	t.Helper()
	vm, err := vmm.NewVM(id, vmm.VMConfig{VCPUs: 4, MemoryGB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.AddTask(vmm.Task{ID: id + "-t", Class: vmm.CPUBound, CPUFraction: cpuFrac, MemGB: 2}); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(vm); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(0); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestCRACValidate(t *testing.T) {
	if err := DefaultCRAC().Validate(); err != nil {
		t.Error(err)
	}
	if err := (CRAC{SupplyC: 50}).Validate(); err == nil {
		t.Error("absurd supply should fail")
	}
	if err := (CRAC{SupplyC: 18, RecircPerUtil: -1}).Validate(); err == nil {
		t.Error("negative recirc should fail")
	}
}

func TestNewRackValidation(t *testing.T) {
	h := mustHost(t, "h")
	if _, err := NewRack("", []*vmm.Host{h}, []float64{0}); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewRack("r", nil, nil); err == nil {
		t.Error("no hosts should fail")
	}
	if _, err := NewRack("r", []*vmm.Host{h}, []float64{0, 1}); err == nil {
		t.Error("offset mismatch should fail")
	}
	if _, err := NewRack("r", []*vmm.Host{nil}, []float64{0}); err == nil {
		t.Error("nil host should fail")
	}
}

func TestNewDatacenterValidation(t *testing.T) {
	r := mustRack(t, "r1", 2)
	if _, err := NewDatacenter(CRAC{SupplyC: 99}, []*Rack{r}); err == nil {
		t.Error("bad CRAC should fail")
	}
	if _, err := NewDatacenter(DefaultCRAC(), nil); err == nil {
		t.Error("no racks should fail")
	}
	if _, err := NewDatacenter(DefaultCRAC(), []*Rack{r, r}); err == nil {
		t.Error("duplicate rack should fail")
	}
	if _, err := NewDatacenter(DefaultCRAC(), []*Rack{nil}); err == nil {
		t.Error("nil rack should fail")
	}
}

func TestInletTempSlotOffsetsAndRecirc(t *testing.T) {
	r := mustRack(t, "r1", 3)
	dc := mustDC(t, r)
	// Idle rack: inlet = supply + offset.
	inlet0, err := dc.InletTemp(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	inlet2, err := dc.InletTemp(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inlet0 != 18 || inlet2 != 20 {
		t.Errorf("idle inlets = %v, %v; want 18, 20", inlet0, inlet2)
	}
	// Load the rack: recirculation warms every slot.
	runVM(t, r.Hosts()[0], "v1", 1.0)
	runVM(t, r.Hosts()[0], "v2", 1.0)
	warm0, err := dc.InletTemp(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm0 <= inlet0 {
		t.Errorf("recirculation should warm inlet: %v -> %v", inlet0, warm0)
	}
	if _, err := dc.InletTemp(r, 99); err == nil {
		t.Error("bad slot should fail")
	}
	if _, err := dc.InletTemp(nil, 0); err == nil {
		t.Error("nil rack should fail")
	}
}

// TestRackInletTempsVariants: the one-pass rack sweep and the caller-
// supplied-mean variant (the parallel tick's seam) must both reproduce
// per-slot InletTemp exactly, bit for bit.
func TestRackInletTempsVariants(t *testing.T) {
	r := mustRack(t, "r1", 4)
	dc := mustDC(t, r)
	runVM(t, r.Hosts()[1], "v1", 0.7)
	runVM(t, r.Hosts()[3], "v2", 0.4)

	want := make([]float64, 4)
	for s := range want {
		v, err := dc.InletTemp(r, s)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = v
	}
	sweep, err := dc.RackInletTemps(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	at, err := dc.RackInletTempsAt(r, r.MeanUtilization(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := range want {
		if sweep[s] != want[s] {
			t.Errorf("RackInletTemps slot %d = %v, want %v", s, sweep[s], want[s])
		}
		if at[s] != want[s] {
			t.Errorf("RackInletTempsAt slot %d = %v, want %v", s, at[s], want[s])
		}
	}
	if _, err := dc.RackInletTempsAt(nil, 0, nil); err == nil {
		t.Error("nil rack should fail")
	}
	// Appending semantics: existing dst content is preserved.
	dst := []float64{-1}
	out, err := dc.RackInletTempsAt(r, 0.5, dst)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != -1 || len(out) != 5 {
		t.Errorf("append contract broken: %v", out)
	}
}

func TestFindHostAndAllHosts(t *testing.T) {
	r1 := mustRack(t, "r1", 2)
	r2 := mustRack(t, "r2", 3)
	dc := mustDC(t, r1, r2)
	pos, err := dc.FindHost("r2-h1")
	if err != nil {
		t.Fatal(err)
	}
	if pos.Rack.ID() != "r2" || pos.Slot != 1 {
		t.Errorf("position = %s/%d", pos.Rack.ID(), pos.Slot)
	}
	if _, err := dc.FindHost("ghost"); err == nil {
		t.Error("unknown host should fail")
	}
	if got := len(dc.AllHosts()); got != 5 {
		t.Errorf("AllHosts = %d, want 5", got)
	}
}

func TestDetectHotspots(t *testing.T) {
	temps := map[string]float64{
		"a": 70,
		"b": 85,
		"c": 92,
		"d": 85,
	}
	hs := DetectHotspots(temps, 80)
	if len(hs) != 3 {
		t.Fatalf("hotspots = %d, want 3", len(hs))
	}
	if hs[0].HostID != "c" || math.Abs(hs[0].Margin-12) > 1e-12 {
		t.Errorf("hottest = %+v", hs[0])
	}
	// Equal temps tie-break by id for determinism.
	if hs[1].HostID != "b" || hs[2].HostID != "d" {
		t.Errorf("tie order: %s, %s", hs[1].HostID, hs[2].HostID)
	}
	if len(DetectHotspots(temps, 200)) != 0 {
		t.Error("no hotspots expected at threshold 200")
	}
}

// TestSortHotspotsMatchesDetect: sorting an unordered hotspot slice in
// place must yield exactly DetectHotspots' published order, without
// allocating.
func TestSortHotspotsMatchesDetect(t *testing.T) {
	temps := make(map[string]float64, 32)
	for i := 0; i < 32; i++ {
		temps[fmt.Sprintf("s%02d", i)] = 60 + float64(i/2)
	}
	ref := DetectHotspots(temps, 63)
	shuffled := make([]Hotspot, len(ref))
	for i, h := range ref {
		shuffled[(i*7)%len(ref)] = h
	}
	allocs := testing.AllocsPerRun(10, func() {
		SortHotspots(shuffled)
	})
	for i := range ref {
		if shuffled[i] != ref[i] {
			t.Fatalf("SortHotspots order diverged at %d: %+v vs %+v", i, shuffled[i], ref[i])
		}
	}
	if allocs != 0 {
		t.Errorf("SortHotspots allocates %.1f/op, want 0", allocs)
	}
}

// TestDetectHotspotsDeterministicOrder hammers a wide map repeatedly: the
// output must be identical across calls (map iteration order must never
// leak) and sorted by strictly non-increasing margin.
func TestDetectHotspotsDeterministicOrder(t *testing.T) {
	temps := make(map[string]float64, 64)
	for i := 0; i < 64; i++ {
		// Many deliberate margin ties (pairs share a temperature).
		temps[fmt.Sprintf("h%02d", i)] = 60 + float64(i/2)
	}
	ref := DetectHotspots(temps, 65)
	if len(ref) == 0 {
		t.Fatal("expected hotspots")
	}
	for i := 1; i < len(ref); i++ {
		if ref[i].Margin > ref[i-1].Margin {
			t.Fatalf("margins not descending at %d: %+v then %+v", i, ref[i-1], ref[i])
		}
		if ref[i].Margin == ref[i-1].Margin && ref[i].HostID < ref[i-1].HostID {
			t.Fatalf("tie not broken by id at %d: %q then %q", i, ref[i-1].HostID, ref[i].HostID)
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := DetectHotspots(temps, 65)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: order diverged at %d: %+v vs %+v", trial, i, got[i], ref[i])
			}
		}
	}
}

func TestHostStateCase(t *testing.T) {
	h := mustHost(t, "h1")
	runVM(t, h, "v1", 0.7)
	stopped := runVM(t, h, "v2", 0.9)
	if err := stopped.Stop(1); err != nil {
		t.Fatal(err)
	}
	c, err := HostStateCase(h, 4, 21, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.VMs) != 1 || c.VMs[0].ID != "v1" {
		t.Errorf("state should include only running VMs: %+v", c.VMs)
	}
	if c.FanCount != 4 || c.AmbientC != 21 {
		t.Error("fan/ambient not propagated")
	}
	// With a candidate appended.
	cand := workload.VMSpec{
		ID:     "new",
		Config: vmm.VMConfig{VCPUs: 2, MemoryGB: 4},
		Tasks: []workload.TaskSpec{
			{Task: vmm.Task{ID: "new-t", Class: vmm.CPUBound, CPUFraction: 0.5, MemGB: 1}},
		},
	}
	c2, err := HostStateCase(h, 4, 21, &cand)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.VMs) != 2 || c2.VMs[1].ID != "new" {
		t.Error("candidate not appended")
	}
	if _, err := HostStateCase(nil, 4, 21, nil); err == nil {
		t.Error("nil host should fail")
	}
	empty := mustHost(t, "h2")
	if _, err := HostStateCase(empty, 4, 21, nil); err == nil {
		t.Error("empty host without candidate should fail")
	}
}

func candidateSpec() workload.VMSpec {
	return workload.VMSpec{
		ID:     "cand",
		Config: vmm.VMConfig{VCPUs: 2, MemoryGB: 4},
		Tasks: []workload.TaskSpec{
			{Task: vmm.Task{ID: "cand-t", Class: vmm.CPUBound, CPUFraction: 0.8, MemGB: 1}},
		},
	}
}

func TestFirstFitTakesFirstWithCapacity(t *testing.T) {
	r := mustRack(t, "r1", 3)
	dc := mustDC(t, r)
	// Fill slot 0's memory completely.
	filler, err := vmm.NewVM("filler", vmm.VMConfig{VCPUs: 4, MemoryGB: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Hosts()[0].Place(filler); err != nil {
		t.Fatal(err)
	}
	h, err := FirstFit{}.Choose(dc, candidateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != "r1-h1" {
		t.Errorf("first fit chose %s, want r1-h1", h.ID())
	}
}

func TestCoolestInletPrefersBottomSlotOfIdleRack(t *testing.T) {
	hot := mustRack(t, "hot", 2)
	cold := mustRack(t, "cold", 2)
	dc := mustDC(t, hot, cold)
	// Heat up the "hot" rack.
	runVM(t, hot.Hosts()[0], "v1", 1.0)
	runVM(t, hot.Hosts()[1], "v2", 1.0)
	h, err := CoolestInlet{}.Choose(dc, candidateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != "cold-h0" {
		t.Errorf("coolest inlet chose %s, want cold-h0", h.ID())
	}
}

func TestPredictedTempUsesPredictor(t *testing.T) {
	r := mustRack(t, "r1", 3)
	dc := mustDC(t, r)
	// Give slot 2 some existing load so the fake predictor (which scores by
	// total demand) ranks it worse.
	runVM(t, r.Hosts()[2], "busy", 1.0)
	calls := 0
	p := PredictedTemp{
		FanCount: 4,
		Predict: func(c workload.Case) (float64, error) {
			calls++
			var demand float64
			for _, vm := range c.VMs {
				for _, ts := range vm.Tasks {
					demand += ts.Task.CPUFraction
				}
			}
			return 40 + 30*demand, nil
		},
	}
	h, err := p.Choose(dc, candidateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == "r1-h2" {
		t.Error("predictor should avoid the loaded host")
	}
	if calls != 3 {
		t.Errorf("predictor called %d times, want 3", calls)
	}
}

func TestPredictedTempRequiresPredictor(t *testing.T) {
	dc := mustDC(t, mustRack(t, "r1", 1))
	if _, err := (PredictedTemp{FanCount: 4}).Choose(dc, candidateSpec()); err == nil {
		t.Error("missing predictor should fail")
	}
}

func TestPlacersNoCapacity(t *testing.T) {
	r := mustRack(t, "r1", 1)
	dc := mustDC(t, r)
	big := workload.VMSpec{
		ID:     "huge",
		Config: vmm.VMConfig{VCPUs: 64, MemoryGB: 512},
	}
	placers := []Placer{
		FirstFit{},
		CoolestInlet{},
		PredictedTemp{FanCount: 4, Predict: func(workload.Case) (float64, error) { return 50, nil }},
	}
	for _, p := range placers {
		if _, err := p.Choose(dc, big); !errors.Is(err, ErrNoCapacity) {
			t.Errorf("%s: err = %v, want ErrNoCapacity", p.Name(), err)
		}
	}
}

func TestPlacerNames(t *testing.T) {
	if (FirstFit{}).Name() != "first-fit" ||
		(CoolestInlet{}).Name() != "coolest-inlet" ||
		(PredictedTemp{}).Name() != "predicted-temp" {
		t.Error("placer names wrong")
	}
}
