package predictserver

// Readiness and checkpoint observability: the restart-aware surface of the
// HTTP plane. /healthz answers "the process is up"; /readyz answers "this
// process restored its state and is serving" — load balancers and the CI
// kill-and-restart job gate on the latter so a warming (or draining) daemon
// takes no traffic. GET /v1/fleet/checkpoint exposes the durability
// subsystem's counters as JSON; the same numbers feed the
// vmtherm_checkpoint_* metric families.

import (
	"errors"
	"net/http"

	"vmtherm/internal/checkpoint"
)

// WithReadiness attaches a readiness probe: /readyz answers 200 only while
// ready() reports true. Daemons flip it true after restore + first round
// and false again when draining. Servers without a probe (tests, library
// embedders) are always ready.
func WithReadiness(ready func() bool) Option {
	return func(s *Server) { s.ready = ready }
}

// WithCheckpoint attaches the checkpoint subsystem's status feed (normally
// the daemon's checkpoint.Manager.Status), enabling GET /v1/fleet/checkpoint
// and populating the vmtherm_checkpoint_* counters.
func WithCheckpoint(status func() checkpoint.Status) Option {
	return func(s *Server) { s.ckptStatus = status }
}

// handleReadyz is the serving-readiness probe, distinct from /healthz: a
// process that is up but still restoring (or draining for shutdown) answers
// 503 here while /healthz stays 200.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.ready != nil && !s.ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleFleetCheckpoint serves the durability subsystem's status. Servers
// with no checkpoint feed answer 503 — same contract as the other optional
// attachments.
func (s *Server) handleFleetCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.ckptStatus == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no checkpoint subsystem attached"))
		return
	}
	writeJSON(w, http.StatusOK, s.ckptStatus())
}
