package predictserver

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"vmtherm/internal/checkpoint"
	"vmtherm/internal/fleet"
	"vmtherm/internal/scenario"
	"vmtherm/internal/telemetry"
)

// boolGauge renders a boolean as a 0/1 gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// GET /metrics serves the service's own state in Prometheus text exposition
// format, making vmtherm scrape-able by anything that speaks the format —
// including vmtherm itself: telemetry.ScrapeSource's defaults target exactly
// the per-host gauges exported here, so one controller's published view can
// feed another's ingest (the round-trip the tests pin).
//
// Families:
//
//	vmtherm_sessions                        live dynamic sessions (gauge)
//	vmtherm_items_total{kind=...}           served work items (counter):
//	                                        stable | observe | predict | ingest
//	vmtherm_place_placed_total              placement decisions by status
//	vmtherm_place_queued_total              (counter; fleet-attached servers
//	vmtherm_place_rejected_total            only)
//	vmtherm_place_batch_size                last placement batch size (gauge)
//	vmtherm_ingest_received_total           fleet pipeline counters (counter;
//	vmtherm_ingest_dropped_total            fleet-attached servers only)
//	vmtherm_ingest_superseded_total
//	vmtherm_ingest_rejected_total{reason=...}  implausible readings refused
//	                                        (nan | inf | too_cold | too_hot)
//	vmtherm_scenario_active                 scenario engine gauges (flat zero
//	vmtherm_scenario_round                  when no scenario is bound)
//	vmtherm_scenario_faults_active
//	vmtherm_scenario_contained
//	vmtherm_checkpoint_writes_total         durability counters (counter;
//	vmtherm_checkpoint_bytes_total          fleet-attached servers — flat zero
//	vmtherm_checkpoint_restores_total       unless checkpointing is enabled)
//	vmtherm_checkpoint_failures_total
//	vmtherm_ingest_stream_applied_total     streaming-ingest counters (counter;
//	vmtherm_ingest_stream_created_total     fleet-attached servers — flat zero
//	vmtherm_ingest_stream_deferred_total    unless streaming is enabled)
//	vmtherm_ingest_stream_predictions_total
//	vmtherm_hotspot_staleness_seconds       seconds since the served hotspot
//	                                        set was last refreshed (gauge)
//	vmtherm_anchor_cache_hits_total         ψ_stable anchor cache counters
//	vmtherm_anchor_cache_misses_total       (counter; fleet-attached servers
//	vmtherm_anchor_cache_evictions_total    with the cache enabled)
//	vmtherm_anchor_cache_invalidations_total
//	vmtherm_anchor_fanout                   last round's anchor miss-batch
//	                                        size fanned through the batch
//	                                        predictor (gauge)
//	vmtherm_fleet_round                     last published control round (gauge)
//	vmtherm_host_temp_celsius{host=...}     newest telemetry per host (gauge)
//	vmtherm_host_util_ratio{host=...}
//	vmtherm_host_mem_ratio{host=...}
//	vmtherm_host_predicted_temp_celsius{host=...}  Δ_gap-ahead prediction
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var sb strings.Builder

	writeMetric(&sb, "vmtherm_sessions", "gauge", "Live dynamic prediction sessions.", "", float64(s.eng.Len()))
	sb.WriteString("# HELP vmtherm_items_total Work items served, by kind.\n# TYPE vmtherm_items_total counter\n")
	writeSample(&sb, "vmtherm_items_total", `kind="stable"`, float64(s.metrics.stableItems.Load()))
	writeSample(&sb, "vmtherm_items_total", `kind="observe"`, float64(s.metrics.observeItems.Load()))
	writeSample(&sb, "vmtherm_items_total", `kind="predict"`, float64(s.metrics.predictItems.Load()))
	writeSample(&sb, "vmtherm_items_total", `kind="ingest"`, float64(s.metrics.ingestItems.Load()))

	if s.fleet != nil {
		writeMetric(&sb, "vmtherm_place_placed_total", "counter",
			"Placement decisions that landed a VM (single + batch endpoints).", "", float64(s.metrics.placePlaced.Load()))
		writeMetric(&sb, "vmtherm_place_queued_total", "counter",
			"Placement decisions parked on the admission queue.", "", float64(s.metrics.placeQueued.Load()))
		writeMetric(&sb, "vmtherm_place_rejected_total", "counter",
			"Placement decisions refused with a typed reject code.", "", float64(s.metrics.placeRejected.Load()))
		writeMetric(&sb, "vmtherm_place_batch_size", "gauge",
			"Size of the last placement batch served.", "", float64(s.metrics.placeBatchSize.Load()))

		received, dropped, superseded := s.fleet.IngestStats()
		writeMetric(&sb, "vmtherm_ingest_received_total", "counter",
			"Telemetry readings accepted by the fleet ingest pipeline.", "", float64(received))
		writeMetric(&sb, "vmtherm_ingest_dropped_total", "counter",
			"Telemetry readings dropped at the full ingest buffer.", "", float64(dropped))
		writeMetric(&sb, "vmtherm_ingest_superseded_total", "counter",
			"Drained readings superseded by newer ones before use.", "", float64(superseded))

		byReason, _ := s.fleet.IngestRejected()
		sb.WriteString("# HELP vmtherm_ingest_rejected_total Telemetry readings rejected as implausible, by reason.\n# TYPE vmtherm_ingest_rejected_total counter\n")
		for reason := telemetry.RejectNone + 1; reason < telemetry.NumRejectReasons; reason++ {
			writeSample(&sb, "vmtherm_ingest_rejected_total",
				`reason="`+reason.String()+`"`, float64(byReason[reason]))
		}

		// The scenario gauges are part of the stable exposition on every
		// fleet-attached server: flat zero when no scenario engine is bound,
		// so dashboards and alerts need no conditional scrape config.
		var st scenario.Status
		if s.scenario != nil {
			st = s.scenario()
		}
		writeMetric(&sb, "vmtherm_scenario_active", "gauge",
			"1 while a scripted thermal-emergency scenario is running.", "", boolGauge(st.Active))
		writeMetric(&sb, "vmtherm_scenario_round", "gauge",
			"Rounds completed by the running scenario.", "", float64(st.Round))
		writeMetric(&sb, "vmtherm_scenario_faults_active", "gauge",
			"Fault conditions currently injected by the scenario.", "", float64(st.FaultsActive))
		writeMetric(&sb, "vmtherm_scenario_contained", "gauge",
			"1 once a past emergency's hotspot set has returned to empty.", "", boolGauge(st.Contained))

		// Checkpoint counters are part of the stable exposition on every
		// fleet-attached server: flat zero when checkpointing is disabled, so
		// durability dashboards need no conditional scrape config.
		var ck checkpoint.Status
		if s.ckptStatus != nil {
			ck = s.ckptStatus()
		}
		writeMetric(&sb, "vmtherm_checkpoint_writes_total", "counter",
			"Checkpoint generations written successfully.", "", float64(ck.Writes))
		writeMetric(&sb, "vmtherm_checkpoint_bytes_total", "counter",
			"Bytes written across all successful checkpoints.", "", float64(ck.BytesWritten))
		writeMetric(&sb, "vmtherm_checkpoint_restores_total", "counter",
			"Successful restores from a checkpoint at startup.", "", float64(ck.Restores))
		writeMetric(&sb, "vmtherm_checkpoint_failures_total", "counter",
			"Checkpoint write or restore failures (corrupt files, I/O errors).", "", float64(ck.Failures))

		applied, created, deferred, predictions := s.fleet.StreamTotals()
		writeMetric(&sb, "vmtherm_ingest_stream_applied_total", "counter",
			"Pushed readings applied to their session on arrival (streaming ingest).", "", float64(applied))
		writeMetric(&sb, "vmtherm_ingest_stream_created_total", "counter",
			"Sessions created inline from the warm anchor cache on arrival.", "", float64(created))
		writeMetric(&sb, "vmtherm_ingest_stream_deferred_total", "counter",
			"Pushed readings deferred to the next batch round (no session, no warm anchor).", "", float64(deferred))
		writeMetric(&sb, "vmtherm_ingest_stream_predictions_total", "counter",
			"Synchronous predictions returned on the ingest path (predict: true).", "", float64(predictions))
		writeMetric(&sb, "vmtherm_hotspot_staleness_seconds", "gauge",
			"Seconds since the served hotspot set was last refreshed (per-arrival in streaming mode, per-round otherwise).", "", s.fleet.HotspotStalenessS())

		if cacheStats, fanout, enabled := s.fleet.AnchorCacheStats(); enabled {
			writeMetric(&sb, "vmtherm_anchor_cache_hits_total", "counter",
				"Anchor-cache hits: hosts whose stable anchor was served from the quantized cache.", "", float64(cacheStats.Hits))
			writeMetric(&sb, "vmtherm_anchor_cache_misses_total", "counter",
				"Anchor-cache misses: hosts whose stable anchor went through the batch predictor.", "", float64(cacheStats.Misses))
			writeMetric(&sb, "vmtherm_anchor_cache_evictions_total", "counter",
				"Anchor-cache entries dropped at the size bound.", "", float64(cacheStats.Evicted))
			writeMetric(&sb, "vmtherm_anchor_cache_invalidations_total", "counter",
				"Anchor-cache epoch bumps (model/config change).", "", float64(cacheStats.Invalidations))
			writeMetric(&sb, "vmtherm_anchor_fanout", "gauge",
				"Anchor miss-batch size fanned through the batch predictor last round.", "", float64(fanout))
		}

		// Scoped zero-copy borrow: the whole exposition is rendered inside
		// the view (into the local builder), so nothing from the snapshot
		// outlives it and the generation recycles instead of being cloned
		// per scrape.
		s.fleet.ViewSnapshot(func(snap *fleet.Snapshot) {
			writeMetric(&sb, "vmtherm_fleet_round", "gauge", "Last published control round.", "", float64(snap.Round))
			hosts := make([]string, 0, len(snap.Latest))
			for id := range snap.Latest {
				hosts = append(hosts, id)
			}
			sort.Strings(hosts)
			sb.WriteString("# HELP vmtherm_host_temp_celsius Newest sensed CPU temperature per host.\n# TYPE vmtherm_host_temp_celsius gauge\n")
			for _, id := range hosts {
				writeSample(&sb, "vmtherm_host_temp_celsius", hostLabel(id), snap.Latest[id].TempC)
			}
			sb.WriteString("# HELP vmtherm_host_util_ratio Newest CPU utilization per host.\n# TYPE vmtherm_host_util_ratio gauge\n")
			for _, id := range hosts {
				writeSample(&sb, "vmtherm_host_util_ratio", hostLabel(id), snap.Latest[id].Util)
			}
			sb.WriteString("# HELP vmtherm_host_mem_ratio Newest memory activity per host.\n# TYPE vmtherm_host_mem_ratio gauge\n")
			for _, id := range hosts {
				writeSample(&sb, "vmtherm_host_mem_ratio", hostLabel(id), snap.Latest[id].MemFrac)
			}
			sb.WriteString("# HELP vmtherm_host_predicted_temp_celsius Predicted temperature gap seconds ahead (stale hosts omitted).\n# TYPE vmtherm_host_predicted_temp_celsius gauge\n")
			for _, id := range hosts {
				if v, ok := snap.Predicted[id]; ok {
					writeSample(&sb, "vmtherm_host_predicted_temp_celsius", hostLabel(id), v)
				}
			}
		})
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(sb.String()))
}

// writeMetric emits HELP/TYPE plus one sample.
func writeMetric(sb *strings.Builder, name, typ, help, labels string, v float64) {
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	writeSample(sb, name, labels, v)
}

// writeSample emits one `name{labels} value` line.
func writeSample(sb *strings.Builder, name, labels string, v float64) {
	sb.WriteString(name)
	if labels != "" {
		sb.WriteByte('{')
		sb.WriteString(labels)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	sb.WriteByte('\n')
}

// labelEscaper applies exposition-format label-value escaping.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// hostLabel renders the host label pair with exposition-format escaping.
func hostLabel(id string) string {
	return `host="` + labelEscaper.Replace(id) + `"`
}
