package predictserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/workload"
)

// trainedModel builds a small but real model once per test binary.
var (
	modelOnce sync.Once
	model     *core.StablePredictor
	modelRec  dataset.Record
	modelErr  error
)

func testModel(t *testing.T) (*core.StablePredictor, dataset.Record) {
	t.Helper()
	modelOnce.Do(func() {
		cases, err := workload.GenerateCases(workload.DefaultGenOptions(), 17, "ps", 30)
		if err != nil {
			modelErr = err
			return
		}
		recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(17))
		if err != nil {
			modelErr = err
			return
		}
		m, err := core.TrainStable(context.Background(), recs, core.FastStableConfig())
		if err != nil {
			modelErr = err
			return
		}
		model = m
		modelRec = recs[0]
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model, modelRec
}

func newTestServer(t *testing.T) (*Server, *httptest.Server, dataset.Record) {
	t.Helper()
	m, rec := testModel(t)
	srv, err := New(m, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, rec
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewRejectsNilModel(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[map[string]string](t, resp)
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestStablePrediction(t *testing.T) {
	_, ts, rec := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/predict/stable", StableRequest{Features: rec.Features})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[StableResponse](t, resp)
	// The model saw this record in training; prediction should be close.
	if math.Abs(body.StableTempC-rec.StableTemp) > 5 {
		t.Errorf("prediction %v far from %v", body.StableTempC, rec.StableTemp)
	}
}

func TestStablePredictionBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/predict/stable", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/predict/stable", StableRequest{Features: []float64{1, 2}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("wrong-dim status = %d", resp.StatusCode)
	}
}

func TestDynamicSessionLifecycle(t *testing.T) {
	srv, ts, rec := newTestServer(t)

	// Create a session with model-derived ψ_stable.
	resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Phi0:     22,
		Features: rec.Features,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	sess := decode[SessionResponse](t, resp)
	if sess.ID == "" || sess.StableTempC <= 22 {
		t.Fatalf("session = %+v", sess)
	}
	if srv.SessionCount() != 1 {
		t.Errorf("session count = %d", srv.SessionCount())
	}

	// Observe a measurement 2° above the curve start: γ moves λ·dif.
	resp = postJSON(t, fmt.Sprintf("%s/v1/session/%s/observe", ts.URL, sess.ID),
		ObserveRequest{T: 0, TempC: 24})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status = %d", resp.StatusCode)
	}
	obs := decode[ObserveResponse](t, resp)
	if math.Abs(obs.Gamma-0.8*2) > 1e-9 {
		t.Errorf("gamma = %v, want 1.6", obs.Gamma)
	}

	// Predict 60 s ahead.
	getResp, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=0", ts.URL, sess.ID))
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", getResp.StatusCode)
	}
	pr := decode[PredictResponse](t, getResp)
	if pr.TempC <= 22 || pr.TempC > 110 {
		t.Errorf("prediction %v implausible", pr.TempC)
	}
	if pr.Gamma != obs.Gamma {
		t.Errorf("gamma drifted: %v vs %v", pr.Gamma, obs.Gamma)
	}

	// Delete and verify gone.
	req, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/session/%s", ts.URL, sess.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", delResp.StatusCode)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("session count after delete = %d", srv.SessionCount())
	}
	getResp2, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=0", ts.URL, sess.ID))
	if err != nil {
		t.Fatal(err)
	}
	getResp2.Body.Close()
	if getResp2.StatusCode != http.StatusNotFound {
		t.Errorf("deleted session predict status = %d", getResp2.StatusCode)
	}
}

func TestSessionWithExplicitStable(t *testing.T) {
	_, ts, _ := newTestServer(t)
	stable := 70.0
	resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Phi0:        20,
		StableTempC: &stable,
		GapS:        30,
		Lambda:      0.5,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	sess := decode[SessionResponse](t, resp)
	if sess.StableTempC != 70 {
		t.Errorf("stable = %v, want 70 (explicit)", sess.StableTempC)
	}
}

func TestSessionValidationErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Neither stable nor features.
	resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no-anchor status = %d", resp.StatusCode)
	}
	// Bad lambda.
	stable := 70.0
	resp = postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Phi0: 20, StableTempC: &stable, Lambda: 3,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad lambda status = %d", resp.StatusCode)
	}
	// Bad features.
	resp = postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Phi0: 20, Features: []float64{1},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad features status = %d", resp.StatusCode)
	}
}

func TestObservePredictUnknownSession(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/session/ghost/observe", ObserveRequest{T: 0, TempC: 20})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("observe unknown status = %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/session/ghost/predict?t=0")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Errorf("predict unknown status = %d", getResp.StatusCode)
	}
}

func TestPredictBadTimestamp(t *testing.T) {
	_, ts, _ := newTestServer(t)
	stable := 70.0
	resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20, StableTempC: &stable})
	sess := decode[SessionResponse](t, resp)
	getResp, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=abc", ts.URL, sess.ID))
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad t status = %d", getResp.StatusCode)
	}
}

func TestStableBatchRoundTrip(t *testing.T) {
	_, ts, rec := newTestServer(t)
	const n = 24
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = rec.Features
	}
	resp := postJSON(t, ts.URL+"/v1/stable/batch", StableBatchRequest{Rows: rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[StableBatchResponse](t, resp)
	if len(body.StableTempsC) != n {
		t.Fatalf("got %d predictions, want %d", len(body.StableTempsC), n)
	}
	// Every row is identical, so every prediction must match the single
	// endpoint's answer.
	single := postJSON(t, ts.URL+"/v1/predict/stable", StableRequest{Features: rec.Features})
	want := decode[StableResponse](t, single).StableTempC
	for i, v := range body.StableTempsC {
		if math.Abs(v-want) > 1e-6 {
			t.Errorf("row %d: batch %v vs single %v", i, v, want)
		}
	}
}

func TestStableBatchBadRows(t *testing.T) {
	_, ts, rec := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/stable/batch",
		StableBatchRequest{Rows: [][]float64{rec.Features, {1, 2}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("ragged batch status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/stable/batch", StableBatchRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty batch status = %d", resp.StatusCode)
	}
	body := decode[StableBatchResponse](t, resp)
	if len(body.StableTempsC) != 0 {
		t.Errorf("empty batch returned %d predictions", len(body.StableTempsC))
	}
}

func TestSessionBatchObservePredict(t *testing.T) {
	_, ts, _ := newTestServer(t)

	// Open three sessions with distinct anchors.
	ids := make([]string, 3)
	for i := range ids {
		stable := 50.0 + 10*float64(i)
		resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20, StableTempC: &stable})
		ids[i] = decode[SessionResponse](t, resp).ID
	}

	// Batch-observe all three plus one ghost id: per-item errors, not a
	// request-level failure.
	obsReq := ObserveBatchRequest{Items: []ObserveBatchItem{
		{ID: ids[0], T: 0, TempC: 24},
		{ID: ids[1], T: 0, TempC: 26},
		{ID: "ghost", T: 0, TempC: 30},
		{ID: ids[2], T: 0, TempC: 28},
	}}
	resp := postJSON(t, ts.URL+"/v1/session/batch/observe", obsReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe batch status = %d", resp.StatusCode)
	}
	obs := decode[ObserveBatchResponse](t, resp)
	if len(obs.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(obs.Results))
	}
	// First observation at t=0: γ = λ·(φ − curve(0)) = 0.8·(temp − 20).
	for i, want := range []float64{0.8 * 4, 0.8 * 6, 0, 0.8 * 8} {
		if i == 2 {
			if obs.Results[i].Error == "" {
				t.Error("ghost observe succeeded")
			}
			continue
		}
		if obs.Results[i].Error != "" {
			t.Errorf("item %d error: %s", i, obs.Results[i].Error)
		}
		if math.Abs(obs.Results[i].Gamma-want) > 1e-9 {
			t.Errorf("item %d gamma = %v, want %v", i, obs.Results[i].Gamma, want)
		}
	}

	// Batch-predict mirrors the single endpoint.
	predReq := PredictBatchRequest{Items: []PredictBatchItem{
		{ID: ids[0], T: 0},
		{ID: "ghost", T: 0},
		{ID: ids[1], T: 0},
	}}
	resp = postJSON(t, ts.URL+"/v1/session/batch/predict", predReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict batch status = %d", resp.StatusCode)
	}
	preds := decode[PredictBatchResponse](t, resp)
	if len(preds.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(preds.Results))
	}
	if preds.Results[1].Error == "" {
		t.Error("ghost predict succeeded")
	}
	for _, i := range []int{0, 2} {
		id := predReq.Items[i].ID
		single, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=0", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		want := decode[PredictResponse](t, single)
		if preds.Results[i].Error != "" {
			t.Errorf("item %d error: %s", i, preds.Results[i].Error)
		}
		if preds.Results[i].TempC != want.TempC || preds.Results[i].Gamma != want.Gamma {
			t.Errorf("item %d: batch %+v vs single %+v", i, preds.Results[i], want)
		}
	}
}

func TestBatchTooLarge(t *testing.T) {
	_, ts, _ := newTestServer(t)
	items := make([]PredictBatchItem, MaxBatchItems+1)
	resp := postJSON(t, ts.URL+"/v1/session/batch/predict", PredictBatchRequest{Items: items})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status = %d", resp.StatusCode)
	}
}

// TestConcurrentBatchEndpoints drives the batch HTTP surface from many
// goroutines at once to exercise the worker pool and striped locks together.
func TestConcurrentBatchEndpoints(t *testing.T) {
	_, ts, rec := newTestServer(t)

	// A shared pool of sessions.
	const nSessions = 12
	ids := make([]string, nSessions)
	for i := range ids {
		stable := 55.0
		resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20, StableTempC: &stable})
		ids[i] = decode[SessionResponse](t, resp).ID
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				obs := ObserveBatchRequest{}
				for i, id := range ids {
					obs.Items = append(obs.Items, ObserveBatchItem{
						ID: id, T: float64(round * 15), TempC: 25 + float64(i),
					})
				}
				r1 := postJSON(t, ts.URL+"/v1/session/batch/observe", obs)
				if r1.StatusCode != http.StatusOK {
					t.Errorf("observe status = %d", r1.StatusCode)
				}
				r1.Body.Close()

				pred := PredictBatchRequest{}
				for _, id := range ids {
					pred.Items = append(pred.Items, PredictBatchItem{ID: id, T: float64(round * 15)})
				}
				r2 := postJSON(t, ts.URL+"/v1/session/batch/predict", pred)
				if r2.StatusCode != http.StatusOK {
					t.Errorf("predict status = %d", r2.StatusCode)
				}
				r2.Body.Close()

				rows := make([][]float64, 16)
				for i := range rows {
					rows[i] = rec.Features
				}
				r3 := postJSON(t, ts.URL+"/v1/stable/batch", StableBatchRequest{Rows: rows})
				if r3.StatusCode != http.StatusOK {
					t.Errorf("stable batch status = %d", r3.StatusCode)
				}
				r3.Body.Close()
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentSessions(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stable := 60.0
			resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20, StableTempC: &stable})
			sess := decode[SessionResponse](t, resp)
			for j := 0; j < 20; j++ {
				r := postJSON(t, fmt.Sprintf("%s/v1/session/%s/observe", ts.URL, sess.ID),
					ObserveRequest{T: float64(j * 15), TempC: 30 + float64(j)})
				r.Body.Close()
				g, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=%d", ts.URL, sess.ID, j*15))
				if err != nil {
					t.Error(err)
					return
				}
				g.Body.Close()
			}
		}()
	}
	wg.Wait()
	if srv.SessionCount() != 8 {
		t.Errorf("session count = %d, want 8", srv.SessionCount())
	}
}
