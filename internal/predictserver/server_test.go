package predictserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/workload"
)

// trainedModel builds a small but real model once per test binary.
var (
	modelOnce sync.Once
	model     *core.StablePredictor
	modelRec  dataset.Record
	modelErr  error
)

func testModel(t *testing.T) (*core.StablePredictor, dataset.Record) {
	t.Helper()
	modelOnce.Do(func() {
		cases, err := workload.GenerateCases(workload.DefaultGenOptions(), 17, "ps", 30)
		if err != nil {
			modelErr = err
			return
		}
		recs, err := dataset.Build(context.Background(), cases, dataset.DefaultBuildOptions(17))
		if err != nil {
			modelErr = err
			return
		}
		m, err := core.TrainStable(context.Background(), recs, core.FastStableConfig())
		if err != nil {
			modelErr = err
			return
		}
		model = m
		modelRec = recs[0]
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model, modelRec
}

func newTestServer(t *testing.T) (*Server, *httptest.Server, dataset.Record) {
	t.Helper()
	m, rec := testModel(t)
	srv, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, rec
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewRejectsNilModel(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[map[string]string](t, resp)
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestStablePrediction(t *testing.T) {
	_, ts, rec := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/predict/stable", StableRequest{Features: rec.Features})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[StableResponse](t, resp)
	// The model saw this record in training; prediction should be close.
	if math.Abs(body.StableTempC-rec.StableTemp) > 5 {
		t.Errorf("prediction %v far from %v", body.StableTempC, rec.StableTemp)
	}
}

func TestStablePredictionBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/predict/stable", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/predict/stable", StableRequest{Features: []float64{1, 2}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("wrong-dim status = %d", resp.StatusCode)
	}
}

func TestDynamicSessionLifecycle(t *testing.T) {
	srv, ts, rec := newTestServer(t)

	// Create a session with model-derived ψ_stable.
	resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Phi0:     22,
		Features: rec.Features,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	sess := decode[SessionResponse](t, resp)
	if sess.ID == "" || sess.StableTempC <= 22 {
		t.Fatalf("session = %+v", sess)
	}
	if srv.SessionCount() != 1 {
		t.Errorf("session count = %d", srv.SessionCount())
	}

	// Observe a measurement 2° above the curve start: γ moves λ·dif.
	resp = postJSON(t, fmt.Sprintf("%s/v1/session/%s/observe", ts.URL, sess.ID),
		ObserveRequest{T: 0, TempC: 24})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status = %d", resp.StatusCode)
	}
	obs := decode[ObserveResponse](t, resp)
	if math.Abs(obs.Gamma-0.8*2) > 1e-9 {
		t.Errorf("gamma = %v, want 1.6", obs.Gamma)
	}

	// Predict 60 s ahead.
	getResp, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=0", ts.URL, sess.ID))
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", getResp.StatusCode)
	}
	pr := decode[PredictResponse](t, getResp)
	if pr.TempC <= 22 || pr.TempC > 110 {
		t.Errorf("prediction %v implausible", pr.TempC)
	}
	if pr.Gamma != obs.Gamma {
		t.Errorf("gamma drifted: %v vs %v", pr.Gamma, obs.Gamma)
	}

	// Delete and verify gone.
	req, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/session/%s", ts.URL, sess.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", delResp.StatusCode)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("session count after delete = %d", srv.SessionCount())
	}
	getResp2, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=0", ts.URL, sess.ID))
	if err != nil {
		t.Fatal(err)
	}
	getResp2.Body.Close()
	if getResp2.StatusCode != http.StatusNotFound {
		t.Errorf("deleted session predict status = %d", getResp2.StatusCode)
	}
}

func TestSessionWithExplicitStable(t *testing.T) {
	_, ts, _ := newTestServer(t)
	stable := 70.0
	resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Phi0:        20,
		StableTempC: &stable,
		GapS:        30,
		Lambda:      0.5,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	sess := decode[SessionResponse](t, resp)
	if sess.StableTempC != 70 {
		t.Errorf("stable = %v, want 70 (explicit)", sess.StableTempC)
	}
}

func TestSessionValidationErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Neither stable nor features.
	resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no-anchor status = %d", resp.StatusCode)
	}
	// Bad lambda.
	stable := 70.0
	resp = postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Phi0: 20, StableTempC: &stable, Lambda: 3,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad lambda status = %d", resp.StatusCode)
	}
	// Bad features.
	resp = postJSON(t, ts.URL+"/v1/session", SessionRequest{
		Phi0: 20, Features: []float64{1},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad features status = %d", resp.StatusCode)
	}
}

func TestObservePredictUnknownSession(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/session/ghost/observe", ObserveRequest{T: 0, TempC: 20})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("observe unknown status = %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/session/ghost/predict?t=0")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Errorf("predict unknown status = %d", getResp.StatusCode)
	}
}

func TestPredictBadTimestamp(t *testing.T) {
	_, ts, _ := newTestServer(t)
	stable := 70.0
	resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20, StableTempC: &stable})
	sess := decode[SessionResponse](t, resp)
	getResp, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=abc", ts.URL, sess.ID))
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad t status = %d", getResp.StatusCode)
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stable := 60.0
			resp := postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20, StableTempC: &stable})
			sess := decode[SessionResponse](t, resp)
			for j := 0; j < 20; j++ {
				r := postJSON(t, fmt.Sprintf("%s/v1/session/%s/observe", ts.URL, sess.ID),
					ObserveRequest{T: float64(j * 15), TempC: 30 + float64(j)})
				r.Body.Close()
				g, err := http.Get(fmt.Sprintf("%s/v1/session/%s/predict?t=%d", ts.URL, sess.ID, j*15))
				if err != nil {
					t.Error(err)
					return
				}
				g.Body.Close()
			}
		}()
	}
	wg.Wait()
	if srv.SessionCount() != 8 {
		t.Errorf("session count = %d, want 8", srv.SessionCount())
	}
}
