package predictserver

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vmtherm/internal/fleet"
)

// streamingFleet builds a streaming-ingest controller with one overloaded
// machine, run until the hotspot set is non-empty (so the live index has
// been reconciled against a real recompute at least once).
func streamingFleet(t *testing.T) (*fleet.Controller, fleet.Config) {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Racks = 1
	cfg.HostsPerRack = 4
	cfg.ThresholdC = 70
	cfg.MaxMigrationsPerRound = 0
	cfg.StreamingIngest = true
	cfg.Seed = 23
	ctl, err := fleet.New(cfg, fleet.SyntheticStablePredictor(75))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if err := ctl.PlaceAt("r0-h0", fleet.HeavyVMSpec(fmt.Sprintf("hot-%02d", v), 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 40; round++ {
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
		if len(ctl.Hotspots().Hotspots) > 0 {
			return ctl, cfg
		}
	}
	t.Fatal("fleet never produced a hotspot")
	return nil, cfg
}

// TestFleetIngestPredictRequiresStreaming: predict: true against a
// round-based (non-streaming) control plane is a typed 409, not a silent
// empty prediction list.
func TestFleetIngestPredictRequiresStreaming(t *testing.T) {
	m, _ := testModel(t)
	ctl := hotFleet(t)
	srv, err := New(m, WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/fleet/ingest", FleetIngestRequest{
		Predict:  true,
		Readings: []FleetReading{{HostID: "r0-h0", AtS: 1, TempC: 50}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("predict without streaming: got %d, want 409", resp.StatusCode)
	}
	// Without predict the same request still ingests fine.
	resp = postJSON(t, ts.URL+"/v1/fleet/ingest", FleetIngestRequest{
		Readings: []FleetReading{{HostID: "r0-h0", AtS: 1, TempC: 50}},
	})
	out := decode[FleetIngestResponse](t, resp)
	if out.Accepted != 1 || len(out.Predictions) != 0 {
		t.Fatalf("plain ingest on non-streaming fleet: %+v", out)
	}
}

// TestFleetIngestPredictEndpoint drives the synchronous-predictive path
// end to end: the 200 carries per-reading predictions, the live hotspot
// index reflects the push immediately, and the streaming counters surface
// in /metrics.
func TestFleetIngestPredictEndpoint(t *testing.T) {
	m, _ := testModel(t)
	ctl, cfg := streamingFleet(t)
	srv, err := New(m, WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Timestamp past the session's calibration schedule so the arrival
	// calibrates before predicting; an unknown host on a simulated fleet is
	// deferred to the next round (its anchors are not in the warm cache's
	// namespace).
	at := ctl.Hotspots().SimTimeS + cfg.UpdateEveryS + 5
	resp := postJSON(t, ts.URL+"/v1/fleet/ingest", FleetIngestRequest{
		Predict: true,
		Readings: []FleetReading{
			{HostID: "r0-h1", AtS: at, TempC: 88, Util: 0.9, MemFrac: 0.5},
			{HostID: "ghost", AtS: at, TempC: 40, Util: 0.2, MemFrac: 0.2},
		},
	})
	out := decode[FleetIngestResponse](t, resp)
	if out.Accepted != 2 || out.Dropped != 0 {
		t.Fatalf("accounting = %+v, want accepted 2 dropped 0", out)
	}
	if out.Streamed != 1 || out.Deferred != 1 {
		t.Fatalf("streaming accounting = %+v, want streamed 1 deferred 1", out)
	}
	if len(out.Predictions) != 2 {
		t.Fatalf("got %d predictions, want 2 (one per reading)", len(out.Predictions))
	}
	pr := out.Predictions[0]
	if pr.HostID != "r0-h1" || pr.Outcome != "streamed" || pr.PredictedTempC <= 0 {
		t.Fatalf("streamed prediction = %+v", pr)
	}
	if out.Predictions[1].Outcome != "deferred" || out.Predictions[1].PredictedTempC != 0 {
		t.Fatalf("deferred prediction = %+v", out.Predictions[1])
	}

	// The hotspots endpoint now serves the live incremental index.
	hresp, err := http.Get(ts.URL + "/v1/fleet/hotspots")
	if err != nil {
		t.Fatal(err)
	}
	hot := decode[FleetHotspotsResponse](t, hresp)
	if !hot.Streaming {
		t.Fatal("hotspots response not marked streaming")
	}
	if len(hot.Hotspots) == 0 {
		t.Fatal("live hotspot index empty despite overloaded host")
	}
	for i := 1; i < len(hot.Hotspots); i++ {
		if hot.Hotspots[i].MarginC > hot.Hotspots[i-1].MarginC {
			t.Fatalf("live hotspots not sorted by descending margin: %+v", hot.Hotspots)
		}
	}
	// The pushed reading must be visible exactly when its fresh prediction
	// crossed the threshold — no waiting for the next round either way.
	var inIndex bool
	for _, h := range hot.Hotspots {
		if h.HostID == "r0-h1" {
			inIndex = true
			if h.PredictedTempC != pr.PredictedTempC {
				t.Fatalf("index temp %v != synchronous prediction %v", h.PredictedTempC, pr.PredictedTempC)
			}
		}
	}
	if want := pr.PredictedTempC > hot.ThresholdC; inIndex != want {
		t.Fatalf("pushed host in index = %v, want %v (predicted %v vs threshold %v)",
			inIndex, want, pr.PredictedTempC, hot.ThresholdC)
	}

	// Streaming families in the exposition.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(raw)
	for _, want := range []string{
		"vmtherm_ingest_stream_applied_total 1",
		"vmtherm_ingest_stream_deferred_total 1",
		"vmtherm_ingest_stream_predictions_total 1",
		"vmtherm_hotspot_staleness_seconds",
	} {
		if !strings.Contains(exposition, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
