package predictserver

import (
	"runtime"
	"sync"
)

// workerPool is a fixed set of goroutines that batch handlers fan work out
// to. Batch requests arrive with hundreds of independent items (one per
// datacenter host in a scheduling round); splitting them into contiguous
// chunks across the pool evaluates them concurrently while bounding the
// goroutine count regardless of request size or request concurrency.
type workerPool struct {
	tasks   chan func()
	workers int
	wg      sync.WaitGroup
	closed  sync.Once
}

// newWorkerPool starts n workers; n <= 0 selects GOMAXPROCS.
func newWorkerPool(n int) *workerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &workerPool{tasks: make(chan func()), workers: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// dispatch partitions [0, n) into at most `workers` contiguous chunks, runs
// f on each chunk across the pool, and waits for all of them. The final
// chunk runs on the calling goroutine so a single-worker pool (or a tiny
// batch) degenerates to a plain loop with no channel round-trips.
func (p *workerPool) dispatch(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunk := (n + p.workers - 1) / p.workers
	var wg sync.WaitGroup
	lo := 0
	for lo+chunk < n {
		hi := lo + chunk
		wg.Add(1)
		task := func(lo, hi int) func() {
			return func() { defer wg.Done(); f(lo, hi) }
		}(lo, hi)
		p.tasks <- task
		lo = hi
	}
	f(lo, n)
	wg.Wait()
}

// close stops the workers; pending dispatch calls must have returned.
func (p *workerPool) close() {
	p.closed.Do(func() { close(p.tasks) })
	p.wg.Wait()
}
