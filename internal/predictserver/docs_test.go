package predictserver

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// apiDocPath locates docs/API.md from the package directory.
const apiDocPath = "../../docs/API.md"

// docRoutePattern matches a backticked "METHOD /path" reference, the form
// docs/API.md uses for every endpoint heading.
var docRoutePattern = regexp.MustCompile("`(GET|POST|DELETE) (/[^`\\s]*)`")

// docMetricPattern matches a backticked vmtherm_* metric family name
// (label selectors after the name are ignored).
var docMetricPattern = regexp.MustCompile("`(vmtherm_[a-z0-9_]+)")

func readAPIDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("docs/API.md must exist and document every route: %v", err)
	}
	return string(b)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestAPIDocCoversAllRoutes pins docs/API.md to the served surface in both
// directions: every registered route pattern must appear in the doc as a
// backticked "METHOD /path", and every such reference in the doc must be a
// registered route. Adding or removing an endpoint without updating the
// doc fails here.
func TestAPIDocCoversAllRoutes(t *testing.T) {
	doc := readAPIDoc(t)
	documented := map[string]bool{}
	for _, m := range docRoutePattern.FindAllStringSubmatch(doc, -1) {
		documented[m[1]+" "+m[2]] = true
	}

	served := map[string]bool{}
	for _, p := range (&Server{}).RoutePatterns() {
		served[p] = true
	}
	if len(served) == 0 {
		t.Fatal("no served routes")
	}

	for _, p := range sortedKeys(served) {
		if !documented[p] {
			t.Errorf("route %q is served but not documented in docs/API.md", p)
		}
	}
	for _, p := range sortedKeys(documented) {
		if !served[p] {
			t.Errorf("docs/API.md documents %q but the server does not register it", p)
		}
	}
}

// TestAPIDocCoversAllMetrics pins the metrics catalog in docs/API.md to
// the families a fully-featured server (fleet attached, anchor cache
// enabled) actually exposes, in both directions.
func TestAPIDocCoversAllMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	doc := readAPIDoc(t)
	documented := map[string]bool{}
	for _, m := range docMetricPattern.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}

	ls, err := NewLocalStack(context.Background(), LocalStackConfig{
		Racks: 1, HostsPerRack: 2, TrainCases: 12, PrimeRounds: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Close)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rw := httptest.NewRecorder()
	ls.Server.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rw.Code)
	}

	exposed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(rw.Body.String()))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 3 && fields[0] == "#" && fields[1] == "TYPE" {
			exposed[fields[2]] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(exposed) == 0 {
		t.Fatal("no metric families exposed")
	}

	for _, name := range sortedKeys(exposed) {
		if !documented[name] {
			t.Errorf("metric family %q is exposed but not documented in docs/API.md", name)
		}
	}
	for _, name := range sortedKeys(documented) {
		if !exposed[name] {
			t.Errorf("docs/API.md documents metric %q but a fully-featured server does not expose it", name)
		}
	}
}
