package predictserver

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"vmtherm/internal/fleet"
)

func TestRoutePatternsMatchServedHandler(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	patterns := srv.RoutePatterns()
	if len(patterns) == 0 {
		t.Fatal("no route patterns")
	}
	seen := map[string]bool{}
	for _, p := range patterns {
		if seen[p] {
			t.Fatalf("duplicate route pattern %q", p)
		}
		seen[p] = true
		method, path, ok := strings.Cut(p, " ")
		if !ok || !strings.HasPrefix(path, "/") {
			t.Fatalf("pattern %q is not \"METHOD /path\"", p)
		}
		switch method {
		case "GET", "POST", "DELETE":
		default:
			t.Fatalf("pattern %q has unexpected method", p)
		}
	}
	// The served mux must know every listed pattern: probing with the
	// wrong method must answer 405 (pattern exists), never 404.
	for _, p := range patterns {
		method, path, _ := strings.Cut(p, " ")
		probe := "POST"
		if method == "POST" {
			probe = "DELETE"
		}
		path = strings.NewReplacer("{id}", "probe").Replace(path)
		req, err := http.NewRequest(probe, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 404 {
			t.Fatalf("route %q listed but not served (404 on %s %s)", p, probe, path)
		}
	}
}

func TestNewLocalStackServesAllEndpointFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ls, err := NewLocalStack(context.Background(), LocalStackConfig{
		Racks: 1, HostsPerRack: 4, TrainCases: 12, PrimeRounds: 2,
		Admission: fleet.AdmissionPolicy{MaxQueueDepth: 64},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Close)

	snap := ls.Fleet.Hotspots()
	if snap.Round < 2 {
		t.Fatalf("priming ran %d rounds, want ≥ 2", snap.Round)
	}
	if got := ls.Fleet.Config().Admission.MaxQueueDepth; got != 64 {
		t.Fatalf("admission policy not applied: queue depth %d", got)
	}
	if err := ls.RunRounds(1); err != nil {
		t.Fatal(err)
	}
	if ls.Fleet.Hotspots().Round != snap.Round+1 {
		t.Fatal("RunRounds did not advance the control plane")
	}
	// The server must answer a stable prediction from the trained model.
	if _, err := ls.Model.PredictFeatures(make([]float64, 0)); err == nil {
		t.Fatal("zero-length feature vector unexpectedly accepted (model not real?)")
	}
}
