// Package predictserver implements the HTTP prediction service behind
// cmd/vmtherm-predictd: stable-temperature prediction from Eq. (2) feature
// vectors, and per-server dynamic prediction sessions that receive online
// measurements and answer Δ_gap-ahead queries — the deployment loop the
// paper describes ("the model received data collected online and output
// prediction values").
//
// The service is built for fleet-scale batch traffic: thermal-aware
// schedulers consume predictions for hundreds of hosts per round, so
// alongside the single-item endpoints it serves batch variants backed by
// the unified session engine (internal/engine — the same sharded
// striped-lock lifecycle the fleet control plane drives) and a worker pool,
// with the stable path funnelled through the SVM batch kernel.
package predictserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"vmtherm/internal/checkpoint"
	"vmtherm/internal/core"
	"vmtherm/internal/engine"
	"vmtherm/internal/fleet"
	"vmtherm/internal/scenario"
)

// MaxBatchItems caps the item count of one batch request. A datacenter
// round larger than this should be split into several requests.
const MaxBatchItems = 65536

// maxBatchBodyBytes caps a batch request body before JSON decoding starts,
// so the memory bound holds even against bodies that would decode into far
// more than MaxBatchItems rows. 64 MiB comfortably fits MaxBatchItems
// 16-feature rows in JSON.
const maxBatchBodyBytes = 64 << 20

// decodeBatch decodes a size-limited batch request body into v, writing the
// appropriate error response (413 for an oversized body, 400 otherwise) and
// reporting false on failure.
func decodeBatch(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return false
	}
	return true
}

// Server routes prediction requests to a trained model and manages dynamic
// sessions. Create with New; it is safe for concurrent use. Call Close when
// done to release the worker pool.
type Server struct {
	model *core.StablePredictor
	// eng is the unified session engine: the same lifecycle implementation
	// the fleet control plane drives, here keyed by service-issued ids.
	eng  *engine.Engine
	pool *workerPool
	// fleet, when attached via WithFleet, serves the /v1/fleet endpoints:
	// the Δ_gap-ahead hotspot map, thermal-aware placement, and telemetry
	// ingest.
	fleet *fleet.Controller
	// scenario, when attached via WithScenario, feeds GET
	// /v1/fleet/scenario and the vmtherm_scenario_* gauges.
	scenario func() scenario.Status
	// ready, when attached via WithReadiness, gates GET /readyz (nil: always
	// ready); ckptStatus, when attached via WithCheckpoint, feeds GET
	// /v1/fleet/checkpoint and the vmtherm_checkpoint_* counters.
	ready      func() bool
	ckptStatus func() checkpoint.Status
	// metrics are the /metrics exposition counters.
	metrics serverMetrics
	// scratch pools PredictScratch instances across batch requests so the
	// stable-batch hot path reuses scaled-feature and kernel buffers instead
	// of allocating them per chunk.
	scratch sync.Pool
}

// serverMetrics counts served work for the /metrics exposition.
type serverMetrics struct {
	stableItems  atomic.Int64 // ψ_stable predictions served (single + batch)
	observeItems atomic.Int64 // session observations served (single + batch)
	predictItems atomic.Int64 // session predictions served (single + batch)
	ingestItems  atomic.Int64 // readings accepted via POST /v1/fleet/ingest
	// Placement decisions served (single + batch endpoints), by status, and
	// the size of the last batch served (gauge).
	placePlaced    atomic.Int64
	placeQueued    atomic.Int64
	placeRejected  atomic.Int64
	placeBatchSize atomic.Int64
}

// Option customizes a Server.
type Option func(*Server)

// WithWorkers sets the worker-pool size for batch evaluation (default:
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.pool = newWorkerPool(n)
		}
	}
}

// New creates a server around a trained stable model.
func New(model *core.StablePredictor, opts ...Option) (*Server, error) {
	if model == nil {
		return nil, errors.New("predictserver: nil model")
	}
	eng, err := engine.New(engine.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s := &Server{
		model: model,
		eng:   eng,
	}
	for _, o := range opts {
		o(s)
	}
	if s.pool == nil {
		s.pool = newWorkerPool(0)
	}
	return s, nil
}

// Close stops the worker pool. The server must not serve requests after
// Close.
func (s *Server) Close() {
	s.pool.close()
}

// route is one registered endpoint: the exact mux pattern plus its handler.
type route struct {
	pattern string
	handler http.HandlerFunc
}

// routes is the single authoritative endpoint table: Handler registers
// from it and RoutePatterns exposes it, so the served surface and the
// documented one (docs/API.md, checked by test) cannot drift apart.
func (s *Server) routes() []route {
	return []route{
		{"GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}},
		{"GET /readyz", s.handleReadyz},
		{"POST /v1/predict/stable", s.handleStable},
		{"POST /v1/stable/batch", s.handleStableBatch},
		{"POST /v1/session", s.handleCreateSession},
		{"POST /v1/session/{id}/observe", s.handleObserve},
		{"GET /v1/session/{id}/predict", s.handlePredict},
		{"POST /v1/session/batch/observe", s.handleObserveBatch},
		{"POST /v1/session/batch/predict", s.handlePredictBatch},
		{"DELETE /v1/session/{id}", s.handleDeleteSession},
		{"GET /v1/fleet/hotspots", s.handleFleetHotspots},
		{"GET /v1/fleet/scenario", s.handleFleetScenario},
		{"GET /v1/fleet/checkpoint", s.handleFleetCheckpoint},
		{"POST /v1/fleet/place", s.handleFleetPlace},
		{"POST /v1/fleet/place/batch", s.handleFleetPlaceBatch},
		{"POST /v1/fleet/ingest", s.handleFleetIngest},
		{"GET /metrics", s.handleMetrics},
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.routes() {
		mux.HandleFunc(r.pattern, r.handler)
	}
	return mux
}

// RoutePatterns lists every registered "METHOD /path" pattern in
// registration order — the contract docs/API.md is tested against and the
// docs-check CI step greps.
func (s *Server) RoutePatterns() []string {
	rs := s.routes()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.pattern
	}
	return out
}

// StableRequest asks for a ψ_stable prediction.
type StableRequest struct {
	Features []float64 `json:"features"`
}

// StableResponse carries the prediction.
type StableResponse struct {
	StableTempC float64 `json:"stable_temp_c"`
}

func (s *Server) handleStable(w http.ResponseWriter, r *http.Request) {
	var req StableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.model.PredictFeatures(req.Features)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.metrics.stableItems.Add(1)
	writeJSON(w, http.StatusOK, StableResponse{StableTempC: v})
}

// StableBatchRequest asks for ψ_stable predictions for many feature rows at
// once — one scheduling round's worth of candidate placements.
type StableBatchRequest struct {
	Rows [][]float64 `json:"rows"`
}

// StableBatchResponse carries one prediction per request row, in order.
type StableBatchResponse struct {
	StableTempsC []float64 `json:"stable_temps_c"`
}

func (s *Server) handleStableBatch(w http.ResponseWriter, r *http.Request) {
	var req StableBatchRequest
	if !decodeBatch(w, r, &req) {
		return
	}
	if len(req.Rows) > MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d rows exceeds limit %d", len(req.Rows), MaxBatchItems))
		return
	}
	out := make([]float64, len(req.Rows))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	s.pool.dispatch(len(req.Rows), func(lo, hi int) {
		scratch, _ := s.scratch.Get().(*core.PredictScratch)
		if scratch == nil {
			scratch = new(core.PredictScratch)
		}
		err := s.model.PredictBatchInto(req.Rows[lo:hi], out[lo:hi], scratch)
		s.scratch.Put(scratch)
		if err != nil {
			// A row error rejects the whole batch: rows are validated
			// before evaluation, so any error means malformed input,
			// not a partial result.
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
	})
	if firstErr != nil {
		writeError(w, http.StatusUnprocessableEntity, firstErr)
		return
	}
	s.metrics.stableItems.Add(int64(len(req.Rows)))
	writeJSON(w, http.StatusOK, StableBatchResponse{StableTempsC: out})
}

// SessionRequest opens a dynamic prediction session. ψ_stable comes either
// directly (StableTempC) or from the model (Features). Zero-valued knobs
// take the paper's defaults.
type SessionRequest struct {
	Phi0         float64   `json:"phi0"`
	StableTempC  *float64  `json:"stable_temp_c,omitempty"`
	Features     []float64 `json:"features,omitempty"`
	Lambda       float64   `json:"lambda,omitempty"`
	UpdateEveryS float64   `json:"update_every_s,omitempty"`
	GapS         float64   `json:"gap_s,omitempty"`
	TBreakS      float64   `json:"t_break_s,omitempty"`
	CurveDeltaS  float64   `json:"curve_delta_s,omitempty"`
}

// SessionResponse identifies the created session.
type SessionResponse struct {
	ID          string  `json:"id"`
	StableTempC float64 `json:"stable_temp_c"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var stable float64
	switch {
	case req.StableTempC != nil:
		stable = *req.StableTempC
	case len(req.Features) > 0:
		v, err := s.model.PredictFeatures(req.Features)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		stable = v
	default:
		writeError(w, http.StatusBadRequest, errors.New("need stable_temp_c or features"))
		return
	}

	id := s.eng.NewID()
	err := s.eng.Create(id, engine.SessionParams{
		Phi0:         req.Phi0,
		StableC:      stable,
		Lambda:       req.Lambda,
		UpdateEveryS: req.UpdateEveryS,
		GapS:         req.GapS,
		TBreakS:      req.TBreakS,
		CurveDeltaS:  req.CurveDeltaS,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, SessionResponse{ID: id, StableTempC: stable})
}

// ObserveRequest feeds one measurement φ(t) into a session.
type ObserveRequest struct {
	T     float64 `json:"t"`
	TempC float64 `json:"temp_c"`
}

// ObserveResponse reports the calibration after the observation.
type ObserveResponse struct {
	Gamma float64 `json:"gamma"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	gamma, err := s.eng.Observe(r.PathValue("id"), req.T, req.TempC)
	if err != nil {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	s.metrics.observeItems.Add(1)
	writeJSON(w, http.StatusOK, ObserveResponse{Gamma: gamma})
}

// PredictResponse answers a dynamic prediction query.
type PredictResponse struct {
	TempC float64 `json:"temp_c"`
	Gamma float64 `json:"gamma"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	t, err := strconv.ParseFloat(r.URL.Query().Get("t"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad t: %w", err))
		return
	}
	tempC, gamma, err := s.eng.Predict(r.PathValue("id"), t)
	if err != nil {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	s.metrics.predictItems.Add(1)
	writeJSON(w, http.StatusOK, PredictResponse{TempC: tempC, Gamma: gamma})
}

// ObserveBatchItem feeds one measurement into one session.
type ObserveBatchItem struct {
	ID    string  `json:"id"`
	T     float64 `json:"t"`
	TempC float64 `json:"temp_c"`
}

// ObserveBatchRequest carries one fleet round of measurements.
type ObserveBatchRequest struct {
	Items []ObserveBatchItem `json:"items"`
}

// ObserveBatchResult is the per-item outcome; Error is set (and Gamma
// meaningless) when the item's session does not exist.
type ObserveBatchResult struct {
	Gamma float64 `json:"gamma"`
	Error string  `json:"error,omitempty"`
}

// ObserveBatchResponse answers item-for-item, in request order.
type ObserveBatchResponse struct {
	Results []ObserveBatchResult `json:"results"`
}

func (s *Server) handleObserveBatch(w http.ResponseWriter, r *http.Request) {
	var req ObserveBatchRequest
	if !decodeBatch(w, r, &req) {
		return
	}
	if len(req.Items) > MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d items exceeds limit %d", len(req.Items), MaxBatchItems))
		return
	}
	results := make([]ObserveBatchResult, len(req.Items))
	s.pool.dispatch(len(req.Items), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			item := req.Items[i]
			gamma, err := s.eng.Observe(item.ID, item.T, item.TempC)
			if err != nil {
				results[i].Error = "unknown session"
				continue
			}
			results[i].Gamma = gamma
		}
	})
	s.metrics.observeItems.Add(int64(len(req.Items)))
	writeJSON(w, http.StatusOK, ObserveBatchResponse{Results: results})
}

// PredictBatchItem queries one session at one time.
type PredictBatchItem struct {
	ID string  `json:"id"`
	T  float64 `json:"t"`
}

// PredictBatchRequest carries one fleet round of prediction queries.
type PredictBatchRequest struct {
	Items []PredictBatchItem `json:"items"`
}

// PredictBatchResult is the per-item outcome; Error is set (and the values
// meaningless) when the item's session does not exist.
type PredictBatchResult struct {
	TempC float64 `json:"temp_c"`
	Gamma float64 `json:"gamma"`
	Error string  `json:"error,omitempty"`
}

// PredictBatchResponse answers item-for-item, in request order.
type PredictBatchResponse struct {
	Results []PredictBatchResult `json:"results"`
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req PredictBatchRequest
	if !decodeBatch(w, r, &req) {
		return
	}
	if len(req.Items) > MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d items exceeds limit %d", len(req.Items), MaxBatchItems))
		return
	}
	results := make([]PredictBatchResult, len(req.Items))
	s.pool.dispatch(len(req.Items), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			item := req.Items[i]
			tempC, gamma, err := s.eng.Predict(item.ID, item.T)
			if err != nil {
				results[i].Error = "unknown session"
				continue
			}
			results[i].TempC, results[i].Gamma = tempC, gamma
		}
	})
	s.metrics.predictItems.Add(int64(len(req.Items)))
	writeJSON(w, http.StatusOK, PredictBatchResponse{Results: results})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.eng.Delete(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// SessionCount reports active dynamic sessions (for observability).
func (s *Server) SessionCount() int {
	return s.eng.Len()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("predictserver: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
