// Package predictserver implements the HTTP prediction service behind
// cmd/vmtherm-predictd: stable-temperature prediction from Eq. (2) feature
// vectors, and per-server dynamic prediction sessions that receive online
// measurements and answer Δ_gap-ahead queries — the deployment loop the
// paper describes ("the model received data collected online and output
// prediction values").
package predictserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"

	"vmtherm/internal/core"
)

// Server routes prediction requests to a trained model and manages dynamic
// sessions. Create with New; it is safe for concurrent use.
type Server struct {
	model *core.StablePredictor

	mu       sync.Mutex
	sessions map[string]*core.DynamicPredictor
	nextID   int
}

// New creates a server around a trained stable model.
func New(model *core.StablePredictor) (*Server, error) {
	if model == nil {
		return nil, errors.New("predictserver: nil model")
	}
	return &Server{
		model:    model,
		sessions: make(map[string]*core.DynamicPredictor),
	}, nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/predict/stable", s.handleStable)
	mux.HandleFunc("POST /v1/session", s.handleCreateSession)
	mux.HandleFunc("POST /v1/session/{id}/observe", s.handleObserve)
	mux.HandleFunc("GET /v1/session/{id}/predict", s.handlePredict)
	mux.HandleFunc("DELETE /v1/session/{id}", s.handleDeleteSession)
	return mux
}

// StableRequest asks for a ψ_stable prediction.
type StableRequest struct {
	Features []float64 `json:"features"`
}

// StableResponse carries the prediction.
type StableResponse struct {
	StableTempC float64 `json:"stable_temp_c"`
}

func (s *Server) handleStable(w http.ResponseWriter, r *http.Request) {
	var req StableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.model.PredictFeatures(req.Features)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, StableResponse{StableTempC: v})
}

// SessionRequest opens a dynamic prediction session. ψ_stable comes either
// directly (StableTempC) or from the model (Features). Zero-valued knobs
// take the paper's defaults.
type SessionRequest struct {
	Phi0         float64   `json:"phi0"`
	StableTempC  *float64  `json:"stable_temp_c,omitempty"`
	Features     []float64 `json:"features,omitempty"`
	Lambda       float64   `json:"lambda,omitempty"`
	UpdateEveryS float64   `json:"update_every_s,omitempty"`
	GapS         float64   `json:"gap_s,omitempty"`
	TBreakS      float64   `json:"t_break_s,omitempty"`
	CurveDeltaS  float64   `json:"curve_delta_s,omitempty"`
}

// SessionResponse identifies the created session.
type SessionResponse struct {
	ID          string  `json:"id"`
	StableTempC float64 `json:"stable_temp_c"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var stable float64
	switch {
	case req.StableTempC != nil:
		stable = *req.StableTempC
	case len(req.Features) > 0:
		v, err := s.model.PredictFeatures(req.Features)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		stable = v
	default:
		writeError(w, http.StatusBadRequest, errors.New("need stable_temp_c or features"))
		return
	}

	cfg := core.DefaultDynamicConfig()
	if req.Lambda != 0 {
		cfg.Lambda = req.Lambda
	}
	if req.UpdateEveryS != 0 {
		cfg.UpdateEveryS = req.UpdateEveryS
	}
	if req.GapS != 0 {
		cfg.GapS = req.GapS
	}
	tBreak := req.TBreakS
	if tBreak == 0 {
		tBreak = 600
	}
	delta := req.CurveDeltaS
	if delta == 0 {
		delta = core.DefaultCurveDelta
	}
	curve, err := core.NewCurve(req.Phi0, stable, tBreak, delta)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	pred, err := core.NewDynamicPredictor(curve, cfg)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.sessions[id] = pred
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, SessionResponse{ID: id, StableTempC: stable})
}

func (s *Server) session(id string) (*core.DynamicPredictor, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.sessions[id]
	return p, ok
}

// ObserveRequest feeds one measurement φ(t) into a session.
type ObserveRequest struct {
	T     float64 `json:"t"`
	TempC float64 `json:"temp_c"`
}

// ObserveResponse reports the calibration after the observation.
type ObserveResponse struct {
	Gamma float64 `json:"gamma"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	pred, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	var req ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	pred.Observe(req.T, req.TempC)
	gamma := pred.Gamma()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ObserveResponse{Gamma: gamma})
}

// PredictResponse answers a dynamic prediction query.
type PredictResponse struct {
	TempC float64 `json:"temp_c"`
	Gamma float64 `json:"gamma"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	pred, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	t, err := strconv.ParseFloat(r.URL.Query().Get("t"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad t: %w", err))
		return
	}
	s.mu.Lock()
	v := pred.Predict(t)
	gamma := pred.Gamma()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, PredictResponse{TempC: v, Gamma: gamma})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// SessionCount reports active dynamic sessions (for observability).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("predictserver: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
