package predictserver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"vmtherm/internal/fleet"
)

// hotFleet builds a 1-rack/4-host controller with one overloaded machine
// and runs it until the hotspot map is non-empty.
func hotFleet(t *testing.T) *fleet.Controller {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Racks = 1
	cfg.HostsPerRack = 4
	cfg.ThresholdC = 70
	cfg.MaxMigrationsPerRound = 0
	cfg.Seed = 23
	ctl, err := fleet.New(cfg, fleet.SyntheticStablePredictor(75))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if err := ctl.PlaceAt("r0-h0", fleet.HeavyVMSpec(fmt.Sprintf("hot-%02d", v), 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 40; round++ {
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
		if len(ctl.Hotspots().Hotspots) > 0 {
			return ctl
		}
	}
	t.Fatal("fleet never produced a hotspot")
	return nil
}

func TestFleetEndpointsUnavailableWithoutController(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/fleet/hotspots")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hotspots without fleet: got %d, want 503", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{ID: "x", VCPUs: 1, MemoryGB: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("place without fleet: got %d, want 503", resp.StatusCode)
	}
}

func TestFleetHotspotsEndpoint(t *testing.T) {
	m, _ := testModel(t)
	ctl := hotFleet(t)
	srv, err := New(m, WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/fleet/hotspots")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[FleetHotspotsResponse](t, resp)
	if out.Round == 0 {
		t.Fatal("snapshot round not populated")
	}
	if len(out.Hotspots) == 0 {
		t.Fatal("hotspot map empty despite overloaded host")
	}
	if out.Hotspots[0].HostID != "r0-h0" {
		t.Fatalf("hottest host %q, want r0-h0", out.Hotspots[0].HostID)
	}
	if out.Hotspots[0].MarginC <= 0 || out.Hotspots[0].PredictedTempC <= out.ThresholdC {
		t.Fatalf("implausible hotspot %+v under threshold %v", out.Hotspots[0], out.ThresholdC)
	}
	// Margins must come back sorted descending (API determinism contract).
	for i := 1; i < len(out.Hotspots); i++ {
		if out.Hotspots[i].MarginC > out.Hotspots[i-1].MarginC {
			t.Fatalf("hotspots not sorted by descending margin: %+v", out.Hotspots)
		}
	}
}

func TestFleetPlaceEndpoint(t *testing.T) {
	m, _ := testModel(t)
	ctl := hotFleet(t)
	srv, err := New(m, WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{
		ID: "tenant-1", VCPUs: 2, MemoryGB: 4,
		Tasks: []FleetTaskSpec{{CPUFraction: 0.8, MemGB: 1}},
	})
	out := decode[FleetPlaceResponse](t, resp)
	if out.HostID == "" || out.HostID == "r0-h0" {
		t.Fatalf("placement landed on %q (hotspot or empty)", out.HostID)
	}
	if out.VMID != "tenant-1" {
		t.Fatalf("vm id %q, want tenant-1", out.VMID)
	}

	// Missing id → 422.
	resp = postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{VCPUs: 1, MemoryGB: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("missing id: got %d, want 422", resp.StatusCode)
	}
	// Impossible shape → 409 no capacity.
	resp = postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{ID: "huge", VCPUs: 4096, MemoryGB: 4096})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("impossible placement: got %d, want 409", resp.StatusCode)
	}
}
