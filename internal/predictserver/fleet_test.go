package predictserver

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vmtherm/internal/fleet"
)

// hotFleet builds a 1-rack/4-host controller with one overloaded machine
// and runs it until the hotspot map is non-empty.
func hotFleet(t *testing.T) *fleet.Controller {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Racks = 1
	cfg.HostsPerRack = 4
	cfg.ThresholdC = 70
	cfg.MaxMigrationsPerRound = 0
	cfg.Seed = 23
	ctl, err := fleet.New(cfg, fleet.SyntheticStablePredictor(75))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if err := ctl.PlaceAt("r0-h0", fleet.HeavyVMSpec(fmt.Sprintf("hot-%02d", v), 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 40; round++ {
		if _, err := ctl.RunRound(); err != nil {
			t.Fatal(err)
		}
		if len(ctl.Hotspots().Hotspots) > 0 {
			return ctl
		}
	}
	t.Fatal("fleet never produced a hotspot")
	return nil
}

func TestFleetEndpointsUnavailableWithoutController(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/fleet/hotspots")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hotspots without fleet: got %d, want 503", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{ID: "x", VCPUs: 1, MemoryGB: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("place without fleet: got %d, want 503", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/fleet/place/batch", FleetPlaceBatchRequest{
		VMs: []FleetPlaceRequest{{ID: "x", VCPUs: 1, MemoryGB: 1}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch place without fleet: got %d, want 503", resp.StatusCode)
	}
}

func TestFleetHotspotsEndpoint(t *testing.T) {
	m, _ := testModel(t)
	ctl := hotFleet(t)
	srv, err := New(m, WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/fleet/hotspots")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[FleetHotspotsResponse](t, resp)
	if out.Round == 0 {
		t.Fatal("snapshot round not populated")
	}
	if len(out.Hotspots) == 0 {
		t.Fatal("hotspot map empty despite overloaded host")
	}
	if out.Hotspots[0].HostID != "r0-h0" {
		t.Fatalf("hottest host %q, want r0-h0", out.Hotspots[0].HostID)
	}
	if out.Hotspots[0].MarginC <= 0 || out.Hotspots[0].PredictedTempC <= out.ThresholdC {
		t.Fatalf("implausible hotspot %+v under threshold %v", out.Hotspots[0], out.ThresholdC)
	}
	// Margins must come back sorted descending (API determinism contract).
	for i := 1; i < len(out.Hotspots); i++ {
		if out.Hotspots[i].MarginC > out.Hotspots[i-1].MarginC {
			t.Fatalf("hotspots not sorted by descending margin: %+v", out.Hotspots)
		}
	}
}

func TestFleetPlaceEndpoint(t *testing.T) {
	m, _ := testModel(t)
	ctl := hotFleet(t)
	srv, err := New(m, WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{
		ID: "tenant-1", VCPUs: 2, MemoryGB: 4,
		Tasks: []FleetTaskSpec{{CPUFraction: 0.8, MemGB: 1}},
	})
	out := decode[FleetPlaceResponse](t, resp)
	if out.Status != "placed" || out.HostID == "" || out.HostID == "r0-h0" {
		t.Fatalf("placement landed on %q (status %q)", out.HostID, out.Status)
	}
	if out.VMID != "tenant-1" {
		t.Fatalf("vm id %q, want tenant-1", out.VMID)
	}

	// Missing id → 422.
	resp = postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{VCPUs: 1, MemoryGB: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("missing id: got %d, want 422", resp.StatusCode)
	}
	// Count > 1 belongs on the batch endpoint → 422.
	resp = postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{ID: "multi", VCPUs: 1, MemoryGB: 1, Count: 2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("count>1 on single endpoint: got %d, want 422", resp.StatusCode)
	}
	// A shape that can never fit → 422 with a typed reject code.
	resp = postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{ID: "huge", VCPUs: 4096, MemoryGB: 4096})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		resp.Body.Close()
		t.Fatalf("impossible placement: got %d, want 422", resp.StatusCode)
	}
	body := decode[map[string]string](t, resp)
	if body["reject_code"] != "infeasible" || body["error"] == "" {
		t.Fatalf("rejection body = %v, want reject_code=infeasible", body)
	}
	// Duplicate id → 409 duplicate-id.
	resp = postJSON(t, ts.URL+"/v1/fleet/place", FleetPlaceRequest{
		ID: "tenant-1", VCPUs: 2, MemoryGB: 4,
		Tasks: []FleetTaskSpec{{CPUFraction: 0.8, MemGB: 1}},
	})
	if resp.StatusCode != http.StatusConflict {
		resp.Body.Close()
		t.Fatalf("duplicate placement: got %d, want 409", resp.StatusCode)
	}
	body = decode[map[string]string](t, resp)
	if body["reject_code"] != "duplicate-id" {
		t.Fatalf("rejection body = %v, want reject_code=duplicate-id", body)
	}
}

// TestFleetPlaceBatchEndpoint drives the batch path: per-item typed
// decisions in request order (Count expansion included), 200 regardless of
// rejections, and the place counters surfacing in /metrics.
func TestFleetPlaceBatchEndpoint(t *testing.T) {
	m, _ := testModel(t)
	ctl := hotFleet(t)
	srv, err := New(m, WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/fleet/place/batch", FleetPlaceBatchRequest{
		VMs: []FleetPlaceRequest{
			{ID: "storm", VCPUs: 1, MemoryGB: 2, Count: 2,
				Tasks: []FleetTaskSpec{{CPUFraction: 0.3, MemGB: 0.5}}},
			{ID: "giant", VCPUs: 4096, MemoryGB: 4096},
		},
	})
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("batch place: got %d, want 200", resp.StatusCode)
	}
	out := decode[FleetPlaceBatchResponse](t, resp)
	wantIDs := []string{"storm-000", "storm-001", "giant"}
	if len(out.Results) != len(wantIDs) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(wantIDs))
	}
	for i, r := range out.Results {
		if r.VMID != wantIDs[i] {
			t.Fatalf("result %d vm_id %q, want %q", i, r.VMID, wantIDs[i])
		}
		if r.Status == "rejected" && r.RejectCode == "" {
			t.Fatalf("stringly-typed rejection: %+v", r)
		}
	}
	if out.Placed != 2 || out.Rejected != 1 || out.Queued != 0 {
		t.Fatalf("totals = %d/%d/%d, want 2/0/1", out.Placed, out.Queued, out.Rejected)
	}
	if out.Results[2].RejectCode != "infeasible" {
		t.Fatalf("giant decision = %+v", out.Results[2])
	}

	// A malformed item fails the whole batch up front.
	resp = postJSON(t, ts.URL+"/v1/fleet/place/batch", FleetPlaceBatchRequest{
		VMs: []FleetPlaceRequest{{VCPUs: 1, MemoryGB: 1, Count: 2}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("missing-id batch: got %d, want 422", resp.StatusCode)
	}

	// The decisions must surface in the exposition counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(raw)
	for _, want := range []string{
		"vmtherm_place_placed_total 2",
		"vmtherm_place_rejected_total 1",
		"vmtherm_place_batch_size 3",
	} {
		if !strings.Contains(exposition, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
