package predictserver

import (
	"strconv"
	"sync"
	"sync/atomic"

	"vmtherm/internal/core"
)

// The session store is sharded so that a fleet of monitoring agents
// observing hundreds of servers concurrently does not serialize on one
// mutex. Locking is striped at two levels: a per-shard RWMutex guards the
// id→session map, and each session carries its own mutex guarding the
// DynamicPredictor (which is not safe for concurrent use). Different
// sessions therefore observe and predict fully in parallel; only
// same-session traffic serializes.

// storeShards is the stripe count. Power of two so the hash reduces with a
// mask; 32 stripes keeps contention negligible for hundreds of concurrent
// agents at a few bytes of overhead each.
const storeShards = 32

// session pairs a dynamic predictor with the mutex that serializes access
// to it.
type session struct {
	mu   sync.Mutex
	pred *core.DynamicPredictor
}

// observe feeds one measurement and returns the resulting γ.
func (s *session) observe(t, tempC float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pred.Observe(t, tempC)
	return s.pred.Gamma()
}

// predict answers ψ(t + Δ_gap) and the γ it used.
func (s *session) predict(t float64) (tempC, gamma float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pred.Predict(t), s.pred.Gamma()
}

type storeShard struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

// sessionStore is a sharded, striped-lock map of live dynamic sessions.
type sessionStore struct {
	shards [storeShards]storeShard
	nextID atomic.Uint64
	count  atomic.Int64
}

func newSessionStore() *sessionStore {
	st := &sessionStore{}
	for i := range st.shards {
		st.shards[i].sessions = make(map[string]*session)
	}
	return st
}

// shardFor hashes a session id onto its stripe (FNV-1a).
func (st *sessionStore) shardFor(id string) *storeShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &st.shards[h&(storeShards-1)]
}

// put registers a predictor under a fresh id and returns the id.
func (st *sessionStore) put(pred *core.DynamicPredictor) string {
	id := "s" + strconv.FormatUint(st.nextID.Add(1), 10)
	sh := st.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = &session{pred: pred}
	sh.mu.Unlock()
	st.count.Add(1)
	return id
}

// get looks a session up by id.
func (st *sessionStore) get(id string) (*session, bool) {
	sh := st.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

// delete removes a session, reporting whether it existed.
func (st *sessionStore) delete(id string) bool {
	sh := st.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if ok {
		st.count.Add(-1)
	}
	return ok
}

// len reports the number of live sessions.
func (st *sessionStore) len() int {
	return int(st.count.Load())
}
