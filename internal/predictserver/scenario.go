package predictserver

import (
	"errors"
	"net/http"

	"vmtherm/internal/scenario"
)

// WithScenario attaches a thermal-emergency scenario status feed (normally
// scenario.Runner.Status of the run fleetd is driving), enabling live
// GET /v1/fleet/scenario responses and the vmtherm_scenario_* gauges.
func WithScenario(status func() scenario.Status) Option {
	return func(s *Server) { s.scenario = status }
}

// handleFleetScenario serves the live scenario status: which emergency is
// scripted, how far along it is, how many faults are currently injected,
// and whether the emergency is contained. Servers with no scenario bound
// answer 503 — the same contract as the fleet endpoints without a fleet.
func (s *Server) handleFleetScenario(w http.ResponseWriter, _ *http.Request) {
	if s.scenario == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no scenario engine attached"))
		return
	}
	writeJSON(w, http.StatusOK, s.scenario())
}
