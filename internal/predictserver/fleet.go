package predictserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"vmtherm/internal/fleet"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// FleetHotspot is one entry of the served hotspot map.
type FleetHotspot struct {
	HostID         string  `json:"host_id"`
	PredictedTempC float64 `json:"predicted_temp_c"`
	MarginC        float64 `json:"margin_c"`
	UncertaintyC   float64 `json:"uncertainty_c"`
}

// FleetHotspotsResponse is the control plane's published snapshot: the
// Δ_gap-ahead hotspot map a thermal-aware scheduler polls each round.
type FleetHotspotsResponse struct {
	Round      int            `json:"round"`
	SimTimeS   float64        `json:"sim_time_s"`
	GapS       float64        `json:"gap_s"`
	ThresholdC float64        `json:"threshold_c"`
	Hotspots   []FleetHotspot `json:"hotspots"`
	StaleHosts []string       `json:"stale_hosts,omitempty"`
}

// FleetTaskSpec is one task of a placement request.
type FleetTaskSpec struct {
	CPUFraction float64 `json:"cpu_fraction"`
	MemGB       float64 `json:"mem_gb"`
}

// FleetPlaceRequest asks the control plane to place one VM thermally.
type FleetPlaceRequest struct {
	ID       string          `json:"id"`
	VCPUs    int             `json:"vcpus"`
	MemoryGB float64         `json:"memory_gb"`
	Tasks    []FleetTaskSpec `json:"tasks"`
}

// FleetPlaceResponse reports where the VM landed.
type FleetPlaceResponse struct {
	VMID             string  `json:"vm_id"`
	HostID           string  `json:"host_id"`
	PredictedStableC float64 `json:"predicted_stable_c"`
}

// FleetReading is one telemetry reading pushed by an external monitoring
// agent.
type FleetReading struct {
	HostID  string  `json:"host_id"`
	AtS     float64 `json:"at_s"`
	TempC   float64 `json:"temp_c"`
	Util    float64 `json:"util,omitempty"`
	MemFrac float64 `json:"mem_frac,omitempty"`
}

// FleetIngestRequest carries one batch of readings into the fleet pipeline.
type FleetIngestRequest struct {
	Readings []FleetReading `json:"readings"`
}

// FleetIngestResponse reports per-batch ingest accounting: Dropped counts
// readings refused at the full bounded buffer (back-pressure the agent
// should see, not a silent loss).
type FleetIngestResponse struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
}

// WithFleet attaches a fleet control plane, enabling the /v1/fleet
// endpoints.
func WithFleet(f *fleet.Controller) Option {
	return func(s *Server) { s.fleet = f }
}

func (s *Server) handleFleetHotspots(w http.ResponseWriter, _ *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no fleet control plane attached"))
		return
	}
	// Scoped zero-copy borrow: the snapshot (and its slices) is read-only
	// and only valid inside the view, so everything serialized is copied
	// into the response before the borrow ends.
	var resp FleetHotspotsResponse
	s.fleet.ViewSnapshot(func(snap *fleet.Snapshot) {
		resp = FleetHotspotsResponse{
			Round:      snap.Round,
			SimTimeS:   snap.SimTimeS,
			GapS:       snap.GapS,
			ThresholdC: snap.ThresholdC,
			StaleHosts: append([]string(nil), snap.StaleHosts...),
			Hotspots:   make([]FleetHotspot, len(snap.Hotspots)),
		}
		for i, h := range snap.Hotspots {
			resp.Hotspots[i] = FleetHotspot{
				HostID:         h.HostID,
				PredictedTempC: h.PredictedTempC,
				MarginC:        h.MarginC,
				UncertaintyC:   h.UncertaintyC,
			}
		}
	})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleetPlace(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no fleet control plane attached"))
		return
	}
	var req FleetPlaceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	dec, err := s.fleet.PlaceNow(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if dec.Rejected != "" {
		writeError(w, http.StatusConflict, errors.New(dec.Rejected))
		return
	}
	writeJSON(w, http.StatusOK, FleetPlaceResponse{
		VMID:             dec.VMID,
		HostID:           dec.HostID,
		PredictedStableC: dec.PredictedStableC,
	})
}

// handleFleetIngest is the push path for real monitoring agents: readings
// enter the same bounded pipeline the simulator and scrape sources feed,
// and the next control round consumes them.
func (s *Server) handleFleetIngest(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no fleet control plane attached"))
		return
	}
	var req FleetIngestRequest
	if !decodeBatch(w, r, &req) {
		return
	}
	if len(req.Readings) > MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d readings exceeds limit %d", len(req.Readings), MaxBatchItems))
		return
	}
	// Validate the whole batch before ingesting anything: a mid-batch
	// rejection after partial ingest would make the agent retry readings
	// the loop already consumed.
	for _, rd := range req.Readings {
		if rd.HostID == "" {
			writeError(w, http.StatusUnprocessableEntity, errors.New("reading missing host_id"))
			return
		}
	}
	var resp FleetIngestResponse
	for _, rd := range req.Readings {
		if s.fleet.Ingest(fleet.Reading{
			HostID:  rd.HostID,
			AtS:     rd.AtS,
			TempC:   rd.TempC,
			Util:    rd.Util,
			MemFrac: rd.MemFrac,
		}) {
			resp.Accepted++
		} else {
			resp.Dropped++
		}
	}
	s.metrics.ingestItems.Add(int64(resp.Accepted))
	writeJSON(w, http.StatusOK, resp)
}

// toSpec converts the wire request to a workload spec. A request with no
// tasks gets one full-vCPU CPU-bound task per vCPU (a conservatively hot
// assumption for an unknown tenant).
func (r FleetPlaceRequest) toSpec() (workload.VMSpec, error) {
	if r.ID == "" {
		return workload.VMSpec{}, errors.New("placement request missing id")
	}
	cfg := vmm.VMConfig{VCPUs: r.VCPUs, MemoryGB: r.MemoryGB}
	if err := cfg.Validate(); err != nil {
		return workload.VMSpec{}, err
	}
	spec := workload.VMSpec{ID: r.ID, Config: cfg}
	tasks := r.Tasks
	if len(tasks) == 0 {
		for i := 0; i < r.VCPUs; i++ {
			tasks = append(tasks, FleetTaskSpec{CPUFraction: 1, MemGB: r.MemoryGB / float64(r.VCPUs) / 2})
		}
	}
	for i, ts := range tasks {
		frac := ts.CPUFraction
		if frac < 0 || frac > 1 {
			return workload.VMSpec{}, errors.New("task cpu_fraction outside [0,1]")
		}
		spec.Tasks = append(spec.Tasks, workload.TaskSpec{
			Task: vmm.Task{
				ID:          spec.ID + "-t" + strconv.Itoa(i),
				Class:       vmm.CPUBound,
				CPUFraction: frac,
				MemGB:       ts.MemGB,
			},
			Profile: workload.Constant{Level: frac},
		})
	}
	return spec, nil
}
