package predictserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"vmtherm/internal/fleet"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// FleetHotspot is one entry of the served hotspot map.
type FleetHotspot struct {
	HostID         string  `json:"host_id"`
	PredictedTempC float64 `json:"predicted_temp_c"`
	MarginC        float64 `json:"margin_c"`
	UncertaintyC   float64 `json:"uncertainty_c"`
}

// FleetHotspotsResponse is the control plane's published snapshot: the
// Δ_gap-ahead hotspot map a thermal-aware scheduler polls each round.
type FleetHotspotsResponse struct {
	Round      int     `json:"round"`
	SimTimeS   float64 `json:"sim_time_s"`
	GapS       float64 `json:"gap_s"`
	ThresholdC float64 `json:"threshold_c"`
	// Streaming marks the hotspot list as the live incremental index
	// (updated per pushed reading) rather than the last round's recompute.
	Streaming  bool           `json:"streaming,omitempty"`
	Hotspots   []FleetHotspot `json:"hotspots"`
	StaleHosts []string       `json:"stale_hosts,omitempty"`
}

// FleetTaskSpec is one task of a placement request.
type FleetTaskSpec struct {
	CPUFraction float64 `json:"cpu_fraction"`
	MemGB       float64 `json:"mem_gb"`
}

// FleetPlaceRequest asks the control plane to place a VM thermally. The
// same shape serves both endpoints: the batch endpoint additionally honours
// Count — one request expands into Count identical replicas with id
// suffixes — while the single-VM endpoint refuses Count > 1.
type FleetPlaceRequest struct {
	ID       string          `json:"id"`
	VCPUs    int             `json:"vcpus"`
	MemoryGB float64         `json:"memory_gb"`
	Tasks    []FleetTaskSpec `json:"tasks,omitempty"`
	// Count replicates the request (batch endpoint only); 0 means 1.
	Count int `json:"count,omitempty"`
}

// FleetPlaceResponse is one typed placement decision: status "placed"
// (host_id + predicted_stable_c set), "queued" (parked for the next round),
// or "rejected" (reject_code + reason set). Both endpoints serve it; the
// single-VM endpoint additionally maps rejections onto HTTP statuses.
type FleetPlaceResponse struct {
	VMID             string  `json:"vm_id"`
	Status           string  `json:"status"`
	HostID           string  `json:"host_id,omitempty"`
	PredictedStableC float64 `json:"predicted_stable_c,omitempty"`
	RejectCode       string  `json:"reject_code,omitempty"`
	Reason           string  `json:"reason,omitempty"`
}

// FleetPlaceBatchRequest carries one placement storm: every VM is
// validated, then the whole queue is placed in one admission-controlled
// batch decision.
type FleetPlaceBatchRequest struct {
	VMs []FleetPlaceRequest `json:"vms"`
}

// FleetPlaceBatchResponse returns one decision per requested VM, in request
// order (Count-expanded replicas in suffix order), plus status totals.
type FleetPlaceBatchResponse struct {
	Results  []FleetPlaceResponse `json:"results"`
	Placed   int                  `json:"placed"`
	Queued   int                  `json:"queued"`
	Rejected int                  `json:"rejected"`
}

// FleetReading is one telemetry reading pushed by an external monitoring
// agent.
type FleetReading struct {
	HostID  string  `json:"host_id"`
	AtS     float64 `json:"at_s"`
	TempC   float64 `json:"temp_c"`
	Util    float64 `json:"util,omitempty"`
	MemFrac float64 `json:"mem_frac,omitempty"`
}

// FleetIngestRequest carries one batch of readings into the fleet pipeline.
// With Predict set (streaming-ingest servers only), the 200 carries one
// synchronous Δ_gap-ahead prediction per reading — the arrival→prediction
// round-trip collapses into the ingest request itself.
type FleetIngestRequest struct {
	Readings []FleetReading `json:"readings"`
	Predict  bool           `json:"predict,omitempty"`
}

// FleetIngestPrediction is one reading's synchronous prediction: either
// predicted values (outcome "streamed") or the reason none was produced —
// "deferred" (no session yet; the next round will create one) or "dropped"
// (pipeline back-pressure; the reading was lost).
type FleetIngestPrediction struct {
	HostID         string  `json:"host_id"`
	Outcome        string  `json:"outcome"`
	PredictedTempC float64 `json:"predicted_temp_c,omitempty"`
	UncertaintyC   float64 `json:"uncertainty_c,omitempty"`
}

// FleetIngestResponse reports per-batch ingest accounting: Dropped counts
// readings refused at the full bounded buffer (back-pressure the agent
// should see, not a silent loss); Streamed and Deferred count what the
// streaming path did on arrival (streaming-ingest servers only); and
// Predictions — present only when the request asked — parallels the
// request's readings.
type FleetIngestResponse struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
	// Rejected counts readings refused as implausible (NaN, ±Inf, outside
	// the plausibility bounds) before they could touch any session.
	Rejected    int                     `json:"rejected,omitempty"`
	Streamed    int                     `json:"streamed,omitempty"`
	Deferred    int                     `json:"deferred,omitempty"`
	Predictions []FleetIngestPrediction `json:"predictions,omitempty"`
}

// WithFleet attaches a fleet control plane, enabling the /v1/fleet
// endpoints.
func WithFleet(f *fleet.Controller) Option {
	return func(s *Server) { s.fleet = f }
}

func (s *Server) handleFleetHotspots(w http.ResponseWriter, _ *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no fleet control plane attached"))
		return
	}
	// Scoped zero-copy borrow: the snapshot (and its slices) is read-only
	// and only valid inside the view, so everything serialized is copied
	// into the response before the borrow ends. On streaming-ingest servers
	// the hotspot list itself comes from the live incremental index — it
	// reflects a pushed reading immediately — while the round metadata
	// still describes the last published round.
	streaming := s.fleet.StreamingEnabled()
	var resp FleetHotspotsResponse
	s.fleet.ViewSnapshot(func(snap *fleet.Snapshot) {
		resp = FleetHotspotsResponse{
			Round:      snap.Round,
			SimTimeS:   snap.SimTimeS,
			GapS:       snap.GapS,
			ThresholdC: snap.ThresholdC,
			Streaming:  streaming,
			StaleHosts: append([]string(nil), snap.StaleHosts...),
		}
		if !streaming {
			resp.Hotspots = make([]FleetHotspot, len(snap.Hotspots))
			for i, h := range snap.Hotspots {
				resp.Hotspots[i] = FleetHotspot(h)
			}
		}
	})
	if streaming {
		live := s.fleet.StreamHotspotsInto(nil)
		resp.Hotspots = make([]FleetHotspot, len(live))
		for i, h := range live {
			resp.Hotspots[i] = FleetHotspot(h)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// rejectStatus maps typed rejection codes onto HTTP statuses for the
// single-VM endpoint: 422 for requests that can never succeed, 429 for
// back-pressure, 409 for everything the current fleet state refuses.
func rejectStatus(code fleet.RejectCode) int {
	switch code {
	case fleet.RejectInfeasible:
		return http.StatusUnprocessableEntity
	case fleet.RejectQueueFull:
		return http.StatusTooManyRequests
	default: // no-capacity, no-headroom, no-substrate, duplicate-id
		return http.StatusConflict
	}
}

// placeResponse converts a typed decision to its wire form.
func placeResponse(dec fleet.PlacementDecision) FleetPlaceResponse {
	return FleetPlaceResponse{
		VMID:             dec.VMID,
		Status:           dec.Status.String(),
		HostID:           dec.HostID,
		PredictedStableC: dec.PredictedStableC,
		RejectCode:       dec.Code.String(),
		Reason:           dec.Reason,
	}
}

// countPlace feeds the vmtherm_place_*_total counters.
func (s *Server) countPlace(decs []fleet.PlacementDecision) {
	var placed, queued, rejected int64
	for i := range decs {
		switch decs[i].Status {
		case fleet.Placed:
			placed++
		case fleet.Queued:
			queued++
		default:
			rejected++
		}
	}
	s.metrics.placePlaced.Add(placed)
	s.metrics.placeQueued.Add(queued)
	s.metrics.placeRejected.Add(rejected)
}

// handleFleetPlace is the single-VM placement path — a thin adapter over
// the batch engine: one decision, with rejections mapped onto HTTP statuses
// and a structured {"error", "reject_code"} body.
func (s *Server) handleFleetPlace(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no fleet control plane attached"))
		return
	}
	var req FleetPlaceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Count > 1 {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("count %d on the single-VM endpoint; use /v1/fleet/place/batch", req.Count))
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	decs, err := s.fleet.PlaceBatch([]workload.VMSpec{spec})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	dec := decs[0]
	s.countPlace(decs)
	switch dec.Status {
	case fleet.Placed:
		writeJSON(w, http.StatusOK, placeResponse(dec))
	case fleet.Queued:
		writeJSON(w, http.StatusAccepted, placeResponse(dec))
	default:
		writeJSON(w, rejectStatus(dec.Code), map[string]string{
			"error":       dec.Reason,
			"reject_code": dec.Code.String(),
			"vm_id":       dec.VMID,
		})
	}
}

// handleFleetPlaceBatch places a whole queue in one admission-controlled
// call. The batch itself always answers 200 with per-item typed decisions
// (a storm is not an error); only malformed requests fail the whole batch,
// validated up front so nothing is placed before the rejection.
func (s *Server) handleFleetPlaceBatch(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no fleet control plane attached"))
		return
	}
	var req FleetPlaceBatchRequest
	if !decodeBatch(w, r, &req) {
		return
	}
	total := 0
	for i := range req.VMs {
		n := req.VMs[i].Count
		if n < 1 {
			n = 1
		}
		total += n
	}
	if total > MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d placements exceeds limit %d", total, MaxBatchItems))
		return
	}
	specs := make([]workload.VMSpec, 0, total)
	for i := range req.VMs {
		item := req.VMs[i]
		n := item.Count
		if n < 1 {
			n = 1
		}
		if n > 1 && item.ID == "" {
			writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("vms[%d]: placement request missing id", i))
			return
		}
		for k := 0; k < n; k++ {
			if item.Count > 1 {
				item.ID = fmt.Sprintf("%s-%03d", req.VMs[i].ID, k)
			}
			spec, err := item.toSpec()
			if err != nil {
				writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("vms[%d]: %w", i, err))
				return
			}
			specs = append(specs, spec)
		}
	}
	decs, err := s.fleet.PlaceBatch(specs)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.countPlace(decs)
	s.metrics.placeBatchSize.Store(int64(len(specs)))
	resp := FleetPlaceBatchResponse{Results: make([]FleetPlaceResponse, len(decs))}
	for i := range decs {
		resp.Results[i] = placeResponse(decs[i])
		switch decs[i].Status {
		case fleet.Placed:
			resp.Placed++
		case fleet.Queued:
			resp.Queued++
		default:
			resp.Rejected++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFleetIngest is the push path for real monitoring agents: readings
// enter the same bounded pipeline the simulator and scrape sources feed,
// and the next control round consumes them. On streaming-ingest servers
// each accepted reading is additionally applied on arrival (observe →
// calibrate → hotspot index), and `predict: true` turns the request
// synchronous-predictive: the 200 answers with one Δ_gap-ahead prediction
// per reading.
func (s *Server) handleFleetIngest(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no fleet control plane attached"))
		return
	}
	var req FleetIngestRequest
	if !decodeBatch(w, r, &req) {
		return
	}
	if len(req.Readings) > MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d readings exceeds limit %d", len(req.Readings), MaxBatchItems))
		return
	}
	if req.Predict && !s.fleet.StreamingEnabled() {
		writeError(w, http.StatusConflict,
			errors.New("predict requires streaming ingest (start the fleet with -streaming)"))
		return
	}
	// Validate the whole batch before ingesting anything: a mid-batch
	// rejection after partial ingest would make the agent retry readings
	// the loop already consumed.
	for _, rd := range req.Readings {
		if rd.HostID == "" {
			writeError(w, http.StatusUnprocessableEntity, errors.New("reading missing host_id"))
			return
		}
	}
	readings := make([]fleet.Reading, len(req.Readings))
	for i, rd := range req.Readings {
		readings[i] = fleet.Reading{
			HostID:  rd.HostID,
			AtS:     rd.AtS,
			TempC:   rd.TempC,
			Util:    rd.Util,
			MemFrac: rd.MemFrac,
		}
	}
	results := make([]fleet.IngestResult, len(readings))
	var resp FleetIngestResponse
	resp.Accepted = s.fleet.IngestBatch(readings, req.Predict, results)
	for i := range results {
		if results[i].Outcome == fleet.IngestRejected {
			resp.Rejected++
		}
	}
	resp.Dropped = len(readings) - resp.Accepted - resp.Rejected
	if req.Predict {
		resp.Predictions = make([]FleetIngestPrediction, len(results))
	}
	for i := range results {
		outcome := ""
		switch results[i].Outcome {
		case fleet.IngestStreamed:
			resp.Streamed++
			outcome = "streamed"
		case fleet.IngestDeferred:
			resp.Deferred++
			outcome = "deferred"
		case fleet.IngestDropped:
			outcome = "dropped"
		case fleet.IngestBuffered:
			outcome = "buffered"
		case fleet.IngestRejected:
			outcome = "rejected"
		}
		if req.Predict {
			p := FleetIngestPrediction{HostID: readings[i].HostID, Outcome: outcome}
			if results[i].Outcome == fleet.IngestStreamed {
				p.PredictedTempC = results[i].Pred.TempC
				p.UncertaintyC = results[i].Pred.UncertaintyC
			}
			resp.Predictions[i] = p
		}
	}
	s.metrics.ingestItems.Add(int64(resp.Accepted))
	writeJSON(w, http.StatusOK, resp)
}

// toSpec converts the wire request to a workload spec. A request with no
// tasks gets one full-vCPU CPU-bound task per vCPU (a conservatively hot
// assumption for an unknown tenant).
func (r FleetPlaceRequest) toSpec() (workload.VMSpec, error) {
	if r.ID == "" {
		return workload.VMSpec{}, errors.New("placement request missing id")
	}
	cfg := vmm.VMConfig{VCPUs: r.VCPUs, MemoryGB: r.MemoryGB}
	if err := cfg.Validate(); err != nil {
		return workload.VMSpec{}, err
	}
	spec := workload.VMSpec{ID: r.ID, Config: cfg}
	tasks := r.Tasks
	if len(tasks) == 0 {
		for i := 0; i < r.VCPUs; i++ {
			tasks = append(tasks, FleetTaskSpec{CPUFraction: 1, MemGB: r.MemoryGB / float64(r.VCPUs) / 2})
		}
	}
	for i, ts := range tasks {
		frac := ts.CPUFraction
		if frac < 0 || frac > 1 {
			return workload.VMSpec{}, errors.New("task cpu_fraction outside [0,1]")
		}
		spec.Tasks = append(spec.Tasks, workload.TaskSpec{
			Task: vmm.Task{
				ID:          spec.ID + "-t" + strconv.Itoa(i),
				Class:       vmm.CPUBound,
				CPUFraction: frac,
				MemGB:       ts.MemGB,
			},
			Profile: workload.Constant{Level: frac},
		})
	}
	return spec, nil
}
