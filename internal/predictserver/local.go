package predictserver

import (
	"context"
	"fmt"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/fleet"
	"vmtherm/internal/workload"
)

// LocalStackConfig shapes a self-contained in-process service: a fast
// stable model trained on simulated experiments, a simulated fleet control
// plane, and a Server wired to both. It exists for the SLO capacity
// harness (`vmtherm-loadgen -mode slo`) and CI, where profiling must
// exercise the real serving path without a separately launched daemon or
// network flake. Zero values take the documented defaults.
type LocalStackConfig struct {
	// Racks × HostsPerRack is the simulated fleet shape (default 4 × 16).
	Racks, HostsPerRack int
	// TrainCases is how many simulated experiments train the fast stable
	// model (default 24, the vmtherm-fleetd default).
	TrainCases int
	// Admission is the placement admission policy under test — part of
	// the capacity knob matrix.
	Admission fleet.AdmissionPolicy
	// PhysWorkers shards the simulated physics per rack; Workers sizes the
	// server's batch worker pool (0 = defaults).
	PhysWorkers, Workers int
	// PrimeRounds runs this many control rounds before the stack is
	// handed out (default 3) so /v1/fleet/hotspots serves a populated
	// snapshot and sessions are calibrated.
	PrimeRounds int
	// Streaming enables event-driven ingest (fleet.Config.StreamingIngest):
	// pushed readings apply on arrival and /v1/fleet/ingest accepts
	// predict: true.
	Streaming bool
	// Seed drives training-case generation and the simulated fleet.
	Seed int64
}

func (c LocalStackConfig) withDefaults() LocalStackConfig {
	if c.Racks == 0 {
		c.Racks = 4
	}
	if c.HostsPerRack == 0 {
		c.HostsPerRack = 16
	}
	if c.TrainCases == 0 {
		c.TrainCases = 24
	}
	if c.PrimeRounds == 0 {
		c.PrimeRounds = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LocalStack is the assembled in-process service.
type LocalStack struct {
	Server *Server
	Fleet  *fleet.Controller
	Model  *core.StablePredictor
}

// NewLocalStack trains the model, builds the fleet and assembles the
// server. The fleet's anchor path runs the same trained model through
// fleet.StableBatchPredictor — the production wiring, not a synthetic
// stand-in — so capacity numbers cover real prediction cost.
func NewLocalStack(ctx context.Context, cfg LocalStackConfig) (*LocalStack, error) {
	cfg = cfg.withDefaults()

	cases, err := workload.GenerateCases(workload.DefaultGenOptions(), cfg.Seed, "slo-train", cfg.TrainCases)
	if err != nil {
		return nil, fmt.Errorf("predictserver: generating training cases: %w", err)
	}
	recs, err := dataset.Build(ctx, cases, dataset.DefaultBuildOptions(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("predictserver: building training dataset: %w", err)
	}
	model, err := core.TrainStable(ctx, recs, core.FastStableConfig())
	if err != nil {
		return nil, fmt.Errorf("predictserver: training stable model: %w", err)
	}

	fcfg := fleet.DefaultConfig()
	fcfg.Racks = cfg.Racks
	fcfg.HostsPerRack = cfg.HostsPerRack
	fcfg.Admission = cfg.Admission
	fcfg.PhysWorkers = cfg.PhysWorkers
	fcfg.StreamingIngest = cfg.Streaming
	fcfg.Seed = cfg.Seed
	ctl, err := fleet.New(fcfg, fleet.StableBatchPredictor(model, fcfg.HorizonS))
	if err != nil {
		return nil, fmt.Errorf("predictserver: building fleet: %w", err)
	}
	for i := 0; i < cfg.PrimeRounds; i++ {
		if _, err := ctl.RunRound(); err != nil {
			return nil, fmt.Errorf("predictserver: priming round %d: %w", i, err)
		}
	}

	opts := []Option{WithFleet(ctl)}
	if cfg.Workers > 0 {
		opts = append(opts, WithWorkers(cfg.Workers))
	}
	srv, err := New(model, opts...)
	if err != nil {
		return nil, err
	}
	return &LocalStack{Server: srv, Fleet: ctl, Model: model}, nil
}

// RunRounds advances the control plane n rounds — profiling scenarios that
// want the queue drained or the snapshot refreshed between steps call this
// explicitly, keeping round cost out of the measured window by default.
func (ls *LocalStack) RunRounds(n int) error {
	for i := 0; i < n; i++ {
		if _, err := ls.Fleet.RunRound(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the server's worker pool.
func (ls *LocalStack) Close() {
	ls.Server.Close()
}
