package predictserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"vmtherm/internal/checkpoint"
)

// TestReadyzDefaultsReady: without a readiness probe the server is always
// ready — library embedders and tests get 200 with zero wiring.
func TestReadyzDefaultsReady(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz without a probe: status %d, want 200", resp.StatusCode)
	}
}

// TestReadyzFollowsProbe: /readyz must track the attached probe — 503 while
// restoring or draining, 200 in between — while /healthz stays 200 the
// whole time (liveness is not readiness).
func TestReadyzFollowsProbe(t *testing.T) {
	m, _ := testModel(t)
	var ready atomic.Bool
	srv, err := New(m, WithReadiness(ready.Load))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("not-ready /readyz: status %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while not ready: status %d, want 200", got)
	}
	ready.Store(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("ready /readyz: status %d, want 200", got)
	}
	ready.Store(false) // draining
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: status %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while draining: status %d, want 200", got)
	}
}

// TestFleetCheckpointEndpoint: 503 without a checkpoint feed, the manager's
// status JSON with one.
func TestFleetCheckpointEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/fleet/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/fleet/checkpoint without a feed: status %d, want 503", resp.StatusCode)
	}

	m, _ := testModel(t)
	status := checkpoint.Status{Enabled: true, Path: "/tmp/ckpt", IntervalS: 30, Writes: 7, BytesWritten: 1234, Restores: 1}
	srv, err := New(m, WithCheckpoint(func() checkpoint.Status { return status }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	resp2, err := http.Get(ts2.URL + "/v1/fleet/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet/checkpoint: status %d, want 200", resp2.StatusCode)
	}
	var got checkpoint.Status
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != status {
		t.Fatalf("checkpoint status round-trip: got %+v, want %+v", got, status)
	}
}

// TestMetricsExposeCheckpointCounters: the vmtherm_checkpoint_* families
// must be present on a fleet-attached server even with checkpointing
// disabled (flat zero), and must carry the feed's numbers when attached.
func TestMetricsExposeCheckpointCounters(t *testing.T) {
	m, _ := testModel(t)
	fc := hotFleet(t)
	srv, err := New(m, WithFleet(fc), WithCheckpoint(func() checkpoint.Status {
		return checkpoint.Status{Enabled: true, Writes: 3, BytesWritten: 512, Restores: 1, Failures: 2}
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, req)
	body := rw.Body.String()
	for _, want := range []string{
		"vmtherm_checkpoint_writes_total 3\n",
		"vmtherm_checkpoint_bytes_total 512\n",
		"vmtherm_checkpoint_restores_total 1\n",
		"vmtherm_checkpoint_failures_total 2\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", strings.TrimSpace(want))
		}
	}
}
