package predictserver

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"vmtherm/internal/fleet"
	"vmtherm/internal/telemetry"
)

// metricsMap fetches GET /metrics and indexes the parsed points by
// name{host} for assertion convenience.
func metricsMap(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	points, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(points))
	for _, p := range points {
		key := p.Name
		if host := p.Label("host"); host != "" {
			key += "{" + host + "}"
		}
		if kind := p.Label("kind"); kind != "" {
			key += "{" + kind + "}"
		}
		out[key] = p.Value
	}
	return out
}

// TestMetricsEndpoint: the exposition must track sessions and served items,
// and parse with the same parser the scraper uses.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, rec := newTestServer(t)

	m := metricsMap(t, ts.URL)
	if v, ok := m["vmtherm_sessions"]; !ok || v != 0 {
		t.Fatalf("vmtherm_sessions = %v (present %v)", v, ok)
	}

	// One stable prediction + one session with an observation.
	resp := postJSON(t, ts.URL+"/v1/predict/stable", StableRequest{Features: rec.Features})
	resp.Body.Close()
	stable := 55.0
	resp = postJSON(t, ts.URL+"/v1/session", SessionRequest{Phi0: 20, StableTempC: &stable})
	sess := decode[SessionResponse](t, resp)
	resp = postJSON(t, ts.URL+"/v1/session/"+sess.ID+"/observe", ObserveRequest{T: 0, TempC: 25})
	resp.Body.Close()

	m = metricsMap(t, ts.URL)
	if m["vmtherm_sessions"] != 1 {
		t.Fatalf("vmtherm_sessions = %v, want 1", m["vmtherm_sessions"])
	}
	if m[`vmtherm_items_total{stable}`] != 1 {
		t.Fatalf("stable items = %v, want 1", m[`vmtherm_items_total{stable}`])
	}
	if m[`vmtherm_items_total{observe}`] != 1 {
		t.Fatalf("observe items = %v, want 1", m[`vmtherm_items_total{observe}`])
	}
	// No fleet attached: no ingest/host families.
	if _, ok := m["vmtherm_ingest_received_total"]; ok {
		t.Fatal("fleet-less server exported ingest counters")
	}
}

// TestMetricsScrapeRoundTrip is the satellite's end-to-end proof: fleet A
// (simulated) publishes its per-host view on /metrics; a ScrapeSource with
// default config feeds that exposition into fleet B (source-driven); B's
// snapshot must reproduce A's hosts, temperatures and utilizations —
// vmtherm scraping vmtherm.
func TestMetricsScrapeRoundTrip(t *testing.T) {
	m, _ := testModel(t)
	ctlA := hotFleet(t)
	srv, err := New(m, WithFleet(ctlA))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	src, err := telemetry.NewScrapeSource(telemetry.DefaultScrapeConfig(ts.URL + "/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	cfgB := fleet.DefaultConfig()
	cfgB.ThresholdC = 70
	ctlB, err := fleet.NewWithSource(cfgB, src, fleet.SyntheticStablePredictor(75))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctlB.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SourceError != "" {
		t.Fatalf("scrape round errored: %s", rep.SourceError)
	}

	snapA, snapB := ctlA.Hotspots(), ctlB.Hotspots()
	if len(snapB.Latest) != len(snapA.Latest) {
		t.Fatalf("scraped %d hosts, exporter has %d", len(snapB.Latest), len(snapA.Latest))
	}
	for id, ra := range snapA.Latest {
		rb, ok := snapB.Latest[id]
		if !ok {
			t.Fatalf("host %s lost in scrape", id)
		}
		if rb.TempC != ra.TempC || rb.Util != ra.Util || rb.MemFrac != ra.MemFrac {
			t.Fatalf("host %s: scraped %+v, exported %+v", id, rb, ra)
		}
	}
	if rep.SessionsLive != len(snapA.Latest) {
		t.Fatalf("scrape-driven round has %d live sessions, want %d", rep.SessionsLive, len(snapA.Latest))
	}
	// A's overloaded host runs flat out; B must see that utilization and,
	// with the same synthetic anchor physics, flag it hot too.
	hot := "r0-h0"
	if snapB.Latest[hot].Util < 0.9 {
		t.Fatalf("scraped util for %s = %v", hot, snapB.Latest[hot].Util)
	}
	found := false
	for _, h := range snapB.Hotspots {
		if h.HostID == hot {
			found = true
		}
	}
	if !found {
		t.Fatalf("scrape-driven controller did not flag %s (hotspots %+v)", hot, snapB.Hotspots)
	}
}

// TestFleetIngestEndpoint: readings pushed over HTTP reach the pipeline and
// surface in the ingest metrics.
func TestFleetIngestEndpoint(t *testing.T) {
	m, _ := testModel(t)
	cfg := fleet.DefaultConfig()
	cfg.Racks, cfg.HostsPerRack = 1, 2
	ctl, err := fleet.New(cfg, fleet.SyntheticStablePredictor(75))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(m, WithFleet(ctl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/fleet/ingest", FleetIngestRequest{Readings: []FleetReading{
		{HostID: "r0-h0", AtS: 1, TempC: 44, Util: 0.5},
		{HostID: "r0-h1", AtS: 1, TempC: 41},
	}})
	out := decode[FleetIngestResponse](t, resp)
	if out.Accepted != 2 || out.Dropped != 0 {
		t.Fatalf("ingest response = %+v", out)
	}
	received, _, _ := ctl.IngestStats()
	if received != 2 {
		t.Fatalf("pipeline received = %d, want 2", received)
	}
	mm := metricsMap(t, ts.URL)
	if mm[`vmtherm_items_total{ingest}`] != 2 {
		t.Fatalf("ingest items metric = %v, want 2", mm[`vmtherm_items_total{ingest}`])
	}
	if mm["vmtherm_ingest_received_total"] != 2 {
		t.Fatalf("ingest received metric = %v, want 2", mm["vmtherm_ingest_received_total"])
	}

	// A hostless reading is rejected whole-batch with 422.
	resp = postJSON(t, ts.URL+"/v1/fleet/ingest", FleetIngestRequest{Readings: []FleetReading{{AtS: 1}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("hostless reading status = %d", resp.StatusCode)
	}
}
