package dataset

import (
	"context"
	"math"
	"strings"
	"testing"

	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

func testCases(t *testing.T, n int) []workload.Case {
	t.Helper()
	opts := workload.DefaultGenOptions()
	cases, err := workload.GenerateCases(opts, 3, "ds", n)
	if err != nil {
		t.Fatal(err)
	}
	return cases
}

func TestEncodeShapeAndDeterminism(t *testing.T) {
	c := testCases(t, 1)[0]
	f1, err := Encode(c, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != NumFeatures() {
		t.Fatalf("feature length %d, want %d", len(f1), NumFeatures())
	}
	f2, err := Encode(c, 1800)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("encode not deterministic at %d", i)
		}
	}
}

func TestEncodeSemantics(t *testing.T) {
	c := workload.Case{
		Name:     "manual",
		Host:     vmm.HostConfig{Cores: 8, GHzPerCore: 2, MemoryGB: 32, CPUOvercommit: 2},
		FanCount: 4,
		AmbientC: 25,
		VMs: []workload.VMSpec{
			{
				ID:     "a",
				Config: vmm.VMConfig{VCPUs: 2, MemoryGB: 8},
				Tasks: []workload.TaskSpec{
					{Task: vmm.Task{ID: "a-t0", Class: vmm.CPUBound, CPUFraction: 0.8, MemGB: 1}},
					{Task: vmm.Task{ID: "a-t1", Class: vmm.MemBound, CPUFraction: 0.4, MemGB: 4}},
				},
			},
			{
				ID:     "b",
				Config: vmm.VMConfig{VCPUs: 4, MemoryGB: 16},
				Tasks: []workload.TaskSpec{
					{Task: vmm.Task{ID: "b-t0", Class: vmm.CPUBound, CPUFraction: 0.6, MemGB: 2}},
				},
			},
		},
	}
	f, err := Encode(c, 1800)
	if err != nil {
		t.Fatal(err)
	}
	names := FeatureNames()
	get := func(name string) float64 {
		t.Helper()
		for i, n := range names {
			if n == name {
				return f[i]
			}
		}
		t.Fatalf("no feature %q", name)
		return 0
	}
	if get("cpu_capacity_ghz") != 16 {
		t.Errorf("cpu capacity = %v", get("cpu_capacity_ghz"))
	}
	if get("memory_gb") != 32 || get("fan_count") != 4 || get("ambient_c") != 25 {
		t.Error("host/env features wrong")
	}
	if get("vm_count") != 2 || get("vcpus_allocated") != 6 || get("mem_allocated_gb") != 24 {
		t.Error("vm aggregation wrong")
	}
	if math.Abs(get("cpu_demand_vcpus")-1.8) > 1e-9 {
		t.Errorf("demand = %v, want 1.8", get("cpu_demand_vcpus"))
	}
	if get("mem_active_gb") != 7 {
		t.Errorf("mem active = %v, want 7", get("mem_active_gb"))
	}
	if get("task_count") != 3 {
		t.Error("task count wrong")
	}
	if math.Abs(get("task_cpu_mean")-0.6) > 1e-9 || get("task_cpu_max") != 0.8 {
		t.Error("task cpu stats wrong")
	}
	if math.Abs(get("frac_cpu_bound")-2.0/3) > 1e-9 || math.Abs(get("frac_mem_bound")-1.0/3) > 1e-9 {
		t.Error("class mix wrong")
	}
	if get("frac_io_bound") != 0 || get("frac_bursty") != 0 {
		t.Error("absent classes should be zero")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(workload.Case{}, 1800); err == nil {
		t.Error("no VMs should fail")
	}
	c := testCases(t, 1)[0]
	if _, err := Encode(c, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	empty := c
	empty.VMs = []workload.VMSpec{{ID: "v", Config: vmm.VMConfig{VCPUs: 1, MemoryGB: 1}}}
	if _, err := Encode(empty, 1800); err == nil {
		t.Error("no tasks should fail")
	}
}

func TestBuildProducesSaneRecords(t *testing.T) {
	cases := testCases(t, 6)
	opts := DefaultBuildOptions(1)
	recs, err := Build(context.Background(), cases, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(cases) {
		t.Fatalf("%d records for %d cases", len(recs), len(cases))
	}
	for i, r := range recs {
		if r.CaseName != cases[i].Name {
			t.Errorf("record %d order broken: %s vs %s", i, r.CaseName, cases[i].Name)
		}
		// Stable temperatures must exceed ambient and stay below silicon limits.
		if r.StableTemp < cases[i].AmbientC || r.StableTemp > 110 {
			t.Errorf("case %s stable temp %v implausible (ambient %v)",
				r.CaseName, r.StableTemp, cases[i].AmbientC)
		}
	}
}

func TestBuildDeterministicAcrossWorkerCounts(t *testing.T) {
	cases := testCases(t, 5)
	serial := DefaultBuildOptions(7)
	serial.Workers = 1
	parallel := DefaultBuildOptions(7)
	parallel.Workers = 4
	a, err := Build(context.Background(), cases, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(context.Background(), cases, parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].StableTemp != b[i].StableTemp {
			t.Fatalf("record %d differs across worker counts: %v vs %v",
				i, a[i].StableTemp, b[i].StableTemp)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(context.Background(), nil, DefaultBuildOptions(1)); err == nil {
		t.Error("no cases should fail")
	}
	bad := DefaultBuildOptions(1)
	bad.TBreakS = bad.Run.DurationS + 1
	if _, err := Build(context.Background(), testCases(t, 1), bad); err == nil {
		t.Error("t_break beyond duration should fail")
	}
	neg := DefaultBuildOptions(1)
	neg.Workers = -1
	if _, err := Build(context.Background(), testCases(t, 1), neg); err == nil {
		t.Error("negative workers should fail")
	}
}

func TestSplit(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{CaseName: string(rune('a' + i%26)), StableTemp: float64(i)}
	}
	train, test, err := Split(recs, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 20 || len(train) != 80 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	// No overlap, full coverage.
	seen := map[float64]bool{}
	for _, r := range append(append([]Record{}, train...), test...) {
		if seen[r.StableTemp] {
			t.Fatal("duplicate record after split")
		}
		seen[r.StableTemp] = true
	}
	if len(seen) != 100 {
		t.Fatalf("coverage %d/100", len(seen))
	}
	// Determinism.
	train2, _, err := Split(recs, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train {
		if train[i].StableTemp != train2[i].StableTemp {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSplitValidation(t *testing.T) {
	if _, _, err := Split(nil, 0.2, 1); err == nil {
		t.Error("empty records should fail")
	}
	if _, _, err := Split(make([]Record, 3), 1.0, 1); err == nil {
		t.Error("testFrac 1.0 should fail")
	}
	if _, _, err := Split(make([]Record, 3), -0.1, 1); err == nil {
		t.Error("negative testFrac should fail")
	}
}

func TestFeaturesAndTargets(t *testing.T) {
	recs := []Record{
		{Features: []float64{1, 2}, StableTemp: 50},
		{Features: []float64{3, 4}, StableTemp: 60},
	}
	x, y := FeaturesAndTargets(recs)
	if len(x) != 2 || len(y) != 2 || x[1][0] != 3 || y[0] != 50 {
		t.Error("unzip wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cases := testCases(t, 3)
	recs, err := Build(context.Background(), cases, DefaultBuildOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip count %d vs %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].CaseName != recs[i].CaseName || back[i].StableTemp != recs[i].StableTemp {
			t.Fatalf("record %d differs", i)
		}
		for j := range recs[i].Features {
			if back[i].Features[j] != recs[i].Features[j] {
				t.Fatalf("record %d feature %d differs", i, j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if err := WriteCSV(&strings.Builder{}, nil); err == nil {
		t.Error("empty write should fail")
	}
	if err := WriteCSV(&strings.Builder{}, []Record{{Features: []float64{1}}}); err == nil {
		t.Error("short feature vector should fail")
	}
	if _, err := ReadCSV(strings.NewReader("bogus,header\n")); err == nil {
		t.Error("bad header should fail")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty file should fail")
	}
	// Correct header but no rows.
	var sb strings.Builder
	recs := []Record{{CaseName: "x", Features: make([]float64, NumFeatures()), StableTemp: 1}}
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	headerOnly := strings.SplitAfterN(sb.String(), "\n", 2)[0]
	if _, err := ReadCSV(strings.NewReader(headerOnly)); err == nil {
		t.Error("header-only file should fail")
	}
}

func TestWriteLIBSVMFormat(t *testing.T) {
	recs := []Record{{
		CaseName:   "x",
		Features:   []float64{1.5, 0, 3},
		StableTemp: 55.25,
	}}
	var sb strings.Builder
	if err := WriteLIBSVM(&sb, recs); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(sb.String())
	if got != "55.25 1:1.5 3:3" {
		t.Errorf("libsvm line = %q", got)
	}
	if err := WriteLIBSVM(&sb, nil); err == nil {
		t.Error("empty write should fail")
	}
}
