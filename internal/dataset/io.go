package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes records with a header row: case, <features...>, target.
func WriteCSV(w io.Writer, records []Record) error {
	if len(records) == 0 {
		return errors.New("dataset: no records to write")
	}
	cw := csv.NewWriter(w)
	header := append(append([]string{"case"}, featureNames...), "stable_temp_c")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range records {
		if len(r.Features) != len(featureNames) {
			return fmt.Errorf("dataset: record %q has %d features, want %d",
				r.CaseName, len(r.Features), len(featureNames))
		}
		row := make([]string, 0, len(header))
		row = append(row, r.CaseName)
		for _, f := range r.Features {
			row = append(row, strconv.FormatFloat(f, 'g', 17, 64))
		}
		row = append(row, strconv.FormatFloat(r.StableTemp, 'g', 17, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV, validating the header.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	want := append(append([]string{"case"}, featureNames...), "stable_temp_c")
	if len(header) != len(want) {
		return nil, fmt.Errorf("dataset: header has %d columns, want %d", len(header), len(want))
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, header[i], want[i])
		}
	}
	var records []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		rec := Record{CaseName: row[0], Features: make([]float64, len(featureNames))}
		for i := range featureNames {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d feature %s: %w", line, featureNames[i], err)
			}
			rec.Features[i] = v
		}
		t, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d target: %w", line, err)
		}
		rec.StableTemp = t
		records = append(records, rec)
	}
	if len(records) == 0 {
		return nil, errors.New("dataset: file contains no records")
	}
	return records, nil
}

// WriteLIBSVM serializes records in LIBSVM's sparse training-file format
// ("<target> 1:<f1> 2:<f2> ..."), usable directly with svm-train for
// cross-checking against the reference implementation.
func WriteLIBSVM(w io.Writer, records []Record) error {
	if len(records) == 0 {
		return errors.New("dataset: no records to write")
	}
	var sb strings.Builder
	for _, r := range records {
		sb.Reset()
		sb.WriteString(strconv.FormatFloat(r.StableTemp, 'g', 17, 64))
		for i, f := range r.Features {
			if f == 0 {
				continue
			}
			sb.WriteByte(' ')
			sb.WriteString(strconv.Itoa(i + 1))
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatFloat(f, 'g', 17, 64))
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
