package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"vmtherm/internal/telemetry"
)

// Telemetry traces are the recorded-experiment counterpart of the Eq. (2)
// training records: a time-ordered sequence of per-host readings captured
// from a live run (simulated or real), replayable through
// telemetry.NewTraceSource so the same closed loop that runs against the
// simulator runs against recorded data.

// traceHeader is the canonical trace CSV column order.
var traceHeader = []string{"host_id", "at_s", "temp_c", "util", "mem_frac"}

// WriteTrace serializes readings as CSV with a header row, in the order
// given (record traces through telemetry.SortReadings first for the
// canonical time/host order).
func WriteTrace(w io.Writer, readings []telemetry.Reading) error {
	if len(readings) == 0 {
		return errors.New("dataset: no readings to write")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return err
	}
	row := make([]string, len(traceHeader))
	for _, r := range readings {
		if r.HostID == "" {
			return errors.New("dataset: trace reading missing host id")
		}
		row[0] = r.HostID
		row[1] = strconv.FormatFloat(r.AtS, 'g', 17, 64)
		row[2] = strconv.FormatFloat(r.TempC, 'g', 17, 64)
		row[3] = strconv.FormatFloat(r.Util, 'g', 17, 64)
		row[4] = strconv.FormatFloat(r.MemFrac, 'g', 17, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a trace written by WriteTrace, validating the header.
func ReadTrace(r io.Reader) ([]telemetry.Reading, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading trace header: %w", err)
	}
	if len(header) != len(traceHeader) {
		return nil, fmt.Errorf("dataset: trace header has %d columns, want %d", len(header), len(traceHeader))
	}
	for i := range traceHeader {
		if header[i] != traceHeader[i] {
			return nil, fmt.Errorf("dataset: trace header column %d is %q, want %q", i, header[i], traceHeader[i])
		}
	}
	var readings []telemetry.Reading
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: trace line %d: %w", line, err)
		}
		rd := telemetry.Reading{HostID: row[0]}
		if rd.HostID == "" {
			return nil, fmt.Errorf("dataset: trace line %d missing host id", line)
		}
		cols := []*float64{&rd.AtS, &rd.TempC, &rd.Util, &rd.MemFrac}
		for i, dst := range cols {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: trace line %d column %s: %w", line, traceHeader[i+1], err)
			}
			*dst = v
		}
		readings = append(readings, rd)
	}
	if len(readings) == 0 {
		return nil, errors.New("dataset: trace contains no readings")
	}
	return readings, nil
}
