package dataset

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"vmtherm/internal/testbed"
	"vmtherm/internal/workload"
)

// BuildOptions configures dataset generation from simulated experiments.
type BuildOptions struct {
	// Run configures each experiment execution (defaults to the paper's
	// 1800 s at 1 s ticks).
	Run testbed.RunConfig
	// TBreakS is the Eq. (1) break-in time; ψ_stable averages after it.
	TBreakS float64
	// Rig passes through sensor/thermal overrides and seeding.
	Rig testbed.Options
	// Workers bounds parallel case execution; 0 selects GOMAXPROCS.
	Workers int
}

// DefaultBuildOptions mirrors the paper's experiment protocol.
func DefaultBuildOptions(seed int64) BuildOptions {
	return BuildOptions{
		Run:     testbed.DefaultRunConfig(),
		TBreakS: 600,
		Rig:     testbed.Options{Seed: seed},
	}
}

// Validate checks the options.
func (o BuildOptions) Validate() error {
	if err := o.Run.Validate(); err != nil {
		return err
	}
	if o.TBreakS <= 0 || o.TBreakS >= o.Run.DurationS {
		return fmt.Errorf("dataset: t_break %v must fall inside the run duration %v",
			o.TBreakS, o.Run.DurationS)
	}
	if o.Workers < 0 {
		return fmt.Errorf("dataset: negative workers %d", o.Workers)
	}
	return nil
}

// Build runs every case on its own simulated rig and emits one Eq. (2)
// record per case, in case order. Execution is parallel across cases but
// bit-for-bit deterministic: each case's rig derives its randomness from
// (opts.Rig.Seed, case name), not from scheduling.
func Build(ctx context.Context, cases []workload.Case, opts BuildOptions) ([]Record, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("dataset: no cases")
	}

	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}

	records := make([]Record, len(cases))
	errs := make([]error, len(cases))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				records[idx], errs[idx] = buildOne(cases[idx], opts)
			}
		}()
	}
feed:
	for i := range cases {
		select {
		case <-ctx.Done():
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dataset: build cancelled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dataset: case %s: %w", cases[i].Name, err)
		}
	}
	return records, nil
}

func buildOne(c workload.Case, opts BuildOptions) (Record, error) {
	rig, err := testbed.New(c, opts.Rig)
	if err != nil {
		return Record{}, err
	}
	res, err := rig.Run(opts.Run)
	if err != nil {
		return Record{}, err
	}
	stable, err := res.StableTemp(opts.TBreakS)
	if err != nil {
		return Record{}, err
	}
	features, err := Encode(c, opts.Run.DurationS)
	if err != nil {
		return Record{}, err
	}
	return Record{CaseName: c.Name, Features: features, StableTemp: stable}, nil
}
