package dataset

import (
	"bytes"
	"strings"
	"testing"

	"vmtherm/internal/telemetry"
)

func TestTraceRoundTrip(t *testing.T) {
	in := []telemetry.Reading{
		{HostID: "r0-h0", AtS: 0, TempC: 41.5, Util: 0.5, MemFrac: 0.25},
		{HostID: "r0-h1", AtS: 0, TempC: 38.25, Util: 0, MemFrac: 0},
		{HostID: "r0-h0", AtS: 5, TempC: 42.125, Util: 0.625, MemFrac: 0.25},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d readings, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("reading %d: wrote %+v, read %+v", i, in[i], out[i])
		}
	}
}

func TestTraceRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err == nil {
		t.Error("empty trace written")
	}
	if err := WriteTrace(&buf, []telemetry.Reading{{AtS: 1}}); err == nil {
		t.Error("hostless reading written")
	}
	for _, bad := range []string{
		"",
		"wrong,header,entirely,x,y\n",
		"host_id,at_s,temp_c,util,mem_frac\n", // header only, no readings
		"host_id,at_s,temp_c,util,mem_frac\nh0,notanumber,1,0,0\n",
		"host_id,at_s,temp_c,util,mem_frac\n,1,1,0,0\n",
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed trace %q accepted", bad)
		}
	}
}
