// Package dataset realizes the paper's Eq. (2): each experiment produces one
// record {input, output} with input = {θ_cpu, θ_memory, θ_fan, ξ_VM, δ_env}
// and output = ψ_stable. The paper leaves the encoding of ξ_VM ("VM
// configurations and deployed tasks") unspecified; we aggregate it into
// twelve numeric features documented on FeatureNames, and record that choice
// in DESIGN.md §6.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"vmtherm/internal/mathx"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// Record is one training/testing example (Eq. 2).
type Record struct {
	// CaseName ties the record back to its experiment case.
	CaseName string
	// Features is the encoded input vector; see FeatureNames.
	Features []float64
	// StableTemp is ψ_stable, the Eq. (1) output.
	StableTemp float64
}

// featureNames is the canonical feature order.
var featureNames = []string{
	"cpu_capacity_ghz", // θ_cpu
	"memory_gb",        // θ_memory
	"fan_count",        // θ_fan
	"ambient_c",        // δ_env
	"vm_count",         // ξ_VM …
	"vcpus_allocated",  //
	"mem_allocated_gb", //
	"cpu_demand_vcpus", // mean aggregate task demand over the experiment
	"mem_active_gb",    //
	"task_count",       //
	"task_cpu_mean",    //
	"task_cpu_max",     //
	"frac_cpu_bound",   // task-class mix …
	"frac_mem_bound",   //
	"frac_io_bound",    //
	"frac_bursty",      //
}

// FeatureNames returns the canonical feature order (a copy).
func FeatureNames() []string {
	out := make([]string, len(featureNames))
	copy(out, featureNames)
	return out
}

// NumFeatures is the feature vector length.
func NumFeatures() int { return len(featureNames) }

// Encode converts a workload case into the Eq. (2) input vector. Task CPU
// demand is averaged over [0, horizonS] so dynamic profiles contribute their
// mean load, matching what ψ_stable responds to.
func Encode(c workload.Case, horizonS float64) ([]float64, error) {
	dst := make([]float64, NumFeatures())
	if err := EncodeInto(c, horizonS, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// EncodeInto encodes a case into dst (len(dst) must be NumFeatures())
// without allocating — the building block for serving loops that encode
// thousands of anchor cases per round into one reused flat feature matrix.
func EncodeInto(c workload.Case, horizonS float64, dst []float64) error {
	if len(dst) != len(featureNames) {
		return fmt.Errorf("dataset: encode dst length %d, want %d", len(dst), len(featureNames))
	}
	if len(c.VMs) == 0 {
		return errors.New("dataset: case has no VMs")
	}
	if horizonS <= 0 {
		return fmt.Errorf("dataset: horizon must be > 0, got %v", horizonS)
	}

	var vcpus, memAlloc, demand, memActive float64
	var taskCount int
	var cpuSum, cpuMax float64
	// Class frequencies indexed by TaskClass (1-based contiguous constants);
	// a fixed array instead of a map keeps the encoder allocation-free.
	var classCounts [5]float64

	for _, spec := range c.VMs {
		vcpus += float64(spec.Config.VCPUs)
		memAlloc += spec.Config.MemoryGB
		var vmDemand, vmMem float64
		for _, ts := range spec.Tasks {
			mean := ts.Task.CPUFraction
			if ts.Profile != nil {
				m, err := workload.MeanOver(ts.Profile, 0, horizonS, horizonS/200)
				if err != nil {
					return fmt.Errorf("dataset: task %s: %w", ts.Task.ID, err)
				}
				mean = m
			}
			vmDemand += mean
			vmMem += ts.Task.MemGB
			cpuSum += mean
			if mean > cpuMax {
				cpuMax = mean
			}
			if cl := ts.Task.Class; cl >= vmm.CPUBound && cl <= vmm.Bursty {
				classCounts[cl]++
			}
			taskCount++
		}
		demand += math.Min(vmDemand, float64(spec.Config.VCPUs))
		memActive += math.Min(vmMem, spec.Config.MemoryGB)
	}
	if taskCount == 0 {
		return errors.New("dataset: case has no tasks")
	}

	tc := float64(taskCount)
	dst[0] = c.Host.CPUCapacityGHz()
	dst[1] = c.Host.MemoryGB
	dst[2] = float64(c.FanCount)
	dst[3] = c.AmbientC
	dst[4] = float64(len(c.VMs))
	dst[5] = vcpus
	dst[6] = memAlloc
	dst[7] = demand
	dst[8] = memActive
	dst[9] = tc
	dst[10] = cpuSum / tc
	dst[11] = cpuMax
	dst[12] = classCounts[vmm.CPUBound] / tc
	dst[13] = classCounts[vmm.MemBound] / tc
	dst[14] = classCounts[vmm.IOBound] / tc
	dst[15] = classCounts[vmm.Bursty] / tc
	return nil
}

// Split partitions records into train and test sets with the given test
// fraction, shuffled deterministically by seed.
func Split(records []Record, testFrac float64, seed int64) (train, test []Record, err error) {
	if testFrac < 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v outside [0,1)", testFrac)
	}
	if len(records) == 0 {
		return nil, nil, errors.New("dataset: no records to split")
	}
	rng := mathx.SplitStable(seed, "dataset-split")
	perm := rng.Perm(len(records))
	nTest := int(math.Round(testFrac * float64(len(records))))
	test = make([]Record, 0, nTest)
	train = make([]Record, 0, len(records)-nTest)
	for i, idx := range perm {
		if i < nTest {
			test = append(test, records[idx])
		} else {
			train = append(train, records[idx])
		}
	}
	return train, test, nil
}

// FeaturesAndTargets unzips records into parallel slices for training.
func FeaturesAndTargets(records []Record) (x [][]float64, y []float64) {
	x = make([][]float64, len(records))
	y = make([]float64, len(records))
	for i, r := range records {
		x[i] = r.Features
		y[i] = r.StableTemp
	}
	return x, y
}
