package experiments

import (
	"context"
	"fmt"
	"strings"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/testbed"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// MigrationStudyResult captures dynamic prediction through a live VM
// migration — the scenario the paper's introduction singles out as the one
// traditional models cannot handle.
type MigrationStudyResult struct {
	// CaseName identifies the observed server's workload.
	CaseName string
	// MigrationAtS is when the inbound migration was initiated.
	MigrationAtS float64
	// PredictedStable is the SVM ψ_stable for the POST-migration deployment
	// (the VMM knows what is scheduled before the thermals respond).
	PredictedStable float64
	// ActualStable is the measured post-migration settled temperature.
	ActualStable float64
	// WithMSE / WithoutMSE compare calibrated vs. uncalibrated replay over
	// the full trace, including the migration transient.
	WithMSE, WithoutMSE float64
}

// RunMigrationStudy trains the stable model, runs an experiment where a hot
// VM live-migrates onto the observed server mid-run, and scores dynamic
// prediction through the transition.
func RunMigrationStudy(ctx context.Context, cfg Fig1bConfig, migrateAtS float64) (*MigrationStudyResult, error) {
	if migrateAtS <= 0 || migrateAtS >= cfg.Build.Run.DurationS {
		return nil, fmt.Errorf("experiments: migration time %v outside the run", migrateAtS)
	}
	trainGen := cfg.Gen
	trainGen.Dynamic = false
	trainCases, err := workload.GenerateCases(trainGen, cfg.Seed, "train", cfg.TrainCases)
	if err != nil {
		return nil, err
	}
	trainRecs, err := dataset.Build(ctx, trainCases, cfg.Build)
	if err != nil {
		return nil, err
	}
	pred, err := core.TrainStable(ctx, trainRecs, cfg.Stable)
	if err != nil {
		return nil, err
	}

	// Observed server: constant-load VMs so the migration is the dynamics.
	caseGen := cfg.Gen
	caseGen.Dynamic = false
	caseGen.VMCountMin, caseGen.VMCountMax = cfg.CaseVMs, cfg.CaseVMs
	caseGen.FanChoices = []int{cfg.FanCount}
	study, err := workload.GenerateCase(caseGen, cfg.Seed+7, "migstudy")
	if err != nil {
		return nil, err
	}
	rig, err := testbed.New(study, testbed.Options{Seed: cfg.Seed + 7})
	if err != nil {
		return nil, err
	}

	newcomer := workload.VMSpec{
		ID:     "migstudy-incoming",
		Config: vmm.VMConfig{VCPUs: 4, MemoryGB: 8},
		Tasks: []workload.TaskSpec{
			{
				Task:    vmm.Task{ID: "mig-t0", Class: vmm.CPUBound, CPUFraction: 0.95, MemGB: 2},
				Profile: workload.Constant{Level: 0.95},
			},
			{
				Task:    vmm.Task{ID: "mig-t1", Class: vmm.CPUBound, CPUFraction: 0.85, MemGB: 1},
				Profile: workload.Constant{Level: 0.85},
			},
		},
	}
	if err := rig.ScheduleMigrationIn(migrateAtS, newcomer, vmm.DefaultMigrationSpec()); err != nil {
		return nil, err
	}
	run, err := rig.Run(cfg.Build.Run)
	if err != nil {
		return nil, err
	}

	phi0, _, err := core.ProfileTrace(run.SensorTemps, cfg.TBreakS)
	if err != nil {
		return nil, err
	}
	postCase := study
	postCase.VMs = append(append([]workload.VMSpec{}, study.VMs...), newcomer)
	predictedStable, err := pred.PredictCase(postCase, cfg.Build.Run.DurationS)
	if err != nil {
		return nil, err
	}
	// Post-migration regime: after the thermal transient of the arrival.
	actualStable, err := run.SensorTemps.MeanAfter(migrateAtS + cfg.TBreakS/2)
	if err != nil {
		return nil, err
	}

	curve, err := core.NewCurve(phi0, predictedStable, cfg.TBreakS, cfg.CurveDeltaS)
	if err != nil {
		return nil, err
	}
	withCal, err := core.Replay(run.SensorTemps, curve, cfg.Dynamic)
	if err != nil {
		return nil, err
	}
	noCal := cfg.Dynamic
	noCal.Lambda = 0
	withoutCal, err := core.Replay(run.SensorTemps, curve, noCal)
	if err != nil {
		return nil, err
	}

	return &MigrationStudyResult{
		CaseName:        study.Name,
		MigrationAtS:    migrateAtS,
		PredictedStable: predictedStable,
		ActualStable:    actualStable,
		WithMSE:         withCal.MSE,
		WithoutMSE:      withoutCal.MSE,
	}, nil
}

// Render prints the study summary.
func (r *MigrationStudyResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Migration study: live migration into %s at t=%.0f s\n", r.CaseName, r.MigrationAtS)
	fmt.Fprintf(&sb, "post-migration stable: predicted %.2f °C, measured %.2f °C\n",
		r.PredictedStable, r.ActualStable)
	fmt.Fprintf(&sb, "dynamic prediction through the migration:\n")
	fmt.Fprintf(&sb, "  with calibration:    MSE %.3f\n", r.WithMSE)
	fmt.Fprintf(&sb, "  without calibration: MSE %.3f\n", r.WithoutMSE)
	return sb.String()
}
