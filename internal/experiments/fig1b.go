package experiments

import (
	"context"
	"fmt"
	"strings"

	"vmtherm/internal/baseline"
	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/testbed"
	"vmtherm/internal/workload"
)

// Fig1bConfig parameterizes the dynamic-prediction case study.
type Fig1bConfig struct {
	// Seed drives everything.
	Seed int64
	// CaseVMs is the VM count of the case study (the paper shows one
	// "particular experiment case").
	CaseVMs int
	// FanCount for the case-study server.
	FanCount int
	// TrainCases sizes the training set for the ψ_stable anchor.
	TrainCases int
	// Gen bounds case generation.
	Gen workload.GenOptions
	// Build configures simulation runs.
	Build dataset.BuildOptions
	// Stable configures SVM training.
	Stable core.StableConfig
	// Dynamic is the paper's Δ_gap=60, Δ_update=15, λ=0.8 setup.
	Dynamic core.DynamicConfig
	// TBreakS and CurveDeltaS shape the Eq. (3) curve.
	TBreakS, CurveDeltaS float64
}

// DefaultFig1bConfig mirrors the paper's §II running example.
func DefaultFig1bConfig(seed int64) Fig1bConfig {
	gen := workload.DefaultGenOptions()
	gen.Dynamic = true
	return Fig1bConfig{
		Seed:        seed,
		CaseVMs:     8,
		FanCount:    4,
		TrainCases:  80,
		Gen:         gen,
		Build:       dataset.DefaultBuildOptions(seed),
		Stable:      core.FastStableConfig(),
		Dynamic:     core.DefaultDynamicConfig(),
		TBreakS:     600,
		CurveDeltaS: core.DefaultCurveDelta,
	}
}

// Fig1bSeries is one aligned sample of the case-study plot.
type Fig1bSeries struct {
	T           float64
	Empirical   float64
	Calibrated  float64
	Uncalibrate float64
}

// Fig1bResult is the case-study outcome.
type Fig1bResult struct {
	// CaseName identifies the case study.
	CaseName string
	// PredictedStable is the SVM's ψ_stable anchor; ActualStable the
	// measured Eq. (1) value.
	PredictedStable, ActualStable float64
	// WithMSE / WithoutMSE reproduce Fig. 1(b)'s comparison.
	WithMSE, WithoutMSE float64
	// LastValueMSE / ExtrapolationMSE are naive baselines for context.
	LastValueMSE, ExtrapolationMSE float64
	// Series holds plot-ready rows (prediction targets vs. empirical).
	Series []Fig1bSeries
}

// RunFig1b trains the stable model, runs one dynamic case study, and replays
// dynamic prediction with and without calibration against the empirical
// trace.
func RunFig1b(ctx context.Context, cfg Fig1bConfig) (*Fig1bResult, error) {
	if cfg.CaseVMs < 1 || cfg.TrainCases < 10 {
		return nil, fmt.Errorf("experiments: fig1b config sizes invalid")
	}
	// Train the ψ_stable model on constant-load experiments (the paper's
	// training protocol), then study a dynamic case.
	trainGen := cfg.Gen
	trainGen.Dynamic = false
	trainCases, err := workload.GenerateCases(trainGen, cfg.Seed, "train", cfg.TrainCases)
	if err != nil {
		return nil, err
	}
	trainRecs, err := dataset.Build(ctx, trainCases, cfg.Build)
	if err != nil {
		return nil, err
	}
	pred, err := core.TrainStable(ctx, trainRecs, cfg.Stable)
	if err != nil {
		return nil, err
	}

	// The case study: a dynamic workload on a FanCount-fan server.
	caseGen := cfg.Gen
	caseGen.Dynamic = true
	caseGen.VMCountMin, caseGen.VMCountMax = cfg.CaseVMs, cfg.CaseVMs
	caseGen.FanChoices = []int{cfg.FanCount}
	study, err := workload.GenerateCase(caseGen, cfg.Seed+2, "casestudy")
	if err != nil {
		return nil, err
	}
	rig, err := testbed.New(study, testbed.Options{Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	run, err := rig.Run(cfg.Build.Run)
	if err != nil {
		return nil, err
	}

	phi0, actualStable, err := core.ProfileTrace(run.SensorTemps, cfg.TBreakS)
	if err != nil {
		return nil, err
	}
	predictedStable, err := pred.PredictCase(study, cfg.Build.Run.DurationS)
	if err != nil {
		return nil, err
	}
	curve, err := core.NewCurve(phi0, predictedStable, cfg.TBreakS, cfg.CurveDeltaS)
	if err != nil {
		return nil, err
	}

	withCal, err := core.Replay(run.SensorTemps, curve, cfg.Dynamic)
	if err != nil {
		return nil, err
	}
	noCal := cfg.Dynamic
	noCal.Lambda = 0
	withoutCal, err := core.Replay(run.SensorTemps, curve, noCal)
	if err != nil {
		return nil, err
	}
	lvMSE, _, err := baseline.ReplayDynamic(run.SensorTemps, baseline.LastValue, cfg.Dynamic.GapS)
	if err != nil {
		return nil, err
	}
	leMSE, _, err := baseline.ReplayDynamic(run.SensorTemps, baseline.LinearExtrapolation, cfg.Dynamic.GapS)
	if err != nil {
		return nil, err
	}

	res := &Fig1bResult{
		CaseName:         study.Name,
		PredictedStable:  predictedStable,
		ActualStable:     actualStable,
		WithMSE:          withCal.MSE,
		WithoutMSE:       withoutCal.MSE,
		LastValueMSE:     lvMSE,
		ExtrapolationMSE: leMSE,
	}
	// Align the two replays (identical targets by construction).
	for i, p := range withCal.Points {
		res.Series = append(res.Series, Fig1bSeries{
			T:           p.Target,
			Empirical:   p.Actual,
			Calibrated:  p.Predicted,
			Uncalibrate: withoutCal.Points[i].Predicted,
		})
	}
	return res, nil
}

// Render prints the case-study summary and a downsampled series table.
func (r *Fig1bResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 1(b): dynamic CPU temperature prediction case study (%s)\n", r.CaseName)
	fmt.Fprintf(&sb, "psi_stable: predicted %.2f°C, measured %.2f°C\n", r.PredictedStable, r.ActualStable)
	fmt.Fprintf(&sb, "%-28s %10s\n", "method", "MSE")
	fmt.Fprintf(&sb, "%-28s %10.3f\n", "with calibration (λ=0.8)", r.WithMSE)
	fmt.Fprintf(&sb, "%-28s %10.3f\n", "without calibration (λ=0)", r.WithoutMSE)
	fmt.Fprintf(&sb, "%-28s %10.3f\n", "last-value baseline", r.LastValueMSE)
	fmt.Fprintf(&sb, "%-28s %10.3f\n", "linear-extrapolation", r.ExtrapolationMSE)
	fmt.Fprintf(&sb, "\n%8s %10s %12s %12s\n", "t(s)", "empirical", "calibrated", "uncalibrated")
	step := len(r.Series) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Series); i += step {
		s := r.Series[i]
		fmt.Fprintf(&sb, "%8.0f %10.2f %12.2f %12.2f\n", s.T, s.Empirical, s.Calibrated, s.Uncalibrate)
	}
	return sb.String()
}
