package experiments

import (
	"context"
	"strings"
	"testing"
)

// fastFig1a shrinks the experiment for unit-test time while keeping its
// structure; benches and cmd run the full shape.
func fastFig1a(seed int64) Fig1aConfig {
	cfg := DefaultFig1aConfig(seed)
	cfg.TrainCases = 48
	cfg.TestCases = 8
	return cfg
}

func fastFig1b(seed int64) Fig1bConfig {
	cfg := DefaultFig1bConfig(seed)
	cfg.TrainCases = 32
	return cfg
}

func TestFig1aReproducesPaperBand(t *testing.T) {
	res, err := RunFig1a(context.Background(), fastFig1a(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 8 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	// Paper: average MSE within 1.10 on the full experiment; the scaled-down
	// training set earns a looser but still-tight bound.
	if res.MSE > 2.0 {
		t.Errorf("Fig1a MSE = %v, want < 2.0", res.MSE)
	}
	for _, c := range res.Cases {
		if c.VMs < 1 || c.VMs > 12 {
			t.Errorf("case %s has %d VMs, outside 2-12 shape", c.Name, c.VMs)
		}
		if c.Actual < 18 || c.Actual > 110 {
			t.Errorf("case %s actual %v implausible", c.Name, c.Actual)
		}
	}
	text := res.Render()
	for _, want := range []string{"Fig 1(a)", "average MSE", "grid:"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig1aValidation(t *testing.T) {
	cfg := fastFig1a(1)
	cfg.TrainCases = 1
	if _, err := RunFig1a(context.Background(), cfg); err == nil {
		t.Error("tiny training set should fail validation")
	}
	cfg = fastFig1a(1)
	cfg.TestCases = 0
	if _, err := RunFig1a(context.Background(), cfg); err == nil {
		t.Error("zero test cases should fail validation")
	}
}

func TestFig1bCalibrationWins(t *testing.T) {
	res, err := RunFig1b(context.Background(), fastFig1b(2))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig 1(b) claim: calibration lowers MSE.
	if res.WithMSE >= res.WithoutMSE {
		t.Errorf("calibrated MSE %v should beat uncalibrated %v", res.WithMSE, res.WithoutMSE)
	}
	if len(res.Series) == 0 {
		t.Fatal("no plot series")
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].T <= res.Series[i-1].T {
			t.Fatal("series not time-ordered")
		}
	}
	text := res.Render()
	for _, want := range []string{"Fig 1(b)", "with calibration", "without calibration", "empirical"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig1bValidation(t *testing.T) {
	cfg := fastFig1b(1)
	cfg.CaseVMs = 0
	if _, err := RunFig1b(context.Background(), cfg); err == nil {
		t.Error("zero case VMs should fail")
	}
}

func TestFig1cSweepShapeAndTrends(t *testing.T) {
	cfg := DefaultFig1cConfig(3)
	cfg.TrainCases = 32
	cfg.Cases = 4
	cfg.GapsS = []float64{15, 60, 240}
	cfg.UpdatesS = []float64{5, 30}
	res, err := RunFig1c(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MSE) != 3 || len(res.MSE[0]) != 2 {
		t.Fatalf("matrix shape %dx%d", len(res.MSE), len(res.MSE[0]))
	}
	// Larger prediction gaps must not get dramatically easier; across the
	// paper's sweep MSE grows with gap. Compare the extremes at the fastest
	// update rate.
	if res.MSE[2][0] <= res.MSE[0][0] {
		t.Errorf("MSE at gap 240 (%v) should exceed gap 15 (%v)", res.MSE[2][0], res.MSE[0][0])
	}
	// All cells positive and finite.
	for gi := range res.MSE {
		for ui := range res.MSE[gi] {
			if res.MSE[gi][ui] <= 0 || res.MSE[gi][ui] > 100 {
				t.Errorf("cell [%d][%d] = %v implausible", gi, ui, res.MSE[gi][ui])
			}
		}
	}
	text := res.Render()
	if !strings.Contains(text, "Fig 1(c)") || !strings.Contains(text, "gap\\update") {
		t.Error("render malformed")
	}
}

func TestFig1cValidation(t *testing.T) {
	cfg := DefaultFig1cConfig(1)
	cfg.GapsS = nil
	if _, err := RunFig1c(context.Background(), cfg); err == nil {
		t.Error("empty axis should fail")
	}
}

func TestAblationLambdaZeroIsWorst(t *testing.T) {
	cfg := fastFig1b(4)
	res, err := RunAblationLambda(context.Background(), cfg, []float64{0, 0.4, 0.8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MSEs) != 3 {
		t.Fatalf("sweep rows = %d", len(res.MSEs))
	}
	// λ=0 (no calibration) must lose to the paper's λ=0.8.
	if res.MSEs[0] <= res.MSEs[2] {
		t.Errorf("λ=0 MSE %v should exceed λ=0.8 MSE %v", res.MSEs[0], res.MSEs[2])
	}
	if !strings.Contains(res.Render(), "lambda") {
		t.Error("render missing parameter name")
	}
}

func TestAblationCurveDelta(t *testing.T) {
	cfg := fastFig1b(5)
	res, err := RunAblationCurveDelta(context.Background(), cfg, []float64{5, 30, 120}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MSEs) != 3 {
		t.Fatalf("sweep rows = %d", len(res.MSEs))
	}
	for _, m := range res.MSEs {
		if m <= 0 {
			t.Errorf("delta sweep produced MSE %v", m)
		}
	}
}

func TestAblationBaselinesSVMWins(t *testing.T) {
	cfg := fastFig1a(6)
	res, err := RunAblationBaselines(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{}
	for _, row := range res.Rows {
		scores[row.Name] = row.MSE
	}
	if len(scores) != 5 {
		t.Fatalf("expected 5 models, got %d", len(scores))
	}
	// The paper's core claim: the SVM beats the heterogeneity-blind
	// baselines it was designed to replace.
	if scores["svm-rbf"] >= scores["task-profile"] {
		t.Errorf("svm (%v) should beat task-profile (%v)", scores["svm-rbf"], scores["task-profile"])
	}
	if scores["svm-rbf"] >= scores["mean"] {
		t.Errorf("svm (%v) should beat mean (%v)", scores["svm-rbf"], scores["mean"])
	}
	if scores["svm-rbf"] >= scores["rc-model"] {
		t.Errorf("svm (%v) should beat rc-model (%v)", scores["svm-rbf"], scores["rc-model"])
	}
	if !strings.Contains(res.Render(), "svm-rbf") {
		t.Error("render missing svm row")
	}
}

func TestAblationFans(t *testing.T) {
	cfg := fastFig1a(7)
	res, err := RunAblationFans(context.Background(), cfg, []int{2, 4, 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MSEs) != 3 || len(res.Values) != 3 {
		t.Fatalf("sweep shape %d/%d", len(res.Values), len(res.MSEs))
	}
	for i, m := range res.MSEs {
		if m <= 0 || m > 50 {
			t.Errorf("fan %g MSE = %v implausible", res.Values[i], m)
		}
	}
}

func TestAblationValidation(t *testing.T) {
	cfg := fastFig1b(1)
	if _, err := RunAblationLambda(context.Background(), cfg, nil, 2); err == nil {
		t.Error("empty lambda axis should fail")
	}
	if _, err := RunAblationCurveDelta(context.Background(), cfg, nil, 2); err == nil {
		t.Error("empty delta axis should fail")
	}
	if _, err := RunAblationFans(context.Background(), fastFig1a(1), nil, 2); err == nil {
		t.Error("empty fans axis should fail")
	}
}

func TestMigrationStudy(t *testing.T) {
	cfg := fastFig1b(9)
	res, err := RunMigrationStudy(context.Background(), cfg, 900)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration must carry prediction through the migration transient.
	if res.WithMSE >= res.WithoutMSE {
		t.Errorf("calibrated MSE %v should beat uncalibrated %v", res.WithMSE, res.WithoutMSE)
	}
	// The post-migration anchor should be in the right neighbourhood.
	if diff := res.PredictedStable - res.ActualStable; diff > 5 || diff < -5 {
		t.Errorf("post-migration stable prediction off by %v", diff)
	}
	if !strings.Contains(res.Render(), "Migration study") {
		t.Error("render malformed")
	}
}

func TestMigrationStudyValidation(t *testing.T) {
	cfg := fastFig1b(1)
	if _, err := RunMigrationStudy(context.Background(), cfg, 0); err == nil {
		t.Error("zero migration time should fail")
	}
	if _, err := RunMigrationStudy(context.Background(), cfg, 1e9); err == nil {
		t.Error("migration beyond run should fail")
	}
}

func TestAblationSensorNoise(t *testing.T) {
	cfg := fastFig1a(10)
	res, err := RunAblationSensorNoise(context.Background(), cfg, []float64{0, 0.4, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MSEs) != 3 {
		t.Fatalf("rows = %d", len(res.MSEs))
	}
	// ψ_stable averages ~240 post-break samples, so per-read noise divides
	// by √240 and the stable-prediction MSE stays nearly flat across σ —
	// the ablation's (negative) finding. Assert sanity, not monotonicity.
	for i, m := range res.MSEs {
		if m <= 0 || m > 25 {
			t.Errorf("σ=%v MSE = %v implausible", res.Values[i], m)
		}
	}
	if _, err := RunAblationSensorNoise(context.Background(), cfg, nil); err == nil {
		t.Error("empty axis should fail")
	}
	if _, err := RunAblationSensorNoise(context.Background(), cfg, []float64{-1}); err == nil {
		t.Error("negative sigma should fail")
	}
}
