// Package experiments regenerates the paper's evaluation: Fig. 1(a) stable
// prediction over 20 randomized cases, Fig. 1(b) the calibrated-vs-
// uncalibrated dynamic case study, Fig. 1(c) the Δ_gap × Δ_update accuracy
// sweep — plus the ablations DESIGN.md calls out (λ, curve δ, baselines,
// fan count). Each experiment returns a typed result with a Render method
// that prints the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/mathx"
	"vmtherm/internal/mlgrid"
	"vmtherm/internal/workload"
)

// Fig1aConfig parameterizes the stable-prediction experiment.
type Fig1aConfig struct {
	// TrainCases and TestCases size the experiment; the paper evaluates on
	// 20 randomized test cases with 2–12 VMs.
	TrainCases, TestCases int
	// Seed drives case generation and simulation.
	Seed int64
	// Gen bounds the randomized cases.
	Gen workload.GenOptions
	// Build configures the simulated experiment runs.
	Build dataset.BuildOptions
	// Stable configures the SVM pipeline.
	Stable core.StableConfig
}

// DefaultFig1aConfig reproduces the paper's shape: 20 test cases, 2–12 VMs.
func DefaultFig1aConfig(seed int64) Fig1aConfig {
	return Fig1aConfig{
		TrainCases: 160,
		TestCases:  20,
		Seed:       seed,
		Gen:        workload.DefaultGenOptions(),
		Build:      dataset.DefaultBuildOptions(seed),
		Stable:     core.FastStableConfig(),
	}
}

// Validate checks the configuration.
func (c Fig1aConfig) Validate() error {
	if c.TrainCases < 10 {
		return fmt.Errorf("experiments: %d training cases too few", c.TrainCases)
	}
	if c.TestCases < 1 {
		return fmt.Errorf("experiments: %d test cases too few", c.TestCases)
	}
	return nil
}

// Fig1aCase is one test case's outcome — one bar pair in the paper's figure.
type Fig1aCase struct {
	Name      string
	VMs       int
	Actual    float64 // measured ψ_stable (Eq. 1 on the test trace)
	Predicted float64 // SVM prediction
	SqErr     float64
}

// Fig1aResult is the full experiment outcome.
type Fig1aResult struct {
	Cases []Fig1aCase
	// MSE is the average mean squared error across test cases; the paper
	// reports ≤ 1.10.
	MSE float64
	// Best is the winning grid point; CVMSE its cross-validated score.
	Best  mlgrid.Point
	CVMSE float64
}

// RunFig1a trains the paper pipeline on TrainCases simulated experiments and
// evaluates stable prediction on TestCases held-out randomized cases.
func RunFig1a(ctx context.Context, cfg Fig1aConfig) (*Fig1aResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trainCases, err := workload.GenerateCases(cfg.Gen, cfg.Seed, "train", cfg.TrainCases)
	if err != nil {
		return nil, err
	}
	testCases, err := workload.GenerateCases(cfg.Gen, cfg.Seed+1, "test", cfg.TestCases)
	if err != nil {
		return nil, err
	}
	trainRecs, err := dataset.Build(ctx, trainCases, cfg.Build)
	if err != nil {
		return nil, err
	}
	testRecs, err := dataset.Build(ctx, testCases, cfg.Build)
	if err != nil {
		return nil, err
	}
	pred, err := core.TrainStable(ctx, trainRecs, cfg.Stable)
	if err != nil {
		return nil, err
	}

	res := &Fig1aResult{Best: pred.Best(), CVMSE: pred.CVMSE()}
	var ps, as []float64
	for i, rec := range testRecs {
		p, err := pred.PredictFeatures(rec.Features)
		if err != nil {
			return nil, err
		}
		d := p - rec.StableTemp
		res.Cases = append(res.Cases, Fig1aCase{
			Name:      rec.CaseName,
			VMs:       len(testCases[i].VMs),
			Actual:    rec.StableTemp,
			Predicted: p,
			SqErr:     d * d,
		})
		ps = append(ps, p)
		as = append(as, rec.StableTemp)
	}
	if res.MSE, err = mathx.MSE(ps, as); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the per-case table and summary, mirroring Fig. 1(a).
func (r *Fig1aResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 1(a): stable CPU temperature prediction, %d randomized cases\n", len(r.Cases))
	fmt.Fprintf(&sb, "%-12s %4s %10s %10s %8s\n", "case", "VMs", "actual°C", "pred°C", "sqErr")
	cases := make([]Fig1aCase, len(r.Cases))
	copy(cases, r.Cases)
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	for _, c := range cases {
		fmt.Fprintf(&sb, "%-12s %4d %10.2f %10.2f %8.3f\n", c.Name, c.VMs, c.Actual, c.Predicted, c.SqErr)
	}
	fmt.Fprintf(&sb, "grid: C=%g gamma=%g eps=%g (cv MSE %.3f)\n", r.Best.C, r.Best.Gamma, r.Best.Epsilon, r.CVMSE)
	fmt.Fprintf(&sb, "average MSE = %.3f  (paper reports within 1.10)\n", r.MSE)
	return sb.String()
}
