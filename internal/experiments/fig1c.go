package experiments

import (
	"context"
	"fmt"
	"strings"

	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/mathx"
	"vmtherm/internal/testbed"
	"vmtherm/internal/workload"
)

// Fig1cConfig parameterizes the Δ_gap × Δ_update accuracy sweep.
type Fig1cConfig struct {
	// Seed drives everything.
	Seed int64
	// GapsS and UpdatesS enumerate the sweep axes (seconds).
	GapsS, UpdatesS []float64
	// Cases is how many randomized dynamic cases each cell averages over.
	Cases int
	// FanCount pins the server cooling ("with 4 server fans" in the paper).
	FanCount int
	// TrainCases sizes the ψ_stable training set.
	TrainCases int
	// Gen bounds case generation.
	Gen workload.GenOptions
	// Build configures simulation runs.
	Build dataset.BuildOptions
	// Stable configures SVM training.
	Stable core.StableConfig
	// Lambda is the calibration learning rate.
	Lambda float64
	// TBreakS and CurveDeltaS shape the Eq. (3) curve.
	TBreakS, CurveDeltaS float64
}

// DefaultFig1cConfig sweeps a superset of the paper's axes with 4 fans.
func DefaultFig1cConfig(seed int64) Fig1cConfig {
	gen := workload.DefaultGenOptions()
	gen.Dynamic = true
	return Fig1cConfig{
		Seed:        seed,
		GapsS:       []float64{15, 30, 60, 120, 240},
		UpdatesS:    []float64{5, 15, 30, 60},
		Cases:       12,
		FanCount:    4,
		TrainCases:  80,
		Gen:         gen,
		Build:       dataset.DefaultBuildOptions(seed),
		Stable:      core.FastStableConfig(),
		Lambda:      core.DefaultLambda,
		TBreakS:     600,
		CurveDeltaS: core.DefaultCurveDelta,
	}
}

// Validate checks the sweep configuration.
func (c Fig1cConfig) Validate() error {
	if len(c.GapsS) == 0 || len(c.UpdatesS) == 0 {
		return fmt.Errorf("experiments: empty sweep axis")
	}
	if c.Cases < 1 {
		return fmt.Errorf("experiments: cases %d < 1", c.Cases)
	}
	if c.TrainCases < 10 {
		return fmt.Errorf("experiments: %d training cases too few", c.TrainCases)
	}
	return nil
}

// Fig1cResult is the sweep outcome: MSE[gap][update].
type Fig1cResult struct {
	GapsS, UpdatesS []float64
	// MSE is indexed [gap][update].
	MSE [][]float64
}

// RunFig1c trains the stable model once, simulates Cases dynamic traces with
// FanCount fans, and replays each (Δ_gap, Δ_update) combination over all
// traces.
func RunFig1c(ctx context.Context, cfg Fig1cConfig) (*Fig1cResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trainGen := cfg.Gen
	trainGen.Dynamic = false
	trainCases, err := workload.GenerateCases(trainGen, cfg.Seed, "train", cfg.TrainCases)
	if err != nil {
		return nil, err
	}
	trainRecs, err := dataset.Build(ctx, trainCases, cfg.Build)
	if err != nil {
		return nil, err
	}
	pred, err := core.TrainStable(ctx, trainRecs, cfg.Stable)
	if err != nil {
		return nil, err
	}

	// Simulate the dynamic evaluation traces once; every cell replays them.
	evalGen := cfg.Gen
	evalGen.Dynamic = true
	evalGen.FanChoices = []int{cfg.FanCount}
	evalCases, err := workload.GenerateCases(evalGen, cfg.Seed+3, "sweep", cfg.Cases)
	if err != nil {
		return nil, err
	}
	curves := make([]core.Curve, len(evalCases))
	traces := make([]*testbed.Result, len(evalCases))
	for i, c := range evalCases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rig, err := testbed.New(c, testbed.Options{Seed: cfg.Seed + 100 + int64(i)})
		if err != nil {
			return nil, err
		}
		run, err := rig.Run(cfg.Build.Run)
		if err != nil {
			return nil, err
		}
		phi0, _, err := core.ProfileTrace(run.SensorTemps, cfg.TBreakS)
		if err != nil {
			return nil, err
		}
		stable, err := pred.PredictCase(c, cfg.Build.Run.DurationS)
		if err != nil {
			return nil, err
		}
		curve, err := core.NewCurve(phi0, stable, cfg.TBreakS, cfg.CurveDeltaS)
		if err != nil {
			return nil, err
		}
		curves[i] = curve
		traces[i] = run
	}

	res := &Fig1cResult{GapsS: cfg.GapsS, UpdatesS: cfg.UpdatesS}
	res.MSE = make([][]float64, len(cfg.GapsS))
	for gi, gap := range cfg.GapsS {
		res.MSE[gi] = make([]float64, len(cfg.UpdatesS))
		for ui, upd := range cfg.UpdatesS {
			var cellMSEs []float64
			for i := range evalCases {
				rr, err := core.Replay(traces[i].SensorTemps, curves[i], core.DynamicConfig{
					Lambda:       cfg.Lambda,
					UpdateEveryS: upd,
					GapS:         gap,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: gap %v update %v case %s: %w",
						gap, upd, evalCases[i].Name, err)
				}
				cellMSEs = append(cellMSEs, rr.MSE)
			}
			m, err := mathx.Mean(cellMSEs)
			if err != nil {
				return nil, err
			}
			res.MSE[gi][ui] = m
		}
	}
	return res, nil
}

// Render prints the MSE matrix with gaps as rows and updates as columns.
func (r *Fig1cResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 1(c): dynamic prediction MSE, Δ_gap × Δ_update (4 fans)\n")
	fmt.Fprintf(&sb, "%12s", "gap\\update")
	for _, u := range r.UpdatesS {
		fmt.Fprintf(&sb, "%8.0fs", u)
	}
	sb.WriteByte('\n')
	for gi, g := range r.GapsS {
		fmt.Fprintf(&sb, "%11.0fs", g)
		for ui := range r.UpdatesS {
			fmt.Fprintf(&sb, "%9.3f", r.MSE[gi][ui])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "(paper band: 0.70–1.50 across the sweep)\n")
	return sb.String()
}
