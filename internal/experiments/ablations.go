package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"vmtherm/internal/baseline"
	"vmtherm/internal/core"
	"vmtherm/internal/dataset"
	"vmtherm/internal/mathx"
	"vmtherm/internal/testbed"
	"vmtherm/internal/thermal"
	"vmtherm/internal/workload"
)

// SweepResult is a generic one-axis ablation outcome: parameter → mean MSE.
type SweepResult struct {
	Title  string
	Param  string
	Values []float64
	MSEs   []float64
}

// Render prints the sweep as a two-column table.
func (r *SweepResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.Title)
	fmt.Fprintf(&sb, "%12s %10s\n", r.Param, "MSE")
	for i, v := range r.Values {
		fmt.Fprintf(&sb, "%12g %10.3f\n", v, r.MSEs[i])
	}
	return sb.String()
}

// dynamicTraces simulates n dynamic cases and returns their sensor traces
// with per-case Eq. (3) anchors from a trained stable model.
func dynamicTraces(ctx context.Context, cfg Fig1bConfig, n int) ([]*testbed.Result, []core.Curve, error) {
	trainGen := cfg.Gen
	trainGen.Dynamic = false
	trainCases, err := workload.GenerateCases(trainGen, cfg.Seed, "train", cfg.TrainCases)
	if err != nil {
		return nil, nil, err
	}
	trainRecs, err := dataset.Build(ctx, trainCases, cfg.Build)
	if err != nil {
		return nil, nil, err
	}
	pred, err := core.TrainStable(ctx, trainRecs, cfg.Stable)
	if err != nil {
		return nil, nil, err
	}

	evalGen := cfg.Gen
	evalGen.Dynamic = true
	evalGen.FanChoices = []int{cfg.FanCount}
	evalCases, err := workload.GenerateCases(evalGen, cfg.Seed+5, "abl", n)
	if err != nil {
		return nil, nil, err
	}
	traces := make([]*testbed.Result, n)
	curves := make([]core.Curve, n)
	for i, c := range evalCases {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		rig, err := testbed.New(c, testbed.Options{Seed: cfg.Seed + 200 + int64(i)})
		if err != nil {
			return nil, nil, err
		}
		run, err := rig.Run(cfg.Build.Run)
		if err != nil {
			return nil, nil, err
		}
		phi0, _, err := core.ProfileTrace(run.SensorTemps, cfg.TBreakS)
		if err != nil {
			return nil, nil, err
		}
		stable, err := pred.PredictCase(c, cfg.Build.Run.DurationS)
		if err != nil {
			return nil, nil, err
		}
		curve, err := core.NewCurve(phi0, stable, cfg.TBreakS, cfg.CurveDeltaS)
		if err != nil {
			return nil, nil, err
		}
		traces[i] = run
		curves[i] = curve
	}
	return traces, curves, nil
}

// RunAblationLambda sweeps the calibration learning rate λ (Abl. A).
func RunAblationLambda(ctx context.Context, cfg Fig1bConfig, lambdas []float64, cases int) (*SweepResult, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("experiments: empty lambda axis")
	}
	traces, curves, err := dynamicTraces(ctx, cfg, cases)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Title:  "Ablation A: calibration learning rate λ (paper uses 0.8)",
		Param:  "lambda",
		Values: lambdas,
	}
	for _, l := range lambdas {
		var mses []float64
		for i := range traces {
			rr, err := core.Replay(traces[i].SensorTemps, curves[i], core.DynamicConfig{
				Lambda:       l,
				UpdateEveryS: cfg.Dynamic.UpdateEveryS,
				GapS:         cfg.Dynamic.GapS,
			})
			if err != nil {
				return nil, err
			}
			mses = append(mses, rr.MSE)
		}
		m, err := mathx.Mean(mses)
		if err != nil {
			return nil, err
		}
		res.MSEs = append(res.MSEs, m)
	}
	return res, nil
}

// RunAblationCurveDelta sweeps the Eq. (3) curvature δ (Abl. B).
func RunAblationCurveDelta(ctx context.Context, cfg Fig1bConfig, deltas []float64, cases int) (*SweepResult, error) {
	if len(deltas) == 0 {
		return nil, fmt.Errorf("experiments: empty delta axis")
	}
	traces, curves, err := dynamicTraces(ctx, cfg, cases)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Title:  "Ablation B: pre-defined curve curvature δ (seconds)",
		Param:  "delta",
		Values: deltas,
	}
	for _, d := range deltas {
		var mses []float64
		for i := range traces {
			curve := curves[i]
			curve.DeltaS = d
			rr, err := core.Replay(traces[i].SensorTemps, curve, cfg.Dynamic)
			if err != nil {
				return nil, err
			}
			mses = append(mses, rr.MSE)
		}
		m, err := mathx.Mean(mses)
		if err != nil {
			return nil, err
		}
		res.MSEs = append(res.MSEs, m)
	}
	return res, nil
}

// BaselineRow is one predictor's score in the comparison ablation.
type BaselineRow struct {
	Name string
	MSE  float64
}

// BaselineResult compares the SVM pipeline against every baseline (Abl. C).
type BaselineResult struct {
	Rows []BaselineRow
}

// Render prints the comparison sorted best-first.
func (r *BaselineResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation C: stable prediction, SVM vs. baselines\n")
	fmt.Fprintf(&sb, "%-16s %10s\n", "model", "MSE")
	rows := make([]BaselineRow, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool { return rows[i].MSE < rows[j].MSE })
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-16s %10.3f\n", row.Name, row.MSE)
	}
	return sb.String()
}

// RunAblationBaselines trains everything on the same split and compares test
// MSE (Abl. C). The SVM appears as "svm-rbf".
func RunAblationBaselines(ctx context.Context, cfg Fig1aConfig) (*BaselineResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trainCases, err := workload.GenerateCases(cfg.Gen, cfg.Seed, "train", cfg.TrainCases)
	if err != nil {
		return nil, err
	}
	testCases, err := workload.GenerateCases(cfg.Gen, cfg.Seed+1, "test", cfg.TestCases)
	if err != nil {
		return nil, err
	}
	trainRecs, err := dataset.Build(ctx, trainCases, cfg.Build)
	if err != nil {
		return nil, err
	}
	testRecs, err := dataset.Build(ctx, testCases, cfg.Build)
	if err != nil {
		return nil, err
	}

	res := &BaselineResult{}
	svmPred, err := core.TrainStable(ctx, trainRecs, cfg.Stable)
	if err != nil {
		return nil, err
	}
	var ps, as []float64
	for _, rec := range testRecs {
		p, err := svmPred.PredictFeatures(rec.Features)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
		as = append(as, rec.StableTemp)
	}
	svmMSE, err := mathx.MSE(ps, as)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, BaselineRow{Name: "svm-rbf", MSE: svmMSE})

	for _, b := range baseline.All() {
		mse, err := baseline.Evaluate(b, trainRecs, testRecs)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, BaselineRow{Name: b.Name(), MSE: mse})
	}
	return res, nil
}

// RunAblationSensorNoise sweeps the sensor noise σ and measures stable-
// prediction MSE (Abl. E). Finding: the sweep is nearly flat, because
// Eq. (1)'s ψ_stable averages hundreds of post-break samples and read noise
// divides by √n — so the Fig. 1(a) error floor is model approximation over
// the case distribution, not the sensor path. (Dynamic prediction, whose
// targets are single samples, does pay σ directly; see Fig. 1(c)'s floor.)
func RunAblationSensorNoise(ctx context.Context, cfg Fig1aConfig, sigmas []float64) (*SweepResult, error) {
	if len(sigmas) == 0 {
		return nil, fmt.Errorf("experiments: empty sigma axis")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &SweepResult{
		Title:  "Ablation E: stable prediction MSE by sensor noise σ (°C)",
		Param:  "sigma",
		Values: sigmas,
	}
	for _, sigma := range sigmas {
		if sigma < 0 {
			return nil, fmt.Errorf("experiments: negative sigma %v", sigma)
		}
		build := cfg.Build
		build.Rig.Sensor = thermal.SensorParams{NoiseStdC: sigma, QuantizationC: 0.25}
		trainCases, err := workload.GenerateCases(cfg.Gen, cfg.Seed, "train", cfg.TrainCases)
		if err != nil {
			return nil, err
		}
		testCases, err := workload.GenerateCases(cfg.Gen, cfg.Seed+1, "test", cfg.TestCases)
		if err != nil {
			return nil, err
		}
		trainRecs, err := dataset.Build(ctx, trainCases, build)
		if err != nil {
			return nil, err
		}
		testRecs, err := dataset.Build(ctx, testCases, build)
		if err != nil {
			return nil, err
		}
		pred, err := core.TrainStable(ctx, trainRecs, cfg.Stable)
		if err != nil {
			return nil, err
		}
		var ps, as []float64
		for _, rec := range testRecs {
			p, err := pred.PredictFeatures(rec.Features)
			if err != nil {
				return nil, err
			}
			ps = append(ps, p)
			as = append(as, rec.StableTemp)
		}
		mse, err := mathx.MSE(ps, as)
		if err != nil {
			return nil, err
		}
		res.MSEs = append(res.MSEs, mse)
	}
	return res, nil
}

// RunAblationFans measures stable-prediction error grouped by fan count
// (Abl. D): the model trains on mixed fan counts and is scored per group.
func RunAblationFans(ctx context.Context, cfg Fig1aConfig, fanCounts []int, casesPerFan int) (*SweepResult, error) {
	if len(fanCounts) == 0 || casesPerFan < 1 {
		return nil, fmt.Errorf("experiments: invalid fan ablation axes")
	}
	gen := cfg.Gen
	gen.FanChoices = fanCounts
	trainCases, err := workload.GenerateCases(gen, cfg.Seed, "train", cfg.TrainCases)
	if err != nil {
		return nil, err
	}
	trainRecs, err := dataset.Build(ctx, trainCases, cfg.Build)
	if err != nil {
		return nil, err
	}
	pred, err := core.TrainStable(ctx, trainRecs, cfg.Stable)
	if err != nil {
		return nil, err
	}

	res := &SweepResult{
		Title:  "Ablation D: stable prediction MSE by fan count",
		Param:  "fans",
		Values: make([]float64, 0, len(fanCounts)),
	}
	for _, fans := range fanCounts {
		fanGen := gen
		fanGen.FanChoices = []int{fans}
		cases, err := workload.GenerateCases(fanGen, cfg.Seed+int64(10+fans), fmt.Sprintf("fan%d", fans), casesPerFan)
		if err != nil {
			return nil, err
		}
		recs, err := dataset.Build(ctx, cases, cfg.Build)
		if err != nil {
			return nil, err
		}
		var ps, as []float64
		for _, rec := range recs {
			p, err := pred.PredictFeatures(rec.Features)
			if err != nil {
				return nil, err
			}
			ps = append(ps, p)
			as = append(as, rec.StableTemp)
		}
		mse, err := mathx.MSE(ps, as)
		if err != nil {
			return nil, err
		}
		res.Values = append(res.Values, float64(fans))
		res.MSEs = append(res.MSEs, mse)
	}
	return res, nil
}
