package sim

import (
	"errors"
	"math"
	"testing"
)

func TestRunOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []string
	add := func(name string) Handler {
		return func(*Engine) { order = append(order, name) }
	}
	if err := e.Schedule(3, "c", add("c")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(1, "a", add("a")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(2, "b", add("b")); err != nil {
		t.Fatal(err)
	}
	n, err := e.RunUntil(10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("executed %d events, want 3", n)
	}
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want horizon 10", e.Now())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		if err := e.Schedule(5, "tie", func(*Engine) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order[%d] = %d; same-time events must run in insertion order", i, v)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(5, "x", func(*Engine) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(3, "late", func(*Engine) {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
}

func TestScheduleInvalidTime(t *testing.T) {
	e := NewEngine()
	bad := []float64{nan(), inf()}
	for _, at := range bad {
		if err := e.Schedule(at, "bad", func(*Engine) {}); err == nil {
			t.Errorf("Schedule(%v) should fail", at)
		}
	}
}

func TestScheduleAfterNegative(t *testing.T) {
	e := NewEngine()
	if err := e.ScheduleAfter(-1, "x", func(*Engine) {}); err == nil {
		t.Fatal("negative delay should fail")
	}
}

func TestHorizonStopsBeforeLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := false
	if err := e.Schedule(100, "far", func(*Engine) { ran = true }); err != nil {
		t.Fatal(err)
	}
	n, err := e.RunUntil(50)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || ran {
		t.Error("event beyond horizon must not run")
	}
	if e.Now() != 50 {
		t.Errorf("clock = %v, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// The event still fires on a later run.
	if _, err := e.RunUntil(150); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("deferred event never ran")
	}
}

func TestRunUntilRequiresFutureHorizon(t *testing.T) {
	e := NewEngine()
	if _, err := e.RunUntil(0); !errors.Is(err, ErrDeadlineRequired) {
		t.Errorf("err = %v, want ErrDeadlineRequired", err)
	}
}

func TestEveryPeriodicAndCancel(t *testing.T) {
	e := NewEngine()
	count := 0
	stop, err := e.Every(10, "tick", func(en *Engine) {
		count++
		if count == 3 {
			// Cancel from inside the handler after the third tick.
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	// Ticks at t=0, 10, 20.
	if count != 3 {
		t.Errorf("ticks = %d, want 3", count)
	}
	stop()
	if _, err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("ticks after stop = %d, want 3", count)
	}
}

func TestEveryInvalidPeriod(t *testing.T) {
	e := NewEngine()
	if _, err := e.Every(0, "bad", func(*Engine) {}); err == nil {
		t.Fatal("zero period should fail")
	}
}

func TestStopHaltsLoop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		if err := e.Schedule(float64(i), "n", func(en *Engine) {
			count++
			if i == 4 {
				en.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.RunUntil(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || count != 4 {
		t.Errorf("executed %d/%d, want 4", n, count)
	}
	// A fresh RunUntil resumes with remaining events.
	n, err = e.RunUntil(200)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("resumed run executed %d, want 6", n)
	}
}

func TestHandlerSchedulesMoreEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse Handler
	recurse = func(en *Engine) {
		depth++
		if depth < 5 {
			if err := en.ScheduleAfter(1, "r", recurse); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.Schedule(0, "r", recurse); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
}

func nan() float64 { return math.NaN() }

func inf() float64 { return math.Inf(1) }
