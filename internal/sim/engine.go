// Package sim implements a small deterministic discrete-event simulation
// engine: a virtual clock, a priority event queue with stable tie-breaking,
// and periodic processes. The thermal testbed (internal/thermal,
// internal/vmm) runs entirely on this engine, which is what lets the whole
// evaluation execute in milliseconds of wall time and reproduce exactly
// across runs.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Handler is invoked when its event fires. The handler may schedule further
// events on the engine.
type Handler func(e *Engine)

type event struct {
	at   float64
	seq  uint64 // insertion order; breaks ties deterministically
	name string
	fn   Handler
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     float64
	queue   eventQueue
	nextSeq uint64
	stopped bool
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule enqueues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) is an error; scheduling exactly at Now is allowed and
// runs after currently-pending events at the same timestamp.
func (e *Engine) Schedule(at float64, name string, fn Handler) error {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return fmt.Errorf("sim: invalid event time %v", at)
	}
	if at < e.now {
		return fmt.Errorf("sim: schedule %q at %v before now %v", name, at, e.now)
	}
	heap.Push(&e.queue, &event{at: at, seq: e.nextSeq, name: name, fn: fn})
	e.nextSeq++
	return nil
}

// ScheduleAfter enqueues fn to run delay seconds from now.
func (e *Engine) ScheduleAfter(delay float64, name string, fn Handler) error {
	if delay < 0 {
		return fmt.Errorf("sim: negative delay %v for %q", delay, name)
	}
	return e.Schedule(e.now+delay, name, fn)
}

// Every schedules fn to run now and then at a fixed period until the engine
// stops or until fn's registration is cancelled via the returned stop
// function.
func (e *Engine) Every(period float64, name string, fn Handler) (stop func(), err error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v for %q", period, name)
	}
	cancelled := false
	var tick Handler
	tick = func(en *Engine) {
		if cancelled {
			return
		}
		fn(en)
		// Re-arm; scheduling from a handler cannot fail because the target
		// time is strictly in the future.
		_ = en.Schedule(en.now+period, name, tick)
	}
	if err := e.Schedule(e.now, name, tick); err != nil {
		return nil, err
	}
	return func() { cancelled = true }, nil
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// ErrDeadlineRequired is returned by Run when the horizon is not positive.
var ErrDeadlineRequired = errors.New("sim: RunUntil horizon must be > start time")

// RunUntil executes events in timestamp order until the queue is empty, the
// engine is stopped, or the next event would fire after horizon. The clock
// is left at min(horizon, time of last executed event). It returns the
// number of events executed.
func (e *Engine) RunUntil(horizon float64) (int, error) {
	if horizon <= e.now {
		return 0, ErrDeadlineRequired
	}
	e.stopped = false
	count := 0
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn(e)
		count++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return count, nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
