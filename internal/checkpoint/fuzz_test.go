package checkpoint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate the committed seed corpus with:
//
//	go test ./internal/checkpoint -run TestWriteFuzzCorpus -write-corpus
var writeCorpus = flag.Bool("write-corpus", false, "regenerate testdata/fuzz seed corpus")

// corpusSeeds are the byte inputs seeded both via f.Add and as committed
// corpus files, so `go test` exercises them even without -fuzz.
func corpusSeeds(t testing.TB) [][]byte {
	small := &State{Round: 3, SourceName: "trace", SourceNowS: 45, Order: []string{"h0"}}
	var valid bytes.Buffer
	if _, err := Encode(&valid, 1, small); err != nil {
		t.Fatal(err)
	}
	var empty bytes.Buffer
	if _, err := Encode(&empty, 2, &State{}); err != nil {
		t.Fatal(err)
	}
	forged := bytes.Clone(valid.Bytes())
	for i := 20; i < 28; i++ { // payload-length field
		forged[i] = 0xff
	}
	return [][]byte{
		valid.Bytes(),
		empty.Bytes(),
		{},
		[]byte("vmtckpt1"),                     // magic only
		append([]byte("vmtckpt1"), 1, 0, 0, 0), // header, no body
		valid.Bytes()[:valid.Len()-4],          // CRC chopped
		valid.Bytes()[:valid.Len()/2],          // torn mid-frame
		append(bytes.Clone(valid.Bytes()), 0xff, 0xff), // trailing garbage
		forged,
	}
}

// TestWriteFuzzCorpus regenerates the committed seed corpus files under
// testdata/fuzz/FuzzDecode when run with -write-corpus (no-op otherwise).
func TestWriteFuzzCorpus(t *testing.T) {
	if !*writeCorpus {
		t.Skip("run with -write-corpus to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range corpusSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed%d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDecode: the checkpoint decoder must never panic and must reject —
// with an error — every malformed frame: bad magic, wrong version, forged
// length, truncation, flipped CRC, garbage gob payload.
func FuzzDecode(f *testing.F) {
	for _, seed := range corpusSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st, _, err := Decode(bytes.NewReader(data))
		if err != nil && st != nil {
			t.Fatal("Decode returned both a state and an error")
		}
		if err == nil && st == nil {
			t.Fatal("Decode returned neither a state nor an error")
		}
	})
}
