package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrNoCheckpoint reports that neither generation file exists — a cold
// start, not a failure.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// Store is a two-generation checkpoint file set rooted at a base path:
// writes alternate between <base>.1 and <base>.2 with a monotonically
// increasing sequence number inside the frame, and Load picks the valid
// file with the highest sequence. Each write goes to a temp file in the
// same directory, is fsynced, and is renamed into place — so a crash at
// any instant (including SIGKILL mid-write) can only lose the write in
// flight, never the previous good generation. Methods require external
// synchronization (one checkpointer per store).
type Store struct {
	base string

	probed  bool
	nextSeq uint64
	slot    int // index into Generations() the next Save targets
}

// NewStore roots a store at base (the -checkpoint-file flag value).
func NewStore(base string) *Store { return &Store{base: base} }

// Base returns the base path the generations derive from.
func (s *Store) Base() string { return s.base }

// Generations returns the two generation file paths.
func (s *Store) Generations() [2]string {
	return [2]string{s.base + ".1", s.base + ".2"}
}

// readGen decodes one generation file. A missing file returns fs.ErrNotExist.
func readGen(path string) (*State, uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return Decode(bytes.NewReader(b))
}

// Load returns the newest valid checkpoint. When neither generation file
// exists it returns ErrNoCheckpoint; when files exist but none passes
// validation it returns the (ErrFormat-wrapping) decode error of the
// highest-numbered generation — corruption is distinguishable from a cold
// start so operators see it. Load also primes the write cursor, so the
// next Save overwrites the stale generation, not the one just restored.
func (s *Store) Load() (*State, uint64, error) {
	var (
		best     *State
		bestSeq  uint64
		bestSlot = -1
		exists   bool
		lastErr  error
	)
	for i, path := range s.Generations() {
		st, seq, err := readGen(path)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				exists = true
				lastErr = fmt.Errorf("%s: %w", path, err)
			}
			continue
		}
		exists = true
		if best == nil || seq > bestSeq {
			best, bestSeq, bestSlot = st, seq, i
		}
	}
	if best == nil {
		if !exists {
			s.probed, s.nextSeq, s.slot = true, 1, 0
			return nil, 0, ErrNoCheckpoint
		}
		s.probed, s.nextSeq, s.slot = true, 1, 0
		return nil, 0, lastErr
	}
	s.probed = true
	s.nextSeq = bestSeq + 1
	s.slot = 1 - bestSlot
	return best, bestSeq, nil
}

// Save writes st as the next generation, returning the bytes written. The
// write is atomic: a temp file in the destination directory is written,
// fsynced and renamed over the older generation slot.
func (s *Store) Save(st *State) (int64, error) {
	if !s.probed {
		// Prime the cursor off whatever is on disk so a fresh process never
		// overwrites the newest generation first.
		if _, _, err := s.Load(); err != nil && !errors.Is(err, ErrNoCheckpoint) && !errors.Is(err, ErrFormat) {
			return 0, err
		}
	}
	target := s.Generations()[s.slot]
	dir := filepath.Dir(target)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.base)+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	n, err := Encode(tmp, s.nextSeq, st)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), target); err != nil {
		return 0, err
	}
	// Make the rename itself durable; best-effort where the platform or
	// filesystem does not support syncing directories.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	s.nextSeq++
	s.slot = 1 - s.slot
	return n, nil
}
