// Package checkpoint persists the control plane's full serving state — the
// warm capital the paper's online pipeline accumulates and a process restart
// would otherwise burn: every engine session's γ calibration and staleness
// clocks (Eqs. 4–6 take many Δ_update intervals to converge), the fleet
// controller's round counter and pending placement queue, the live hotspot
// index, and the anchor cache with its generation split intact.
//
// The on-disk format is versioned, length-framed and CRC-protected; the
// Store keeps two generations and writes each atomically (temp file + fsync
// + rename), so a crash at any instant — including SIGKILL mid-checkpoint —
// leaves the previous good generation loadable. Decode rejects malformed
// input with an error, never a panic: the decoder is fuzzed.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"vmtherm/internal/anchorcache"
	"vmtherm/internal/engine"
	"vmtherm/internal/telemetry"
	"vmtherm/internal/workload"
)

// File framing (little-endian):
//
//	[8]byte  magic "vmtckpt1"
//	uint32   format version (1)
//	uint64   sequence number (monotonic across Store generations)
//	uint64   payload length
//	payload  gob-encoded State
//	uint32   CRC-32 (IEEE) over every preceding byte
const formatVersion = 1

var fileMagic = [8]byte{'v', 'm', 't', 'c', 'k', 'p', 't', '1'}

// maxPayload bounds the length field so a forged header cannot balloon the
// staging allocation; a real checkpoint of even a 100k-host fleet is far
// smaller.
const maxPayload = 1 << 30

// ErrFormat reports an unreadable checkpoint: bad magic, unsupported
// version, implausible length, truncation, or CRC mismatch.
var ErrFormat = errors.New("checkpoint: bad checkpoint file")

func init() {
	// The pending placement queue carries workload.Profile interface values;
	// gob needs every concrete implementation registered.
	gob.Register(workload.Constant{})
	gob.Register(workload.Step{})
	gob.Register(workload.Ramp{})
	gob.Register(workload.Sine{})
	gob.Register(workload.Bursty{})
	gob.Register(&workload.Trace{})
}

// Proposal mirrors the controller's pending migration proposal (a checkpoint
// must not import the fleet package it serves).
type Proposal struct {
	VMID       string
	FromHostID string
	ToHostID   string
	MarginC    float64
}

// Hotspot mirrors one live hotspot-index entry.
type Hotspot struct {
	HostID         string
	PredictedTempC float64
	MarginC        float64
	UncertaintyC   float64
}

// IngestTotals carries the ingest pipeline's cumulative counters, so a
// restored controller reports continuous totals (RoundReport's DroppedTotal
// and SupersededTotal, the /metrics counters) instead of restarting at zero.
type IngestTotals struct {
	Received   int64
	Dropped    int64
	Superseded int64
	Rejected   [telemetry.NumRejectReasons]int64
}

// StreamState is the streaming-ingest machinery's durable state: cumulative
// counters plus the incrementally maintained hotspot index (sorted by host
// id for deterministic bytes). Nil in State when streaming was off.
type StreamState struct {
	Applied     int64
	Created     int64
	Deferred    int64
	Predictions int64
	Hotspots    []Hotspot
}

// CacheState is the anchor cache with its two-generation split preserved —
// a flat reload would reset rotation/eviction timing and break the restored
// twin's bit-identity with a never-restarted one.
type CacheState struct {
	Cur   []anchorcache.Entry
	Prev  []anchorcache.Entry
	Stats anchorcache.Stats
	Epoch int64
}

// State is the full serving state of a controller at a round boundary.
type State struct {
	// SavedUnixNano stamps the capture wall-clock instant (informational).
	SavedUnixNano int64
	// Round is the number of completed control rounds.
	Round int
	// SourceName and SourceNowS identify the telemetry source kind and its
	// clock at capture; restore fast-forwards the fresh source to SourceNowS
	// so staleness and eviction clocks stay monotonic.
	SourceName string
	SourceNowS float64
	// Engine is every live session (sorted by id) plus the session-id counter.
	Engine engine.State
	// Latest is the newest reading per host, sorted by host id.
	Latest []telemetry.Reading
	// Order is the deterministic host iteration order; OrderDirty carries the
	// membership-changed flag.
	Order      []string
	OrderDirty bool
	// Proposals are migration proposals awaiting reconciliation.
	Proposals []Proposal
	// PendingVMs is the admission-controlled placement queue.
	PendingVMs []workload.VMSpec
	// Ingest carries the pipeline's cumulative counters. Readings buffered in
	// the pipeline but not yet drained by a round are NOT captured — a
	// checkpoint is a round-boundary cut, and an undrained reading is
	// indistinguishable from one that arrived during the outage.
	Ingest IngestTotals
	// RecentErrors is the bounded ring surfaced in RoundReport.
	RecentErrors []string
	// LastRejected is the previous round's rejection total (per-round delta
	// accounting).
	LastRejected int64
	// LastFanout is the previous round's anchor miss-batch size.
	LastFanout int64
	// Stream is the streaming-ingest state; nil when streaming was off.
	Stream *StreamState
	// AnchorCache preserves the anchor cache; nil when the cache was disabled.
	AnchorCache *CacheState
}

// Encode frames and writes a checkpoint, returning the bytes written.
func Encode(w io.Writer, seq uint64, st *State) (int64, error) {
	if st == nil {
		return 0, errors.New("checkpoint: nil state")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return 0, fmt.Errorf("checkpoint: encode state: %w", err)
	}
	if payload.Len() > maxPayload {
		return 0, fmt.Errorf("checkpoint: state too large (%d bytes)", payload.Len())
	}
	bw := bufio.NewWriter(w)
	sum := crc32.NewIEEE()
	body := io.MultiWriter(bw, sum)
	if _, err := body.Write(fileMagic[:]); err != nil {
		return 0, err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], formatVersion)
	if _, err := body.Write(scratch[:4]); err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint64(scratch[:], seq)
	if _, err := body.Write(scratch[:]); err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(payload.Len()))
	if _, err := body.Write(scratch[:]); err != nil {
		return 0, err
	}
	n := int64(8 + 4 + 8 + 8 + payload.Len() + 4)
	if _, err := body.Write(payload.Bytes()); err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint32(scratch[:4], sum.Sum32())
	if _, err := bw.Write(scratch[:4]); err != nil {
		return 0, err
	}
	return n, bw.Flush()
}

// Decode reads one framed checkpoint, verifying magic, version, length and
// CRC before the payload is unmarshaled. Malformed input of any kind —
// truncated frame, forged length, flipped bit, garbage gob — yields an
// error wrapping ErrFormat, never a panic.
func Decode(r io.Reader) (*State, uint64, error) {
	sum := crc32.NewIEEE()
	var header [8]byte
	full := func(buf []byte) error {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		_, _ = sum.Write(buf)
		return nil
	}
	if err := full(header[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if header != fileMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrFormat, header[:])
	}
	if err := full(header[:4]); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if v := binary.LittleEndian.Uint32(header[:4]); v != formatVersion {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	if err := full(header[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	seq := binary.LittleEndian.Uint64(header[:])
	if err := full(header[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	length := binary.LittleEndian.Uint64(header[:])
	if length > maxPayload {
		return nil, 0, fmt.Errorf("%w: implausible payload length %d", ErrFormat, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated payload: %v", ErrFormat, err)
	}
	_, _ = sum.Write(payload)
	want := sum.Sum32()
	if _, err := io.ReadFull(r, header[:4]); err != nil {
		return nil, 0, fmt.Errorf("%w: missing CRC trailer: %v", ErrFormat, err)
	}
	if got := binary.LittleEndian.Uint32(header[:4]); got != want {
		return nil, 0, fmt.Errorf("%w: CRC mismatch (file %08x, computed %08x)", ErrFormat, got, want)
	}
	st := &State{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, 0, fmt.Errorf("%w: payload: %v", ErrFormat, err)
	}
	return st, seq, nil
}
