package checkpoint

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Status is the checkpoint subsystem's observable state, served by
// GET /v1/fleet/checkpoint and scraped into the vmtherm_checkpoint_*
// counters.
type Status struct {
	// Enabled reports whether checkpointing is configured at all.
	Enabled bool
	// Path is the base path (generations at <Path>.1 / <Path>.2).
	Path string `json:",omitempty"`
	// IntervalS is the periodic checkpoint cadence (0 = final-only).
	IntervalS float64 `json:",omitempty"`
	// Writes/BytesWritten/Restores/Failures are cumulative totals.
	Writes       int64
	BytesWritten int64
	Restores     int64
	Failures     int64
	// LastWriteUnix is the wall-clock time of the last successful write.
	LastWriteUnix int64 `json:",omitempty"`
	// LastSequence is the newest generation's sequence number.
	LastSequence uint64 `json:",omitempty"`
	// LastError describes the most recent failure, if any.
	LastError string `json:",omitempty"`
}

// Manager wraps a Store with the counters and status surface the daemons
// and the HTTP plane share. Save and Restore are serialized internally;
// Status is safe to call concurrently with both.
type Manager struct {
	store     *Store
	intervalS float64

	mu      sync.Mutex // serializes store access; guards lastErr
	lastErr string

	writes, bytesW, restores, failures atomic.Int64
	lastWriteUnix                      atomic.Int64
	lastSeq                            atomic.Uint64
}

// NewManager roots a manager at the -checkpoint-file base path.
func NewManager(path string, intervalS float64) *Manager {
	return &Manager{store: NewStore(path), intervalS: intervalS}
}

// Path returns the base path.
func (m *Manager) Path() string { return m.store.Base() }

// IntervalS returns the configured periodic cadence in seconds.
func (m *Manager) IntervalS() float64 { return m.intervalS }

// Save persists st as the next generation, updating the counters.
func (m *Manager) Save(st *State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, err := m.store.Save(st)
	if err != nil {
		m.failures.Add(1)
		m.lastErr = err.Error()
		return err
	}
	m.writes.Add(1)
	m.bytesW.Add(n)
	m.lastWriteUnix.Store(time.Now().Unix())
	m.lastSeq.Store(m.store.nextSeq - 1)
	m.lastErr = ""
	return nil
}

// Restore loads the newest valid checkpoint. A cold start (no files)
// returns (nil, nil); corrupt-only files count as a failure and return the
// decode error so the caller can log it and proceed cold.
func (m *Manager) Restore() (*State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, seq, err := m.store.Load()
	if err != nil {
		if errors.Is(err, ErrNoCheckpoint) {
			return nil, nil
		}
		m.failures.Add(1)
		m.lastErr = err.Error()
		return nil, err
	}
	m.restores.Add(1)
	m.lastSeq.Store(seq)
	return st, nil
}

// NoteFailure records a checkpoint-adjacent failure that happened outside
// Save/Restore (e.g. the controller failed to assemble its state).
func (m *Manager) NoteFailure(err error) {
	if err == nil {
		return
	}
	m.failures.Add(1)
	m.mu.Lock()
	m.lastErr = err.Error()
	m.mu.Unlock()
}

// Status snapshots the counters. Safe on a nil manager (checkpointing
// disabled): every field zero, Enabled false.
func (m *Manager) Status() Status {
	if m == nil {
		return Status{}
	}
	m.mu.Lock()
	lastErr := m.lastErr
	m.mu.Unlock()
	return Status{
		Enabled:       true,
		Path:          m.store.Base(),
		IntervalS:     m.intervalS,
		Writes:        m.writes.Load(),
		BytesWritten:  m.bytesW.Load(),
		Restores:      m.restores.Load(),
		Failures:      m.failures.Load(),
		LastWriteUnix: m.lastWriteUnix.Load(),
		LastSequence:  m.lastSeq.Load(),
		LastError:     lastErr,
	}
}
