package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vmtherm/internal/anchorcache"
	"vmtherm/internal/core"
	"vmtherm/internal/engine"
	"vmtherm/internal/telemetry"
	"vmtherm/internal/vmm"
	"vmtherm/internal/workload"
)

// sampleState builds a representative state: warm sessions, both anchor
// cache generations, a pending queue exercising every profile kind, and
// non-trivial counters.
func sampleState(t *testing.T) *State {
	t.Helper()
	trace, err := workload.NewTrace([]workload.TracePoint{{T: 0, V: 0.2}, {T: 60, V: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	return &State{
		SavedUnixNano: 1754600000_000000000,
		Round:         17,
		SourceName:    "trace",
		SourceNowS:    255,
		Engine: engine.State{
			NextID: 4,
			Sessions: []engine.SessionState{
				{
					ID: "r0-h0",
					Predictor: core.PredictorState{
						Curve:       core.Curve{Phi0: 35, Stable: 71.5, TBreakS: 600, DeltaS: 30},
						Config:      core.DynamicConfig{Lambda: 0.8, UpdateEveryS: 15, GapS: 60},
						Gamma:       2.25,
						Updates:     17,
						LastUpdateS: 255,
						Seeded:      true,
					},
					StableC:   71.5,
					AnchorAtS: 0,
					LastAtS:   255,
				},
			},
		},
		Latest: []telemetry.Reading{
			{HostID: "r0-h0", AtS: 255, TempC: 68.25, Util: 0.93, MemFrac: 0.4},
			{HostID: "r0-h1", AtS: 255, TempC: 41, Util: 0.2, MemFrac: 0.1},
		},
		Order:      []string{"r0-h0", "r0-h1"},
		OrderDirty: false,
		Proposals: []Proposal{
			{VMID: "hot-0", FromHostID: "r0-h0", ToHostID: "r0-h1", MarginC: 3.5},
		},
		PendingVMs: []workload.VMSpec{
			{
				ID:     "vm-pend",
				Config: vmm.VMConfig{VCPUs: 4, MemoryGB: 8},
				Tasks: []workload.TaskSpec{
					{Task: vmm.Task{ID: "t0", Class: vmm.CPUBound, CPUFraction: 0.9}, Profile: workload.Constant{Level: 0.9}},
					{Task: vmm.Task{ID: "t1", Class: vmm.MemBound, CPUFraction: 0.5}, Profile: workload.Step{Before: 0.2, After: 0.8, SwitchAt: 30}},
					{Task: vmm.Task{ID: "t2", Class: vmm.CPUBound, CPUFraction: 0.5}, Profile: workload.Ramp{From: 0.1, To: 0.9, Start: 0, Duration: 120}},
					{Task: vmm.Task{ID: "t3", Class: vmm.CPUBound, CPUFraction: 0.5}, Profile: workload.Sine{Base: 0.5, Amplitude: 0.3, Period: 300}},
					{Task: vmm.Task{ID: "t4", Class: vmm.CPUBound, CPUFraction: 0.5}, Profile: workload.Bursty{Low: 0.1, High: 0.9, Period: 60, DutyCycle: 0.25}},
					{Task: vmm.Task{ID: "t5", Class: vmm.CPUBound, CPUFraction: 0.5}, Profile: trace},
					{Task: vmm.Task{ID: "t6", Class: vmm.IOBound, CPUFraction: 0.1}}, // nil profile
				},
			},
		},
		Ingest: IngestTotals{
			Received: 4080, Dropped: 3, Superseded: 12,
			Rejected: [telemetry.NumRejectReasons]int64{0, 1, 0, 0, 2},
		},
		RecentErrors: []string{"round 9: ingest: rejected 1 implausible readings"},
		LastRejected: 3,
		LastFanout:   5,
		Stream: &StreamState{
			Applied: 900, Created: 16, Deferred: 2, Predictions: 120,
			Hotspots: []Hotspot{{HostID: "r0-h0", PredictedTempC: 73.5, MarginC: 3.5, UncertaintyC: 0.5}},
		},
		AnchorCache: &CacheState{
			Cur:   []anchorcache.Entry{{Key: 7, Value: 55.5}, {Key: 9, Value: 61.25}},
			Prev:  []anchorcache.Entry{{Key: 3, Value: 48}},
			Stats: anchorcache.Stats{Hits: 120, Misses: 18, Evicted: 4, Invalidations: 1},
			Epoch: 1,
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState(t)
	var buf bytes.Buffer
	n, err := Encode(&buf, 42, st)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	got, seq, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("sequence %d, want 42", seq)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip diverged:\ngot:  %+v\nwant: %+v", got, st)
	}
	// The trace profile must still evaluate (not just structurally match).
	p := got.PendingVMs[0].Tasks[5].Profile
	if v := p.At(30); math.Abs(v-0.55) > 1e-12 {
		t.Fatalf("restored trace profile At(30) = %v, want 0.55", v)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := Encode(&a, 7, sampleState(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(&b, 7, sampleState(t)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical states encoded to different bytes")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, 1, sampleState(t)); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()

	// Truncations at every region boundary and a few interior cuts.
	for _, cut := range []int{0, 4, 8, 12, 20, 27, len(orig) / 2, len(orig) - 5, len(orig) - 1} {
		if _, _, err := Decode(bytes.NewReader(orig[:cut])); !errors.Is(err, ErrFormat) {
			t.Errorf("truncation at %d: err = %v, want ErrFormat", cut, err)
		}
	}
	// Single-bit flips across the whole frame (stride keeps the test fast;
	// the anchor-cache twin test covers exhaustive flips on a small file).
	for byteIdx := 0; byteIdx < len(orig); byteIdx += 7 {
		mut := append([]byte(nil), orig...)
		mut[byteIdx] ^= 0x10
		if _, _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at byte %d accepted", byteIdx)
		}
	}
	// Forged payload length.
	forged := append([]byte(nil), orig...)
	for i := 20; i < 28; i++ {
		forged[i] = 0xff
	}
	if _, _, err := Decode(bytes.NewReader(forged)); !errors.Is(err, ErrFormat) {
		t.Errorf("forged length: err = %v, want ErrFormat", err)
	}
}

func TestStoreTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ckpt")
	s := NewStore(base)

	// Cold start: nothing to load.
	if _, _, err := s.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store Load err = %v, want ErrNoCheckpoint", err)
	}

	st := sampleState(t)
	st.Round = 1
	if _, err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	st.Round = 2
	if _, err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	st.Round = 3
	if _, err := s.Save(st); err != nil {
		t.Fatal(err)
	}

	// A fresh store (fresh process) must pick the newest generation.
	got, seq, err := NewStore(base).Load()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || got.Round != 3 {
		t.Fatalf("loaded seq %d round %d, want 3/3", seq, got.Round)
	}

	// Both generation files exist and hold different sequences.
	gens := s.Generations()
	for _, p := range gens {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("generation %s missing: %v", p, err)
		}
	}
}

// TestStoreSurvivesTornWrite is the SIGKILL-mid-checkpoint contract: when
// the newest generation is torn (truncated) or bit-flipped, Load falls back
// to the previous good generation, and the next Save targets the bad slot.
func TestStoreSurvivesTornWrite(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ckpt")
	s := NewStore(base)
	st := sampleState(t)
	st.Round = 1
	if _, err := s.Save(st); err != nil { // gen .1, seq 1
		t.Fatal(err)
	}
	st.Round = 2
	if _, err := s.Save(st); err != nil { // gen .2, seq 2
		t.Fatal(err)
	}

	newest := s.Generations()[1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	for name, mangle := range map[string][]byte{
		"torn":    b[:len(b)/3],
		"flipped": flipOneBit(b, len(b)/2),
		"empty":   {},
	} {
		if err := os.WriteFile(newest, mangle, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := NewStore(base)
		got, seq, err := fresh.Load()
		if err != nil {
			t.Fatalf("%s newest generation: Load err = %v, want fallback to previous", name, err)
		}
		if seq != 1 || got.Round != 1 {
			t.Fatalf("%s newest generation: recovered seq %d round %d, want previous good 1/1", name, seq, got.Round)
		}
		// The next save must overwrite the corrupt slot, not the good one.
		st.Round = 9
		if _, err := fresh.Save(st); err != nil {
			t.Fatal(err)
		}
		got, seq, err = NewStore(base).Load()
		if err != nil || seq != 2 || got.Round != 9 {
			t.Fatalf("%s: after repair save: seq %d round %d err %v", name, seq, got.Round, err)
		}
		// Restore the torn file layout for the next sub-case.
		if err := os.WriteFile(newest, b, 0o644); err != nil {
			t.Fatal(err)
		}
		st.Round = 2
	}

	// Both generations corrupt: an error, not silence and not a cold start.
	for _, p := range s.Generations() {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := NewStore(base).Load(); err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt store Load err = %v, want a decode error", err)
	}
}

func flipOneBit(b []byte, at int) []byte {
	out := append([]byte(nil), b...)
	out[at] ^= 0x01
	return out
}

func TestManagerCountersAndStatus(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(filepath.Join(dir, "ckpt"), 30)

	// Cold restore: no files, no failure.
	st, err := m.Restore()
	if err != nil || st != nil {
		t.Fatalf("cold Restore = (%v, %v), want (nil, nil)", st, err)
	}
	if err := m.Save(sampleState(t)); err != nil {
		t.Fatal(err)
	}
	if st, err = m.Restore(); err != nil || st == nil {
		t.Fatalf("warm Restore = (%v, %v)", st, err)
	}
	status := m.Status()
	if !status.Enabled || status.Writes != 1 || status.Restores != 1 || status.Failures != 0 {
		t.Fatalf("status = %+v", status)
	}
	if status.BytesWritten <= 0 || status.LastSequence != 1 || status.IntervalS != 30 {
		t.Fatalf("status = %+v", status)
	}

	// A nil manager (checkpointing disabled) answers a zero status.
	var nilMgr *Manager
	if s := nilMgr.Status(); s.Enabled || s.Writes != 0 {
		t.Fatalf("nil manager status = %+v", s)
	}
}
