// Package scenario is the thermal-emergency engine: it scripts
// deterministic fault timelines against a live closed loop and grades how
// the control plane rides them out.
//
// A Spec is a named timeline of Events — CRAC capacity loss and setpoint
// excursions, recirculation (containment-breach) spikes, correlated
// rack-wide load surges, per-host sensor faults, fleet-wide telemetry
// blackouts — each pinned to a control round. A Runner binds a Spec to a
// simulated *fleet.Controller, applies each round's due events through the
// controller's fault-injection hooks, runs the round, and accumulates the
// grading signals the paper's prediction exists to create: did the
// predicted hotspot flag precede the measured threshold crossing, how many
// rounds from fault onset until the last hotspot cleared, how many
// migrations the containment spent against its per-round budget, how many
// hosts were flagged that never actually crossed, how many readings the
// ingest plausibility filter rejected.
//
// Everything is deterministic: the same spec against the same fleet
// config and seed replays the same faults at the same rounds and produces
// the same Report. With no scenario bound, nothing in this package runs —
// the fleet's physics and control are byte-identical to an unscripted run.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// FaultKind names one injectable fault class.
type FaultKind string

const (
	// FaultCRACCapacity sets the CRAC's remaining cooling capacity
	// (Value, clamped to [0, 1]; 0 is a full CRAC failure, 1 a repair).
	FaultCRACCapacity FaultKind = "crac-capacity"
	// FaultCRACSetpoint shifts the CRAC supply setpoint by Value °C
	// (0 restores the configured setpoint).
	FaultCRACSetpoint FaultKind = "crac-setpoint"
	// FaultCRACRecirc scales the recirculation coefficient by Value —
	// a hot-aisle containment breach (1 restores nominal).
	FaultCRACRecirc FaultKind = "crac-recirc"
	// FaultLoadSurge places Count heavy VMs of Value vCPUs each on every
	// host of rack Rack — a correlated tenant burst.
	FaultLoadSurge FaultKind = "load-surge"
	// FaultLoadSurgeEnd removes the VMs a prior load-surge placed on Rack.
	FaultLoadSurgeEnd FaultKind = "load-surge-end"
	// FaultSensor injects a sensor fault on host Host: Mode is one of
	// "stuck", "dropped", "nan", "bias" (empty clears the fault); Value is
	// the frozen reading for "stuck" and the offset for "bias".
	FaultSensor FaultKind = "sensor"
	// FaultBlackout starts (Value != 0) or ends (Value == 0) a fleet-wide
	// telemetry blackout.
	FaultBlackout FaultKind = "blackout"
)

// Event is one timed fault action. Round is 1-based and the event fires
// immediately before that round runs, so an event at round 1 is active
// from the very first control decision.
type Event struct {
	Round int       `json:"round"`
	Fault FaultKind `json:"fault"`
	// Value is the fault magnitude; meaning depends on Fault (see the
	// FaultKind docs).
	Value float64 `json:"value,omitempty"`
	// Host scopes sensor faults.
	Host string `json:"host,omitempty"`
	// Rack scopes load surges.
	Rack int `json:"rack,omitempty"`
	// Mode selects the sensor fault mode.
	Mode string `json:"mode,omitempty"`
	// Count is the surge size in VMs per host (default 1).
	Count int `json:"count,omitempty"`
}

// Grade states what a scenario run must achieve to pass.
type Grade struct {
	// ContainWithinRounds, when positive, requires the hotspot set to
	// return to empty (and stay empty through the final round) within this
	// many rounds of fault onset.
	ContainWithinRounds int `json:"contain_within_rounds,omitempty"`
	// RequireLead requires the predicted hotspot flag to strictly precede
	// the measured threshold crossing — the paper's proactive window.
	RequireLead bool `json:"require_lead,omitempty"`
	// RequireReconverge requires every stale host to be re-fed by the
	// final round (StaleHosts back to zero).
	RequireReconverge bool `json:"require_reconverge,omitempty"`
	// RequireRejected requires the ingest plausibility filter to have
	// rejected at least one reading during the run (sensor-fault drills).
	RequireRejected bool `json:"require_rejected,omitempty"`
}

// Baseline seeds the fleet with background load before round 1, so faults
// land on a working datacenter instead of an idle one.
type Baseline struct {
	// VMsPerHost heavy VMs of VCPUs vCPUs and MemGB GB are placed on every
	// host (ids "base-<host>-<k>").
	VMsPerHost int     `json:"vms_per_host,omitempty"`
	VCPUs      int     `json:"vcpus,omitempty"`
	MemGB      float64 `json:"mem_gb,omitempty"`
}

// Spec is one complete scripted thermal emergency.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Rounds is the total run length.
	Rounds int `json:"rounds"`
	// OnsetRound anchors the grading clock (containment and lead are
	// measured from here). Zero defaults to the earliest event round.
	OnsetRound int      `json:"onset_round,omitempty"`
	Baseline   Baseline `json:"baseline,omitempty"`
	Events     []Event  `json:"events"`
	Grade      Grade    `json:"grade,omitempty"`
}

// Onset is the grading reference round: OnsetRound when set, otherwise
// the earliest event round (0 with no events).
func (s *Spec) Onset() int {
	if s.OnsetRound > 0 {
		return s.OnsetRound
	}
	onset := 0
	for _, e := range s.Events {
		if onset == 0 || e.Round < onset {
			onset = e.Round
		}
	}
	return onset
}

// Validate checks the spec's internal consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if s.Rounds < 1 {
		return fmt.Errorf("scenario %s: rounds must be >= 1, got %d", s.Name, s.Rounds)
	}
	if s.Baseline.VMsPerHost < 0 || s.Baseline.VCPUs < 0 || s.Baseline.MemGB < 0 {
		return fmt.Errorf("scenario %s: negative baseline", s.Name)
	}
	for i, e := range s.Events {
		if e.Round < 1 || e.Round > s.Rounds {
			return fmt.Errorf("scenario %s: event %d round %d outside [1, %d]", s.Name, i, e.Round, s.Rounds)
		}
		switch e.Fault {
		case FaultCRACCapacity, FaultCRACSetpoint, FaultCRACRecirc, FaultBlackout:
		case FaultLoadSurge, FaultLoadSurgeEnd:
			if e.Rack < 0 {
				return fmt.Errorf("scenario %s: event %d negative rack", s.Name, i)
			}
		case FaultSensor:
			if e.Host == "" {
				return fmt.Errorf("scenario %s: event %d sensor fault needs a host", s.Name, i)
			}
			switch e.Mode {
			case "", "stuck", "dropped", "nan", "bias":
			default:
				return fmt.Errorf("scenario %s: event %d unknown sensor mode %q", s.Name, i, e.Mode)
			}
		default:
			return fmt.Errorf("scenario %s: event %d unknown fault %q", s.Name, i, e.Fault)
		}
	}
	return nil
}

// sortedEvents returns the events in firing order (round, then spec
// order), leaving the spec untouched.
func (s *Spec) sortedEvents() []Event {
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Round < evs[j].Round })
	return evs
}

// FromJSON decodes and validates a spec.
func FromJSON(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load resolves nameOrPath as a built-in scenario name first, then as a
// JSON spec file on disk.
func Load(nameOrPath string) (Spec, error) {
	if s, ok := Builtin(nameOrPath); ok {
		return s, nil
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %q is neither a built-in (%v) nor a readable file: %w",
			nameOrPath, BuiltinNames(), err)
	}
	return FromJSON(data)
}
