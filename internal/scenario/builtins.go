package scenario

import "sort"

// The built-in scenario library: five canonical thermal emergencies plus a
// sensor-integrity drill, tuned for the default fleet shape (16-core
// hosts, 18 °C supply, 65 °C threshold, 15 s rounds — see
// fleet.DefaultConfig). Each seeds the same moderate baseline — one 6-vCPU
// all-out VM per host, ~37 % utilization — so faults land on a working
// datacenter with a realistic thermal margin (~12 °C below threshold at
// the hottest rack slot) rather than an idle or saturated one.

var baseline = Baseline{VMsPerHost: 1, VCPUs: 6, MemGB: 4}

// builtins maps name → spec constructor (constructed per call so callers
// may mutate their copy freely).
var builtins = map[string]func() Spec{
	"crac-failure":       cracFailure,
	"setpoint-excursion": setpointExcursion,
	"recirc-spike":       recircSpike,
	"load-surge":         loadSurge,
	"telemetry-blackout": telemetryBlackout,
	"sensor-chaos":       sensorChaos,
}

// Builtin returns the named built-in scenario.
func Builtin(name string) (Spec, bool) {
	mk, ok := builtins[name]
	if !ok {
		return Spec{}, false
	}
	return mk(), true
}

// BuiltinNames lists the built-in scenarios, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// cracFailure: the flagship emergency. The CRAC loses all cooling capacity
// at round 6 — its supply air chases the ever-hotter return stream, so the
// whole room heats at roughly the return/supply gap per plant time
// constant — and is repaired at round 20. The grade is the ISSUE's
// acceptance bar: the predicted hotspot flag must strictly precede the
// measured threshold crossing, and the hotspot set must return to empty
// within 40 rounds of onset once cooling is restored.
func cracFailure() Spec {
	return Spec{
		Name:        "crac-failure",
		Description: "Full CRAC failure at round 6, repaired at round 20; room-wide runaway heating.",
		Rounds:      56,
		Baseline:    baseline,
		Events: []Event{
			{Round: 6, Fault: FaultCRACCapacity, Value: 0},
			{Round: 20, Fault: FaultCRACCapacity, Value: 1},
		},
		Grade: Grade{RequireLead: true, ContainWithinRounds: 40, RequireReconverge: true},
	}
}

// setpointExcursion: a fat-fingered (or attacked) BMS raises the supply
// setpoint 16 °C at round 5; the excursion is reverted at round 20. The
// supply relaxes toward the bad setpoint with the plant's lag, so only the
// warmest rack slots cross — a partial, slow-onset emergency.
func setpointExcursion() Spec {
	return Spec{
		Name:        "setpoint-excursion",
		Description: "Supply setpoint +16 °C at round 5, reverted at round 20.",
		Rounds:      52,
		Baseline:    baseline,
		Events: []Event{
			{Round: 5, Fault: FaultCRACSetpoint, Value: 16},
			{Round: 20, Fault: FaultCRACSetpoint, Value: 0},
		},
		Grade: Grade{ContainWithinRounds: 40, RequireReconverge: true},
	}
}

// recircSpike: a hot-aisle containment breach couples exhaust back into
// the inlets 8× more strongly from round 5 until it is sealed at round 18.
// Unlike a setpoint excursion the inlet step is immediate — only the
// servers' own thermal mass delays the crossing.
func recircSpike() Spec {
	return Spec{
		Name:        "recirc-spike",
		Description: "Recirculation ×8 (containment breach) at round 5, sealed at round 18.",
		Rounds:      48,
		Baseline:    baseline,
		Events: []Event{
			{Round: 5, Fault: FaultCRACRecirc, Value: 8},
			{Round: 18, Fault: FaultCRACRecirc, Value: 1},
		},
		Grade: Grade{ContainWithinRounds: 36, RequireReconverge: true},
	}
}

// loadSurge: every host of rack 0 receives two extra 6-vCPU all-out VMs at
// round 5 — a correlated tenant burst that saturates the rack — and the
// burst ends at round 16. The migration budget cannot drain a whole rack,
// so grading measures how the controller spends its bounded budget and
// how fast the rack cools once the surge ends.
func loadSurge() Spec {
	return Spec{
		Name:        "load-surge",
		Description: "Correlated surge: +2×6 vCPU on every rack-0 host at round 5, ending at round 16.",
		Rounds:      48,
		Baseline:    baseline,
		Events: []Event{
			{Round: 5, Fault: FaultLoadSurge, Rack: 0, Count: 2, Value: 6},
			{Round: 16, Fault: FaultLoadSurgeEnd, Rack: 0},
		},
		Grade: Grade{RequireLead: true, ContainWithinRounds: 36, RequireReconverge: true},
	}
}

// telemetryBlackout: the entire telemetry feed goes dark at round 4 and
// returns at round 10 — six rounds (90 s) of silence, past the staleness
// horizon, so every host degrades to stale. The grade is pure graceful
// degradation: no panic, and every stale host re-fed by the final round.
func telemetryBlackout() Spec {
	return Spec{
		Name:        "telemetry-blackout",
		Description: "Fleet-wide telemetry blackout rounds 4–10; staleness degradation and reconvergence.",
		Rounds:      24,
		Baseline:    baseline,
		Events: []Event{
			{Round: 4, Fault: FaultBlackout, Value: 1},
			{Round: 10, Fault: FaultBlackout, Value: 0},
		},
		Grade: Grade{RequireReconverge: true},
	}
}

// sensorChaos: a sensor-integrity drill. From round 4 one sensor freezes,
// one goes silent, one emits NaN, and one reports +120 °C of bias — the
// last two implausible, so the ingest filter must reject them — until the
// sensors are serviced at round 14. No thermal emergency occurs; the
// grade is that poison was rejected and the starved hosts reconverge.
func sensorChaos() Spec {
	return Spec{
		Name:        "sensor-chaos",
		Description: "Stuck/silent/NaN/wildly-biased sensors rounds 4–14; poison rejected, hosts reconverge.",
		Rounds:      28,
		Baseline:    baseline,
		Events: []Event{
			{Round: 4, Fault: FaultSensor, Host: "r0-h0", Mode: "stuck", Value: 45},
			{Round: 4, Fault: FaultSensor, Host: "r0-h1", Mode: "dropped"},
			{Round: 4, Fault: FaultSensor, Host: "r0-h2", Mode: "nan"},
			{Round: 4, Fault: FaultSensor, Host: "r0-h3", Mode: "bias", Value: 120},
			{Round: 14, Fault: FaultSensor, Host: "r0-h0"},
			{Round: 14, Fault: FaultSensor, Host: "r0-h1"},
			{Round: 14, Fault: FaultSensor, Host: "r0-h2"},
			{Round: 14, Fault: FaultSensor, Host: "r0-h3"},
		},
		Grade: Grade{RequireRejected: true, RequireReconverge: true},
	}
}
