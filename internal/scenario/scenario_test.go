package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"vmtherm/internal/fleet"
)

// testFleet builds a small simulated fleet with the synthetic stable
// predictor — the same stand-in the fleet's own closed-loop tests use.
func testFleet(t *testing.T, mutate func(*fleet.Config)) *fleet.Controller {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Racks = 2
	cfg.HostsPerRack = 8
	cfg.Seed = 7
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := fleet.New(cfg, fleet.SyntheticStablePredictor(75))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runBuiltin(t *testing.T, name string, mutate func(*fleet.Config)) Report {
	t.Helper()
	spec, ok := Builtin(name)
	if !ok {
		t.Fatalf("no builtin %q", name)
	}
	r, err := New(spec, testFleet(t, mutate))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("%s failed its grade: %v\nreport: %s", name, rep.Failures, rep.JSON())
	}
	return rep
}

// TestCRACFailureLeadAndContainment is the acceptance bar from the issue:
// under a full CRAC failure the predicted hotspot flag must strictly
// precede the measured threshold crossing, and once cooling is restored
// the controller must clear the hotspot set within the documented budget.
func TestCRACFailureLeadAndContainment(t *testing.T) {
	rep := runBuiltin(t, "crac-failure", nil)
	if rep.FirstFlagRound == 0 || rep.MeasuredCrossRound == 0 {
		t.Fatalf("emergency never materialized: %s", rep.JSON())
	}
	if rep.PredictedLeadRounds < 1 {
		t.Fatalf("no proactive window: flagged %d, crossed %d",
			rep.FirstFlagRound, rep.MeasuredCrossRound)
	}
	if !rep.Contained || rep.ContainmentRounds > 40 {
		t.Fatalf("not contained within budget: %s", rep.JSON())
	}
	if rep.PeakMeasuredC <= 65 {
		t.Fatalf("peak measured %.1f never exceeded the threshold", rep.PeakMeasuredC)
	}
}

func TestSetpointExcursionContains(t *testing.T) {
	rep := runBuiltin(t, "setpoint-excursion", nil)
	if rep.PeakHotspots == 0 {
		t.Fatalf("excursion raised no hotspot: %s", rep.JSON())
	}
}

func TestRecircSpikeContains(t *testing.T) {
	rep := runBuiltin(t, "recirc-spike", nil)
	if rep.PeakHotspots == 0 {
		t.Fatalf("breach raised no hotspot: %s", rep.JSON())
	}
}

// TestLoadSurgeSpendsBoundedMigrations: the surge saturates a whole rack;
// the controller may fight back only within its per-round budget.
func TestLoadSurgeSpendsBoundedMigrations(t *testing.T) {
	rep := runBuiltin(t, "load-surge", nil)
	if rep.PeakHotspots == 0 {
		t.Fatal("surge raised no hotspot")
	}
	if rep.MigrationsApplied == 0 {
		t.Error("controller never spent a migration on the surge")
	}
	if rep.MigrationsApplied > rep.MigrationBudget {
		t.Errorf("migrations %d exceed budget %d", rep.MigrationsApplied, rep.MigrationBudget)
	}
}

// TestTelemetryBlackoutReconverges: six dark rounds degrade the whole
// fleet to stale; once the feed returns every host must be re-fed.
func TestTelemetryBlackoutReconverges(t *testing.T) {
	rep := runBuiltin(t, "telemetry-blackout", nil)
	if rep.MaxStaleHosts == 0 {
		t.Fatal("blackout never degraded anyone")
	}
	if !rep.Reconverged || rep.ReconvergeRound == 0 {
		t.Fatalf("fleet did not reconverge: %s", rep.JSON())
	}
}

// TestSensorChaosRejectsPoison: NaN and wildly-biased sensors must be
// rejected by the ingest plausibility filter, never ingested.
func TestSensorChaosRejectsPoison(t *testing.T) {
	rep := runBuiltin(t, "sensor-chaos", nil)
	if rep.ReadingsRejected == 0 {
		t.Fatal("no poisoned reading was rejected")
	}
	if rep.PeakHotspots != 0 {
		t.Errorf("sensor faults alone raised %d hotspots", rep.PeakHotspots)
	}
}

// TestRunnerStatusProgression exercises the live Status surface a server
// polls while a scenario runs.
func TestRunnerStatusProgression(t *testing.T) {
	spec, _ := Builtin("crac-failure")
	r, err := New(spec, testFleet(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if st.Name != "crac-failure" || !st.Active || st.Round != 0 || st.FaultsActive != 0 {
		t.Fatalf("fresh status = %+v", st)
	}
	for i := 0; i < 6; i++ { // through the capacity-0 event at round 6
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st = r.Status()
	if st.Round != 6 || st.FaultsActive != 1 {
		t.Fatalf("mid-fault status = %+v", st)
	}
	if !st.CRAC.Active || st.CRAC.CapacityFrac != 0 {
		t.Fatalf("CRAC status not reflecting failure: %+v", st.CRAC)
	}
	for !r.Done() {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Step(); err == nil {
		t.Fatal("stepping past the timeline did not error")
	}
	st = r.Status()
	if st.Active || !st.Done || st.FaultsActive != 0 {
		t.Fatalf("final status = %+v", st)
	}
}

// TestSpecValidation rejects malformed timelines.
func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Rounds: 10},
		{Name: "x", Rounds: 0},
		{Name: "x", Rounds: 10, Events: []Event{{Round: 11, Fault: FaultBlackout}}},
		{Name: "x", Rounds: 10, Events: []Event{{Round: 1, Fault: "meteor"}}},
		{Name: "x", Rounds: 10, Events: []Event{{Round: 1, Fault: FaultSensor}}},
		{Name: "x", Rounds: 10, Events: []Event{{Round: 1, Fault: FaultSensor, Host: "h", Mode: "wrong"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	for _, name := range BuiltinNames() {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("listed builtin %q missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", name, err)
		}
	}
	if len(BuiltinNames()) < 5 {
		t.Fatalf("only %d builtins, want >= 5", len(BuiltinNames()))
	}
}

// TestLoadFromFile round-trips a spec through JSON on disk and runs it.
func TestLoadFromFile(t *testing.T) {
	spec, _ := Builtin("telemetry-blackout")
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "blackout.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != spec.Name || len(got.Events) != len(spec.Events) {
		t.Fatalf("loaded spec = %+v", got)
	}
	// Builtin names resolve before paths.
	if s, err := Load("crac-failure"); err != nil || s.Name != "crac-failure" {
		t.Fatalf("builtin load: %v %+v", err, s)
	}
	if _, err := Load("no-such-scenario-or-file"); err == nil {
		t.Fatal("bogus name accepted")
	}
	if _, err := FromJSON([]byte(`{"name":"x","rounds":0}`)); err == nil {
		t.Fatal("invalid spec accepted from JSON")
	}
}

// TestScenarioDeterministic: the same spec on the same seed produces the
// same report — the property CI leans on.
func TestScenarioDeterministic(t *testing.T) {
	run := func() Report {
		spec, _ := Builtin("crac-failure")
		r, err := New(spec, testFleet(t, nil))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if string(a.JSON()) != string(b.JSON()) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", a.JSON(), b.JSON())
	}
}
