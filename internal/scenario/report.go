package scenario

import (
	"encoding/json"
	"fmt"
)

// Report is one scenario run's grade card. All round numbers are 1-based;
// zero means "never happened".
type Report struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`
	// FaultOnsetRound anchors the grading clock.
	FaultOnsetRound int `json:"fault_onset_round"`
	// FirstFlagRound is the first round (at or after onset) the predicted
	// hotspot map flagged anything; MeasuredCrossRound the first round a
	// measured die temperature actually exceeded the threshold. Their
	// difference is the proactive window the paper's prediction creates.
	FirstFlagRound      int `json:"first_flag_round"`
	MeasuredCrossRound  int `json:"measured_cross_round"`
	PredictedLeadRounds int `json:"predicted_lead_rounds"`
	// Contained reports the hotspot set returned to empty and stayed there
	// through the final round; ContainmentRounds is how many rounds that
	// took from fault onset (0 when no hotspot ever formed).
	Contained         bool `json:"contained"`
	ContainmentRounds int  `json:"containment_rounds"`
	LastHotRound      int  `json:"last_hot_round"`
	PeakHotspots      int  `json:"peak_hotspots"`
	// PeakMeasuredC is the hottest true die temperature the run reached.
	PeakMeasuredC float64 `json:"peak_measured_c"`
	// HostsFlagged / FalsePositives / FalsePositiveRate grade the hotspot
	// map's precision: a false positive is a host that was flagged at some
	// round but whose measured temperature never crossed the threshold
	// during the entire run.
	HostsFlagged      int     `json:"hosts_flagged"`
	FalsePositives    int     `json:"false_positives"`
	FalsePositiveRate float64 `json:"false_positive_rate"`
	// MigrationsApplied vs MigrationBudget: what containment spent against
	// the per-round cap × rounds.
	MigrationsApplied int `json:"migrations_applied"`
	MigrationBudget   int `json:"migration_budget"`
	// ReadingsRejected counts implausible readings the ingest filter
	// refused during the run.
	ReadingsRejected int64 `json:"readings_rejected"`
	// MaxStaleHosts / Reconverged / ReconvergeRound grade blackout
	// recovery: Reconverged means the final round had zero stale hosts.
	MaxStaleHosts   int  `json:"max_stale_hosts"`
	FinalStaleHosts int  `json:"final_stale_hosts"`
	Reconverged     bool `json:"reconverged"`
	ReconvergeRound int  `json:"reconverge_round"`
	// Passed is the Grade verdict; Failures lists each violated clause.
	Passed   bool     `json:"passed"`
	Failures []string `json:"failures,omitempty"`
}

// Report grades the run so far. Normally called once the timeline is done
// (Done reports true); calling earlier grades the partial run.
func (r *Runner) Report() Report {
	r.mu.Lock()
	defer r.mu.Unlock()

	onset := r.spec.Onset()
	rp := Report{
		Name:               r.spec.Name,
		Rounds:             r.round,
		FaultOnsetRound:    onset,
		FirstFlagRound:     r.firstFlagRound,
		MeasuredCrossRound: r.measuredCrossRound,
		LastHotRound:       r.lastHotRound,
		PeakHotspots:       r.peakHotspots,
		PeakMeasuredC:      r.peakMeasuredC,
		HostsFlagged:       len(r.flagged),
		MigrationsApplied:  r.migrationsApplied,
		MigrationBudget:    r.ctrl.Config().MaxMigrationsPerRound * r.round,
		ReadingsRejected:   r.rejected,
		MaxStaleHosts:      r.maxStaleHosts,
		FinalStaleHosts:    r.curStale,
		Reconverged:        r.curStale == 0,
		ReconvergeRound:    r.reconvergeRound,
	}
	if rp.FirstFlagRound > 0 && rp.MeasuredCrossRound > 0 {
		rp.PredictedLeadRounds = rp.MeasuredCrossRound - rp.FirstFlagRound
	}
	rp.Contained = r.lastHotRound == 0 || r.curHotspots == 0
	if r.lastHotRound > 0 && rp.Contained && onset > 0 {
		rp.ContainmentRounds = r.lastHotRound - onset + 1
	}
	for id := range r.flagged {
		if !r.crossed[id] {
			rp.FalsePositives++
		}
	}
	if rp.HostsFlagged > 0 {
		rp.FalsePositiveRate = float64(rp.FalsePositives) / float64(rp.HostsFlagged)
	}

	g := r.spec.Grade
	if g.RequireLead {
		switch {
		case rp.FirstFlagRound == 0:
			rp.Failures = append(rp.Failures, "lead: no hotspot was ever predicted")
		case rp.MeasuredCrossRound == 0:
			rp.Failures = append(rp.Failures, "lead: measured temperature never crossed the threshold")
		case rp.FirstFlagRound >= rp.MeasuredCrossRound:
			rp.Failures = append(rp.Failures, fmt.Sprintf(
				"lead: predicted flag at round %d did not precede measured crossing at round %d",
				rp.FirstFlagRound, rp.MeasuredCrossRound))
		}
	}
	if g.ContainWithinRounds > 0 {
		switch {
		case !rp.Contained:
			rp.Failures = append(rp.Failures, fmt.Sprintf(
				"containment: %d hotspots still flagged at round %d", r.curHotspots, r.round))
		case r.lastHotRound == 0:
			// Never hot at all — containment trivially satisfied.
		case rp.ContainmentRounds > g.ContainWithinRounds:
			rp.Failures = append(rp.Failures, fmt.Sprintf(
				"containment: took %d rounds from onset, budget %d",
				rp.ContainmentRounds, g.ContainWithinRounds))
		}
	}
	if g.RequireReconverge && !rp.Reconverged {
		rp.Failures = append(rp.Failures, fmt.Sprintf(
			"reconverge: %d hosts still stale at round %d", r.curStale, r.round))
	}
	if g.RequireRejected && rp.ReadingsRejected == 0 {
		rp.Failures = append(rp.Failures, "rejection: no implausible reading was ever rejected")
	}
	rp.Passed = len(rp.Failures) == 0
	return rp
}

// JSON renders the report as indented JSON (the SCENARIO_*.json artifact
// format CI uploads).
func (rp Report) JSON() []byte {
	b, err := json.MarshalIndent(rp, "", "  ")
	if err != nil { // a flat struct of scalars cannot fail to marshal
		panic(err)
	}
	return append(b, '\n')
}
