package scenario

import (
	"fmt"
	"sync"

	"vmtherm/internal/fleet"
)

// Runner binds a Spec to a simulated fleet controller and drives the
// scripted emergency: each Step applies the events due before the next
// round, runs the round, and folds the round's outcome into the grading
// accumulators. One goroutine drives Step/Run; Status and Report are safe
// to call concurrently from servers and stats loops.
type Runner struct {
	spec   Spec
	ctrl   *fleet.Controller
	events []Event // sorted by round
	next   int     // first unapplied event

	// scratch reused across rounds so grading stays off the round's
	// allocation budget.
	die     map[string]float64
	baseRej int64

	mu sync.Mutex
	// accumulators (guarded by mu; written by Step, read by Status/Report).
	round              int
	firstFlagRound     int
	measuredCrossRound int
	lastHotRound       int
	peakHotspots       int
	peakMeasuredC      float64
	curHotspots        int
	curStale           int
	migrationsApplied  int
	maxStaleHosts      int
	staleSeen          bool
	reconvergeRound    int
	rejected           int64
	flagged            map[string]bool
	crossed            map[string]bool
	// fault state mirrors (for FaultsActive).
	capacityFrac float64
	setpointD    float64
	recircMult   float64
	dark         bool
	sensorFaults map[string]bool
	surgeVMs     map[int][]string
	done         bool
}

// New validates the spec, seeds the baseline load, and returns a runner
// ready for Step. The controller must be a simulated fleet (the fault
// hooks script its substrate); source-driven fleets return
// fleet.ErrNoSubstrate on the first fault instead.
func New(spec Spec, ctrl *fleet.Controller) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		spec:         spec,
		ctrl:         ctrl,
		events:       spec.sortedEvents(),
		capacityFrac: 1,
		recircMult:   1,
		flagged:      make(map[string]bool),
		crossed:      make(map[string]bool),
		sensorFaults: make(map[string]bool),
		surgeVMs:     make(map[int][]string),
	}
	_, r.baseRej = ctrl.IngestRejected()
	if b := spec.Baseline; b.VMsPerHost > 0 {
		vcpus, mem := b.VCPUs, b.MemGB
		if vcpus <= 0 {
			vcpus = 4
		}
		if mem <= 0 {
			mem = 4
		}
		for _, host := range ctrl.Hosts() {
			for k := 0; k < b.VMsPerHost; k++ {
				id := fmt.Sprintf("base-%s-%d", host, k)
				if err := ctrl.PlaceAt(host, fleet.HeavyVMSpec(id, vcpus, mem)); err != nil {
					return nil, fmt.Errorf("scenario %s: baseline %s: %w", spec.Name, id, err)
				}
			}
		}
	}
	return r, nil
}

// Spec returns the bound spec.
func (r *Runner) Spec() Spec { return r.spec }

// Done reports whether the full timeline has run.
func (r *Runner) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Step applies the next round's due events, runs one control round, and
// grades it. The returned report is the controller's own RoundReport.
func (r *Runner) Step() (fleet.RoundReport, error) {
	r.mu.Lock()
	round := r.round + 1
	r.mu.Unlock()
	if round > r.spec.Rounds {
		return fleet.RoundReport{}, fmt.Errorf("scenario %s: timeline exhausted after %d rounds", r.spec.Name, r.spec.Rounds)
	}
	for r.next < len(r.events) && r.events[r.next].Round <= round {
		if err := r.apply(r.events[r.next]); err != nil {
			return fleet.RoundReport{}, err
		}
		r.next++
	}
	rep, err := r.ctrl.RunRound()
	if err != nil {
		return rep, err
	}
	r.grade(round, &rep)
	return rep, nil
}

// Run drives the whole timeline and returns the final graded report.
func (r *Runner) Run() (Report, error) {
	for i := 0; i < r.spec.Rounds; i++ {
		if _, err := r.Step(); err != nil {
			return Report{}, err
		}
	}
	return r.Report(), nil
}

// apply fires one event through the controller's fault hooks and mirrors
// the resulting fault state for Status.
func (r *Runner) apply(e Event) error {
	var err error
	switch e.Fault {
	case FaultCRACCapacity:
		err = r.ctrl.SetCRACCoolingCapacity(e.Value)
	case FaultCRACSetpoint:
		err = r.ctrl.SetCRACSetpointDelta(e.Value)
	case FaultCRACRecirc:
		err = r.ctrl.SetCRACRecircMultiplier(e.Value)
	case FaultBlackout:
		err = r.ctrl.SetTelemetryDark(e.Value != 0)
	case FaultSensor:
		err = r.ctrl.SetSensorFault(e.Host, sensorFault(e))
	case FaultLoadSurge:
		err = r.surge(e)
	case FaultLoadSurgeEnd:
		err = r.surgeEnd(e.Rack)
	default:
		err = fmt.Errorf("unknown fault %q", e.Fault)
	}
	if err != nil {
		return fmt.Errorf("scenario %s: round %d %s: %w", r.spec.Name, e.Round, e.Fault, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	switch e.Fault {
	case FaultCRACCapacity:
		r.capacityFrac = min(max(e.Value, 0), 1)
	case FaultCRACSetpoint:
		r.setpointD = e.Value
	case FaultCRACRecirc:
		r.recircMult = e.Value
	case FaultBlackout:
		r.dark = e.Value != 0
	case FaultSensor:
		if e.Mode == "" {
			delete(r.sensorFaults, e.Host)
		} else {
			r.sensorFaults[e.Host] = true
		}
	}
	return nil
}

// sensorFault maps an event's mode string to the simulator's fault.
func sensorFault(e Event) fleet.SensorFault {
	switch e.Mode {
	case "stuck":
		return fleet.SensorFault{Mode: fleet.SensorStuck, ValueC: e.Value}
	case "dropped":
		return fleet.SensorFault{Mode: fleet.SensorDropped}
	case "nan":
		return fleet.SensorFault{Mode: fleet.SensorNaN}
	case "bias":
		return fleet.SensorFault{Mode: fleet.SensorBiased, ValueC: e.Value}
	default:
		return fleet.SensorFault{}
	}
}

// surge places the correlated load burst on every host of the rack.
func (r *Runner) surge(e Event) error {
	hosts, err := r.ctrl.RackHostIDs(e.Rack)
	if err != nil {
		return err
	}
	count := e.Count
	if count <= 0 {
		count = 1
	}
	vcpus := int(e.Value)
	if vcpus <= 0 {
		vcpus = 4
	}
	var placed []string
	for _, h := range hosts {
		for k := 0; k < count; k++ {
			id := fmt.Sprintf("surge-r%d-%s-%d", e.Rack, h, k)
			if err := r.ctrl.PlaceAt(h, fleet.HeavyVMSpec(id, vcpus, 2)); err != nil {
				return fmt.Errorf("placing %s: %w", id, err)
			}
			placed = append(placed, id)
		}
	}
	r.mu.Lock()
	r.surgeVMs[e.Rack] = append(r.surgeVMs[e.Rack], placed...)
	r.mu.Unlock()
	return nil
}

// surgeEnd removes whatever a prior surge placed on the rack. VMs the
// controller already migrated off the rack are removed wherever they
// landed — RemoveVM tracks the VM, not the slot.
func (r *Runner) surgeEnd(rack int) error {
	r.mu.Lock()
	vms := r.surgeVMs[rack]
	delete(r.surgeVMs, rack)
	r.mu.Unlock()
	for _, id := range vms {
		if err := r.ctrl.RemoveVM(id); err != nil {
			return fmt.Errorf("removing %s: %w", id, err)
		}
	}
	return nil
}

// grade folds one completed round into the accumulators. The measured die
// temperatures come from the simulator's noise-free oracle — the grading
// ground truth the control plane itself never sees.
func (r *Runner) grade(round int, rep *fleet.RoundReport) {
	var err error
	r.die, err = r.ctrl.MeasuredDieTemps(r.die)
	if err != nil {
		r.die = nil // source-driven fleet: grade on control-plane signals only
	}

	onset := r.spec.Onset()
	var hotIDs []string
	threshold := 0.0
	r.ctrl.ViewSnapshot(func(s *fleet.Snapshot) {
		threshold = s.ThresholdC
		for _, h := range s.Hotspots {
			hotIDs = append(hotIDs, h.HostID)
		}
	})

	r.mu.Lock()
	defer r.mu.Unlock()
	r.round = round
	r.curHotspots = len(hotIDs)
	r.curStale = rep.StaleHosts
	r.migrationsApplied += rep.AppliedMoves
	for _, id := range hotIDs {
		r.flagged[id] = true
	}
	if len(hotIDs) > 0 {
		r.lastHotRound = round
		if r.firstFlagRound == 0 && (onset == 0 || round >= onset) {
			r.firstFlagRound = round
		}
		if len(hotIDs) > r.peakHotspots {
			r.peakHotspots = len(hotIDs)
		}
	}
	for id, t := range r.die {
		if t > r.peakMeasuredC {
			r.peakMeasuredC = t
		}
		if threshold > 0 && t > threshold {
			r.crossed[id] = true
			if r.measuredCrossRound == 0 && (onset == 0 || round >= onset) {
				r.measuredCrossRound = round
			}
		}
	}
	if rep.StaleHosts > r.maxStaleHosts {
		r.maxStaleHosts = rep.StaleHosts
	}
	if rep.StaleHosts > 0 {
		r.staleSeen = true
		r.reconvergeRound = 0
	} else if r.staleSeen && r.reconvergeRound == 0 {
		r.reconvergeRound = round
	}
	_, total := r.ctrl.IngestRejected()
	r.rejected = total - r.baseRej
	if round >= r.spec.Rounds {
		r.done = true
	}
}

// Status is the live view a server exposes while a scenario runs.
type Status struct {
	Name        string `json:"name"`
	Active      bool   `json:"active"`
	Done        bool   `json:"done"`
	Round       int    `json:"round"`
	TotalRounds int    `json:"total_rounds"`
	OnsetRound  int    `json:"onset_round"`
	// FaultsActive counts currently-injected fault conditions (a degraded
	// CRAC, an excursed setpoint, a recirculation breach, a blackout, each
	// faulted sensor, each surged rack).
	FaultsActive int `json:"faults_active"`
	Hotspots     int `json:"hotspots"`
	StaleHosts   int `json:"stale_hosts"`
	// Contained reports that a past emergency's hotspot set has returned
	// to empty (trivially false before any hotspot appears).
	Contained bool             `json:"contained"`
	Rejected  int64            `json:"readings_rejected"`
	CRAC      fleet.CRACStatus `json:"crac"`
}

// Status snapshots the run's live state. Safe for concurrent use with
// Step.
func (r *Runner) Status() Status {
	crac, _ := r.ctrl.CRACStatus()
	r.mu.Lock()
	defer r.mu.Unlock()
	faults := 0
	if r.capacityFrac < 1 {
		faults++
	}
	if r.setpointD != 0 {
		faults++
	}
	if r.recircMult != 1 {
		faults++
	}
	if r.dark {
		faults++
	}
	faults += len(r.sensorFaults) + len(r.surgeVMs)
	return Status{
		Name:         r.spec.Name,
		Active:       !r.done,
		Done:         r.done,
		Round:        r.round,
		TotalRounds:  r.spec.Rounds,
		OnsetRound:   r.spec.Onset(),
		FaultsActive: faults,
		Hotspots:     r.curHotspots,
		StaleHosts:   r.curStale,
		Contained:    r.lastHotRound > 0 && r.curHotspots == 0,
		Rejected:     r.rejected,
		CRAC:         crac,
	}
}
