package vmm

import (
	"errors"
	"math"
	"testing"
)

func mustVM(t *testing.T, id string, vcpus int, memGB float64) *VM {
	t.Helper()
	vm, err := NewVM(id, VMConfig{VCPUs: vcpus, MemoryGB: memGB})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestNewVMValidation(t *testing.T) {
	if _, err := NewVM("", VMConfig{VCPUs: 1, MemoryGB: 1}); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewVM("v", VMConfig{VCPUs: 0, MemoryGB: 1}); err == nil {
		t.Error("zero vcpus should fail")
	}
	if _, err := NewVM("v", VMConfig{VCPUs: 1, MemoryGB: 0}); err == nil {
		t.Error("zero memory should fail")
	}
}

func TestVMLifecycleHappyPath(t *testing.T) {
	vm := mustVM(t, "v1", 2, 4)
	if vm.State() != VMPending {
		t.Fatalf("initial state = %v", vm.State())
	}
	if err := vm.Start(10); err != nil {
		t.Fatal(err)
	}
	if err := vm.BeginMigration(20); err != nil {
		t.Fatal(err)
	}
	if err := vm.CompleteMigration(30); err != nil {
		t.Fatal(err)
	}
	if err := vm.Stop(40); err != nil {
		t.Fatal(err)
	}
	log := vm.Log()
	if len(log) != 4 {
		t.Fatalf("log has %d entries, want 4", len(log))
	}
	wantTimes := []float64{10, 20, 30, 40}
	for i, tr := range log {
		if tr.At != wantTimes[i] {
			t.Errorf("log[%d].At = %v, want %v", i, tr.At, wantTimes[i])
		}
	}
	if log[3].To != VMStopped {
		t.Errorf("final transition to %v", log[3].To)
	}
}

func TestVMInvalidTransitions(t *testing.T) {
	vm := mustVM(t, "v1", 1, 1)
	if err := vm.BeginMigration(0); !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("pending->migrating err = %v", err)
	}
	if err := vm.CompleteMigration(0); !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("pending->complete err = %v", err)
	}
	if err := vm.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(1); !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("double start err = %v", err)
	}
	if err := vm.Stop(2); err != nil {
		t.Fatal(err)
	}
	if err := vm.Stop(3); !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("double stop err = %v", err)
	}
}

func TestVMStateStrings(t *testing.T) {
	want := map[VMState]string{
		VMPending:   "pending",
		VMRunning:   "running",
		VMMigrating: "migrating",
		VMStopped:   "stopped",
		VMState(9):  "VMState(9)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), str)
		}
	}
}

func TestAddRemoveTasks(t *testing.T) {
	vm := mustVM(t, "v1", 4, 8)
	if err := vm.AddTask(Task{ID: "a", Class: CPUBound, CPUFraction: 0.9, MemGB: 1}); err != nil {
		t.Fatal(err)
	}
	if err := vm.AddTask(Task{ID: "a", Class: CPUBound, CPUFraction: 0.1}); err == nil {
		t.Error("duplicate task should fail")
	}
	if err := vm.AddTask(Task{ID: "", Class: CPUBound}); err == nil {
		t.Error("invalid task should fail")
	}
	if err := vm.AddTask(Task{ID: "b", Class: MemBound, CPUFraction: 0.3, MemGB: 4}); err != nil {
		t.Fatal(err)
	}
	if vm.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d", vm.NumTasks())
	}
	if err := vm.RemoveTask("a"); err != nil {
		t.Fatal(err)
	}
	if err := vm.RemoveTask("a"); err == nil {
		t.Error("removing absent task should fail")
	}
	if vm.NumTasks() != 1 {
		t.Fatalf("NumTasks after remove = %d", vm.NumTasks())
	}
}

func TestTasksSortedDeterministically(t *testing.T) {
	vm := mustVM(t, "v1", 4, 8)
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if err := vm.AddTask(Task{ID: id, Class: IOBound, CPUFraction: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	tasks := vm.Tasks()
	if tasks[0].ID != "alpha" || tasks[1].ID != "mid" || tasks[2].ID != "zeta" {
		t.Errorf("tasks not sorted: %v, %v, %v", tasks[0].ID, tasks[1].ID, tasks[2].ID)
	}
}

func TestCPUDemandCappedByVCPUs(t *testing.T) {
	vm := mustVM(t, "v1", 2, 8)
	for i, frac := range []float64{0.9, 0.8, 0.9} {
		if err := vm.AddTask(Task{ID: string(rune('a' + i)), Class: CPUBound, CPUFraction: frac}); err != nil {
			t.Fatal(err)
		}
	}
	// Raw sum 2.6 > 2 vCPUs.
	if got := vm.CPUDemandVCPUs(); got != 2 {
		t.Errorf("CPUDemandVCPUs = %v, want capped 2", got)
	}
}

func TestMemUsedCappedByAllocation(t *testing.T) {
	vm := mustVM(t, "v1", 2, 4)
	if err := vm.AddTask(Task{ID: "big", Class: MemBound, CPUFraction: 0.2, MemGB: 10}); err != nil {
		t.Fatal(err)
	}
	if got := vm.MemUsedGB(); got != 4 {
		t.Errorf("MemUsedGB = %v, want capped 4", got)
	}
}

func TestSetTaskCPU(t *testing.T) {
	vm := mustVM(t, "v1", 2, 4)
	if err := vm.AddTask(Task{ID: "t", Class: Bursty, CPUFraction: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := vm.SetTaskCPU("t", 0.7); err != nil {
		t.Fatal(err)
	}
	if got := vm.CPUDemandVCPUs(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("demand after SetTaskCPU = %v", got)
	}
	if err := vm.SetTaskCPU("missing", 0.5); err == nil {
		t.Error("unknown task should fail")
	}
	if err := vm.SetTaskCPU("t", 1.5); err == nil {
		t.Error("out-of-range fraction should fail")
	}
}

func TestClassMix(t *testing.T) {
	vm := mustVM(t, "v1", 8, 16)
	if len(vm.ClassMix()) != 0 {
		t.Error("empty VM should have empty mix")
	}
	specs := []Task{
		{ID: "1", Class: CPUBound, CPUFraction: 0.5},
		{ID: "2", Class: CPUBound, CPUFraction: 0.5},
		{ID: "3", Class: MemBound, CPUFraction: 0.5},
		{ID: "4", Class: IOBound, CPUFraction: 0.5},
	}
	for _, s := range specs {
		if err := vm.AddTask(s); err != nil {
			t.Fatal(err)
		}
	}
	mix := vm.ClassMix()
	if mix[CPUBound] != 0.5 || mix[MemBound] != 0.25 || mix[IOBound] != 0.25 {
		t.Errorf("mix = %v", mix)
	}
	if mix[Bursty] != 0 {
		t.Errorf("bursty mix = %v, want 0", mix[Bursty])
	}
}
