package vmm

import (
	"errors"
	"fmt"

	"vmtherm/internal/sim"
)

// MigrationSpec parameterizes live pre-copy migration.
type MigrationSpec struct {
	// BandwidthGBps is the migration link throughput.
	BandwidthGBps float64
	// DirtyRateGBps is how fast the guest re-dirties transferred pages.
	DirtyRateGBps float64
	// MaxRounds caps pre-copy iterations before stop-and-copy.
	MaxRounds int
	// StopCopyThresholdGB switches to stop-and-copy once the residual dirty
	// set is this small.
	StopCopyThresholdGB float64
}

// DefaultMigrationSpec models a 10 GbE migration network.
func DefaultMigrationSpec() MigrationSpec {
	return MigrationSpec{
		BandwidthGBps:       1.25, // 10 Gb/s
		DirtyRateGBps:       0.2,
		MaxRounds:           8,
		StopCopyThresholdGB: 0.25,
	}
}

// Validate checks the spec. Migration only converges when the link outruns
// the dirty rate; reject non-converging configurations up front.
func (s MigrationSpec) Validate() error {
	if s.BandwidthGBps <= 0 {
		return fmt.Errorf("vmm: bandwidth must be > 0, got %v", s.BandwidthGBps)
	}
	if s.DirtyRateGBps < 0 {
		return fmt.Errorf("vmm: dirty rate must be >= 0, got %v", s.DirtyRateGBps)
	}
	if s.DirtyRateGBps >= s.BandwidthGBps {
		return fmt.Errorf("vmm: dirty rate %v >= bandwidth %v never converges",
			s.DirtyRateGBps, s.BandwidthGBps)
	}
	if s.MaxRounds < 1 {
		return fmt.Errorf("vmm: max rounds must be >= 1, got %d", s.MaxRounds)
	}
	if s.StopCopyThresholdGB <= 0 {
		return fmt.Errorf("vmm: stop-copy threshold must be > 0, got %v", s.StopCopyThresholdGB)
	}
	return nil
}

// MigrationPlan is the computed schedule of a pre-copy migration.
type MigrationPlan struct {
	// Rounds is the number of pre-copy iterations (excluding stop-and-copy).
	Rounds int
	// PreCopySeconds is time spent copying while the VM runs on the source.
	PreCopySeconds float64
	// DowntimeSeconds is the stop-and-copy blackout.
	DowntimeSeconds float64
	// TransferredGB is total bytes moved, including re-sent dirty pages.
	TransferredGB float64
}

// TotalSeconds is the end-to-end migration duration.
func (p MigrationPlan) TotalSeconds() float64 {
	return p.PreCopySeconds + p.DowntimeSeconds
}

// PlanMigration computes the pre-copy schedule for a VM with the given
// active memory footprint.
func PlanMigration(memGB float64, spec MigrationSpec) (MigrationPlan, error) {
	if err := spec.Validate(); err != nil {
		return MigrationPlan{}, err
	}
	if memGB <= 0 {
		return MigrationPlan{}, fmt.Errorf("vmm: memory footprint must be > 0, got %v", memGB)
	}
	var plan MigrationPlan
	remaining := memGB
	for plan.Rounds < spec.MaxRounds && remaining > spec.StopCopyThresholdGB {
		t := remaining / spec.BandwidthGBps
		plan.PreCopySeconds += t
		plan.TransferredGB += remaining
		remaining = spec.DirtyRateGBps * t // pages dirtied during this round
		plan.Rounds++
	}
	plan.DowntimeSeconds = remaining / spec.BandwidthGBps
	plan.TransferredGB += remaining
	return plan, nil
}

// Migrator executes live migrations on the simulation engine, moving VMs
// between hosts with correct lifecycle transitions and capacity admission.
type Migrator struct {
	spec MigrationSpec
}

// NewMigrator returns a migrator with the given link characteristics.
func NewMigrator(spec MigrationSpec) (*Migrator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Migrator{spec: spec}, nil
}

// ErrMigrationRejected is returned when the destination cannot admit the VM.
var ErrMigrationRejected = errors.New("vmm: destination rejected migration")

// Migrate starts a live migration of vm from src to dst on engine e. The VM
// enters Migrating immediately (its load stays on src with CPU overhead);
// when pre-copy and stop-and-copy complete, the VM lands Running on dst.
// onDone, if non-nil, is invoked at completion with the executed plan.
//
// Destination capacity is reserved up front (real clouds admission-check
// before moving bytes); failure leaves the VM running on src.
func (m *Migrator) Migrate(e *sim.Engine, vm *VM, src, dst *Host, onDone func(MigrationPlan)) error {
	if vm == nil || src == nil || dst == nil || e == nil {
		return errors.New("vmm: nil argument to Migrate")
	}
	if src.ID() == dst.ID() {
		return fmt.Errorf("vmm: migration src and dst are both %q", src.ID())
	}
	if _, err := src.VM(vm.ID()); err != nil {
		return fmt.Errorf("vmm: vm %q not on source: %w", vm.ID(), err)
	}
	plan, err := PlanMigration(vm.Config().MemoryGB, m.spec)
	if err != nil {
		return err
	}
	// Reserve destination capacity before starting.
	if err := dst.PlaceIncoming(vm); err != nil {
		return fmt.Errorf("%w: %v", ErrMigrationRejected, err)
	}
	if err := vm.BeginMigration(e.Now()); err != nil {
		// Roll back the reservation; the VM was not in a migratable state.
		_ = dst.Remove(vm.ID())
		return err
	}
	return e.ScheduleAfter(plan.TotalSeconds(), "migration:"+vm.ID(), func(en *sim.Engine) {
		// The source copy disappears and the VM resumes on dst.
		_ = src.Remove(vm.ID())
		_ = dst.ConfirmIncoming(vm.ID())
		_ = vm.CompleteMigration(en.Now())
		if onDone != nil {
			onDone(plan)
		}
	})
}

// Spec returns the migrator's link spec.
func (m *Migrator) Spec() MigrationSpec { return m.spec }
