package vmm

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// VMState is a VM lifecycle state.
type VMState int

// VM lifecycle states.
const (
	VMPending VMState = iota + 1
	VMRunning
	VMMigrating
	VMStopped
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	switch s {
	case VMPending:
		return "pending"
	case VMRunning:
		return "running"
	case VMMigrating:
		return "migrating"
	case VMStopped:
		return "stopped"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// ErrInvalidTransition is returned for illegal lifecycle transitions.
var ErrInvalidTransition = errors.New("vmm: invalid state transition")

// VMConfig is the user-requested shape of a VM.
type VMConfig struct {
	// VCPUs is the virtual CPU count.
	VCPUs int
	// MemoryGB is the allocated guest memory.
	MemoryGB float64
}

// Validate checks the configuration.
func (c VMConfig) Validate() error {
	if c.VCPUs < 1 {
		return fmt.Errorf("vmm: vcpus must be >= 1, got %d", c.VCPUs)
	}
	if c.MemoryGB <= 0 {
		return fmt.Errorf("vmm: memory must be > 0, got %v", c.MemoryGB)
	}
	return nil
}

// Transition is one audit-log entry of a VM lifecycle change.
type Transition struct {
	At   float64 // simulation time, seconds
	From VMState
	To   VMState
}

// VM is a virtual machine instance: a config, a set of deployed tasks, and a
// lifecycle state with an audit trail.
//
// Tasks live in an insertion-ordered slice with a side index: the hot loops
// of fleet simulation (per-tick demand updates and utilization sums) scan a
// handful of contiguous structs instead of paying randomized map iteration
// per call, and iteration order is deterministic.
type VM struct {
	id      string
	config  VMConfig
	state   VMState
	tasks   []Task
	taskIdx map[string]int // task id → index into tasks
	log     []Transition
}

// NewVM creates a VM in the pending state.
func NewVM(id string, config VMConfig) (*VM, error) {
	if id == "" {
		return nil, errors.New("vmm: vm missing id")
	}
	if err := config.Validate(); err != nil {
		return nil, err
	}
	return &VM{
		id:      id,
		config:  config,
		state:   VMPending,
		taskIdx: make(map[string]int),
	}, nil
}

// ID returns the VM identifier.
func (v *VM) ID() string { return v.id }

// Config returns the VM's configuration.
func (v *VM) Config() VMConfig { return v.config }

// State returns the current lifecycle state.
func (v *VM) State() VMState { return v.state }

// Log returns a copy of the transition audit trail.
func (v *VM) Log() []Transition {
	out := make([]Transition, len(v.log))
	copy(out, v.log)
	return out
}

// transition enforces the lifecycle FSM.
func (v *VM) transition(now float64, to VMState, allowedFrom ...VMState) error {
	for _, from := range allowedFrom {
		if v.state == from {
			v.log = append(v.log, Transition{At: now, From: v.state, To: to})
			v.state = to
			return nil
		}
	}
	return fmt.Errorf("%w: %s -> %s", ErrInvalidTransition, v.state, to)
}

// Start moves Pending → Running.
func (v *VM) Start(now float64) error {
	return v.transition(now, VMRunning, VMPending)
}

// BeginMigration moves Running → Migrating.
func (v *VM) BeginMigration(now float64) error {
	return v.transition(now, VMMigrating, VMRunning)
}

// CompleteMigration moves Migrating → Running.
func (v *VM) CompleteMigration(now float64) error {
	return v.transition(now, VMRunning, VMMigrating)
}

// AbortMigration moves Migrating → Running (stays on source).
func (v *VM) AbortMigration(now float64) error {
	return v.transition(now, VMRunning, VMMigrating)
}

// Stop moves Pending or Running → Stopped.
func (v *VM) Stop(now float64) error {
	return v.transition(now, VMStopped, VMPending, VMRunning)
}

// AddTask deploys a task into the VM. Task IDs must be unique per VM.
func (v *VM) AddTask(t Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, ok := v.taskIdx[t.ID]; ok {
		return fmt.Errorf("vmm: duplicate task %q in vm %q", t.ID, v.id)
	}
	v.taskIdx[t.ID] = len(v.tasks)
	v.tasks = append(v.tasks, t)
	return nil
}

// RemoveTask undeploys a task.
func (v *VM) RemoveTask(id string) error {
	idx, ok := v.taskIdx[id]
	if !ok {
		return fmt.Errorf("vmm: no task %q in vm %q", id, v.id)
	}
	v.tasks = append(v.tasks[:idx], v.tasks[idx+1:]...)
	delete(v.taskIdx, id)
	for i := idx; i < len(v.tasks); i++ {
		v.taskIdx[v.tasks[i].ID] = i
	}
	return nil
}

// SetTaskCPU updates a task's current CPU demand fraction; the workload
// generator calls this to realize dynamic load profiles.
func (v *VM) SetTaskCPU(id string, fraction float64) error {
	idx, ok := v.taskIdx[id]
	if !ok {
		return fmt.Errorf("vmm: no task %q in vm %q", id, v.id)
	}
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("vmm: cpu fraction %v outside [0,1]", fraction)
	}
	v.tasks[idx].CPUFraction = fraction
	return nil
}

// Tasks returns the deployed tasks sorted by ID (deterministic iteration).
func (v *VM) Tasks() []Task {
	out := make([]Task, len(v.tasks))
	copy(out, v.tasks)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumTasks returns the deployed task count.
func (v *VM) NumTasks() int { return len(v.tasks) }

// CPUDemandVCPUs returns the VM's current CPU demand in vCPU units, capped
// at the configured vCPU count (a VM cannot use more than it was given).
func (v *VM) CPUDemandVCPUs() float64 {
	var sum float64
	for i := range v.tasks {
		sum += v.tasks[i].CPUFraction
	}
	return math.Min(sum, float64(v.config.VCPUs))
}

// TaskCPUStats returns the raw (uncapped) sum and maximum of the VM's task
// CPU fractions without allocating. Together with the VM's identity these
// determine every CPU-load feature the Eq. (2) encoder derives from a
// deployment snapshot — the anchor cache folds them into its deployment
// fingerprint so a load redistribution (same total, different tasks) is a
// different key.
func (v *VM) TaskCPUStats() (sum, maxFraction float64) {
	for i := range v.tasks {
		f := v.tasks[i].CPUFraction
		sum += f
		if f > maxFraction {
			maxFraction = f
		}
	}
	return sum, maxFraction
}

// MemUsedGB returns active memory, capped at the allocation.
func (v *VM) MemUsedGB() float64 {
	var sum float64
	for i := range v.tasks {
		sum += v.tasks[i].MemGB
	}
	return math.Min(sum, v.config.MemoryGB)
}

// ClassMix returns the fraction of tasks per class (zero map for no tasks).
func (v *VM) ClassMix() map[TaskClass]float64 {
	mix := make(map[TaskClass]float64, 4)
	if len(v.tasks) == 0 {
		return mix
	}
	for i := range v.tasks {
		mix[v.tasks[i].Class]++
	}
	for c := range mix {
		mix[c] /= float64(len(v.tasks))
	}
	return mix
}
