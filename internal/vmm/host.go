package vmm

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// HostConfig describes a physical server's capacity: the paper's θ_cpu and
// θ_memory features derive from it.
type HostConfig struct {
	// Cores is the physical core count.
	Cores int
	// GHzPerCore is the nominal per-core clock.
	GHzPerCore float64
	// MemoryGB is installed RAM.
	MemoryGB float64
	// CPUOvercommit allows placing more vCPUs than cores (1.0 = none).
	CPUOvercommit float64
}

// DefaultHostConfig returns a 16-core 2.6 GHz, 64 GB host with mild
// overcommit, the reference shape for experiments.
func DefaultHostConfig() HostConfig {
	return HostConfig{Cores: 16, GHzPerCore: 2.6, MemoryGB: 64, CPUOvercommit: 1.5}
}

// Validate checks capacity sanity.
func (c HostConfig) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("vmm: cores must be >= 1, got %d", c.Cores)
	}
	if c.GHzPerCore <= 0 {
		return fmt.Errorf("vmm: GHz per core must be > 0, got %v", c.GHzPerCore)
	}
	if c.MemoryGB <= 0 {
		return fmt.Errorf("vmm: memory must be > 0, got %v", c.MemoryGB)
	}
	if c.CPUOvercommit < 1 {
		return fmt.Errorf("vmm: overcommit must be >= 1, got %v", c.CPUOvercommit)
	}
	return nil
}

// CPUCapacityGHz is total compute capacity (θ_cpu).
func (c HostConfig) CPUCapacityGHz() float64 {
	return float64(c.Cores) * c.GHzPerCore
}

// ErrCapacity is returned when a placement would exceed host capacity.
var ErrCapacity = errors.New("vmm: placement exceeds host capacity")

// MigrationCPUOverhead is the extra CPU demand fraction a migrating VM adds
// on its source host (dirty-page tracking and transfer threads).
const MigrationCPUOverhead = 0.10

// Host is one physical server hosting VMs.
//
// Placed VMs are kept both in a lookup map and an insertion-ordered slice:
// utilization and capacity sums — called per host per simulation tick at
// fleet scale — walk the slice, avoiding randomized map iteration on the
// hot path.
type Host struct {
	id     string
	config HostConfig
	vms    map[string]*VM
	list   []*VM // placement order; parallel to vms
	// incoming marks VMs whose capacity is reserved here while they still
	// execute on a migration source; they hold capacity but burn no CPU.
	incoming map[string]bool
}

// NewHost creates an empty host.
func NewHost(id string, config HostConfig) (*Host, error) {
	if id == "" {
		return nil, errors.New("vmm: host missing id")
	}
	if err := config.Validate(); err != nil {
		return nil, err
	}
	return &Host{
		id:       id,
		config:   config,
		vms:      make(map[string]*VM),
		incoming: make(map[string]bool),
	}, nil
}

// ID returns the host identifier.
func (h *Host) ID() string { return h.id }

// Config returns the host capacity configuration.
func (h *Host) Config() HostConfig { return h.config }

// Place admits a VM onto the host, enforcing vCPU-overcommit and memory
// capacity. The VM keeps its lifecycle state; placement is orthogonal to
// running.
func (h *Host) Place(vm *VM) error {
	if vm == nil {
		return errors.New("vmm: nil vm")
	}
	if _, ok := h.vms[vm.ID()]; ok {
		return fmt.Errorf("vmm: vm %q already on host %q", vm.ID(), h.id)
	}
	vcpus := float64(vm.Config().VCPUs)
	mem := vm.Config().MemoryGB
	if h.PlacedVCPUs()+vcpus > float64(h.config.Cores)*h.config.CPUOvercommit {
		return fmt.Errorf("%w: %v vCPUs over limit on %q", ErrCapacity, vcpus, h.id)
	}
	if h.PlacedMemGB()+mem > h.config.MemoryGB {
		return fmt.Errorf("%w: %v GB over limit on %q", ErrCapacity, mem, h.id)
	}
	h.vms[vm.ID()] = vm
	h.list = append(h.list, vm)
	return nil
}

// PlaceIncoming reserves capacity for a VM migrating in: it holds vCPU and
// memory budget but contributes no load until ConfirmIncoming.
func (h *Host) PlaceIncoming(vm *VM) error {
	if err := h.Place(vm); err != nil {
		return err
	}
	h.incoming[vm.ID()] = true
	return nil
}

// ConfirmIncoming completes an inbound migration: the VM starts counting
// toward utilization on this host.
func (h *Host) ConfirmIncoming(vmID string) error {
	if !h.incoming[vmID] {
		return fmt.Errorf("vmm: vm %q has no inbound reservation on %q", vmID, h.id)
	}
	delete(h.incoming, vmID)
	return nil
}

// Remove evicts a VM from the host (it keeps running elsewhere or stops; the
// caller decides). Inbound reservations are released too.
func (h *Host) Remove(vmID string) error {
	if _, ok := h.vms[vmID]; !ok {
		return fmt.Errorf("vmm: no vm %q on host %q", vmID, h.id)
	}
	delete(h.vms, vmID)
	delete(h.incoming, vmID)
	for i, vm := range h.list {
		if vm.ID() == vmID {
			h.list = append(h.list[:i], h.list[i+1:]...)
			break
		}
	}
	return nil
}

// VM returns a placed VM by id.
func (h *Host) VM(id string) (*VM, error) {
	vm, ok := h.vms[id]
	if !ok {
		return nil, fmt.Errorf("vmm: no vm %q on host %q", id, h.id)
	}
	return vm, nil
}

// VMs returns placed VMs sorted by ID.
func (h *Host) VMs() []*VM {
	out := make([]*VM, len(h.list))
	copy(out, h.list)
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// VMAt returns the i-th placed VM in placement order (0 ≤ i < NumVMs). It
// allocates nothing — the iteration primitive for per-tick fleet loops and
// anchor-cache deployment fingerprinting.
func (h *Host) VMAt(i int) *VM { return h.list[i] }

// NumVMs returns the placed VM count.
func (h *Host) NumVMs() int { return len(h.vms) }

// PlacedVCPUs sums configured vCPUs across placed VMs.
func (h *Host) PlacedVCPUs() float64 {
	var sum float64
	for _, vm := range h.list {
		sum += float64(vm.Config().VCPUs)
	}
	return sum
}

// PlacedMemGB sums configured memory across placed VMs.
func (h *Host) PlacedMemGB() float64 {
	var sum float64
	for _, vm := range h.list {
		sum += vm.Config().MemoryGB
	}
	return sum
}

// Utilization returns current physical CPU utilization in [0, 1]: the sum of
// running VMs' demands (plus migration overhead) over physical cores.
func (h *Host) Utilization() float64 {
	var demand float64
	for _, vm := range h.list {
		if len(h.incoming) > 0 && h.incoming[vm.ID()] {
			continue // reserved only; executing on the migration source
		}
		switch vm.State() {
		case VMRunning:
			demand += vm.CPUDemandVCPUs()
		case VMMigrating:
			demand += vm.CPUDemandVCPUs() * (1 + MigrationCPUOverhead)
		default:
			// pending and stopped VMs consume no CPU
		}
	}
	return math.Min(demand/float64(h.config.Cores), 1)
}

// Loads returns Utilization and MemActiveFrac from one walk over the placed
// VMs. The fleet tick loop reads both per host per simulation step; the
// combined sweep halves that cost at datacenter scale. The accumulation
// order matches the individual methods exactly, so the results are
// bit-identical to calling them separately.
func (h *Host) Loads() (util, memFrac float64) {
	var demand, used float64
	for _, vm := range h.list {
		if len(h.incoming) > 0 && h.incoming[vm.ID()] {
			continue // reserved only; executing on the migration source
		}
		switch vm.State() {
		case VMRunning:
			demand += vm.CPUDemandVCPUs()
			used += vm.MemUsedGB()
		case VMMigrating:
			demand += vm.CPUDemandVCPUs() * (1 + MigrationCPUOverhead)
			used += vm.MemUsedGB()
		default:
			// pending and stopped VMs consume no CPU or active memory
		}
	}
	return math.Min(demand/float64(h.config.Cores), 1),
		math.Min(used/h.config.MemoryGB, 1)
}

// MemActiveFrac returns the fraction of host memory actively used by
// running or migrating VMs, in [0, 1].
func (h *Host) MemActiveFrac() float64 {
	var used float64
	for _, vm := range h.list {
		if len(h.incoming) > 0 && h.incoming[vm.ID()] {
			continue
		}
		if st := vm.State(); st == VMRunning || st == VMMigrating {
			used += vm.MemUsedGB()
		}
	}
	return math.Min(used/h.config.MemoryGB, 1)
}
