// Package vmm models the virtualization substrate the paper's predictor
// observes through the Virtual Machine Manager: heterogeneous tasks deployed
// in VMs, VM lifecycle (provision → run → migrate → stop), host capacity
// accounting, and live migration with pre-copy rounds.
//
// The paper's central argument is that task-temperature and RC baselines
// assume one homogeneous task per server, while clouds run many VMs with
// heterogeneous resource profiles that change at runtime (migration). This
// package provides exactly that heterogeneity and dynamism.
package vmm

import (
	"errors"
	"fmt"
)

// TaskClass labels a task's dominant resource profile. Class frequencies in
// an experiment are part of the ξ_VM feature encoding.
type TaskClass int

// Task classes.
const (
	// CPUBound tasks run hot: high sustained CPU, little memory traffic.
	CPUBound TaskClass = iota + 1
	// MemBound tasks stress DRAM: moderate CPU, high memory activity.
	MemBound
	// IOBound tasks mostly wait: low CPU, low memory.
	IOBound
	// Bursty tasks alternate between hot and idle phases.
	Bursty
)

// String implements fmt.Stringer.
func (c TaskClass) String() string {
	switch c {
	case CPUBound:
		return "cpu-bound"
	case MemBound:
		return "mem-bound"
	case IOBound:
		return "io-bound"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("TaskClass(%d)", int(c))
	}
}

// TaskClasses lists all valid classes, for iteration in feature encoders.
func TaskClasses() []TaskClass {
	return []TaskClass{CPUBound, MemBound, IOBound, Bursty}
}

// Task is one deployed workload inside a VM.
type Task struct {
	// ID uniquely names the task within its VM.
	ID string
	// Class is the dominant resource profile.
	Class TaskClass
	// CPUFraction is the task's current demand as a fraction of one vCPU
	// (0..1). The workload generator updates it over time for dynamic
	// profiles.
	CPUFraction float64
	// MemGB is resident memory actively touched by the task.
	MemGB float64
}

// Validate checks task fields.
func (t Task) Validate() error {
	if t.ID == "" {
		return errors.New("vmm: task missing id")
	}
	switch t.Class {
	case CPUBound, MemBound, IOBound, Bursty:
	default:
		return fmt.Errorf("vmm: task %s has invalid class %d", t.ID, int(t.Class))
	}
	if t.CPUFraction < 0 || t.CPUFraction > 1 {
		return fmt.Errorf("vmm: task %s cpu fraction %v outside [0,1]", t.ID, t.CPUFraction)
	}
	if t.MemGB < 0 {
		return fmt.Errorf("vmm: task %s negative memory %v", t.ID, t.MemGB)
	}
	return nil
}
