package vmm

import (
	"errors"
	"math"
	"testing"
)

func mustHost(t *testing.T, id string) *Host {
	t.Helper()
	h, err := NewHost(id, DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHostConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*HostConfig)
		ok     bool
	}{
		{"default", func(*HostConfig) {}, true},
		{"zero cores", func(c *HostConfig) { c.Cores = 0 }, false},
		{"zero ghz", func(c *HostConfig) { c.GHzPerCore = 0 }, false},
		{"zero mem", func(c *HostConfig) { c.MemoryGB = 0 }, false},
		{"undercommit", func(c *HostConfig) { c.CPUOvercommit = 0.5 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultHostConfig()
			tt.mutate(&c)
			err := c.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestCPUCapacityGHz(t *testing.T) {
	c := HostConfig{Cores: 16, GHzPerCore: 2.5, MemoryGB: 64, CPUOvercommit: 1}
	if got := c.CPUCapacityGHz(); got != 40 {
		t.Errorf("capacity = %v, want 40", got)
	}
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost("", DefaultHostConfig()); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewHost("h", HostConfig{}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestPlaceAndCapacity(t *testing.T) {
	h := mustHost(t, "h1") // 16 cores, overcommit 1.5 → 24 vCPUs; 64 GB
	if err := h.Place(nil); err == nil {
		t.Error("nil vm should fail")
	}
	v1 := mustVM(t, "v1", 16, 32)
	if err := h.Place(v1); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(v1); err == nil {
		t.Error("double placement should fail")
	}
	// 16 + 16 = 32 vCPUs > 24 limit.
	if err := h.Place(mustVM(t, "v2", 16, 16)); !errors.Is(err, ErrCapacity) {
		t.Errorf("vcpu overflow err = %v, want ErrCapacity", err)
	}
	// Memory: 32 + 48 = 80 > 64.
	if err := h.Place(mustVM(t, "v3", 4, 48)); !errors.Is(err, ErrCapacity) {
		t.Errorf("memory overflow err = %v, want ErrCapacity", err)
	}
	// Fits both budgets.
	if err := h.Place(mustVM(t, "v4", 8, 16)); err != nil {
		t.Errorf("valid placement failed: %v", err)
	}
	if h.NumVMs() != 2 {
		t.Errorf("NumVMs = %d, want 2", h.NumVMs())
	}
	if h.PlacedVCPUs() != 24 || h.PlacedMemGB() != 48 {
		t.Errorf("placed = %v vCPU / %v GB", h.PlacedVCPUs(), h.PlacedMemGB())
	}
}

func TestRemove(t *testing.T) {
	h := mustHost(t, "h1")
	vm := mustVM(t, "v1", 2, 4)
	if err := h.Place(vm); err != nil {
		t.Fatal(err)
	}
	if err := h.Remove("v1"); err != nil {
		t.Fatal(err)
	}
	if err := h.Remove("v1"); err == nil {
		t.Error("double remove should fail")
	}
	if h.NumVMs() != 0 {
		t.Error("host not empty after remove")
	}
}

func TestVMLookupAndOrdering(t *testing.T) {
	h := mustHost(t, "h1")
	for _, id := range []string{"vz", "va", "vm"} {
		if err := h.Place(mustVM(t, id, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.VM("nope"); err == nil {
		t.Error("unknown vm should fail")
	}
	got, err := h.VM("va")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != "va" {
		t.Errorf("VM lookup returned %q", got.ID())
	}
	vms := h.VMs()
	if vms[0].ID() != "va" || vms[1].ID() != "vm" || vms[2].ID() != "vz" {
		t.Error("VMs not sorted by id")
	}
}

func TestUtilizationAggregatesRunningVMs(t *testing.T) {
	h := mustHost(t, "h1") // 16 cores
	v1 := mustVM(t, "v1", 4, 8)
	v2 := mustVM(t, "v2", 4, 8)
	v3 := mustVM(t, "v3", 4, 8)
	for _, vm := range []*VM{v1, v2, v3} {
		if err := h.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	addLoad := func(vm *VM, frac float64) {
		t.Helper()
		if err := vm.AddTask(Task{ID: "t", Class: CPUBound, CPUFraction: frac, MemGB: 2}); err != nil {
			t.Fatal(err)
		}
	}
	addLoad(v1, 1.0)
	addLoad(v2, 1.0)
	addLoad(v3, 0.5)
	// Nothing started: utilization 0.
	if h.Utilization() != 0 {
		t.Errorf("pending-only utilization = %v", h.Utilization())
	}
	if err := v1.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := v2.Start(0); err != nil {
		t.Fatal(err)
	}
	// 2.0 demand vCPUs / 16 cores.
	if got := h.Utilization(); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("utilization = %v, want 0.125", got)
	}
	// v3 still pending, then stopped VMs drop out.
	if err := v3.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := v2.Stop(1); err != nil {
		t.Fatal(err)
	}
	if got := h.Utilization(); math.Abs(got-1.5/16) > 1e-12 {
		t.Errorf("utilization = %v, want %v", got, 1.5/16)
	}
}

func TestUtilizationMigrationOverhead(t *testing.T) {
	h := mustHost(t, "h1")
	vm := mustVM(t, "v1", 4, 8)
	if err := h.Place(vm); err != nil {
		t.Fatal(err)
	}
	if err := vm.AddTask(Task{ID: "t", Class: CPUBound, CPUFraction: 1, MemGB: 1}); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(0); err != nil {
		t.Fatal(err)
	}
	base := h.Utilization()
	if err := vm.BeginMigration(1); err != nil {
		t.Fatal(err)
	}
	if got, want := h.Utilization(), base*(1+MigrationCPUOverhead); math.Abs(got-want) > 1e-12 {
		t.Errorf("migrating utilization = %v, want %v", got, want)
	}
}

func TestIncomingReservationHoldsCapacityWithoutLoad(t *testing.T) {
	h := mustHost(t, "h1")
	vm := mustVM(t, "v1", 8, 16)
	if err := vm.AddTask(Task{ID: "t", Class: CPUBound, CPUFraction: 1, MemGB: 8}); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceIncoming(vm); err != nil {
		t.Fatal(err)
	}
	// Capacity reserved...
	if h.PlacedVCPUs() != 8 {
		t.Errorf("reserved vcpus = %v", h.PlacedVCPUs())
	}
	// ...but no load counted.
	if h.Utilization() != 0 || h.MemActiveFrac() != 0 {
		t.Errorf("incoming VM contributes load: util %v mem %v", h.Utilization(), h.MemActiveFrac())
	}
	if err := h.ConfirmIncoming("v1"); err != nil {
		t.Fatal(err)
	}
	if h.Utilization() == 0 {
		t.Error("confirmed VM should contribute load")
	}
	if err := h.ConfirmIncoming("v1"); err == nil {
		t.Error("double confirm should fail")
	}
	if err := h.ConfirmIncoming("ghost"); err == nil {
		t.Error("confirming unknown reservation should fail")
	}
}

// TestLoadsMatchesSeparateSweeps: the combined single-walk Loads must be
// bit-identical to Utilization + MemActiveFrac across every VM state the
// two sweeps distinguish (running, migrating, pending, stopped, incoming
// reservation) — it is the fleet tick's replacement for calling all three.
func TestLoadsMatchesSeparateSweeps(t *testing.T) {
	h := mustHost(t, "h1")
	mk := func(id string, frac, memGB float64) *VM {
		t.Helper()
		vm := mustVM(t, id, 2, 8)
		if err := vm.AddTask(Task{ID: id + "-t", Class: CPUBound, CPUFraction: frac, MemGB: memGB}); err != nil {
			t.Fatal(err)
		}
		return vm
	}
	check := func(stage string) {
		t.Helper()
		util, mem := h.Loads()
		if wu := h.Utilization(); util != wu {
			t.Fatalf("%s: Loads util = %v, Utilization = %v", stage, util, wu)
		}
		if wm := h.MemActiveFrac(); mem != wm {
			t.Fatalf("%s: Loads mem = %v, MemActiveFrac = %v", stage, mem, wm)
		}
	}
	check("empty host")

	running := mk("run", 0.7, 4)
	pending := mk("pend", 1.0, 4)
	migrating := mk("mig", 0.5, 4)
	stopped := mk("stop", 1.0, 4)
	incoming := mk("in", 1.0, 4)
	for _, vm := range []*VM{running, pending, migrating, stopped} {
		if err := h.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	check("all pending")
	for _, vm := range []*VM{running, migrating, stopped, incoming} {
		if err := vm.Start(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := migrating.BeginMigration(1); err != nil {
		t.Fatal(err)
	}
	if err := stopped.Stop(1); err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceIncoming(incoming); err != nil {
		t.Fatal(err)
	}
	check("mixed states with reservation")
	if util, _ := h.Loads(); util == 0 {
		t.Fatal("mixed-state scenario produced zero utilization; comparison is vacuous")
	}
	if err := h.ConfirmIncoming("in"); err != nil {
		t.Fatal(err)
	}
	check("reservation confirmed")
}

func TestMemActiveFrac(t *testing.T) {
	h := mustHost(t, "h1") // 64 GB
	vm := mustVM(t, "v1", 4, 32)
	if err := vm.AddTask(Task{ID: "t", Class: MemBound, CPUFraction: 0.3, MemGB: 16}); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(vm); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(0); err != nil {
		t.Fatal(err)
	}
	if got := h.MemActiveFrac(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("MemActiveFrac = %v, want 0.25", got)
	}
}
