package vmm

import (
	"errors"
	"math"
	"testing"

	"vmtherm/internal/sim"
)

func TestMigrationSpecValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*MigrationSpec)
		ok     bool
	}{
		{"default", func(*MigrationSpec) {}, true},
		{"zero bandwidth", func(s *MigrationSpec) { s.BandwidthGBps = 0 }, false},
		{"negative dirty", func(s *MigrationSpec) { s.DirtyRateGBps = -1 }, false},
		{"dirty >= bw", func(s *MigrationSpec) { s.DirtyRateGBps = s.BandwidthGBps }, false},
		{"zero rounds", func(s *MigrationSpec) { s.MaxRounds = 0 }, false},
		{"zero threshold", func(s *MigrationSpec) { s.StopCopyThresholdGB = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := DefaultMigrationSpec()
			tt.mutate(&s)
			err := s.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestPlanMigrationGeometricRounds(t *testing.T) {
	spec := MigrationSpec{
		BandwidthGBps:       1,
		DirtyRateGBps:       0.5,
		MaxRounds:           10,
		StopCopyThresholdGB: 0.3,
	}
	plan, err := PlanMigration(8, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds: 8 → 4 → 2 → 1 → 0.5 → 0.25 (≤0.3 after 5 rounds)
	if plan.Rounds != 5 {
		t.Errorf("rounds = %d, want 5", plan.Rounds)
	}
	// Pre-copy time = (8+4+2+1+0.5)/1 = 15.5 s
	if math.Abs(plan.PreCopySeconds-15.5) > 1e-9 {
		t.Errorf("precopy = %v, want 15.5", plan.PreCopySeconds)
	}
	// Downtime = 0.25/1 s
	if math.Abs(plan.DowntimeSeconds-0.25) > 1e-9 {
		t.Errorf("downtime = %v, want 0.25", plan.DowntimeSeconds)
	}
	if math.Abs(plan.TransferredGB-15.75) > 1e-9 {
		t.Errorf("transferred = %v, want 15.75", plan.TransferredGB)
	}
	if math.Abs(plan.TotalSeconds()-15.75) > 1e-9 {
		t.Errorf("total = %v", plan.TotalSeconds())
	}
}

func TestPlanMigrationMaxRoundsCap(t *testing.T) {
	spec := MigrationSpec{
		BandwidthGBps:       1,
		DirtyRateGBps:       0.9, // slow convergence
		MaxRounds:           3,
		StopCopyThresholdGB: 0.001,
	}
	plan, err := PlanMigration(4, spec)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds != 3 {
		t.Errorf("rounds = %d, want capped 3", plan.Rounds)
	}
	// Residual after 3 rounds: 4*0.9^3 = 2.916 → long downtime.
	if math.Abs(plan.DowntimeSeconds-4*0.9*0.9*0.9) > 1e-9 {
		t.Errorf("downtime = %v", plan.DowntimeSeconds)
	}
}

func TestPlanMigrationValidation(t *testing.T) {
	if _, err := PlanMigration(0, DefaultMigrationSpec()); err == nil {
		t.Error("zero memory should fail")
	}
	if _, err := PlanMigration(4, MigrationSpec{}); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestHigherDirtyRateLongerMigration(t *testing.T) {
	slow := DefaultMigrationSpec()
	slow.DirtyRateGBps = 0.9
	fast := DefaultMigrationSpec()
	fast.DirtyRateGBps = 0.05
	p1, err := PlanMigration(16, slow)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanMigration(16, fast)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalSeconds() <= p2.TotalSeconds() {
		t.Errorf("dirty 0.9 total %v should exceed dirty 0.05 total %v",
			p1.TotalSeconds(), p2.TotalSeconds())
	}
}

func TestMigrateEndToEnd(t *testing.T) {
	e := sim.NewEngine()
	src := mustHost(t, "src")
	dst := mustHost(t, "dst")
	vm := mustVM(t, "v1", 4, 8)
	if err := vm.AddTask(Task{ID: "t", Class: CPUBound, CPUFraction: 0.8, MemGB: 4}); err != nil {
		t.Fatal(err)
	}
	if err := src.Place(vm); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(0); err != nil {
		t.Fatal(err)
	}
	mig, err := NewMigrator(DefaultMigrationSpec())
	if err != nil {
		t.Fatal(err)
	}
	var done MigrationPlan
	completed := false
	if err := mig.Migrate(e, vm, src, dst, func(p MigrationPlan) {
		done = p
		completed = true
	}); err != nil {
		t.Fatal(err)
	}
	if vm.State() != VMMigrating {
		t.Fatalf("state during migration = %v", vm.State())
	}
	// Source still carries (overheaded) load; dst reserved but idle.
	if src.Utilization() == 0 {
		t.Error("source lost load during pre-copy")
	}
	if dst.Utilization() != 0 {
		t.Error("destination has load during pre-copy")
	}
	if _, err := e.RunUntil(3600); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("migration never completed")
	}
	if done.TotalSeconds() <= 0 {
		t.Error("plan has no duration")
	}
	if vm.State() != VMRunning {
		t.Errorf("state after migration = %v", vm.State())
	}
	if src.NumVMs() != 0 {
		t.Error("vm still on source")
	}
	if dst.NumVMs() != 1 {
		t.Error("vm not on destination")
	}
	if dst.Utilization() == 0 {
		t.Error("destination idle after completed migration")
	}
}

func TestMigrateRejectedWhenDstFull(t *testing.T) {
	e := sim.NewEngine()
	src := mustHost(t, "src")
	dst := mustHost(t, "dst")
	// Fill destination memory.
	filler := mustVM(t, "filler", 4, 64)
	if err := dst.Place(filler); err != nil {
		t.Fatal(err)
	}
	vm := mustVM(t, "v1", 4, 8)
	if err := src.Place(vm); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(0); err != nil {
		t.Fatal(err)
	}
	mig, err := NewMigrator(DefaultMigrationSpec())
	if err != nil {
		t.Fatal(err)
	}
	err = mig.Migrate(e, vm, src, dst, nil)
	if !errors.Is(err, ErrMigrationRejected) {
		t.Fatalf("err = %v, want ErrMigrationRejected", err)
	}
	// VM unaffected on source.
	if vm.State() != VMRunning {
		t.Errorf("state after rejection = %v", vm.State())
	}
	if src.NumVMs() != 1 || dst.NumVMs() != 1 {
		t.Error("placement changed despite rejection")
	}
}

func TestMigrateInvalidArguments(t *testing.T) {
	e := sim.NewEngine()
	src := mustHost(t, "src")
	dst := mustHost(t, "dst")
	vm := mustVM(t, "v1", 1, 1)
	mig, err := NewMigrator(DefaultMigrationSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Migrate(nil, vm, src, dst, nil); err == nil {
		t.Error("nil engine should fail")
	}
	if err := mig.Migrate(e, nil, src, dst, nil); err == nil {
		t.Error("nil vm should fail")
	}
	if err := mig.Migrate(e, vm, src, src, nil); err == nil {
		t.Error("same src/dst should fail")
	}
	if err := mig.Migrate(e, vm, src, dst, nil); err == nil {
		t.Error("vm not on src should fail")
	}
}

func TestMigratePendingVMRollsBack(t *testing.T) {
	e := sim.NewEngine()
	src := mustHost(t, "src")
	dst := mustHost(t, "dst")
	vm := mustVM(t, "v1", 1, 1) // still pending: not migratable
	if err := src.Place(vm); err != nil {
		t.Fatal(err)
	}
	mig, err := NewMigrator(DefaultMigrationSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Migrate(e, vm, src, dst, nil); !errors.Is(err, ErrInvalidTransition) {
		t.Fatalf("err = %v, want ErrInvalidTransition", err)
	}
	if dst.NumVMs() != 0 {
		t.Error("reservation not rolled back after failed transition")
	}
}

func TestNewMigratorValidation(t *testing.T) {
	if _, err := NewMigrator(MigrationSpec{}); err == nil {
		t.Error("invalid spec should fail")
	}
	m, err := NewMigrator(DefaultMigrationSpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec().BandwidthGBps != DefaultMigrationSpec().BandwidthGBps {
		t.Error("Spec() lost configuration")
	}
}
