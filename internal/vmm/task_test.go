package vmm

import "testing"

func TestTaskValidate(t *testing.T) {
	valid := Task{ID: "t1", Class: CPUBound, CPUFraction: 0.5, MemGB: 1}
	tests := []struct {
		name   string
		mutate func(*Task)
		ok     bool
	}{
		{"valid", func(*Task) {}, true},
		{"missing id", func(x *Task) { x.ID = "" }, false},
		{"bad class", func(x *Task) { x.Class = TaskClass(0) }, false},
		{"negative cpu", func(x *Task) { x.CPUFraction = -0.1 }, false},
		{"cpu over 1", func(x *Task) { x.CPUFraction = 1.1 }, false},
		{"negative mem", func(x *Task) { x.MemGB = -2 }, false},
		{"zero cpu ok", func(x *Task) { x.CPUFraction = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			task := valid
			tt.mutate(&task)
			err := task.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestTaskClassStrings(t *testing.T) {
	want := map[TaskClass]string{
		CPUBound:      "cpu-bound",
		MemBound:      "mem-bound",
		IOBound:       "io-bound",
		Bursty:        "bursty",
		TaskClass(77): "TaskClass(77)",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("String(%d) = %q, want %q", int(c), got, s)
		}
	}
}

func TestTaskClassesComplete(t *testing.T) {
	classes := TaskClasses()
	if len(classes) != 4 {
		t.Fatalf("TaskClasses = %d entries, want 4", len(classes))
	}
	seen := map[TaskClass]bool{}
	for _, c := range classes {
		if seen[c] {
			t.Errorf("duplicate class %v", c)
		}
		seen[c] = true
	}
}
