package timeseries

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustSeries(t *testing.T, pts ...Point) *Series {
	t.Helper()
	s := New()
	for _, p := range pts {
		if err := s.Append(p.T, p.V); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAppendMonotonic(t *testing.T) {
	s := New()
	if err := s.Append(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 3); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("equal timestamp err = %v, want ErrOutOfOrder", err)
	}
	if err := s.Append(0.5, 3); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("past timestamp err = %v, want ErrOutOfOrder", err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestBoundedEviction(t *testing.T) {
	s := NewBounded(3)
	for i := 0; i < 5; i++ {
		s.MustAppend(float64(i), float64(i*10))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", s.Dropped())
	}
	first, _ := s.First()
	if first.T != 2 {
		t.Errorf("oldest retained T = %v, want 2", first.T)
	}
	last, _ := s.Last()
	if last.T != 4 || last.V != 40 {
		t.Errorf("Last = %+v", last)
	}
}

func TestNewBoundedPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBounded(-1)
}

func TestEmptyQueries(t *testing.T) {
	s := New()
	if _, err := s.Last(); !errors.Is(err, ErrEmptySeries) {
		t.Error("Last on empty should fail")
	}
	if _, err := s.First(); !errors.Is(err, ErrEmptySeries) {
		t.Error("First on empty should fail")
	}
	if _, err := s.ValueAt(1); !errors.Is(err, ErrEmptySeries) {
		t.Error("ValueAt on empty should fail")
	}
	if _, err := s.MeanAfter(0); !errors.Is(err, ErrEmptySeries) {
		t.Error("MeanAfter on empty should fail")
	}
}

func TestWindowHalfOpen(t *testing.T) {
	s := mustSeries(t, Point{0, 0}, Point{1, 1}, Point{2, 2}, Point{3, 3})
	w := s.Window(1, 3)
	if len(w) != 2 || w[0].T != 1 || w[1].T != 2 {
		t.Errorf("Window(1,3) = %v", w)
	}
	if len(s.Window(10, 20)) != 0 {
		t.Error("out-of-range window should be empty")
	}
}

func TestMeanAfter(t *testing.T) {
	s := mustSeries(t, Point{0, 100}, Point{600, 50}, Point{700, 52}, Point{800, 54})
	m, err := s.MeanAfter(600)
	if err != nil {
		t.Fatal(err)
	}
	if m != 52 {
		t.Errorf("MeanAfter(600) = %v, want 52", m)
	}
	if _, err := s.MeanAfter(1e9); !errors.Is(err, ErrEmptySeries) {
		t.Error("MeanAfter beyond data should fail")
	}
}

func TestValueAtInterpolation(t *testing.T) {
	s := mustSeries(t, Point{0, 10}, Point{10, 20})
	tests := []struct{ t, want float64 }{
		{-5, 10}, // clamp low
		{0, 10},
		{5, 15}, // midpoint
		{10, 20},
		{15, 20}, // clamp high
	}
	for _, tt := range tests {
		got, err := s.ValueAt(tt.t)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("ValueAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestResample(t *testing.T) {
	s := mustSeries(t, Point{0, 0}, Point{10, 10})
	pts, err := s.Resample(0, 10, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("len = %d, want 5", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.V-p.T) > 1e-9 {
			t.Errorf("resampled (%v, %v) should lie on identity", p.T, p.V)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	s := mustSeries(t, Point{0, 0})
	if _, err := s.Resample(0, 1, 0); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := s.Resample(1, 0, 1); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := New().Resample(0, 1, 1); err == nil {
		t.Error("empty series should fail")
	}
}

func TestEWMA(t *testing.T) {
	s := mustSeries(t, Point{0, 10}, Point{1, 20}, Point{2, 20})
	sm, err := s.EWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 15, 17.5}
	for i, w := range want {
		if got := sm.At(i).V; math.Abs(got-w) > 1e-12 {
			t.Errorf("EWMA[%d] = %v, want %v", i, got, w)
		}
	}
	if _, err := s.EWMA(0); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := s.EWMA(1.5); err == nil {
		t.Error("alpha>1 should fail")
	}
}

func TestStableDetector(t *testing.T) {
	s := New()
	// Rising phase: not stable.
	for i := 0; i <= 20; i++ {
		s.MustAppend(float64(i), float64(i))
	}
	if s.Stable(10, 0.5) {
		t.Error("rising series reported stable")
	}
	// Plateau phase: stable.
	for i := 21; i <= 60; i++ {
		s.MustAppend(float64(i), 20+0.1*math.Sin(float64(i)))
	}
	if !s.Stable(10, 0.5) {
		t.Error("plateau not reported stable")
	}
	if New().Stable(10, 1) {
		t.Error("empty series cannot be stable")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := mustSeries(t, Point{0, 1}, Point{1, 2})
	c := s.Clone()
	c.MustAppend(2, 3)
	if s.Len() != 2 {
		t.Error("clone mutation affected original")
	}
	if c.Len() != 3 {
		t.Error("clone append failed")
	}
}

func TestPointsValuesTimesAreCopies(t *testing.T) {
	s := mustSeries(t, Point{0, 1}, Point{1, 2})
	pts := s.Points()
	pts[0].V = 99
	vals := s.Values()
	vals[0] = 99
	ts := s.Times()
	ts[0] = 99
	if s.At(0).V != 1 || s.At(0).T != 0 {
		t.Error("accessor returned aliased storage")
	}
}

// Property: ValueAt between two sample times is always within the value
// bounds of its straddling samples (interpolation never overshoots).
func TestValueAtBoundedProperty(t *testing.T) {
	f := func(raw []float64, tq float64) bool {
		if len(raw) < 2 || math.IsNaN(tq) || math.IsInf(tq, 0) {
			return true
		}
		s := New()
		for i, v := range raw {
			// Skip magnitudes where b-a itself overflows; that is float
			// arithmetic saturation, not an interpolation defect.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
			s.MustAppend(float64(i), v)
		}
		q := math.Mod(math.Abs(tq), float64(len(raw)-1))
		got, err := s.ValueAt(q)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
