package timeseries

import (
	"errors"
	"fmt"
	"sort"
)

// Frame aligns multiple named series on a shared clock, the shape consumed
// by dataset builders (one column per sensor/feature).
type Frame struct {
	cols  map[string]*Series
	order []string
}

// NewFrame returns an empty frame.
func NewFrame() *Frame {
	return &Frame{cols: make(map[string]*Series)}
}

// AddColumn registers a new named series. Adding a duplicate name is an
// error.
func (f *Frame) AddColumn(name string) (*Series, error) {
	if _, ok := f.cols[name]; ok {
		return nil, fmt.Errorf("timeseries: duplicate column %q", name)
	}
	s := New()
	f.cols[name] = s
	f.order = append(f.order, name)
	return s, nil
}

// Column returns the named series, or an error if absent.
func (f *Frame) Column(name string) (*Series, error) {
	s, ok := f.cols[name]
	if !ok {
		return nil, fmt.Errorf("timeseries: no column %q", name)
	}
	return s, nil
}

// Columns returns column names in insertion order.
func (f *Frame) Columns() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Row is one aligned observation across all columns.
type Row struct {
	T      float64
	Values map[string]float64
}

// Rows resamples every column onto a shared grid [from, to] with the given
// step and returns aligned rows. All columns must be non-empty.
func (f *Frame) Rows(from, to, step float64) ([]Row, error) {
	if len(f.order) == 0 {
		return nil, errors.New("timeseries: frame has no columns")
	}
	resampled := make(map[string][]Point, len(f.order))
	var n int
	for _, name := range f.order {
		pts, err := f.cols[name].Resample(from, to, step)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", name, err)
		}
		resampled[name] = pts
		n = len(pts)
	}
	rows := make([]Row, n)
	for i := 0; i < n; i++ {
		vals := make(map[string]float64, len(f.order))
		for _, name := range f.order {
			vals[name] = resampled[name][i].V
		}
		rows[i] = Row{T: resampled[f.order[0]][i].T, Values: vals}
	}
	return rows, nil
}

// Align merges the timestamps of all columns (union) and returns rows with
// interpolated values at each distinct timestamp. Useful when sensors sample
// at different rates.
func (f *Frame) Align() ([]Row, error) {
	if len(f.order) == 0 {
		return nil, errors.New("timeseries: frame has no columns")
	}
	stamps := map[float64]struct{}{}
	for _, name := range f.order {
		s := f.cols[name]
		if s.Len() == 0 {
			return nil, fmt.Errorf("timeseries: column %q empty", name)
		}
		for i := 0; i < s.Len(); i++ {
			stamps[s.At(i).T] = struct{}{}
		}
	}
	ts := make([]float64, 0, len(stamps))
	for t := range stamps {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	rows := make([]Row, 0, len(ts))
	for _, t := range ts {
		vals := make(map[string]float64, len(f.order))
		for _, name := range f.order {
			v, err := f.cols[name].ValueAt(t)
			if err != nil {
				return nil, err
			}
			vals[name] = v
		}
		rows = append(rows, Row{T: t, Values: vals})
	}
	return rows, nil
}
