package timeseries

import (
	"math"
	"testing"
)

func TestFrameAddColumnDuplicate(t *testing.T) {
	f := NewFrame()
	if _, err := f.AddColumn("cpu"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddColumn("cpu"); err == nil {
		t.Fatal("duplicate column should fail")
	}
}

func TestFrameColumnLookup(t *testing.T) {
	f := NewFrame()
	if _, err := f.Column("missing"); err == nil {
		t.Fatal("missing column should fail")
	}
	s, err := f.AddColumn("temp")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Column("temp")
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatal("Column returned different series")
	}
}

func TestFrameColumnsOrder(t *testing.T) {
	f := NewFrame()
	for _, name := range []string{"z", "a", "m"} {
		if _, err := f.AddColumn(name); err != nil {
			t.Fatal(err)
		}
	}
	cols := f.Columns()
	want := []string{"z", "a", "m"}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("Columns = %v, want %v", cols, want)
		}
	}
}

func TestFrameRows(t *testing.T) {
	f := NewFrame()
	a, _ := f.AddColumn("a")
	b, _ := f.AddColumn("b")
	for i := 0; i <= 10; i++ {
		a.MustAppend(float64(i), float64(i))
		b.MustAppend(float64(i), float64(2*i))
	}
	rows, err := f.Rows(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Values["b"]-2*r.Values["a"]) > 1e-9 {
			t.Errorf("row at t=%v misaligned: %v", r.T, r.Values)
		}
	}
}

func TestFrameRowsEmptyFrame(t *testing.T) {
	if _, err := NewFrame().Rows(0, 1, 1); err == nil {
		t.Fatal("empty frame should fail")
	}
}

func TestFrameAlignUnionOfStamps(t *testing.T) {
	f := NewFrame()
	a, _ := f.AddColumn("fast")
	b, _ := f.AddColumn("slow")
	for i := 0; i <= 4; i++ {
		a.MustAppend(float64(i), float64(i))
	}
	b.MustAppend(0, 100)
	b.MustAppend(4, 104)
	rows, err := f.Align()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("aligned rows = %d, want 5", len(rows))
	}
	// slow column should interpolate linearly: 100 + t
	for _, r := range rows {
		if math.Abs(r.Values["slow"]-(100+r.T)) > 1e-9 {
			t.Errorf("slow at t=%v = %v", r.T, r.Values["slow"])
		}
	}
}

func TestFrameAlignEmptyColumn(t *testing.T) {
	f := NewFrame()
	if _, err := f.AddColumn("empty"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Align(); err == nil {
		t.Fatal("empty column should fail Align")
	}
}
