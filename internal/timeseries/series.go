// Package timeseries provides the time-indexed sample storage used by the
// telemetry pipeline: an append-only series with optional ring-buffer
// retention, window extraction, resampling, and exponentially-weighted
// smoothing.
//
// Timestamps are simulation seconds (float64) rather than time.Time: the
// discrete-event simulator runs on a virtual clock, and the paper's equations
// are all expressed in seconds since experiment start.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is a single timestamped sample.
type Point struct {
	T float64 // seconds since experiment start
	V float64 // sample value
}

// ErrOutOfOrder is returned when appending a sample at or before the latest
// timestamp.
var ErrOutOfOrder = errors.New("timeseries: out-of-order append")

// ErrEmptySeries is returned by queries that are undefined on empty series.
var ErrEmptySeries = errors.New("timeseries: empty series")

// Series is a monotonically-timestamped sequence of samples. A Series with
// maxPoints > 0 behaves as a ring buffer, discarding the oldest samples once
// the cap is exceeded; with maxPoints == 0 it grows without bound.
type Series struct {
	pts       []Point
	maxPoints int
	dropped   int
}

// New returns an unbounded Series.
func New() *Series { return &Series{} }

// NewBounded returns a Series retaining at most maxPoints samples.
// It panics if maxPoints < 0.
func NewBounded(maxPoints int) *Series {
	if maxPoints < 0 {
		panic("timeseries: negative capacity")
	}
	return &Series{maxPoints: maxPoints}
}

// Append adds a sample. Timestamps must be strictly increasing.
func (s *Series) Append(t, v float64) error {
	if n := len(s.pts); n > 0 && t <= s.pts[n-1].T {
		return fmt.Errorf("%w: t=%v after t=%v", ErrOutOfOrder, t, s.pts[n-1].T)
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	if s.maxPoints > 0 && len(s.pts) > s.maxPoints {
		over := len(s.pts) - s.maxPoints
		s.pts = append(s.pts[:0], s.pts[over:]...)
		s.dropped += over
	}
	return nil
}

// MustAppend is Append for callers appending from a monotonic clock.
// It panics on out-of-order timestamps.
func (s *Series) MustAppend(t, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len returns the number of retained samples.
func (s *Series) Len() int { return len(s.pts) }

// Dropped returns how many samples were evicted by the retention cap.
func (s *Series) Dropped() int { return s.dropped }

// At returns the i-th retained sample.
func (s *Series) At(i int) Point { return s.pts[i] }

// Last returns the most recent sample.
func (s *Series) Last() (Point, error) {
	if len(s.pts) == 0 {
		return Point{}, ErrEmptySeries
	}
	return s.pts[len(s.pts)-1], nil
}

// First returns the oldest retained sample.
func (s *Series) First() (Point, error) {
	if len(s.pts) == 0 {
		return Point{}, ErrEmptySeries
	}
	return s.pts[0], nil
}

// Points returns a copy of the retained samples.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.pts))
	copy(out, s.pts)
	return out
}

// Values returns a copy of the sample values in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.V
	}
	return out
}

// Times returns a copy of the timestamps in order.
func (s *Series) Times() []float64 {
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.T
	}
	return out
}

// Window returns the samples with from <= T < to.
func (s *Series) Window(from, to float64) []Point {
	lo := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T >= from })
	hi := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T >= to })
	out := make([]Point, hi-lo)
	copy(out, s.pts[lo:hi])
	return out
}

// MeanAfter returns the mean of all samples with T >= from. This implements
// the paper's Eq. (1): ψ_stable is the average temperature after t_break.
func (s *Series) MeanAfter(from float64) (float64, error) {
	var sum float64
	var n int
	lo := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T >= from })
	for _, p := range s.pts[lo:] {
		sum += p.V
		n++
	}
	if n == 0 {
		return 0, ErrEmptySeries
	}
	return sum / float64(n), nil
}

// ValueAt returns the sample value at time t using linear interpolation
// between the two straddling samples. Outside the sampled range it clamps
// to the nearest endpoint.
func (s *Series) ValueAt(t float64) (float64, error) {
	n := len(s.pts)
	if n == 0 {
		return 0, ErrEmptySeries
	}
	if t <= s.pts[0].T {
		return s.pts[0].V, nil
	}
	if t >= s.pts[n-1].T {
		return s.pts[n-1].V, nil
	}
	hi := sort.Search(n, func(i int) bool { return s.pts[i].T >= t })
	lo := hi - 1
	a, b := s.pts[lo], s.pts[hi]
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V), nil
}

// Resample returns values sampled at a fixed step over [from, to] inclusive
// using linear interpolation.
func (s *Series) Resample(from, to, step float64) ([]Point, error) {
	if step <= 0 {
		return nil, errors.New("timeseries: non-positive step")
	}
	if to < from {
		return nil, errors.New("timeseries: inverted range")
	}
	if len(s.pts) == 0 {
		return nil, ErrEmptySeries
	}
	var out []Point
	// Guard against float drift producing an extra step.
	for t := from; t <= to+step*1e-9; t += step {
		v, err := s.ValueAt(t)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{T: t, V: v})
	}
	return out, nil
}

// EWMA returns a new unbounded series holding the exponentially-weighted
// moving average of s with smoothing factor alpha in (0, 1].
func (s *Series) EWMA(alpha float64) (*Series, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("timeseries: alpha out of (0,1]")
	}
	out := New()
	var acc float64
	for i, p := range s.pts {
		if i == 0 {
			acc = p.V
		} else {
			acc = alpha*p.V + (1-alpha)*acc
		}
		out.MustAppend(p.T, acc)
	}
	return out, nil
}

// Stable reports whether the most recent window of duration win spans a
// value range of at most tol. It is the detector behind "temperature will
// first experience variation and subsequently stability".
func (s *Series) Stable(win, tol float64) bool {
	if len(s.pts) == 0 {
		return false
	}
	last := s.pts[len(s.pts)-1].T
	w := s.Window(last-win, last+1)
	if len(w) < 2 {
		return false
	}
	lo, hi := w[0].V, w[0].V
	for _, p := range w[1:] {
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	return hi-lo <= tol
}

// Clone returns a deep copy of s.
func (s *Series) Clone() *Series {
	c := &Series{maxPoints: s.maxPoints, dropped: s.dropped}
	c.pts = make([]Point, len(s.pts))
	copy(c.pts, s.pts)
	return c
}
