//go:build !amd64 || noasm

package svm

// sqDistsInto writes ||sv_k - x||^2 for every support-vector row of flat
// (row-major, stride dim) into dists. Non-amd64 platforms — and any build
// with the noasm tag, which CI uses to exercise this path on every PR —
// always take the portable blocked path.
func sqDistsInto(flat []float64, dim int, x, dists []float64) {
	sqDistsGeneric(flat, dim, x, dists)
}
