package svm

import (
	"math"
	"strings"
	"testing"

	"vmtherm/internal/mathx"
)

func TestTrainParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*TrainParams)
		ok     bool
	}{
		{"default", func(*TrainParams) {}, true},
		{"bad kernel", func(p *TrainParams) { p.Kernel.Gamma = -1 }, false},
		{"zero C", func(p *TrainParams) { p.C = 0 }, false},
		{"negative epsilon", func(p *TrainParams) { p.Epsilon = -0.1 }, false},
		{"negative tol", func(p *TrainParams) { p.Tol = -1 }, false},
		{"negative maxIter", func(p *TrainParams) { p.MaxIter = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultTrainParams(4)
			tt.mutate(&p)
			err := p.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestDefaultGammaIsInverseDim(t *testing.T) {
	if got := DefaultTrainParams(8).Kernel.Gamma; got != 0.125 {
		t.Errorf("gamma = %v, want 1/8", got)
	}
	if got := DefaultTrainParams(0).Kernel.Gamma; got != 1 {
		t.Errorf("gamma for dim 0 = %v, want 1", got)
	}
}

func TestTrainInputValidation(t *testing.T) {
	p := DefaultTrainParams(1)
	if _, err := Train(nil, nil, p); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, p); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, p); err == nil {
		t.Error("zero-dim features should fail")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, p); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := Train([][]float64{{math.NaN()}}, []float64{1}, p); err == nil {
		t.Error("NaN feature should fail")
	}
	if _, err := Train([][]float64{{1}}, []float64{math.Inf(1)}, p); err == nil {
		t.Error("Inf target should fail")
	}
}

// trainLinear1D fits y = 2x + 1 with a linear kernel and checks predictions.
func TestLinearSVRFitsLine(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := -5; i <= 5; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, 2*float64(i)+1)
	}
	m, err := Train(x, y, TrainParams{
		Kernel:  Kernel{Type: Linear},
		C:       100,
		Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := -4; i <= 4; i++ {
		got, err := m.Predict([]float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		want := 2*float64(i) + 1
		// ε-SVR is accurate to roughly the tube width.
		if math.Abs(got-want) > 0.05 {
			t.Errorf("predict(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestEpsilonTubeIgnoresSmallNoise(t *testing.T) {
	// With a wide tube, noisy samples inside the tube yield few SVs.
	g := mathx.NewRNG(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		xi := g.Uniform(-3, 3)
		x = append(x, []float64{xi})
		y = append(y, 0.5*xi+g.Normal(0, 0.05))
	}
	wide, err := Train(x, y, TrainParams{Kernel: Kernel{Type: Linear}, C: 10, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Train(x, y, TrainParams{Kernel: Kernel{Type: Linear}, C: 10, Epsilon: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if wide.NumSV() >= narrow.NumSV() {
		t.Errorf("wide tube SVs (%d) should be fewer than narrow tube SVs (%d)",
			wide.NumSV(), narrow.NumSV())
	}
}

func TestRBFSVRFitsSmoothFunction(t *testing.T) {
	// Fit sin(x) on [0, 2π]; RBF must interpolate well between samples.
	var x [][]float64
	var y []float64
	for i := 0; i <= 40; i++ {
		xi := float64(i) / 40 * 2 * math.Pi
		x = append(x, []float64{xi})
		y = append(y, math.Sin(xi))
	}
	m, err := Train(x, y, TrainParams{
		Kernel:  Kernel{Type: RBF, Gamma: 1},
		C:       50,
		Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 20; i++ {
		xi := (float64(i) + 0.5) / 21 * 2 * math.Pi
		got, err := m.Predict([]float64{xi})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-math.Sin(xi)) > 0.08 {
			t.Errorf("sin(%v): predict %v, want %v", xi, got, math.Sin(xi))
		}
	}
}

func TestKKTConditions(t *testing.T) {
	g := mathx.NewRNG(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		a := g.Uniform(-2, 2)
		b := g.Uniform(-2, 2)
		x = append(x, []float64{a, b})
		y = append(y, a*a-b+g.Normal(0, 0.1))
	}
	const c = 5.0
	const eps = 0.2
	m, err := Train(x, y, TrainParams{Kernel: Kernel{Type: RBF, Gamma: 0.5}, C: c, Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct per-sample beta: zero for non-SVs.
	beta := map[int]float64{}
	for i, sv := range m.SV {
		for j, xi := range x {
			if equalVec(sv, xi) {
				beta[j] = m.Coef[i]
				break
			}
		}
	}

	var sum float64
	for _, b := range beta {
		// Box constraint: |β| ≤ C.
		if math.Abs(b) > c+1e-9 {
			t.Errorf("beta %v violates box constraint C=%v", b, c)
		}
		sum += b
	}
	// Equality constraint: Σβ = 0.
	if math.Abs(sum) > 1e-6 {
		t.Errorf("sum of betas = %v, want 0", sum)
	}

	// Complementary slackness: samples strictly inside the tube carry no
	// coefficient; samples with |β| = C must sit on or outside the tube.
	const slack = 1e-3
	for j, xi := range x {
		pred, err := m.Predict(xi)
		if err != nil {
			t.Fatal(err)
		}
		resid := math.Abs(pred - y[j])
		b := beta[j]
		if resid < eps-slack && b != 0 && math.Abs(b) > 1e-6 {
			t.Errorf("sample %d strictly inside tube (resid %v) has beta %v", j, resid, b)
		}
		if math.Abs(math.Abs(b)-c) < 1e-9 && resid < eps-slack {
			t.Errorf("bound SV %d has residual %v < eps", j, resid)
		}
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	m, err := Train([][]float64{{1, 2}, {2, 1}, {0, 0}}, []float64{1, 2, 0}, DefaultTrainParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("wrong-dim predict should fail")
	}
	if _, err := m.PredictAll([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged PredictAll should fail")
	}
}

func TestTrainDeterministic(t *testing.T) {
	g := mathx.NewRNG(9)
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		a := g.Uniform(0, 1)
		x = append(x, []float64{a})
		y = append(y, 3*a)
	}
	p := TrainParams{Kernel: Kernel{Type: RBF, Gamma: 1}, C: 10, Epsilon: 0.05}
	m1, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Rho != m2.Rho || m1.NumSV() != m2.NumSV() {
		t.Error("training is not deterministic")
	}
	v1, _ := m1.Predict([]float64{0.4})
	v2, _ := m2.Predict([]float64{0.4})
	if v1 != v2 {
		t.Error("predictions differ across identical trainings")
	}
}

func TestMaxIterBudgetError(t *testing.T) {
	g := mathx.NewRNG(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x = append(x, []float64{g.Uniform(-1, 1), g.Uniform(-1, 1)})
		y = append(y, g.Uniform(-1, 1))
	}
	p := TrainParams{Kernel: Kernel{Type: RBF, Gamma: 2}, C: 1000, Epsilon: 0.0001, MaxIter: 3}
	if _, err := Train(x, y, p); err == nil {
		t.Error("tiny iteration budget should fail to converge")
	}
}

func TestConstantTarget(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{5, 5, 5, 5}
	m, err := Train(x, y, TrainParams{Kernel: Kernel{Type: RBF, Gamma: 1}, C: 10, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict([]float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 0.11 {
		t.Errorf("constant fit predicts %v, want ≈5 (within ε)", got)
	}
}

func TestModelIORoundTrip(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i <= 20; i++ {
		xi := float64(i) / 10
		x = append(x, []float64{xi, 1 - xi, 0}) // third feature constant zero
		y = append(y, xi*xi)
	}
	m, err := Train(x, y, TrainParams{Kernel: Kernel{Type: RBF, Gamma: 0.8}, C: 20, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteModel(&sb, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim != m.Dim {
		t.Fatalf("round-trip dim = %d, want %d", back.Dim, m.Dim)
	}
	if back.NumSV() != m.NumSV() {
		t.Fatalf("round-trip SV count = %d, want %d", back.NumSV(), m.NumSV())
	}
	for _, probe := range [][]float64{{0.33, 0.67, 0}, {1.5, -0.5, 0}} {
		a, _ := m.Predict(probe)
		b, _ := back.Predict(probe)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("round-trip prediction differs: %v vs %v", a, b)
		}
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not svr":     "svm_type c_svc\nkernel_type rbf\ngamma 1\nrho 0\nSV\n",
		"bad kernel":  "svm_type epsilon_svr\nkernel_type warp\nrho 0\nSV\n",
		"missing rho": "svm_type epsilon_svr\nkernel_type linear\nSV\n",
		"bad sv":      "svm_type epsilon_svr\nkernel_type linear\nrho 0\nSV\n0.5 zero:1\n",
		"bad index":   "svm_type epsilon_svr\nkernel_type linear\nrho 0\nSV\n0.5 0:1\n",
		"bad count":   "svm_type epsilon_svr\nkernel_type linear\ntotal_sv 5\nrho 0\nSV\n0.5 1:1\n",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadModel(strings.NewReader(text)); err == nil {
				t.Error("expected parse error")
			}
		})
	}
}

func TestWriteModelNil(t *testing.T) {
	var sb strings.Builder
	if err := WriteModel(&sb, nil); err == nil {
		t.Error("nil model should fail")
	}
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: ε-SVR is translation-equivariant — shifting all targets by a
// constant shifts all predictions by the same constant (the offset absorbs
// it). Checked within solver tolerance.
func TestSVRTranslationEquivariance(t *testing.T) {
	g := mathx.NewRNG(21)
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		a := g.Uniform(-1, 1)
		x = append(x, []float64{a})
		y = append(y, a*a+g.Normal(0, 0.05))
	}
	p := TrainParams{Kernel: Kernel{Type: RBF, Gamma: 1}, C: 10, Epsilon: 0.05}
	base, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	const shift = 42.5
	shifted := make([]float64, len(y))
	for i, v := range y {
		shifted[i] = v + shift
	}
	moved, err := Train(x, shifted, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{-0.8, -0.2, 0.3, 0.9} {
		a, err := base.Predict([]float64{probe})
		if err != nil {
			t.Fatal(err)
		}
		b, err := moved.Predict([]float64{probe})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs((b-a)-shift) > 0.05 {
			t.Errorf("at %v: shifted prediction moved by %v, want %v", probe, b-a, shift)
		}
	}
}

// Property: training is invariant to sample order (up to solver tolerance).
func TestSVRPermutationInvariance(t *testing.T) {
	g := mathx.NewRNG(22)
	n := 60
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := g.Uniform(-2, 2)
		x[i] = []float64{a}
		y[i] = math.Sin(a) + g.Normal(0, 0.02)
	}
	p := TrainParams{Kernel: Kernel{Type: RBF, Gamma: 0.8}, C: 20, Epsilon: 0.05}
	m1, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	perm := mathx.NewRNG(23).Perm(n)
	px := make([][]float64, n)
	py := make([]float64, n)
	for i, j := range perm {
		px[i] = x[j]
		py[i] = y[j]
	}
	m2, err := Train(px, py, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{-1.5, -0.5, 0, 0.7, 1.8} {
		a, _ := m1.Predict([]float64{probe})
		b, _ := m2.Predict([]float64{probe})
		if math.Abs(a-b) > 0.05 {
			t.Errorf("at %v: order-dependent predictions %v vs %v", probe, a, b)
		}
	}
}

// Property: with C→0⁺ the model degenerates toward a constant (the mean
// within the ε-tube); with large C it interpolates. Verify the fit error
// shrinks monotonically across three C magnitudes.
func TestSVRCapacityControl(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i <= 30; i++ {
		a := float64(i) / 30 * 6
		x = append(x, []float64{a})
		y = append(y, math.Sin(a))
	}
	var prevErr float64 = math.Inf(1)
	for _, c := range []float64{0.01, 1, 100} {
		m, err := Train(x, y, TrainParams{Kernel: Kernel{Type: RBF, Gamma: 1}, C: c, Epsilon: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		var sse float64
		for i := range x {
			p, err := m.Predict(x[i])
			if err != nil {
				t.Fatal(err)
			}
			d := p - y[i]
			sse += d * d
		}
		if sse > prevErr+1e-9 {
			t.Errorf("C=%v train SSE %v rose above smaller C's %v", c, sse, prevErr)
		}
		prevErr = sse
	}
}

// Cross-implementation check: a linear-kernel SVR with a tiny ε-tube and a
// large C must converge to (approximately) the ordinary least-squares line —
// two independently implemented fitters agreeing on the same data.
func TestLinearSVRMatchesOLS(t *testing.T) {
	g := mathx.NewRNG(77)
	var xs1d []float64
	var x [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		xi := g.Uniform(-3, 3)
		xs1d = append(xs1d, xi)
		x = append(x, []float64{xi})
		y = append(y, 4-1.2*xi+g.Normal(0, 0.05))
	}
	ols, err := mathx.FitLinear(xs1d, y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(x, y, TrainParams{
		Kernel: Kernel{Type: Linear}, C: 100, Epsilon: 0.02, Selection: SecondOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	// SVR minimizes ε-insensitive L1 loss, OLS squared loss; with symmetric
	// noise the fitted lines agree to within a small tolerance.
	for _, probe := range []float64{-2.5, -1, 0, 1.5, 2.8} {
		svr, err := m.Predict([]float64{probe})
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(svr - ols.At(probe)); diff > 0.1 {
			t.Errorf("at %v: SVR %v vs OLS %v (diff %v)", probe, svr, ols.At(probe), diff)
		}
	}
}
