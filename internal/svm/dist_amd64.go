//go:build amd64 && !noasm

package svm

// Implemented in dist_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

//go:noescape
func sqdist4AVX(flat, x *float64, dim int, out *float64)

// useAVX reports whether the vectorized distance kernel may run: the CPU
// must support AVX2 and FMA, and the OS must save ymm state on context
// switch (OSXSAVE + XCR0 bits 1-2).
var useAVX = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c&osxsaveBit == 0 || c&avxBit == 0 || c&fmaBit == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}()

// sqDistsInto writes ||sv_k - x||^2 for every support-vector row of flat
// (row-major, stride dim) into dists, using the AVX2 kernel for blocks of
// four rows when available.
func sqDistsInto(flat []float64, dim int, x, dists []float64) {
	if !useAVX || dim < 4 {
		sqDistsGeneric(flat, dim, x, dists)
		return
	}
	n := len(dists)
	vecDim := dim &^ 3
	k := 0
	for ; k+4 <= n; k += 4 {
		sqdist4AVX(&flat[k*dim], &x[0], dim, &dists[k])
		for r := k; r < k+4 && vecDim < dim; r++ {
			sv := flat[r*dim : (r+1)*dim : (r+1)*dim]
			d := dists[r]
			for j := vecDim; j < dim; j++ {
				t := sv[j] - x[j]
				d += t * t
			}
			dists[r] = d
		}
	}
	if k < n {
		sqDistsGeneric(flat[k*dim:], dim, x, dists[k:])
	}
}
