package svm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteModel serializes a model in LIBSVM's text format (svm_save_model),
// with sparse 1-based feature indices. Only epsilon_svr models exist in this
// package.
func WriteModel(w io.Writer, m *Model) error {
	if m == nil {
		return errors.New("svm: nil model")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "svm_type epsilon_svr")
	fmt.Fprintf(bw, "kernel_type %s\n", m.Kernel.Type)
	switch m.Kernel.Type {
	case Polynomial:
		fmt.Fprintf(bw, "degree %d\n", m.Kernel.Degree)
		fmt.Fprintf(bw, "gamma %s\n", ftoa(m.Kernel.Gamma))
		fmt.Fprintf(bw, "coef0 %s\n", ftoa(m.Kernel.Coef0))
	case RBF:
		fmt.Fprintf(bw, "gamma %s\n", ftoa(m.Kernel.Gamma))
	case Sigmoid:
		fmt.Fprintf(bw, "gamma %s\n", ftoa(m.Kernel.Gamma))
		fmt.Fprintf(bw, "coef0 %s\n", ftoa(m.Kernel.Coef0))
	case Linear:
		// no kernel parameters
	}
	fmt.Fprintln(bw, "nr_class 2")
	// dim is a vmtherm extension: sparse SV lines drop trailing zeros, so
	// the true feature dimensionality must be recorded explicitly.
	fmt.Fprintf(bw, "dim %d\n", m.Dim)
	fmt.Fprintf(bw, "total_sv %d\n", len(m.SV))
	fmt.Fprintf(bw, "rho %s\n", ftoa(m.Rho))
	fmt.Fprintln(bw, "SV")
	for i, sv := range m.SV {
		fmt.Fprintf(bw, "%s", ftoa(m.Coef[i]))
		for j, v := range sv {
			if v != 0 {
				fmt.Fprintf(bw, " %d:%s", j+1, ftoa(v))
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadModel parses a model previously written by WriteModel (or by LIBSVM's
// svm-train for epsilon-SVR with dense features).
func ReadModel(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	m := &Model{}
	header := map[string]string{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "SV" {
			break
		}
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("svm: malformed header line %q", line)
		}
		header[parts[0]] = parts[1]
	}
	if st := header["svm_type"]; st != "epsilon_svr" {
		return nil, fmt.Errorf("svm: unsupported svm_type %q", st)
	}
	kt, err := ParseKernelType(header["kernel_type"])
	if err != nil {
		return nil, err
	}
	m.Kernel.Type = kt
	if g, ok := header["gamma"]; ok {
		if m.Kernel.Gamma, err = strconv.ParseFloat(g, 64); err != nil {
			return nil, fmt.Errorf("svm: bad gamma: %w", err)
		}
	}
	if c0, ok := header["coef0"]; ok {
		if m.Kernel.Coef0, err = strconv.ParseFloat(c0, 64); err != nil {
			return nil, fmt.Errorf("svm: bad coef0: %w", err)
		}
	}
	if d, ok := header["degree"]; ok {
		if m.Kernel.Degree, err = strconv.Atoi(d); err != nil {
			return nil, fmt.Errorf("svm: bad degree: %w", err)
		}
	}
	rho, ok := header["rho"]
	if !ok {
		return nil, errors.New("svm: model missing rho")
	}
	if m.Rho, err = strconv.ParseFloat(rho, 64); err != nil {
		return nil, fmt.Errorf("svm: bad rho: %w", err)
	}

	type sparseSV struct {
		coef float64
		vals map[int]float64
		max  int
	}
	var rows []sparseSV
	maxIdx := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		coef, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("svm: bad SV coefficient %q: %w", fields[0], err)
		}
		row := sparseSV{coef: coef, vals: map[int]float64{}}
		for _, f := range fields[1:] {
			kv := strings.SplitN(f, ":", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("svm: bad SV entry %q", f)
			}
			idx, err := strconv.Atoi(kv[0])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("svm: bad SV index %q", kv[0])
			}
			val, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return nil, fmt.Errorf("svm: bad SV value %q: %w", kv[1], err)
			}
			row.vals[idx] = val
			if idx > row.max {
				row.max = idx
			}
		}
		if row.max > maxIdx {
			maxIdx = row.max
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("svm: reading model: %w", err)
	}
	if ts, ok := header["total_sv"]; ok {
		want, err := strconv.Atoi(ts)
		if err != nil {
			return nil, fmt.Errorf("svm: bad total_sv: %w", err)
		}
		if want != len(rows) {
			return nil, fmt.Errorf("svm: total_sv %d but %d SV lines", want, len(rows))
		}
	}
	m.Dim = maxIdx
	if ds, ok := header["dim"]; ok {
		d, err := strconv.Atoi(ds)
		if err != nil || d < maxIdx {
			return nil, fmt.Errorf("svm: bad dim header %q (max SV index %d)", ds, maxIdx)
		}
		m.Dim = d
	}
	for _, row := range rows {
		dense := make([]float64, m.Dim)
		idxs := make([]int, 0, len(row.vals))
		for idx := range row.vals {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			dense[idx-1] = row.vals[idx]
		}
		m.SV = append(m.SV, dense)
		m.Coef = append(m.Coef, row.coef)
	}
	if err := m.Kernel.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ftoa formats floats compactly and round-trippably.
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', 17, 64) }
