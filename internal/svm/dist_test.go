package svm

import (
	"math"
	"math/rand"
	"testing"
)

// TestSqDistsIntoMatchesGeneric cross-checks the arch-selected distance
// kernel (AVX2 on capable amd64) against the portable implementation over
// awkward shapes: dims that are not multiples of the vector width and SV
// counts that are not multiples of the unroll factor.
func TestSqDistsIntoMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 19, 32} {
		for _, nsv := range []int{1, 2, 3, 4, 5, 8, 11, 17} {
			flat := make([]float64, nsv*dim)
			x := make([]float64, dim)
			for i := range flat {
				flat[i] = r.Float64()*200 - 100
			}
			for i := range x {
				x[i] = r.Float64()*200 - 100
			}
			got := make([]float64, nsv)
			want := make([]float64, nsv)
			sqDistsInto(flat, dim, x, got)
			sqDistsGeneric(flat, dim, x, want)
			for k := range got {
				tol := 1e-12 * math.Max(1, want[k])
				if math.Abs(got[k]-want[k]) > tol {
					t.Errorf("dim=%d nsv=%d row %d: %v vs generic %v", dim, nsv, k, got[k], want[k])
				}
			}
		}
	}
}

func TestSqDistsGenericValues(t *testing.T) {
	// 2 SVs, dim 3, hand-checked.
	flat := []float64{1, 2, 3, -1, 0, 1}
	x := []float64{0, 2, 4}
	dists := make([]float64, 2)
	sqDistsGeneric(flat, 3, x, dists)
	if dists[0] != 1+0+1 {
		t.Errorf("dists[0] = %v, want 2", dists[0])
	}
	if dists[1] != 1+4+9 {
		t.Errorf("dists[1] = %v, want 14", dists[1])
	}
}
