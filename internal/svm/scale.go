package svm

import (
	"errors"
	"fmt"
)

// Scaler linearly maps each feature into [Lower, Upper], the equivalent of
// LIBSVM's svm-scale preprocessing (default [-1, 1]). RBF kernels are
// sensitive to feature ranges, so both the paper's pipeline and ours scale
// before training and apply the same transform online.
type Scaler struct {
	Lower, Upper float64
	mins, maxs   []float64
	// factors[j] = (Upper-Lower)/(maxs[j]-mins[j]), or 0 for constant
	// features; precomputed so the per-row transform multiplies instead
	// of dividing (divisions dominate the scaling cost otherwise).
	factors []float64
}

// NewScaler returns a scaler targeting [lower, upper].
func NewScaler(lower, upper float64) (*Scaler, error) {
	if upper <= lower {
		return nil, fmt.Errorf("svm: scaler range [%v, %v] inverted", lower, upper)
	}
	return &Scaler{Lower: lower, Upper: upper}, nil
}

// Fit learns per-feature minima and maxima from the training matrix.
func (s *Scaler) Fit(features [][]float64) error {
	if len(features) == 0 {
		return errors.New("svm: scaler fit on empty data")
	}
	d := len(features[0])
	if d == 0 {
		return errors.New("svm: scaler fit on zero-dimensional data")
	}
	mins := make([]float64, d)
	maxs := make([]float64, d)
	copy(mins, features[0])
	copy(maxs, features[0])
	for _, row := range features[1:] {
		if len(row) != d {
			return fmt.Errorf("svm: ragged row length %d, want %d", len(row), d)
		}
		for j, v := range row {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	s.mins, s.maxs = mins, maxs
	s.refit()
	return nil
}

// refit recomputes the per-feature scale factors from mins/maxs.
func (s *Scaler) refit() {
	s.factors = make([]float64, len(s.mins))
	for j := range s.mins {
		if span := s.maxs[j] - s.mins[j]; span != 0 {
			s.factors[j] = (s.Upper - s.Lower) / span
		}
	}
}

// Dim returns the fitted feature dimensionality (0 before Fit).
func (s *Scaler) Dim() int { return len(s.mins) }

// Transform maps one feature vector into the target range. Constant features
// map to the range midpoint. Values outside the fitted range extrapolate
// linearly, matching svm-scale behaviour on unseen data.
func (s *Scaler) Transform(row []float64) ([]float64, error) {
	out := make([]float64, len(row))
	if err := s.TransformInto(row, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformInto scales row into dst (len(dst) must equal len(row)) without
// allocating, the building block for batch prediction where one scratch
// buffer is reused across every row of a request.
func (s *Scaler) TransformInto(row, dst []float64) error {
	if s.Dim() == 0 {
		return errors.New("svm: scaler not fitted")
	}
	if len(row) != s.Dim() {
		return fmt.Errorf("svm: transform row length %d, want %d", len(row), s.Dim())
	}
	if len(dst) != len(row) {
		return fmt.Errorf("svm: transform dst length %d, want %d", len(dst), len(row))
	}
	mid := (s.Lower + s.Upper) / 2
	for j, v := range row {
		f := s.factors[j]
		if f == 0 {
			dst[j] = mid
			continue
		}
		dst[j] = s.Lower + (v-s.mins[j])*f
	}
	return nil
}

// TransformAll maps a whole matrix.
func (s *Scaler) TransformAll(rows [][]float64) ([][]float64, error) {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		t, err := s.Transform(r)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// Bounds returns copies of the fitted per-feature minima and maxima.
func (s *Scaler) Bounds() (mins, maxs []float64) {
	mins = make([]float64, len(s.mins))
	maxs = make([]float64, len(s.maxs))
	copy(mins, s.mins)
	copy(maxs, s.maxs)
	return mins, maxs
}

// SetBounds restores previously fitted bounds (used by model loading).
func (s *Scaler) SetBounds(mins, maxs []float64) error {
	if len(mins) != len(maxs) {
		return errors.New("svm: bounds length mismatch")
	}
	if len(mins) == 0 {
		return errors.New("svm: empty bounds")
	}
	for j := range mins {
		if maxs[j] < mins[j] {
			return fmt.Errorf("svm: feature %d bounds inverted", j)
		}
	}
	s.mins = append([]float64(nil), mins...)
	s.maxs = append([]float64(nil), maxs...)
	s.refit()
	return nil
}
