package svm

import (
	"math"
	"testing"
)

func TestNewScalerValidation(t *testing.T) {
	if _, err := NewScaler(1, 1); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewScaler(1, -1); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := NewScaler(-1, 1); err != nil {
		t.Error(err)
	}
}

func TestScalerFitTransform(t *testing.T) {
	s, _ := NewScaler(-1, 1)
	data := [][]float64{
		{0, 100},
		{10, 200},
		{5, 150},
	}
	if err := s.Fit(data); err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 2 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	got, err := s.Transform([]float64{0, 200})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -1 || got[1] != 1 {
		t.Errorf("Transform min/max = %v, want [-1, 1]", got)
	}
	mid, _ := s.Transform([]float64{5, 150})
	if mid[0] != 0 || mid[1] != 0 {
		t.Errorf("Transform midpoints = %v, want [0, 0]", mid)
	}
}

func TestScalerExtrapolatesBeyondFitRange(t *testing.T) {
	s, _ := NewScaler(0, 1)
	if err := s.Fit([][]float64{{0}, {10}}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Transform([]float64{20})
	if got[0] != 2 {
		t.Errorf("extrapolated = %v, want 2", got[0])
	}
	got, _ = s.Transform([]float64{-10})
	if got[0] != -1 {
		t.Errorf("extrapolated = %v, want -1", got[0])
	}
}

func TestScalerConstantFeatureMapsToMidpoint(t *testing.T) {
	s, _ := NewScaler(-1, 1)
	if err := s.Fit([][]float64{{7, 1}, {7, 2}}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Transform([]float64{7, 1.5})
	if got[0] != 0 {
		t.Errorf("constant feature = %v, want 0 (midpoint)", got[0])
	}
}

func TestScalerErrors(t *testing.T) {
	s, _ := NewScaler(-1, 1)
	if err := s.Fit(nil); err == nil {
		t.Error("empty fit should fail")
	}
	if err := s.Fit([][]float64{{}}); err == nil {
		t.Error("zero-dim fit should fail")
	}
	if err := s.Fit([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged fit should fail")
	}
	if _, err := s.Transform([]float64{1}); err == nil {
		t.Error("transform before fit should fail")
	}
	if err := s.Fit([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform([]float64{1}); err == nil {
		t.Error("wrong-length transform should fail")
	}
}

func TestTransformAll(t *testing.T) {
	s, _ := NewScaler(0, 1)
	if err := s.Fit([][]float64{{0}, {4}}); err != nil {
		t.Fatal(err)
	}
	out, err := s.TransformAll([][]float64{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.75}
	for i := range want {
		if math.Abs(out[i][0]-want[i]) > 1e-12 {
			t.Errorf("row %d = %v, want %v", i, out[i][0], want[i])
		}
	}
	if _, err := s.TransformAll([][]float64{{1, 2}}); err == nil {
		t.Error("ragged TransformAll should fail")
	}
}

func TestBoundsRoundTrip(t *testing.T) {
	s, _ := NewScaler(-1, 1)
	if err := s.Fit([][]float64{{0, 5}, {10, 15}}); err != nil {
		t.Fatal(err)
	}
	mins, maxs := s.Bounds()

	s2, _ := NewScaler(-1, 1)
	if err := s2.SetBounds(mins, maxs); err != nil {
		t.Fatal(err)
	}
	in := []float64{5, 10}
	a, _ := s.Transform(in)
	b, _ := s2.Transform(in)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("restored scaler differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Bounds() must return copies.
	mins[0] = 999
	c, _ := s.Transform(in)
	if c[0] != a[0] {
		t.Error("Bounds returned aliased storage")
	}
}

func TestSetBoundsValidation(t *testing.T) {
	s, _ := NewScaler(-1, 1)
	if err := s.SetBounds([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := s.SetBounds(nil, nil); err == nil {
		t.Error("empty bounds should fail")
	}
	if err := s.SetBounds([]float64{5}, []float64{1}); err == nil {
		t.Error("inverted bounds should fail")
	}
}
