package svm

import "math"

// expNeg computes e^-x for x >= 0 with relative error below ~1e-13, about
// twice as fast as math.Exp on the hot path. RBF kernel evaluation is
// exp-bound once the distance pass is vectorized, so batch prediction
// (Model.PredictBatch) funnels every kernel exponential through this.
//
// Method: argument reduction against a 64-entry table of 2^(-i/64),
//
//	x = k·ln2 + f·ln2/64 + r,   |r| <= ln2/128
//	e^-x = 2^-k · tab[f] · e^-r
//
// with e^-r from a degree-5 Maclaurin polynomial (remainder ~ r^6/720,
// ~4e-17 relative) and the 2^-k scaling applied directly on the exponent
// bits. Inputs outside the fast path (negative, NaN) defer to math.Exp.
func expNeg(x float64) float64 {
	if !(x >= 0) {
		return math.Exp(-x) // negative or NaN
	}
	if x > 708 {
		return 0 // e^-708 ~ 3e-308; below this we'd hit subnormals
	}
	const (
		tabBits  = 6
		tabSize  = 1 << tabBits
		invLn2T  = tabSize / math.Ln2
		ln2DivT  = math.Ln2 / tabSize
		tabMask  = tabSize - 1
		expShift = 52
	)
	n := int64(x*invLn2T + 0.5)
	r := x - float64(n)*ln2DivT
	p := 1 - r*(1-r*(0.5-r*(1.0/6-r*(1.0/24-r*(1.0/120)))))
	k := n >> tabBits
	f := n & tabMask
	bits := math.Float64bits(expNegTab[f] * p)
	return math.Float64frombits(bits - uint64(k)<<expShift)
}

// expNegTab[i] = 2^(-i/64).
var expNegTab = func() [64]float64 {
	var t [64]float64
	for i := range t {
		t[i] = math.Exp(-float64(i) * math.Ln2 / 64)
	}
	return t
}()
